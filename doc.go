// Package wavepim is the root of a full reproduction of "Wave-PIM:
// Accelerating Wave Simulation Using Processing-in-Memory" (ICPP 2021).
//
// The library is organized under internal/:
//
//   - internal/dg, internal/quad, internal/mesh, internal/material: the
//     reference discontinuous-Galerkin wave solver (acoustic and elastic,
//     central and Riemann flux solvers, five-stage low-storage RK).
//   - internal/pim/...: the digital PIM substrate — gate-level NOR
//     arithmetic, the instruction set, crossbar blocks, H-tree/Bus
//     interconnects, the chip hierarchy and power model, and the
//     execution engine.
//   - internal/wavepim: the paper's contribution — the element-to-block
//     data layout, the kernel compiler, batching, expansion, pipelining,
//     the Table 5 planner, and the timed benchmark runner.
//   - internal/gpu, internal/hostcpu: analytic baseline models standing in
//     for the paper's measured GPUs and CPUs.
//   - internal/experiments: generators for every table and figure of the
//     evaluation.
//
// The benchmarks in bench_test.go regenerate each table and figure; the
// binaries under cmd/ and the programs under examples/ exercise the same
// machinery interactively. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
package wavepim
