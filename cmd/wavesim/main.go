// Command wavesim runs the reference discontinuous-Galerkin wave solver
// (the numerics ground truth of the reproduction) on a periodic unit cube
// and reports accuracy and energy-conservation diagnostics.
//
// Usage:
//
//	wavesim -eq acoustic -refine 2 -np 6 -steps 100 -flux riemann
//
// With -trace and/or -metrics it additionally times the matching PIM
// benchmark and exports observability output: -trace writes a Chrome
// trace_event JSON (chrome://tracing, Perfetto) of the Figure 13
// Volume/Fetch/Flux/Integration stage pipeline; -metrics writes the full
// metrics-registry snapshot (dG solver RHS timings plus PIM run gauges).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/pim/chip"
	"wavepim/internal/wavepim"
)

func main() {
	eq := flag.String("eq", "acoustic", "equation: acoustic, elastic, or maxwell")
	refine := flag.Int("refine", 1, "refinement level ((2^n)^3 elements)")
	np := flag.Int("np", 6, "GLL nodes per axis within an element")
	steps := flag.Int("steps", 100, "time steps")
	fluxName := flag.String("flux", "riemann", "flux solver: central or riemann")
	cfl := flag.Float64("cfl", 0.3, "CFL number")
	tracePath := flag.String("trace", "", "write a Chrome trace of the PIM stage pipeline to this file")
	metricsPath := flag.String("metrics", "", "write the metrics registry snapshot (JSON) to this file")
	guard := flag.Int("guard", 0, "check solver health (finiteness, norm blow-up) every N steps; 0 disables (acoustic/elastic)")
	blowup := flag.Float64("blowup", 1e3, "health guard: allowed squared-norm growth factor over the initial state")
	eventLogPath := flag.String("eventlog", "", "write structured JSONL run events to this file ('-' for stderr)")
	topology := flag.String("topology", "htree", "traced PIM run's tile interconnect: htree, bus, mesh, torus, flatfly, dragonfly")
	flag.Parse()

	topoKind, err := chip.ParseInterconnect(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-topology: %v\n", err)
		os.Exit(2)
	}

	var sink *obs.Sink
	if *tracePath != "" || *metricsPath != "" {
		sink = obs.NewSink()
	}
	log := openEventLog(*eventLogPath)
	log.Info("solver.start",
		eventlog.Str("equation", *eq),
		eventlog.Int("steps", *steps),
		eventlog.Str("flux", *fluxName))

	var flux dg.FluxType
	switch *fluxName {
	case "central":
		flux = dg.CentralFlux
	case "riemann":
		flux = dg.RiemannFlux
	default:
		fmt.Fprintf(os.Stderr, "unknown flux %q\n", *fluxName)
		os.Exit(2)
	}

	m := mesh.New(*refine, *np, true)
	fmt.Printf("mesh: refinement %d, %d elements, %d nodes/element (%d unknowns/var)\n",
		*refine, m.NumElem, m.NodesPerEl, m.NumElem*m.NodesPerEl)

	switch *eq {
	case "acoustic":
		mat := material.Acoustic{Kappa: 2.25, Rho: 1.0}
		s := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, mat), flux)
		s.Obs = sink
		q := dg.NewAcousticState(m)
		dg.PlaneWaveX(m, mat, 1, q)
		it := dg.NewAcousticIntegrator(s)
		dt := s.MaxStableDt(*cfl)
		e0 := s.Energy(q)
		var tEnd float64
		if *guard > 0 {
			var gerr error
			tEnd, gerr = it.RunGuarded(q, 0, dt, *steps, *guard, *blowup)
			if gerr != nil {
				fmt.Fprintf(os.Stderr, "health guard: %v\n", gerr)
				os.Exit(1)
			}
		} else {
			tEnd = it.Run(q, 0, dt, *steps)
		}
		e1 := s.Energy(q)
		var worst float64
		for e := 0; e < m.NumElem; e++ {
			for n := 0; n < m.NodesPerEl; n++ {
				x, _, _ := m.NodePosition(e, n)
				want := dg.PlaneWaveXAt(mat, 1, x, tEnd)
				if d := math.Abs(q.P[e*m.NodesPerEl+n] - want); d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("acoustic %s flux: dt=%.3e, t=%.4f after %d steps\n", flux, dt, tEnd, *steps)
		fmt.Printf("  plane-wave max error: %.3e\n", worst)
		fmt.Printf("  energy drift: %.3e (E0=%.6f E1=%.6f)\n", math.Abs(e1-e0)/e0, e0, e1)
		log.Info("solver.result", eventlog.F64("dt", dt), eventlog.F64("t_end", tEnd),
			eventlog.F64("max_error", worst), eventlog.F64("energy_drift", math.Abs(e1-e0)/e0))
	case "elastic":
		mat := material.Elastic{Lambda: 2, Mu: 1, Rho: 1}
		s := dg.NewElasticSolver(m, material.UniformElastic(m.NumElem, mat), flux)
		s.Obs = sink
		q := dg.NewElasticState(m)
		dg.PlaneWavePX(m, mat, 1, q)
		it := dg.NewElasticIntegrator(s)
		dt := s.MaxStableDt(*cfl)
		e0 := s.Energy(q)
		var tEnd float64
		if *guard > 0 {
			var gerr error
			tEnd, gerr = it.RunGuarded(q, 0, dt, *steps, *guard, *blowup)
			if gerr != nil {
				fmt.Fprintf(os.Stderr, "health guard: %v\n", gerr)
				os.Exit(1)
			}
		} else {
			tEnd = it.Run(q, 0, dt, *steps)
		}
		e1 := s.Energy(q)
		var worst float64
		for e := 0; e < m.NumElem; e++ {
			for n := 0; n < m.NodesPerEl; n++ {
				x, _, _ := m.NodePosition(e, n)
				want := dg.PlaneWavePXAt(mat, 1, x, tEnd)
				if d := math.Abs(q.V[0][e*m.NodesPerEl+n] - want); d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("elastic %s flux: dt=%.3e, t=%.4f after %d steps (cp=%.2f cs=%.2f)\n",
			flux, dt, tEnd, *steps, mat.PWaveSpeed(), mat.SWaveSpeed())
		fmt.Printf("  P-wave max error: %.3e\n", worst)
		fmt.Printf("  energy drift: %.3e (E0=%.6f E1=%.6f)\n", math.Abs(e1-e0)/e0, e0, e1)
		log.Info("solver.result", eventlog.F64("dt", dt), eventlog.F64("t_end", tEnd),
			eventlog.F64("max_error", worst), eventlog.F64("energy_drift", math.Abs(e1-e0)/e0))
	case "maxwell":
		if *guard > 0 {
			fmt.Fprintln(os.Stderr, "-guard is not supported for maxwell (no guarded integrator)")
			os.Exit(2)
		}
		mat := material.Dielectric{Eps: 2.25, Mu: 1}
		s := dg.NewMaxwellSolver(m, mat, flux)
		s.Obs = sink
		q := dg.NewMaxwellState(m)
		dg.PlaneWaveEM(m, mat, 1, q)
		it := dg.NewMaxwellIntegrator(s)
		dt := s.MaxStableDt(*cfl)
		e0 := s.Energy(q)
		it.Run(q, dt, *steps)
		tEnd := dt * float64(*steps)
		e1 := s.Energy(q)
		var worst float64
		for e := 0; e < m.NumElem; e++ {
			for n := 0; n < m.NodesPerEl; n++ {
				x, _, _ := m.NodePosition(e, n)
				want := dg.PlaneWaveEMAt(mat, 1, x, tEnd)
				if d := math.Abs(q.E[1][e*m.NodesPerEl+n] - want); d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("maxwell %s flux: dt=%.3e, t=%.4f after %d steps (c=%.3f, eta=%.3f)\n",
			flux, dt, tEnd, *steps, mat.LightSpeed(), mat.Impedance())
		fmt.Printf("  EM plane-wave max error: %.3e\n", worst)
		fmt.Printf("  energy drift: %.3e (E0=%.6f E1=%.6f)\n", math.Abs(e1-e0)/e0, e0, e1)
		log.Info("solver.result", eventlog.F64("dt", dt), eventlog.F64("t_end", tEnd),
			eventlog.F64("max_error", worst), eventlog.F64("energy_drift", math.Abs(e1-e0)/e0))
	default:
		fmt.Fprintf(os.Stderr, "unknown equation %q\n", *eq)
		os.Exit(2)
	}

	if sink == nil {
		return
	}
	// Time the matching PIM benchmark so the trace carries the stage
	// pipeline (Figure 13) alongside the dG solver's metrics.
	pimEq := opcount.Acoustic
	switch *eq {
	case "elastic":
		pimEq = opcount.ElasticRiemann
		if flux == dg.CentralFlux {
			pimEq = opcount.ElasticCentral
		}
	case "maxwell":
		pimEq = opcount.Maxwell
	}
	opt := wavepim.DefaultOptions()
	opt.TimeSteps = *steps
	opt.Obs = sink
	b := opcount.Benchmark{Eq: pimEq, Refinement: *refine}
	pimCfg := chip.Config16GB()
	pimCfg.Interconnect = topoKind
	res, err := wavepim.Run(b, pimCfg, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pim run: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pim %s on PIM-16GB (%s): %.4fs total, %.2f J (stage pipeline traced)\n",
		b.Name(), pimCfg.Interconnect, res.TotalSec, res.EnergyJ)
	log.Info("pim.run", eventlog.Str("bench", b.Name()),
		eventlog.F64("total_seconds", res.TotalSec), eventlog.F64("energy_joules", res.EnergyJ))
	if err := writeObs(sink, *tracePath, *metricsPath); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}

// openEventLog opens the -eventlog destination: "" disables (nil logger,
// every emit no-ops), "-" is stderr, anything else a file that stays open
// for the process lifetime.
func openEventLog(path string) *eventlog.Logger {
	switch path {
	case "":
		return nil
	case "-":
		return eventlog.New(os.Stderr, eventlog.Debug)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return eventlog.New(f, eventlog.Debug)
}

// writeObs exports the sink to the requested files.
func writeObs(sink *obs.Sink, tracePath, metricsPath string) error {
	write := func(path string, export func(w io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := export(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		return f.Close()
	}
	if err := write(tracePath, sink.WriteTrace); err != nil {
		return err
	}
	return write(metricsPath, sink.WriteMetrics)
}
