// Command wavesim runs the reference discontinuous-Galerkin wave solver
// (the numerics ground truth of the reproduction) on a periodic unit cube
// and reports accuracy and energy-conservation diagnostics.
//
// Usage:
//
//	wavesim -eq acoustic -refine 2 -np 6 -steps 100 -flux riemann
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

func main() {
	eq := flag.String("eq", "acoustic", "equation: acoustic, elastic, or maxwell")
	refine := flag.Int("refine", 1, "refinement level ((2^n)^3 elements)")
	np := flag.Int("np", 6, "GLL nodes per axis within an element")
	steps := flag.Int("steps", 100, "time steps")
	fluxName := flag.String("flux", "riemann", "flux solver: central or riemann")
	cfl := flag.Float64("cfl", 0.3, "CFL number")
	flag.Parse()

	var flux dg.FluxType
	switch *fluxName {
	case "central":
		flux = dg.CentralFlux
	case "riemann":
		flux = dg.RiemannFlux
	default:
		fmt.Fprintf(os.Stderr, "unknown flux %q\n", *fluxName)
		os.Exit(2)
	}

	m := mesh.New(*refine, *np, true)
	fmt.Printf("mesh: refinement %d, %d elements, %d nodes/element (%d unknowns/var)\n",
		*refine, m.NumElem, m.NodesPerEl, m.NumElem*m.NodesPerEl)

	switch *eq {
	case "acoustic":
		mat := material.Acoustic{Kappa: 2.25, Rho: 1.0}
		s := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, mat), flux)
		q := dg.NewAcousticState(m)
		dg.PlaneWaveX(m, mat, 1, q)
		it := dg.NewAcousticIntegrator(s)
		dt := s.MaxStableDt(*cfl)
		e0 := s.Energy(q)
		tEnd := it.Run(q, 0, dt, *steps)
		e1 := s.Energy(q)
		var worst float64
		for e := 0; e < m.NumElem; e++ {
			for n := 0; n < m.NodesPerEl; n++ {
				x, _, _ := m.NodePosition(e, n)
				want := dg.PlaneWaveXAt(mat, 1, x, tEnd)
				if d := math.Abs(q.P[e*m.NodesPerEl+n] - want); d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("acoustic %s flux: dt=%.3e, t=%.4f after %d steps\n", flux, dt, tEnd, *steps)
		fmt.Printf("  plane-wave max error: %.3e\n", worst)
		fmt.Printf("  energy drift: %.3e (E0=%.6f E1=%.6f)\n", math.Abs(e1-e0)/e0, e0, e1)
	case "elastic":
		mat := material.Elastic{Lambda: 2, Mu: 1, Rho: 1}
		s := dg.NewElasticSolver(m, material.UniformElastic(m.NumElem, mat), flux)
		q := dg.NewElasticState(m)
		dg.PlaneWavePX(m, mat, 1, q)
		it := dg.NewElasticIntegrator(s)
		dt := s.MaxStableDt(*cfl)
		e0 := s.Energy(q)
		tEnd := it.Run(q, 0, dt, *steps)
		e1 := s.Energy(q)
		var worst float64
		for e := 0; e < m.NumElem; e++ {
			for n := 0; n < m.NodesPerEl; n++ {
				x, _, _ := m.NodePosition(e, n)
				want := dg.PlaneWavePXAt(mat, 1, x, tEnd)
				if d := math.Abs(q.V[0][e*m.NodesPerEl+n] - want); d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("elastic %s flux: dt=%.3e, t=%.4f after %d steps (cp=%.2f cs=%.2f)\n",
			flux, dt, tEnd, *steps, mat.PWaveSpeed(), mat.SWaveSpeed())
		fmt.Printf("  P-wave max error: %.3e\n", worst)
		fmt.Printf("  energy drift: %.3e (E0=%.6f E1=%.6f)\n", math.Abs(e1-e0)/e0, e0, e1)
	case "maxwell":
		mat := material.Dielectric{Eps: 2.25, Mu: 1}
		s := dg.NewMaxwellSolver(m, mat, flux)
		q := dg.NewMaxwellState(m)
		dg.PlaneWaveEM(m, mat, 1, q)
		it := dg.NewMaxwellIntegrator(s)
		dt := s.MaxStableDt(*cfl)
		e0 := s.Energy(q)
		it.Run(q, dt, *steps)
		tEnd := dt * float64(*steps)
		e1 := s.Energy(q)
		var worst float64
		for e := 0; e < m.NumElem; e++ {
			for n := 0; n < m.NodesPerEl; n++ {
				x, _, _ := m.NodePosition(e, n)
				want := dg.PlaneWaveEMAt(mat, 1, x, tEnd)
				if d := math.Abs(q.E[1][e*m.NodesPerEl+n] - want); d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("maxwell %s flux: dt=%.3e, t=%.4f after %d steps (c=%.3f, eta=%.3f)\n",
			flux, dt, tEnd, *steps, mat.LightSpeed(), mat.Impedance())
		fmt.Printf("  EM plane-wave max error: %.3e\n", worst)
		fmt.Printf("  energy drift: %.3e (E0=%.6f E1=%.6f)\n", math.Abs(e1-e0)/e0, e0, e1)
	default:
		fmt.Fprintf(os.Stderr, "unknown equation %q\n", *eq)
		os.Exit(2)
	}
}
