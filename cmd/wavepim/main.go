// Command wavepim runs Wave-PIM simulations.
//
// Timing mode (default) runs a full evaluation benchmark on a chip
// configuration and prints time, energy, and the activity breakdown:
//
//	wavepim -bench acoustic_4 -chip 2GB
//	wavepim -bench elastic-riemann_5 -chip 16GB -interconnect bus -pipelined=false
//
// Functional mode executes a small simulation entirely inside simulated
// crossbar cells and verifies the result against the reference dG solver:
//
//	wavepim -functional -refine 1 -np 4 -steps 3
//
// Functional mode can also inject deterministic hardware faults and heal
// through the recovery ladder (ECC scrub, verify-retry, spare-block remap,
// checkpointed rollback), printing a reproducible fault report:
//
//	wavepim -functional -faults seed=7,flip=1e-7,stuck=1e-6 -faultreport report.json
//
// With -eventlog the functional run emits structured JSONL events (run
// lifecycle plus one event per recovery-rung firing); with -flight an
// unrecoverable failure additionally writes the flight-recorder dump:
//
//	wavepim -functional -faults seed=13,flip=5e-3 -eventlog - -flight dump.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/fault"
	"wavepim/internal/pim/isa"
	"wavepim/internal/report"
	"wavepim/internal/wavepim"
)

func main() {
	benchName := flag.String("bench", "acoustic_4", "benchmark: acoustic_{4,5}, elastic-central_{4,5}, elastic-riemann_{4,5}")
	chipName := flag.String("chip", "2GB", "chip capacity: 512MB, 2GB, 8GB, 16GB")
	interconnect := flag.String("interconnect", "htree", "tile interconnect: htree, bus, mesh, torus, flatfly, dragonfly")
	pipelined := flag.Bool("pipelined", true, "apply the Section 6.3 pipeline")
	steps := flag.Int("steps", 1024, "time steps")
	functional := flag.Bool("functional", false, "run a functional simulation in simulated crossbar cells")
	refine := flag.Int("refine", 1, "functional: refinement level")
	np := flag.Int("np", 4, "functional: GLL nodes per axis")
	fnSteps := flag.Int("fsteps", 3, "functional: time steps")
	faultSpec := flag.String("faults", "", "functional: inject faults, e.g. seed=7,flip=1e-7,stuck=1e-6,wear=100000")
	recoverSpec := flag.String("recover", "", "functional: recovery policy, e.g. ecc=1,retries=2,spares=4,ckpt=8,rollbacks=2,blowup=1e3")
	faultReport := flag.String("faultreport", "", "functional: write the JSON fault report (plus timeline digest) to this file")
	eventLog := flag.String("eventlog", "", "functional: write structured JSONL events (run lifecycle, recovery rungs) to this file ('-' for stderr)")
	flight := flag.String("flight", "", "functional: write the flight-recorder dump (JSON) to this file when the run fails unrecoverably")
	disasm := flag.String("disasm", "", "disassemble a compiled kernel: volume, flux, integration")
	flag.Parse()

	if *disasm != "" {
		runDisasm(*disasm)
		return
	}
	if *functional {
		runFunctional(*refine, *np, *fnSteps, *interconnect, *faultSpec, *recoverSpec, *faultReport, *eventLog, *flight)
		return
	}

	b, ok := parseBench(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *benchName)
		os.Exit(2)
	}
	var cfg chip.Config
	switch strings.ToUpper(*chipName) {
	case "512MB":
		cfg = chip.Config512MB()
	case "2GB":
		cfg = chip.Config2GB()
	case "8GB":
		cfg = chip.Config8GB()
	case "16GB":
		cfg = chip.Config16GB()
	default:
		fmt.Fprintf(os.Stderr, "unknown chip %q\n", *chipName)
		os.Exit(2)
	}
	kind, err := chip.ParseInterconnect(*interconnect)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-interconnect: %v\n", err)
		os.Exit(2)
	}
	cfg.Interconnect = kind

	opt := wavepim.DefaultOptions()
	opt.TimeSteps = *steps
	opt.Pipelined = *pipelined
	res, err := wavepim.Run(b, cfg, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s on %s (%s interconnect, pipelined=%v)\n", b.Name(), cfg.Name, cfg.Interconnect, *pipelined)
	fmt.Printf("  plan: %s, %d batch(es), %d blocks used of %d\n",
		res.Plan.Table5String(), res.Plan.Batches, res.Plan.BlocksUsed(), cfg.NumBlocks())
	fmt.Printf("  per-stage: %s   per-step: %s   total (%d steps): %s\n",
		report.Seconds(res.StageSec), report.Seconds(res.StepSec), *steps, report.Seconds(res.TotalSec))
	fmt.Printf("  energy: %s total (%s dynamic + %s static)\n",
		report.Joules(res.EnergyJ), report.Joules(res.DynamicJ), report.Joules(res.StaticJ))
	bd := res.Breakdown
	fmt.Printf("  breakdown: compute %s | intra-element transfers %s | inter-element transfers %s | DRAM %s | host %s\n",
		report.Seconds(bd.ComputeSec), report.Seconds(bd.IntraTransferSec),
		report.Seconds(bd.InterTransferSec), report.Seconds(bd.DRAMSec), report.Seconds(bd.HostSec))
	if len(res.Timeline) > 0 {
		fmt.Println("  stage pipeline (one batch):")
		for _, p := range res.Timeline {
			fmt.Printf("    %-24s start=%-10s dur=%s\n", p.Name, report.Seconds(p.Start), report.Seconds(p.Dur))
		}
	}
}

// runDisasm prints a compiled kernel as encoded words plus assembly — the
// instruction stream the host actually sends (Section 4.1).
func runDisasm(kernel string) {
	plan := wavepim.Plan{Tech: wavepim.Naive, Layout: wavepim.AcousticOneBlock, SlotsPerElem: 1}
	c := wavepim.NewCompiler(plan, 8, dg.RiemannFlux)
	var prog []isa.Instr
	switch kernel {
	case "volume":
		prog = c.VolumeOneBlock()
	case "flux":
		prog = c.FluxOneBlock(mesh.FaceXMinus)
	case "integration":
		prog = c.IntegrationOneBlock(0)
	default:
		fmt.Fprintf(os.Stderr, "unknown kernel %q (volume, flux, integration)\n", kernel)
		os.Exit(2)
	}
	words, err := isa.Assemble(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s kernel: %d instructions (acoustic, naive layout, Riemann flux, 512-node element)\n\n",
		kernel, len(prog))
	for i, w := range words {
		fmt.Printf("%4d: %016x  %s\n", i, w, isa.Disassemble(prog[i]))
	}
	mix := isa.Mix(prog)
	a, mu := mix.ArithShare()
	fmt.Printf("\nop mix: %d instrs, %.0f%% arithmetic (%.0f%% of those multiplies)\n",
		mix.Total, a*100, mu*100)
}

func parseBench(s string) (opcount.Benchmark, bool) {
	for _, b := range opcount.AllBenchmarks() {
		if strings.EqualFold(b.Name(), s) {
			return b, true
		}
	}
	return opcount.Benchmark{}, false
}

func runFunctional(refine, np, steps int, topology, faultSpec, recoverSpec, reportPath, eventLogPath, flightPath string) {
	m := mesh.New(refine, np, true)
	mat := material.Acoustic{Kappa: 2.25, Rho: 1.0}
	fmt.Printf("functional PIM run: %d elements x %d nodes, %d steps, Riemann flux, %s interconnect\n",
		m.NumElem, m.NodesPerEl, steps, topology)

	ref := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, mat), dg.RiemannFlux)
	it := dg.NewAcousticIntegrator(ref)
	dt := ref.MaxStableDt(0.3)
	q := dg.NewAcousticState(m)
	dg.PlaneWaveX(m, mat, 1, q)
	qPim := q.Copy()

	opts := []wavepim.Option{
		wavepim.WithMesh(m),
		wavepim.WithAcousticMaterial(mat),
		wavepim.WithDt(dt),
		wavepim.WithTopology(topology),
	}
	// Telemetry wiring (the single-process analogue of wavepimd): an
	// event logger, and for -flight a sink-backed recorder teed into it.
	if eventLogPath != "" || flightPath != "" {
		w := os.Stderr
		if eventLogPath != "" && eventLogPath != "-" {
			f, err := os.Create(eventLogPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		var logW io.Writer = w
		if eventLogPath == "" {
			logW = io.Discard // -flight alone: record events, print none
		}
		log := eventlog.New(logW, eventlog.Debug)
		sink := obs.NewSink()
		fr := eventlog.NewFlightRecorder(sink.Trace, 256, 256)
		log.SetRecorder(fr)
		opts = append(opts,
			wavepim.WithObs(sink),
			wavepim.WithRunID("cli"),
			wavepim.WithEventLog(log.WithRun("cli")),
			wavepim.WithFlightRecorder(fr))
		if flightPath != "" {
			f, err := os.Create(flightPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			opts = append(opts, wavepim.WithFlightDump(f))
		}
	}
	faulted := faultSpec != "" || recoverSpec != ""
	if faultSpec != "" {
		fcfg, err := fault.ParseSpec(faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-faults: %v\n", err)
			os.Exit(2)
		}
		opts = append(opts, wavepim.WithFaults(fcfg))
	}
	if recoverSpec != "" {
		rec, err := fault.ParseRecoverySpec(recoverSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-recover: %v\n", err)
			os.Exit(2)
		}
		opts = append(opts, wavepim.WithRecovery(rec))
	}
	s, err := wavepim.NewSession(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Acoustic().Load(qPim)
	it.Run(q, 0, dt, steps)
	runErr := s.Run(context.Background(), steps)
	eng := s.Engine()

	if runErr == nil {
		got := dg.NewAcousticState(m)
		s.Acoustic().ReadState(got)
		var worst float64
		for i := range q.P {
			if d := math.Abs(q.P[i] - got.P[i]); d > worst {
				worst = d
			}
		}
		note := "float32 vs float64 round-off"
		if faulted {
			note = "includes healed-fault residue"
		}
		fmt.Printf("  max |PIM - reference| pressure deviation: %.3e (%s)\n", worst, note)
	}
	fmt.Printf("  simulated PIM time: %s   dynamic energy: %s\n",
		report.Seconds(eng.TotalTime()), report.Joules(eng.TotalEnergy))
	fmt.Printf("  instructions executed: %d   inter-block transfers: %d\n",
		eng.InstrCount, eng.TransferCt)
	if faulted {
		fmt.Printf("  %s\n", s.FaultReport())
		fmt.Printf("  timeline digest: %016x\n", eng.TimelineDigest())
	}
	if reportPath != "" {
		if err := writeFaultReport(reportPath, s, runErr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
}

// writeFaultReport writes the deterministic run artifact the reproducibility
// guard diffs byte-for-byte: the fault report plus the engine totals and the
// timeline digest. Field order is fixed by the struct.
func writeFaultReport(path string, s *wavepim.Session, runErr error) error {
	eng := s.Engine()
	art := struct {
		Report         fault.Report `json:"report"`
		SimSeconds     float64      `json:"sim_seconds"`
		DynamicJ       float64      `json:"dynamic_energy_joules"`
		Instructions   int64        `json:"instructions"`
		Transfers      int64        `json:"transfers"`
		TimelineDigest string       `json:"timeline_digest"`
		Error          string       `json:"error,omitempty"`
	}{
		Report:         s.FaultReport(),
		SimSeconds:     eng.TotalTime(),
		DynamicJ:       eng.TotalEnergy,
		Instructions:   int64(eng.InstrCount),
		Transfers:      int64(eng.TransferCt),
		TimelineDigest: fmt.Sprintf("%016x", eng.TimelineDigest()),
	}
	if runErr != nil {
		art.Error = runErr.Error()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		return err
	}
	return f.Close()
}
