package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/pim/fault"
	"wavepim/internal/wavepim"
)

// jobSpec is the POST /runs body: one functional simulation job in the
// vocabulary of the benchmark table (equation, mesh refinement, nodes per
// axis) plus the fault-injection spec strings the CLIs already accept.
type jobSpec struct {
	Equation   string  `json:"equation"`    // acoustic | elastic-central | elastic-riemann | maxwell
	Refine     int     `json:"refine"`      // mesh refinement level (default 1)
	Np         int     `json:"np"`          // GLL nodes per axis (default 4)
	Steps      int     `json:"steps"`       // time steps (default 4)
	CFL        float64 `json:"cfl"`         // CFL number for dt (default 0.3)
	Workers    int     `json:"workers"`     // engine worker pool (default: per core)
	Faults     string  `json:"faults"`      // fault.ParseSpec string, e.g. "seed=4,flip=1e-5"
	Recover    string  `json:"recover"`     // fault.ParseRecoverySpec string
	DeadlineMS int     `json:"deadline_ms"` // wall-clock run deadline (0: none)
}

// equationOf maps the wire name to the opcount constant.
func equationOf(s string) (opcount.Equation, bool) {
	switch s {
	case "", "acoustic":
		return opcount.Acoustic, true
	case "elastic-central":
		return opcount.ElasticCentral, true
	case "elastic-riemann":
		return opcount.ElasticRiemann, true
	case "maxwell":
		return opcount.Maxwell, true
	}
	return 0, false
}

// run is one tracked job. Mutable fields are guarded by mu; the HTTP
// layer reads through view().
type run struct {
	mu sync.Mutex

	id     string
	spec   jobSpec
	status string // "queued", "running", "done", "failed"
	errMsg string
	reason string // flight-dump reason on failure ("" otherwise)

	sink   *obs.Sink // per-run tracer over the shared registry
	report fault.Report
	dump   *eventlog.FlightDump
	wallSec float64
}

// runView is the JSON shape of a run in /runs responses. Field order is
// fixed by the struct, so listings are deterministic given equal state.
type runView struct {
	ID       string       `json:"id"`
	Status   string       `json:"status"`
	Equation string       `json:"equation"`
	Steps    int          `json:"steps"`
	Error    string       `json:"error,omitempty"`
	Reason   string       `json:"reason,omitempty"`
	HasDump  bool         `json:"has_flight_dump"`
	WallSec  float64      `json:"wall_seconds"`
	Report   fault.Report `json:"fault_report"`
}

func (r *run) view() runView {
	r.mu.Lock()
	defer r.mu.Unlock()
	eq, _ := equationOf(r.spec.Equation)
	return runView{
		ID: r.id, Status: r.status, Equation: eq.String(), Steps: r.spec.Steps,
		Error: r.errMsg, Reason: r.reason, HasDump: r.dump != nil,
		WallSec: r.wallSec, Report: r.report,
	}
}

// server owns the shared metrics registry, the run table, and the worker
// pool. One registry serves every run — per-phase histograms and rung
// counters aggregate across jobs, which is exactly what a Prometheus
// scraper wants — while traces and flight recorders are per run.
type server struct {
	reg    *obs.Registry
	log    *eventlog.Logger
	logW   io.Writer // per-run logger cores write here too
	level  eventlog.Level
	ready  time.Time

	traceCap     int
	flightEvents int
	flightSpans  int

	mu       sync.Mutex
	runs     map[string]*run
	order    []string
	seq      int
	jobs     chan *run
	draining bool

	wg sync.WaitGroup
}

// newServer builds the server and starts nWorkers job executors.
func newServer(nWorkers, queueCap, traceCap int, logW io.Writer, level eventlog.Level) *server {
	if nWorkers <= 0 {
		nWorkers = 1
	}
	if queueCap <= 0 {
		queueCap = 16
	}
	if traceCap <= 0 {
		traceCap = 4096
	}
	s := &server{
		reg:          obs.NewRegistry(),
		log:          eventlog.New(logW, level),
		logW:         logW,
		level:        level,
		ready:        time.Now(),
		traceCap:     traceCap,
		flightEvents: 256,
		flightSpans:  256,
		runs:         map[string]*run{},
		jobs:         make(chan *run, queueCap),
	}
	// Pre-register the rung families so a scrape taken before any fault
	// activity still exposes them (with zero values) — the CI smoke test
	// and dashboards key on these names existing.
	for _, rung := range []string{"ecc", "retry", "remap", "rollback"} {
		s.reg.CounterVec("sim.fault.rung_events", "rung").With(rung)
		s.reg.HistogramVec("sim.fault.mttr_seconds", "rung").With(rung)
	}
	for _, st := range []string{"done", "failed", "rejected"} {
		s.reg.CounterVec("wavepimd.runs", "status").With(st)
	}
	s.reg.Gauge("wavepimd.active_runs")
	s.reg.Gauge("wavepimd.queue_depth")
	for i := 0; i < nWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// drain stops accepting jobs and blocks until every queued and in-flight
// run has finished.
func (s *server) drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.jobs)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *server) worker() {
	defer s.wg.Done()
	for r := range s.jobs {
		s.reg.Gauge("wavepimd.queue_depth").Add(-1)
		s.reg.Gauge("wavepimd.active_runs").Add(1)
		s.execute(r)
		s.reg.Gauge("wavepimd.active_runs").Add(-1)
	}
}

// execute runs one job end to end: build the session over the shared
// registry plus a per-run capped tracer, wire a fresh event-log core teed
// into a per-run flight recorder, load the plane-wave initial condition,
// and run.
func (s *server) execute(r *run) {
	r.mu.Lock()
	r.status = "running"
	spec := r.spec
	id := r.id
	r.mu.Unlock()

	started := time.Now()
	sink := &obs.Sink{Reg: s.reg, Trace: obs.NewTracer().WithCap(s.traceCap)}
	// A fresh core per run: SetRecorder is core-wide, so concurrent runs
	// must not share one (a shared core would tee run A's events into run
	// B's recorder). The cores share the writer; each Write is one line.
	core := eventlog.New(s.logW, s.level)
	fr := eventlog.NewFlightRecorder(sink.Trace, s.flightEvents, s.flightSpans)
	core.SetRecorder(fr)

	sess, q, err := buildSession(spec, id, sink, core.WithRun(id), fr)
	if err != nil {
		s.finish(r, sink, nil, time.Since(started).Seconds(), err)
		return
	}
	loadState(sess, q)

	ctx := context.Background()
	if spec.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	runErr := sess.Run(ctx, spec.Steps)
	s.finish(r, sink, sess, time.Since(started).Seconds(), runErr)
}

// finish records a run's terminal state and daemon-level metrics.
func (s *server) finish(r *run, sink *obs.Sink, sess *wavepim.Session, wall float64, err error) {
	r.mu.Lock()
	r.sink = sink
	r.wallSec = wall
	if sess != nil {
		r.report = sess.FaultReport()
		r.dump = sess.FlightDump()
	}
	if err != nil {
		r.status = "failed"
		r.errMsg = err.Error()
		if r.dump != nil {
			r.reason = r.dump.Reason
		}
	} else {
		r.status = "done"
	}
	status := r.status
	id := r.id
	r.mu.Unlock()

	s.reg.CounterVec("wavepimd.runs", "status").With(status).Inc()
	s.reg.Histogram("wavepimd.run_wall_seconds").Observe(wall)
	if err != nil {
		s.log.Error("daemon.run_failed", eventlog.Str("run", id), eventlog.Str("error", err.Error()))
	} else {
		s.log.Info("daemon.run_done", eventlog.Str("run", id), eventlog.F64("wall_seconds", wall))
	}
}

// sessionState is the loaded initial condition, paired with its loader.
type sessionState struct {
	ac *dg.AcousticState
	el *dg.ElasticState
	mx *dg.MaxwellState
}

// buildSession constructs the session for a spec. The dt comes from the
// reference solver's CFL bound, like the functional CLIs.
func buildSession(spec jobSpec, id string, sink *obs.Sink, log *eventlog.Logger, fr *eventlog.FlightRecorder) (*wavepim.Session, sessionState, error) {
	var st sessionState
	eq, ok := equationOf(spec.Equation)
	if !ok {
		return nil, st, fmt.Errorf("unknown equation %q", spec.Equation)
	}
	refine, np := spec.Refine, spec.Np
	if refine <= 0 {
		refine = 1
	}
	if np <= 0 {
		np = 4
	}
	cfl := spec.CFL
	if cfl <= 0 {
		cfl = 0.3
	}
	m := mesh.New(refine, np, true)
	flux := wavepim.FluxFor(eq)

	var dt float64
	acMat := material.Acoustic{Kappa: 2.25, Rho: 1}
	elMat := material.Elastic{Lambda: 2, Mu: 1, Rho: 1}
	diel := material.Dielectric{Eps: 1, Mu: 1}
	switch eq {
	case opcount.Acoustic:
		dt = dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, acMat), flux).MaxStableDt(cfl)
		st.ac = dg.NewAcousticState(m)
		dg.PlaneWaveX(m, acMat, 1, st.ac)
	case opcount.ElasticCentral, opcount.ElasticRiemann:
		dt = dg.NewElasticSolver(m, material.UniformElastic(m.NumElem, elMat), flux).MaxStableDt(cfl)
		st.el = dg.NewElasticState(m)
		dg.PlaneWavePX(m, elMat, 1, st.el)
	case opcount.Maxwell:
		dt = dg.NewMaxwellSolver(m, diel, flux).MaxStableDt(cfl)
		st.mx = dg.NewMaxwellState(m)
		dg.PlaneWaveEM(m, diel, 1, st.mx)
	}

	opts := []wavepim.Option{
		wavepim.WithEquation(eq),
		wavepim.WithMesh(m),
		wavepim.WithDt(dt),
		wavepim.WithObs(sink),
		wavepim.WithRunID(id),
		wavepim.WithEventLog(log),
		wavepim.WithFlightRecorder(fr),
	}
	if spec.Workers > 0 {
		opts = append(opts, wavepim.WithWorkers(spec.Workers))
	}
	if spec.Faults != "" {
		fcfg, err := fault.ParseSpec(spec.Faults)
		if err != nil {
			return nil, st, fmt.Errorf("faults spec: %w", err)
		}
		opts = append(opts, wavepim.WithFaults(fcfg))
	}
	if spec.Recover != "" {
		rec, err := fault.ParseRecoverySpec(spec.Recover)
		if err != nil {
			return nil, st, fmt.Errorf("recover spec: %w", err)
		}
		opts = append(opts, wavepim.WithRecovery(rec))
	}
	sess, err := wavepim.NewSession(opts...)
	return sess, st, err
}

func loadState(s *wavepim.Session, st sessionState) {
	switch {
	case st.ac != nil:
		s.Acoustic().Load(st.ac)
	case st.el != nil:
		s.Elastic().Load(st.el)
	case st.mx != nil:
		s.Maxwell().Load(st.mx)
	}
}

// ---------------------------------------------------------------------------
// HTTP layer
// ---------------------------------------------------------------------------

// handler builds the daemon's mux.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /runs/{id}/flight", s.handleFlight)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec jobSpec
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if _, ok := equationOf(spec.Equation); !ok {
		httpError(w, http.StatusBadRequest, "unknown equation %q", spec.Equation)
		return
	}
	if spec.Steps <= 0 {
		spec.Steps = 4
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	s.seq++
	r := &run{id: fmt.Sprintf("r%04d", s.seq), spec: spec, status: "queued"}
	select {
	case s.jobs <- r:
		s.runs[r.id] = r
		s.order = append(s.order, r.id)
	default:
		s.seq--
		s.mu.Unlock()
		s.reg.CounterVec("wavepimd.runs", "status").With("rejected").Inc()
		httpError(w, http.StatusServiceUnavailable, "job queue full")
		return
	}
	s.mu.Unlock()

	s.reg.Gauge("wavepimd.queue_depth").Add(1)
	s.log.Info("daemon.run_queued", eventlog.Str("run", r.id), eventlog.Str("equation", spec.Equation))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": r.id})
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]runView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.runs[id].view())
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(views)
}

func (s *server) lookup(req *http.Request) (*run, bool) {
	s.mu.Lock()
	r, ok := s.runs[req.PathValue("id")]
	s.mu.Unlock()
	return r, ok
}

func (s *server) handleRun(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.view())
}

func (s *server) handleTrace(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	r.mu.Lock()
	sink := r.sink
	status := r.status
	r.mu.Unlock()
	if sink == nil {
		httpError(w, http.StatusConflict, "run is %s; trace not available yet", status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	sink.WriteTrace(w)
}

func (s *server) handleFlight(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	r.mu.Lock()
	dump := r.dump
	r.mu.Unlock()
	if dump == nil {
		httpError(w, http.StatusNotFound, "run has no flight dump")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	dump.WriteJSON(w)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		// The exposition bytes are already flushed; a latched registration
		// conflict is a programming error worth surfacing loudly in logs.
		s.log.Error("daemon.metrics_conflict", eventlog.Str("error", err.Error()))
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok\n")
}

func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	io.WriteString(w, "ready\n")
}
