// Command wavepimd is the long-running telemetry-serving daemon: it
// executes functional Wave-PIM simulation jobs submitted over HTTP and
// exposes the full observability surface of the reproduction —
// Prometheus metrics, structured JSONL event logs, Chrome traces, and
// fault flight-recorder dumps.
//
//	wavepimd -addr :8080 &
//	curl -s -X POST localhost:8080/runs -d '{"equation":"acoustic","steps":4,"faults":"seed=4,flip=1e-5,stuck=1e-6"}'
//	curl -s localhost:8080/metrics | grep sim_fault_rung_events
//
// Endpoints:
//
//	POST /runs             submit a job (jobSpec JSON); 202 + {"id": ...}
//	GET  /runs             list runs with status and fault report
//	GET  /runs/{id}        one run's status
//	GET  /runs/{id}/trace  the run's Chrome trace (chrome://tracing)
//	GET  /runs/{id}/flight the run's flight-recorder dump (404 if none)
//	GET  /metrics          Prometheus text exposition (shared registry)
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 while draining)
//	     /debug/pprof/*    Go runtime profiles
//
// Shutdown (SIGINT/SIGTERM) is graceful: readiness flips to 503, queued
// and in-flight runs drain, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wavepim/internal/obs/eventlog"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent simulation jobs")
	queue := flag.Int("queue", 16, "job queue capacity (submits beyond it get 503)")
	traceCap := flag.Int("tracecap", 4096, "per-run span ring capacity")
	logLevel := flag.String("loglevel", "info", "event log level: debug, info, warn, error")
	flag.Parse()

	srv := newServer(*workers, *queue, *traceCap, os.Stderr, eventlog.ParseLevel(*logLevel))
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	srv.log.Info("daemon.listening", eventlog.Str("addr", *addr), eventlog.Int("workers", *workers))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		srv.log.Info("daemon.shutdown", eventlog.Str("signal", sig.String()))
		srv.drain() // readiness flips to 503; queued + in-flight runs finish
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
