// Command wavepimd is the long-running telemetry-serving daemon: it
// executes functional Wave-PIM simulation jobs submitted over HTTP and
// exposes the full observability surface of the reproduction —
// Prometheus metrics, structured JSONL event logs, live SSE event
// streams, Chrome traces, and fault flight-recorder dumps. The daemon
// logic lives in internal/serve; this shell parses flags, wires signals,
// and (optionally) keeps the worker registered with a wavepimctl
// coordinator.
//
//	wavepimd -addr :8080 &
//	curl -s -X POST localhost:8080/v1/runs -d '{"equation":"acoustic","steps":4,"faults":"seed=4,flip=1e-5,stuck=1e-6"}'
//	curl -s localhost:8080/v1/metrics | grep sim_fault_rung_events
//
// Endpoints (versioned under /v1; the legacy unversioned paths answer
// 308 permanent redirects, so curl -L and Go's default client keep
// working):
//
//	POST /v1/runs              submit a job (JobSpec JSON); 202 + {"id": ...}
//	                           (resubmitting a client-supplied id: 200 + same id)
//	GET  /v1/runs              list runs with status and fault report
//	GET  /v1/runs/{id}         one run's status
//	GET  /v1/runs/{id}/events  the run's event log as SSE (replay + live follow)
//	GET  /v1/runs/{id}/trace   the run's Chrome trace (chrome://tracing)
//	GET  /v1/runs/{id}/flight  the run's flight-recorder dump (404 if none)
//	GET  /v1/metrics           Prometheus text exposition (shared registry)
//	GET  /v1/healthz           liveness
//	GET  /v1/readyz            readiness (503 while draining)
//	     /debug/pprof/*        Go runtime profiles (also under /v1)
//
// A JobSpec may carry "topology" (htree | bus | mesh | torus | flatfly |
// dragonfly) to pick the tile interconnect; omitted means htree. Every
// error response is the typed JSON envelope {code, message, retryable}.
//
// A submission may carry an X-Wavepim-Trace header (set by wavepimctl
// when it dispatches a job): the worker adopts the cluster trace id, so
// the run view, its event lines, and any flight dump all attribute back
// to the coordinator's merged per-job trace.
//
// Shutdown (SIGINT/SIGTERM) is graceful: the worker deregisters from its
// coordinator (if any), readiness flips to 503, queued and in-flight
// runs drain, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wavepim/internal/cluster"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent simulation jobs")
	queue := flag.Int("queue", 16, "job queue capacity (submits beyond it get 503)")
	traceCap := flag.Int("tracecap", 4096, "per-run span ring capacity")
	logLevel := flag.String("loglevel", "info", "event log level: debug, info, warn, error")
	coordinator := flag.String("coordinator", "", "wavepimctl base URL to register with (empty: standalone)")
	name := flag.String("name", "", "worker id for cluster registration (default: the listen address)")
	advertise := flag.String("advertise", "", "base URL the coordinator reaches this worker at (default: http://<addr>)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "cluster re-registration interval")
	flag.Parse()

	srv := serve.NewServer(serve.Options{
		Workers:  *workers,
		QueueCap: *queue,
		TraceCap: *traceCap,
		LogW:     os.Stderr,
		Level:    eventlog.ParseLevel(*logLevel),
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	srv.Log().Info("daemon.listening", eventlog.Str("addr", *addr), eventlog.Int("workers", *workers))

	var hb *cluster.Heartbeater
	if *coordinator != "" {
		id := *name
		if id == "" {
			id = *addr
		}
		url := *advertise
		if url == "" {
			url = "http://" + *addr
		}
		hb = &cluster.Heartbeater{Coordinator: *coordinator, ID: id, URL: url, Interval: *heartbeat}
		if err := hb.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv.Log().Info("daemon.registered", eventlog.Str("coordinator", *coordinator), eventlog.Str("worker", id))
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		srv.Log().Info("daemon.shutdown", eventlog.Str("signal", sig.String()))
		if hb != nil {
			hb.Stop()
			if err := hb.Deregister(); err != nil {
				srv.Log().Warn("daemon.deregister_failed", eventlog.Str("error", err.Error()))
			}
		}
		srv.Drain() // readiness flips to 503; queued + in-flight runs finish
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
