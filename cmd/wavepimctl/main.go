// Command wavepimctl is the cluster coordinator: it shards simulation
// jobs across a fleet of registered wavepimd workers with a
// consistent-hash ring, applies per-tenant admission control with
// priority queues on top of the workers' own backpressure, and
// aggregates the fleet's telemetry into single deterministic views.
//
//	wavepimctl -addr :9090 &
//	wavepimd -addr :8081 -coordinator http://127.0.0.1:9090 -name w1 &
//	wavepimd -addr :8082 -coordinator http://127.0.0.1:9090 -name w2 &
//	curl -s -X POST localhost:9090/v1/jobs -d '{"equation":"acoustic","steps":4,"id":"demo-1"}'
//	curl -s localhost:9090/v1/jobs/demo-1
//	curl -s localhost:9090/v1/metrics | grep 'worker="w1"'
//
// Endpoints (versioned under /v1; the legacy unversioned paths answer
// 308 permanent redirects):
//
//	POST /v1/jobs             submit a job; 202 + {"id": ...}. Resubmitting a
//	                          finished job's id (or a content-identical spec)
//	                          returns the cached report, byte-for-byte.
//	GET  /v1/jobs             list jobs in submission order (with per-stage latency)
//	GET  /v1/jobs/{id}        one job (finished: the worker's report, verbatim)
//	GET  /v1/jobs/{id}/events the job's event stream, proxied from its worker
//	GET  /v1/jobs/{id}/trace  the merged cluster-level Chrome trace: coordinator
//	                          spans (admission, queue, dispatch attempts, backoff,
//	                          breaker stalls) plus the owning worker's execution
//	                          trace, one document per job
//	POST /v1/register         worker heartbeat
//	POST /v1/deregister       worker draining handoff
//	GET  /v1/workers          live membership
//	GET  /v1/metrics          aggregated Prometheus exposition (worker="..." labels)
//	GET  /v1/healthz, readyz  liveness and readiness
//	     /debug/pprof/*       Go runtime profiles (only with -pprof)
//
// A JobSpec may carry "topology" (htree | bus | mesh | torus | flatfly |
// dragonfly); it participates in the content digest, so the same spec on
// two topologies is two distinct cached results. Every error response is
// the typed JSON envelope {code, message, retryable}.
//
// With -eventlog the coordinator emits structured JSONL job-lifecycle
// events (job.submit, job.dispatch, job.retry, job.terminal); with
// -flightdump it additionally keeps a flight recorder of recent events
// and snapshots it to the named file whenever a job exhausts its retry
// budget.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wavepim/internal/cluster"
	"wavepim/internal/obs/eventlog"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	ttl := flag.Duration("ttl", 10*time.Second, "worker heartbeat TTL")
	dispatchers := flag.Int("dispatchers", 8, "concurrent dispatch loops")
	maxQueued := flag.Int("max-queued", 1024, "per-tenant queued-job quota")
	maxActive := flag.Int("max-active", 256, "per-tenant active-job quota")
	journalPath := flag.String("journal", "", "append-only JSONL job journal; replayed on startup (empty: in-memory only)")
	maxRetries := flag.Int("max-retries", 64, "per-job dispatch retry budget")
	backoffBase := flag.Duration("backoff-base", 10*time.Millisecond, "first-retry backoff")
	backoffCap := flag.Duration("backoff-cap", 2*time.Second, "retry backoff ceiling")
	seed := flag.Uint64("seed", 0, "seed for deterministic retry jitter")
	maxJobs := flag.Int("max-jobs", 16384, "tracked-job bound; oldest terminal jobs evict beyond it")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive dispatch failures that open a worker's circuit")
	breakerProbe := flag.Duration("breaker-probe", 500*time.Millisecond, "open-circuit probe delay")
	eventLog := flag.String("eventlog", "", "JSONL job-lifecycle event log destination ('-': stderr, empty: off)")
	logLevel := flag.String("loglevel", "info", "event log level: debug, info, warn, error")
	flightDump := flag.String("flightdump", "", "file automatic flight dumps are appended to on retry exhaustion (requires -eventlog)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof on the coordinator mux")
	flag.Parse()

	opts := cluster.CoordinatorOptions{
		TTL:         *ttl,
		Dispatchers: *dispatchers,
		Quota:       cluster.QuotaConfig{MaxQueued: *maxQueued, MaxActive: *maxActive},
		MaxRetries:  *maxRetries,
		BackoffBase: *backoffBase,
		BackoffCap:  *backoffCap,
		Seed:        *seed,
		MaxJobs:     *maxJobs,
		Breaker:     cluster.BreakerConfig{Threshold: *breakerThreshold, Probe: *breakerProbe},
	}
	if *eventLog != "" {
		w := io.Writer(os.Stderr)
		if *eventLog != "-" {
			f, err := os.OpenFile(*eventLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		opts.Log = eventlog.New(w, eventlog.ParseLevel(*logLevel))
		if *flightDump != "" {
			f, err := os.OpenFile(*flightDump, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			opts.FlightW = f
		}
	} else if *flightDump != "" {
		fmt.Fprintln(os.Stderr, "wavepimctl: -flightdump requires -eventlog")
		os.Exit(1)
	}
	var journal *cluster.Journal
	if *journalPath != "" {
		j, recs, err := cluster.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		journal = j
		opts.Journal = j
		opts.Replay = recs
	}
	coord := cluster.NewCoordinator(opts)
	if journal != nil {
		r := coord.Replay()
		fmt.Fprintf(os.Stderr, "wavepimctl journal %s: %d records, %d restored, %d requeued, %d dropped\n",
			*journalPath, r.Records, r.Restored, r.Requeued, r.Dropped)
	}
	handler := coord.Handler()
	if *pprofOn {
		// The coordinator serves operator traffic; profiles are opt-in so a
		// default deployment exposes no runtime internals.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "wavepimctl listening on %s\n", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigCh:
		coord.Close()
		if journal != nil {
			if err := journal.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
