// Command paperbench regenerates every table and figure of the Wave-PIM
// paper's evaluation from the reproduction's models.
//
// Usage:
//
//	paperbench               # everything
//	paperbench -exp fig11    # one experiment
//	                         # (sec3.1, table2..table6, fig11..fig14, headline)
package main

import (
	"flag"
	"fmt"
	"os"

	"wavepim/internal/experiments"
	"wavepim/internal/pim/chip"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, sec3.1, table2, table3, table4, table5, table6, fig11, fig12, fig13, fig14, opmix, headline")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	any := false

	if run("sec3.1") {
		fmt.Println(experiments.Sec31Table())
		any = true
	}
	if run("table2") {
		fmt.Println(experiments.Table2())
		any = true
	}
	if run("table3") {
		fmt.Println(experiments.Table3Table())
		any = true
	}
	if run("table4") {
		fmt.Println(experiments.Table4())
		any = true
	}
	if run("table5") {
		fmt.Println(experiments.Table5Table())
		any = true
	}
	if run("table6") {
		fmt.Println(experiments.Table6Table())
		any = true
	}
	if run("fig11") || run("fig12") {
		rows := experiments.Fig11And12()
		if run("fig11") {
			fmt.Println(experiments.Fig11Table(rows))
		}
		if run("fig12") {
			fmt.Println(experiments.Fig12Table(rows))
		}
		any = true
	}
	if run("fig13") {
		fmt.Println(experiments.Fig13Table())
		any = true
	}
	if run("opmix") {
		fmt.Println(experiments.OpMixTable())
		any = true
	}
	if run("maxwell") {
		fmt.Println(experiments.MaxwellTable())
		any = true
	}
	if run("fig14") {
		fmt.Println(experiments.Fig14Table())
		fmt.Printf("H-tree total-time savings over Bus (mean of the four cases): %.2fx (paper: ~2.16x)\n\n",
			experiments.HTreeTimeSavings())
		any = true
	}
	if run("headline") {
		h := experiments.Headline()
		fmt.Println("Headline averages (28nm PIM vs fused GPU implementations, mean over 6 benchmarks x 4 PIM configs)")
		for _, g := range []string{"Fused-1080Ti", "Fused-P100", "Fused-V100"} {
			fmt.Printf("  vs %-13s speedup %7.2fx   energy savings %6.2fx\n", g, h.SpeedupVsGPU[g], h.EnergyVsGPU[g])
		}
		fmt.Printf("  overall: %.2fx speedup, %.2fx energy savings (paper: 41.98x, 12.66x)\n", h.AvgSpeedup, h.AvgEnergy)
		fmt.Printf("  chip configurations evaluated: ")
		for _, c := range chip.AllConfigs() {
			fmt.Printf("%s ", c.Name)
		}
		fmt.Println()
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
