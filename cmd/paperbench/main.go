// Command paperbench regenerates every table and figure of the Wave-PIM
// paper's evaluation from the reproduction's models.
//
// Usage:
//
//	paperbench               # everything
//	paperbench -exp fig11    # one experiment
//	                         # (sec3.1, table2..table6, fig11..fig14, headline)
//
// With -trace and/or -metrics it instead times one instrumented PIM run
// (selected by -eq, -refine, -chip) and exports its observability output:
// a Chrome trace_event JSON of the Figure 13 stage pipeline, and the full
// metrics-registry snapshot.
//
// With -topologysweep it runs every benchmark on every constructible tile
// interconnect (htree, bus, mesh, torus, flatfly, dragonfly) for the -chip
// configuration and writes the byte-deterministic JSON comparison report
// (per-topology run time, energy, backpressure, switch-occupancy
// histograms, stage timelines) to the given file ('-' for stdout):
//
//	paperbench -chip PIM-2GB -steps 8 -topologysweep report.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/experiments"
	"wavepim/internal/obs"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/pim/chip"
	"wavepim/internal/wavepim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, sec3.1, table2, table3, table4, table5, table6, fig11, fig12, fig13, fig14, opmix, headline")
	tracePath := flag.String("trace", "", "write a Chrome trace of one instrumented run to this file")
	metricsPath := flag.String("metrics", "", "write one instrumented run's metrics registry (JSON) to this file")
	eqName := flag.String("eq", "acoustic", "instrumented run equation: acoustic, elastic-central, elastic-riemann, maxwell")
	refine := flag.Int("refine", 4, "instrumented run refinement level")
	chipName := flag.String("chip", "PIM-16GB", "instrumented run chip configuration (PIM-512MB, PIM-2GB, PIM-8GB, PIM-16GB)")
	eventLogPath := flag.String("eventlog", "", "instrumented run: write structured JSONL events to this file ('-' for stderr)")
	sweepPath := flag.String("topologysweep", "", "run the interconnect topology sweep and write its JSON report to this file ('-' for stdout)")
	sweepSteps := flag.Int("steps", 0, "topology sweep: time steps (0 = the paper's 1024)")
	flag.Parse()

	if *sweepPath != "" {
		if err := topologySweep(*chipName, *sweepSteps, *sweepPath); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	if *tracePath != "" || *metricsPath != "" || *eventLogPath != "" {
		if err := instrumentedRun(*eqName, *refine, *chipName, *tracePath, *metricsPath, *eventLogPath); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	any := false

	if run("sec3.1") {
		fmt.Println(experiments.Sec31Table())
		any = true
	}
	if run("table2") {
		fmt.Println(experiments.Table2())
		any = true
	}
	if run("table3") {
		fmt.Println(experiments.Table3Table())
		any = true
	}
	if run("table4") {
		fmt.Println(experiments.Table4())
		any = true
	}
	if run("table5") {
		fmt.Println(experiments.Table5Table())
		any = true
	}
	if run("table6") {
		fmt.Println(experiments.Table6Table())
		any = true
	}
	if run("fig11") || run("fig12") {
		rows := experiments.Fig11And12()
		if run("fig11") {
			fmt.Println(experiments.Fig11Table(rows))
		}
		if run("fig12") {
			fmt.Println(experiments.Fig12Table(rows))
		}
		any = true
	}
	if run("fig13") {
		fmt.Println(experiments.Fig13Table())
		any = true
	}
	if run("opmix") {
		fmt.Println(experiments.OpMixTable())
		any = true
	}
	if run("maxwell") {
		fmt.Println(experiments.MaxwellTable())
		any = true
	}
	if run("fig14") {
		fmt.Println(experiments.Fig14Table())
		fmt.Printf("H-tree total-time savings over Bus (mean of the four cases): %.2fx (paper: ~2.16x)\n\n",
			experiments.HTreeTimeSavings())
		any = true
	}
	if run("headline") {
		h := experiments.Headline()
		fmt.Println("Headline averages (28nm PIM vs fused GPU implementations, mean over 6 benchmarks x 4 PIM configs)")
		for _, g := range []string{"Fused-1080Ti", "Fused-P100", "Fused-V100"} {
			fmt.Printf("  vs %-13s speedup %7.2fx   energy savings %6.2fx\n", g, h.SpeedupVsGPU[g], h.EnergyVsGPU[g])
		}
		fmt.Printf("  overall: %.2fx speedup, %.2fx energy savings (paper: 41.98x, 12.66x)\n", h.AvgSpeedup, h.AvgEnergy)
		fmt.Printf("  chip configurations evaluated: ")
		for _, c := range chip.AllConfigs() {
			fmt.Printf("%s ", c.Name)
		}
		fmt.Println()
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// chipByName resolves one of the four evaluation chip configurations.
func chipByName(name string) (chip.Config, error) {
	for _, c := range chip.AllConfigs() {
		if c.Name == name {
			return c, nil
		}
	}
	return chip.Config{}, fmt.Errorf("unknown chip configuration %q", name)
}

// topologySweep runs the full interconnect comparison and writes the
// byte-deterministic JSON report; the human-readable summary table goes
// to stdout unless the report itself does.
func topologySweep(chipName string, steps int, path string) error {
	cfg, err := chipByName(chipName)
	if err != nil {
		return err
	}
	rep, err := experiments.TopologySweep(cfg, steps)
	if err != nil {
		return err
	}
	if path == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println(experiments.TopologySweepTable(rep))
	return nil
}

// instrumentedRun times one benchmark with an observability sink attached
// and exports the requested artifacts.
func instrumentedRun(eqName string, refine int, chipName, tracePath, metricsPath, eventLogPath string) error {
	var eq opcount.Equation
	switch eqName {
	case "acoustic":
		eq = opcount.Acoustic
	case "elastic-central":
		eq = opcount.ElasticCentral
	case "elastic-riemann":
		eq = opcount.ElasticRiemann
	case "maxwell":
		eq = opcount.Maxwell
	default:
		return fmt.Errorf("unknown equation %q", eqName)
	}
	cfg, err := chipByName(chipName)
	if err != nil {
		return err
	}
	var log *eventlog.Logger
	switch eventLogPath {
	case "":
	case "-":
		log = eventlog.New(os.Stderr, eventlog.Debug)
	default:
		f, err := os.Create(eventLogPath)
		if err != nil {
			return err
		}
		defer f.Close()
		log = eventlog.New(f, eventlog.Debug)
	}
	sink := obs.NewSink()
	opt := wavepim.DefaultOptions()
	opt.Obs = sink
	b := opcount.Benchmark{Eq: eq, Refinement: refine}
	log.Info("bench.start", eventlog.Str("bench", b.Name()), eventlog.Str("chip", cfg.Name))
	res, err := wavepim.Run(b, cfg, opt)
	if err != nil {
		log.Error("bench.error", eventlog.Str("error", err.Error()))
		return err
	}
	log.Info("bench.end",
		eventlog.F64("total_seconds", res.TotalSec),
		eventlog.F64("energy_joules", res.EnergyJ))
	fmt.Printf("%s on %s: %.4fs total, %.2f J, %d instr/stage\n",
		b.Name(), cfg.Name, res.TotalSec, res.EnergyJ, res.InstrPerStage)
	write := func(path string, export func(w io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := export(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		return f.Close()
	}
	if err := write(tracePath, sink.WriteTrace); err != nil {
		return err
	}
	return write(metricsPath, sink.WriteMetrics)
}
