module wavepim

go 1.22
