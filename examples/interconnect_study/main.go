// Interconnect study: the Section 4.2 / Figure 14 design-space
// exploration. Compares the H-tree and Bus interconnects on the paper's
// four cases, demonstrates the parallel-versus-serialized transfer
// behaviour on a micro-benchmark, and sweeps the H-tree fanout (the paper:
// "the number of children of a tree node does not have to be 4").
package main

import (
	"fmt"

	"wavepim/internal/experiments"
	"wavepim/internal/pim/intercon"
	"wavepim/internal/report"
)

func main() {
	// Micro-benchmark: the Figure 3 example — Block 0 -> 2 and Block 5 -> 7
	// run concurrently on the H-tree but serialize on the bus.
	batch := []intercon.Transfer{
		{Src: 0, Dst: 2, Words: 32},
		{Src: 5, Dst: 7, Words: 32},
	}
	h := intercon.ScheduleBatch(intercon.NewHTree(16, 4), batch)
	b := intercon.ScheduleBatch(intercon.NewBus(16), batch)
	fmt.Println("Figure 3 micro-benchmark (two disjoint transfers in a 16-block tile):")
	fmt.Printf("  H-tree: %s (transfers overlap in disjoint S0 subtrees)\n", report.Seconds(h.Makespan))
	fmt.Printf("  Bus:    %s (the single switch serializes them)\n", report.Seconds(b.Makespan))

	// Leakage trade-off (Section 4.2.2).
	ht := intercon.NewHTree(256, 4)
	bus := intercon.NewBus(256)
	fmt.Printf("\nleakage, 256-block tile: H-tree %d switches %.1f mW vs Bus 1 switch %.1f mW\n",
		ht.SwitchCount(), ht.LeakagePowerW()*1e3, bus.LeakagePowerW()*1e3)

	// Fanout sweep: switch count and worst-case route depth.
	fmt.Println("\nH-tree fanout sweep (256-block tile):")
	fmt.Printf("  %-7s %-9s %-12s\n", "fanout", "switches", "max hops")
	for _, fo := range []int{2, 4, 8, 16} {
		t := intercon.NewHTree(256, fo)
		fmt.Printf("  %-7d %-9d %-12d\n", fo, t.SwitchCount(), len(t.Path(0, 255)))
	}

	// The full Figure 14 study.
	fmt.Println()
	fmt.Println(experiments.Fig14Table())
	fmt.Printf("H-tree total-time savings over Bus: %.2fx (paper: ~2.16x)\n",
		experiments.HTreeTimeSavings())
}
