// Electromagnetic cavity: the paper's third wave family ("antenna, radar,
// and satellites" modeling motivates the electromagnetic case). A
// periodic dielectric cavity carries superposed plane-wave modes; the
// example verifies the light speed and wave impedance, shows
// energy conservation of the central flux versus controlled upwind
// dissipation, and runs the identical physics functionally inside
// simulated PIM crossbars using the two-block E/H mapping.
package main

import (
	"fmt"
	"math"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/report"
	"wavepim/internal/wavepim"
)

func main() {
	m := mesh.New(1, 6, true)
	diel := material.Dielectric{Eps: 2.25, Mu: 1.0}
	fmt.Printf("dielectric cavity: %d elements, c = %.4f, impedance eta = %.4f\n",
		m.NumElem, diel.LightSpeed(), diel.Impedance())

	// Plane-wave transit: one full domain crossing should return the wave
	// to its initial position (periodic cavity).
	s := dg.NewMaxwellSolver(m, diel, dg.RiemannFlux)
	q := dg.NewMaxwellState(m)
	dg.PlaneWaveEM(m, diel, 1, q)
	it := dg.NewMaxwellIntegrator(s)
	dt := s.MaxStableDt(0.3)
	transit := 1 / diel.LightSpeed() // time for one domain length
	steps := int(math.Round(transit / dt))
	dtExact := transit / float64(steps)
	it.Run(q, dtExact, steps)
	var worst float64
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < m.NodesPerEl; n++ {
			x, _, _ := m.NodePosition(e, n)
			want := math.Sin(2 * math.Pi * x) // back to the start
			if d := math.Abs(q.E[1][e*m.NodesPerEl+n] - want); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("full cavity transit (%d steps): max field error %.2e\n", steps, worst)

	// Energy behaviour of the two flux solvers on an under-resolved mode.
	for _, flux := range []dg.FluxType{dg.CentralFlux, dg.RiemannFlux} {
		s := dg.NewMaxwellSolver(m, diel, flux)
		q := dg.NewMaxwellState(m)
		dg.PlaneWaveEM(m, diel, 2, q)
		it := dg.NewMaxwellIntegrator(s)
		e0 := s.Energy(q)
		it.Run(q, s.MaxStableDt(0.3), 100)
		e1 := s.Energy(q)
		fmt.Printf("%s flux: energy %.6f -> %.6f (drift %.2e)\n", flux, e0, e1, math.Abs(e1-e0)/e0)
	}

	// The same physics inside simulated PIM crossbars: the two-block E/H
	// element (the paper's claim that the acoustic/elastic strategies
	// carry to electromagnetics, executed end to end).
	small := mesh.New(1, 4, true)
	ref := dg.NewMaxwellSolver(small, diel, dg.RiemannFlux)
	refIt := dg.NewMaxwellIntegrator(ref)
	sdt := ref.MaxStableDt(0.3)
	qr := dg.NewMaxwellState(small)
	dg.PlaneWaveEM(small, diel, 1, qr)
	qPim := qr.Copy()
	fm, err := wavepim.NewFunctionalMaxwell(small, diel, dg.RiemannFlux, sdt)
	if err != nil {
		panic(err)
	}
	fm.Load(qPim)
	refIt.Run(qr, sdt, 3)
	fm.Run(3)
	got := dg.NewMaxwellState(small)
	fm.ReadState(got)
	var dev float64
	for d := 0; d < 3; d++ {
		for i := range qr.E[d] {
			if x := math.Abs(qr.E[d][i] - got.E[d][i]); x > dev {
				dev = x
			}
			if x := math.Abs(qr.H[d][i] - got.H[d][i]); x > dev {
				dev = x
			}
		}
	}
	fmt.Printf("\nfunctional PIM (two-block E/H element): max deviation %.2e over 3 steps\n", dev)
	fmt.Printf("  %d instructions, %d transfers, %s simulated PIM time\n",
		fm.Engine.InstrCount, fm.Engine.TransferCt, report.Seconds(fm.Engine.TotalTime()))
}
