// Quickstart: simulate an acoustic plane wave three ways —
//
//  1. with the reference discontinuous-Galerkin solver (float64 ground
//     truth),
//  2. functionally inside simulated PIM crossbar cells (every value lives
//     in memristor arrays, every kernel runs as compiled PIM
//     instructions), and
//  3. as a timed run of the paper's Acoustic_4 benchmark on the 2 GB
//     Wave-PIM chip versus the fused Tesla V100 baseline.
package main

import (
	"fmt"
	"math"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/gpu"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/report"
	"wavepim/internal/wavepim"
)

func main() {
	// --- 1. Reference solve ---
	m := mesh.New(1, 4, true) // 8 elements, 64 GLL nodes each, periodic
	water := material.Acoustic{Kappa: 2.25, Rho: 1.0}
	solver := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, water), dg.RiemannFlux)
	q := dg.NewAcousticState(m)
	dg.PlaneWaveX(m, water, 1, q)
	qPim := q.Copy()

	it := dg.NewAcousticIntegrator(solver)
	dt := solver.MaxStableDt(0.3)
	const steps = 5
	it.Run(q, 0, dt, steps)
	fmt.Printf("reference dG solver: %d elements, dt=%.2e, %d steps\n", m.NumElem, dt, steps)

	// --- 2. The same simulation inside PIM crossbars ---
	fa, err := wavepim.NewFunctionalAcoustic(m, water, dg.RiemannFlux, dt)
	if err != nil {
		panic(err)
	}
	fa.Load(qPim)
	fa.Run(steps)
	got := dg.NewAcousticState(m)
	fa.ReadState(got)

	var worst float64
	for i := range q.P {
		if d := math.Abs(q.P[i] - got.P[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("functional PIM run:  max deviation from reference %.2e (float32 round-off)\n", worst)
	fmt.Printf("                     %d PIM instructions, %d inter-block transfers, %s simulated\n",
		fa.Engine.InstrCount, fa.Engine.TransferCt, report.Seconds(fa.Engine.TotalTime()))

	// --- 3. Paper-scale timing: Acoustic_4 on the 2 GB chip vs Fused-V100 ---
	bench := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	res, err := wavepim.Run(bench, chip.Config2GB(), wavepim.DefaultOptions())
	if err != nil {
		panic(err)
	}
	v100 := gpu.Model{Spec: params.TeslaV100, Impl: gpu.Fused}
	gt := v100.RunTime(bench, params.TimeStepsPerRun)
	fmt.Printf("\npaper benchmark %s (1024 steps):\n", bench.Name())
	fmt.Printf("  Wave-PIM 2GB (%s): %s, %s\n", res.Plan.Table5String(),
		report.Seconds(res.TotalSec), report.Joules(res.EnergyJ))
	fmt.Printf("  Fused V100 model:   %s, %s\n", report.Seconds(gt), report.Joules(v100.Energy(bench, params.TimeStepsPerRun)))
	fmt.Printf("  PIM speedup: %.1fx\n", gt/res.TotalSec)
}
