// Elastic waves with the Riemann solver: simultaneous P- and S-wave
// propagation through an elastic solid — the paper's most expensive
// benchmark group. The example verifies both wave speeds against the
// analytic solutions, shows the upwind solver's controlled dissipation,
// runs the same physics functionally inside simulated PIM crossbars, and
// times the production-sized Elastic-Riemann benchmarks on the PIM chips.
package main

import (
	"fmt"
	"math"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/chip"
	"wavepim/internal/report"
	"wavepim/internal/wavepim"
)

func main() {
	m := mesh.New(1, 6, true)
	rock := material.Elastic{Lambda: 2, Mu: 1, Rho: 1} // cp = 2, cs = 1
	solver := dg.NewElasticSolver(m, material.UniformElastic(m.NumElem, rock), dg.RiemannFlux)
	it := dg.NewElasticIntegrator(solver)
	dt := solver.MaxStableDt(0.3)

	// P-wave accuracy.
	qp := dg.NewElasticState(m)
	dg.PlaneWavePX(m, rock, 1, qp)
	tEnd := it.Run(qp, 0, dt, 60)
	var errP float64
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < m.NodesPerEl; n++ {
			x, _, _ := m.NodePosition(e, n)
			want := dg.PlaneWavePXAt(rock, 1, x, tEnd)
			if d := math.Abs(qp.V[0][e*m.NodesPerEl+n] - want); d > errP {
				errP = d
			}
		}
	}

	// S-wave accuracy (half the speed, twice the transit time).
	qs := dg.NewElasticState(m)
	dg.PlaneWaveSX(m, rock, 1, qs)
	tEndS := it.Run(qs, 0, dt, 60)
	var errS float64
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < m.NodesPerEl; n++ {
			x, _, _ := m.NodePosition(e, n)
			want := dg.PlaneWaveSXAt(rock, 1, x, tEndS)
			if d := math.Abs(qs.V[1][e*m.NodesPerEl+n] - want); d > errS {
				errS = d
			}
		}
	}
	fmt.Printf("elastic Riemann solver (cp=%.1f, cs=%.1f): P-wave err %.2e, S-wave err %.2e after 60 steps\n",
		rock.PWaveSpeed(), rock.SWaveSpeed(), errP, errS)

	// Energy behaviour: the upwind flux never creates energy.
	e0 := solver.Energy(qp)
	it.Run(qp, tEnd, dt, 60)
	e1 := solver.Energy(qp)
	fmt.Printf("upwind energy behaviour: E0=%.6f -> E1=%.6f (never grows)\n", e0, e1)

	// The same physics inside simulated PIM crossbars (four-block E_r
	// layout, all nine variables in memristor cells).
	small := mesh.New(1, 4, true)
	ref := dg.NewElasticSolver(small, material.UniformElastic(small.NumElem, rock), dg.RiemannFlux)
	refIt := dg.NewElasticIntegrator(ref)
	sdt := ref.MaxStableDt(0.3)
	qr := dg.NewElasticState(small)
	dg.PlaneWavePX(small, rock, 1, qr)
	qPim := qr.Copy()
	fe, err := wavepim.NewFunctionalElastic(small, rock, dg.RiemannFlux, sdt)
	if err != nil {
		panic(err)
	}
	fe.Load(qPim)
	refIt.Run(qr, 0, sdt, 3)
	fe.Run(3)
	got := dg.NewElasticState(small)
	fe.ReadState(got)
	var dev float64
	for c := 0; c < dg.NumStress; c++ {
		for i := range qr.S[c] {
			if d := math.Abs(qr.S[c][i] - got.S[c][i]); d > dev {
				dev = d
			}
		}
	}
	fmt.Printf("functional PIM (E_r four-block layout): max stress deviation %.2e over 3 steps\n", dev)
	fmt.Printf("  %d instructions, %d transfers (Figure 8's cross-block Volume memcpy included)\n",
		fe.Engine.InstrCount, fe.Engine.TransferCt)

	// Production sizing.
	fmt.Println("\nElastic-Riemann on Wave-PIM (1024 time-steps):")
	for _, ref := range []int{4, 5} {
		b := opcount.Benchmark{Eq: opcount.ElasticRiemann, Refinement: ref}
		for _, cfg := range chip.AllConfigs() {
			res, err := wavepim.Run(b, cfg, wavepim.DefaultOptions())
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-18s on %-9s  %-7s %2d batch(es)  %-8s %s\n",
				b.Name(), cfg.Name, res.Plan.Table5String(), res.Plan.Batches,
				report.Seconds(res.TotalSec), report.Joules(res.EnergyJ))
		}
	}
}
