// Seismic survey: the oil-and-gas exploration workload that motivates the
// paper. A Ricker-wavelet point source fires in a two-layer acoustic
// medium (sediment over bedrock); a line of near-surface receivers records
// the pressure field, showing the direct arrival and the reflection from
// the impedance contrast. The survey class is then sized on the four
// Wave-PIM chip configurations to show how the planner folds or expands
// it.
package main

import (
	"fmt"
	"strings"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/chip"
	"wavepim/internal/report"
	"wavepim/internal/wavefield"
	"wavepim/internal/wavepim"
)

func main() {
	// Two-layer medium: slow sediment above, fast bedrock below.
	m := mesh.New(2, 5, false)                          // 64 elements, reflective boundaries
	sediment := material.Acoustic{Kappa: 1.0, Rho: 1.0} // c = 1.0
	bedrock := material.Acoustic{Kappa: 9.0, Rho: 1.44} // c = 2.5
	field := material.UniformAcoustic(m.NumElem, sediment)
	for e := 0; e < m.NumElem; e++ {
		_, _, ez := m.ElemCoords(e)
		if ez < m.EPerAxis/2 { // bottom half of the domain
			field.ByElem[e] = bedrock
		}
	}

	solver := dg.NewAcousticSolver(m, field, dg.RiemannFlux)
	solver.Boundary = dg.PressureRelease
	it := dg.NewAcousticIntegrator(solver)
	state := dg.NewAcousticState(m)

	// Shot near the surface; receivers along a surface line.
	src := dg.NewPointSource(m, 0.5, 0.5, 0.9, 1.0)
	src.PeakFreq, src.Delay = 5, 0.2
	it.Source = func(t float64, rhsP []float64) { src.AddTo(t, rhsP, m.NodesPerEl) }
	var receivers []*dg.Receiver
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8} {
		receivers = append(receivers, dg.NewReceiver(m, x, 0.5, 0.95))
	}

	dt := solver.MaxStableDt(0.25)
	const steps = 400
	t := 0.0
	for i := 0; i < steps; i++ {
		it.Step(state, t, dt)
		t += dt
		for _, r := range receivers {
			r.Record(t, state.P, m.NodesPerEl)
		}
	}

	fmt.Printf("seismic survey: %d elements, two-layer medium (c=%.1f over c=%.1f), %d steps to t=%.3f\n",
		m.NumElem, sediment.SoundSpeed(), bedrock.SoundSpeed(), steps, t)

	// A vertical cross-section of the final pressure field through the
	// shot point (x-z plane at y = 0.5): the ASCII art shows the wavefront
	// pattern straddling the layer interface.
	snap := wavefield.Sample(m, state.P, wavefield.Plane{Axis: mesh.AxisY, Coord: 0.5}, 56, 24)
	fmt.Printf("\npressure |p| cross-section at y=0.5 (x horizontal, z vertical; interface at z=0.5):\n%s",
		snap.ASCII())
	fmt.Printf("cross-section RMS pressure: %.4f\n", snap.RMS())

	fmt.Println("\nseismograms (peak |p| and arrival time per receiver):")
	for i, r := range receivers {
		pt, pv := r.PeakAbs()
		fmt.Printf("  receiver %d (offset %.1f): peak %+.4f at t=%.3f   %s\n",
			i, 0.2+0.2*float64(i), pv, pt, sparkline(r.Values, 48))
	}

	// Size the survey class (refinement-4/5 acoustic) on the PIM chips.
	fmt.Println("\nproduction sizing on Wave-PIM (1024 time-steps):")
	for _, ref := range []int{4, 5} {
		b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: ref}
		for _, cfg := range chip.AllConfigs() {
			res, err := wavepim.Run(b, cfg, wavepim.DefaultOptions())
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-11s on %-9s  %-4s %2d batch(es)   %-8s %s\n",
				b.Name(), cfg.Name, res.Plan.Table5String(), res.Plan.Batches,
				report.Seconds(res.TotalSec), report.Joules(res.EnergyJ))
		}
	}
}

// sparkline renders a crude ASCII trace of the seismogram.
func sparkline(v []float64, width int) string {
	if len(v) == 0 {
		return ""
	}
	var maxAbs float64
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > maxAbs {
			maxAbs = x
		}
	}
	if maxAbs == 0 {
		return strings.Repeat("-", width)
	}
	levels := []rune("_.-~^")
	var b strings.Builder
	step := len(v) / width
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(v); i += step {
		a := v[i]
		if a < 0 {
			a = -a
		}
		idx := int(a / maxAbs * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}
