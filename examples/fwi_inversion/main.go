// Full-waveform-inversion flavour: the paper's motivating workload is
// "repeated solutions of the wave equation" inside inversion loops
// ("major components of full-waveform inversion"). This example inverts
// for an unknown bedrock wave speed: synthetic "observed" seismograms are
// generated with the true model, then a sweep of candidate speeds runs
// the same forward simulation and the data misfit picks the best
// candidate. Each candidate is one full forward solve — exactly the
// repeated-solve pattern Wave-PIM accelerates — so the example closes by
// pricing the whole sweep on the PIM versus the fused V100 model.
package main

import (
	"fmt"
	"math"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/gpu"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/report"
	"wavepim/internal/wavepim"
)

const (
	trueBedrockC = 2.2
	steps        = 240
)

// forward runs one forward simulation with the given bedrock speed and
// returns the recorded traces at three receivers.
func forward(bedrockC float64) [][]float64 {
	m := mesh.New(1, 6, false)
	sediment := material.Acoustic{Kappa: 1, Rho: 1}
	bedrock := material.Acoustic{Kappa: bedrockC * bedrockC, Rho: 1}
	field := material.UniformAcoustic(m.NumElem, sediment)
	for e := 0; e < m.NumElem; e++ {
		_, _, ez := m.ElemCoords(e)
		if ez == 0 { // bottom layer
			field.ByElem[e] = bedrock
		}
	}
	s := dg.NewAcousticSolver(m, field, dg.RiemannFlux)
	s.Boundary = dg.PressureRelease
	it := dg.NewAcousticIntegrator(s)
	src := dg.NewPointSource(m, 0.5, 0.5, 0.85, 1)
	src.PeakFreq, src.Delay = 4, 0.25
	it.Source = func(t float64, rhsP []float64) { src.AddTo(t, rhsP, m.NodesPerEl) }

	receivers := []*dg.Receiver{
		dg.NewReceiver(m, 0.25, 0.5, 0.9),
		dg.NewReceiver(m, 0.5, 0.25, 0.9),
		dg.NewReceiver(m, 0.75, 0.75, 0.9),
	}
	q := dg.NewAcousticState(m)
	// One fixed dt for every candidate (stable for the fastest sweep
	// member, c = 2.6) so all traces share the same time axis and the
	// misfit measures physics, not sampling.
	minDx := (m.Rule.Points[1] - m.Rule.Points[0]) * m.H / 2
	dt := 0.25 * minDx / 2.6
	t := 0.0
	for i := 0; i < steps; i++ {
		it.Step(q, t, dt)
		t += dt
		for _, r := range receivers {
			r.Record(t, q.P, m.NodesPerEl)
		}
	}
	out := make([][]float64, len(receivers))
	for i, r := range receivers {
		out[i] = r.Values
	}
	return out
}

// misfit is the L2 distance between trace sets.
func misfit(a, b [][]float64) float64 {
	var s float64
	for i := range a {
		for j := range a[i] {
			d := a[i][j] - b[i][j]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

func main() {
	fmt.Printf("generating observed data with true bedrock speed c = %.2f ...\n", trueBedrockC)
	observed := forward(trueBedrockC)

	candidates := []float64{1.6, 1.8, 2.0, 2.2, 2.4, 2.6}
	best, bestMisfit := 0.0, math.Inf(1)
	fmt.Println("\ninversion sweep (each row is one full forward solve):")
	for _, c := range candidates {
		mf := misfit(observed, forward(c))
		marker := ""
		if mf < bestMisfit {
			best, bestMisfit = c, mf
			marker = "  <- best so far"
		}
		fmt.Printf("  candidate c = %.2f   misfit %.4f%s\n", c, mf, marker)
	}
	fmt.Printf("\nrecovered bedrock speed: %.2f (true: %.2f)\n", best, trueBedrockC)

	// Price the production-scale version of this sweep: N forward solves
	// of the refinement-4 acoustic benchmark.
	bench := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	pim, err := wavepim.Run(bench, chip.Config2GB(), wavepim.DefaultOptions())
	if err != nil {
		panic(err)
	}
	v100 := gpu.Model{Spec: params.TeslaV100, Impl: gpu.Fused}
	gt := v100.RunTime(bench, params.TimeStepsPerRun)
	n := float64(len(candidates))
	fmt.Printf("\nproduction sweep cost (%d forward solves of %s):\n", len(candidates), bench.Name())
	fmt.Printf("  Wave-PIM 2GB:  %s, %s\n", report.Seconds(pim.TotalSec*n), report.Joules(pim.EnergyJ*n))
	fmt.Printf("  Fused V100:    %s, %s\n", report.Seconds(gt*n), report.Joules(v100.Energy(bench, params.TimeStepsPerRun)*n))
	fmt.Printf("  sweep speedup: %.1fx, energy savings: %.1fx\n",
		gt/pim.TotalSec, v100.Energy(bench, params.TimeStepsPerRun)/pim.EnergyJ)
}
