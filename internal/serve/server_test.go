package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wavepim/internal/cluster"
	"wavepim/internal/cluster/trace"
	"wavepim/internal/obs/eventlog"
)

// testServer spins up a one-worker daemon with a tiny queue behind an
// httptest listener.
func testServer(t *testing.T, workers, queue int) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Options{Workers: workers, QueueCap: queue, TraceCap: 128, Level: eventlog.Debug})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Success bodies are string maps; error bodies are the APIError
	// envelope whose retryable field is a bool — keep only the strings.
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	out := make(map[string]string, len(raw))
	for k, v := range raw {
		if s, ok := v.(string); ok {
			out[k] = s
		}
	}
	return resp.StatusCode, out
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// waitRun polls until the run reaches a terminal state.
func waitRun(t *testing.T, base, id string) RunView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getBody(t, base+"/runs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /runs/%s: %d %s", id, code, body)
		}
		var v RunView
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == "done" || v.Status == "failed" {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s never finished", id)
	return RunView{}
}

// TestDaemonEndToEnd is the acceptance path: submit the canonical healing
// acoustic job, wait for it, and verify the run view, the Chrome trace,
// and the Prometheus exposition with labeled rung counters and per-phase
// span histograms.
func TestDaemonEndToEnd(t *testing.T) {
	_, ts := testServer(t, 1, 8)

	code, out := postJSON(t, ts.URL+"/runs",
		`{"equation":"acoustic","steps":4,"faults":"seed=4,flip=1e-5,stuck=1e-6"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, out)
	}
	id := out["id"]
	v := waitRun(t, ts.URL, id)
	if v.Status != "done" {
		t.Fatalf("run failed: %+v", v)
	}
	if v.Report.Counts.Detected == 0 || v.Report.Rollbacks == 0 {
		t.Fatalf("canonical healing scenario shows no ladder activity: %+v", v.Report)
	}
	if v.Equation != "Acoustic" || v.WallSec <= 0 {
		t.Fatalf("run view: %+v", v)
	}

	// The Chrome trace parses and has phase spans.
	code, trace := getBody(t, ts.URL+"/runs/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: %d", code)
	}
	var tr struct {
		TraceEvents []struct{ Name string } `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace), &tr); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}

	// The exposition carries labeled rung counters, the MTTR histogram,
	// and per-phase span histograms.
	code, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE sim_fault_rung_events_total counter",
		`sim_fault_rung_events_total{rung="ecc"}`,
		`sim_fault_rung_events_total{rung="rollback"}`,
		"# TYPE sim_fault_mttr_seconds histogram",
		`sim_fault_mttr_seconds_bucket{rung="rollback",le="+Inf"}`,
		"# TYPE sim_phase_span_seconds histogram",
		`sim_phase_span_seconds_count{kind="blocks",phase="volume"}`,
		`sim_phase_span_seconds_count{kind="blocks",phase="flux-x+"}`,
		`wavepimd_runs_total{status="done"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The healing run drove real rung activity into the shared registry.
	if strings.Contains(metrics, `sim_fault_rung_events_total{rung="ecc"} 0`) {
		t.Error("ecc rung counter still zero after a healing run")
	}

	// No flight dump on a healed run.
	if code, _ := getBody(t, ts.URL+"/runs/"+id+"/flight"); code != http.StatusNotFound {
		t.Fatalf("flight dump on healed run: %d", code)
	}
}

// TestDaemonFlightDump: the unrecoverable scenario surfaces a flight dump
// over HTTP with the failure reason and retained events.
func TestDaemonFlightDump(t *testing.T) {
	_, ts := testServer(t, 1, 8)
	code, out := postJSON(t, ts.URL+"/runs",
		`{"equation":"acoustic","steps":8,"faults":"seed=13,flip=5e-3","recover":"ecc=0,ckpt=2,rollbacks=1,blowup=10"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, out)
	}
	v := waitRun(t, ts.URL, out["id"])
	if v.Status != "failed" || v.Reason != "unrecoverable" || !v.HasDump {
		t.Fatalf("want failed+unrecoverable+dump, got %+v", v)
	}
	code, body := getBody(t, ts.URL+"/runs/"+out["id"]+"/flight")
	if code != http.StatusOK {
		t.Fatalf("flight: %d %s", code, body)
	}
	var dump eventlog.FlightDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if dump.Reason != "unrecoverable" || len(dump.Events) == 0 || len(dump.Spans) == 0 {
		t.Fatalf("dump incomplete: reason=%s events=%d spans=%d",
			dump.Reason, len(dump.Events), len(dump.Spans))
	}
	var sawRunError bool
	for _, raw := range dump.Events {
		var ev map[string]any
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("dump event not JSON: %v", err)
		}
		if ev["event"] == "run.error" {
			sawRunError = true
		}
	}
	if !sawRunError {
		t.Fatal("dump events miss run.error")
	}

	// The failure is visible on the daemon counters.
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, `wavepimd_runs_total{status="failed"} 1`) {
		t.Fatal("failed run not counted")
	}
}

// TestDaemonTraceHeaderAdoption: a submission carrying a coordinator's
// X-Wavepim-Trace header binds the run to the cluster trace — the run
// view exposes the trace id and a flight dump attributes to it — while
// a malformed header is ignored rather than rejected.
func TestDaemonTraceHeaderAdoption(t *testing.T) {
	_, ts := testServer(t, 1, 8)
	tcx := trace.New("trace-job-1")
	spec := `{"equation":"acoustic","steps":8,"faults":"seed=13,flip=5e-3","recover":"ecc=0,ckpt=2,rollbacks=1,blowup=10"}`
	req, err := http.NewRequest("POST", ts.URL+"/v1/runs", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, tcx.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, out)
	}
	v := waitRun(t, ts.URL, out["id"])
	if v.Trace != tcx.Hex() {
		t.Fatalf("run view trace %q, want %q", v.Trace, tcx.Hex())
	}
	// The spec is the flight-dump scenario: the dump carries the trace id
	// so a worker-side artifact correlates with the cluster timeline.
	code, body := getBody(t, ts.URL+"/runs/"+out["id"]+"/flight")
	if code != http.StatusOK {
		t.Fatalf("flight: %d %s", code, body)
	}
	var dump eventlog.FlightDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Trace != tcx.Hex() {
		t.Fatalf("flight dump trace %q, want %q", dump.Trace, tcx.Hex())
	}

	// A malformed header never blocks submission; the run is untraced.
	req, err = http.NewRequest("POST", ts.URL+"/v1/runs", strings.NewReader(`{"equation":"acoustic","steps":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, "not-a-trace-context")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out = map[string]string{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("malformed-header submit: %d %v", resp.StatusCode, out)
	}
	if v := waitRun(t, ts.URL, out["id"]); v.Trace != "" {
		t.Fatalf("malformed header produced trace %q", v.Trace)
	}
}

// TestDaemonValidationAndBackpressure: bad specs are 400s, an overfull
// queue is a 503, unknown runs are 404s.
func TestDaemonValidationAndBackpressure(t *testing.T) {
	s, ts := testServer(t, 1, 1)

	if code, _ := postJSON(t, ts.URL+"/runs", `{"equation":"warp-drive"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown equation: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/runs", `not json`); code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/runs", `{"equation":"acoustic","id":"!!!"}`); code != http.StatusBadRequest {
		t.Fatalf("bad client id: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/runs", `{"faults":"seed=banana"}`); code != http.StatusAccepted {
		// Spec-string errors surface when the job executes, not at submit.
		t.Fatalf("submit: %d", code)
	}
	if code, body := getBody(t, ts.URL+"/runs/r9999"); code != http.StatusNotFound {
		t.Fatalf("missing run: %d %s", code, body)
	}

	// Saturate: with a 1-deep queue and 1 worker, heavy-enough submits
	// must eventually bounce with 503 (each ~50-step job holds the worker
	// far longer than a submit round trip).
	var saw503 bool
	for i := 0; i < 8 && !saw503; i++ {
		code, _ := postJSON(t, ts.URL+"/runs", `{"equation":"acoustic","steps":50}`)
		switch code {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			saw503 = true
		default:
			t.Fatalf("unexpected submit status %d", code)
		}
	}
	if !saw503 {
		t.Fatal("queue never pushed back")
	}
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, `wavepimd_runs_total{status="rejected"}`) {
		t.Fatal("rejected submits not counted")
	}

	// The bad fault spec fails its run with a clear error.
	for _, id := range func() []string {
		s.mu.Lock()
		defer s.mu.Unlock()
		return append([]string(nil), s.order...)
	}() {
		v := waitRun(t, ts.URL, id)
		if strings.Contains(v.Error, "banana") && v.Status != "failed" {
			t.Fatalf("bad spec run: %+v", v)
		}
	}
}

// TestDaemonHealthAndDrain: liveness stays up, readiness flips to 503
// once draining, and drain completes queued work.
func TestDaemonHealthAndDrain(t *testing.T) {
	s, ts := testServer(t, 2, 8)
	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("readyz: %d %q", code, body)
	}
	code, out := postJSON(t, ts.URL+"/runs", `{"equation":"maxwell","steps":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	s.Drain()
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while drained: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/runs", `{"equation":"acoustic"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: %d", code)
	}
	// The queued Maxwell run completed during drain.
	code, body := getBody(t, ts.URL+"/runs/"+out["id"])
	if code != http.StatusOK {
		t.Fatalf("run after drain: %d", code)
	}
	var v RunView
	json.Unmarshal([]byte(body), &v)
	if v.Status != "done" || v.Equation != "Maxwell" {
		t.Fatalf("drained run: %+v", v)
	}
}

// TestDaemonConcurrentRuns: several jobs across equations on a 2-worker
// pool all complete, /runs lists them in submission order, and the shared
// exposition still parses (one TYPE header per family).
func TestDaemonConcurrentRuns(t *testing.T) {
	_, ts := testServer(t, 2, 8)
	specs := []string{
		`{"equation":"acoustic","steps":2}`,
		`{"equation":"elastic-riemann","steps":2}`,
		`{"equation":"elastic-central","steps":2}`,
		`{"equation":"acoustic","steps":2,"faults":"seed=4,flip=1e-5,stuck=1e-6"}`,
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		code, out := postJSON(t, ts.URL+"/runs", spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids[i] = out["id"]
	}
	for _, id := range ids {
		if v := waitRun(t, ts.URL, id); v.Status != "done" {
			t.Fatalf("run %s: %+v", id, v)
		}
	}
	_, body := getBody(t, ts.URL+"/runs")
	var list []RunView
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(ids) {
		t.Fatalf("list has %d runs", len(list))
	}
	for i, v := range list {
		if v.ID != ids[i] {
			t.Fatalf("list order: %v", list)
		}
	}
	_, metrics := getBody(t, ts.URL+"/metrics")
	seen := map[string]bool{}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if seen[name] {
				t.Fatalf("duplicate TYPE %s", name)
			}
			seen[name] = true
		}
	}
	if !seen["sim_phase_span_seconds"] {
		t.Fatalf("missing phase histogram family: %v", seen)
	}
}

// TestDaemonPprof: the profiling surface answers.
func TestDaemonPprof(t *testing.T) {
	_, ts := testServer(t, 1, 2)
	code, body := getBody(t, ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("pprof cmdline: %d %q", code, body)
	}
}

// TestDaemonIdempotentSubmit: resubmitting a client id returns the
// existing run — same id in the response, no second run in the table,
// and the run view is stable across resubmits. Client ids are
// canonicalized, so a sloppy retry ("  Job-A \n") still hits the same
// run as the original ("job-a").
func TestDaemonIdempotentSubmit(t *testing.T) {
	_, ts := testServer(t, 1, 8)

	code, out := postJSON(t, ts.URL+"/runs", `{"equation":"acoustic","steps":2,"id":"job-a"}`)
	if code != http.StatusAccepted || out["id"] != "job-a" {
		t.Fatalf("first submit: %d %v", code, out)
	}
	v := waitRun(t, ts.URL, "job-a")
	if v.Status != "done" {
		t.Fatalf("run: %+v", v)
	}
	_, body1 := getBody(t, ts.URL+"/runs/job-a")

	// Exact resubmit and a sloppy-whitespace/case retry both dedupe.
	for _, payload := range []string{
		`{"equation":"acoustic","steps":2,"id":"job-a"}`,
		`{"equation":"acoustic","steps":2,"id":"  Job-A \n"}`,
	} {
		code, out = postJSON(t, ts.URL+"/runs", payload)
		if code != http.StatusOK || out["id"] != "job-a" {
			t.Fatalf("resubmit %q: %d %v", payload, code, out)
		}
	}
	_, body2 := getBody(t, ts.URL+"/runs/job-a")
	if body1 != body2 {
		t.Fatalf("run view changed across resubmits:\n%s\nvs\n%s", body1, body2)
	}

	_, body := getBody(t, ts.URL+"/runs")
	var list []RunView
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("resubmits created extra runs: %v", list)
	}
}

// TestDaemonSubmitConflict: reusing a tracked client id with DIFFERENT
// content is refused with 409 and the conflict code — returning the
// existing run would silently hand the caller someone else's results.
func TestDaemonSubmitConflict(t *testing.T) {
	_, ts := testServer(t, 1, 8)
	code, _ := postJSON(t, ts.URL+"/runs", `{"equation":"acoustic","steps":2,"id":"clash-1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"equation":"acoustic","steps":7,"id":"clash-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting resubmit: %d, want 409", resp.StatusCode)
	}
	var e cluster.APIError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != cluster.CodeConflict || e.Retryable {
		t.Fatalf("conflict envelope %+v", e)
	}
	// An identical resubmit still dedupes to 200.
	code, out := postJSON(t, ts.URL+"/runs", `{"equation":"acoustic","steps":2,"id":"clash-1"}`)
	if code != http.StatusOK || out["id"] != "clash-1" {
		t.Fatalf("identical resubmit after conflict: %d %v", code, out)
	}
}

// TestDaemonEventsSSE: the per-run SSE stream replays the run's full
// event log — run.start through run.end with run.progress frames in
// between — and a finished run's stream is byte-identical across two
// subscriptions.
func TestDaemonEventsSSE(t *testing.T) {
	_, ts := testServer(t, 1, 8)
	code, out := postJSON(t, ts.URL+"/runs", `{"equation":"acoustic","steps":3,"id":"sse-1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitRun(t, ts.URL, out["id"])

	stream := func() string {
		resp, err := http.Get(ts.URL + "/runs/sse-1/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("content type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a := stream()
	b := stream()
	if a != b {
		t.Fatalf("finished-run SSE stream not byte-stable:\n%q\nvs\n%q", a, b)
	}
	for _, want := range []string{
		"event: run.start\n",
		"event: run.progress\n",
		"event: run.end\n",
		"id: 0\n",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("stream missing %q:\n%s", want, a)
		}
	}

	// Frames are well-formed: every data: line is valid JSON.
	sc := bufio.NewScanner(strings.NewReader(a))
	frames := 0
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			frames++
			var ev map[string]any
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("data line not JSON: %q", data)
			}
		}
	}
	if frames < 5 { // start + 3 progress + end
		t.Fatalf("only %d frames", frames)
	}
}

// TestDaemonEventsSSELive: a subscriber attached before the run starts
// receives frames and sees the stream terminate when the run finishes.
func TestDaemonEventsSSELive(t *testing.T) {
	_, ts := testServer(t, 1, 8)
	code, _ := postJSON(t, ts.URL+"/runs", `{"equation":"acoustic","steps":2,"id":"live-1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	var wg sync.WaitGroup
	var live string
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/runs/live-1/events")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body) // blocks until the run's tap closes
		live = string(b)
	}()
	waitRun(t, ts.URL, "live-1")
	wg.Wait()
	if !strings.Contains(live, "event: run.end\n") {
		t.Fatalf("live stream missed run.end:\n%s", live)
	}
}
