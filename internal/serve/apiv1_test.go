package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"wavepim/internal/cluster"
)

// noRedirect is a client that surfaces 3xx responses instead of
// following them, so tests can assert on the redirects themselves.
var noRedirect = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	},
}

// decodeEnvelope asserts a response is the typed APIError envelope and
// returns it.
func decodeEnvelope(t *testing.T, resp *http.Response) cluster.APIError {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var e cluster.APIError
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatalf("error body is not the envelope: %v (%s)", err, b)
	}
	if e.Code == "" || e.Message == "" {
		t.Fatalf("envelope missing code or message: %s", b)
	}
	return e
}

// TestV1EndpointsReachable drives every daemon endpoint at its /v1 path
// directly (no redirects involved).
func TestV1EndpointsReachable(t *testing.T) {
	_, ts := testServer(t, 1, 4)
	code, out := postJSON(t, ts.URL+"/v1/runs", `{"equation":"acoustic","steps":1,"topology":"mesh"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: %d", code)
	}
	id := out["id"]
	waitRun(t, ts.URL+"/v1", id)

	for _, path := range []string{
		"/v1/runs", "/v1/runs/" + id, "/v1/runs/" + id + "/events",
		"/v1/runs/" + id + "/trace", "/v1/metrics", "/v1/healthz", "/v1/readyz",
		"/v1/debug/pprof/", "/debug/pprof/",
	} {
		resp, err := noRedirect.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestLegacyRedirects: the unversioned surface answers 308 permanent
// redirects into /v1, preserving path, method semantics, and query.
func TestLegacyRedirects(t *testing.T) {
	_, ts := testServer(t, 1, 4)
	for _, tc := range []struct{ method, path, want string }{
		{"GET", "/runs", "/v1/runs"},
		{"POST", "/runs", "/v1/runs"},
		{"GET", "/runs/r0001", "/v1/runs/r0001"},
		{"GET", "/runs/r0001/events?follow=1", "/v1/runs/r0001/events?follow=1"},
		{"GET", "/metrics", "/v1/metrics"},
		{"GET", "/healthz", "/v1/healthz"},
		{"GET", "/readyz", "/v1/readyz"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noRedirect.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s %s: %d, want 308", tc.method, tc.path, resp.StatusCode)
			continue
		}
		if loc := resp.Header.Get("Location"); loc != tc.want {
			t.Errorf("%s %s: Location %q, want %q", tc.method, tc.path, loc, tc.want)
		}
	}
	// A Go default client (and curl -L) transparently lands on the run,
	// re-sending the POST body through the 308.
	code, _ := postJSON(t, ts.URL+"/runs", `{"equation":"acoustic","steps":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /runs via redirect: %d, want 202", code)
	}
}

// TestErrorEnvelope: every error path answers the typed
// {code, message, retryable} envelope with the documented code.
func TestErrorEnvelope(t *testing.T) {
	_, ts := testServer(t, 1, 4)
	for _, tc := range []struct {
		name, method, path, body string
		status                   int
		code                     string
		retryable                bool
	}{
		{"bad JSON", "POST", "/v1/runs", `{`, 400, cluster.CodeBadRequest, false},
		{"unknown equation", "POST", "/v1/runs", `{"equation":"navier-stokes"}`, 400, cluster.CodeBadRequest, false},
		{"unknown topology", "POST", "/v1/runs", `{"equation":"acoustic","topology":"hypercube"}`, 400, cluster.CodeBadRequest, false},
		{"bad job id", "POST", "/v1/runs", `{"equation":"acoustic","id":"no spaces allowed!"}`, 400, cluster.CodeBadRequest, false},
		{"missing run", "GET", "/v1/runs/nope", "", 404, cluster.CodeNotFound, false},
		{"missing flight", "GET", "/v1/runs/nope/flight", "", 404, cluster.CodeNotFound, false},
	} {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noRedirect.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		e := decodeEnvelope(t, resp)
		if e.Code != tc.code || e.Retryable != tc.retryable {
			t.Errorf("%s: envelope {%s retryable=%v}, want {%s retryable=%v}",
				tc.name, e.Code, e.Retryable, tc.code, tc.retryable)
		}
	}
}

// TestErrorEnvelopeDraining: the drain path is retryable.
func TestErrorEnvelopeDraining(t *testing.T) {
	s, ts := testServer(t, 1, 4)
	s.Drain()
	resp, err := noRedirect.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	e := decodeEnvelope(t, resp)
	if e.Code != cluster.CodeDraining || !e.Retryable {
		t.Errorf("envelope {%s retryable=%v}, want {draining retryable=true}", e.Code, e.Retryable)
	}

	resp, err = noRedirect.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"equation":"acoustic"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	e = decodeEnvelope(t, resp)
	if e.Code != cluster.CodeDraining || !e.Retryable {
		t.Errorf("envelope {%s retryable=%v}, want {draining retryable=true}", e.Code, e.Retryable)
	}
}
