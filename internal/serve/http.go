package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"

	"wavepim/internal/cluster"
	"wavepim/internal/cluster/trace"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/pim/chip"
)

// Handler builds the daemon's mux. The API lives under /v1; the legacy
// unversioned routes answer 308 permanent redirects into it. pprof stays
// at its conventional /debug/pprof/ root (the pprof handlers parse the
// profile name out of that exact path) and is additionally reachable
// under /v1 via a prefix strip.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/runs/{id}/flight", s.handleFlight)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/v1/debug/pprof/", http.StripPrefix("/v1", http.HandlerFunc(pprof.Index)))
	cluster.MountLegacyRedirects(mux, "/runs", "/metrics", "/healthz", "/readyz")
	return mux
}

// httpError writes the cluster API's typed error envelope
// ({code, message, retryable}); see internal/cluster/api.go.
func httpError(w http.ResponseWriter, status int, code string, retryable bool, format string, args ...any) {
	cluster.WriteAPIError(w, status, code, retryable, format, args...)
}

// handleSubmit accepts a job. When the spec carries a client id, the
// submission is idempotent: an id the server already tracks returns the
// existing run (200) instead of enqueueing a duplicate (202). This is
// what makes coordinator retries after a forwarding failure safe.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, cluster.CodeBadRequest, false, "bad job spec: %v", err)
		return
	}
	if _, ok := EquationOf(spec.Equation); !ok {
		httpError(w, http.StatusBadRequest, cluster.CodeBadRequest, false, "unknown equation %q", spec.Equation)
		return
	}
	if spec.Topology != "" {
		if _, err := chip.ParseInterconnect(spec.Topology); err != nil {
			httpError(w, http.StatusBadRequest, cluster.CodeBadRequest, false, "%v", err)
			return
		}
	}
	if spec.Steps <= 0 {
		spec.Steps = 4
	}
	// A coordinator-dispatched job carries its trace context; the worker
	// adopts the trace id so run views, event lines, and flight dumps all
	// attribute back to the cluster-level timeline. A malformed header is
	// ignored (standalone clients never send one).
	traceID := ""
	if v := req.Header.Get(trace.Header); v != "" {
		if tcx, err := trace.Parse(v); err == nil {
			traceID = tcx.Hex()
		}
	}
	clientID := ""
	if spec.ID != "" {
		id, err := cluster.NormalizeJobID(spec.ID)
		if err != nil {
			httpError(w, http.StatusBadRequest, cluster.CodeBadRequest, false, "bad job id: %v", err)
			return
		}
		clientID = id
		spec.ID = id
	}

	s.mu.Lock()
	if clientID != "" {
		if existing, ok := s.runs[clientID]; ok {
			same := existing.spec.Digest() == spec.Digest()
			s.mu.Unlock()
			if !same {
				// The id is taken by a run with different content. Returning
				// the existing run would silently hand the caller someone
				// else's results; refuse instead.
				httpError(w, http.StatusConflict, cluster.CodeConflict, false,
					"job id %q already tracked with different content", clientID)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]string{"id": existing.id})
			return
		}
	}
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, cluster.CodeDraining, true, "shutting down")
		return
	}
	id := clientID
	if id == "" {
		s.seq++
		id = fmt.Sprintf("r%04d", s.seq)
	}
	r := &run{id: id, spec: spec, status: "queued", trace: traceID, tap: eventlog.NewTap()}
	select {
	case s.jobs <- r:
		s.runs[r.id] = r
		s.order = append(s.order, r.id)
	default:
		if clientID == "" {
			s.seq--
		}
		s.mu.Unlock()
		s.reg.CounterVec("wavepimd.runs", "status").With("rejected").Inc()
		httpError(w, http.StatusServiceUnavailable, cluster.CodeQueueFull, true, "job queue full")
		return
	}
	s.mu.Unlock()

	s.reg.Gauge("wavepimd.queue_depth").Add(1)
	s.log.Info("daemon.run_queued", eventlog.Str("run", r.id), eventlog.Str("equation", spec.Equation))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": r.id})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]RunView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.runs[id].view())
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(views)
}

func (s *Server) lookup(req *http.Request) (*run, bool) {
	s.mu.Lock()
	r, ok := s.runs[req.PathValue("id")]
	s.mu.Unlock()
	return r, ok
}

func (s *Server) handleRun(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		httpError(w, http.StatusNotFound, cluster.CodeNotFound, false, "no such run")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.view())
}

// handleEvents streams the run's event log as SSE: full replay from the
// first event, then live follow until the run finishes (the tap closes)
// or the client disconnects. The frames are a pure function of the tap's
// lines, so replaying a finished run twice yields identical bytes.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		httpError(w, http.StatusNotFound, cluster.CodeNotFound, false, "no such run")
		return
	}
	r.mu.Lock()
	tap := r.tap
	r.mu.Unlock()

	cluster.SSEHeaders(w)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	i := 0
	for {
		lines, closed, wait := tap.Since(i)
		for _, line := range lines {
			if err := cluster.WriteSSEEvent(w, i, line); err != nil {
				return
			}
			i++
		}
		if len(lines) > 0 && fl != nil {
			fl.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wait:
		case <-req.Context().Done():
			return
		}
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		httpError(w, http.StatusNotFound, cluster.CodeNotFound, false, "no such run")
		return
	}
	r.mu.Lock()
	sink := r.sink
	status := r.status
	r.mu.Unlock()
	if sink == nil {
		httpError(w, http.StatusConflict, cluster.CodeNotReady, true, "run is %s; trace not available yet", status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	sink.WriteTrace(w)
}

func (s *Server) handleFlight(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		httpError(w, http.StatusNotFound, cluster.CodeNotFound, false, "no such run")
		return
	}
	r.mu.Lock()
	dump := r.dump
	r.mu.Unlock()
	if dump == nil {
		httpError(w, http.StatusNotFound, cluster.CodeNotFound, false, "run has no flight dump")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	dump.WriteJSON(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		// The exposition bytes are already flushed; a latched registration
		// conflict is a programming error worth surfacing loudly in logs.
		s.log.Error("daemon.metrics_conflict", eventlog.Str("error", err.Error()))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, cluster.CodeDraining, true, "draining")
		return
	}
	io.WriteString(w, "ready\n")
}
