// Package serve is the wavepimd worker daemon: a bounded job pool that
// executes functional Wave-PIM simulation jobs submitted over HTTP and
// exposes the full observability surface — Prometheus metrics, JSONL
// event logs, Chrome traces, flight-recorder dumps, and live SSE event
// streams. cmd/wavepimd is a thin flag-parsing shell around this
// package; the cluster coordinator (internal/cluster, cmd/wavepimctl)
// drives fleets of these servers through the same HTTP surface and the
// in-process tests exercise them through httptest.
//
// Jobs are idempotent when the client names them: a JobSpec may carry a
// client-supplied id (canonicalized by cluster.NormalizeJobID), and
// resubmitting an id the server has already seen returns the existing
// run instead of starting a new one — the retry-safety the coordinator's
// rebalancing leans on.
package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"wavepim/internal/cluster"
	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/pim/fault"
	"wavepim/internal/wavepim"
)

// JobSpec is the POST /runs body: one functional simulation job in the
// vocabulary of the benchmark table plus the fault-injection spec
// strings the CLIs accept. The type lives in internal/cluster so the
// coordinator and the workers share one wire shape; the worker ignores
// the coordinator-level Tenant and Priority fields.
type JobSpec = cluster.JobSpec

// EquationOf maps the wire name to the opcount constant.
func EquationOf(s string) (opcount.Equation, bool) { return cluster.EquationOf(s) }

// run is one tracked job. Mutable fields are guarded by mu; the HTTP
// layer reads through view(). The tap exists from submission so SSE
// subscribers can attach to a queued run and replay from the start.
type run struct {
	mu sync.Mutex

	id     string
	spec   JobSpec
	status string // "queued", "running", "done", "failed"
	errMsg string
	reason string // flight-dump reason on failure ("" otherwise)
	trace  string // cluster trace id (hex) from X-Wavepim-Trace, "" standalone

	tap     *eventlog.Tap
	sink    *obs.Sink // per-run tracer over the shared registry
	report  fault.Report
	dump    *eventlog.FlightDump
	wallSec float64
}

// RunView is the JSON shape of a run in /runs responses. Field order is
// fixed by the struct, so listings are deterministic given equal state.
type RunView struct {
	ID       string       `json:"id"`
	Status   string       `json:"status"`
	Equation string       `json:"equation"`
	Steps    int          `json:"steps"`
	Trace    string       `json:"trace,omitempty"`
	Error    string       `json:"error,omitempty"`
	Reason   string       `json:"reason,omitempty"`
	HasDump  bool         `json:"has_flight_dump"`
	WallSec  float64      `json:"wall_seconds"`
	Report   fault.Report `json:"fault_report"`
}

func (r *run) view() RunView {
	r.mu.Lock()
	defer r.mu.Unlock()
	eq, _ := EquationOf(r.spec.Equation)
	return RunView{
		ID: r.id, Status: r.status, Equation: eq.String(), Steps: r.spec.Steps,
		Trace: r.trace, Error: r.errMsg, Reason: r.reason, HasDump: r.dump != nil,
		WallSec: r.wallSec, Report: r.report,
	}
}

// Options configures a Server. Zero values select the documented
// defaults.
type Options struct {
	Workers       int       // concurrent simulation jobs (default 1)
	QueueCap      int       // job queue capacity (default 16)
	TraceCap      int       // per-run span ring capacity (default 4096)
	LogW          io.Writer // process-wide event log writer (default io.Discard)
	Level         eventlog.Level
	Now           func() time.Time // injectable clock (default time.Now)
	ProgressEvery int              // run.progress cadence in steps (default 1; <0 disables)
}

// Server owns the shared metrics registry, the run table, and the worker
// pool. One registry serves every run — per-phase histograms and rung
// counters aggregate across jobs, which is exactly what a Prometheus
// scraper wants — while traces, taps, and flight recorders are per run.
type Server struct {
	reg   *obs.Registry
	log   *eventlog.Logger
	logW  io.Writer // per-run logger cores write here too
	level eventlog.Level
	now   func() time.Time

	traceCap      int
	flightEvents  int
	flightSpans   int
	progressEvery int

	mu       sync.Mutex
	runs     map[string]*run
	order    []string
	seq      int
	jobs     chan *run
	draining bool

	wg sync.WaitGroup
}

// NewServer builds the server and starts its job executors.
func NewServer(o Options) *Server {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	if o.TraceCap <= 0 {
		o.TraceCap = 4096
	}
	if o.LogW == nil {
		o.LogW = io.Discard
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 1
	}
	log := eventlog.New(o.LogW, o.Level)
	log.SetClock(o.Now)
	s := &Server{
		reg:           obs.NewRegistry(),
		log:           log,
		logW:          o.LogW,
		level:         o.Level,
		now:           o.Now,
		traceCap:      o.TraceCap,
		flightEvents:  256,
		flightSpans:   256,
		progressEvery: o.ProgressEvery,
		runs:          map[string]*run{},
		jobs:          make(chan *run, o.QueueCap),
	}
	// Pre-register the rung families so a scrape taken before any fault
	// activity still exposes them (with zero values) — the CI smoke test
	// and dashboards key on these names existing.
	for _, rung := range []string{"ecc", "retry", "remap", "rollback"} {
		s.reg.CounterVec("sim.fault.rung_events", "rung").With(rung)
		s.reg.HistogramVec("sim.fault.mttr_seconds", "rung").With(rung)
	}
	for _, st := range []string{"done", "failed", "rejected"} {
		s.reg.CounterVec("wavepimd.runs", "status").With(st)
	}
	s.reg.Gauge("wavepimd.active_runs")
	s.reg.Gauge("wavepimd.queue_depth")
	for i := 0; i < o.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Log exposes the daemon-level logger (cmd/wavepimd logs lifecycle
// events through it).
func (s *Server) Log() *eventlog.Logger { return s.log }

// Drain stops accepting jobs and blocks until every queued and in-flight
// run has finished.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.jobs)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for r := range s.jobs {
		s.reg.Gauge("wavepimd.queue_depth").Add(-1)
		s.reg.Gauge("wavepimd.active_runs").Add(1)
		s.execute(r)
		s.reg.Gauge("wavepimd.active_runs").Add(-1)
	}
}

// execute runs one job end to end: build the session over the shared
// registry plus a per-run capped tracer, wire a fresh event-log core
// teed into the run's tap and a per-run flight recorder, load the
// plane-wave initial condition, and run.
func (s *Server) execute(r *run) {
	r.mu.Lock()
	r.status = "running"
	spec := r.spec
	id := r.id
	tap := r.tap
	traceID := r.trace
	r.mu.Unlock()

	started := s.now()
	sink := &obs.Sink{Reg: s.reg, Trace: obs.NewTracer().WithCap(s.traceCap)}
	// A fresh core per run: SetRecorder is core-wide, so concurrent runs
	// must not share one (a shared core would tee run A's events into run
	// B's recorder). The cores share the process writer; each Write is one
	// line, and the tap retains the run's own lines for SSE replay.
	core := eventlog.New(io.MultiWriter(s.logW, tap), s.level)
	core.SetClock(s.now)
	fr := eventlog.NewFlightRecorder(sink.Trace, s.flightEvents, s.flightSpans)
	core.SetRecorder(fr)
	runLog := core.WithRun(id)
	if traceID != "" {
		// Cluster-dispatched run: every event line carries the propagated
		// trace id, so a grep across the fleet's logs reconstructs a job.
		runLog = runLog.With(eventlog.Str("trace", traceID))
	}

	sess, q, err := s.buildSession(spec, id, traceID, sink, runLog, fr)
	if err != nil {
		s.finish(r, sink, nil, s.now().Sub(started).Seconds(), err)
		return
	}
	loadState(sess, q)

	ctx := context.Background()
	if spec.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	runErr := sess.Run(ctx, spec.Steps)
	s.finish(r, sink, sess, s.now().Sub(started).Seconds(), runErr)
}

// finish records a run's terminal state and daemon-level metrics, and
// completes the run's event stream.
func (s *Server) finish(r *run, sink *obs.Sink, sess *wavepim.Session, wall float64, err error) {
	r.mu.Lock()
	r.sink = sink
	r.wallSec = wall
	if sess != nil {
		r.report = sess.FaultReport()
		r.dump = sess.FlightDump()
	}
	if err != nil {
		r.status = "failed"
		r.errMsg = err.Error()
		if r.dump != nil {
			r.reason = r.dump.Reason
		}
	} else {
		r.status = "done"
	}
	status := r.status
	id := r.id
	tap := r.tap
	r.mu.Unlock()
	tap.Close()

	s.reg.CounterVec("wavepimd.runs", "status").With(status).Inc()
	s.reg.Histogram("wavepimd.run_wall_seconds").Observe(wall)
	if err != nil {
		s.log.Error("daemon.run_failed", eventlog.Str("run", id), eventlog.Str("error", err.Error()))
	} else {
		s.log.Info("daemon.run_done", eventlog.Str("run", id), eventlog.F64("wall_seconds", wall))
	}
}

// sessionState is the loaded initial condition, paired with its loader.
type sessionState struct {
	ac *dg.AcousticState
	el *dg.ElasticState
	mx *dg.MaxwellState
}

// buildSession constructs the session for a spec. The dt comes from the
// reference solver's CFL bound, like the functional CLIs.
func (s *Server) buildSession(spec JobSpec, id, traceID string, sink *obs.Sink, log *eventlog.Logger, fr *eventlog.FlightRecorder) (*wavepim.Session, sessionState, error) {
	var st sessionState
	eq, ok := EquationOf(spec.Equation)
	if !ok {
		return nil, st, fmt.Errorf("unknown equation %q", spec.Equation)
	}
	refine, np := spec.Refine, spec.Np
	if refine <= 0 {
		refine = 1
	}
	if np <= 0 {
		np = 4
	}
	cfl := spec.CFL
	if cfl <= 0 {
		cfl = 0.3
	}
	m := mesh.New(refine, np, true)
	flux := wavepim.FluxFor(eq)

	var dt float64
	acMat := material.Acoustic{Kappa: 2.25, Rho: 1}
	elMat := material.Elastic{Lambda: 2, Mu: 1, Rho: 1}
	diel := material.Dielectric{Eps: 1, Mu: 1}
	switch eq {
	case opcount.Acoustic:
		dt = dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, acMat), flux).MaxStableDt(cfl)
		st.ac = dg.NewAcousticState(m)
		dg.PlaneWaveX(m, acMat, 1, st.ac)
	case opcount.ElasticCentral, opcount.ElasticRiemann:
		dt = dg.NewElasticSolver(m, material.UniformElastic(m.NumElem, elMat), flux).MaxStableDt(cfl)
		st.el = dg.NewElasticState(m)
		dg.PlaneWavePX(m, elMat, 1, st.el)
	case opcount.Maxwell:
		dt = dg.NewMaxwellSolver(m, diel, flux).MaxStableDt(cfl)
		st.mx = dg.NewMaxwellState(m)
		dg.PlaneWaveEM(m, diel, 1, st.mx)
	}

	opts := []wavepim.Option{
		wavepim.WithEquation(eq),
		wavepim.WithMesh(m),
		wavepim.WithDt(dt),
		wavepim.WithObs(sink),
		wavepim.WithRunID(id),
		wavepim.WithTraceID(traceID),
		wavepim.WithEventLog(log),
		wavepim.WithFlightRecorder(fr),
		wavepim.WithProgressEvery(s.progressEvery),
	}
	if spec.Workers > 0 {
		opts = append(opts, wavepim.WithWorkers(spec.Workers))
	}
	if spec.Topology != "" {
		opts = append(opts, wavepim.WithTopology(spec.Topology))
	}
	if spec.Faults != "" {
		fcfg, err := fault.ParseSpec(spec.Faults)
		if err != nil {
			return nil, st, fmt.Errorf("faults spec: %w", err)
		}
		opts = append(opts, wavepim.WithFaults(fcfg))
	}
	if spec.Recover != "" {
		rec, err := fault.ParseRecoverySpec(spec.Recover)
		if err != nil {
			return nil, st, fmt.Errorf("recover spec: %w", err)
		}
		opts = append(opts, wavepim.WithRecovery(rec))
	}
	sess, err := wavepim.NewSession(opts...)
	return sess, st, err
}

func loadState(s *wavepim.Session, st sessionState) {
	switch {
	case st.ac != nil:
		s.Acoustic().Load(st.ac)
	case st.el != nil:
		s.Elastic().Load(st.el)
	case st.mx != nil:
		s.Maxwell().Load(st.mx)
	}
}
