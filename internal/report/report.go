// Package report renders aligned ASCII tables and series for the
// experiment harness (cmd/paperbench and the bench suite).
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with column alignment.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		var total int
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	return b.String()
}

// F formats a float with the given precision, trimming to a compact form.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Sci formats a float in scientific notation.
func Sci(v float64) string { return fmt.Sprintf("%.3g", v) }

// Ratio formats "12.34x" style multipliers.
func Ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Seconds formats a duration with a sensible unit.
func Seconds(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.3gs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3gms", v*1e3)
	case v >= 1e-6:
		return fmt.Sprintf("%.3gus", v*1e6)
	default:
		return fmt.Sprintf("%.3gns", v*1e9)
	}
}

// Joules formats energy with a sensible unit.
func Joules(v float64) string {
	switch {
	case v >= 1e3:
		return fmt.Sprintf("%.3gkJ", v/1e3)
	case v >= 1:
		return fmt.Sprintf("%.3gJ", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3gmJ", v*1e3)
	default:
		return fmt.Sprintf("%.3guJ", v*1e6)
	}
}
