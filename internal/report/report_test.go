package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "22")
	tb.AddNote("note %d", 7)
	s := tb.String()
	if !strings.Contains(s, "Demo\n====") {
		t.Error("missing title underline")
	}
	lines := strings.Split(s, "\n")
	// Header and rows align: the "value" column starts at the same offset.
	var idx []int
	for _, ln := range lines {
		if strings.Contains(ln, "1") && strings.Contains(ln, "alpha") {
			idx = append(idx, strings.Index(ln, "1"))
		}
		if strings.Contains(ln, "22") {
			idx = append(idx, strings.Index(ln, "22"))
		}
	}
	if len(idx) != 2 || idx[0] != idx[1] {
		t.Errorf("columns not aligned: %v\n%s", idx, s)
	}
	if !strings.Contains(s, "note: note 7") {
		t.Error("missing note")
	}
}

func TestTableWithoutTitleOrHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x")
	if s := tb.String(); !strings.Contains(s, "x") || strings.Contains(s, "=") {
		t.Errorf("bare table render wrong: %q", s)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[string]string{
		F(3.14159, 2):  "3.14",
		Ratio(2.5):     "2.50x",
		Seconds(2.5):   "2.5s",
		Seconds(3e-3):  "3ms",
		Seconds(4e-6):  "4us",
		Seconds(5e-9):  "5ns",
		Joules(2500):   "2.5kJ",
		Joules(3.2):    "3.2J",
		Joules(1e-3):   "1mJ",
		Joules(2e-6):   "2uJ",
		Sci(0.0001234): "0.000123",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q want %q", got, want)
		}
	}
}
