package material

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAcousticDerivedQuantities(t *testing.T) {
	a := Acoustic{Kappa: 2.25, Rho: 1.0}
	if c := a.SoundSpeed(); math.Abs(c-1.5) > 1e-15 {
		t.Errorf("c = %g want 1.5", c)
	}
	if z := a.Impedance(); math.Abs(z-1.5) > 1e-15 {
		t.Errorf("Z = %g want 1.5", z)
	}
}

// Property: Z = rho * c and c^2 = kappa/rho for any positive material.
func TestAcousticRelationsProperty(t *testing.T) {
	f := func(k, r uint16) bool {
		a := Acoustic{Kappa: 0.1 + float64(k%1000), Rho: 0.1 + float64(r%1000)}
		c := a.SoundSpeed()
		return math.Abs(a.Impedance()-a.Rho*c) < 1e-9*(1+a.Impedance()) &&
			math.Abs(c*c-a.Kappa/a.Rho) < 1e-9*(1+c*c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestElasticDerivedQuantities(t *testing.T) {
	e := Elastic{Lambda: 2, Mu: 1, Rho: 1}
	if cp := e.PWaveSpeed(); math.Abs(cp-2) > 1e-15 {
		t.Errorf("cp = %g", cp)
	}
	if cs := e.SWaveSpeed(); math.Abs(cs-1) > 1e-15 {
		t.Errorf("cs = %g", cs)
	}
	// P-waves are always faster than S-waves for lambda > 0.
	if e.PImpedance() <= e.SImpedance() {
		t.Error("Zp should exceed Zs")
	}
}

func TestElasticSpeedOrderingProperty(t *testing.T) {
	f := func(l, m, r uint16) bool {
		e := Elastic{Lambda: float64(l%100) + 0.01, Mu: float64(m%100) + 0.01, Rho: float64(r%100) + 0.01}
		return e.PWaveSpeed() > e.SWaveSpeed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDielectric(t *testing.T) {
	if Vacuum.LightSpeed() != 1 || Vacuum.Impedance() != 1 {
		t.Error("vacuum in natural units")
	}
	d := Dielectric{Eps: 4, Mu: 1}
	if c := d.LightSpeed(); math.Abs(c-0.5) > 1e-15 {
		t.Errorf("c = %g want 0.5", c)
	}
}

func TestUniformFields(t *testing.T) {
	af := UniformAcoustic(10, Acoustic{Kappa: 1, Rho: 2})
	if len(af.ByElem) != 10 || af.ByElem[7].Rho != 2 {
		t.Error("UniformAcoustic wrong")
	}
	if af.MaxSoundSpeed() != af.ByElem[0].SoundSpeed() {
		t.Error("MaxSoundSpeed of uniform field")
	}
	// Heterogeneous: the max is the fastest element.
	af.ByElem[3] = Acoustic{Kappa: 100, Rho: 1}
	if af.MaxSoundSpeed() != 10 {
		t.Errorf("MaxSoundSpeed = %g want 10", af.MaxSoundSpeed())
	}
	ef := UniformElastic(4, Elastic{Lambda: 2, Mu: 1, Rho: 1})
	ef.ByElem[1] = Elastic{Lambda: 14, Mu: 1, Rho: 1}
	if ef.MaxWaveSpeed() != 4 {
		t.Errorf("MaxWaveSpeed = %g want 4", ef.MaxWaveSpeed())
	}
}
