// Package material models the constant material properties of the wave
// equations (Table 1): bulk modulus kappa and density rho for the acoustic
// equation, Lame parameters lambda and mu plus density for the elastic one.
// Materials are constant within an element (Section 5.1: "We consider
// constant materials within an element").
package material

import "math"

// Acoustic holds the acoustic material of one element.
type Acoustic struct {
	Kappa float64 // bulk modulus K
	Rho   float64 // density
}

// SoundSpeed returns c = sqrt(kappa/rho).
func (a Acoustic) SoundSpeed() float64 { return math.Sqrt(a.Kappa / a.Rho) }

// Impedance returns Z = rho*c, the acoustic impedance used by the Riemann
// flux solver.
func (a Acoustic) Impedance() float64 { return a.Rho * a.SoundSpeed() }

// Elastic holds the elastic material of one element.
type Elastic struct {
	Lambda float64 // first Lame parameter
	Mu     float64 // shear modulus
	Rho    float64 // density
}

// PWaveSpeed returns cp = sqrt((lambda+2mu)/rho).
func (e Elastic) PWaveSpeed() float64 { return math.Sqrt((e.Lambda + 2*e.Mu) / e.Rho) }

// SWaveSpeed returns cs = sqrt(mu/rho).
func (e Elastic) SWaveSpeed() float64 { return math.Sqrt(e.Mu / e.Rho) }

// PImpedance returns Zp = rho*cp.
func (e Elastic) PImpedance() float64 { return e.Rho * e.PWaveSpeed() }

// SImpedance returns Zs = rho*cs.
func (e Elastic) SImpedance() float64 { return e.Rho * e.SWaveSpeed() }

// AcousticField assigns an acoustic material to every element.
type AcousticField struct {
	ByElem []Acoustic
}

// UniformAcoustic builds a field with the same material everywhere.
func UniformAcoustic(numElem int, m Acoustic) *AcousticField {
	f := &AcousticField{ByElem: make([]Acoustic, numElem)}
	for i := range f.ByElem {
		f.ByElem[i] = m
	}
	return f
}

// MaxSoundSpeed returns the fastest wave speed in the field, used for the
// CFL time-step bound.
func (f *AcousticField) MaxSoundSpeed() float64 {
	var c float64
	for _, m := range f.ByElem {
		if s := m.SoundSpeed(); s > c {
			c = s
		}
	}
	return c
}

// Dielectric holds the electromagnetic material of a linear, isotropic,
// source-free medium — the Maxwell extension the paper's Section 2.1
// points at.
type Dielectric struct {
	Eps float64 // permittivity
	Mu  float64 // permeability
}

// LightSpeed returns c = 1/sqrt(eps*mu).
func (d Dielectric) LightSpeed() float64 { return 1 / math.Sqrt(d.Eps*d.Mu) }

// Impedance returns eta = sqrt(mu/eps), the wave impedance the Maxwell
// Riemann flux uses.
func (d Dielectric) Impedance() float64 { return math.Sqrt(d.Mu / d.Eps) }

// Vacuum is the natural-units free-space dielectric.
var Vacuum = Dielectric{Eps: 1, Mu: 1}

// ElasticField assigns an elastic material to every element.
type ElasticField struct {
	ByElem []Elastic
}

// UniformElastic builds a field with the same material everywhere.
func UniformElastic(numElem int, m Elastic) *ElasticField {
	f := &ElasticField{ByElem: make([]Elastic, numElem)}
	for i := range f.ByElem {
		f.ByElem[i] = m
	}
	return f
}

// MaxWaveSpeed returns the fastest (P-)wave speed in the field.
func (f *ElasticField) MaxWaveSpeed() float64 {
	var c float64
	for _, m := range f.ByElem {
		if s := m.PWaveSpeed(); s > c {
			c = s
		}
	}
	return c
}
