package wavepim

import (
	"math"
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

var fnMat = material.Acoustic{Kappa: 2.25, Rho: 1.0}

// relErr compares state arrays with a mixed absolute/relative tolerance
// appropriate for float32-vs-float64 comparison.
func maxRelErr(a, b []float64) float64 {
	var worst float64
	for i := range a {
		scale := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		// Absolute floor: RHS values reach O(100) (lift factors), so
		// float32 round-off leaves absolute residues up to ~1e-5 even
		// where the exact value is zero.
		if scale < 1e-2 {
			scale = 1e-2
		}
		if d := math.Abs(a[i]-b[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

func acousticStates(t *testing.T, m *mesh.Mesh) (*dg.AcousticState, *dg.AcousticState) {
	t.Helper()
	q := dg.NewAcousticState(m)
	dg.PlaneWaveX(m, fnMat, 1, q)
	// Add off-axis structure so all three axes and all variables are
	// exercised.
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, y, z := m.NodePosition(e, n)
			i := e*nn + n
			q.P[i] += 0.3 * math.Sin(2*math.Pi*y) * math.Cos(2*math.Pi*z)
			q.V[1][i] = 0.2 * math.Sin(2*math.Pi*(y+z))
			q.V[2][i] = -0.15 * math.Cos(2*math.Pi*(x+y))
		}
	}
	return q, q.Copy()
}

// The compiled PIM Volume+Flux programs must produce the same RHS as the
// reference dG solver, for both flux solvers. This is the core functional
// equivalence check of the reproduction: the entire dataflow of Figure 5
// executes in simulated crossbar cells.
func TestFunctionalAcousticRHSMatchesReference(t *testing.T) {
	for _, flux := range []dg.FluxType{dg.CentralFlux, dg.RiemannFlux} {
		m := mesh.New(1, 4, true) // 8 elements, 64 nodes each
		q, _ := acousticStates(t, m)

		// Reference RHS in float64.
		ref := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, fnMat), flux)
		want := dg.NewAcousticState(m)
		ref.RHS(q, want)

		// PIM functional RHS.
		fa, err := NewFunctionalAcoustic(m, fnMat, flux, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		fa.Load(q)
		fa.RHSOnce()
		got := dg.NewAcousticState(m)
		fa.ReadRHS(got)

		if e := maxRelErr(got.P, want.P); e > 2e-4 {
			t.Errorf("flux=%v: pressure RHS rel err %g", flux, e)
		}
		for d := 0; d < 3; d++ {
			if e := maxRelErr(got.V[d], want.V[d]); e > 2e-4 {
				t.Errorf("flux=%v: v[%d] RHS rel err %g", flux, d, e)
			}
		}
	}
}

// A full five-stage PIM time-step must track the reference integrator.
func TestFunctionalAcousticFullStepsMatchReference(t *testing.T) {
	m := mesh.New(1, 4, true)
	q, qPim := acousticStates(t, m)

	ref := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, fnMat), dg.RiemannFlux)
	it := dg.NewAcousticIntegrator(ref)
	dt := ref.MaxStableDt(0.3)

	fa, err := NewFunctionalAcoustic(m, fnMat, dg.RiemannFlux, dt)
	if err != nil {
		t.Fatal(err)
	}
	fa.Load(qPim)

	const steps = 3
	it.Run(q, 0, dt, steps)
	fa.Run(steps)
	got := dg.NewAcousticState(m)
	fa.ReadState(got)

	if e := maxRelErr(got.P, q.P); e > 5e-3 {
		t.Errorf("pressure after %d steps: rel err %g", steps, e)
	}
	for d := 0; d < 3; d++ {
		if e := maxRelErr(got.V[d], q.V[d]); e > 5e-3 {
			t.Errorf("v[%d] after %d steps: rel err %g", d, steps, e)
		}
	}
	// The functional run also produced meaningful cost accounting.
	if fa.Engine.TotalTime() <= 0 || fa.Engine.TotalEnergy <= 0 {
		t.Error("functional run must accumulate time and energy")
	}
	if fa.Engine.InstrCount == 0 || fa.Engine.TransferCt == 0 {
		t.Error("functional run must count instructions and transfers")
	}
}

// Technique sanity: the compiled one-block programs have the kernel-size
// ordering the paper describes (Flux has the fewest arithmetic ops but
// needs transfers; Volume dominates instruction count).
func TestCompiledProgramShapes(t *testing.T) {
	m := mesh.New(1, 4, true)
	fa, err := NewFunctionalAcoustic(m, fnMat, dg.RiemannFlux, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	vol := len(fa.plan.volume)
	flux := len(fa.plan.flux[0])
	integ := len(fa.plan.integ[0])
	if vol <= flux || vol <= integ {
		t.Errorf("Volume (%d instrs) should be the largest kernel (flux %d, integ %d)", vol, flux, integ)
	}
	// Riemann flux is strictly larger than central flux.
	fa2, _ := NewFunctionalAcoustic(m, fnMat, dg.CentralFlux, 1e-3)
	if len(fa2.plan.flux[0]) >= flux {
		t.Errorf("central flux (%d) should be smaller than Riemann (%d)", len(fa2.plan.flux[0]), flux)
	}
}
