package wavepim

import (
	"testing"

	"wavepim/internal/mesh"
)

// The paper's exact Figure 7 scenario: 32 slices, 16 resident (a
// refinement-5 model on a 2 GB chip). The generated schedule must follow
// the twelve-step choreography.
func TestFigure7Schedule32x16(t *testing.T) {
	steps := FluxBatchSchedule(32, 16, mesh.AxisZ)
	if err := ValidateSchedule(steps, 32, 16, mesh.AxisZ); err != nil {
		t.Fatal(err)
	}
	// Spot-check the choreography (the paper's step numbers in comments).
	expect := []struct {
		kind        FluxStepKind
		first, last int
	}{
		{StepLoad, 0, 15},   // (1) load slices 0-15
		{StepFlux, 0, 15},   // (2) x axis (-1,+1)
		{StepFlux, 0, 15},   // (3) other intra axis (-1,+1)
		{StepFlux, 0, 15},   // (4) slicing axis (-1)
		{StepStore, 0, 0},   // (5) store slice 0 ...
		{StepLoad, 16, 16},  //     ... load slice 16
		{StepFlux, 1, 16},   // (6) slicing axis (+1) for 1-16
		{StepStore, 1, 15},  // (7) store 1-15 ...
		{StepLoad, 17, 31},  //     ... load 17-31
		{StepFlux, 16, 31},  // (8) x axis
		{StepFlux, 16, 31},  // (9) other intra axis
		{StepFlux, 16, 31},  // (10) slicing axis (-1)
		{StepFlux, 17, 30},  // (11) slicing axis (+1) for 17-30
		{StepStore, 16, 31}, // (12) store 16-31
	}
	if len(steps) != len(expect) {
		for _, s := range steps {
			t.Log(s)
		}
		t.Fatalf("schedule has %d steps, want %d", len(steps), len(expect))
	}
	for i, e := range expect {
		s := steps[i]
		if s.Kind != e.kind || s.First != e.first || s.Last != e.last {
			t.Errorf("step %d: got %v, want %v slices %d-%d", i, s, e.kind, e.first, e.last)
		}
	}
	// The extra DRAM traffic versus a resident run: every slice moves
	// exactly once each way.
	loads, stores := ScheduleDRAMSlices(steps)
	if loads != 32 || stores != 32 {
		t.Errorf("DRAM slice moves %d/%d, want 32/32", loads, stores)
	}
}

// Property-style sweep: the schedule validates for every divisor
// batching of several model sizes and all three slicing axes.
func TestScheduleValidatesAcrossGeometries(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		for _, per := range []int{2, 4, 8, 16, 32} {
			if per > n || n%per != 0 {
				continue
			}
			for ax := mesh.AxisX; ax <= mesh.AxisZ; ax++ {
				steps := FluxBatchSchedule(n, per, ax)
				if err := ValidateSchedule(steps, n, per, ax); err != nil {
					t.Errorf("n=%d per=%d axis=%v: %v", n, per, ax, err)
				}
			}
		}
	}
}

// Unbatched degenerate case: one batch, no intermediate stores/loads.
func TestScheduleUnbatched(t *testing.T) {
	steps := FluxBatchSchedule(16, 16, mesh.AxisZ)
	if err := ValidateSchedule(steps, 16, 16, mesh.AxisZ); err != nil {
		t.Fatal(err)
	}
	loads, stores := ScheduleDRAMSlices(steps)
	if loads != 16 || stores != 16 {
		t.Errorf("unbatched run should load and store the model once: %d/%d", loads, stores)
	}
	// Exactly one load, one store, four flux steps.
	var fluxSteps int
	for _, s := range steps {
		if s.Kind == StepFlux {
			fluxSteps++
		}
	}
	if fluxSteps != 4 {
		t.Errorf("%d flux steps, want 4 (two intra axes + two slicing normals)", fluxSteps)
	}
}

// The residency budget: the schedule never holds more than
// slicesPerBatch+1 slices (the Figure 7 working set with the one extra
// boundary slice).
func TestScheduleResidencyBudget(t *testing.T) {
	steps := FluxBatchSchedule(64, 8, mesh.AxisZ)
	if err := ValidateSchedule(steps, 64, 8, mesh.AxisZ); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulePanicsOnBadGeometry(t *testing.T) {
	for i, fn := range []func(){
		func() { FluxBatchSchedule(10, 3, mesh.AxisZ) }, // not divisible
		func() { FluxBatchSchedule(8, 1, mesh.AxisZ) },  // degenerate batch
		func() { FluxBatchSchedule(1, 1, mesh.AxisZ) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFluxStepStrings(t *testing.T) {
	s := FluxStep{Kind: StepFlux, First: 0, Last: 15, Axis: mesh.AxisY, Signs: []int{-1}}
	if got := s.String(); got != "flux y[-1] slices 0-15" {
		t.Errorf("String() = %q", got)
	}
	if StepLoad.String() != "load" || StepStore.String() != "store" {
		t.Error("kind strings wrong")
	}
}
