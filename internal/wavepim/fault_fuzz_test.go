package wavepim

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"wavepim/internal/pim/fault"
)

// FuzzFaultedRun feeds arbitrary fault and recovery configurations into a
// small acoustic run. The contract under any configuration: the run either
// completes, or fails with a typed recovery error — it never panics and
// never hangs. The seed corpus doubles as a regression suite under plain
// `go test` (fuzzing only engages with -fuzz).
func FuzzFaultedRun(f *testing.F) {
	f.Add(uint64(1), 1e-5, 1e-6, uint64(0), true, uint8(1), uint8(2), uint8(2), uint8(1))
	f.Add(uint64(2), 5e-3, 0.0, uint64(100), false, uint8(0), uint8(0), uint8(1), uint8(0))
	f.Add(uint64(3), 0.0, 1.0, uint64(0), true, uint8(2), uint8(1), uint8(3), uint8(2))
	f.Add(uint64(4), 1.0, 1.0, uint64(1), true, uint8(3), uint8(4), uint8(1), uint8(3))
	f.Add(uint64(5), 0.0, 0.0, uint64(0), false, uint8(0), uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, flip, stuck float64, wear uint64,
		ecc bool, retries, spares, ckpt, rollbacks uint8) {
		// Clamp the fuzzer's floats into valid probabilities (NaN and Inf
		// included) and keep the discrete budgets small enough to terminate.
		norm := func(p float64) float64 {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return 0
			}
			return math.Mod(math.Abs(p), 1.0000001)
		}
		cfg := fault.Config{
			Seed:            seed,
			FlipProb:        norm(flip),
			StuckProb:       norm(stuck),
			EnduranceWrites: wear % 1_000_000,
		}
		rec := fault.Recovery{
			ECC:             ecc,
			MaxRetries:      int(retries % 4),
			SpareBlocks:     int(spares % 8),
			CheckpointEvery: int(ckpt % 4),
			MaxRollbacks:    int(rollbacks % 4),
			BlowupFactor:    1e3,
		}

		s := sessionForTest(t, WithFaults(cfg), WithRecovery(rec))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		err := s.Run(ctx, 2)
		switch {
		case err == nil:
		case errors.Is(err, fault.ErrNoSpares):
		case errors.Is(err, fault.ErrUnrecoverable):
		case errors.Is(err, context.DeadlineExceeded):
			t.Fatalf("run hung until the watchdog deadline: %v", err)
		default:
			t.Fatalf("untyped error escaped the recovery ladder: %v", err)
		}
		// Whatever happened, the report must still assemble and marshal.
		r := s.FaultReport()
		if r.SparesLeft < 0 || r.SparesUsed > rec.SpareBlocks {
			t.Fatalf("spare accounting out of range: %s", r)
		}
	})
}
