package wavepim

import (
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// Loading the material constants through real OpLUT instructions
// (Algorithm 1's in-place fetch) must produce the identical simulation as
// direct host writes — and must actually have fetched from the reserved
// LUT block.
func TestLUTLoadedConstantsMatchDirectLoad(t *testing.T) {
	m := mesh.New(1, 4, true)
	q, qPim := acousticStates(t, m)
	dt := 1e-3

	// Heterogeneous field so every element's LUT entries differ.
	field := material.UniformAcoustic(m.NumElem, fnMat)
	for e := range field.ByElem {
		field.ByElem[e].Kappa = 2.0 + 0.1*float64(e)
	}

	direct, err := NewFunctionalAcoustic(m, fnMat, dg.RiemannFlux, dt)
	if err != nil {
		t.Fatal(err)
	}
	direct.LoadField(q.Copy(), field)

	viaLUT, err := NewFunctionalAcoustic(m, fnMat, dg.RiemannFlux, dt)
	if err != nil {
		t.Fatal(err)
	}
	viaLUT.LoadWithLUT(qPim, field)

	// Every block's fetched constants match the host computation exactly.
	for e := 0; e < m.NumElem; e++ {
		if !viaLUT.VerifyLUTLoaded(e, field) {
			t.Fatalf("element %d: LUT-fetched constants differ from host values", e)
		}
	}

	// And the simulations agree bit-for-bit (identical float32 programs on
	// identical data).
	direct.Run(2)
	viaLUT.Run(2)
	a, b := dg.NewAcousticState(m), dg.NewAcousticState(m)
	direct.ReadState(a)
	viaLUT.ReadState(b)
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatalf("state diverged at node %d: %g vs %g", i, a.P[i], b.P[i])
		}
	}

	// The LUT path really executed OpLUT instructions: 28 per element at
	// setup.
	wantLUTs := int64(m.NumElem * lutEntriesPerElem)
	if viaLUT.Engine.InstrCount < wantLUTs {
		t.Errorf("only %d instructions executed at load; want at least %d LUT fetches",
			viaLUT.Engine.InstrCount, wantLUTs)
	}
}

// The LUT fetch must be priced: the setup phase costs time and energy,
// including the inter-block transit from the LUT block.
func TestLUTLoadCharged(t *testing.T) {
	m := mesh.New(1, 4, true)
	q, _ := acousticStates(t, m)
	fa, err := NewFunctionalAcoustic(m, fnMat, dg.RiemannFlux, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	fa.LoadWithLUT(q, material.UniformAcoustic(m.NumElem, fnMat))
	if fa.Engine.TotalTime() <= 0 || fa.Engine.TotalEnergy <= 0 {
		t.Error("LUT constant loading must consume time and energy")
	}
}
