package wavepim

import (
	"context"
	"sync"
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
)

// The second session with the same (equation, flux, order, extent, chip)
// skips compilation: its plan comes from the cache, the hit counter
// moves, and the physics is bit-identical to the cold session's.
func TestPlanCacheWarmHit(t *testing.T) {
	resetPlanCache()

	cold := sessionForTest(t)
	if cold.PlanCacheHit() {
		t.Fatal("first session must be a cache miss")
	}
	warm := sessionForTest(t)
	if !warm.PlanCacheHit() {
		t.Fatal("second identical session must be a cache hit")
	}
	st := PlanCacheSnapshot()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("snapshot = %+v, want 1 miss, 1 hit, 1 entry", st)
	}

	// Both sessions share one immutable plan; runs stay bit-identical.
	if err := cold.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := warm.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	m := cold.cfg.mesh
	qa, qb := dg.NewAcousticState(m), dg.NewAcousticState(m)
	cold.Acoustic().ReadState(qa)
	warm.Acoustic().ReadState(qb)
	for v, sl := range qa.Slices() {
		for i := range sl {
			if sl[i] != qb.Slices()[v][i] {
				t.Fatalf("var %d node %d: cold %v, warm %v", v, i, sl[i], qb.Slices()[v][i])
			}
		}
	}
}

// Every key dimension that changes compiled output produces a distinct
// cache entry — a changed flux or equation must never be served a stale
// plan.
func TestPlanCacheKeying(t *testing.T) {
	resetPlanCache()

	sessionForTest(t) // acoustic Riemann: miss
	if s := sessionForTest(t, WithFlux(dg.CentralFlux)); s.PlanCacheHit() {
		t.Fatal("central flux must not hit the Riemann entry")
	}

	m := mesh.New(1, 4, true)
	el, err := NewSession(WithMesh(m), WithDt(1e-3), WithEquation(opcount.ElasticCentral), WithFlux(dg.CentralFlux))
	if err != nil {
		t.Fatal(err)
	}
	if el.PlanCacheHit() {
		t.Fatal("elastic must not hit an acoustic entry")
	}
	mx, err := NewSession(WithMesh(m), WithDt(1e-3), WithEquation(opcount.Maxwell), WithFlux(dg.CentralFlux))
	if err != nil {
		t.Fatal(err)
	}
	if mx.PlanCacheHit() {
		t.Fatal("maxwell must not hit an elastic entry")
	}
	if st := PlanCacheSnapshot(); st.Entries != 4 || st.Hits != 0 {
		t.Fatalf("snapshot = %+v, want 4 entries, 0 hits", st)
	}

	// dt is deliberately NOT in the key: it only changes loaded constants
	// (RowRK), never compiled programs or schedules.
	if s := sessionForTest(t, WithDt(5e-4)); !s.PlanCacheHit() {
		t.Fatal("a different dt must share the compiled plan")
	}

	k1 := PlanKey{Eq: opcount.Acoustic, Flux: dg.RiemannFlux, Np: 4, EPerAxis: 4, Chip: "512MB"}
	k2 := k1
	k2.Flux = dg.CentralFlux
	if k1.Digest() == k2.Digest() {
		t.Fatal("distinct keys share a digest")
	}
	if k1.Digest() != k1.Digest() {
		t.Fatal("digest is not deterministic")
	}
}

// Concurrent first-time construction builds the plan exactly once
// (singleflight) and every session gets a working plan. Run with -race.
func TestPlanCacheConcurrent(t *testing.T) {
	resetPlanCache()
	m := mesh.New(1, 4, true)

	const n = 8
	sessions := make([]*Session, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewSession(WithMesh(m), WithDt(1e-3))
			if err != nil {
				t.Error(err)
				return
			}
			q := dg.NewAcousticState(m)
			dg.PlaneWaveX(m, fnMat, 1, q)
			s.Acoustic().Load(q)
			if err := s.Run(context.Background(), 1); err != nil {
				t.Error(err)
			}
			sessions[i] = s
		}(i)
	}
	wg.Wait()

	st := PlanCacheSnapshot()
	if st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("snapshot = %+v, want exactly 1 build", st)
	}
	if st.Hits != n-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, n-1)
	}
	ref := dg.NewAcousticState(m)
	sessions[0].Acoustic().ReadState(ref)
	for i := 1; i < n; i++ {
		q := dg.NewAcousticState(m)
		sessions[i].Acoustic().ReadState(q)
		for v, sl := range ref.Slices() {
			for j := range sl {
				if sl[j] != q.Slices()[v][j] {
					t.Fatalf("session %d diverges at var %d node %d", i, v, j)
				}
			}
		}
	}
}

// Publish exposes the cache counters as gauges.
func TestPlanCachePublished(t *testing.T) {
	resetPlanCache()
	sink := obs.NewSink()
	s := sessionForTest(t, WithObs(sink))
	if err := s.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := sink.Gauge("wavepim.plan_cache.misses").Value(); got != 1 {
		t.Fatalf("plan_cache.misses gauge = %v, want 1", got)
	}
	sessionForTest(t)
	s.Publish()
	if got := sink.Gauge("wavepim.plan_cache.hits").Value(); got != 1 {
		t.Fatalf("plan_cache.hits gauge = %v, want 1", got)
	}
}

// benchSession builds an uninstrumented acoustic session on the bench
// mesh (compilation cost only; no load, no steps).
func benchSession(b *testing.B) {
	m := mesh.New(1, 4, true)
	if _, err := NewSession(WithMesh(m), WithDt(1e-3)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSessionBuildCold measures full compilation: every iteration
// empties the plan cache first, so block-program compilation, transfer
// scheduling and LUT program construction all run.
func BenchmarkSessionBuildCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		resetPlanCache()
		benchSession(b)
	}
	resetPlanCache()
}

// BenchmarkSessionBuildWarm measures the cache-hit path: construction
// after the first reuses the compiled plan, so the remaining cost is
// chip allocation only.
func BenchmarkSessionBuildWarm(b *testing.B) {
	resetPlanCache()
	benchSession(b) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSession(b)
	}
}
