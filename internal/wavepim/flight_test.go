package wavepim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"wavepim/internal/obs"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/pim/fault"
)

// flightHarness wires the full telemetry stack the way wavepimd does:
// a sink with a capped tracer, an event logger teed into a flight
// recorder built over that tracer, plus a dump writer.
type flightHarness struct {
	sink    *obs.Sink
	logOut  bytes.Buffer
	dumpOut bytes.Buffer
	opts    []Option
}

func newFlightHarness(runID string) *flightHarness {
	h := &flightHarness{sink: &obs.Sink{Reg: obs.NewRegistry(), Trace: obs.NewTracer().WithCap(64)}}
	log := eventlog.New(&h.logOut, eventlog.Debug)
	log.SetClock(func() time.Time { return time.Unix(0, 42).UTC() })
	fr := eventlog.NewFlightRecorder(h.sink.Trace, 32, 16)
	log.SetRecorder(fr)
	h.opts = []Option{
		WithObs(h.sink),
		WithRunID(runID),
		WithEventLog(log.WithRun(runID)),
		WithFlightRecorder(fr),
		WithFlightDump(&h.dumpOut),
	}
	return h
}

// TestFlightDumpOnUnrecoverable: the canonical unrecoverable scenario
// (ECC off, aggressive flips, rollback budget 1) must automatically
// produce a flight dump carrying the recent events and span tail.
func TestFlightDumpOnUnrecoverable(t *testing.T) {
	rec := fault.DefaultRecovery()
	rec.ECC = false
	rec.CheckpointEvery = 2
	rec.MaxRollbacks = 1
	rec.BlowupFactor = 10
	h := newFlightHarness("r-unrec")
	s := sessionForTest(t, append(h.opts,
		WithFaults(fault.Config{Seed: 13, FlipProb: 5e-3}),
		WithRecovery(rec))...)

	err := s.Run(context.Background(), 8)
	if !errors.Is(err, fault.ErrUnrecoverable) {
		t.Fatalf("want ErrUnrecoverable, got %v", err)
	}

	d := s.FlightDump()
	if d == nil {
		t.Fatal("no automatic flight dump after ErrUnrecoverable")
	}
	if d.Reason != "unrecoverable" {
		t.Fatalf("dump reason = %q, want unrecoverable", d.Reason)
	}
	if d.Run != "r-unrec" {
		t.Fatalf("dump run = %q, want r-unrec", d.Run)
	}
	if len(d.Events) == 0 {
		t.Fatal("dump has no events")
	}
	if len(d.Spans) == 0 {
		t.Fatal("dump has no spans")
	}
	if len(d.Spans) > 16 {
		t.Fatalf("span tail exceeds recorder cap: %d", len(d.Spans))
	}

	// Every retained event must be a standalone JSON object, and the tail
	// must include the rollback rung and the run.error classification.
	var sawRollback, sawError bool
	for _, raw := range d.Events {
		var ev map[string]any
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("unparseable event %s: %v", raw, err)
		}
		if ev["run"] != "r-unrec" {
			t.Fatalf("event missing run id: %s", raw)
		}
		switch ev["event"] {
		case "fault.rung":
			if ev["rung"] == "rollback" {
				sawRollback = true
			}
		case "run.error":
			sawError = true
			if ev["reason"] != "unrecoverable" {
				t.Fatalf("run.error reason = %v", ev["reason"])
			}
		}
	}
	if !sawRollback {
		t.Fatal("dump events miss the rollback fault.rung")
	}
	if !sawError {
		t.Fatal("dump events miss run.error")
	}

	// The dump writer got valid JSON, and the JSONL stream stayed parseable.
	var onDisk eventlog.FlightDump
	if err := json.Unmarshal(h.dumpOut.Bytes(), &onDisk); err != nil {
		t.Fatalf("WithFlightDump output unparseable: %v", err)
	}
	if onDisk.Reason != "unrecoverable" || len(onDisk.Events) != len(d.Events) {
		t.Fatalf("serialized dump disagrees with FlightDump(): %+v", onDisk)
	}
	for _, line := range strings.Split(strings.TrimSpace(h.logOut.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}

	// Labeled rung telemetry: the rollback rung fired once and its MTTR
	// was observed.
	snap := h.sink.Reg.Snapshot()
	if got := snap.Counters[`sim.fault.rung_events{rung="rollback"}`]; got != int64(rec.MaxRollbacks) {
		t.Fatalf("rollback rung counter = %d, want %d (counters: %v)", got, rec.MaxRollbacks, snap.Counters)
	}
	if hs := snap.Histograms[`sim.fault.mttr_seconds{rung="rollback"}`]; hs.Count != int64(rec.MaxRollbacks) {
		t.Fatalf("rollback MTTR count = %d (histograms: %v)", hs.Count, snap.Histograms)
	}
}

// TestFlightDumpOnDeadline: an expired context deadline is a
// dump-triggering failure with reason "deadline".
func TestFlightDumpOnDeadline(t *testing.T) {
	h := newFlightHarness("r-dl")
	s := sessionForTest(t, h.opts...)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var dl *ErrDeadline
	if err := s.Run(ctx, 4); !errors.As(err, &dl) {
		t.Fatalf("want *ErrDeadline, got %v", err)
	}
	d := s.FlightDump()
	if d == nil || d.Reason != "deadline" {
		t.Fatalf("want deadline dump, got %+v", d)
	}
}

// TestNoFlightDumpOnCleanRun: success leaves no dump behind and emits
// run.start then run.end.
func TestNoFlightDumpOnCleanRun(t *testing.T) {
	h := newFlightHarness("r-ok")
	s := sessionForTest(t, h.opts...)
	if err := s.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if s.FlightDump() != nil {
		t.Fatal("clean run produced a flight dump")
	}
	out := h.logOut.String()
	if !strings.Contains(out, `"event":"run.start"`) || !strings.Contains(out, `"event":"run.end"`) {
		t.Fatalf("missing run lifecycle events:\n%s", out)
	}
	if h.dumpOut.Len() != 0 {
		t.Fatal("dump writer written on a clean run")
	}
}

// TestNoFlightDumpOnCancel: plain cancellation is not a failure the
// recorder should snapshot.
func TestNoFlightDumpOnCancel(t *testing.T) {
	h := newFlightHarness("r-cancel")
	s := sessionForTest(t, h.opts...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Run(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s.FlightDump() != nil {
		t.Fatal("cancellation produced a flight dump")
	}
}
