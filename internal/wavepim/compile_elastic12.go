package wavepim

import (
	"wavepim/internal/dg"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/isa"
)

// Elastic twelve-block (E_r & E_p) programs: one variable per block, used
// when the chip has room to spare (Table 5's elastic level-4 cases on 8 GB
// and 16 GB). Each block computes only its own variable's contribution, so
// the Volume critical path drops from Bv's nine derivative dot products to
// three (Section 6.2.2: "The nine variables will be distributed to three
// or nine memory blocks"). These programs drive the timing model; their
// functional behaviour is the same arithmetic as the four-block programs
// the tests verify, re-partitioned.

// Volume12Diag compiles the Volume program of a single diagonal-stress
// block sigma_aa: the full divergence (three dot products over the fetched
// velocity columns in remote0..2) plus its own 2mu grad term.
func (c *Compiler) Volume12Diag(a mesh.Axis) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.bconst(RowScalarConsts, ConstOne, ExColConstC)
	for ax := mesh.AxisX; ax <= mesh.AxisZ; ax++ {
		b.distributeD(ExColD, ax)
		b.dot(ExColRemote+int(ax), ExColAcc, ExColTmp1, ExColTmp2, ExColD, ax)
		if ax == mesh.AxisX {
			b.mul(ExColAccDiv, ExColAcc, ExColConstC)
		} else {
			b.add(ExColAccDiv, ExColAccDiv, ExColAcc)
		}
		if ax == a {
			// Keep the own-axis derivative for the 2mu term.
			b.bconst(RowScalarConsts, ConstTwoMu, ExColConstB)
			b.mul(ExColContrib, ExColAcc, ExColConstB)
		}
	}
	b.bconst(RowScalarConsts, ConstLambda, ExColConstA)
	b.mul(ExColTmp1, ExColAccDiv, ExColConstA)
	b.add(ExColContrib, ExColContrib, ExColTmp1)
	return b.ins
}

// Volume12Shear compiles the Volume program of one shear block sigma_ij:
// two cross-derivative dot products.
func (c *Compiler) Volume12Shear(i, j int) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.bconst(RowScalarConsts, ConstMu, ExColConstA)
	// dv_i/dx_j
	b.distributeD(ExColD, mesh.Axis(j))
	b.dot(ExColRemote+0, ExColAcc, ExColTmp1, ExColTmp2, ExColD, mesh.Axis(j))
	b.mul(ExColContrib, ExColAcc, ExColConstA)
	// dv_j/dx_i
	b.distributeD(ExColD, mesh.Axis(i))
	b.dot(ExColRemote+1, ExColAcc, ExColTmp1, ExColTmp2, ExColD, mesh.Axis(i))
	b.mul(ExColTmp1, ExColAcc, ExColConstA)
	b.add(ExColContrib, ExColContrib, ExColTmp1)
	return b.ins
}

// Volume12Vel compiles the Volume program of one velocity block v_i: three
// stress-divergence dot products over the fetched sigma_i* columns
// (remote0 = sigma_ix, remote1 = sigma_iy, remote2 = sigma_iz).
func (c *Compiler) Volume12Vel() []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.bconst(RowScalarConsts, ConstOne, ExColConstC)
	for ax := mesh.AxisX; ax <= mesh.AxisZ; ax++ {
		b.distributeD(ExColD, ax)
		b.dot(ExColRemote+int(ax), ExColAcc, ExColTmp1, ExColTmp2, ExColD, ax)
		if ax == mesh.AxisX {
			b.mul(ExColContrib, ExColAcc, ExColConstC)
		} else {
			b.add(ExColContrib, ExColContrib, ExColAcc)
		}
	}
	b.bconst(RowScalarConsts, ConstInvRho, ExColConstA)
	b.mul(ExColContrib, ExColContrib, ExColConstA)
	return b.ins
}

// Flux12Var compiles a single-variable flux program for one face: one or
// two penalty channels on the fetched jump columns, masked and accumulated
// into the block's lone contribution column. riemannChannels is 1 for the
// central flux and 2 for the Riemann flux.
func (c *Compiler) Flux12Var(f mesh.Face) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	a := f.Axis()
	maskWord := 0
	if f.Sign() > 0 {
		maskWord = 1
	}
	b.pattern(RowMaskBase, a, maskWord, ExColD)
	b.sub(ExColTmp1, ExColNbr0, ExColRemote+0)
	b.bconst(RowFluxConsts, 4*int(f)+0, ExColConstA)
	b.mul(ExColAcc, ExColTmp1, ExColConstA)
	if c.Flux == dg.RiemannFlux {
		b.sub(ExColTmp2, ExColNbr1, ExColVar0)
		b.bconst(RowFluxConsts, 4*int(f)+1, ExColConstB)
		b.mul(ExColAccDiv, ExColTmp2, ExColConstB)
		b.add(ExColAcc, ExColAcc, ExColAccDiv)
	}
	b.mul(ExColAcc, ExColAcc, ExColD)
	b.add(ExColContrib, ExColContrib, ExColAcc)
	return b.ins
}

// Elastic12CriticalVolume returns the longest per-block Volume program of
// the twelve-block layout (the diag/velocity blocks' three dot products).
func (c *Compiler) Elastic12CriticalVolume() []isa.Instr {
	diag := c.Volume12Diag(mesh.AxisX)
	vel := c.Volume12Vel()
	if len(diag) >= len(vel) {
		return diag
	}
	return vel
}
