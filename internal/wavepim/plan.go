package wavepim

import (
	"fmt"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/pim/chip"
)

// Plan is the planner's decision for one (benchmark, chip) pair: which
// Table 5 technique combination to use, how elements map to blocks, and
// how the model folds through the chip when it does not fit.
type Plan struct {
	Bench  opcount.Benchmark
	Chip   chip.Config
	Tech   Technique
	Layout LayoutKind

	SlotsPerElem   int
	ElemsPerSlice  int // elements in one z-slice of the mesh
	NumSlices      int
	SlicesPerBatch int
	Batches        int
}

// ElemsPerBatch returns how many elements are resident per batch.
func (p Plan) ElemsPerBatch() int { return p.SlicesPerBatch * p.ElemsPerSlice }

// BlocksUsed returns how many memory blocks one batch occupies.
func (p Plan) BlocksUsed() int { return p.ElemsPerBatch() * p.SlotsPerElem }

func (p Plan) String() string {
	return fmt.Sprintf("%s on %s: %s (layout slots=%d, batches=%d)",
		p.Bench.Name(), p.Chip.Name, p.Tech, p.SlotsPerElem, p.Batches)
}

// MakePlan reproduces Table 5's configuration choices mechanically:
//
//   - The elastic system's nine variables exceed one block's row budget, so
//     elastic always uses E_r (a four-slot element: diagonal stress, shear
//     stress, velocity, neighbor buffer).
//   - If the chip has room to expand every element for more parallelism
//     (4 slots for acoustic, 12 for elastic), use E_p.
//   - Otherwise, if the whole model fits at the base layout, use it (N for
//     acoustic, E_r for elastic).
//   - Otherwise fold the model through the chip in whole z-slices
//     (Figure 7's flux schedule needs slice granularity), batching as many
//     slices per pass as fit.
func MakePlan(b opcount.Benchmark, cfg chip.Config) (Plan, error) {
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	ePerAxis := 1 << b.Refinement
	elemsPerSlice := ePerAxis * ePerAxis
	numElems := b.NumElements()
	avail := cfg.NumBlocks()

	elastic := b.Eq != opcount.Acoustic
	var base, expanded Technique
	var baseSlots, expSlots int
	if elastic {
		base, baseSlots = ExpandRows, ElasticFourBlock.SlotsPerElement()
		expanded, expSlots = ExpandRows|ExpandParallel, ElasticTwelveBlock.SlotsPerElement()
	} else {
		base, baseSlots = Naive, AcousticOneBlock.SlotsPerElement()
		expanded, expSlots = ExpandParallel, AcousticFourBlock.SlotsPerElement()
	}

	if b.Eq == opcount.Maxwell {
		// The Maxwell extension has a two-compute-block mapping only (E and
		// H blocks in a four-slot element); no E_p variant exists.
		expSlots = 1 << 30
	}

	p := Plan{Bench: b, Chip: cfg, ElemsPerSlice: elemsPerSlice, NumSlices: ePerAxis}
	switch {
	case numElems*expSlots <= avail:
		p.Tech, p.SlotsPerElem = expanded, expSlots
		p.SlicesPerBatch, p.Batches = p.NumSlices, 1
	case numElems*baseSlots <= avail:
		p.Tech, p.SlotsPerElem = base, baseSlots
		p.SlicesPerBatch, p.Batches = p.NumSlices, 1
	default:
		p.Tech, p.SlotsPerElem = base|Batching, baseSlots
		p.SlicesPerBatch = avail / (baseSlots * elemsPerSlice)
		if p.SlicesPerBatch < 1 {
			return Plan{}, fmt.Errorf("wavepim: %s does not fit even one slice of %s (%d blocks needed, %d available)",
				cfg.Name, b.Name(), baseSlots*elemsPerSlice, avail)
		}
		p.Batches = (p.NumSlices + p.SlicesPerBatch - 1) / p.SlicesPerBatch
	}
	p.Layout = LayoutFor(b.Eq, p.Tech)
	return p, nil
}

// PaperTable5 returns the published Table 5 technique strings, indexed by
// [benchmark][chip] in the order of opcount.AllBenchmarks-by-refinement
// groups and chip.AllConfigs.
//
// Determinism note: this is the only map in the planning layer, and it is
// only ever read by keyed lookup (tests index it by benchmark and chip
// name) — its iteration order never feeds a result, a timeline, or a
// report, so seeded fault runs stay byte-reproducible.
func PaperTable5() map[string]map[string]string {
	return map[string]map[string]string{
		"Acoustic_4": {
			"PIM-512MB": "N", "PIM-2GB": "E_p", "PIM-8GB": "E_p", "PIM-16GB": "E_p",
		},
		"Elastic_4": {
			"PIM-512MB": "E_r&B", "PIM-2GB": "E_r", "PIM-8GB": "E_r&E_p", "PIM-16GB": "E_r&E_p",
		},
		"Acoustic_5": {
			"PIM-512MB": "B", "PIM-2GB": "B", "PIM-8GB": "N", "PIM-16GB": "E_p",
		},
		"Elastic_5": {
			"PIM-512MB": "E_r&B", "PIM-2GB": "E_r&B", "PIM-8GB": "E_r&B", "PIM-16GB": "E_r",
		},
	}
}

// table5Key maps a benchmark to its Table 5 row (the table collapses the
// two elastic flux variants into one "Elastic" row per level: the fitting
// decision depends only on variable count, not on the flux solver).
func table5Key(b opcount.Benchmark) string {
	if b.Eq == opcount.Acoustic {
		return fmt.Sprintf("Acoustic_%d", b.Refinement)
	}
	return fmt.Sprintf("Elastic_%d", b.Refinement)
}

// Table5String renders the planner's decision in the paper's notation,
// with "B" shown alone for the naive-batched acoustic cases as Table 5
// prints it.
func (p Plan) Table5String() string {
	if p.Tech == Naive|Batching {
		return "B"
	}
	return p.Tech.String()
}
