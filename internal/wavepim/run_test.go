package wavepim

import (
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/pim/chip"
)

func quickOpts() Options {
	o := DefaultOptions()
	o.TimeSteps = 64
	return o
}

func mustRun(t *testing.T, b opcount.Benchmark, cfg chip.Config, opt Options) Result {
	t.Helper()
	r, err := Run(b, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Core runner invariants across the full benchmark grid.
func TestRunInvariants(t *testing.T) {
	for _, b := range opcount.AllBenchmarks() {
		if b.Refinement > 4 {
			continue // keep the test fast; level 5 covered by experiments tests
		}
		for _, cfg := range chip.AllConfigs() {
			r := mustRun(t, b, cfg, quickOpts())
			if r.TotalSec <= 0 || r.EnergyJ <= 0 || r.StageSec <= 0 {
				t.Fatalf("%s on %s: nonpositive results %+v", b.Name(), cfg.Name, r)
			}
			if r.StepSec < r.StageSec*dg.NumStages*0.999 {
				t.Errorf("%s on %s: step time %g < 5 stages %g", b.Name(), cfg.Name, r.StepSec, r.StageSec*5)
			}
			if r.DynamicJ <= 0 || r.StaticJ <= 0 {
				t.Errorf("%s on %s: energy split wrong", b.Name(), cfg.Name)
			}
			bd := r.Breakdown
			if bd.ComputeSec <= 0 || bd.InterTransferSec <= 0 {
				t.Errorf("%s on %s: breakdown missing compute or inter-element time", b.Name(), cfg.Name)
			}
			if r.Plan.Batches > 1 && bd.DRAMSec == 0 {
				t.Errorf("%s on %s: batched plan must show DRAM time", b.Name(), cfg.Name)
			}
			if r.Plan.Batches == 1 && bd.DRAMSec != 0 {
				t.Errorf("%s on %s: unbatched plan must not pay per-stage DRAM", b.Name(), cfg.Name)
			}
		}
	}
}

// Pipelining always helps (or at worst does nothing).
func TestPipeliningNeverHurts(t *testing.T) {
	for _, b := range opcount.AllBenchmarks()[:3] {
		for _, cfg := range []chip.Config{chip.Config512MB(), chip.Config2GB()} {
			on := mustRun(t, b, cfg, quickOpts())
			off := quickOpts()
			off.Pipelined = false
			flat := mustRun(t, b, cfg, off)
			if on.StageSec > flat.StageSec*1.0001 {
				t.Errorf("%s on %s: pipelined %g > unpipelined %g", b.Name(), cfg.Name, on.StageSec, flat.StageSec)
			}
		}
	}
}

// The bus interconnect is never faster than the H-tree on flux-heavy runs,
// and the Morton placement never loses to row-major on inter-element time.
func TestTopologyAndPlacementOrdering(t *testing.T) {
	b := opcount.Benchmark{Eq: opcount.ElasticCentral, Refinement: 4}
	ht := mustRun(t, b, chip.Config2GB(), quickOpts())
	busCfg := chip.Config2GB()
	busCfg.Interconnect = chip.Bus
	bus := mustRun(t, b, busCfg, quickOpts())
	if bus.TotalSec < ht.TotalSec {
		t.Errorf("bus run (%g) should not beat H-tree (%g)", bus.TotalSec, ht.TotalSec)
	}
	rm := quickOpts()
	rm.Morton = false
	rowMajor := mustRun(t, b, chip.Config2GB(), rm)
	if rowMajor.Breakdown.InterTransferSec < ht.Breakdown.InterTransferSec {
		t.Errorf("row-major placement (%g) should not beat Morton (%g) on inter-element transfers",
			rowMajor.Breakdown.InterTransferSec, ht.Breakdown.InterTransferSec)
	}
}

// Total time scales linearly in time-steps (setup aside).
func TestRunLinearInSteps(t *testing.T) {
	b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	o1, o2 := quickOpts(), quickOpts()
	o1.TimeSteps, o2.TimeSteps = 100, 200
	r1 := mustRun(t, b, chip.Config2GB(), o1)
	r2 := mustRun(t, b, chip.Config2GB(), o2)
	growth := (r2.TotalSec - r1.TotalSec) / r1.StepSec
	if growth < 99 || growth > 101 {
		t.Errorf("time growth over 100 extra steps = %g step-times, want ~100", growth)
	}
}

// FluxFor maps benchmark groups to the right solver.
func TestFluxFor(t *testing.T) {
	if FluxFor(opcount.Acoustic) != dg.RiemannFlux {
		t.Error("acoustic group uses the Riemann solver (its sqrt/inverse feed the host offload)")
	}
	if FluxFor(opcount.ElasticCentral) != dg.CentralFlux {
		t.Error("elastic-central group uses the central solver")
	}
	if FluxFor(opcount.ElasticRiemann) != dg.RiemannFlux {
		t.Error("elastic-riemann group uses the Riemann solver")
	}
}

// The per-batch timeline exists only for pipelined runs and is
// internally consistent.
func TestTimelineConsistency(t *testing.T) {
	b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	r := mustRun(t, b, chip.Config2GB(), quickOpts())
	if len(r.Timeline) == 0 {
		t.Fatal("pipelined run must produce a timeline")
	}
	var maxEnd float64
	for _, p := range r.Timeline {
		if p.Start < 0 || p.Dur < 0 {
			t.Errorf("phase %s has negative time", p.Name)
		}
		if end := p.Start + p.Dur; end > maxEnd {
			maxEnd = end
		}
	}
	// The stage duration equals the timeline's end.
	if diff := (r.StageSec - maxEnd) / r.StageSec; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("stage %g != timeline end %g", r.StageSec, maxEnd)
	}
	off := quickOpts()
	off.Pipelined = false
	if flat := mustRun(t, b, chip.Config2GB(), off); len(flat.Timeline) != 0 {
		t.Error("unpipelined run should not produce a pipeline timeline")
	}
}

// InstrPerStage is populated and larger for elastic than acoustic.
func TestInstrAccounting(t *testing.T) {
	ac := mustRun(t, opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}, chip.Config512MB(), quickOpts())
	el := mustRun(t, opcount.Benchmark{Eq: opcount.ElasticCentral, Refinement: 4}, chip.Config2GB(), quickOpts())
	if ac.InstrPerStage <= 0 || el.InstrPerStage <= ac.InstrPerStage {
		t.Errorf("instruction accounting wrong: acoustic %d, elastic %d", ac.InstrPerStage, el.InstrPerStage)
	}
}
