package wavepim

import (
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// The batched functional run (Figure 6/7 on real data) must agree with
// the fully resident functional run AND the reference solver: batching is
// a residency strategy, not a numerical change.
func TestFunctionalBatchedMatchesUnbatched(t *testing.T) {
	m := mesh.New(1, 4, true) // 2 z-slices of 4 elements
	q, qPim := acousticStates(t, m)

	// Reference.
	ref := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, fnMat), dg.RiemannFlux)
	it := dg.NewAcousticIntegrator(ref)
	dt := ref.MaxStableDt(0.3)

	fb, err := NewFunctionalAcousticBatched(m, fnMat, dg.RiemannFlux, dt, 1) // 2 batches
	if err != nil {
		t.Fatal(err)
	}
	fb.Load(qPim)

	const steps = 2
	it.Run(q, 0, dt, steps)
	fb.Run(steps)
	got := dg.NewAcousticState(m)
	fb.ReadState(got)

	if e := maxRelErr(got.P, q.P); e > 5e-3 {
		t.Errorf("batched pressure rel err %g", e)
	}
	for d := 0; d < 3; d++ {
		if e := maxRelErr(got.V[d], q.V[d]); e > 5e-3 {
			t.Errorf("batched v[%d] rel err %g", d, e)
		}
	}
	// The fold really happened: DRAM traffic was charged, and the chip
	// only materialized one batch's worth of blocks.
	if fb.Engine.DRAMBytes == 0 {
		t.Error("batched run must move DRAM bytes")
	}
	if got := fb.Engine.Chip.AllocatedBlocks(); got != 4 {
		t.Errorf("allocated %d blocks, want 4 (one batch)", got)
	}
}

// Batched and unbatched functional runs produce bit-identical float32
// trajectories when the instruction order per element matches — here we
// assert agreement to float32 round-off across several steps.
func TestFunctionalBatchedTracksResidentRun(t *testing.T) {
	m := mesh.New(1, 4, true)
	q, _ := acousticStates(t, m)
	dt := 1e-3

	resident, err := NewFunctionalAcoustic(m, fnMat, dg.RiemannFlux, dt)
	if err != nil {
		t.Fatal(err)
	}
	resident.Load(q.Copy())
	batched, err := NewFunctionalAcousticBatched(m, fnMat, dg.RiemannFlux, dt, 1)
	if err != nil {
		t.Fatal(err)
	}
	batched.Load(q.Copy())

	resident.Run(3)
	batched.Run(3)
	a, b := dg.NewAcousticState(m), dg.NewAcousticState(m)
	resident.ReadState(a)
	batched.ReadState(b)
	if e := maxRelErr(a.P, b.P); e > 1e-5 {
		t.Errorf("batched vs resident pressure rel err %g (want float32 round-off only)", e)
	}
}
