package wavepim

import (
	"fmt"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/sim"
)

// Elastic four-block (E_r) programs (Sections 5.1 and 6.2.2): the nine
// variables of an elastic element cannot fit one block's row budget, so
// they spread over a four-slot element:
//
//	Bd (slot 0): diagonal stress  sxx, syy, szz  (var0..2)
//	Bs (slot 1): shear stress     sxy, sxz, syz  (var0..2)
//	Bv (slot 2): velocity         vx, vy, vz     (var0..2)
//	Bb (slot 3): neighbor-data buffer (pipelining)
//
// Volume needs cross-block columns ("more inter-block memcpy will happen
// for Volume in the elastic wave simulation"): Bd and Bs receive the three
// velocity columns in remote0..2; Bv receives all six stress columns in
// remote0..5 (diag then shear).

// bvSigmaCol returns Bv's remote column holding sigma_{i,axis}.
func bvSigmaCol(i int, a mesh.Axis) int {
	type pair struct{ i, a int }
	m := map[pair]int{
		{0, 0}: ExColRemote + 0, {1, 1}: ExColRemote + 1, {2, 2}: ExColRemote + 2,
		{0, 1}: ExColRemote + 3, {1, 0}: ExColRemote + 3,
		{0, 2}: ExColRemote + 4, {2, 0}: ExColRemote + 4,
		{1, 2}: ExColRemote + 5, {2, 1}: ExColRemote + 5,
	}
	return m[pair{i, int(a)}]
}

// shearVar returns Bs's variable column index for the unordered pair
// (i, j), i != j: sxy=0, sxz=1, syz=2.
func shearVar(i, j int) int {
	if i > j {
		i, j = j, i
	}
	switch {
	case i == 0 && j == 1:
		return 0
	case i == 0 && j == 2:
		return 1
	default:
		return 2
	}
}

// otherAxes lists the two axes != a in ascending order.
func otherAxes(a mesh.Axis) [2]int {
	switch a {
	case mesh.AxisX:
		return [2]int{1, 2}
	case mesh.AxisY:
		return [2]int{0, 2}
	default:
		return [2]int{0, 1}
	}
}

// VolumeElasticDiag compiles Bd's Volume: the three normal-derivative dot
// products feeding 2mu*grad and the accumulated divergence scaled by
// lambda.
func (c *Compiler) VolumeElasticDiag() []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.bconst(RowScalarConsts, ConstTwoMu, ExColConstB)
	b.bconst(RowScalarConsts, ConstOne, ExColConstC)
	for a := mesh.AxisX; a <= mesh.AxisZ; a++ {
		b.distributeD(ExColD, a)
		b.dot(ExColRemote+int(a), ExColAcc, ExColTmp1, ExColTmp2, ExColD, a)
		b.mul(ExColContrib+int(a), ExColAcc, ExColConstB)
		if a == mesh.AxisX {
			b.mul(ExColAccDiv, ExColAcc, ExColConstC)
		} else {
			b.add(ExColAccDiv, ExColAccDiv, ExColAcc)
		}
	}
	b.bconst(RowScalarConsts, ConstLambda, ExColConstA)
	b.mul(ExColTmp1, ExColAccDiv, ExColConstA)
	for v := 0; v < 3; v++ {
		b.add(ExColContrib+v, ExColContrib+v, ExColTmp1)
	}
	return b.ins
}

// VolumeElasticShear compiles Bs's Volume: the six cross derivatives,
// grouped by derivative axis so each dshape distribution is reused.
func (c *Compiler) VolumeElasticShear() []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.bconst(RowScalarConsts, ConstMu, ExColConstA)
	// derivAxis -> list of (velocity component, destination shear var).
	work := map[mesh.Axis][][2]int{
		mesh.AxisX: {{1, 0}, {2, 1}}, // dvy/dx -> sxy, dvz/dx -> sxz
		mesh.AxisY: {{0, 0}, {2, 2}}, // dvx/dy -> sxy, dvz/dy -> syz
		mesh.AxisZ: {{0, 1}, {1, 2}}, // dvx/dz -> sxz, dvy/dz -> syz
	}
	written := [3]bool{}
	for a := mesh.AxisX; a <= mesh.AxisZ; a++ {
		b.distributeD(ExColD, a)
		for _, w := range work[a] {
			vComp, dst := w[0], w[1]
			b.dot(ExColRemote+vComp, ExColAcc, ExColTmp1, ExColTmp2, ExColD, a)
			if !written[dst] {
				b.mul(ExColContrib+dst, ExColAcc, ExColConstA)
				written[dst] = true
			} else {
				b.mul(ExColTmp1, ExColAcc, ExColConstA)
				b.add(ExColContrib+dst, ExColContrib+dst, ExColTmp1)
			}
		}
	}
	return b.ins
}

// VolumeElasticVel compiles Bv's Volume: the nine stress-divergence dot
// products (three per velocity component), scaled by the host-precomputed
// 1/rho.
func (c *Compiler) VolumeElasticVel() []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.bconst(RowScalarConsts, ConstOne, ExColConstC)
	for a := mesh.AxisX; a <= mesh.AxisZ; a++ {
		b.distributeD(ExColD, a)
		for i := 0; i < 3; i++ {
			b.dot(bvSigmaCol(i, a), ExColAcc, ExColTmp1, ExColTmp2, ExColD, a)
			if a == mesh.AxisX {
				b.mul(ExColContrib+i, ExColAcc, ExColConstC)
			} else {
				b.add(ExColContrib+i, ExColContrib+i, ExColAcc)
			}
		}
	}
	b.bconst(RowScalarConsts, ConstInvRho, ExColConstA)
	for i := 0; i < 3; i++ {
		b.mul(ExColContrib+i, ExColContrib+i, ExColConstA)
	}
	return b.ins
}

// Flux column conventions for the elastic element (per face):
//
//	Bd: nbr0 = neighbor v[a]; nbr1 = neighbor sigma_aa (Riemann only)
//	Bs: nbr0/nbr1 = neighbor v[j], j != a; D+1/D+2 = neighbor sigma_aj (R)
//	Bv: D+1..D+3 = neighbor sigma_ia; D+4..D+6 = neighbor v_i (R)
//
// Per-role flux constants (RowFluxConsts words 4f+k; each role's blocks
// hold their own values):
//
//	Bd: ca = s*lift*(lambda+2mu)/2, cb = s*lift*lambda/2,
//	    ca2 = lift*(lambda+2mu)/(2Zp), cb2 = lift*lambda/(2Zp)
//	Bs: cs = s*lift*mu/2, cs2 = lift*mu/(2Zs)
//	Bv: cv = s*lift/(2rho), cv2p = lift*Zp/(2rho), cv2s = lift*Zs/(2rho)

// FluxElasticDiag compiles Bd's flux work for one face.
func (c *Compiler) FluxElasticDiag(f mesh.Face) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	a := f.Axis()
	maskWord := 0
	if f.Sign() > 0 {
		maskWord = 1
	}
	b.pattern(RowMaskBase, a, maskWord, ExColD)
	b.sub(ExColTmp1, ExColNbr0, ExColRemote+int(a)) // dv_a
	riemann := c.Flux == dg.RiemannFlux
	if riemann {
		b.sub(ExColTmp2, ExColNbr1, ExColVar0+int(a)) // dsigma_aa
	}
	// sigma_aa: ca*dv_a [+ ca2*dsigma_aa].
	b.bconst(RowFluxConsts, 4*int(f)+0, ExColConstA)
	b.mul(ExColAcc, ExColTmp1, ExColConstA)
	if riemann {
		b.bconst(RowFluxConsts, 4*int(f)+2, ExColConstB)
		b.mul(ExColAccDiv, ExColTmp2, ExColConstB)
		b.add(ExColAcc, ExColAcc, ExColAccDiv)
	}
	b.mul(ExColAcc, ExColAcc, ExColD)
	b.add(ExColContrib+int(a), ExColContrib+int(a), ExColAcc)
	// sigma_jj, j != a: cb*dv_a [+ cb2*dsigma_aa].
	b.bconst(RowFluxConsts, 4*int(f)+1, ExColConstA)
	b.mul(ExColAcc, ExColTmp1, ExColConstA)
	if riemann {
		b.bconst(RowFluxConsts, 4*int(f)+3, ExColConstB)
		b.mul(ExColAccDiv, ExColTmp2, ExColConstB)
		b.add(ExColAcc, ExColAcc, ExColAccDiv)
	}
	b.mul(ExColAcc, ExColAcc, ExColD)
	for _, j := range otherAxes(a) {
		b.add(ExColContrib+j, ExColContrib+j, ExColAcc)
	}
	return b.ins
}

// FluxElasticShear compiles Bs's flux work for one face.
func (c *Compiler) FluxElasticShear(f mesh.Face) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	a := f.Axis()
	maskWord := 0
	if f.Sign() > 0 {
		maskWord = 1
	}
	b.pattern(RowMaskBase, a, maskWord, ExColD)
	riemann := c.Flux == dg.RiemannFlux
	b.bconst(RowFluxConsts, 4*int(f)+0, ExColConstA)
	if riemann {
		b.bconst(RowFluxConsts, 4*int(f)+1, ExColConstB)
	}
	for idx, j := range otherAxes(a) {
		sv := shearVar(int(a), j)
		b.sub(ExColTmp1, ExColNbr0+idx, ExColRemote+j) // dv_j
		b.mul(ExColAcc, ExColTmp1, ExColConstA)
		if riemann {
			b.sub(ExColTmp2, ExColD+1+idx, ExColVar0+sv) // dsigma_aj
			b.mul(ExColAccDiv, ExColTmp2, ExColConstB)
			b.add(ExColAcc, ExColAcc, ExColAccDiv)
		}
		b.mul(ExColAcc, ExColAcc, ExColD)
		b.add(ExColContrib+sv, ExColContrib+sv, ExColAcc)
	}
	return b.ins
}

// FluxElasticVel compiles Bv's flux work for one face.
func (c *Compiler) FluxElasticVel(f mesh.Face) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	a := f.Axis()
	maskWord := 0
	if f.Sign() > 0 {
		maskWord = 1
	}
	b.pattern(RowMaskBase, a, maskWord, ExColD)
	riemann := c.Flux == dg.RiemannFlux
	b.bconst(RowFluxConsts, 4*int(f)+0, ExColConstA) // cv
	if riemann {
		b.bconst(RowFluxConsts, 4*int(f)+1, ExColConstB) // cv2p
		b.bconst(RowFluxConsts, 4*int(f)+2, ExColConstC) // cv2s
	}
	for i := 0; i < 3; i++ {
		b.sub(ExColTmp1, ExColD+1+i, bvSigmaCol(i, a)) // dsigma_ia
		b.mul(ExColAcc, ExColTmp1, ExColConstA)
		if riemann {
			b.sub(ExColTmp2, ExColD+4+i, ExColVar0+i) // dv_i
			pen := ExColConstC
			if i == int(a) {
				pen = ExColConstB
			}
			b.mul(ExColAccDiv, ExColTmp2, pen)
			b.add(ExColAcc, ExColAcc, ExColAccDiv)
		}
		b.mul(ExColAcc, ExColAcc, ExColD)
		b.add(ExColContrib+i, ExColContrib+i, ExColAcc)
	}
	return b.ins
}

// IntegrationElastic compiles one LSRK stage for a three-variable block.
func (c *Compiler) IntegrationElastic(stage int) []isa.Instr {
	return c.integration(stage, 3, ExColVar0, ExColAux, ExColContrib,
		ExColTmp1, ExColConstA, ExColConstB)
}

// LoadElasticConstants writes the storage rows of one elastic block
// according to its role.
func (c *Compiler) LoadElasticConstants(b BlockWriter, m *mesh.Mesh, mat material.Elastic, dt float64, role BlockRole) {
	op := dg.NewOperator(m)
	for i := 0; i < c.Np; i++ {
		for j := 0; j < c.Np; j++ {
			b.SetFloat(RowDshapeBase+i, j, float32(m.Rule.D[i][j]*m.JacobianScale()))
		}
		b.SetFloat(RowMaskBase+i, 0, boolToF(i == 0))
		b.SetFloat(RowMaskBase+i, 1, boolToF(i == c.Np-1))
	}
	la, mu, rho := mat.Lambda, mat.Mu, mat.Rho
	lift := op.Lift()
	b.SetFloat(RowScalarConsts, ConstLambda, float32(la))
	b.SetFloat(RowScalarConsts, ConstTwoMu, float32(2*mu))
	b.SetFloat(RowScalarConsts, ConstMu, float32(mu))
	b.SetFloat(RowScalarConsts, ConstInvRho, float32(1/rho))
	b.SetFloat(RowScalarConsts, ConstLift, float32(lift))
	b.SetFloat(RowScalarConsts, ConstZero, 0)
	b.SetFloat(RowScalarConsts, ConstOne, 1)
	zp, zs := mat.PImpedance(), mat.SImpedance()
	riemann := c.Flux == dg.RiemannFlux
	for f := mesh.Face(0); f < mesh.NumFaces; f++ {
		s := float64(f.Sign())
		var k [4]float64
		switch role {
		case RoleStressDiag:
			k[0] = s * lift * (la + 2*mu) / 2
			k[1] = s * lift * la / 2
			if riemann {
				k[2] = lift * (la + 2*mu) / (2 * zp)
				k[3] = lift * la / (2 * zp)
			}
		case RoleStressShear:
			k[0] = s * lift * mu / 2
			if riemann {
				k[1] = lift * mu / (2 * zs)
			}
		case RoleVelocity:
			k[0] = s * lift / (2 * rho)
			if riemann {
				k[1] = lift * zp / (2 * rho)
				k[2] = lift * zs / (2 * rho)
			}
		}
		for i, v := range k {
			b.SetFloat(RowFluxConsts, 4*int(f)+i, float32(v))
		}
	}
	for s := 0; s < dg.NumStages; s++ {
		b.SetFloat(RowRK, s, float32(dg.LSRK5A[s]))
		b.SetFloat(RowRK, 5+s, float32(dg.LSRK5B[s]))
	}
	b.SetFloat(RowRK, 10, float32(dt))
}

// ---------------------------------------------------------------------------
// Elastic functional system
// ---------------------------------------------------------------------------

// FunctionalElastic executes the four-block elastic mapping functionally.
type FunctionalElastic struct {
	Mesh   *mesh.Mesh
	Mat    material.Elastic
	Comp   *Compiler
	Place  *Placement
	Engine *sim.Engine
	Dt     float64

	// plan holds the cached compilation artifacts (programs, dup/fetch
	// schedules, program->block maps). CacheHit reports whether this
	// system skipped compilation entirely.
	plan     *elasticPlan
	CacheHit bool
}

// NewFunctionalElastic builds the elastic functional system. It is a thin
// veneer over NewSession — new code should use the Session API directly.
func NewFunctionalElastic(m *mesh.Mesh, mat material.Elastic, flux dg.FluxType, dt float64) (*FunctionalElastic, error) {
	eq := opcount.ElasticRiemann
	if flux == dg.CentralFlux {
		eq = opcount.ElasticCentral
	}
	s, err := NewSession(
		WithEquation(eq),
		WithMesh(m),
		WithElasticMaterial(mat),
		WithFlux(flux),
		WithDt(dt),
	)
	if err != nil {
		return nil, err
	}
	return s.Elastic(), nil
}

// newFunctionalElasticOn is NewFunctionalElastic on a caller-chosen chip
// configuration (the Session's WithChip path).
func newFunctionalElasticOn(cfg chip.Config, m *mesh.Mesh, mat material.Elastic, flux dg.FluxType, dt float64) (*FunctionalElastic, error) {
	if !m.Periodic {
		return nil, fmt.Errorf("wavepim: functional runs require a periodic mesh")
	}
	if m.NumElem*4 > cfg.NumBlocks() {
		return nil, fmt.Errorf("wavepim: %d elements need %d blocks, chip %s has %d", m.NumElem, m.NumElem*4, cfg.Name, cfg.NumBlocks())
	}
	ch, err := newChip(cfg)
	if err != nil {
		return nil, err
	}
	plan := Plan{Tech: ExpandRows, Layout: ElasticFourBlock, SlotsPerElem: 4, Chip: cfg}
	f := &FunctionalElastic{
		Mesh: m, Mat: mat,
		Comp:   NewCompiler(plan, m.Np, flux),
		Place:  NewPlacement(ElasticFourBlock, m.EPerAxis, true),
		Engine: newFunctionalEngine(ch),
		Dt:     dt,
	}
	eq := opcount.ElasticCentral
	if flux == dg.RiemannFlux {
		eq = opcount.ElasticRiemann
	}
	key := PlanKey{Eq: eq, Flux: flux, Np: m.Np, EPerAxis: m.EPerAxis, Chip: cfg.Name, Topo: cfg.Interconnect.String()}
	f.plan, f.CacheHit = elasticPlanFor(key, f.Comp, m, f.Place)
	return f, nil
}

func (f *FunctionalElastic) roleBlock(e int, role BlockRole) int {
	ex, ey, ez := f.Mesh.ElemCoords(e)
	return f.Place.BlockFor(ex, ey, ez, role)
}

// varSlices maps a role to the reference-state slices its three variable
// columns hold, in column order.
func elasticVarSlices(q *dg.ElasticState, role BlockRole) [3][]float64 {
	switch role {
	case RoleStressDiag:
		return [3][]float64{q.S[dg.SXX], q.S[dg.SYY], q.S[dg.SZZ]}
	case RoleStressShear:
		return [3][]float64{q.S[dg.SXY], q.S[dg.SXZ], q.S[dg.SYZ]}
	case RoleVelocity:
		return [3][]float64{q.V[0], q.V[1], q.V[2]}
	}
	panic("wavepim: role has no variables")
}

var elasticComputeRoles = []BlockRole{RoleStressDiag, RoleStressShear, RoleVelocity}

// Load writes constants and the initial state with the same material
// everywhere.
func (f *FunctionalElastic) Load(q *dg.ElasticState) {
	f.LoadField(q, material.UniformElastic(f.Mesh.NumElem, f.Mat))
}

// LoadField writes constants and state with per-element materials (layered
// solids cost nothing extra: each element's blocks hold their own
// material-derived constants).
func (f *FunctionalElastic) LoadField(q *dg.ElasticState, field *material.ElasticField) {
	nn := f.Mesh.NodesPerEl
	for e := 0; e < f.Mesh.NumElem; e++ {
		for _, role := range elasticComputeRoles {
			b := f.Engine.Chip.Block(f.roleBlock(e, role))
			f.Comp.LoadElasticConstants(b, f.Mesh, field.ByElem[e], f.Dt, role)
			src := elasticVarSlices(q, role)
			for v := 0; v < 3; v++ {
				for n := 0; n < nn; n++ {
					b.SetFloat(n, ExColVar0+v, float32(src[v][e*nn+n]))
					b.SetFloat(n, ExColAux+v, 0)
				}
			}
		}
	}
}

// Step runs one five-stage time-step. Every program and transfer
// schedule comes precompiled from the plan cache — before the cache this
// loop recompiled the three flux programs per element per face per stage
// and rebuilt the dup/fetch schedules per stage, the dominant host-side
// cost of a functional elastic run.
func (f *FunctionalElastic) Step() {
	eng := f.Engine
	for s := 0; s < dg.NumStages; s++ {
		// 1. Cross-block variable duplication (Figure 8's inter-block
		// memcpy, heavier for elastic).
		eng.Sequence(eng.ExecTransfers("dup-vars", f.plan.dup))

		// 2. Volume on all three compute blocks concurrently.
		eng.Sequence(eng.ExecBlocks("volume", f.plan.volProgs))

		// 3. Flux, face by face.
		for face := mesh.Face(0); face < mesh.NumFaces; face++ {
			eng.Sequence(eng.ExecTransfers(fmt.Sprintf("flux-fetch-%v", face), f.plan.fetch[face]))
			eng.Sequence(eng.ExecBlocks(fmt.Sprintf("flux-%v", face), f.plan.fluxProgs[face]))
		}

		// 4. Integration on all blocks.
		eng.Sequence(eng.ExecBlocks("integration", f.plan.integProgs[s]))
	}
}

// Run executes n time-steps.
func (f *FunctionalElastic) Run(n int) {
	for i := 0; i < n; i++ {
		f.Step()
	}
}

// ReadState extracts the variables.
func (f *FunctionalElastic) ReadState(q *dg.ElasticState) {
	nn := f.Mesh.NodesPerEl
	for e := 0; e < f.Mesh.NumElem; e++ {
		for _, role := range elasticComputeRoles {
			b := f.Engine.Chip.Block(f.roleBlock(e, role))
			dst := elasticVarSlices(q, role)
			for v := 0; v < 3; v++ {
				for n := 0; n < nn; n++ {
					dst[v][e*nn+n] = float64(b.GetFloat(n, ExColVar0+v))
				}
			}
		}
	}
}

// WriteState rewrites only the solver variables (and zeroes the RK
// auxiliaries), leaving constants untouched — the restore half of a
// checkpoint rollback (exact at step boundaries since LSRK5A[0] = 0).
func (f *FunctionalElastic) WriteState(q *dg.ElasticState) {
	nn := f.Mesh.NodesPerEl
	for e := 0; e < f.Mesh.NumElem; e++ {
		for _, role := range elasticComputeRoles {
			b := f.Engine.Chip.Block(f.roleBlock(e, role))
			src := elasticVarSlices(q, role)
			for v := 0; v < 3; v++ {
				for n := 0; n < nn; n++ {
					b.SetFloat(n, ExColVar0+v, float32(src[v][e*nn+n]))
					b.SetFloat(n, ExColAux+v, 0)
				}
			}
		}
	}
}
