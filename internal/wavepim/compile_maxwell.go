package wavepim

import (
	"fmt"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/sim"
)

// The Maxwell extension's PIM mapping — the paper's Section 2.1 claim
// realized: "successful strategies ... can also be applied to the ...
// electromagnetic waves". Six variables split across a four-slot element
// exactly like the elastic E_r layout:
//
//	E-block (slot 0): Ex, Ey, Ez (var0..2); remote0..2 = H copies
//	H-block (slot 1): Hx, Hy, Hz;           remote0..2 = E copies
//	slot 2: neighbor buffer, slot 3: spare
//
// Volume is six curl dot products per block (the Bs shear structure with
// Levi-Civita signs); Flux decomposes into two acoustic-analogue
// tangential channels per face, reusing the acoustic coefficient pattern
// with kappa -> 1/eps, rho -> mu, Z -> eta.

// curlWork[d] lists, for derivative axis d, the (source component,
// destination component, sign) triples of a curl: d/dx_d src contributes
// sign * to (curl F)_dst.
var curlWork = [3][2][3]int{
	// axis x: dFz/dx -> -(curl)_y ; dFy/dx -> +(curl)_z
	{{2, 1, -1}, {1, 2, +1}},
	// axis y: dFz/dy -> +(curl)_x ; dFx/dy -> -(curl)_z
	{{2, 0, +1}, {0, 2, -1}},
	// axis z: dFy/dz -> -(curl)_x ; dFx/dz -> +(curl)_y
	{{1, 0, -1}, {0, 1, +1}},
}

// VolumeMaxwell compiles one block's Volume: the curl of the *other*
// field (resident in remote0..2) scaled by +1/eps (E-block) or -1/mu
// (H-block).
func (c *Compiler) VolumeMaxwell(eBlock bool) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	posConst, negConst := ConstInvEps, ConstNegInvEps
	if !eBlock {
		// dH/dt = -(1/mu) curl E: the signs flip wholesale.
		posConst, negConst = ConstNegInvMu, ConstInvMu
	}
	b.bconst(RowScalarConsts, posConst, ExColConstA)
	b.bconst(RowScalarConsts, negConst, ExColConstB)
	written := [3]bool{}
	for d := mesh.AxisX; d <= mesh.AxisZ; d++ {
		b.distributeD(ExColD, d)
		for _, w := range curlWork[d] {
			src, dst, sign := w[0], w[1], w[2]
			b.dot(ExColRemote+src, ExColAcc, ExColTmp1, ExColTmp2, ExColD, d)
			cc := ExColConstA
			if sign < 0 {
				cc = ExColConstB
			}
			if !written[dst] {
				b.mul(ExColContrib+dst, ExColAcc, cc)
				written[dst] = true
			} else {
				b.mul(ExColTmp1, ExColAcc, cc)
				b.add(ExColContrib+dst, ExColContrib+dst, ExColTmp1)
			}
		}
	}
	return b.ins
}

// Per-face flux constants (RowFluxConsts words 4f+k), per role:
//
//	E-block: c1 = s*lift/(2 eps), c2 = -lift/(2 eps eta)   [c2: Riemann]
//	H-block: c3 = s*lift/(2 mu),  c4 = -lift*eta/(2 mu)    [c4: Riemann]
//
// Channel 1 couples (E_b, H_c) with +; channel 2 couples (E_c, H_b) with
// the Levi-Civita flip, realized by subtracting instead of adding the
// flipped term.

// FluxMaxwell compiles one block's flux work for one face. Neighbor data
// columns: nbr0/nbr1 = neighbor E_b/E_c, D+1/D+2 = neighbor H_b/H_c (both
// blocks use the same fetch layout; each uses what it needs).
func (c *Compiler) FluxMaxwell(f mesh.Face, eBlock bool) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	a := int(f.Axis())
	bb, cc := (a+1)%3, (a+2)%3
	maskWord := 0
	if f.Sign() > 0 {
		maskWord = 1
	}
	b.pattern(RowMaskBase, f.Axis(), maskWord, ExColD)
	riemann := c.Flux == dg.RiemannFlux
	b.bconst(RowFluxConsts, 4*int(f)+0, ExColConstA)
	if riemann {
		b.bconst(RowFluxConsts, 4*int(f)+1, ExColConstB)
	}
	// Jumps: own values minus neighbor values. Own E lives locally on the
	// E-block and in remote0..2 on the H-block (and vice versa).
	ownE, ownH := ExColVar0, ExColRemote
	if !eBlock {
		ownE, ownH = ExColRemote, ExColVar0
	}
	dEb, dEc := ExColTmp1, ExColTmp2
	b.sub(dEb, ownE+bb, ExColNbr0)
	b.sub(dEc, ownE+cc, ExColNbr1)
	dHb, dHc := ExColAccDiv, ExColAcc // scratch reuse; consumed before overwrite
	b.sub(dHb, ownH+bb, ExColD+1)
	b.sub(dHc, ownH+cc, ExColD+2)

	acc := ExColD + 3 // free D slot as flux accumulator
	if eBlock {
		// E_b += mask*(c1*dHc [+ c2*dEb])
		b.mul(acc, dHc, ExColConstA)
		if riemann {
			b.mul(ExColD+4, dEb, ExColConstB)
			b.add(acc, acc, ExColD+4)
		}
		b.mul(acc, acc, ExColD)
		b.add(ExColContrib+bb, ExColContrib+bb, acc)
		// E_c += mask*(-c1*dHb [+ c2*dEc]) : subtract the flipped term.
		b.mul(acc, dHb, ExColConstA)
		if riemann {
			b.mul(ExColD+4, dEc, ExColConstB)
			b.sub(acc, acc, ExColD+4) // c1*dHb - c2*dEc; subtracted below
		}
		b.mul(acc, acc, ExColD)
		b.sub(ExColContrib+cc, ExColContrib+cc, acc)
	} else {
		// H_c += mask*(c3*dEb [+ c4*dHc])
		b.mul(acc, dEb, ExColConstA)
		if riemann {
			b.mul(ExColD+4, dHc, ExColConstB)
			b.add(acc, acc, ExColD+4)
		}
		b.mul(acc, acc, ExColD)
		b.add(ExColContrib+cc, ExColContrib+cc, acc)
		// H_b += mask*(-c3*dEc [+ c4*dHb])
		b.mul(acc, dEc, ExColConstA)
		if riemann {
			b.mul(ExColD+4, dHb, ExColConstB)
			b.sub(acc, acc, ExColD+4)
		}
		b.mul(acc, acc, ExColD)
		b.sub(ExColContrib+bb, ExColContrib+bb, acc)
	}
	return b.ins
}

// LoadMaxwellConstants writes one block's storage rows.
func (c *Compiler) LoadMaxwellConstants(b BlockWriter, m *mesh.Mesh, mat material.Dielectric, dt float64, eBlock bool) {
	op := dg.NewOperator(m)
	for i := 0; i < c.Np; i++ {
		for j := 0; j < c.Np; j++ {
			b.SetFloat(RowDshapeBase+i, j, float32(m.Rule.D[i][j]*m.JacobianScale()))
		}
		b.SetFloat(RowMaskBase+i, 0, boolToF(i == 0))
		b.SetFloat(RowMaskBase+i, 1, boolToF(i == c.Np-1))
	}
	lift := op.Lift()
	eta := mat.Impedance()
	b.SetFloat(RowScalarConsts, ConstInvEps, float32(1/mat.Eps))
	b.SetFloat(RowScalarConsts, ConstNegInvEps, float32(-1/mat.Eps))
	b.SetFloat(RowScalarConsts, ConstInvMu, float32(1/mat.Mu))
	b.SetFloat(RowScalarConsts, ConstNegInvMu, float32(-1/mat.Mu))
	b.SetFloat(RowScalarConsts, ConstZero, 0)
	b.SetFloat(RowScalarConsts, ConstOne, 1)
	riemann := c.Flux == dg.RiemannFlux
	for f := mesh.Face(0); f < mesh.NumFaces; f++ {
		s := float64(f.Sign())
		var k [4]float64
		if eBlock {
			k[0] = s * lift / (2 * mat.Eps)
			if riemann {
				k[1] = -lift / (2 * mat.Eps * eta)
			}
		} else {
			k[0] = s * lift / (2 * mat.Mu)
			if riemann {
				k[1] = -lift * eta / (2 * mat.Mu)
			}
		}
		for i, v := range k {
			b.SetFloat(RowFluxConsts, 4*int(f)+i, float32(v))
		}
	}
	for s := 0; s < dg.NumStages; s++ {
		b.SetFloat(RowRK, s, float32(dg.LSRK5A[s]))
		b.SetFloat(RowRK, 5+s, float32(dg.LSRK5B[s]))
	}
	b.SetFloat(RowRK, 10, float32(dt))
}

// FunctionalMaxwell executes the Maxwell mapping functionally.
type FunctionalMaxwell struct {
	Mesh   *mesh.Mesh
	Mat    material.Dielectric
	Comp   *Compiler
	Place  *Placement
	Engine *sim.Engine
	Dt     float64

	// plan holds the cached compilation artifacts (programs, dup/fetch
	// schedules, program->block maps). CacheHit reports whether this
	// system skipped compilation entirely.
	plan     *maxwellPlan
	CacheHit bool
}

// NewFunctionalMaxwell builds the system (four-slot elements, two compute
// blocks each). It is a thin veneer over NewSession — new code should use
// the Session API directly.
func NewFunctionalMaxwell(m *mesh.Mesh, mat material.Dielectric, flux dg.FluxType, dt float64) (*FunctionalMaxwell, error) {
	s, err := NewSession(
		WithEquation(opcount.Maxwell),
		WithMesh(m),
		WithDielectric(mat),
		WithFlux(flux),
		WithDt(dt),
	)
	if err != nil {
		return nil, err
	}
	return s.Maxwell(), nil
}

// newFunctionalMaxwellOn is NewFunctionalMaxwell on a caller-chosen chip
// configuration (the Session's WithChip path).
func newFunctionalMaxwellOn(cfg chip.Config, m *mesh.Mesh, mat material.Dielectric, flux dg.FluxType, dt float64) (*FunctionalMaxwell, error) {
	if !m.Periodic {
		return nil, fmt.Errorf("wavepim: functional runs require a periodic mesh")
	}
	if m.NumElem*4 > cfg.NumBlocks() {
		return nil, fmt.Errorf("wavepim: %d elements need %d blocks, chip %s has %d", m.NumElem, m.NumElem*4, cfg.Name, cfg.NumBlocks())
	}
	ch, err := newChip(cfg)
	if err != nil {
		return nil, err
	}
	plan := Plan{Tech: ExpandRows, Layout: ElasticFourBlock, SlotsPerElem: 4, Chip: cfg}
	f := &FunctionalMaxwell{
		Mesh: m, Mat: mat,
		Comp:   NewCompiler(plan, m.Np, flux),
		Place:  NewPlacement(ElasticFourBlock, m.EPerAxis, true),
		Engine: newFunctionalEngine(ch),
		Dt:     dt,
	}
	key := PlanKey{Eq: opcount.Maxwell, Flux: flux, Np: m.Np, EPerAxis: m.EPerAxis, Chip: cfg.Name, Topo: cfg.Interconnect.String()}
	f.plan, f.CacheHit = maxwellPlanFor(key, f.Comp, m, f.Place)
	return f, nil
}

func (f *FunctionalMaxwell) blockOf(e int, eBlock bool) int {
	ex, ey, ez := f.Mesh.ElemCoords(e)
	base := f.Place.ElemSlot(ex, ey, ez)
	if eBlock {
		return base
	}
	return base + 1
}

// Load writes constants and the initial state.
func (f *FunctionalMaxwell) Load(q *dg.MaxwellState) {
	nn := f.Mesh.NodesPerEl
	for e := 0; e < f.Mesh.NumElem; e++ {
		for _, eBlock := range []bool{true, false} {
			blk := f.Engine.Chip.Block(f.blockOf(e, eBlock))
			f.Comp.LoadMaxwellConstants(blk, f.Mesh, f.Mat, f.Dt, eBlock)
			src := q.E
			if !eBlock {
				src = q.H
			}
			for v := 0; v < 3; v++ {
				for n := 0; n < nn; n++ {
					blk.SetFloat(n, ExColVar0+v, float32(src[v][e*nn+n]))
					blk.SetFloat(n, ExColAux+v, 0)
				}
			}
		}
	}
}

// Step runs one five-stage time-step. Every program and transfer
// schedule comes precompiled from the plan cache — before the cache this
// loop recompiled the flux programs per element per face per stage and
// rebuilt the dup/fetch schedules per stage.
func (f *FunctionalMaxwell) Step() {
	eng := f.Engine
	for s := 0; s < dg.NumStages; s++ {
		// Cross-block field duplication.
		eng.Sequence(eng.ExecTransfers("dup-fields", f.plan.dup))

		eng.Sequence(eng.ExecBlocks("volume", f.plan.volProgs))

		for face := mesh.Face(0); face < mesh.NumFaces; face++ {
			eng.Sequence(eng.ExecTransfers(fmt.Sprintf("flux-fetch-%v", face), f.plan.fetch[face]))
			eng.Sequence(eng.ExecBlocks(fmt.Sprintf("flux-%v", face), f.plan.fluxProgs[face]))
		}

		eng.Sequence(eng.ExecBlocks("integration", f.plan.integProgs[s]))
	}
}

// Run executes n steps.
func (f *FunctionalMaxwell) Run(n int) {
	for i := 0; i < n; i++ {
		f.Step()
	}
}

// ReadState extracts the fields.
func (f *FunctionalMaxwell) ReadState(q *dg.MaxwellState) {
	nn := f.Mesh.NodesPerEl
	for e := 0; e < f.Mesh.NumElem; e++ {
		for _, eBlock := range []bool{true, false} {
			blk := f.Engine.Chip.Block(f.blockOf(e, eBlock))
			dst := q.E
			if !eBlock {
				dst = q.H
			}
			for v := 0; v < 3; v++ {
				for n := 0; n < nn; n++ {
					dst[v][e*nn+n] = float64(blk.GetFloat(n, ExColVar0+v))
				}
			}
		}
	}
}

// WriteState rewrites only the solver variables (and zeroes the RK
// auxiliaries), leaving constants untouched — the restore half of a
// checkpoint rollback (exact at step boundaries since LSRK5A[0] = 0).
func (f *FunctionalMaxwell) WriteState(q *dg.MaxwellState) {
	nn := f.Mesh.NodesPerEl
	for e := 0; e < f.Mesh.NumElem; e++ {
		for _, eBlock := range []bool{true, false} {
			blk := f.Engine.Chip.Block(f.blockOf(e, eBlock))
			src := q.E
			if !eBlock {
				src = q.H
			}
			for v := 0; v < 3; v++ {
				for n := 0; n < nn; n++ {
					blk.SetFloat(n, ExColVar0+v, float32(src[v][e*nn+n]))
					blk.SetFloat(n, ExColAux+v, 0)
				}
			}
		}
	}
}
