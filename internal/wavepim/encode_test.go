package wavepim

import (
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/isa"
)

// assertRoundTrip checks one instruction survives encode/decode.
func assertRoundTrip(t *testing.T, in isa.Instr) {
	t.Helper()
	w, err := isa.Encode(in)
	if err != nil {
		t.Fatalf("encode %+v: %v", in, err)
	}
	back, err := isa.Decode(w)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back != in {
		t.Fatalf("round trip failed:\n in %+v\nout %+v", in, back)
	}
}

// Every instruction the compiler emits must survive the 64-bit ISA
// encoding round trip — the property that makes the system "ISA-based":
// the host really could stream these programs as instruction words.
func TestAllCompiledProgramsAreEncodable(t *testing.T) {
	plan := Plan{Tech: ExpandParallel, Layout: AcousticFourBlock, SlotsPerElem: 4}
	for _, flux := range []dg.FluxType{dg.CentralFlux, dg.RiemannFlux} {
		for _, np := range []int{4, 8} {
			c := NewCompiler(plan, np, flux)
			var programs [][]isa.Instr
			programs = append(programs,
				c.VolumeOneBlock(),
				c.VolumePBlock(),
				c.FluxPBlockGather(),
				c.VolumeElasticDiag(),
				c.VolumeElasticShear(),
				c.VolumeElasticVel(),
				c.Volume12Vel(),
				c.Volume12Diag(mesh.AxisY),
				c.Volume12Shear(0, 2),
			)
			for a := mesh.AxisX; a <= mesh.AxisZ; a++ {
				programs = append(programs, c.VolumeVBlock(a))
			}
			for f := mesh.Face(0); f < mesh.NumFaces; f++ {
				programs = append(programs,
					c.FluxOneBlock(f),
					c.FluxVBlock(f, f%2 == 0),
					c.FluxElasticDiag(f),
					c.FluxElasticShear(f),
					c.FluxElasticVel(f),
					c.Flux12Var(f),
				)
			}
			for s := 0; s < dg.NumStages; s++ {
				programs = append(programs,
					c.IntegrationOneBlock(s),
					c.IntegrationExpanded(s),
					c.IntegrationElastic(s),
				)
			}
			for pi, prog := range programs {
				for ii, in := range prog {
					w, err := isa.Encode(in)
					if err != nil {
						t.Fatalf("np=%d flux=%v: program %d instr %d (%+v): %v", np, flux, pi, ii, in, err)
					}
					back, err := isa.Decode(w)
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					if back != in {
						t.Fatalf("np=%d flux=%v: program %d instr %d does not round-trip:\n in %+v\nout %+v",
							np, flux, pi, ii, in, back)
					}
				}
			}
		}
	}
}

// Program-size sanity across layouts: Riemann > central for every flux
// program; twelve-block volume critical path < four-block critical path.
func TestProgramSizeRelations(t *testing.T) {
	plan := Plan{Tech: ExpandRows, Layout: ElasticFourBlock, SlotsPerElem: 4}
	cc := NewCompiler(plan, 8, dg.CentralFlux)
	cr := NewCompiler(plan, 8, dg.RiemannFlux)
	if len(cr.FluxOneBlock(mesh.FaceYMinus)) <= len(cc.FluxOneBlock(mesh.FaceYMinus)) {
		t.Error("Riemann one-block flux should exceed central")
	}
	fourBlockCritical := len(cc.VolumeElasticVel()) // 9 dots
	twelveCritical := len(cc.Elastic12CriticalVolume())
	if twelveCritical >= fourBlockCritical {
		t.Errorf("twelve-block volume critical path (%d) should beat four-block (%d)",
			twelveCritical, fourBlockCritical)
	}
}
