package wavepim

import (
	"math"
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

var emMat = material.Dielectric{Eps: 2.25, Mu: 1.0}

func maxwellStates(m *mesh.Mesh) (*dg.MaxwellState, *dg.MaxwellState) {
	q := dg.NewMaxwellState(m)
	dg.PlaneWaveEM(m, emMat, 1, q)
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, y, z := m.NodePosition(e, n)
			i := e*nn + n
			// Excite all six components and all derivative directions.
			q.E[0][i] = 0.2 * math.Sin(2*math.Pi*(y+z))
			q.E[2][i] = 0.3 * math.Cos(2*math.Pi*y)
			q.H[0][i] = -0.1 * math.Sin(2*math.Pi*z)
			q.H[1][i] = 0.15 * math.Cos(2*math.Pi*(x+z))
		}
	}
	return q, q.Copy()
}

// The Maxwell PIM mapping must track the reference solver over full
// time-steps for both flux solvers — the paper's electromagnetic claim,
// executed in crossbar cells.
func TestFunctionalMaxwellMatchesReference(t *testing.T) {
	for _, flux := range []dg.FluxType{dg.CentralFlux, dg.RiemannFlux} {
		m := mesh.New(1, 4, true)
		q, qPim := maxwellStates(m)

		ref := dg.NewMaxwellSolver(m, emMat, flux)
		it := dg.NewMaxwellIntegrator(ref)
		dt := ref.MaxStableDt(0.3)

		fm, err := NewFunctionalMaxwell(m, emMat, flux, dt)
		if err != nil {
			t.Fatal(err)
		}
		fm.Load(qPim)

		const steps = 2
		it.Run(q, dt, steps)
		fm.Run(steps)
		got := dg.NewMaxwellState(m)
		fm.ReadState(got)

		for d := 0; d < 3; d++ {
			if e := maxRelErr(got.E[d], q.E[d]); e > 5e-3 {
				t.Errorf("flux=%v: E[%d] rel err %g", flux, d, e)
			}
			if e := maxRelErr(got.H[d], q.H[d]); e > 5e-3 {
				t.Errorf("flux=%v: H[%d] rel err %g", flux, d, e)
			}
		}
	}
}

// The Maxwell volume program has six curl dot products — between the
// acoustic one-block program (six dots too, but four variables) and the
// elastic velocity block (nine dots).
func TestMaxwellProgramShape(t *testing.T) {
	plan := Plan{Tech: ExpandRows, Layout: ElasticFourBlock, SlotsPerElem: 4}
	c := NewCompiler(plan, 8, dg.RiemannFlux)
	vol := len(c.VolumeMaxwell(true))
	if volH := len(c.VolumeMaxwell(false)); volH != vol {
		t.Errorf("E and H volume programs should have equal length: %d vs %d", vol, volH)
	}
	if bv := len(c.VolumeElasticVel()); vol >= bv {
		t.Errorf("Maxwell volume (%d) should be shorter than elastic Bv (%d)", vol, bv)
	}
	cc := NewCompiler(plan, 8, dg.CentralFlux)
	for _, f := range []mesh.Face{mesh.FaceXMinus, mesh.FaceYPlus, mesh.FaceZPlus} {
		if len(c.FluxMaxwell(f, true)) <= len(cc.FluxMaxwell(f, true)) {
			t.Errorf("face %v: Riemann Maxwell flux should exceed central", f)
		}
	}
}

// Every Maxwell program instruction must round-trip the 64-bit ISA.
func TestMaxwellProgramsEncodable(t *testing.T) {
	plan := Plan{Tech: ExpandRows, Layout: ElasticFourBlock, SlotsPerElem: 4}
	for _, flux := range []dg.FluxType{dg.CentralFlux, dg.RiemannFlux} {
		c := NewCompiler(plan, 8, flux)
		for _, eBlock := range []bool{true, false} {
			for _, in := range c.VolumeMaxwell(eBlock) {
				assertRoundTrip(t, in)
			}
			for f := mesh.Face(0); f < mesh.NumFaces; f++ {
				for _, in := range c.FluxMaxwell(f, eBlock) {
					assertRoundTrip(t, in)
				}
			}
		}
	}
}
