package wavepim

import (
	"sync"
	"sync/atomic"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/sim"
)

// Compiled-plan cache. Every compilation artifact a functional system
// needs per Step() — block programs, transfer schedules, the program->
// block maps, and the LUT fetch program — is a pure function of
// (equation, flux, element order, mesh extent, chip config). The cache
// builds that artifact set once per process and shares it across
// sessions: repeated Session construction (and every wavepimd job after
// the first) skips block-program compilation and LUT construction
// entirely, and Step() never recompiles. Entries are immutable after
// build — programs and transfer lists are only ever read (concurrent map
// reads from many sessions' engines are safe), so no copying or locking
// happens on the hot path.

// PlanKey identifies one compiled artifact set. All fields are part of
// the content address: two keys with equal fields share one entry.
type PlanKey struct {
	Eq       opcount.Equation
	Flux     dg.FluxType
	Np       int
	EPerAxis int
	Chip     string
	Topo     string // interconnect topology name ("" means the default H-tree)
}

// Digest returns the FNV-1a content address of the key (stable across
// processes; used for cache introspection and logging, not for lookup —
// lookup uses the full key, so digests never collide into wrong entries).
func (k PlanKey) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= prime64
		}
	}
	mix(uint64(k.Eq))
	mix(uint64(k.Flux))
	mix(uint64(k.Np))
	mix(uint64(k.EPerAxis))
	for i := 0; i < len(k.Chip); i++ {
		h ^= uint64(k.Chip[i])
		h *= prime64
	}
	// A separator keeps (Chip, Topo) pairs from aliasing across the
	// string boundary.
	h ^= 0xff
	h *= prime64
	for i := 0; i < len(k.Topo); i++ {
		h ^= uint64(k.Topo[i])
		h *= prime64
	}
	return h
}

// planEntry is one cache slot: the sync.Once makes concurrent first
// lookups build exactly once while latecomers block until the value is
// ready (singleflight).
type planEntry struct {
	once sync.Once
	val  any
}

var planCache = struct {
	mu      sync.Mutex
	entries map[PlanKey]*planEntry
	hits    atomic.Int64
	misses  atomic.Int64
}{entries: map[PlanKey]*planEntry{}}

// cachedPlan returns the artifact set for key, building it at most once
// per process. The second result reports whether this call was served
// from cache (false exactly once per key).
func cachedPlan(key PlanKey, build func() any) (any, bool) {
	planCache.mu.Lock()
	e, ok := planCache.entries[key]
	if !ok {
		e = &planEntry{}
		planCache.entries[key] = e
	}
	planCache.mu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		e.val = build()
	})
	if hit {
		planCache.hits.Add(1)
	} else {
		planCache.misses.Add(1)
	}
	return e.val, hit
}

// PlanCacheStats is a snapshot of the process-wide compiled-plan cache.
type PlanCacheStats struct {
	Hits, Misses, Entries int64
}

// PlanCacheSnapshot returns the current cache counters.
func PlanCacheSnapshot() PlanCacheStats {
	planCache.mu.Lock()
	n := int64(len(planCache.entries))
	planCache.mu.Unlock()
	return PlanCacheStats{
		Hits:    planCache.hits.Load(),
		Misses:  planCache.misses.Load(),
		Entries: n,
	}
}

// resetPlanCache empties the cache and counters (tests and cold-compile
// benchmarks only).
func resetPlanCache() {
	planCache.mu.Lock()
	planCache.entries = map[PlanKey]*planEntry{}
	planCache.mu.Unlock()
	planCache.hits.Store(0)
	planCache.misses.Store(0)
}

// ---------------------------------------------------------------------------
// Acoustic artifact set
// ---------------------------------------------------------------------------

// acousticPlan is the immutable per-key artifact set of the one-block
// acoustic system.
type acousticPlan struct {
	blocks []int // element -> block id
	volume []isa.Instr
	flux   [mesh.NumFaces][]isa.Instr
	fetch  [mesh.NumFaces][]sim.RowTransfer
	integ  [dg.NumStages][]isa.Instr

	volProgs   map[int][]isa.Instr
	fluxProgs  [mesh.NumFaces]map[int][]isa.Instr
	integProgs [dg.NumStages]map[int][]isa.Instr

	lutFetch []isa.Instr // OpLUT constant fetch (LUT block = NumElem)
	lutProgs map[int][]isa.Instr
}

// acousticPlanFor returns (building on first use) the acoustic artifacts.
func acousticPlanFor(key PlanKey, c *Compiler, m *mesh.Mesh, place *Placement) (*acousticPlan, bool) {
	v, hit := cachedPlan(key, func() any {
		p := &acousticPlan{}
		p.blocks = make([]int, m.NumElem)
		for e := range p.blocks {
			ex, ey, ez := m.ElemCoords(e)
			p.blocks[e] = place.BlockFor(ex, ey, ez, RoleAll)
		}
		progsFor := func(prog []isa.Instr) map[int][]isa.Instr {
			out := make(map[int][]isa.Instr, len(p.blocks))
			for _, blk := range p.blocks {
				out[blk] = prog
			}
			return out
		}
		p.volume = c.VolumeOneBlock()
		p.volProgs = progsFor(p.volume)
		for f := mesh.Face(0); f < mesh.NumFaces; f++ {
			p.flux[f] = c.FluxOneBlock(f)
			p.fluxProgs[f] = progsFor(p.flux[f])
			p.fetch[f] = c.FluxTransfersOneBlock(m, place, f, true)
		}
		for s := 0; s < dg.NumStages; s++ {
			p.integ[s] = c.IntegrationOneBlock(s)
			p.integProgs[s] = progsFor(p.integ[s])
		}
		p.lutFetch = lutFetchProgram(m.NumElem)
		p.lutProgs = progsFor(p.lutFetch)
		return p
	})
	return v.(*acousticPlan), hit
}

// ---------------------------------------------------------------------------
// Elastic artifact set
// ---------------------------------------------------------------------------

// elasticPlan is the immutable per-key artifact set of the four-block
// elastic system. Before this cache existed, Step() recompiled the three
// flux programs per element per face per stage and rebuilt every
// transfer schedule per stage — the dominant host-side cost of a
// functional elastic run.
type elasticPlan struct {
	volProgs   map[int][]isa.Instr
	fluxProgs  [mesh.NumFaces]map[int][]isa.Instr
	integProgs [dg.NumStages]map[int][]isa.Instr
	dup        []sim.RowTransfer
	fetch      [mesh.NumFaces][]sim.RowTransfer
}

// elasticPlanFor returns (building on first use) the elastic artifacts.
func elasticPlanFor(key PlanKey, c *Compiler, m *mesh.Mesh, place *Placement) (*elasticPlan, bool) {
	roleBlock := func(e int, role BlockRole) int {
		ex, ey, ez := m.ElemCoords(e)
		return place.BlockFor(ex, ey, ez, role)
	}
	v, hit := cachedPlan(key, func() any {
		p := &elasticPlan{}
		nn := m.NodesPerEl
		riemann := c.Flux == dg.RiemannFlux

		volDiag := c.VolumeElasticDiag()
		volShear := c.VolumeElasticShear()
		volVel := c.VolumeElasticVel()
		p.volProgs = make(map[int][]isa.Instr, 3*m.NumElem)
		for e := 0; e < m.NumElem; e++ {
			bd := roleBlock(e, RoleStressDiag)
			bs := roleBlock(e, RoleStressShear)
			bv := roleBlock(e, RoleVelocity)
			p.volProgs[bd] = volDiag
			p.volProgs[bs] = volShear
			p.volProgs[bv] = volVel
			for v := 0; v < 3; v++ {
				p.dup = append(p.dup, columnTransfer(bv, bd, ExColVar0+v, ExColRemote+v, nn)...)
				p.dup = append(p.dup, columnTransfer(bv, bs, ExColVar0+v, ExColRemote+v, nn)...)
				p.dup = append(p.dup, columnTransfer(bd, bv, ExColVar0+v, ExColRemote+v, nn)...)
				p.dup = append(p.dup, columnTransfer(bs, bv, ExColVar0+v, ExColRemote+3+v, nn)...)
			}
		}

		for face := mesh.Face(0); face < mesh.NumFaces; face++ {
			a := face.Axis()
			myRows := m.FaceNodes(face)
			nbRows := m.FaceNodes(face.Opposite())
			fluxDiag := c.FluxElasticDiag(face)
			fluxShear := c.FluxElasticShear(face)
			fluxVel := c.FluxElasticVel(face)
			p.fluxProgs[face] = make(map[int][]isa.Instr, 3*m.NumElem)
			move := func(srcBlk, srcOff, dstBlk, dstOff int) {
				for g := range myRows {
					p.fetch[face] = append(p.fetch[face], sim.RowTransfer{
						SrcBlock: srcBlk, SrcRow: nbRows[g], SrcOff: srcOff,
						DstBlock: dstBlk, DstRow: myRows[g], DstOff: dstOff, Words: 1})
				}
			}
			for e := 0; e < m.NumElem; e++ {
				nb, ok := m.Neighbor(e, face)
				if !ok {
					continue
				}
				bd := roleBlock(e, RoleStressDiag)
				bs := roleBlock(e, RoleStressShear)
				bv := roleBlock(e, RoleVelocity)
				nbd := roleBlock(nb, RoleStressDiag)
				nbs := roleBlock(nb, RoleStressShear)
				nbv := roleBlock(nb, RoleVelocity)
				move(nbv, ExColVar0+int(a), bd, ExColNbr0)
				if riemann {
					move(nbd, ExColVar0+int(a), bd, ExColNbr1)
				}
				for idx, j := range otherAxes(a) {
					move(nbv, ExColVar0+j, bs, ExColNbr0+idx)
					if riemann {
						move(nbs, ExColVar0+shearVar(int(a), j), bs, ExColD+1+idx)
					}
				}
				for i := 0; i < 3; i++ {
					if i == int(a) {
						move(nbd, ExColVar0+i, bv, ExColD+1+i)
					} else {
						move(nbs, ExColVar0+shearVar(i, int(a)), bv, ExColD+1+i)
					}
					if riemann {
						move(nbv, ExColVar0+i, bv, ExColD+4+i)
					}
				}
				p.fluxProgs[face][bd] = fluxDiag
				p.fluxProgs[face][bs] = fluxShear
				p.fluxProgs[face][bv] = fluxVel
			}
		}

		for s := 0; s < dg.NumStages; s++ {
			integ := c.IntegrationElastic(s)
			p.integProgs[s] = make(map[int][]isa.Instr, 3*m.NumElem)
			for e := 0; e < m.NumElem; e++ {
				for _, role := range elasticComputeRoles {
					p.integProgs[s][roleBlock(e, role)] = integ
				}
			}
		}
		return p
	})
	return v.(*elasticPlan), hit
}

// ---------------------------------------------------------------------------
// Maxwell artifact set
// ---------------------------------------------------------------------------

// maxwellPlan is the immutable per-key artifact set of the two-compute-
// block Maxwell system. The same per-stage recompilation and schedule
// rebuilding as elastic used to happen here.
type maxwellPlan struct {
	volProgs   map[int][]isa.Instr
	fluxProgs  [mesh.NumFaces]map[int][]isa.Instr
	integProgs [dg.NumStages]map[int][]isa.Instr
	dup        []sim.RowTransfer
	fetch      [mesh.NumFaces][]sim.RowTransfer
}

// maxwellPlanFor returns (building on first use) the Maxwell artifacts.
func maxwellPlanFor(key PlanKey, c *Compiler, m *mesh.Mesh, place *Placement) (*maxwellPlan, bool) {
	blockOf := func(e int, eBlock bool) int {
		ex, ey, ez := m.ElemCoords(e)
		base := place.ElemSlot(ex, ey, ez)
		if eBlock {
			return base
		}
		return base + 1
	}
	v, hit := cachedPlan(key, func() any {
		p := &maxwellPlan{}
		nn := m.NodesPerEl

		volE := c.VolumeMaxwell(true)
		volH := c.VolumeMaxwell(false)
		p.volProgs = make(map[int][]isa.Instr, 2*m.NumElem)
		for e := 0; e < m.NumElem; e++ {
			eb, hb := blockOf(e, true), blockOf(e, false)
			p.volProgs[eb] = volE
			p.volProgs[hb] = volH
			for v := 0; v < 3; v++ {
				p.dup = append(p.dup, columnTransfer(hb, eb, ExColVar0+v, ExColRemote+v, nn)...)
				p.dup = append(p.dup, columnTransfer(eb, hb, ExColVar0+v, ExColRemote+v, nn)...)
			}
		}

		for face := mesh.Face(0); face < mesh.NumFaces; face++ {
			a := int(face.Axis())
			bb, cc := (a+1)%3, (a+2)%3
			myRows := m.FaceNodes(face)
			nbRows := m.FaceNodes(face.Opposite())
			fluxE := c.FluxMaxwell(face, true)
			fluxH := c.FluxMaxwell(face, false)
			p.fluxProgs[face] = make(map[int][]isa.Instr, 2*m.NumElem)
			move := func(srcBlk, srcOff, dstBlk, dstOff int) {
				for g := range myRows {
					p.fetch[face] = append(p.fetch[face], sim.RowTransfer{
						SrcBlock: srcBlk, SrcRow: nbRows[g], SrcOff: srcOff,
						DstBlock: dstBlk, DstRow: myRows[g], DstOff: dstOff, Words: 1})
				}
			}
			for e := 0; e < m.NumElem; e++ {
				nb, _ := m.Neighbor(e, face)
				for _, eBlock := range []bool{true, false} {
					dst := blockOf(e, eBlock)
					move(blockOf(nb, true), ExColVar0+bb, dst, ExColNbr0)
					move(blockOf(nb, true), ExColVar0+cc, dst, ExColNbr1)
					move(blockOf(nb, false), ExColVar0+bb, dst, ExColD+1)
					move(blockOf(nb, false), ExColVar0+cc, dst, ExColD+2)
					if eBlock {
						p.fluxProgs[face][dst] = fluxE
					} else {
						p.fluxProgs[face][dst] = fluxH
					}
				}
			}
		}

		for s := 0; s < dg.NumStages; s++ {
			integ := c.IntegrationElastic(s) // three variables per block
			p.integProgs[s] = make(map[int][]isa.Instr, 2*m.NumElem)
			for e := 0; e < m.NumElem; e++ {
				p.integProgs[s][blockOf(e, true)] = integ
				p.integProgs[s][blockOf(e, false)] = integ
			}
		}
		return p
	})
	return v.(*maxwellPlan), hit
}
