package wavepim

import (
	"context"
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/pim/nor"
)

// WithNORSlab is a pure substrate swap: a run whose arithmetic goes
// gate-by-gate through the slab NOR datapath must reproduce the default
// (host-float) run bit-for-bit — state, clock, energy, and instruction
// accounting — while recording real gate activity.
func TestSessionNORSlabBitIdentical(t *testing.T) {
	base := sessionForTest(t)
	if err := base.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	slab := sessionForTest(t, WithNORSlab(nor.DefaultSlabWords))
	if slab.Engine().SlabWords != nor.DefaultSlabWords {
		t.Fatalf("engine SlabWords = %d, want %d", slab.Engine().SlabWords, nor.DefaultSlabWords)
	}
	if err := slab.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	m := base.cfg.mesh
	qa, qb := dg.NewAcousticState(m), dg.NewAcousticState(m)
	base.Acoustic().ReadState(qa)
	slab.Acoustic().ReadState(qb)
	for v, sl := range qa.Slices() {
		for i := range sl {
			if sl[i] != qb.Slices()[v][i] {
				t.Fatalf("var %d node %d: host %v, slab %v", v, i, sl[i], qb.Slices()[v][i])
			}
		}
	}
	if a, b := base.Engine().Now(), slab.Engine().Now(); a != b {
		t.Fatalf("clock: host %v, slab %v", a, b)
	}
	if a, b := base.Engine().TotalEnergy, slab.Engine().TotalEnergy; a != b {
		t.Fatalf("energy: host %v, slab %v", a, b)
	}
	if a, b := base.Engine().InstrCount, slab.Engine().InstrCount; a != b {
		t.Fatalf("instr count: host %v, slab %v", a, b)
	}

	if st := base.Engine().NORGateStats(); st != (nor.Stats{}) {
		t.Fatalf("host-float run recorded gate activity: %+v", st)
	}
	st := slab.Engine().NORGateStats()
	if st.NOREvals == 0 || st.Resets == 0 {
		t.Fatalf("slab run recorded no gate activity: %+v", st)
	}
	if st.Resets != st.NOREvals {
		t.Fatalf("every NOR pre-resets its output: evals %d, resets %d", st.NOREvals, st.Resets)
	}
}
