package wavepim

import (
	"fmt"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/sim"
)

// Acoustic four-block (E_p) programs, Figures 8 and 9: the computations of
// pressure and velocity are distributed to four blocks (one for p, three
// for v), processed in parallel, "with an overhead of data duplication and
// inter-block data movement".
//
// Role column usage (Ex* layout):
//
//	P-block:  var0 = p; remote0..2 receive the three div-v pieces;
//	          remote3..5 receive the three flux pressure pieces.
//	V-block a: var0 = v[a]; remote0 = duplicated p; remote1 accumulates
//	          this block's flux pressure piece; nbr0/nbr1 = neighbor p and
//	          neighbor v[a] face values.

// VolumeVBlock compiles the Volume work of velocity block a: grad p along
// a (feeding its own velocity contribution) and the axis-a piece of div v
// (left in accDiv for the transfer to the P-block).
func (c *Compiler) VolumeVBlock(a mesh.Axis) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.distributeD(ExColD, a)
	b.dot(ExColRemote+0, ExColAcc, ExColTmp1, ExColTmp2, ExColD, a)
	b.bconst(RowScalarConsts, ConstNegInvRho, ExColConstA)
	b.mul(ExColContrib, ExColAcc, ExColConstA)
	b.dot(ExColVar0, ExColAccDiv, ExColTmp1, ExColTmp2, ExColD, a)
	return b.ins
}

// VolumePBlock compiles the Volume work of the pressure block: sum the
// three div pieces and scale by -kappa ("jacobian_det_w_star has to be
// calculated four times and ... div_v has to be transferred across blocks",
// Section 6.2.1).
func (c *Compiler) VolumePBlock() []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.add(ExColTmp1, ExColRemote+0, ExColRemote+1)
	b.add(ExColTmp1, ExColTmp1, ExColRemote+2)
	b.bconst(RowScalarConsts, ConstNegKappa, ExColConstA)
	b.mul(ExColContrib, ExColTmp1, ExColConstA)
	return b.ins
}

// FluxVBlock compiles the Flux work of velocity block a for one of its two
// faces. first marks the block's first face of the stage (the pressure
// piece accumulator is overwritten rather than accumulated).
func (c *Compiler) FluxVBlock(f mesh.Face, first bool) []isa.Instr {
	if f.Axis() == mesh.AxisX && false {
		panic("unreachable")
	}
	b := &progBuilder{np: c.Np, nn: c.nn()}
	a := f.Axis()
	maskWord := 0
	if f.Sign() > 0 {
		maskWord = 1
	}
	b.pattern(RowMaskBase, a, maskWord, ExColD)
	// dV = v[a] - nbr v[a]; dP = p(copy) - nbr p.
	b.sub(ExColTmp1, ExColVar0, ExColNbr1)
	b.sub(ExColTmp2, ExColRemote+0, ExColNbr0)
	// Pressure piece: mask * (c1*dV [+ c2*dP]) accumulated in remote1.
	b.bconst(RowFluxConsts, 4*int(f)+0, ExColConstA)
	b.mul(ExColAcc, ExColTmp1, ExColConstA)
	if c.Flux == dg.RiemannFlux {
		b.bconst(RowFluxConsts, 4*int(f)+1, ExColConstB)
		b.mul(ExColAccDiv, ExColTmp2, ExColConstB)
		b.add(ExColAcc, ExColAcc, ExColAccDiv)
	}
	b.mul(ExColAcc, ExColAcc, ExColD)
	if first {
		b.bconst(RowScalarConsts, ConstZero, ExColConstB)
		b.mul(ExColRemote+1, ExColRemote+1, ExColConstB) // clear accumulator
	}
	b.add(ExColRemote+1, ExColRemote+1, ExColAcc)
	// Own velocity contribution: mask * (c3*dP [+ c4*dV]).
	b.bconst(RowFluxConsts, 4*int(f)+2, ExColConstA)
	b.mul(ExColAcc, ExColTmp2, ExColConstA)
	if c.Flux == dg.RiemannFlux {
		b.bconst(RowFluxConsts, 4*int(f)+3, ExColConstB)
		b.mul(ExColAccDiv, ExColTmp1, ExColConstB)
		b.add(ExColAcc, ExColAcc, ExColAccDiv)
	}
	b.mul(ExColAcc, ExColAcc, ExColD)
	b.add(ExColContrib, ExColContrib, ExColAcc)
	return b.ins
}

// FluxPBlockGather adds the three collected flux pressure pieces into the
// pressure contribution.
func (c *Compiler) FluxPBlockGather() []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.add(ExColContrib, ExColContrib, ExColRemote+3)
	b.add(ExColContrib, ExColContrib, ExColRemote+4)
	b.add(ExColContrib, ExColContrib, ExColRemote+5)
	return b.ins
}

// IntegrationExpanded compiles one LSRK stage for a single-variable block
// of the expanded layout.
func (c *Compiler) IntegrationExpanded(stage int) []isa.Instr {
	return c.integration(stage, 1, ExColVar0, ExColAux, ExColContrib,
		ExColTmp1, ExColConstA, ExColConstB)
}

// ---------------------------------------------------------------------------
// Expanded functional system
// ---------------------------------------------------------------------------

// FunctionalAcousticExpanded executes the four-block E_p acoustic mapping
// functionally, verifying the expansion technique end to end.
type FunctionalAcousticExpanded struct {
	Mesh   *mesh.Mesh
	Mat    material.Acoustic
	Comp   *Compiler
	Place  *Placement
	Engine *sim.Engine
	Dt     float64
}

// NewFunctionalAcousticExpanded builds the expanded functional system.
func NewFunctionalAcousticExpanded(m *mesh.Mesh, mat material.Acoustic, flux dg.FluxType, dt float64) (*FunctionalAcousticExpanded, error) {
	if !m.Periodic {
		return nil, fmt.Errorf("wavepim: functional runs require a periodic mesh")
	}
	chipCfg, err := chipFor(m.NumElem * 4)
	if err != nil {
		return nil, err
	}
	ch, err := newChip(chipCfg)
	if err != nil {
		return nil, err
	}
	plan := Plan{Tech: ExpandParallel, Layout: AcousticFourBlock, SlotsPerElem: 4, Chip: chipCfg}
	return &FunctionalAcousticExpanded{
		Mesh:   m,
		Mat:    mat,
		Comp:   NewCompiler(plan, m.Np, flux),
		Place:  NewPlacement(AcousticFourBlock, m.EPerAxis, true),
		Engine: newFunctionalEngine(ch),
		Dt:     dt,
	}, nil
}

// roleBlock resolves the block of (element, role).
func (f *FunctionalAcousticExpanded) roleBlock(e int, role BlockRole) int {
	ex, ey, ez := f.Mesh.ElemCoords(e)
	return f.Place.BlockFor(ex, ey, ez, role)
}

// Load writes constants and the initial state.
func (f *FunctionalAcousticExpanded) Load(q *dg.AcousticState) {
	nn := f.Mesh.NodesPerEl
	for e := 0; e < f.Mesh.NumElem; e++ {
		for _, role := range []BlockRole{RolePressure, RoleVelX, RoleVelY, RoleVelZ} {
			b := f.Engine.Chip.Block(f.roleBlock(e, role))
			f.Comp.LoadAcousticConstants(b, f.Mesh, f.Mat, f.Dt)
			var src []float64
			switch role {
			case RolePressure:
				src = q.P
			case RoleVelX:
				src = q.V[0]
			case RoleVelY:
				src = q.V[1]
			case RoleVelZ:
				src = q.V[2]
			}
			for n := 0; n < nn; n++ {
				b.SetFloat(n, ExColVar0, float32(src[e*nn+n]))
				b.SetFloat(n, ExColAux, 0)
			}
		}
	}
}

// columnTransfer builds per-row transfers copying a full column between two
// blocks.
func columnTransfer(src, dst, srcOff, dstOff, rows int) []sim.RowTransfer {
	out := make([]sim.RowTransfer, rows)
	for r := 0; r < rows; r++ {
		out[r] = sim.RowTransfer{SrcBlock: src, SrcRow: r, SrcOff: srcOff,
			DstBlock: dst, DstRow: r, DstOff: dstOff, Words: 1}
	}
	return out
}

// Step runs one five-stage time-step.
func (f *FunctionalAcousticExpanded) Step() {
	eng := f.Engine
	m := f.Mesh
	nn := m.NodesPerEl
	velRoles := []BlockRole{RoleVelX, RoleVelY, RoleVelZ}

	for s := 0; s < dg.NumStages; s++ {
		// 1. Duplicate p into the velocity blocks.
		var dup []sim.RowTransfer
		for e := 0; e < m.NumElem; e++ {
			p := f.roleBlock(e, RolePressure)
			for _, role := range velRoles {
				dup = append(dup, columnTransfer(p, f.roleBlock(e, role), ExColVar0, ExColRemote+0, nn)...)
			}
		}
		eng.Sequence(eng.ExecTransfers("dup-p", dup))

		// 2. Velocity-block Volume (all three axes in parallel).
		progs := make(map[int][]isa.Instr)
		for e := 0; e < m.NumElem; e++ {
			for a, role := range velRoles {
				progs[f.roleBlock(e, role)] = f.volumeV(a)
			}
		}
		eng.Sequence(eng.ExecBlocks("volume-v", progs))

		// 3. Ship div pieces to the pressure block; combine there.
		var div []sim.RowTransfer
		for e := 0; e < m.NumElem; e++ {
			p := f.roleBlock(e, RolePressure)
			for a, role := range velRoles {
				div = append(div, columnTransfer(f.roleBlock(e, role), p, ExColAccDiv, ExColRemote+a, nn)...)
			}
		}
		eng.Sequence(eng.ExecTransfers("div-pieces", div))
		pprogs := make(map[int][]isa.Instr)
		for e := 0; e < m.NumElem; e++ {
			pprogs[f.roleBlock(e, RolePressure)] = f.volumeP()
		}
		eng.Sequence(eng.ExecBlocks("volume-p", pprogs))

		// 4. Flux: two sign phases; within each, the three axis blocks
		// work in parallel (Figure 9).
		for signIdx := 0; signIdx < 2; signIdx++ {
			var fetch []sim.RowTransfer
			fprogs := make(map[int][]isa.Instr)
			for a := mesh.AxisX; a <= mesh.AxisZ; a++ {
				face := mesh.Face(2*int(a) + signIdx)
				myRows := m.FaceNodes(face)
				nbRows := m.FaceNodes(face.Opposite())
				for e := 0; e < m.NumElem; e++ {
					nb, ok := m.Neighbor(e, face)
					if !ok {
						continue
					}
					dst := f.roleBlock(e, velRoles[a])
					srcP := f.roleBlock(nb, RolePressure)
					srcV := f.roleBlock(nb, velRoles[a])
					for g := range myRows {
						fetch = append(fetch,
							sim.RowTransfer{SrcBlock: srcP, SrcRow: nbRows[g], SrcOff: ExColVar0,
								DstBlock: dst, DstRow: myRows[g], DstOff: ExColNbr0, Words: 1},
							sim.RowTransfer{SrcBlock: srcV, SrcRow: nbRows[g], SrcOff: ExColVar0,
								DstBlock: dst, DstRow: myRows[g], DstOff: ExColNbr1, Words: 1})
					}
					fprogs[dst] = f.fluxV(face, signIdx == 0)
				}
			}
			eng.Sequence(eng.ExecTransfers(fmt.Sprintf("flux-fetch-%d", signIdx), fetch))
			eng.Sequence(eng.ExecBlocks(fmt.Sprintf("flux-%d", signIdx), fprogs))
		}
		// Gather the pressure pieces.
		var gather []sim.RowTransfer
		gprogs := make(map[int][]isa.Instr)
		for e := 0; e < m.NumElem; e++ {
			p := f.roleBlock(e, RolePressure)
			for a, role := range velRoles {
				gather = append(gather, columnTransfer(f.roleBlock(e, role), p, ExColRemote+1, ExColRemote+3+a, nn)...)
			}
			gprogs[p] = f.fluxGather()
		}
		eng.Sequence(eng.ExecTransfers("flux-p-pieces", gather))
		eng.Sequence(eng.ExecBlocks("flux-p-gather", gprogs))

		// 5. Integration on all four blocks in parallel.
		iprogs := make(map[int][]isa.Instr)
		integ := f.Comp.IntegrationExpanded(s)
		for e := 0; e < m.NumElem; e++ {
			for _, role := range []BlockRole{RolePressure, RoleVelX, RoleVelY, RoleVelZ} {
				iprogs[f.roleBlock(e, role)] = integ
			}
		}
		eng.Sequence(eng.ExecBlocks("integration", iprogs))
	}
}

// Cached program templates.
func (f *FunctionalAcousticExpanded) volumeV(a int) []isa.Instr {
	return f.Comp.VolumeVBlock(mesh.Axis(a))
}
func (f *FunctionalAcousticExpanded) volumeP() []isa.Instr { return f.Comp.VolumePBlock() }
func (f *FunctionalAcousticExpanded) fluxV(face mesh.Face, first bool) []isa.Instr {
	return f.Comp.FluxVBlock(face, first)
}
func (f *FunctionalAcousticExpanded) fluxGather() []isa.Instr { return f.Comp.FluxPBlockGather() }

// Run executes n time-steps.
func (f *FunctionalAcousticExpanded) Run(n int) {
	for i := 0; i < n; i++ {
		f.Step()
	}
}

// ReadState extracts the variables.
func (f *FunctionalAcousticExpanded) ReadState(q *dg.AcousticState) {
	nn := f.Mesh.NodesPerEl
	for e := 0; e < f.Mesh.NumElem; e++ {
		pb := f.Engine.Chip.Block(f.roleBlock(e, RolePressure))
		for n := 0; n < nn; n++ {
			q.P[e*nn+n] = float64(pb.GetFloat(n, ExColVar0))
		}
		for a, role := range []BlockRole{RoleVelX, RoleVelY, RoleVelZ} {
			vb := f.Engine.Chip.Block(f.roleBlock(e, role))
			for n := 0; n < nn; n++ {
				q.V[a][e*nn+n] = float64(vb.GetFloat(n, ExColVar0))
			}
		}
	}
}
