package wavepim

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"wavepim/internal/dg"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/fault"
)

// faultRun executes the canonical seeded stuck+flip acoustic scenario and
// returns the session plus its run error.
func faultRun(t *testing.T, steps int, cfg fault.Config, opts ...Option) (*Session, error) {
	t.Helper()
	s := sessionForTest(t, append([]Option{WithFaults(cfg)}, opts...)...)
	return s, s.Run(context.Background(), steps)
}

// TestFaultedRunHealsAndCompletes: a seeded stuck+flip scenario completes
// through the recovery ladder with observable detection and correction,
// and the result still tracks the fault-free reference (the ladder heals,
// it does not paper over).
func TestFaultedRunHealsAndCompletes(t *testing.T) {
	// Seed 4 at these rates is a run the ladder can save but only by using
	// every rung: ECC corrections plus two checkpoint rollbacks.
	cfg := fault.Config{Seed: 4, FlipProb: 1e-5, StuckProb: 1e-6}
	s, err := faultRun(t, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.FaultReport()
	if r.Counts.Flips == 0 {
		t.Fatalf("scenario injected nothing: %s", r)
	}
	if r.Counts.Detected == 0 || r.Counts.Corrected == 0 {
		t.Fatalf("ladder did not detect/correct: %s", r)
	}
	if r.Rollbacks == 0 {
		t.Fatalf("scenario should exercise the rollback rung: %s", r)
	}
	if r.Checkpoints == 0 {
		t.Fatalf("guarded run took no checkpoints: %s", r)
	}

	// The healed state must stay close to a fault-free run's.
	clean := sessionForTest(t)
	if err := clean.Run(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	m := mesh.New(1, 4, true)
	got, want := dg.NewAcousticState(m), dg.NewAcousticState(m)
	s.Acoustic().ReadState(got)
	clean.Acoustic().ReadState(want)
	for i := range want.P {
		d := got.P[i] - want.P[i]
		if d < -1e-3 || d > 1e-3 {
			t.Fatalf("healed state drifted at node %d: %g vs %g", i, got.P[i], want.P[i])
		}
	}

	// Recovery costs must be visible on the simulated timeline.
	var ecc, ckpt bool
	for _, p := range s.Engine().Timeline {
		switch p.Name {
		case "sim.fault.ecc":
			ecc = true
		case "sim.fault.checkpoint":
			ckpt = true
		}
	}
	if !ecc || !ckpt {
		t.Fatalf("missing recovery phases on the timeline (ecc=%v checkpoint=%v)", ecc, ckpt)
	}
}

// TestFaultedRunByteReproducible: the same seeded scenario twice gives a
// byte-identical JSON report and an identical timeline digest — the
// property the CI determinism guard enforces end to end.
func TestFaultedRunByteReproducible(t *testing.T) {
	run := func() ([]byte, uint64) {
		cfg := fault.Config{Seed: 4, FlipProb: 1e-5, StuckProb: 1e-6}
		s, err := faultRun(t, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.FaultReport().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), s.Engine().TimelineDigest()
	}
	r1, d1 := run()
	r2, d2 := run()
	if !bytes.Equal(r1, r2) {
		t.Fatalf("reports differ:\n%s\nvs\n%s", r1, r2)
	}
	if d1 != d2 {
		t.Fatalf("timeline digests differ: %016x vs %016x", d1, d2)
	}
}

// TestRunDeadline: an expired deadline surfaces as *ErrDeadline carrying
// the last completed step, and still unwraps to context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	s := sessionForTest(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := s.Run(ctx, 5)
	var de *ErrDeadline
	if !errors.As(err, &de) {
		t.Fatalf("want *ErrDeadline, got %v", err)
	}
	if de.Step != 0 {
		t.Fatalf("no step can complete under an expired deadline, got Step=%d", de.Step)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrDeadline must unwrap to context.DeadlineExceeded")
	}
}

// TestRollbackThenUnrecoverable: with ECC off and an aggressive flip rate,
// corruption reaches the field state, the health guard rolls back, and
// once the rollback budget is spent Run returns fault.ErrUnrecoverable.
func TestRollbackThenUnrecoverable(t *testing.T) {
	rec := fault.DefaultRecovery()
	rec.ECC = false // no scrubbing: corruption flows into the solver state
	rec.CheckpointEvery = 2
	rec.MaxRollbacks = 1
	rec.BlowupFactor = 10
	cfg := fault.Config{Seed: 13, FlipProb: 5e-3}
	s, err := faultRun(t, 8, cfg, WithRecovery(rec))
	if !errors.Is(err, fault.ErrUnrecoverable) {
		t.Fatalf("want ErrUnrecoverable, got %v", err)
	}
	r := s.FaultReport()
	if r.Rollbacks != int64(rec.MaxRollbacks) {
		t.Fatalf("want the full rollback budget spent (%d), got %s", rec.MaxRollbacks, r)
	}
	var sawRollback bool
	for _, p := range s.Engine().Timeline {
		if p.Name == "sim.fault.rollback" {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Fatal("no sim.fault.rollback phase on the timeline")
	}
}

// TestRecoveryOnlySession: WithRecovery alone (no injected faults) runs
// the checkpointed guard over a clean chip and completes with a quiet
// report — health checks cost timeline, not correctness.
func TestRecoveryOnlySession(t *testing.T) {
	rec := fault.DefaultRecovery()
	rec.CheckpointEvery = 2
	s := sessionForTest(t, WithRecovery(rec))
	if err := s.Run(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	r := s.FaultReport()
	if r.Counts != (fault.Counts{}) || r.Rollbacks != 0 {
		t.Fatalf("clean guarded run reported fault activity: %s", r)
	}
	if r.Checkpoints == 0 {
		t.Fatal("guarded run took no checkpoints")
	}
}

// TestSpareReservationTooSmall: a session must refuse to reserve spares
// past the chip's block count instead of remapping into nowhere.
func TestSpareReservationTooSmall(t *testing.T) {
	rec := fault.DefaultRecovery()
	rec.SpareBlocks = 1 << 20
	m := mesh.New(1, 4, true)
	_, err := NewSession(
		WithMesh(m),
		WithDt(1e-3),
		WithRecovery(rec),
	)
	if err == nil {
		t.Fatal("oversized spare reservation accepted")
	}
}
