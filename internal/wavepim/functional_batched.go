package wavepim

import (
	"fmt"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/sim"
)

// FunctionalAcousticBatched executes the batching technique of Section 6.1
// on real data: the model is larger than the block budget, so z-slices
// fold through a fixed set of blocks batch by batch (Figure 6), with the
// cross-batch flux faces served from the host-side DRAM image (the
// Figure 7 boundary-slice traffic). The host image is double-buffered per
// RK stage so every batch's flux sees pre-stage neighbor values, which is
// what makes the batched run bit-compatible with an unbatched one.
type FunctionalAcousticBatched struct {
	Mesh           *mesh.Mesh
	Mat            material.Acoustic
	Comp           *Compiler
	Engine         *sim.Engine
	Dt             float64
	SlicesPerBatch int

	batches  int
	elemsPB  int               // elements per batch
	blocks   []int             // block per batch-local element index
	host     *dg.AcousticState // DRAM image: variables
	hostAux  *dg.AcousticState // DRAM image: auxiliaries
	nextVars *dg.AcousticState
	nextAux  *dg.AcousticState
	volume   []isa.Instr
	flux     [mesh.NumFaces][]isa.Instr
	integ    [dg.NumStages][]isa.Instr
}

// NewFunctionalAcousticBatched builds the system. numSlices must divide by
// slicesPerBatch.
func NewFunctionalAcousticBatched(m *mesh.Mesh, mat material.Acoustic, flux dg.FluxType, dt float64, slicesPerBatch int) (*FunctionalAcousticBatched, error) {
	if !m.Periodic {
		return nil, fmt.Errorf("wavepim: functional runs require a periodic mesh")
	}
	if m.NumSlices()%slicesPerBatch != 0 || slicesPerBatch < 1 {
		return nil, fmt.Errorf("wavepim: %d slices not divisible by %d per batch", m.NumSlices(), slicesPerBatch)
	}
	elemsPB := m.EPerAxis * m.EPerAxis * slicesPerBatch
	cfg, err := chipFor(elemsPB)
	if err != nil {
		return nil, err
	}
	ch, err := newChip(cfg)
	if err != nil {
		return nil, err
	}
	plan := Plan{Tech: Naive | Batching, Layout: AcousticOneBlock, SlotsPerElem: 1, Chip: cfg}
	f := &FunctionalAcousticBatched{
		Mesh: m, Mat: mat,
		Comp:           NewCompiler(plan, m.Np, flux),
		Engine:         newFunctionalEngine(ch),
		Dt:             dt,
		SlicesPerBatch: slicesPerBatch,
		batches:        m.NumSlices() / slicesPerBatch,
		elemsPB:        elemsPB,
		host:           dg.NewAcousticState(m),
		hostAux:        dg.NewAcousticState(m),
		nextVars:       dg.NewAcousticState(m),
		nextAux:        dg.NewAcousticState(m),
	}
	f.blocks = make([]int, elemsPB)
	for i := range f.blocks {
		f.blocks[i] = i // the same block set is reused by every batch
	}
	f.volume = f.Comp.VolumeOneBlock()
	for face := mesh.Face(0); face < mesh.NumFaces; face++ {
		f.flux[face] = f.Comp.FluxOneBlock(face)
	}
	for s := 0; s < dg.NumStages; s++ {
		f.integ[s] = f.Comp.IntegrationOneBlock(s)
	}
	// Constants load once (Figure 6: the constant broadcast is removed for
	// later batches — and they never change, so one load serves all).
	for _, blk := range f.blocks {
		f.Comp.LoadAcousticConstants(f.Engine.Chip.Block(blk), m, mat, dt)
	}
	return f, nil
}

// Load seeds the DRAM image.
func (f *FunctionalAcousticBatched) Load(q *dg.AcousticState) {
	copyState(f.host, q)
	f.hostAux.Scale(0)
}

func copyState(dst, src *dg.AcousticState) {
	copy(dst.P, src.P)
	for d := 0; d < 3; d++ {
		copy(dst.V[d], src.V[d])
	}
}

// batchElems returns the global element ids of batch b, in batch-local
// order (slice-major).
func (f *FunctionalAcousticBatched) batchElems(b int) []int {
	var ids []int
	for s := b * f.SlicesPerBatch; s < (b+1)*f.SlicesPerBatch; s++ {
		ids = append(ids, f.Mesh.Slice(s)...)
	}
	return ids
}

// loadBatch writes batch b's variables and auxiliaries from the DRAM
// images into the blocks, charging the off-chip transaction.
func (f *FunctionalAcousticBatched) loadBatch(b int) []int {
	ids := f.batchElems(b)
	nn := f.Mesh.NodesPerEl
	for li, e := range ids {
		blk := f.Engine.Chip.Block(f.blocks[li])
		for n := 0; n < nn; n++ {
			blk.SetFloat(n, AcColP, float32(f.host.P[e*nn+n]))
			blk.SetFloat(n, AcColAux+0, float32(f.hostAux.P[e*nn+n]))
			for d := 0; d < 3; d++ {
				blk.SetFloat(n, AcColVX+d, float32(f.host.V[d][e*nn+n]))
				blk.SetFloat(n, AcColAux+1+d, float32(f.hostAux.V[d][e*nn+n]))
			}
		}
	}
	f.Engine.Sequence(f.Engine.ExecDRAM("load-batch", int64(len(ids)*nn*8*4)))
	return ids
}

// storeBatch reads batch b's variables and auxiliaries back into the
// next-stage DRAM images.
func (f *FunctionalAcousticBatched) storeBatch(b int, ids []int) {
	nn := f.Mesh.NodesPerEl
	for li, e := range ids {
		blk := f.Engine.Chip.Block(f.blocks[li])
		for n := 0; n < nn; n++ {
			f.nextVars.P[e*nn+n] = float64(blk.GetFloat(n, AcColP))
			f.nextAux.P[e*nn+n] = float64(blk.GetFloat(n, AcColAux+0))
			for d := 0; d < 3; d++ {
				f.nextVars.V[d][e*nn+n] = float64(blk.GetFloat(n, AcColVX+d))
				f.nextAux.V[d][e*nn+n] = float64(blk.GetFloat(n, AcColAux+1+d))
			}
		}
	}
	f.Engine.Sequence(f.Engine.ExecDRAM("store-batch", int64(len(ids)*nn*8*4)))
}

// fluxFetch prepares face f's neighbor columns for every batch element:
// in-batch neighbors transfer block-to-block; cross-batch neighbors (the
// z-boundary slices of Figure 7) inject pre-stage values from the DRAM
// image.
func (f *FunctionalAcousticBatched) fluxFetch(face mesh.Face, ids []int, localOf map[int]int) {
	m := f.Mesh
	myRows := m.FaceNodes(face)
	nbRows := m.FaceNodes(face.Opposite())
	nn := m.NodesPerEl
	var onChip []sim.RowTransfer
	var dramWords int64
	for li, e := range ids {
		nb, _ := m.Neighbor(e, face)
		if nbLocal, resident := localOf[nb]; resident {
			for g := range myRows {
				onChip = append(onChip, sim.RowTransfer{
					SrcBlock: f.blocks[nbLocal], SrcRow: nbRows[g], SrcOff: AcColP,
					DstBlock: f.blocks[li], DstRow: myRows[g], DstOff: AcColNbrP, Words: 4,
				})
			}
		} else {
			// Figure 7 boundary traffic: neighbor face values arrive from
			// DRAM (pre-stage image).
			blk := f.Engine.Chip.Block(f.blocks[li])
			for g, myN := range myRows {
				nbN := nbRows[g]
				blk.SetFloat(myN, AcColNbrP, float32(f.host.P[nb*nn+nbN]))
				for d := 0; d < 3; d++ {
					blk.SetFloat(myN, AcColNbrP+1+d, float32(f.host.V[d][nb*nn+nbN]))
				}
				dramWords += 4
			}
		}
	}
	if len(onChip) > 0 {
		f.Engine.Sequence(f.Engine.ExecTransfers("flux-fetch", onChip))
	}
	if dramWords > 0 {
		f.Engine.Sequence(f.Engine.ExecDRAM("boundary-slice", dramWords*4))
	}
}

// Step advances one five-stage time-step, folding every batch through the
// chip per stage.
func (f *FunctionalAcousticBatched) Step() {
	eng := f.Engine
	for s := 0; s < dg.NumStages; s++ {
		for b := 0; b < f.batches; b++ {
			ids := f.loadBatch(b)
			localOf := make(map[int]int, len(ids))
			for li, e := range ids {
				localOf[e] = li
			}
			progs := make(map[int][]isa.Instr, len(ids))
			for li := range ids {
				progs[f.blocks[li]] = f.volume
			}
			eng.Sequence(eng.ExecBlocks("volume", progs))
			for face := mesh.Face(0); face < mesh.NumFaces; face++ {
				f.fluxFetch(face, ids, localOf)
				fprogs := make(map[int][]isa.Instr, len(ids))
				for li := range ids {
					fprogs[f.blocks[li]] = f.flux[face]
				}
				eng.Sequence(eng.ExecBlocks("flux", fprogs))
			}
			iprogs := make(map[int][]isa.Instr, len(ids))
			for li := range ids {
				iprogs[f.blocks[li]] = f.integ[s]
			}
			eng.Sequence(eng.ExecBlocks("integration", iprogs))
			f.storeBatch(b, ids)
		}
		// Stage boundary: the new image becomes current (double buffer).
		f.host, f.nextVars = f.nextVars, f.host
		f.hostAux, f.nextAux = f.nextAux, f.hostAux
	}
}

// Run advances n steps.
func (f *FunctionalAcousticBatched) Run(n int) {
	for i := 0; i < n; i++ {
		f.Step()
	}
}

// ReadState extracts the current variables from the DRAM image.
func (f *FunctionalAcousticBatched) ReadState(q *dg.AcousticState) {
	copyState(q, f.host)
}
