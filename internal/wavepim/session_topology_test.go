package wavepim

import (
	"context"
	"errors"
	"math"
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/intercon"
)

// TestWithTopologySelection: every constructible fabric is selectable
// through the unified session constructor, and the session reports the
// normalized name back.
func TestWithTopologySelection(t *testing.T) {
	for _, name := range intercon.Names() {
		s := sessionForTest(t, WithTopology(name))
		if got := s.Topology(); got != name {
			t.Errorf("WithTopology(%q): session reports %q", name, got)
		}
	}
	// The default (no option) is the paper's H-tree.
	if got := sessionForTest(t).Topology(); got != "htree" {
		t.Errorf("default topology = %q, want htree", got)
	}
}

// TestWithTopologyUnknown: a bad name fails session construction eagerly
// with the typed error, matchable at both the session and intercon layer.
func TestWithTopologyUnknown(t *testing.T) {
	m := mesh.New(1, 4, true)
	_, err := NewSession(WithMesh(m), WithDt(1e-3), WithTopology("hypercube"))
	if err == nil {
		t.Fatal("NewSession accepted an unknown topology")
	}
	if !errors.Is(err, ErrUnknownTopology) {
		t.Errorf("error %v does not match wavepim.ErrUnknownTopology", err)
	}
	if !errors.Is(err, intercon.ErrUnknownTopology) {
		t.Errorf("error %v does not match intercon.ErrUnknownTopology", err)
	}
}

// TestWithTopologyFanout: the fanout knob reaches the chip config.
func TestWithTopologyFanout(t *testing.T) {
	s := sessionForTest(t, WithTopology("htree", WithTopologyFanout(2)))
	if got := s.Engine().Chip.Config.Fanout; got != 2 {
		t.Errorf("fanout = %d, want 2", got)
	}
}

// TestFunctionalAnswerIdenticalAcrossTopologies is the cross-topology
// conservation differential: the interconnect changes when data moves,
// never what arrives — so the functional answer bits must be identical on
// every fabric, while the simulated clock may differ.
func TestFunctionalAnswerIdenticalAcrossTopologies(t *testing.T) {
	m := mesh.New(1, 4, true)
	var base []uint64
	for _, name := range intercon.Names() {
		s := sessionForTest(t, WithTopology(name))
		if err := s.Run(context.Background(), 2); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q := dg.NewAcousticState(m)
		s.Acoustic().ReadState(q)
		bits := make([]uint64, len(q.P))
		for i, p := range q.P {
			bits[i] = math.Float64bits(p)
		}
		if base == nil {
			base = bits // htree sweeps first
			continue
		}
		for i := range bits {
			if bits[i] != base[i] {
				t.Fatalf("%s: P[%d] bits %016x differ from htree %016x",
					name, i, bits[i], base[i])
			}
		}
	}
}
