package wavepim

import (
	"math/rand"
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// Property: for arbitrary (bounded) random states, the compiled PIM
// programs compute the same semi-discrete RHS as the reference solver.
// This goes beyond the structured plane-wave tests — random fields have no
// symmetry for bugs to hide behind.
func TestFunctionalRHSMatchesOnRandomStates(t *testing.T) {
	m := mesh.New(1, 4, true)
	mat := material.Acoustic{Kappa: 1.7, Rho: 0.8}
	ref := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, mat), dg.RiemannFlux)
	r := rand.New(rand.NewSource(20240704))

	for trial := 0; trial < 8; trial++ {
		q := dg.NewAcousticState(m)
		for i := range q.P {
			q.P[i] = 2*r.Float64() - 1
			for d := 0; d < 3; d++ {
				q.V[d][i] = 2*r.Float64() - 1
			}
		}
		want := dg.NewAcousticState(m)
		ref.RHS(q, want)

		fa, err := NewFunctionalAcoustic(m, mat, dg.RiemannFlux, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		fa.Load(q)
		fa.RHSOnce()
		got := dg.NewAcousticState(m)
		fa.ReadRHS(got)

		if e := maxRelErr(got.P, want.P); e > 5e-4 {
			t.Fatalf("trial %d: random-state pressure RHS rel err %g", trial, e)
		}
		for d := 0; d < 3; d++ {
			if e := maxRelErr(got.V[d], want.V[d]); e > 5e-4 {
				t.Fatalf("trial %d: random-state v[%d] RHS rel err %g", trial, d, e)
			}
		}
	}
}

// Property: linearity of the PIM-computed RHS. The dG operator is linear,
// so RHS(a*q) must equal a*RHS(q) — including every masked flux path and
// cross-block transfer.
func TestFunctionalRHSLinearity(t *testing.T) {
	m := mesh.New(1, 4, true)
	mat := material.Acoustic{Kappa: 2.25, Rho: 1.0}
	q, _ := acousticStates(t, m)

	rhs1 := dg.NewAcousticState(m)
	fa1, err := NewFunctionalAcoustic(m, mat, dg.CentralFlux, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	fa1.Load(q)
	fa1.RHSOnce()
	fa1.ReadRHS(rhs1)

	const a = 0.5 // exactly representable: scaling is bit-exact in float32
	scaled := q.Copy()
	scaled.Scale(a)
	rhs2 := dg.NewAcousticState(m)
	fa2, err := NewFunctionalAcoustic(m, mat, dg.CentralFlux, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	fa2.Load(scaled)
	fa2.RHSOnce()
	fa2.ReadRHS(rhs2)

	for i := range rhs1.P {
		if float32(rhs2.P[i]) != float32(a*rhs1.P[i]) {
			t.Fatalf("linearity broken at node %d: RHS(q/2)=%g, RHS(q)/2=%g",
				i, rhs2.P[i], a*rhs1.P[i])
		}
	}
}
