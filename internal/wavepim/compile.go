package wavepim

import (
	"fmt"
	"math"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/sim"
)

// Storage-row map (the "Storage" half of Figure 5's block). The host loads
// these once per run (and re-uses them across batches: Figure 6's step 1
// is skipped after the first batch).
const (
	// RowDshapeBase + i holds row i of the differentiation matrix,
	// pre-scaled by the geometric Jacobian 2/H, one coefficient per word.
	RowDshapeBase = 512
	// RowMaskBase + i holds face-indicator words: word 0 = 1 iff i == 0
	// (minus faces), word 1 = 1 iff i == Np-1 (plus faces).
	RowMaskBase = 540
	// RowScalarConsts holds material/scheme scalars (Const* words).
	RowScalarConsts = 560
	// RowFluxConsts holds the four per-face flux coefficients c1..c4 at
	// words 4*face..4*face+3. These embed 1/Z (or 1/Zp, 1/Zs) factors the
	// host precomputes with its sqrt/inverse units (Section 4.3).
	RowFluxConsts = 561
	// RowRK holds the five LSRK A coefficients (words 0-4), the five B
	// coefficients (words 5-9), and dt (word 10).
	RowRK = 562
)

// Compiler lowers the dG kernels onto PIM instruction streams for one
// plan. Np is the nodes-per-axis of the element (8 for the paper's
// benchmarks; tests use smaller elements).
type Compiler struct {
	Plan Plan
	Np   int
	Flux dg.FluxType
}

// NewCompiler builds a compiler. Np^3 must fit the block's compute rows.
func NewCompiler(p Plan, np int, flux dg.FluxType) *Compiler {
	if np < 2 || np > 8 {
		panic(fmt.Sprintf("wavepim: np=%d outside supported range [2,8]", np))
	}
	if np*np*np > RowDshapeBase {
		panic("wavepim: element does not fit the compute row region")
	}
	return &Compiler{Plan: p, Np: np, Flux: flux}
}

func (c *Compiler) nn() int { return c.Np * c.Np * c.Np }

func (c *Compiler) stride(axis mesh.Axis) int {
	s := 1
	for i := 0; i < int(axis); i++ {
		s *= c.Np
	}
	return s
}

// ---------------------------------------------------------------------------
// Program builder helpers
// ---------------------------------------------------------------------------

type progBuilder struct {
	np, nn int
	ins    []isa.Instr
}

func (b *progBuilder) pattern(baseRow int, axis mesh.Axis, srcOff, dstOff int) {
	stride := 1
	for i := 0; i < int(axis); i++ {
		stride *= b.np
	}
	b.ins = append(b.ins, isa.Instr{Op: isa.OpPattern, Row: baseRow,
		RowStart: 0, RowCount: b.nn, SrcOff: srcOff, DstOff: dstOff,
		Stride: stride, GroupSize: b.np})
}

func (b *progBuilder) gbcast(srcOff, dstOff int, axis mesh.Axis, m int) {
	stride := 1
	for i := 0; i < int(axis); i++ {
		stride *= b.np
	}
	b.ins = append(b.ins, isa.Instr{Op: isa.OpGroupBcast,
		RowStart: 0, RowCount: b.nn, SrcOff: srcOff, DstOff: dstOff,
		Stride: stride, GroupSize: b.np, GroupIdx: m})
}

func (b *progBuilder) arith(op isa.Opcode, dst, src, src2 int) {
	b.ins = append(b.ins, isa.Instr{Op: op, RowStart: 0, RowCount: b.nn,
		DstOff: dst, SrcOff: src, Src2Off: src2})
}

func (b *progBuilder) mul(dst, src, src2 int) { b.arith(isa.OpMul, dst, src, src2) }
func (b *progBuilder) add(dst, src, src2 int) { b.arith(isa.OpAdd, dst, src, src2) }
func (b *progBuilder) sub(dst, src, src2 int) { b.arith(isa.OpSub, dst, src, src2) }

// bconst broadcasts one scalar constant from a storage row into a full
// column.
func (b *progBuilder) bconst(row, srcOff, dstOff int) {
	b.ins = append(b.ins, isa.Instr{Op: isa.OpBroadcast, Row: row,
		RowStart: 0, RowCount: b.nn, SrcOff: srcOff, DstOff: dstOff, WordCount: 1})
}

// dot emits the tensor-product dot product along axis: acc = sum_m
// Dcol[m] * GroupBcast_m(u), using tmp1/tmp2 as scratch and the dcols
// distributed pattern columns. The caller must have distributed the
// pattern columns for this axis.
func (b *progBuilder) dot(u, acc, tmp1, tmp2, dcols int, axis mesh.Axis) {
	for m := 0; m < b.np; m++ {
		b.gbcast(u, tmp1, axis, m)
		if m == 0 {
			b.mul(acc, tmp1, dcols)
		} else {
			b.mul(tmp2, tmp1, dcols+m)
			b.add(acc, acc, tmp2)
		}
	}
}

// distributeD emits the per-axis dshape distribution (Figure 5's constant
// distribution step): np OpPattern instructions.
func (b *progBuilder) distributeD(dcols int, axis mesh.Axis) {
	for m := 0; m < b.np; m++ {
		b.pattern(RowDshapeBase, axis, m, dcols+m)
	}
}

// ---------------------------------------------------------------------------
// Acoustic one-block programs (Figure 5)
// ---------------------------------------------------------------------------

// VolumeOneBlock compiles the acoustic Volume kernel for the naive layout:
// grad p feeds the velocity contributions, div v feeds the pressure
// contribution.
func (c *Compiler) VolumeOneBlock() []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	for a := mesh.AxisX; a <= mesh.AxisZ; a++ {
		b.distributeD(AcColD, a)
		// grad p along a -> contrib_v[a] = -1/rho * dp/da.
		b.dot(AcColP, AcColAcc, AcColTmp1, AcColTmp2, AcColD, a)
		b.bconst(RowScalarConsts, ConstNegInvRho, AcColConstA)
		b.mul(AcColContrib+1+int(a), AcColAcc, AcColConstA)
		// d v[a]/da accumulates into the div register.
		if a == mesh.AxisX {
			b.dot(AcColVX+int(a), AcColAccDiv, AcColTmp1, AcColTmp2, AcColD, a)
		} else {
			b.dot(AcColVX+int(a), AcColAcc, AcColTmp1, AcColTmp2, AcColD, a)
			b.add(AcColAccDiv, AcColAccDiv, AcColAcc)
		}
	}
	b.bconst(RowScalarConsts, ConstNegKappa, AcColConstA)
	b.mul(AcColContrib+0, AcColAccDiv, AcColConstA)
	return b.ins
}

// FluxOneBlock compiles the acoustic Flux kernel for one face. The
// neighbor's four variable words must already sit in columns
// AcColNbrP..AcColNbrP+3 at this element's face rows (the fetch is a
// separate transfer phase, which pipelining overlaps with Volume).
func (c *Compiler) FluxOneBlock(f mesh.Face) []isa.Instr {
	b := &progBuilder{np: c.Np, nn: c.nn()}
	a := f.Axis()
	maskWord := 0
	if f.Sign() > 0 {
		maskWord = 1
	}
	nbrV := AcColNbrP + 1 + int(a)
	b.pattern(RowMaskBase, a, maskWord, AcColD) // face mask into D slot 0
	// dV = v[a] - nbr v[a]; dP = p - nbr p.
	b.sub(AcColTmp1, AcColVX+int(a), nbrV)
	b.sub(AcColTmp2, AcColP, AcColNbrP)
	// Pressure contribution: mask * (c1*dV [+ c2*dP]).
	b.bconst(RowFluxConsts, 4*int(f)+0, AcColConstA)
	b.mul(AcColAcc, AcColTmp1, AcColConstA)
	if c.Flux == dg.RiemannFlux {
		b.bconst(RowFluxConsts, 4*int(f)+1, AcColConstB)
		b.mul(AcColAccDiv, AcColTmp2, AcColConstB)
		b.add(AcColAcc, AcColAcc, AcColAccDiv)
	}
	b.mul(AcColAcc, AcColAcc, AcColD)
	b.add(AcColContrib+0, AcColContrib+0, AcColAcc)
	// Velocity contribution: mask * (c3*dP [+ c4*dV]).
	b.bconst(RowFluxConsts, 4*int(f)+2, AcColConstA)
	b.mul(AcColAcc, AcColTmp2, AcColConstA)
	if c.Flux == dg.RiemannFlux {
		b.bconst(RowFluxConsts, 4*int(f)+3, AcColConstB)
		b.mul(AcColAccDiv, AcColTmp1, AcColConstB)
		b.add(AcColAcc, AcColAcc, AcColAccDiv)
	}
	b.mul(AcColAcc, AcColAcc, AcColD)
	b.add(AcColContrib+1+int(a), AcColContrib+1+int(a), AcColAcc)
	return b.ins
}

// IntegrationOneBlock compiles one LSRK stage for the naive acoustic
// layout: aux = A_s*aux + dt*contrib; q += B_s*aux, per variable.
func (c *Compiler) IntegrationOneBlock(stage int) []isa.Instr {
	return c.integration(stage, 4, AcColP, AcColAux, AcColContrib,
		AcColTmp1, AcColConstA, AcColConstB)
}

// integration emits the generic Integration kernel over nv variables at
// the given column bases.
func (c *Compiler) integration(stage, nv, varCol, auxCol, contribCol, tmp, constA, constB int) []isa.Instr {
	if stage < 0 || stage >= dg.NumStages {
		panic(fmt.Sprintf("wavepim: stage %d out of range", stage))
	}
	b := &progBuilder{np: c.Np, nn: c.nn()}
	b.bconst(RowRK, stage, constA) // A_s
	b.bconst(RowRK, 10, constB)    // dt
	for v := 0; v < nv; v++ {
		b.mul(auxCol+v, auxCol+v, constA)
		b.mul(tmp, contribCol+v, constB)
		b.add(auxCol+v, auxCol+v, tmp)
	}
	b.bconst(RowRK, 5+stage, constA) // B_s
	for v := 0; v < nv; v++ {
		b.mul(tmp, auxCol+v, constA)
		b.add(varCol+v, varCol+v, tmp)
	}
	return b.ins
}

// ---------------------------------------------------------------------------
// Flux transfer generation
// ---------------------------------------------------------------------------

// FluxTransfersOneBlock generates the neighbor-data fetch for one face of
// the naive acoustic layout. With functional=true it emits one transfer per
// face node (exact row-to-row data movement); otherwise one aggregated
// transfer per element pair (equivalent total words for the timing model).
func (c *Compiler) FluxTransfersOneBlock(m *mesh.Mesh, place *Placement, f mesh.Face, functional bool) []sim.RowTransfer {
	var out []sim.RowTransfer
	myRows := m.FaceNodes(f)
	nbRows := m.FaceNodes(f.Opposite())
	for e := 0; e < m.NumElem; e++ {
		nb, ok := m.Neighbor(e, f)
		if !ok {
			continue
		}
		ex, ey, ez := m.ElemCoords(e)
		nx, ny, nz := m.ElemCoords(nb)
		dst := place.BlockFor(ex, ey, ez, RoleAll)
		src := place.BlockFor(nx, ny, nz, RoleAll)
		if functional {
			for g := range myRows {
				out = append(out, sim.RowTransfer{
					SrcBlock: src, SrcRow: nbRows[g], SrcOff: AcColP,
					DstBlock: dst, DstRow: myRows[g], DstOff: AcColNbrP,
					Words: 4,
				})
			}
		} else {
			out = append(out, sim.RowTransfer{
				SrcBlock: src, SrcRow: nbRows[0], SrcOff: AcColP,
				DstBlock: dst, DstRow: myRows[0], DstOff: AcColNbrP,
				Words: 4 * len(myRows),
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Functional setup and extraction (acoustic one-block)
// ---------------------------------------------------------------------------

// BlockLoader writes data into chip blocks; satisfied by *chip.Chip via a
// small adapter in the runner, and by test fakes.
type BlockWriter interface {
	SetFloat(row, off int, v float32)
	GetFloat(row, off int) float32
	SetWord(row, off int, w uint32)
}

// LoadAcousticConstants writes the storage-row constants of one element's
// block: the scaled differentiation matrix, mask indicators, material and
// flux coefficients, and the RK table. dt is the time step.
func (c *Compiler) LoadAcousticConstants(b BlockWriter, m *mesh.Mesh, mat material.Acoustic, dt float64) {
	op := dg.NewOperator(m)
	// dshape rows, pre-scaled by the Jacobian 2/H.
	for i := 0; i < c.Np; i++ {
		for j := 0; j < c.Np; j++ {
			b.SetFloat(RowDshapeBase+i, j, float32(m.Rule.D[i][j]*m.JacobianScale()))
		}
	}
	// Mask indicator rows.
	for i := 0; i < c.Np; i++ {
		b.SetFloat(RowMaskBase+i, 0, boolToF(i == 0))
		b.SetFloat(RowMaskBase+i, 1, boolToF(i == c.Np-1))
	}
	// Scalar constants.
	lift := op.Lift()
	b.SetFloat(RowScalarConsts, ConstNegKappa, float32(-mat.Kappa))
	b.SetFloat(RowScalarConsts, ConstNegInvRho, float32(-1/mat.Rho))
	b.SetFloat(RowScalarConsts, ConstLift, float32(lift))
	b.SetFloat(RowScalarConsts, ConstZero, 0)
	b.SetFloat(RowScalarConsts, ConstOne, 1)
	// Per-face flux coefficients (the 1/Z factor is host-precomputed —
	// this is the sqrt/inverse offload of Section 4.3).
	z := mat.Impedance()
	for f := mesh.Face(0); f < mesh.NumFaces; f++ {
		s := float64(f.Sign())
		c1 := s * lift * mat.Kappa / 2
		c3 := s * lift / (2 * mat.Rho)
		var c2, c4 float64
		if c.Flux == dg.RiemannFlux {
			c2 = -lift * mat.Kappa / (2 * z)
			c4 = -lift * z / (2 * mat.Rho)
		}
		b.SetFloat(RowFluxConsts, 4*int(f)+0, float32(c1))
		b.SetFloat(RowFluxConsts, 4*int(f)+1, float32(c2))
		b.SetFloat(RowFluxConsts, 4*int(f)+2, float32(c3))
		b.SetFloat(RowFluxConsts, 4*int(f)+3, float32(c4))
	}
	// RK table.
	for s := 0; s < dg.NumStages; s++ {
		b.SetFloat(RowRK, s, float32(dg.LSRK5A[s]))
		b.SetFloat(RowRK, 5+s, float32(dg.LSRK5B[s]))
	}
	b.SetFloat(RowRK, 10, float32(dt))
}

func boolToF(v bool) float32 {
	if v {
		return 1
	}
	return 0
}

// LoadAcousticState writes the four variables of element e into its block
// and zeroes the auxiliaries.
func (c *Compiler) LoadAcousticState(b BlockWriter, q *dg.AcousticState, e int) {
	nn := c.nn()
	for n := 0; n < nn; n++ {
		b.SetFloat(n, AcColP, float32(q.P[e*nn+n]))
		for d := 0; d < 3; d++ {
			b.SetFloat(n, AcColVX+d, float32(q.V[d][e*nn+n]))
		}
		for v := 0; v < 4; v++ {
			b.SetFloat(n, AcColAux+v, 0)
		}
	}
}

// ReadAcousticState reads the variables of element e back from its block.
func (c *Compiler) ReadAcousticState(b BlockWriter, q *dg.AcousticState, e int) {
	nn := c.nn()
	for n := 0; n < nn; n++ {
		q.P[e*nn+n] = float64(b.GetFloat(n, AcColP))
		for d := 0; d < 3; d++ {
			q.V[d][e*nn+n] = float64(b.GetFloat(n, AcColVX+d))
		}
	}
}

// ReadAcousticContrib reads the contribution (RHS) columns of element e.
func (c *Compiler) ReadAcousticContrib(b BlockWriter, rhs *dg.AcousticState, e int) {
	nn := c.nn()
	for n := 0; n < nn; n++ {
		rhs.P[e*nn+n] = float64(b.GetFloat(n, AcColContrib+0))
		for d := 0; d < 3; d++ {
			rhs.V[d][e*nn+n] = float64(b.GetFloat(n, AcColContrib+1+d))
		}
	}
}

// MaxAbsDiff is a test helper comparing two float slices.
func MaxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
