package wavepim

import (
	"math"
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

var elMat = material.Elastic{Lambda: 2.0, Mu: 1.0, Rho: 1.0}

func elasticStates(m *mesh.Mesh) (*dg.ElasticState, *dg.ElasticState) {
	q := dg.NewElasticState(m)
	dg.PlaneWavePX(m, elMat, 1, q)
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, y, z := m.NodePosition(e, n)
			i := e*nn + n
			// Mix in an S-wave and off-axis structure so every variable
			// and derivative direction is exercised.
			vy := 0.4 * math.Sin(2*math.Pi*(x+z))
			q.V[1][i] += vy
			q.S[dg.SXY][i] += -elMat.Rho * elMat.SWaveSpeed() * vy
			q.V[2][i] += 0.25 * math.Cos(2*math.Pi*y)
			q.S[dg.SYZ][i] += 0.1 * math.Sin(2*math.Pi*z)
		}
	}
	return q, q.Copy()
}

// The elastic four-block mapping must track the reference solver over full
// time-steps, for both flux solvers — this exercises Figure 8's cross-block
// Volume memcpy, all nine variables' flux updates, and the E_r layout.
func TestFunctionalElasticMatchesReference(t *testing.T) {
	for _, flux := range []dg.FluxType{dg.CentralFlux, dg.RiemannFlux} {
		m := mesh.New(1, 4, true)
		q, qPim := elasticStates(m)

		ref := dg.NewElasticSolver(m, material.UniformElastic(m.NumElem, elMat), flux)
		it := dg.NewElasticIntegrator(ref)
		dt := ref.MaxStableDt(0.3)

		fe, err := NewFunctionalElastic(m, elMat, flux, dt)
		if err != nil {
			t.Fatal(err)
		}
		fe.Load(qPim)

		const steps = 2
		it.Run(q, 0, dt, steps)
		fe.Run(steps)
		got := dg.NewElasticState(m)
		fe.ReadState(got)

		for c := 0; c < dg.NumStress; c++ {
			if e := maxRelErr(got.S[c], q.S[c]); e > 5e-3 {
				t.Errorf("flux=%v: stress component %d rel err %g", flux, c, e)
			}
		}
		for d := 0; d < 3; d++ {
			if e := maxRelErr(got.V[d], q.V[d]); e > 5e-3 {
				t.Errorf("flux=%v: velocity %d rel err %g", flux, d, e)
			}
		}
	}
}

// Elastic volume programs must be larger than acoustic ones (9 variables,
// 18 derivative dot products versus 6) and the Riemann flux larger than
// central — the benchmark ordering of Table 6.
func TestElasticProgramSizes(t *testing.T) {
	plan := Plan{Tech: ExpandRows, Layout: ElasticFourBlock, SlotsPerElem: 4}
	cc := NewCompiler(plan, 8, dg.CentralFlux)
	cr := NewCompiler(plan, 8, dg.RiemannFlux)
	// Bv runs 9 dots — the elastic critical path.
	bv := len(cc.VolumeElasticVel())
	acoustic := len(cc.VolumeOneBlock())
	if bv <= acoustic {
		t.Errorf("elastic Bv volume (%d) should exceed acoustic naive volume (%d)", bv, acoustic)
	}
	for _, f := range []mesh.Face{mesh.FaceXMinus, mesh.FaceYPlus, mesh.FaceZMinus} {
		if len(cr.FluxElasticDiag(f)) <= len(cc.FluxElasticDiag(f)) {
			t.Errorf("face %v: Riemann diag flux should exceed central", f)
		}
		if len(cr.FluxElasticVel(f)) <= len(cc.FluxElasticVel(f)) {
			t.Errorf("face %v: Riemann velocity flux should exceed central", f)
		}
	}
}

func TestShearVarMapping(t *testing.T) {
	if shearVar(0, 1) != 0 || shearVar(1, 0) != 0 {
		t.Error("sxy")
	}
	if shearVar(0, 2) != 1 || shearVar(2, 0) != 1 {
		t.Error("sxz")
	}
	if shearVar(1, 2) != 2 || shearVar(2, 1) != 2 {
		t.Error("syz")
	}
}

func TestBvSigmaColSymmetric(t *testing.T) {
	// sigma is symmetric: column for (i, a) equals column for (a, i).
	for i := 0; i < 3; i++ {
		for a := mesh.AxisX; a <= mesh.AxisZ; a++ {
			if bvSigmaCol(i, a) != bvSigmaCol(int(a), mesh.Axis(i)) {
				t.Errorf("bvSigmaCol not symmetric at (%d,%v)", i, a)
			}
		}
	}
	// Diagonal entries map to remote0..2, shear to remote3..5.
	if bvSigmaCol(0, mesh.AxisX) != ExColRemote+0 || bvSigmaCol(2, mesh.AxisZ) != ExColRemote+2 {
		t.Error("diag mapping")
	}
	if bvSigmaCol(0, mesh.AxisY) != ExColRemote+3 || bvSigmaCol(1, mesh.AxisZ) != ExColRemote+5 {
		t.Error("shear mapping")
	}
}

func TestOtherAxes(t *testing.T) {
	if otherAxes(mesh.AxisX) != [2]int{1, 2} ||
		otherAxes(mesh.AxisY) != [2]int{0, 2} ||
		otherAxes(mesh.AxisZ) != [2]int{0, 1} {
		t.Error("otherAxes wrong")
	}
}
