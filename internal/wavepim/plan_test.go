package wavepim

import (
	"testing"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/pim/chip"
)

// The planner must reproduce Table 5 exactly, cell for cell.
func TestPlannerReproducesTable5(t *testing.T) {
	paper := PaperTable5()
	for _, b := range opcount.AllBenchmarks() {
		for _, cfg := range chip.AllConfigs() {
			p, err := MakePlan(b, cfg)
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name(), cfg.Name, err)
			}
			want := paper[table5Key(b)][cfg.Name]
			if got := p.Table5String(); got != want {
				t.Errorf("Table 5 cell (%s, %s): got %s want %s", b.Name(), cfg.Name, got, want)
			}
		}
	}
}

// The paper singles out two batch counts: 512MB needs 32 batches for
// elastic level 5 (Section 7.3) and stores half the level-5 elements on a
// 2GB chip (Section 6.1.2's Figure 7 setup: slices 0-15 of 32).
func TestPlannerBatchCountsMatchPaper(t *testing.T) {
	p, err := MakePlan(opcount.Benchmark{Eq: opcount.ElasticCentral, Refinement: 5}, chip.Config512MB())
	if err != nil {
		t.Fatal(err)
	}
	if p.Batches != 32 {
		t.Errorf("elastic_5 on 512MB: %d batches, want 32 (paper Section 7.3)", p.Batches)
	}
	p2, err := MakePlan(opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 5}, chip.Config2GB())
	if err != nil {
		t.Fatal(err)
	}
	if p2.SlicesPerBatch != 16 || p2.Batches != 2 {
		t.Errorf("acoustic_5 on 2GB: %d slices/batch in %d batches, want 16 in 2 (Figure 7)",
			p2.SlicesPerBatch, p2.Batches)
	}
}

func TestPlanBlocksNeverExceedChip(t *testing.T) {
	for _, b := range opcount.AllBenchmarks() {
		for _, cfg := range chip.AllConfigs() {
			p, err := MakePlan(b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if p.BlocksUsed() > cfg.NumBlocks() {
				t.Errorf("%s: batch uses %d blocks > %d available", p, p.BlocksUsed(), cfg.NumBlocks())
			}
			if p.Batches*p.SlicesPerBatch < p.NumSlices {
				t.Errorf("%s: batches do not cover the mesh", p)
			}
		}
	}
}

func TestTechniqueStrings(t *testing.T) {
	cases := map[Technique]string{
		Naive:                                  "N",
		ExpandParallel:                         "E_p",
		ExpandRows:                             "E_r",
		ExpandRows | Batching:                  "E_r&B",
		ExpandRows | ExpandParallel:            "E_r&E_p",
		Batching:                               "B",
		ExpandParallel | Batching:              "E_p&B",
		ExpandRows | ExpandParallel | Batching: "E_r&E_p&B",
	}
	for tech, want := range cases {
		if got := tech.String(); got != want {
			t.Errorf("%d.String() = %q want %q", tech, got, want)
		}
	}
}

func TestLayoutSlots(t *testing.T) {
	if AcousticOneBlock.SlotsPerElement() != 1 ||
		AcousticFourBlock.SlotsPerElement() != 4 ||
		ElasticFourBlock.SlotsPerElement() != 4 ||
		ElasticTwelveBlock.SlotsPerElement() != 12 {
		t.Error("slot counts wrong")
	}
}

func TestLayoutFor(t *testing.T) {
	if LayoutFor(opcount.Acoustic, Naive) != AcousticOneBlock {
		t.Error("acoustic naive layout")
	}
	if LayoutFor(opcount.Acoustic, ExpandParallel) != AcousticFourBlock {
		t.Error("acoustic expanded layout")
	}
	if LayoutFor(opcount.ElasticCentral, ExpandRows|Batching) != ElasticFourBlock {
		t.Error("elastic base layout")
	}
	if LayoutFor(opcount.ElasticRiemann, ExpandRows|ExpandParallel) != ElasticTwelveBlock {
		t.Error("elastic expanded layout")
	}
}

func TestMorton3(t *testing.T) {
	if Morton3(0, 0, 0) != 0 {
		t.Error("origin")
	}
	if Morton3(1, 0, 0) != 1 || Morton3(0, 1, 0) != 2 || Morton3(0, 0, 1) != 4 {
		t.Error("unit vectors")
	}
	if Morton3(3, 3, 3) != 63 {
		t.Errorf("Morton3(3,3,3) = %d want 63", Morton3(3, 3, 3))
	}
	// Bijective over a 8^3 cube.
	seen := make(map[int]bool)
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				m := Morton3(x, y, z)
				if m < 0 || m >= 512 || seen[m] {
					t.Fatalf("Morton3 not bijective at (%d,%d,%d): %d", x, y, z, m)
				}
				seen[m] = true
			}
		}
	}
}

func TestMortonLocality(t *testing.T) {
	// Neighboring elements must land closer together (on average) under
	// Morton order than under row-major for the z axis, which is what keeps
	// z-flux transfers inside tiles.
	const n = 16
	var mortonDist, rowDist int
	for z := 0; z < n-1; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dm := Morton3(x, y, z+1) - Morton3(x, y, z)
				if dm < 0 {
					dm = -dm
				}
				mortonDist += dm
				rowDist += n * n // row-major z-neighbor distance
			}
		}
	}
	if mortonDist >= rowDist {
		t.Errorf("Morton z-neighbor distance %d should beat row-major %d", mortonDist, rowDist)
	}
}

func TestPlacementRoles(t *testing.T) {
	p := NewPlacement(AcousticFourBlock, 4, true)
	base := p.ElemSlot(1, 2, 3)
	if base%4 != 0 {
		t.Error("four-block slots must be 4-aligned (S0 group alignment)")
	}
	if p.BlockFor(1, 2, 3, RolePressure) != base ||
		p.BlockFor(1, 2, 3, RoleVelZ) != base+3 {
		t.Error("acoustic four-block roles wrong")
	}
	e := NewPlacement(ElasticTwelveBlock, 4, true)
	if e.BlockFor(0, 0, 0, RoleVelocity) != 6 || e.BlockFor(0, 0, 0, RoleBuffer) != 9 {
		t.Error("elastic twelve-block roles wrong")
	}
	one := NewPlacement(AcousticOneBlock, 4, false)
	if one.BlockFor(1, 0, 0, RoleAll) != 1 {
		t.Error("row-major one-block placement wrong")
	}
}

func TestPlanElemsPerBatch(t *testing.T) {
	p, err := MakePlan(opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 5}, chip.Config512MB())
	if err != nil {
		t.Fatal(err)
	}
	// 4096 blocks / 1024 elems per slice = 4 slices per batch.
	if p.SlicesPerBatch != 4 || p.Batches != 8 {
		t.Errorf("acoustic_5 on 512MB: %d slices/batch, %d batches; want 4, 8", p.SlicesPerBatch, p.Batches)
	}
	if p.ElemsPerBatch() != 4096 {
		t.Errorf("ElemsPerBatch = %d", p.ElemsPerBatch())
	}
}
