// Package wavepim is the paper's primary contribution: the mapping of
// discontinuous-Galerkin wave simulation onto the digital PIM system. It
// implements the single-element data layout and execution flow of Figure 5,
// the kernel compiler that turns the Volume / Flux / Integration kernels
// into PIM instruction streams, the batching (Section 6.1), expansion
// (Section 6.2) and pipelining (Section 6.3) techniques, the configuration
// planner reproducing Table 5, and the end-to-end runner used by the
// evaluation harness.
package wavepim

import (
	"fmt"

	"wavepim/internal/dg/opcount"
)

// Technique is the fitting technique of Table 5.
type Technique int

const (
	// Naive deploys one element per memory block (acoustic only).
	Naive Technique = 1 << iota
	// ExpandParallel is E_p: spread one element over more blocks to use
	// idle capacity for parallelism (Section 6.2.1).
	ExpandParallel
	// ExpandRows is E_r: the elastic system's nine variables exceed the 1K
	// row budget of one block, forcing a multi-block element (Section
	// 6.2.2, Section 5.1).
	ExpandRows
	// Batching folds a model too big for the chip through it in slices
	// (Section 6.1).
	Batching
)

// String renders the Table 5 notation (N, E_p, E_r, B and combinations).
func (t Technique) String() string {
	if t == Naive {
		return "N"
	}
	s := ""
	app := func(x string) {
		if s != "" {
			s += "&"
		}
		s += x
	}
	if t&ExpandRows != 0 {
		app("E_r")
	}
	if t&ExpandParallel != 0 {
		app("E_p")
	}
	if t&Batching != 0 {
		app("B")
	}
	if s == "" {
		return "?"
	}
	return s
}

// BlockRole names the function of each block of a multi-block element.
type BlockRole int

const (
	// RoleAll is the single block of a naive element.
	RoleAll BlockRole = iota
	// RolePressure / RoleVelX..Z are the four blocks of the expanded
	// acoustic element (Figures 8-9): one for p, one per velocity axis.
	RolePressure
	RoleVelX
	RoleVelY
	RoleVelZ
	// RoleStressDiag, RoleStressShear and RoleVelocity are the elastic
	// element's three compute blocks; RoleBuffer is the neighbor-data
	// buffer block of Figure 9.
	RoleStressDiag
	RoleStressShear
	RoleVelocity
	RoleBuffer
)

// LayoutKind selects one of the hand-mapped element data layouts.
type LayoutKind int

const (
	// AcousticOneBlock is Figure 5's layout: the whole 512-node acoustic
	// element in one 1Kx1K block.
	AcousticOneBlock LayoutKind = iota
	// AcousticFourBlock is the E_p layout of Figures 8-9 (p + 3 velocity
	// blocks; the pressure block doubles as the neighbor buffer).
	AcousticFourBlock
	// ElasticFourBlock is the E_r layout: diagonal stress, shear stress,
	// velocity, and a neighbor-buffer block.
	ElasticFourBlock
	// ElasticTwelveBlock is E_r & E_p: one variable per block (nine used,
	// three slots spare for buffering), aligned to fanout-4 groups.
	ElasticTwelveBlock
)

// SlotsPerElement returns how many consecutive block slots one element
// occupies (slots are aligned to the H-tree's fanout-4 groups so that an
// element's blocks share low-level switches, the locality argument of
// Section 4.2.1).
func (k LayoutKind) SlotsPerElement() int {
	switch k {
	case AcousticOneBlock:
		return 1
	case AcousticFourBlock, ElasticFourBlock:
		return 4
	case ElasticTwelveBlock:
		return 12
	}
	panic(fmt.Sprintf("wavepim: unknown layout %d", int(k)))
}

// ---------------------------------------------------------------------------
// Column maps (Figure 5's data layout within a block)
// ---------------------------------------------------------------------------

// Acoustic one-block column assignment. Rows [0, Np^3) are the computation
// space (one node per row, Figure 5); rows [512, 1024) hold constants.
// Within the 32 words of a row: variables, auxiliaries, contributions, and
// scratchpad, exactly as the figure lays them out.
const (
	AcColP       = 0  // variable p
	AcColVX      = 1  // variable vx
	AcColVY      = 2  // variable vy
	AcColVZ      = 3  // variable vz
	AcColAux     = 4  // auxiliaries: 4..7 (p, vx, vy, vz)
	AcColContrib = 8  // contributions: 8..11
	AcColTmp1    = 12 // scratch: group-broadcast target
	AcColTmp2    = 13 // scratch: product
	AcColAcc     = 14 // scratch: per-axis accumulator
	AcColAccDiv  = 15 // scratch: div v accumulator (persists across axes)
	AcColD       = 16 // 16..23: distributed dshape (or face-mask) columns
	AcColConstA  = 24 // broadcast constant slots
	AcColConstB  = 25
	AcColConstC  = 26
	AcColNbrP    = 27 // neighbor face values: p
	AcColNbrV    = 28 // neighbor face values: v (normal component)
	AcColSpare1  = 29
	AcColSpare2  = 30
	AcColSpare3  = 31
)

// Per-variable-group layout used by the expanded and elastic blocks: each
// compute block holds up to three variables plus the same scratch
// apparatus.
const (
	ExColVar0    = 0 // up to three variables
	ExColVar1    = 1
	ExColVar2    = 2
	ExColAux     = 3 // 3..5 auxiliaries
	ExColContrib = 6 // 6..8 contributions
	ExColTmp1    = 9
	ExColTmp2    = 10
	ExColAcc     = 11
	ExColAccDiv  = 12
	ExColD       = 13 // 13..20 dshape / mask columns
	ExColConstA  = 21
	ExColConstB  = 22
	ExColConstC  = 23
	ExColRemote  = 24 // 24..29: remote variable columns fetched per phase
	ExColNbr0    = 30 // neighbor face values
	ExColNbr1    = 31
)

// Constants storage rows (the second half of the block, Figure 5's
// "Storage" region). The host loads these once; per-stage distribution to
// the compute rows is charged by the compiler.
const (
	RowDshape    = 512 // rows 512..519: dshape rows D[m][*] pre-scaled by 2/H
	RowMaskFirst = 520 // [1,0,...,0] pattern row (minus-face masks)
	RowMaskLast  = 521 // [0,...,0,1] pattern row (plus-face masks)
	RowConsts    = 522 // material and scheme scalars, one per word
)

// Words within RowConsts.
const (
	ConstNegKappa   = iota // -kappa
	ConstNegInvRho         // -1/rho
	ConstLiftKappa         // lift * kappa
	ConstLiftInvRho        // lift / rho
	ConstHalf              // 0.5
	ConstHalfZ             // Z/2
	ConstHalfInvZ          // 1/(2Z)  (host-precomputed, LUT-served)
	ConstLambda            // lambda
	ConstTwoMu             // 2*mu
	ConstMu                // mu
	ConstInvRho            // 1/rho (host-precomputed, LUT-served)
	ConstLift              // lift factor
	ConstHalfZp            // Zp/2
	ConstHalfZs            // Zs/2
	ConstHalfInvZp         // 1/(2Zp) (host-precomputed, LUT-served)
	ConstHalfInvZs         // 1/(2Zs) (host-precomputed, LUT-served)
	ConstRKA               // A_s for the current stage
	ConstRKBdt             // B_s (written per stage)
	ConstDt                // dt
	ConstNegHalf           // -0.5
	ConstZero              // 0.0 (accumulator clearing)
	ConstOne               // 1.0 (copy-by-multiply)
	ConstInvEps            // 1/eps (Maxwell extension)
	ConstNegInvEps         // -1/eps
	ConstInvMu             // 1/mu
	ConstNegInvMu          // -1/mu
	NumConsts
)

// ---------------------------------------------------------------------------
// Element-to-block placement
// ---------------------------------------------------------------------------

// Morton3 interleaves the low 10 bits of x, y, z into a Morton (Z-order)
// code. Placing elements along the Morton curve keeps 3D mesh neighbors in
// nearby blocks, so most flux transfers stay inside low H-tree subtrees —
// the locality the interconnect design exploits.
func Morton3(x, y, z int) int {
	var m int
	for b := 0; b < 10; b++ {
		m |= (x>>b&1)<<(3*b) | (y>>b&1)<<(3*b+1) | (z>>b&1)<<(3*b+2)
	}
	return m
}

// Placement maps mesh elements to block slots.
type Placement struct {
	Kind    LayoutKind
	Morton  bool // Morton order (default) versus row-major
	EperAx  int  // elements per axis of the (batch) mesh
	slotsPE int
}

// NewPlacement builds a placement for a mesh of ePerAxis^3 elements.
func NewPlacement(kind LayoutKind, ePerAxis int, morton bool) *Placement {
	return &Placement{Kind: kind, Morton: morton, EperAx: ePerAxis, slotsPE: kind.SlotsPerElement()}
}

// ElemSlot returns the first block ID of the element at lattice position
// (ex, ey, ez).
func (p *Placement) ElemSlot(ex, ey, ez int) int {
	var idx int
	if p.Morton {
		idx = Morton3(ex, ey, ez)
	} else {
		idx = (ez*p.EperAx+ey)*p.EperAx + ex
	}
	return idx * p.slotsPE
}

// BlockFor returns the block ID serving the given role for the element at
// (ex, ey, ez).
func (p *Placement) BlockFor(ex, ey, ez int, role BlockRole) int {
	base := p.ElemSlot(ex, ey, ez)
	switch p.Kind {
	case AcousticOneBlock:
		return base
	case AcousticFourBlock:
		switch role {
		case RolePressure, RoleBuffer, RoleAll:
			return base
		case RoleVelX:
			return base + 1
		case RoleVelY:
			return base + 2
		case RoleVelZ:
			return base + 3
		}
	case ElasticFourBlock:
		switch role {
		case RoleStressDiag, RoleAll:
			return base
		case RoleStressShear:
			return base + 1
		case RoleVelocity:
			return base + 2
		case RoleBuffer:
			return base + 3
		}
	case ElasticTwelveBlock:
		switch role {
		case RoleStressDiag, RoleAll:
			return base
		case RoleStressShear:
			return base + 3
		case RoleVelocity:
			return base + 6
		case RoleBuffer:
			return base + 9
		}
	}
	panic(fmt.Sprintf("wavepim: role %d invalid for layout %d", int(role), int(p.Kind)))
}

// LayoutFor returns the layout kind implied by an equation and technique
// set.
func LayoutFor(eq opcount.Equation, t Technique) LayoutKind {
	elastic := eq != opcount.Acoustic
	switch {
	case elastic && t&ExpandParallel != 0:
		return ElasticTwelveBlock
	case elastic:
		return ElasticFourBlock
	case t&ExpandParallel != 0:
		return AcousticFourBlock
	default:
		return AcousticOneBlock
	}
}

// MaxBlockID returns the highest block id this placement can produce over
// the whole element lattice — the boundary above which the fault layer
// reserves spare blocks for remapping.
func (p *Placement) MaxBlockID() int {
	n := p.EperAx - 1
	var idx int
	if p.Morton {
		idx = Morton3(n, n, n)
	} else {
		idx = (n*p.EperAx+n)*p.EperAx + n
	}
	return idx*p.slotsPE + p.slotsPE - 1
}
