package wavepim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/fault"
	"wavepim/internal/pim/intercon"
	"wavepim/internal/pim/sim"
	"wavepim/internal/pim/xbar"
)

// Session is the unified entry point to a functional Wave-PIM run. It owns
// the chip, the execution engine, the compiled solver for one equation, and
// the observability sink, replacing the NewFunctionalAcoustic /
// NewFunctionalElastic / NewFunctionalMaxwell constructor sprawl:
//
//	s, err := wavepim.NewSession(
//		wavepim.WithEquation(opcount.Acoustic),
//		wavepim.WithMesh(mesh.New(1, 4, true)),
//		wavepim.WithDt(1e-3),
//		wavepim.WithObs(obs.NewSink()),
//	)
//	s.Acoustic().Load(q)
//	err = s.Run(ctx, steps)
//
// The legacy constructors remain as thin wrappers over the same machinery.
type Session struct {
	cfg sessionConfig
	eng *sim.Engine

	// exactly one of these is non-nil, per cfg.eq
	ac *FunctionalAcoustic
	el *FunctionalElastic
	mx *FunctionalMaxwell

	// lastDump is the most recent automatic flight-recorder snapshot
	// (nil until a run fails with a dump-triggering error).
	lastDump *eventlog.FlightDump
}

type sessionConfig struct {
	eq        opcount.Equation
	mesh      *mesh.Mesh
	flux      dg.FluxType
	fluxSet   bool
	dt        float64
	chip      *chip.Config
	workers   int
	slabWords int
	topoName  string
	topoSet   bool
	topo      topoConfig
	sink      *obs.Sink
	acMat     material.Acoustic
	elMat     material.Elastic
	diel      material.Dielectric

	faults   *fault.Config
	recovery *fault.Recovery

	runID         string
	traceID       string
	log           *eventlog.Logger
	flight        *eventlog.FlightRecorder
	flightTo      io.Writer
	progressEvery int
}

// Option configures a Session (functional-options style).
type Option func(*sessionConfig)

// WithEquation selects the wave equation (default opcount.Acoustic). The
// elastic flux variant is part of the equation: opcount.ElasticCentral
// selects the central flux, every other equation defaults to Riemann
// (override with WithFlux).
func WithEquation(eq opcount.Equation) Option {
	return func(c *sessionConfig) { c.eq = eq }
}

// WithMesh sets the periodic benchmark mesh. Required.
func WithMesh(m *mesh.Mesh) Option {
	return func(c *sessionConfig) { c.mesh = m }
}

// WithFlux overrides the flux solver implied by the equation.
func WithFlux(f dg.FluxType) Option {
	return func(c *sessionConfig) { c.flux = f; c.fluxSet = true }
}

// WithDt sets the time-step. Required (use the reference solver's
// MaxStableDt to derive a CFL-stable value).
func WithDt(dt float64) Option {
	return func(c *sessionConfig) { c.dt = dt }
}

// WithChip pins the chip configuration instead of letting the session pick
// the smallest one that fits the model. Construction fails if the model
// does not fit the pinned chip.
func WithChip(cfg chip.Config) Option {
	return func(c *sessionConfig) { c.chip = &cfg }
}

// ErrUnknownTopology reports a WithTopology name outside intercon.Names().
// It is the intercon sentinel re-exported so callers can errors.Is against
// either package.
var ErrUnknownTopology = intercon.ErrUnknownTopology

// topoConfig carries WithTopology's tuning knobs.
type topoConfig struct {
	fanout int
}

// TopologyOption tunes a WithTopology selection.
type TopologyOption func(*topoConfig)

// WithTopologyFanout sets the H-tree fanout (default 4; the other fabrics
// ignore it — their switch concentration is fixed at 4 leaves per switch).
func WithTopologyFanout(n int) TopologyOption {
	return func(t *topoConfig) { t.fanout = n }
}

// WithTopology selects the tile interconnect by name — one of
// intercon.Names(): "htree" (the paper's default), "bus", "mesh", "torus",
// "flatfly", "dragonfly". The empty string keeps the default H-tree. It
// overrides the topology of whatever chip configuration the session
// resolves (pinned via WithChip or auto-sized), so callers pick fabric and
// capacity independently. An unknown name fails NewSession with an error
// satisfying errors.Is(err, ErrUnknownTopology).
func WithTopology(name string, opts ...TopologyOption) Option {
	return func(c *sessionConfig) {
		c.topoName = name
		c.topoSet = true
		for _, o := range opts {
			o(&c.topo)
		}
	}
}

// WithWorkers sets the engine's worker-pool size (default: one per core).
// 1 forces serial block execution; results are bit-identical either way.
func WithWorkers(n int) Option {
	return func(c *sessionConfig) { c.workers = n }
}

// WithNORSlab routes every functional arithmetic instruction through the
// words-wide bit-sliced NOR slab substrate (internal/pim/nor) instead of
// host floating point: the run computes its FP32 adds and multiplies
// gate-by-gate, words*64 lanes at a time, and accumulates gate-level
// activity readable via Engine().NORGateStats(). Results are bit-identical
// to the default path; timing and energy charging are unchanged.
// nor.DefaultSlabWords is the tuned width; values < 1 keep the default
// host-float path.
func WithNORSlab(words int) Option {
	return func(c *sessionConfig) { c.slabWords = words }
}

// WithObs attaches an observability sink. The engine records per-phase
// spans and metrics into it during Run, and Run's final publish adds the
// chip-wide crossbar and engine totals. Without this option the session
// runs fully uninstrumented (the nil-sink fast path).
func WithObs(s *obs.Sink) Option {
	return func(c *sessionConfig) { c.sink = s }
}

// WithAcousticMaterial sets the uniform acoustic material (default: the
// benchmark water, kappa=2.25 rho=1).
func WithAcousticMaterial(m material.Acoustic) Option {
	return func(c *sessionConfig) { c.acMat = m }
}

// WithElasticMaterial sets the uniform elastic material (default: the
// benchmark rock, lambda=2 mu=1 rho=1).
func WithElasticMaterial(m material.Elastic) Option {
	return func(c *sessionConfig) { c.elMat = m }
}

// WithDielectric sets the uniform dielectric (default: vacuum).
func WithDielectric(m material.Dielectric) Option {
	return func(c *sessionConfig) { c.diel = m }
}

// WithFaults enables deterministic fault injection on the chip's block
// write paths (stuck-at cells, transient per-write flips, endurance
// wearout, all seeded). Unless WithRecovery is also given, the full
// fault.DefaultRecovery ladder is enabled alongside.
func WithFaults(cfg fault.Config) Option {
	return func(c *sessionConfig) { c.faults = &cfg }
}

// WithRecovery sets the self-healing policy: per-block ECC scrubbing,
// verify-retry budgets, spare-block reservation, and the solver-level
// checkpoint/rollback guard. Useful alone (health checks without injected
// faults) or paired with WithFaults.
func WithRecovery(rec fault.Recovery) Option {
	return func(c *sessionConfig) { c.recovery = &rec }
}

// WithRunID names the run for event-log attribution and flight dumps
// (wavepimd uses its run ids; CLI runs may leave it empty).
func WithRunID(id string) Option {
	return func(c *sessionConfig) { c.runID = id }
}

// WithTraceID attaches the cluster-level trace id (hex) a coordinator
// assigned this job. Flight dumps carry it so a dump pulled off a worker
// can be correlated with the coordinator's merged trace; "" (the
// default) leaves dumps unchanged.
func WithTraceID(id string) Option {
	return func(c *sessionConfig) { c.traceID = id }
}

// WithProgressEvery makes Run emit a run.progress event (step index plus
// simulated time) to the attached event log after every k completed
// steps. Progress events are deterministic for a fixed spec — the step
// sequence and simulated clock do not depend on wall time — so a tap of
// the event log replays byte-identically under an injected clock. k <= 0
// (the default) disables progress events.
func WithProgressEvery(k int) Option {
	return func(c *sessionConfig) { c.progressEvery = k }
}

// WithEventLog attaches a structured event logger: the session emits
// run.start / run.end / run.error events, and the engine emits one event
// per recovery-rung firing. A nil logger (or omitting the option) keeps
// the silent path.
func WithEventLog(l *eventlog.Logger) Option {
	return func(c *sessionConfig) { c.log = l }
}

// WithFlightRecorder attaches a flight recorder. When Run fails with
// fault.ErrNoSpares, fault.ErrUnrecoverable, or an exceeded deadline, the
// session automatically snapshots the recorder (last events + spans);
// the dump is readable via FlightDump and, when WithFlightDump was also
// given, written as JSON to that writer. Tee the recorder into the event
// logger (Logger.SetRecorder) and build it over the session's tracer to
// capture both halves.
func WithFlightRecorder(fr *eventlog.FlightRecorder) Option {
	return func(c *sessionConfig) { c.flight = fr }
}

// WithFlightDump sets the writer automatic flight dumps are serialized to
// (in addition to being retained on the session).
func WithFlightDump(w io.Writer) Option {
	return func(c *sessionConfig) { c.flightTo = w }
}

// NewSession builds the chip, engine, and compiled solver for one equation.
func NewSession(opts ...Option) (*Session, error) {
	cfg := sessionConfig{
		eq:    opcount.Acoustic,
		acMat: material.Acoustic{Kappa: 2.25, Rho: 1},
		elMat: material.Elastic{Lambda: 2, Mu: 1, Rho: 1},
		diel:  material.Dielectric{Eps: 1, Mu: 1},
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.mesh == nil {
		return nil, fmt.Errorf("wavepim: NewSession requires WithMesh")
	}
	if cfg.dt <= 0 {
		return nil, fmt.Errorf("wavepim: NewSession requires WithDt > 0")
	}
	if !cfg.fluxSet {
		cfg.flux = FluxFor(cfg.eq)
	}
	topoKind, err := cfg.topologyKind()
	if err != nil {
		return nil, err
	}

	s := &Session{cfg: cfg}
	switch cfg.eq {
	case opcount.Acoustic:
		chipCfg := chip.Config512MB()
		if cfg.chip != nil {
			chipCfg = *cfg.chip
		}
		chipCfg = cfg.applyTopology(chipCfg, topoKind)
		s.ac, err = newFunctionalAcousticOn(chipCfg, cfg.mesh, cfg.acMat, cfg.flux, cfg.dt)
		if err == nil {
			s.eng = s.ac.Engine
		}
	case opcount.ElasticCentral, opcount.ElasticRiemann:
		chipCfg, cerr := sessionChip(cfg, cfg.mesh.NumElem*4)
		if cerr != nil {
			return nil, cerr
		}
		chipCfg = cfg.applyTopology(chipCfg, topoKind)
		s.el, err = newFunctionalElasticOn(chipCfg, cfg.mesh, cfg.elMat, cfg.flux, cfg.dt)
		if err == nil {
			s.eng = s.el.Engine
		}
	case opcount.Maxwell:
		chipCfg, cerr := sessionChip(cfg, cfg.mesh.NumElem*4)
		if cerr != nil {
			return nil, cerr
		}
		chipCfg = cfg.applyTopology(chipCfg, topoKind)
		s.mx, err = newFunctionalMaxwellOn(chipCfg, cfg.mesh, cfg.diel, cfg.flux, cfg.dt)
		if err == nil {
			s.eng = s.mx.Engine
		}
	default:
		return nil, fmt.Errorf("wavepim: unknown equation %v", cfg.eq)
	}
	if err != nil {
		return nil, err
	}
	if cfg.workers > 0 {
		s.eng.Workers = cfg.workers
	}
	if cfg.slabWords > 0 {
		s.eng.SlabWords = cfg.slabWords
	}
	s.eng.Obs = cfg.sink
	s.eng.Log = cfg.log
	if cfg.faults != nil || cfg.recovery != nil {
		if err := s.setupFaults(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// recovery resolves the effective recovery policy: the explicit one, else
// the full default ladder when faults are injected, else everything off.
func (s *Session) recovery() fault.Recovery {
	if s.cfg.recovery != nil {
		return *s.cfg.recovery
	}
	if s.cfg.faults != nil {
		return fault.DefaultRecovery()
	}
	return fault.Recovery{}
}

// setupFaults wires the injector into the engine and chip: a block hook
// attaches per-block fault state race-free at materialization, and the
// spare pool is reserved just past the layout's highest used block id.
func (s *Session) setupFaults() error {
	rec := s.recovery()
	var fcfg fault.Config
	if s.cfg.faults != nil {
		fcfg = *s.cfg.faults
	}
	inj := fault.NewInjector(fcfg, rec)
	s.eng.Faults = inj
	if fcfg.Enabled() {
		s.eng.Chip.SetBlockHook(func(b *xbar.Block) { b.Faults = inj.ForBlock(b.ID) })
	}
	if rec.SpareBlocks > 0 {
		maxID := s.place().MaxBlockID()
		nb := s.eng.Chip.Config.NumBlocks()
		if maxID+rec.SpareBlocks >= nb {
			return fmt.Errorf("wavepim: chip %s cannot reserve %d spare blocks: layout uses ids up to %d of %d",
				s.eng.Chip.Config.Name, rec.SpareBlocks, maxID, nb)
		}
		pool := make([]int, rec.SpareBlocks)
		for i := range pool {
			pool[i] = maxID + 1 + i
		}
		s.eng.SparePool = pool
	}
	return nil
}

// place returns the active system's block placement.
func (s *Session) place() *Placement {
	switch {
	case s.ac != nil:
		return s.ac.Place
	case s.el != nil:
		return s.el.Place
	}
	return s.mx.Place
}

// sessionChip resolves the chip configuration: the pinned one, else the
// smallest that fits nBlocks.
func sessionChip(cfg sessionConfig, nBlocks int) (chip.Config, error) {
	if cfg.chip != nil {
		return *cfg.chip, nil
	}
	return chipFor(nBlocks)
}

// topologyKind validates the WithTopology selection eagerly, before any
// chip is built, so an unknown name fails construction with the typed
// sentinel rather than surfacing from deep inside chip.New.
func (c sessionConfig) topologyKind() (chip.InterconnectKind, error) {
	if !c.topoSet {
		return "", nil
	}
	k, err := chip.ParseInterconnect(c.topoName)
	if err != nil {
		return "", fmt.Errorf("wavepim: %w", err)
	}
	return k, nil
}

// applyTopology overrides the resolved chip configuration's interconnect
// with the WithTopology selection.
func (c sessionConfig) applyTopology(cc chip.Config, k chip.InterconnectKind) chip.Config {
	if !c.topoSet {
		return cc
	}
	cc.Interconnect = k
	if c.topo.fanout > 0 {
		cc.Fanout = c.topo.fanout
	}
	return cc
}

// Engine exposes the underlying execution engine (clock, energy, stats).
func (s *Session) Engine() *sim.Engine { return s.eng }

// Obs returns the attached sink (nil when uninstrumented).
func (s *Session) Obs() *obs.Sink { return s.cfg.sink }

// Equation returns the equation the session was built for.
func (s *Session) Equation() opcount.Equation { return s.cfg.eq }

// Topology returns the normalized name of the tile interconnect the
// session's chip was built with ("htree" unless overridden).
func (s *Session) Topology() string { return s.eng.Chip.Config.Interconnect.String() }

// PlanCacheHit reports whether this session's compiled plan was served
// from the process-wide plan cache (true for every session after the
// first with the same equation, flux, order, mesh extent and chip —
// construction then skips block-program compilation entirely).
func (s *Session) PlanCacheHit() bool {
	switch {
	case s.ac != nil:
		return s.ac.CacheHit
	case s.el != nil:
		return s.el.CacheHit
	}
	return s.mx.CacheHit
}

// Acoustic returns the compiled acoustic system, or nil if the session was
// built for another equation. Use it to load initial state and read
// results back.
func (s *Session) Acoustic() *FunctionalAcoustic { return s.ac }

// Elastic returns the compiled elastic system, or nil.
func (s *Session) Elastic() *FunctionalElastic { return s.el }

// Maxwell returns the compiled Maxwell system, or nil.
func (s *Session) Maxwell() *FunctionalMaxwell { return s.mx }

// Step executes one five-stage time-step.
func (s *Session) Step() {
	switch {
	case s.ac != nil:
		s.ac.Step()
	case s.el != nil:
		s.el.Step()
	case s.mx != nil:
		s.mx.Step()
	}
}

// ErrDeadline reports that Run stopped because the context deadline
// expired. Step is the last fully completed time-step, so a caller can
// resume or account partial progress; errors.Is(err,
// context.DeadlineExceeded) remains true through Unwrap.
type ErrDeadline struct {
	Step int
	Err  error
}

func (e *ErrDeadline) Error() string {
	return fmt.Sprintf("wavepim: deadline exceeded after %d completed steps: %v", e.Step, e.Err)
}

func (e *ErrDeadline) Unwrap() error { return e.Err }

// fieldCheckpoint is one solver-state snapshot for rollback-and-retry.
type fieldCheckpoint struct {
	step   int
	normSq float64
	ac     *dg.AcousticState
	el     *dg.ElasticState
	mx     *dg.MaxwellState
}

// Run executes n time-steps under ctx. Cancellation is honored both at
// block granularity inside the engine's worker pool and between RK
// time-steps; an expired deadline surfaces as *ErrDeadline carrying the
// last completed step. With a recovery policy (WithFaults/WithRecovery)
// Run additionally checks solver health every CheckpointEvery steps —
// non-finite values or norm blow-up trigger a rollback to the last
// healthy checkpoint and a re-run of the damaged span, up to MaxRollbacks
// (then fault.ErrUnrecoverable). On a clean finish it publishes the
// engine and chip totals to the attached sink.
//
// With WithEventLog the run emits run.start / run.end / run.error events;
// with WithFlightRecorder a failure the ladder could not heal (ErrNoSpares,
// ErrUnrecoverable) or an exceeded deadline automatically snapshots the
// recorder (see FlightDump).
func (s *Session) Run(ctx context.Context, n int) error {
	if l := s.cfg.log; l != nil {
		l.Info("run.start",
			eventlog.Str("equation", s.cfg.eq.String()),
			eventlog.Int("steps", n))
	}
	err := s.runSteps(ctx, n)
	s.finishRun(err)
	return err
}

// finishRun emits the run-terminating event and, for failures the
// recovery ladder could not absorb, snapshots the flight recorder.
func (s *Session) finishRun(err error) {
	l := s.cfg.log
	if err == nil {
		if l != nil {
			l.Info("run.end",
				eventlog.F64("sim_seconds", s.eng.TotalTime()),
				eventlog.F64("energy_joules", s.eng.TotalEnergy))
		}
		return
	}
	reason := dumpReason(err)
	if l != nil {
		kind := reason
		if kind == "" {
			kind = "canceled"
		}
		l.Error("run.error",
			eventlog.Str("reason", kind),
			eventlog.Str("error", err.Error()))
	}
	if reason == "" || s.cfg.flight == nil {
		return
	}
	s.lastDump = s.cfg.flight.Dump(reason, s.cfg.runID)
	s.lastDump.Trace = s.cfg.traceID
	if s.cfg.flightTo != nil {
		s.lastDump.WriteJSON(s.cfg.flightTo)
	}
	if l != nil {
		l.Error("flight.dump",
			eventlog.Str("reason", reason),
			eventlog.Int("events", len(s.lastDump.Events)),
			eventlog.Int("spans", len(s.lastDump.Spans)))
	}
}

// dumpReason classifies run errors that warrant a flight dump; plain
// cancellation returns "".
func dumpReason(err error) string {
	var dl *ErrDeadline
	switch {
	case errors.Is(err, fault.ErrNoSpares):
		return "no_spares"
	case errors.Is(err, fault.ErrUnrecoverable):
		return "unrecoverable"
	case errors.As(err, &dl):
		return "deadline"
	}
	return ""
}

// FlightDump returns the most recent automatic flight-recorder snapshot,
// or nil if no run has failed with a dump-triggering error.
func (s *Session) FlightDump() *eventlog.FlightDump { return s.lastDump }

// runSteps is the stepping loop behind Run.
func (s *Session) runSteps(ctx context.Context, n int) error {
	s.eng.SetContext(ctx)
	defer s.eng.SetContext(nil)

	rec := s.recovery()
	guarded := rec.CheckpointEvery > 0
	var (
		ck        fieldCheckpoint
		rollbacks int
	)
	if guarded {
		ck = s.captureState(0)
		s.chargeCheckpoint("sim.fault.checkpoint")
		if s.eng.Faults != nil {
			s.eng.Faults.NoteCheckpoint()
		}
	}
	for i := 0; i < n; {
		s.Step()
		if err := s.eng.Err(); err != nil {
			return s.runErr(err, i)
		}
		if err := ctx.Err(); err != nil {
			return s.runErr(err, i)
		}
		i++
		if k := s.cfg.progressEvery; k > 0 && s.cfg.log != nil && i%k == 0 {
			s.cfg.log.Info("run.progress",
				eventlog.Int("step", i),
				eventlog.Int("of", n),
				eventlog.F64("sim_seconds", s.eng.TotalTime()))
		}
		if !guarded || (i%rec.CheckpointEvery != 0 && i != n) {
			continue
		}
		cand := s.captureState(i)
		if err := dg.CheckHealth(i, ck.normSq, rec.BlowupFactor, s.stateSlices(cand)...); err != nil {
			if rollbacks >= rec.MaxRollbacks {
				return fmt.Errorf("wavepim: %v: %w", err, fault.ErrUnrecoverable)
			}
			rollbacks++
			if s.eng.Faults != nil {
				s.eng.Faults.NoteRollback()
			}
			s.restoreState(ck)
			ph := s.chargeCheckpoint("sim.fault.rollback")
			if sink := s.cfg.sink; sink != nil {
				sink.CounterVec("sim.fault.rung_events", "rung").With("rollback").Inc()
				sink.HistogramVec("sim.fault.mttr_seconds", "rung").With("rollback").Observe(ph.Dur)
			}
			if s.cfg.log != nil {
				s.cfg.log.Warn("fault.rung",
					eventlog.Str("rung", "rollback"),
					eventlog.Int("step", i),
					eventlog.Int("back_to", ck.step),
					eventlog.F64("cost_seconds", ph.Dur))
			}
			i = ck.step
			continue
		}
		ck = cand
		s.chargeCheckpoint("sim.fault.checkpoint")
		if s.eng.Faults != nil {
			s.eng.Faults.NoteCheckpoint()
		}
	}
	s.Publish()
	return nil
}

// runErr maps a run-stopping error to its typed form.
func (s *Session) runErr(err error, completedSteps int) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return &ErrDeadline{Step: completedSteps, Err: err}
	}
	return err
}

// captureState reads the current field state off the chip.
func (s *Session) captureState(step int) fieldCheckpoint {
	ck := fieldCheckpoint{step: step}
	switch {
	case s.ac != nil:
		ck.ac = dg.NewAcousticState(s.cfg.mesh)
		s.ac.ReadState(ck.ac)
	case s.el != nil:
		ck.el = dg.NewElasticState(s.cfg.mesh)
		s.el.ReadState(ck.el)
	case s.mx != nil:
		ck.mx = dg.NewMaxwellState(s.cfg.mesh)
		s.mx.ReadState(ck.mx)
	}
	ck.normSq = dg.NormSq(s.stateSlices(ck)...)
	return ck
}

// stateSlices returns the variable arrays of a checkpoint.
func (s *Session) stateSlices(ck fieldCheckpoint) [][]float64 {
	switch {
	case ck.ac != nil:
		return ck.ac.Slices()
	case ck.el != nil:
		return ck.el.Slices()
	case ck.mx != nil:
		return ck.mx.Slices()
	}
	return nil
}

// restoreState writes a checkpoint's fields back onto the chip.
func (s *Session) restoreState(ck fieldCheckpoint) {
	switch {
	case ck.ac != nil:
		s.ac.WriteState(ck.ac)
	case ck.el != nil:
		s.el.WriteState(ck.el)
	case ck.mx != nil:
		s.mx.WriteState(ck.mx)
	}
}

// chargeCheckpoint accounts a checkpoint store (or rollback load+rewrite)
// as an off-chip DRAM transaction of the state's size on the simulated
// timeline, returning the committed phase (its Dur is the rung's cost).
func (s *Session) chargeCheckpoint(name string) sim.Phase {
	nvars := 4 // acoustic
	switch {
	case s.el != nil:
		nvars = 9
	case s.mx != nil:
		nvars = 6
	}
	bytes := int64(s.cfg.mesh.NumElem*s.cfg.mesh.NodesPerEl*nvars) * 4
	return s.eng.Sequence(s.eng.ExecDRAM(name, bytes))
}

// FaultReport returns the per-run fault summary (zero value when the
// session runs without WithFaults/WithRecovery).
func (s *Session) FaultReport() fault.Report {
	return s.eng.FaultReport()
}

// Publish flushes run-level totals to the sink: engine gauges
// (sim.total_seconds, energies, counts) and the chip-wide crossbar
// counters (xbar.*, summing every block's locally accumulated Stats).
// Call it after stepping manually via Step; Run does it for you. No-op
// without a sink.
func (s *Session) Publish() {
	sink := s.cfg.sink
	if sink == nil {
		return
	}
	s.eng.PublishTotals()
	s.eng.Chip.TotalBlockStats().Publish(sink.Reg)
	pc := PlanCacheSnapshot()
	sink.Gauge("wavepim.plan_cache.hits").Set(float64(pc.Hits))
	sink.Gauge("wavepim.plan_cache.misses").Set(float64(pc.Misses))
	sink.Gauge("wavepim.plan_cache.entries").Set(float64(pc.Entries))
}

// WriteTrace writes the engine's recorded phase spans as a Chrome
// trace_event JSON document (chrome://tracing, Perfetto). No spans are
// recorded without an attached sink.
func (s *Session) WriteTrace(w io.Writer) error {
	return s.cfg.sink.WriteTrace(w)
}
