package wavepim

import (
	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/sim"
)

// Options controls a timed benchmark run.
type Options struct {
	TimeSteps int  // simulation length; 0 means the paper's 1024
	Pipelined bool // apply the Section 6.3 pipeline (Figure 10)
	Morton    bool // Morton element placement (versus row-major)
	// Obs, when non-nil, receives the run's observability output: the
	// Figure 13 stage-pipeline spans (mirroring Result.Timeline), the
	// engine's instruction-class counters, and run-level gauges
	// (run.* namespace). Nil disables instrumentation.
	Obs *obs.Sink
}

// DefaultOptions returns the evaluation defaults.
func DefaultOptions() Options {
	return Options{TimeSteps: params.TimeStepsPerRun, Pipelined: true, Morton: true}
}

// Breakdown splits a run's time by activity class. Compute and
// IntraTransfer together are Figure 14's "intra-element" time;
// InterTransfer is its "inter-element" time.
type Breakdown struct {
	ComputeSec       float64 // in-block kernel execution
	IntraTransferSec float64 // within-element block-to-block movement
	InterTransferSec float64 // neighbor-element (flux) movement
	DRAMSec          float64 // off-chip batching traffic
	HostSec          float64 // host sqrt/inverse preprocessing (serial share)
}

// StagePhase is one span of the per-stage timeline (Figure 13).
type StagePhase struct {
	Name  string
	Start float64
	Dur   float64
}

// Result is the outcome of one timed run.
type Result struct {
	Plan          Plan
	Opts          Options
	FluxType      dg.FluxType
	StageSec      float64 // one RK stage, all batches
	StepSec       float64 // one time-step (five stages)
	TotalSec      float64 // whole run incl. setup
	DynamicJ      float64
	StaticJ       float64
	EnergyJ       float64
	Breakdown     Breakdown
	Timeline      []StagePhase // one batch's stage pipeline (Figure 13)
	InstrPerStage int64
	// Intercon is the congestion view of the priced stage: which
	// interconnect ran, how many transfers backpressured behind busy
	// switches, and the per-switch occupancy (seconds busy) of the tile
	// and chip fabrics.
	Intercon sim.InterconReport
}

// FluxFor returns the flux solver of a benchmark: the acoustic group and
// the Elastic-Riemann group use the Riemann solver (whose sqrt/inverse
// preprocessing the host serves); Elastic-Central uses the central solver.
func FluxFor(eq opcount.Equation) dg.FluxType {
	if eq == opcount.ElasticCentral {
		return dg.CentralFlux
	}
	return dg.RiemannFlux
}

// Run times one benchmark on one chip configuration.
func Run(b opcount.Benchmark, cfg chip.Config, opt Options) (Result, error) {
	if opt.TimeSteps <= 0 {
		opt.TimeSteps = params.TimeStepsPerRun
	}
	plan, err := MakePlan(b, cfg)
	if err != nil {
		return Result{}, err
	}
	r := newRunner(plan, opt)
	return r.run()
}

// RunPlan times a pre-built plan (used by ablation benches that force
// non-default layouts or placements).
func RunPlan(plan Plan, opt Options) (Result, error) {
	if opt.TimeSteps <= 0 {
		opt.TimeSteps = params.TimeStepsPerRun
	}
	r := newRunner(plan, opt)
	return r.run()
}

// ---------------------------------------------------------------------------

type runner struct {
	plan Plan
	opt  Options
	comp *Compiler
	eng  *sim.Engine
	np   int
	nn   int

	// Batch geometry.
	ea     int // elements per axis in x and y
	slices int // z-slices resident per batch
	elems  int // elements per batch

	bd Breakdown
	tl []StagePhase
}

func newRunner(plan Plan, opt Options) *runner {
	ch, err := chip.New(plan.Chip)
	if err != nil {
		panic(err)
	}
	np := opcount.Np
	eng := sim.New(ch, false)
	eng.Obs = opt.Obs
	r := &runner{
		plan: plan, opt: opt,
		comp:   NewCompiler(plan, np, FluxFor(plan.Bench.Eq)),
		eng:    eng,
		np:     np,
		nn:     np * np * np,
		ea:     1 << plan.Bench.Refinement,
		slices: plan.SlicesPerBatch,
	}
	r.elems = r.ea * r.ea * r.slices
	return r
}

// slotOf places a batch-relative element at a block slot: Morton order in
// full-cube plans, slice-major Morton-2D order for batched plans (slices
// must stay contiguous for the Figure 7 schedule).
func (r *runner) slotOf(ex, ey, ez int) int {
	spe := r.plan.SlotsPerElem
	if !r.opt.Morton {
		return ((ez*r.ea+ey)*r.ea + ex) * spe
	}
	if r.slices == r.ea { // full cube resident
		return Morton3(ex, ey, ez) * spe
	}
	return (ez*r.ea*r.ea + morton2(ex, ey)) * spe
}

func morton2(x, y int) int {
	var m int
	for b := 0; b < 10; b++ {
		m |= (x>>b&1)<<(2*b) | (y>>b&1)<<(2*b+1)
	}
	return m
}

// forEachElem iterates the batch's elements.
func (r *runner) forEachElem(fn func(ex, ey, ez int)) {
	for ez := 0; ez < r.slices; ez++ {
		for ey := 0; ey < r.ea; ey++ {
			for ex := 0; ex < r.ea; ex++ {
				fn(ex, ey, ez)
			}
		}
	}
}

// neighborSlot returns the slot of the face-f neighbor, wrapping at the
// batch boundary (z-boundary faces are really inter-batch; their data
// arrives via the Figure 7 DRAM slice load, and the wrapped on-chip
// transfer stands in for the same volume of movement).
func (r *runner) neighborSlot(ex, ey, ez int, f int) int {
	switch f {
	case 0:
		ex = (ex - 1 + r.ea) % r.ea
	case 1:
		ex = (ex + 1) % r.ea
	case 2:
		ey = (ey - 1 + r.ea) % r.ea
	case 3:
		ey = (ey + 1) % r.ea
	case 4:
		ez = (ez - 1 + r.slices) % r.slices
	case 5:
		ez = (ez + 1) % r.slices
	}
	return r.slotOf(ex, ey, ez)
}

// pairTransfers builds aggregated element-local transfers: for every batch
// element, move words from slot+srcOff to slot+dstOff.
func (r *runner) pairTransfers(pairs [][3]int) []sim.RowTransfer {
	out := make([]sim.RowTransfer, 0, len(pairs)*r.elems)
	r.forEachElem(func(ex, ey, ez int) {
		base := r.slotOf(ex, ey, ez)
		for _, p := range pairs {
			out = append(out, sim.RowTransfer{
				SrcBlock: base + p[0], DstBlock: base + p[1], Words: p[2]})
		}
	})
	return out
}

// fetchTransfers builds the neighbor fetches of one face: per element,
// move words from the neighbor's slot+srcOff to this element's slot+dstOff.
func (r *runner) fetchTransfers(face int, pairs [][3]int) []sim.RowTransfer {
	out := make([]sim.RowTransfer, 0, len(pairs)*r.elems)
	r.forEachElem(func(ex, ey, ez int) {
		me := r.slotOf(ex, ey, ez)
		nb := r.neighborSlot(ex, ey, ez, face)
		for _, p := range pairs {
			out = append(out, sim.RowTransfer{
				SrcBlock: nb + p[0], DstBlock: me + p[1], Words: p[2]})
		}
	})
	return out
}

// groupDur sums phase durations; groupEnergy sums their energy.
func groupDur(ps []sim.Phase) float64 {
	var d float64
	for _, p := range ps {
		d += p.Dur
	}
	return d
}

func groupEnergy(ps []sim.Phase) float64 {
	var e float64
	for _, p := range ps {
		e += p.EnergyJ
	}
	return e
}

// maxDur returns the longest duration among parallel phases.
func maxDur(ps []sim.Phase) float64 {
	var d float64
	for _, p := range ps {
		if p.Dur > d {
			d = p.Dur
		}
	}
	return d
}

// stagePieces prices every phase group of one RK stage for one batch.
type stagePieces struct {
	volume       []sim.Phase // sequential: intra transfers + block programs
	volumeIsXfer []bool
	fetch        [6]sim.Phase // per-face neighbor fetches
	flux         [6]sim.Phase // per-face compute
	gather       []sim.Phase  // expanded-acoustic pressure-piece gather
	gatherIsXfer []bool
	integ        sim.Phase
	host         sim.Phase
}

func (r *runner) price() stagePieces {
	var sp stagePieces
	e := r.eng
	n := r.elems
	np2 := r.np * r.np
	nn := r.nn
	flux := r.comp.Flux
	riemann := flux == dg.RiemannFlux

	addVol := func(p sim.Phase, isXfer bool) {
		sp.volume = append(sp.volume, p)
		sp.volumeIsXfer = append(sp.volumeIsXfer, isXfer)
	}

	if r.plan.Bench.Eq == opcount.Maxwell {
		// The extension benchmark: two compute blocks (E at slot 0, H at
		// slot 1) in a four-slot element.
		addVol(e.ExecTransfers("dup-fields", r.pairTransfers([][3]int{
			{0, 1, 3 * nn}, {1, 0, 3 * nn}})), true)
		addVol(e.ExecBlocksN("volume", r.comp.VolumeMaxwell(true), 2*n, 0), false)
		for f := 0; f < 6; f++ {
			sp.fetch[f] = e.ExecTransfers("fetch", r.fetchTransfers(f, [][3]int{
				{0, 0, 2 * np2}, {1, 0, 2 * np2}, // neighbor E and H -> my E block
				{0, 1, 2 * np2}, {1, 1, 2 * np2}, // and -> my H block
			}))
			fp := []sim.Phase{
				e.ExecBlocksN("flux-E", r.comp.FluxMaxwell(faceOf(f), true), n, 0),
				e.ExecBlocksN("flux-H", r.comp.FluxMaxwell(faceOf(f), false), n, 0),
			}
			sp.flux[f] = sim.Phase{Name: "flux", Kind: "blocks", Dur: maxDur(fp), EnergyJ: groupEnergy(fp)}
		}
		sp.integ = e.ExecBlocksN("integration", r.comp.IntegrationElastic(0), 2*n, 0)
		sp.host = e.ExecHost("host-preprocess", n, 2*n)
		return sp
	}

	switch r.plan.Layout {
	case AcousticOneBlock:
		addVol(e.ExecBlocksN("volume", r.comp.VolumeOneBlock(), n, 0), false)
		for f := 0; f < 6; f++ {
			sp.fetch[f] = e.ExecTransfers("fetch", r.fetchTransfers(f, [][3]int{{0, 0, 4 * np2}}))
			sp.flux[f] = e.ExecBlocksN("flux", r.comp.FluxOneBlock(faceOf(f)), n, 0)
		}
		sp.integ = e.ExecBlocksN("integration", r.comp.IntegrationOneBlock(0), n, 0)

	case AcousticFourBlock:
		addVol(e.ExecTransfers("dup-p", r.pairTransfers([][3]int{{0, 1, nn}, {0, 2, nn}, {0, 3, nn}})), true)
		// The three axis templates have identical cost, and the three axis
		// blocks run concurrently: duration of one template, energy of 3n.
		addVol(e.ExecBlocksN("volume-v", r.comp.VolumeVBlock(0), 3*n, 0), false)
		addVol(e.ExecTransfers("div-pieces", r.pairTransfers([][3]int{{1, 0, nn}, {2, 0, nn}, {3, 0, nn}})), true)
		addVol(e.ExecBlocksN("volume-p", r.comp.VolumePBlock(), n, 0), false)
		for f := 0; f < 6; f++ {
			a := f / 2
			sp.fetch[f] = e.ExecTransfers("fetch", r.fetchTransfers(f, [][3]int{
				{0, 1 + a, np2},     // neighbor p -> my axis block
				{1 + a, 1 + a, np2}, // neighbor v[a] -> my axis block
			}))
			sp.flux[f] = e.ExecBlocksN("flux", r.comp.FluxVBlock(faceOf(f), f%2 == 0), n, 0)
		}
		sp.gather = append(sp.gather,
			e.ExecTransfers("flux-p-pieces", r.pairTransfers([][3]int{{1, 0, nn}, {2, 0, nn}, {3, 0, nn}})),
			e.ExecBlocksN("flux-p-gather", r.comp.FluxPBlockGather(), n, 0))
		sp.gatherIsXfer = []bool{true, false}
		sp.integ = e.ExecBlocksN("integration", r.comp.IntegrationExpanded(0), 4*n, 0)

	case ElasticFourBlock:
		addVol(e.ExecTransfers("dup-vars", r.pairTransfers([][3]int{
			{2, 0, 3 * nn}, {2, 1, 3 * nn}, {0, 2, 3 * nn}, {1, 2, 3 * nn}})), true)
		bd := r.comp.VolumeElasticDiag()
		bs := r.comp.VolumeElasticShear()
		bv := r.comp.VolumeElasticVel()
		pieces := []sim.Phase{
			e.ExecBlocksN("volume-diag", bd, n, 0),
			e.ExecBlocksN("volume-shear", bs, n, 0),
			e.ExecBlocksN("volume-vel", bv, n, 0),
		}
		addVol(sim.Phase{Name: "volume", Kind: "blocks", Dur: maxDur(pieces), EnergyJ: groupEnergy(pieces)}, false)
		for f := 0; f < 6; f++ {
			pairs := [][3]int{
				{2, 0, np2},     // neighbor v[a] -> Bd
				{2, 1, 2 * np2}, // neighbor v[j] -> Bs
				{0, 2, np2},     // neighbor sigma diag -> Bv
				{1, 2, 2 * np2}, // neighbor sigma shear -> Bv
			}
			if riemann {
				pairs = append(pairs,
					[3]int{0, 0, np2},     // neighbor sigma_aa -> Bd
					[3]int{1, 1, 2 * np2}, // neighbor sigma_aj -> Bs
					[3]int{2, 2, 3 * np2}) // neighbor v -> Bv
			}
			sp.fetch[f] = e.ExecTransfers("fetch", r.fetchTransfers(f, pairs))
			fp := []sim.Phase{
				e.ExecBlocksN("flux-diag", r.comp.FluxElasticDiag(faceOf(f)), n, 0),
				e.ExecBlocksN("flux-shear", r.comp.FluxElasticShear(faceOf(f)), n, 0),
				e.ExecBlocksN("flux-vel", r.comp.FluxElasticVel(faceOf(f)), n, 0),
			}
			sp.flux[f] = sim.Phase{Name: "flux", Kind: "blocks", Dur: maxDur(fp), EnergyJ: groupEnergy(fp)}
		}
		sp.integ = e.ExecBlocksN("integration", r.comp.IntegrationElastic(0), 3*n, 0)

	case ElasticTwelveBlock:
		var dup [][3]int
		for a := 0; a < 3; a++ { // diag blocks need all three velocities
			for v := 0; v < 3; v++ {
				dup = append(dup, [3]int{6 + v, a, nn})
			}
		}
		shearVels := [3][2]int{{0, 1}, {0, 2}, {1, 2}}
		for k, sv := range shearVels { // shear blocks need two velocities
			dup = append(dup, [3]int{6 + sv[0], 3 + k, nn}, [3]int{6 + sv[1], 3 + k, nn})
		}
		sigmaOf := [3][3]int{{0, 3, 4}, {3, 1, 5}, {4, 5, 2}} // slot of sigma_{i,axis}
		for i := 0; i < 3; i++ {                              // velocity blocks need sigma_i*
			for a := 0; a < 3; a++ {
				dup = append(dup, [3]int{sigmaOf[i][a], 6 + i, nn})
			}
		}
		addVol(e.ExecTransfers("dup-vars", r.pairTransfers(dup)), true)
		pieces := []sim.Phase{
			e.ExecBlocksN("volume-diag", r.comp.Volume12Diag(0), 3*n, 0),
			e.ExecBlocksN("volume-shear", r.comp.Volume12Shear(0, 1), 3*n, 0),
			e.ExecBlocksN("volume-vel", r.comp.Volume12Vel(), 3*n, 0),
		}
		addVol(sim.Phase{Name: "volume", Kind: "blocks", Dur: maxDur(pieces), EnergyJ: groupEnergy(pieces)}, false)
		for f := 0; f < 6; f++ {
			a := f / 2
			var pairs [][3]int
			for d := 0; d < 3; d++ { // three diag blocks fetch neighbor v[a]
				pairs = append(pairs, [3]int{6 + a, d, np2})
				if riemann {
					pairs = append(pairs, [3]int{a, d, np2})
				}
			}
			for k, sv := range shearVels { // participating shear blocks
				if sv[0] == a || sv[1] == a {
					j := sv[0] + sv[1] - a
					pairs = append(pairs, [3]int{6 + j, 3 + k, np2})
					if riemann {
						pairs = append(pairs, [3]int{3 + k, 3 + k, np2})
					}
				}
			}
			for i := 0; i < 3; i++ { // velocity blocks fetch sigma_ia
				pairs = append(pairs, [3]int{sigmaOf[i][a], 6 + i, np2})
				if riemann {
					pairs = append(pairs, [3]int{6 + i, 6 + i, np2})
				}
			}
			sp.fetch[f] = e.ExecTransfers("fetch", r.fetchTransfers(f, pairs))
			sp.flux[f] = e.ExecBlocksN("flux", r.comp.Flux12Var(faceOf(f)), 9*n, 0)
		}
		sp.integ = e.ExecBlocksN("integration", r.comp.IntegrationExpanded(0), 9*n, 0)
	}

	// Host preprocessing (Section 4.3): sqrt and inverse units for the
	// Riemann flux coefficients plus the 1/rho inverses.
	var sqrts, invs int
	switch {
	case r.plan.Bench.Eq == opcount.Acoustic:
		sqrts, invs = n, 2*n
	case riemann:
		sqrts, invs = 2*n, 4*n
	default:
		sqrts, invs = 0, n
	}
	sp.host = e.ExecHost("host-preprocess", sqrts, invs)
	return sp
}

func faceOf(f int) mesh.Face { return mesh.Face(f) }

// run assembles the full-run timing from one priced stage.
func (r *runner) run() (Result, error) {
	sp := r.price()
	res := Result{Plan: r.plan, Opts: r.opt, FluxType: r.comp.Flux}

	// --- One batch's stage time and energy ---
	volDur := groupDur(sp.volume)
	gatherDur := groupDur(sp.gather)
	fetchMinus := sp.fetch[0].Dur + sp.fetch[2].Dur + sp.fetch[4].Dur
	fetchPlus := sp.fetch[1].Dur + sp.fetch[3].Dur + sp.fetch[5].Dur
	fluxMinus := sp.flux[0].Dur + sp.flux[2].Dur + sp.flux[4].Dur
	fluxPlus := sp.flux[1].Dur + sp.flux[3].Dur + sp.flux[5].Dur

	var stage float64
	if r.opt.Pipelined {
		// Figure 10: minus-direction fetch and host preprocessing overlap
		// Volume; plus-direction fetch overlaps minus-direction compute.
		t1 := max3(volDur, fetchMinus, sp.host.Dur)
		t2 := maxf(fluxMinus, fetchPlus)
		stage = t1 + t2 + fluxPlus + gatherDur + sp.integ.Dur
		r.timeline(sp, volDur, fetchMinus, fluxMinus, fetchPlus, fluxPlus, gatherDur)
	} else {
		stage = volDur + sp.host.Dur +
			fetchMinus + fluxMinus + fetchPlus + fluxPlus +
			gatherDur + sp.integ.Dur
	}

	var dynamic float64
	for _, p := range sp.volume {
		dynamic += p.EnergyJ
	}
	for f := 0; f < 6; f++ {
		dynamic += sp.fetch[f].EnergyJ + sp.flux[f].EnergyJ
	}
	dynamic += groupEnergy(sp.gather) + sp.integ.EnergyJ + sp.host.EnergyJ

	// --- Breakdown (per stage, one batch) ---
	for i, p := range sp.volume {
		if sp.volumeIsXfer[i] {
			r.bd.IntraTransferSec += p.Dur
		} else {
			r.bd.ComputeSec += p.Dur
		}
	}
	for i, p := range sp.gather {
		if sp.gatherIsXfer[i] {
			r.bd.IntraTransferSec += p.Dur
		} else {
			r.bd.ComputeSec += p.Dur
		}
	}
	for f := 0; f < 6; f++ {
		r.bd.InterTransferSec += sp.fetch[f].Dur
		r.bd.ComputeSec += sp.flux[f].Dur
	}
	r.bd.ComputeSec += sp.integ.Dur
	r.bd.HostSec = sp.host.Dur

	// --- Batching DRAM traffic (Figure 6/7) ---
	nvars := int64(r.plan.Bench.Eq.NumVars())
	stateBytes := int64(r.elems) * int64(r.nn) * nvars * 2 * 4 // variables + auxiliaries
	var dramPerStage float64
	if r.plan.Batches > 1 {
		// Per batch per stage: store previous outputs, load next inputs,
		// plus the extra inter-batch slice load of the Figure 7 flux
		// schedule.
		sliceBytes := int64(r.ea*r.ea) * int64(r.nn) * nvars * 4
		ph := r.eng.ExecDRAM("batch-swap", 2*stateBytes+sliceBytes)
		dramPerStage = ph.Dur
		dynamic += ph.EnergyJ
		r.bd.DRAMSec = ph.Dur
	}

	batches := float64(r.plan.Batches)
	stageAll := (stage + dramPerStage) * batches
	res.StageSec = stageAll
	res.StepSec = stageAll * dg.NumStages
	res.InstrPerStage = r.eng.InstrCount

	// --- Setup: initial model load plus per-block constant/LUT loading ---
	constBytes := int64(r.plan.BlocksUsed()) * 3 * 1024 // dshape/mask/const rows
	setup := r.eng.ExecDRAM("setup-load", stateBytes*int64(r.plan.Batches)+constBytes)
	lutProg := make([]isa.Instr, 0, 24)
	for f := 0; f < 24; f++ {
		lutProg = append(lutProg, isa.Instr{Op: isa.OpLUT, Row: 0, SrcOff: 0, LUTBlock: 0, DstOff: 1})
	}
	lut := r.eng.ExecBlocksN("lut-consts", lutProg, r.plan.BlocksUsed(), 3)
	setupDur := setup.Dur + lut.Dur
	setupEnergy := setup.EnergyJ + lut.EnergyJ

	steps := float64(r.opt.TimeSteps)
	res.TotalSec = setupDur + steps*res.StepSec
	res.DynamicJ = setupEnergy + steps*dg.NumStages*batches*dynamic
	res.StaticJ = chip.SystemPowerW(r.plan.Chip) * res.TotalSec
	res.EnergyJ = res.DynamicJ + res.StaticJ

	// Scale the per-stage breakdown to the full run.
	scale := steps * dg.NumStages * batches
	res.Breakdown = Breakdown{
		ComputeSec:       r.bd.ComputeSec * scale,
		IntraTransferSec: r.bd.IntraTransferSec * scale,
		InterTransferSec: r.bd.InterTransferSec * scale,
		DRAMSec:          r.bd.DRAMSec * scale,
		HostSec:          r.bd.HostSec * scale,
	}
	res.Timeline = r.tl
	res.Intercon = r.eng.InterconReport()
	r.publish(res)
	return res, nil
}

// publish exports the run's observability output: one span per Figure 13
// stage-pipeline phase (identical to Result.Timeline, so a Chrome trace of
// the run shows the Volume/Flux/Integration execution timeline) and
// run-level gauges. No-op without a sink.
func (r *runner) publish(res Result) {
	sink := r.opt.Obs
	if sink == nil {
		return
	}
	for _, sp := range res.Timeline {
		sink.Span(sp.Name, "stage", sp.Start, sp.Dur, 5)
	}
	reg := sink.Reg
	reg.Gauge("run.stage_seconds").Set(res.StageSec)
	reg.Gauge("run.step_seconds").Set(res.StepSec)
	reg.Gauge("run.total_seconds").Set(res.TotalSec)
	reg.Gauge("run.dynamic_joules").Set(res.DynamicJ)
	reg.Gauge("run.static_joules").Set(res.StaticJ)
	reg.Gauge("run.energy_joules").Set(res.EnergyJ)
	reg.Gauge("run.instr_per_stage").Set(float64(res.InstrPerStage))
	reg.Gauge("run.batches").Set(float64(r.plan.Batches))
	reg.Gauge("run.breakdown.compute_seconds").Set(res.Breakdown.ComputeSec)
	reg.Gauge("run.breakdown.intra_transfer_seconds").Set(res.Breakdown.IntraTransferSec)
	reg.Gauge("run.breakdown.inter_transfer_seconds").Set(res.Breakdown.InterTransferSec)
	reg.Gauge("run.breakdown.dram_seconds").Set(res.Breakdown.DRAMSec)
	reg.Gauge("run.breakdown.host_seconds").Set(res.Breakdown.HostSec)
	r.eng.PublishTotals()
}

// timeline lays out one batch-stage's Figure 13 pipeline spans.
func (r *runner) timeline(sp stagePieces, vol, fetchM, fluxM, fetchP, fluxP, gather float64) {
	t1 := max3(vol, fetchM, sp.host.Dur)
	t2 := maxf(fluxM, fetchP)
	r.tl = []StagePhase{
		{Name: "Volume", Start: 0, Dur: vol},
		{Name: "CPU Host sqrt/inverse", Start: 0, Dur: sp.host.Dur},
		{Name: "Flux (-1) data fetch", Start: 0, Dur: fetchM},
		{Name: "Flux (-1) compute", Start: t1, Dur: fluxM},
		{Name: "Flux (+1) data fetch", Start: t1, Dur: fetchP},
		{Name: "Flux (+1) compute", Start: t1 + t2, Dur: fluxP},
		{Name: "Integration", Start: t1 + t2 + fluxP + gather, Dur: sp.integ.Dur},
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func max3(a, b, c float64) float64 { return maxf(a, maxf(b, c)) }
