package wavepim

import (
	"math"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/isa"
	"wavepim/internal/pim/xbar"
)

// LUT-served constant loading (Section 4.3): instead of the host writing
// material-derived values into every element block, the host precomputes
// them once (its sqrt/inverse units), stores them in a reserved look-up
// table block, and each element block fetches its own values with OpLUT
// instructions. The fetch uses Algorithm 1's in-place idiom: the host
// seeds each destination word with the LUT *index*, and the LUT
// instruction overwrites it with the fetched content (R_1 reads the index
// before W_1 writes the value, so in-place is safe).

// lutEntriesPerElem is the number of LUT-served words per acoustic
// element: 24 per-face flux coefficients plus the material scalars.
const (
	lutFluxEntries    = 24
	lutScalarEntries  = 4 // -kappa, -1/rho, lift*kappa, lift/rho slots
	lutEntriesPerElem = lutFluxEntries + lutScalarEntries
)

// lutScalarWords lists which RowScalarConsts words are LUT-served.
var lutScalarWords = [lutScalarEntries]int{ConstNegKappa, ConstNegInvRho, ConstLiftKappa, ConstLiftInvRho}

// acousticLUTValues computes one element's LUT-served constants in entry
// order (the host-side preprocessing the A72's sqrt/inverse units do).
func (c *Compiler) acousticLUTValues(m *mesh.Mesh, mat material.Acoustic) []float32 {
	op := dg.NewOperator(m)
	lift := op.Lift()
	z := mat.Impedance() // host sqrt
	vals := make([]float32, 0, lutEntriesPerElem)
	for f := mesh.Face(0); f < mesh.NumFaces; f++ {
		s := float64(f.Sign())
		c1 := s * lift * mat.Kappa / 2
		c3 := s * lift / (2 * mat.Rho) // host inverse
		var c2, c4 float64
		if c.Flux == dg.RiemannFlux {
			c2 = -lift * mat.Kappa / (2 * z) // host inverse of the sqrt
			c4 = -lift * z / (2 * mat.Rho)
		}
		vals = append(vals, float32(c1), float32(c2), float32(c3), float32(c4))
	}
	vals = append(vals,
		float32(-mat.Kappa), float32(-1/mat.Rho),
		float32(lift*mat.Kappa), float32(lift/mat.Rho))
	return vals
}

// lutFetchProgram builds the per-block OpLUT sequence: fetch the flux row
// and the scalar words in place.
func lutFetchProgram(lutBlock int) []isa.Instr {
	prog := make([]isa.Instr, 0, lutEntriesPerElem)
	for k := 0; k < lutFluxEntries; k++ {
		prog = append(prog, isa.Instr{Op: isa.OpLUT,
			Row: RowFluxConsts, SrcOff: k, DstOff: k, LUTBlock: lutBlock})
	}
	for _, w := range lutScalarWords {
		prog = append(prog, isa.Instr{Op: isa.OpLUT,
			Row: RowScalarConsts, SrcOff: w, DstOff: w, LUTBlock: lutBlock})
	}
	return prog
}

// LoadWithLUT loads the functional acoustic system the Section 4.3 way:
// geometry constants (dshape, masks, RK table) are model constants written
// at setup, but every material-derived value is fetched from the reserved
// LUT block by OpLUT instructions executed on the chip.
func (f *FunctionalAcoustic) LoadWithLUT(q *dg.AcousticState, field *material.AcousticField) {
	m := f.Mesh
	lutBlock := m.NumElem // first block past the element blocks
	lut := f.Engine.Chip.Block(lutBlock)

	// Host fills the LUT with each element's precomputed constants.
	for e := 0; e < m.NumElem; e++ {
		vals := f.Comp.acousticLUTValues(m, field.ByElem[e])
		for k, v := range vals {
			entry := e*lutEntriesPerElem + k
			lut.SetFloat(entry/xbar.WordsPerRow, entry%xbar.WordsPerRow, v)
		}
	}

	progs := make(map[int][]isa.Instr, m.NumElem)
	prog := lutFetchProgram(lutBlock)
	for e, blk := range f.plan.blocks {
		b := f.Engine.Chip.Block(blk)
		// Geometry constants and state as usual.
		f.Comp.LoadAcousticConstants(b, m, field.ByElem[e], f.Dt)
		f.Comp.LoadAcousticState(b, q, e)
		// Scrub the material-derived words and seed them with LUT indices
		// instead (proving the subsequent values really come from the LUT).
		for k := 0; k < lutFluxEntries; k++ {
			b.SetWord(RowFluxConsts, k, uint32(e*lutEntriesPerElem+k))
		}
		for i, w := range lutScalarWords {
			b.SetWord(RowScalarConsts, w, uint32(e*lutEntriesPerElem+lutFluxEntries+i))
		}
		progs[blk] = prog
	}
	// The chip fetches its own constants.
	f.Engine.Sequence(f.Engine.ExecBlocks("lut-consts", progs))
}

// VerifyLUTLoaded is a test hook: it checks one block's fetched constant
// against the direct computation.
func (f *FunctionalAcoustic) VerifyLUTLoaded(e int, field *material.AcousticField) bool {
	b := f.Engine.Chip.Block(f.plan.blocks[e])
	vals := f.Comp.acousticLUTValues(f.Mesh, field.ByElem[e])
	for k := 0; k < lutFluxEntries; k++ {
		if b.GetFloat(RowFluxConsts, k) != vals[k] {
			return false
		}
	}
	for i, w := range lutScalarWords {
		if got := b.GetFloat(RowScalarConsts, w); got != vals[lutFluxEntries+i] &&
			!(math.IsNaN(float64(got)) && math.IsNaN(float64(vals[lutFluxEntries+i]))) {
			return false
		}
	}
	return true
}
