package wavepim

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/obs"
	"wavepim/internal/pim/chip"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// sessionForTest builds a small instrumented acoustic session with a
// loaded plane wave.
func sessionForTest(t *testing.T, opts ...Option) *Session {
	t.Helper()
	m := mesh.New(1, 4, true)
	s, err := NewSession(append([]Option{
		WithMesh(m),
		WithDt(1e-3),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	q := dg.NewAcousticState(m)
	dg.PlaneWaveX(m, fnMat, 1, q)
	s.Acoustic().Load(q)
	return s
}

// TestSessionMatchesLegacyAcoustic is the API-redesign differential: a
// Session run and the legacy constructor produce bit-identical state and
// identical engine accounting.
func TestSessionMatchesLegacyAcoustic(t *testing.T) {
	m := mesh.New(1, 4, true)
	q0 := dg.NewAcousticState(m)
	dg.PlaneWaveX(m, fnMat, 1, q0)

	legacy, err := NewFunctionalAcoustic(m, fnMat, dg.RiemannFlux, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Load(q0)
	legacy.Run(2)

	s := sessionForTest(t)
	if err := s.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	qa, qb := dg.NewAcousticState(m), dg.NewAcousticState(m)
	legacy.ReadState(qa)
	s.Acoustic().ReadState(qb)
	for i := range qa.P {
		if qa.P[i] != qb.P[i] {
			t.Fatalf("P[%d]: legacy %v, session %v", i, qa.P[i], qb.P[i])
		}
	}
	if a, b := legacy.Engine.Now(), s.Engine().Now(); a != b {
		t.Fatalf("clock: legacy %v, session %v", a, b)
	}
	if a, b := legacy.Engine.InstrCount, s.Engine().InstrCount; a != b {
		t.Fatalf("instr count: legacy %v, session %v", a, b)
	}
}

// TestSessionCounterDifferential asserts the registry's counters equal the
// engine's legacy Stats fields after an instrumented run: the sim.instr.*
// counters sum to InstrCount, sim.transfer.count equals TransferCt, and
// the published xbar.* counters equal the chip-wide block Stats.
func TestSessionCounterDifferential(t *testing.T) {
	sink := obs.NewSink()
	s := sessionForTest(t, WithObs(sink))
	if err := s.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	snap := sink.Reg.Snapshot()

	var instr int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "sim.instr.") {
			instr += v
		}
	}
	if instr != s.Engine().InstrCount {
		t.Errorf("sim.instr.* sum %d, engine InstrCount %d", instr, s.Engine().InstrCount)
	}
	if got := snap.Counters["sim.transfer.count"]; got != s.Engine().TransferCt {
		t.Errorf("sim.transfer.count %d, engine TransferCt %d", got, s.Engine().TransferCt)
	}

	bs := s.Engine().Chip.TotalBlockStats()
	for _, c := range []struct {
		name string
		want int64
	}{
		{"xbar.row_reads", bs.RowReads},
		{"xbar.row_writes", bs.RowWrites},
		{"xbar.add_ops", bs.AddOps},
		{"xbar.mul_ops", bs.MulOps},
		{"xbar.copied_rows", bs.CopiedRows},
		{"xbar.nor_steps", bs.NORSteps},
	} {
		if got := snap.Counters[c.name]; got != c.want {
			t.Errorf("%s: registry %d, chip stats %d", c.name, got, c.want)
		}
	}
	if bs.AddOps == 0 || bs.NORSteps == 0 {
		t.Error("functional run recorded no crossbar arithmetic; differential is vacuous")
	}
}

// TestSessionTraceGolden pins the exported Chrome trace of a one-step
// acoustic session run. The spans come from the engine's simulated clock,
// so the trace is fully deterministic across hosts and worker counts.
func TestSessionTraceGolden(t *testing.T) {
	sink := obs.NewSink()
	s := sessionForTest(t, WithObs(sink))
	if err := s.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Structural checks: well-formed trace_event JSON, complete ("X")
	// spans, non-negative durations, monotonically non-decreasing start
	// times (the engine commits phases in clock order).
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no spans")
	}
	names := map[string]bool{}
	prevTS := -1.0
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("span %d: phase %q, want complete event \"X\"", i, ev.Ph)
		}
		if ev.Dur < 0 {
			t.Fatalf("span %d (%s): negative duration %v", i, ev.Name, ev.Dur)
		}
		if ev.TS < prevTS {
			t.Fatalf("span %d (%s): start %v before previous start %v — not monotone", i, ev.Name, ev.TS, prevTS)
		}
		prevTS = ev.TS
		names[ev.Name] = true
	}
	// One time-step must show the paper's kernel structure.
	for _, want := range []string{"volume", "flux-fetch-x-", "flux-x-", "integration-0", "integration-4"} {
		if !names[want] {
			t.Errorf("trace is missing a %q span", want)
		}
	}

	golden := filepath.Join("testdata", "session_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden file %s (run with -update to regenerate)", golden)
	}
}

// TestSessionContextCancel: a canceled context stops the run inside the
// engine's worker pool and surfaces ctx.Err().
func TestSessionContextCancel(t *testing.T) {
	s := sessionForTest(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Run(ctx, 100); err != context.Canceled {
		t.Fatalf("Run under canceled context: got %v, want context.Canceled", err)
	}
	// The engine latched the error; a fresh context clears the way again.
	s.Engine().ClearErr()
	if err := s.Run(context.Background(), 1); err != nil {
		t.Fatalf("Run after ClearErr: %v", err)
	}
}

// TestSessionOptionValidation covers the constructor's error paths,
// including the WithChip too-small rejection that replaced the silent
// Config16GB fallback.
func TestSessionOptionValidation(t *testing.T) {
	m := mesh.New(1, 4, true)
	if _, err := NewSession(WithDt(1e-3)); err == nil {
		t.Error("NewSession without a mesh should fail")
	}
	if _, err := NewSession(WithMesh(m)); err == nil {
		t.Error("NewSession without a dt should fail")
	}
	if _, err := NewSession(
		WithEquation(opcount.ElasticRiemann),
		WithMesh(mesh.New(2, 4, true)), // 64 elems x 4 slots > 512MB chip's blocks? validated below
		WithDt(1e-3),
		WithChip(chip.Config{Name: "tiny", CapacityBytes: chip.BlockBytes * 4, Interconnect: chip.HTree, Fanout: 4}),
	); err == nil {
		t.Error("NewSession with an undersized pinned chip should fail")
	}
}

// TestSessionEquations exercises the elastic and Maxwell paths through the
// same entry point.
func TestSessionEquations(t *testing.T) {
	m := mesh.New(1, 4, true)
	el, err := NewSession(
		WithEquation(opcount.ElasticRiemann),
		WithMesh(m),
		WithDt(1e-3),
		WithElasticMaterial(material.Elastic{Lambda: 2, Mu: 1, Rho: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if el.Elastic() == nil || el.Acoustic() != nil {
		t.Fatal("elastic session must expose only the elastic system")
	}
	mx, err := NewSession(
		WithEquation(opcount.Maxwell),
		WithMesh(m),
		WithDt(1e-3),
		WithDielectric(material.Dielectric{Eps: 2.25, Mu: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Maxwell() == nil {
		t.Fatal("maxwell session must expose the Maxwell system")
	}
}
