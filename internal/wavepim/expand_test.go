package wavepim

import (
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// The four-block E_p mapping must compute the same time-steps as the
// reference solver — the expansion changes where work happens, not what is
// computed.
func TestFunctionalExpandedMatchesReference(t *testing.T) {
	for _, flux := range []dg.FluxType{dg.CentralFlux, dg.RiemannFlux} {
		m := mesh.New(1, 4, true)
		q, qPim := acousticStates(t, m)

		ref := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, fnMat), flux)
		it := dg.NewAcousticIntegrator(ref)
		dt := ref.MaxStableDt(0.3)

		fe, err := NewFunctionalAcousticExpanded(m, fnMat, flux, dt)
		if err != nil {
			t.Fatal(err)
		}
		fe.Load(qPim)

		const steps = 2
		it.Run(q, 0, dt, steps)
		fe.Run(steps)
		got := dg.NewAcousticState(m)
		fe.ReadState(got)

		if e := maxRelErr(got.P, q.P); e > 5e-3 {
			t.Errorf("flux=%v: expanded pressure rel err %g", flux, e)
		}
		for d := 0; d < 3; d++ {
			if e := maxRelErr(got.V[d], q.V[d]); e > 5e-3 {
				t.Errorf("flux=%v: expanded v[%d] rel err %g", flux, d, e)
			}
		}
	}
}

// Expansion must shorten the critical path: the per-block Volume program of
// the expanded layout is much shorter than the naive one-block program
// ("the four-block implementation can achieve a better performance than
// the one-block naive solution", Section 6.2.1).
func TestExpansionShortensCriticalPath(t *testing.T) {
	plan := Plan{Tech: ExpandParallel, Layout: AcousticFourBlock, SlotsPerElem: 4}
	c := NewCompiler(plan, 8, dg.RiemannFlux)
	oneBlock := len(c.VolumeOneBlock())
	vBlock := len(c.VolumeVBlock(mesh.AxisX))
	pBlock := len(c.VolumePBlock())
	if vBlock*2 >= oneBlock {
		t.Errorf("expanded V-block volume (%d instrs) should be well under half the naive program (%d)", vBlock, oneBlock)
	}
	if pBlock >= vBlock {
		t.Errorf("P-block combine (%d) should be shorter than a V-block program (%d)", pBlock, vBlock)
	}
	// Same for flux: a V-block handles one face's worth of work at a time.
	oneFlux := len(c.FluxOneBlock(mesh.FaceXMinus)) * 6                                              // naive: all six faces serial
	expFlux := (len(c.FluxVBlock(mesh.FaceXMinus, true)) + len(c.FluxVBlock(mesh.FaceXPlus, false))) // two faces per block
	if expFlux*2 >= oneFlux {
		t.Errorf("expanded flux path (%d) should be well under the naive serial path (%d)", expFlux, oneFlux)
	}
}

// The expanded functional run must actually use four blocks per element
// and move data between them.
func TestExpandedUsesFourBlocksAndTransfers(t *testing.T) {
	m := mesh.New(1, 4, true)
	q, _ := acousticStates(t, m)
	fe, err := NewFunctionalAcousticExpanded(m, fnMat, dg.CentralFlux, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	fe.Load(q)
	fe.Run(1)
	if got := fe.Engine.Chip.AllocatedBlocks(); got != 4*m.NumElem {
		t.Errorf("allocated %d blocks, want %d", got, 4*m.NumElem)
	}
	if fe.Engine.TransferCt == 0 {
		t.Error("expanded run must perform inter-block transfers")
	}
}
