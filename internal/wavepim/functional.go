package wavepim

import (
	"fmt"
	"runtime"

	"wavepim/internal/dg"
	"wavepim/internal/dg/opcount"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/sim"
)

// chipFor picks the smallest evaluation chip configuration with at least n
// blocks (functional meshes are small, so this is almost always 512 MB).
// It errors when even the largest configuration is too small — callers
// must not silently run on a chip that cannot hold the model.
func chipFor(nBlocks int) (chip.Config, error) {
	for _, cfg := range chip.AllConfigs() {
		if cfg.NumBlocks() >= nBlocks {
			return cfg, nil
		}
	}
	largest := chip.AllConfigs()[len(chip.AllConfigs())-1]
	return chip.Config{}, fmt.Errorf(
		"wavepim: no chip configuration fits %d blocks (largest, %s, has %d); batch the model instead",
		nBlocks, largest.Name, largest.NumBlocks())
}

// newChip wraps chip.New for the functional constructors.
func newChip(cfg chip.Config) (*chip.Chip, error) { return chip.New(cfg) }

// newFunctionalEngine builds a functional engine with its worker pool sized
// to the machine, so per-block functional execution uses every core. The
// engine's merge order makes results identical to a serial run.
func newFunctionalEngine(ch *chip.Chip) *sim.Engine {
	e := sim.New(ch, true)
	e.Workers = runtime.GOMAXPROCS(0)
	return e
}

// FunctionalAcoustic is a fully functional PIM execution of the acoustic
// simulation on the naive one-block layout: every float32 value lives in
// crossbar cells and every kernel runs as compiled PIM instructions. It
// exists to verify, node for node, that the compiled Wave-PIM programs
// compute the same semi-discrete system as the internal/dg reference
// solver.
type FunctionalAcoustic struct {
	Mesh   *mesh.Mesh
	Mat    material.Acoustic
	Comp   *Compiler
	Place  *Placement
	Engine *sim.Engine
	Dt     float64

	// plan holds every compiled artifact (programs, transfer schedules,
	// program->block maps), shared read-only through the process-wide
	// plan cache. CacheHit reports whether this system skipped
	// compilation entirely.
	plan     *acousticPlan
	CacheHit bool
}

// NewFunctionalAcoustic builds the functional system on a 512MB chip. The
// mesh must be periodic (every element has six neighbors, as in the
// paper's benchmark meshes) and small enough to fit without batching. It
// is a thin veneer over NewSession — new code should use the Session API
// directly (WithChip, WithTopology, WithObs, ...).
func NewFunctionalAcoustic(m *mesh.Mesh, mat material.Acoustic, flux dg.FluxType, dt float64) (*FunctionalAcoustic, error) {
	s, err := NewSession(
		WithEquation(opcount.Acoustic),
		WithMesh(m),
		WithAcousticMaterial(mat),
		WithFlux(flux),
		WithDt(dt),
	)
	if err != nil {
		return nil, err
	}
	return s.Acoustic(), nil
}

// newFunctionalAcousticOn is NewFunctionalAcoustic on a caller-chosen chip
// configuration (the Session's WithChip path).
func newFunctionalAcousticOn(cfg chip.Config, m *mesh.Mesh, mat material.Acoustic, flux dg.FluxType, dt float64) (*FunctionalAcoustic, error) {
	if !m.Periodic {
		return nil, fmt.Errorf("wavepim: functional acoustic requires a periodic mesh")
	}
	if m.NumElem > cfg.NumBlocks() {
		return nil, fmt.Errorf("wavepim: %d elements exceed the functional chip's %d blocks", m.NumElem, cfg.NumBlocks())
	}
	ch, err := chip.New(cfg)
	if err != nil {
		return nil, err
	}
	plan := Plan{Tech: Naive, Layout: AcousticOneBlock, SlotsPerElem: 1,
		Chip: cfg, SlicesPerBatch: m.NumSlices(), NumSlices: m.NumSlices(), Batches: 1,
		ElemsPerSlice: m.EPerAxis * m.EPerAxis}
	f := &FunctionalAcoustic{
		Mesh:   m,
		Mat:    mat,
		Comp:   NewCompiler(plan, m.Np, flux),
		Place:  NewPlacement(AcousticOneBlock, m.EPerAxis, true),
		Engine: newFunctionalEngine(ch),
		Dt:     dt,
	}
	key := PlanKey{Eq: opcount.Acoustic, Flux: flux, Np: m.Np, EPerAxis: m.EPerAxis, Chip: cfg.Name, Topo: cfg.Interconnect.String()}
	f.plan, f.CacheHit = acousticPlanFor(key, f.Comp, m, f.Place)
	return f, nil
}

// Load writes constants and the initial state into the chip, with the
// same material everywhere.
func (f *FunctionalAcoustic) Load(q *dg.AcousticState) {
	f.LoadField(q, material.UniformAcoustic(f.Mesh.NumElem, f.Mat))
}

// LoadField writes constants and state with per-element materials (the
// paper's model: "We consider constant materials within an element" —
// every element's block holds its own material-derived constants, which
// is what makes layered media free on the PIM side).
func (f *FunctionalAcoustic) LoadField(q *dg.AcousticState, field *material.AcousticField) {
	for e, blk := range f.plan.blocks {
		b := f.Engine.Chip.Block(blk)
		f.Comp.LoadAcousticConstants(b, f.Mesh, field.ByElem[e], f.Dt)
		f.Comp.LoadAcousticState(b, q, e)
	}
}

// RHSOnce executes Volume plus all six Flux sub-phases, leaving the RHS in
// the contribution columns (no integration). Used by kernel-level
// verification tests. All programs and schedules come precompiled from
// the plan cache — nothing is built per call.
func (f *FunctionalAcoustic) RHSOnce() {
	e := f.Engine
	e.Sequence(e.ExecBlocks("volume", f.plan.volProgs))
	for face := mesh.Face(0); face < mesh.NumFaces; face++ {
		e.Sequence(e.ExecTransfers(fmt.Sprintf("flux-fetch-%v", face), f.plan.fetch[face]))
		e.Sequence(e.ExecBlocks(fmt.Sprintf("flux-%v", face), f.plan.fluxProgs[face]))
	}
}

// Step executes one full five-stage time-step.
func (f *FunctionalAcoustic) Step() {
	e := f.Engine
	for s := 0; s < dg.NumStages; s++ {
		f.RHSOnce()
		e.Sequence(e.ExecBlocks(fmt.Sprintf("integration-%d", s), f.plan.integProgs[s]))
	}
}

// Run executes n time-steps.
func (f *FunctionalAcoustic) Run(n int) {
	for i := 0; i < n; i++ {
		f.Step()
	}
}

// ReadState extracts the current variables into q.
func (f *FunctionalAcoustic) ReadState(q *dg.AcousticState) {
	for e, blk := range f.plan.blocks {
		f.Comp.ReadAcousticState(f.Engine.Chip.Block(blk), q, e)
	}
}

// ReadRHS extracts the contribution columns into rhs.
func (f *FunctionalAcoustic) ReadRHS(rhs *dg.AcousticState) {
	for e, blk := range f.plan.blocks {
		f.Comp.ReadAcousticContrib(f.Engine.Chip.Block(blk), rhs, e)
	}
}

// WriteState rewrites only the solver variables (and zeroes the RK
// auxiliaries), leaving the constant rows untouched — the restore half of
// a checkpoint rollback. Zeroing the auxiliaries at a step boundary is
// exact: LSRK5A[0] = 0, so the first stage of the next step overwrites
// them regardless of history.
func (f *FunctionalAcoustic) WriteState(q *dg.AcousticState) {
	for e, blk := range f.plan.blocks {
		f.Comp.LoadAcousticState(f.Engine.Chip.Block(blk), q, e)
	}
}
