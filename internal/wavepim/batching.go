package wavepim

import (
	"fmt"

	"wavepim/internal/mesh"
)

// The Figure 7 flux batching schedule. When the model does not fit
// on-chip, it folds through the chip in whole slices along one axis
// (the paper slices along y; this package slices along z, the axis the
// mesh's Slice decomposition uses — the schedule is axis-symmetric). The
// two intra-slice axes need no inter-slice data, so their flux computes
// batch-locally; the slicing axis's flux pairs neighboring slices and
// needs the Figure 7 choreography: the minus-normal pairs (0,1), (2,3),
// ... stay inside a batch, while the plus-normal pairs (1,2), (3,4), ...
// straddle the batch boundary and force one extra slice load.

// FluxStepKind classifies a schedule step.
type FluxStepKind int

const (
	// StepLoad moves slices from off-chip DRAM into the PIM.
	StepLoad FluxStepKind = iota
	// StepStore moves slices back to DRAM.
	StepStore
	// StepFlux computes flux for an axis/normal over a slice range.
	StepFlux
)

func (k FluxStepKind) String() string {
	switch k {
	case StepLoad:
		return "load"
	case StepStore:
		return "store"
	case StepFlux:
		return "flux"
	}
	return fmt.Sprintf("FluxStepKind(%d)", int(k))
}

// FluxStep is one step of the Figure 7 schedule. Slice ranges are
// inclusive.
type FluxStep struct {
	Kind        FluxStepKind
	First, Last int
	Axis        mesh.Axis // StepFlux only
	Signs       []int     // StepFlux only: normal directions covered
}

func (s FluxStep) String() string {
	switch s.Kind {
	case StepFlux:
		return fmt.Sprintf("flux %v%v slices %d-%d", s.Axis, s.Signs, s.First, s.Last)
	default:
		return fmt.Sprintf("%v slices %d-%d", s.Kind, s.First, s.Last)
	}
}

// SliceCount returns how many slices the step touches.
func (s FluxStep) SliceCount() int { return s.Last - s.First + 1 }

// FluxBatchSchedule generates the Figure 7 schedule for numSlices slices
// processed slicesPerBatch at a time, slicing along sliceAxis. With
// numSlices == slicesPerBatch it degenerates to the unbatched six-face
// schedule.
func FluxBatchSchedule(numSlices, slicesPerBatch int, sliceAxis mesh.Axis) []FluxStep {
	if numSlices < 2 || slicesPerBatch < 2 || numSlices%slicesPerBatch != 0 {
		panic(fmt.Sprintf("wavepim: bad batch geometry %d/%d", numSlices, slicesPerBatch))
	}
	intra := otherAxes(sliceAxis)
	batches := numSlices / slicesPerBatch
	var steps []FluxStep

	for k := 0; k < batches; k++ {
		a := k * slicesPerBatch
		b := a + slicesPerBatch - 1
		if k == 0 {
			// (1) Load the first batch.
			steps = append(steps, FluxStep{Kind: StepLoad, First: a, Last: b})
		}
		// (2, 3) Intra-slice axes, both normals, no inter-slice traffic.
		for _, ax := range intra {
			steps = append(steps, FluxStep{Kind: StepFlux, First: a, Last: b,
				Axis: mesh.Axis(ax), Signs: []int{-1, +1}})
		}
		// (4) Slicing axis, normal -1: pairs (a,a+1), (a+2,a+3), ... are
		// batch-local.
		steps = append(steps, FluxStep{Kind: StepFlux, First: a, Last: b,
			Axis: sliceAxis, Signs: []int{-1}})
		if k < batches-1 {
			// (5) Evict the first slice, load the next batch's first.
			steps = append(steps,
				FluxStep{Kind: StepStore, First: a, Last: a},
				FluxStep{Kind: StepLoad, First: b + 1, Last: b + 1})
			// (6) Slicing axis, normal +1: pairs (a+1,a+2) ... (b,b+1).
			steps = append(steps, FluxStep{Kind: StepFlux, First: a + 1, Last: b + 1,
				Axis: sliceAxis, Signs: []int{+1}})
			// (7) Store the rest of this batch, load the rest of the next.
			steps = append(steps, FluxStep{Kind: StepStore, First: a + 1, Last: b})
			if b+2 <= (k+2)*slicesPerBatch-1 {
				steps = append(steps, FluxStep{Kind: StepLoad, First: b + 2, Last: (k+2)*slicesPerBatch - 1})
			}
		} else {
			// (11) Final batch: the interior +1 pairs.
			if a+1 <= b-1 {
				steps = append(steps, FluxStep{Kind: StepFlux, First: a + 1, Last: b - 1,
					Axis: sliceAxis, Signs: []int{+1}})
			}
			// (12) Store everything still resident.
			steps = append(steps, FluxStep{Kind: StepStore, First: a, Last: b})
		}
	}
	return steps
}

// ValidateSchedule checks the schedule's correctness invariants: every
// slice is loaded before any flux step touches it, every slice is stored
// exactly once after its last use, residency never exceeds
// slicesPerBatch+1 (the Figure 7 working set), and every slicing-axis
// neighbor pair is flux-covered under each normal exactly once.
func ValidateSchedule(steps []FluxStep, numSlices, slicesPerBatch int, sliceAxis mesh.Axis) error {
	resident := make(map[int]bool)
	loaded := make(map[int]int)
	stored := make(map[int]int)
	// pairCovered[p][signIdx]: pair (p, p+1) covered under -1 / +1.
	minusPairs := make(map[int]int)
	plusPairs := make(map[int]int)
	maxResident := 0

	for _, s := range steps {
		switch s.Kind {
		case StepLoad:
			for i := s.First; i <= s.Last; i++ {
				if resident[i] {
					return fmt.Errorf("slice %d loaded while resident", i)
				}
				resident[i] = true
				loaded[i]++
			}
		case StepStore:
			for i := s.First; i <= s.Last; i++ {
				if !resident[i] {
					return fmt.Errorf("slice %d stored while not resident", i)
				}
				delete(resident, i)
				stored[i]++
			}
		case StepFlux:
			for i := s.First; i <= s.Last; i++ {
				if !resident[i] {
					return fmt.Errorf("flux step %v touches non-resident slice %d", s, i)
				}
			}
			if s.Axis == sliceAxis {
				for _, sign := range s.Signs {
					if sign < 0 {
						// Pairs (even, even+1) within [First, Last].
						for p := s.First; p+1 <= s.Last; p += 2 {
							minusPairs[p]++
						}
					} else {
						// Pairs (odd, odd+1) within [First, Last].
						for p := s.First; p+1 <= s.Last; p += 2 {
							plusPairs[p]++
						}
					}
				}
			}
		}
		if len(resident) > maxResident {
			maxResident = len(resident)
		}
	}
	for i := 0; i < numSlices; i++ {
		if loaded[i] != 1 {
			return fmt.Errorf("slice %d loaded %d times", i, loaded[i])
		}
		if stored[i] != 1 {
			return fmt.Errorf("slice %d stored %d times", i, stored[i])
		}
	}
	if maxResident > slicesPerBatch+1 {
		return fmt.Errorf("residency peaked at %d slices, budget is %d+1", maxResident, slicesPerBatch)
	}
	// Pair coverage: minus pairs start at even indices, plus at odd.
	for p := 0; p+1 < numSlices; p += 2 {
		if minusPairs[p] != 1 {
			return fmt.Errorf("minus-normal pair (%d,%d) covered %d times", p, p+1, minusPairs[p])
		}
	}
	for p := 1; p+1 < numSlices; p += 2 {
		if plusPairs[p] != 1 {
			return fmt.Errorf("plus-normal pair (%d,%d) covered %d times", p, p+1, plusPairs[p])
		}
	}
	return nil
}

// ScheduleDRAMSlices counts the schedule's load and store slice-moves —
// the off-chip traffic Figure 7's choreography costs beyond a fully
// resident run.
func ScheduleDRAMSlices(steps []FluxStep) (loads, stores int) {
	for _, s := range steps {
		switch s.Kind {
		case StepLoad:
			loads += s.SliceCount()
		case StepStore:
			stores += s.SliceCount()
		}
	}
	return
}
