package wavepim

import (
	"math"
	"testing"

	"wavepim/internal/dg"
	"wavepim/internal/material"
	"wavepim/internal/mesh"
)

// Heterogeneous media: each element's block holds its own
// material-derived constants, so a layered medium costs nothing extra on
// the PIM side. The functional run must track the reference solver
// through an impedance contrast (a wave partially reflecting off a fast
// layer).
func TestFunctionalAcousticHeterogeneousLayers(t *testing.T) {
	m := mesh.New(1, 4, true)
	slow := material.Acoustic{Kappa: 1.0, Rho: 1.0}  // c = 1
	fast := material.Acoustic{Kappa: 6.25, Rho: 1.0} // c = 2.5
	field := material.UniformAcoustic(m.NumElem, slow)
	for e := 0; e < m.NumElem; e++ {
		_, _, ez := m.ElemCoords(e)
		if ez >= m.EPerAxis/2 {
			field.ByElem[e] = fast
		}
	}

	// A pulse near the layer interface.
	q := dg.NewAcousticState(m)
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, y, z := m.NodePosition(e, n)
			r2 := (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.3)*(z-0.3)
			q.P[e*nn+n] = math.Exp(-r2 / 0.03)
		}
	}
	qPim := q.Copy()

	ref := dg.NewAcousticSolver(m, field, dg.RiemannFlux)
	it := dg.NewAcousticIntegrator(ref)
	dt := ref.MaxStableDt(0.25)

	fa, err := NewFunctionalAcoustic(m, slow, dg.RiemannFlux, dt)
	if err != nil {
		t.Fatal(err)
	}
	fa.LoadField(qPim, field)

	const steps = 3
	it.Run(q, 0, dt, steps)
	fa.Run(steps)
	got := dg.NewAcousticState(m)
	fa.ReadState(got)

	if e := maxRelErr(got.P, q.P); e > 5e-3 {
		t.Errorf("heterogeneous pressure rel err %g", e)
	}
	for d := 0; d < 3; d++ {
		if e := maxRelErr(got.V[d], q.V[d]); e > 5e-3 {
			t.Errorf("heterogeneous v[%d] rel err %g", d, e)
		}
	}
	// Sanity: the layers actually differ — the same run with a uniform
	// slow medium must diverge from the heterogeneous reference.
	uni := qPim.Copy()
	refUni := dg.NewAcousticSolver(m, material.UniformAcoustic(m.NumElem, slow), dg.RiemannFlux)
	itUni := dg.NewAcousticIntegrator(refUni)
	itUni.Run(uni, 0, dt, steps)
	if e := maxRelErr(uni.P, q.P); e < 1e-4 {
		t.Error("uniform and layered references coincide; the test is vacuous")
	}
}

// The elastic functional path also supports per-element materials: a
// soft layer over stiff bedrock.
func TestFunctionalElasticHeterogeneousLayers(t *testing.T) {
	m := mesh.New(1, 4, true)
	soft := material.Elastic{Lambda: 1, Mu: 0.5, Rho: 1}
	stiff := material.Elastic{Lambda: 4, Mu: 2, Rho: 1.2}
	field := material.UniformElastic(m.NumElem, soft)
	for e := 0; e < m.NumElem; e++ {
		_, _, ez := m.ElemCoords(e)
		if ez == 0 {
			field.ByElem[e] = stiff
		}
	}
	q := dg.NewElasticState(m)
	nn := m.NodesPerEl
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < nn; n++ {
			x, _, z := m.NodePosition(e, n)
			q.V[2][e*nn+n] = math.Exp(-((x-0.5)*(x-0.5) + (z-0.6)*(z-0.6)) / 0.05)
		}
	}
	qPim := q.Copy()

	ref := dg.NewElasticSolver(m, field, dg.RiemannFlux)
	it := dg.NewElasticIntegrator(ref)
	dt := ref.MaxStableDt(0.25)

	fe, err := NewFunctionalElastic(m, soft, dg.RiemannFlux, dt)
	if err != nil {
		t.Fatal(err)
	}
	fe.LoadField(qPim, field)

	const steps = 2
	it.Run(q, 0, dt, steps)
	fe.Run(steps)
	got := dg.NewElasticState(m)
	fe.ReadState(got)
	for c := 0; c < dg.NumStress; c++ {
		if e := maxRelErr(got.S[c], q.S[c]); e > 5e-3 {
			t.Errorf("hetero elastic stress %d rel err %g", c, e)
		}
	}
	for d := 0; d < 3; d++ {
		if e := maxRelErr(got.V[d], q.V[d]); e > 5e-3 {
			t.Errorf("hetero elastic v[%d] rel err %g", d, e)
		}
	}
}
