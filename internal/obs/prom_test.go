package obs

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// promTestRegistry builds the registry behind the exposition golden:
// every instrument kind, labeled and unlabeled, with a label value that
// needs escaping and a counter that already carries _total.
func promTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sim.instr_count").Add(42)
	r.Counter("requests_total").Add(7)
	r.Gauge("sim.total_seconds").Set(1.25e-3)
	cv := r.CounterVec("sim.fault.rung_events", "rung")
	cv.With("ecc").Add(5)
	cv.With("rollback").Inc()
	cv.With(`weird"rung\n`).Inc() // exercises label escaping
	r.GaugeVec("pool.size", "state").With("idle").Set(3)
	r.GaugeVec("pool.size", "state").With("busy").Set(1)
	h := r.Histogram("dram.seconds")
	h.Observe(5e-13) // first bucket
	h.Observe(2e-9)
	h.Observe(1e30) // overflow bucket
	hv := r.HistogramVec("sim.phase.span_seconds", "kind", "phase")
	hv.With("blocks", "flux").Observe(1e-6)
	hv.With("blocks", "flux").Observe(3e-6)
	hv.With("dram", "fetch").Observe(1e-4)
	return r
}

func TestWritePromGolden(t *testing.T) {
	var b strings.Builder
	if err := promTestRegistry().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden (re-bless with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Byte determinism: a second registry built the same way must
	// serialize identically.
	var b2 strings.Builder
	if err := promTestRegistry().WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Fatal("two identical registries produced different exposition")
	}
}

// promSeries is one parsed sample line.
type promSeries struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a tiny hand-rolled Prometheus text-format parser — enough
// of the grammar to validate our own exposition without importing a
// client library. It enforces: TYPE headers precede their samples, names
// are legal, label blocks are well-formed with escaped values, and every
// sample belongs to a declared family.
func parseProm(t *testing.T, text string) (types map[string]string, series []promSeries) {
	t.Helper()
	types = map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := parts[2], parts[3]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown kind %q", ln+1, kind)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s := promSeries{labels: map[string]string{}}
		rest := line
		if i := strings.IndexAny(rest, "{ "); i < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		} else {
			s.name = rest[:i]
			rest = rest[i:]
		}
		for i, c := range s.name {
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("line %d: illegal metric name %q", ln+1, s.name)
			}
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				t.Fatalf("line %d: unterminated label block: %q", ln+1, line)
			}
			for _, pair := range splitLabels(t, ln+1, rest[1:end]) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
				s.labels[k] = unescapeLabel(t, ln+1, v[1:len(v)-1])
			}
			rest = rest[end+1:]
		}
		rest = strings.TrimPrefix(rest, " ")
		var err error
		switch rest {
		case "+Inf":
			s.value = math.Inf(1)
		case "-Inf":
			s.value = math.Inf(-1)
		case "NaN":
			s.value = math.NaN()
		default:
			if s.value, err = strconv.ParseFloat(rest, 64); err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, rest, err)
			}
		}
		fam := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(s.name, suf); base != s.name && types[base] == "histogram" {
				fam = base
			}
		}
		if _, ok := types[fam]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE header", ln+1, s.name)
		}
		series = append(series, s)
	}
	return types, series
}

// splitLabels splits "k1=\"v1\",k2=\"v2\"" on commas outside quotes.
func splitLabels(t *testing.T, ln int, s string) []string {
	var out []string
	var cur strings.Builder
	inQ, esc := false, false
	for _, c := range s {
		switch {
		case esc:
			cur.WriteRune(c)
			esc = false
		case c == '\\' && inQ:
			cur.WriteRune(c)
			esc = true
		case c == '"':
			cur.WriteRune(c)
			inQ = !inQ
		case c == ',' && !inQ:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(c)
		}
	}
	if inQ {
		t.Fatalf("line %d: unterminated quote in labels %q", ln, s)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func unescapeLabel(t *testing.T, ln int, v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' {
			b.WriteByte(v[i])
			continue
		}
		i++
		if i >= len(v) {
			t.Fatalf("line %d: dangling escape in %q", ln, v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			t.Fatalf("line %d: unknown escape \\%c", ln, v[i])
		}
	}
	return b.String()
}

func TestWritePromParses(t *testing.T) {
	var b strings.Builder
	if err := promTestRegistry().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	types, series := parseProm(t, b.String())

	find := func(name string, labels map[string]string) *promSeries {
		for i := range series {
			s := &series[i]
			if s.name != name || len(s.labels) != len(labels) {
				continue
			}
			match := true
			for k, v := range labels {
				if s.labels[k] != v {
					match = false
				}
			}
			if match {
				return s
			}
		}
		t.Fatalf("series %s%v not found", name, labels)
		return nil
	}

	// Counters carry _total exactly once; values survive the round trip.
	if types["sim_instr_count_total"] != "counter" {
		t.Fatalf("types = %v", types)
	}
	if s := find("sim_instr_count_total", nil); s.value != 42 {
		t.Fatalf("counter value %v", s.value)
	}
	if s := find("requests_total", nil); s.value != 7 {
		t.Fatalf("pre-suffixed counter %v", s.value)
	}
	if s := find("sim_fault_rung_events_total", map[string]string{"rung": "ecc"}); s.value != 5 {
		t.Fatalf("labeled counter %v", s.value)
	}
	// The escaped label value round-trips through the parser.
	find("sim_fault_rung_events_total", map[string]string{"rung": `weird"rung\n`})
	if s := find("pool_size", map[string]string{"state": "idle"}); s.value != 3 {
		t.Fatalf("labeled gauge %v", s.value)
	}

	// Histogram conventions: cumulative monotone buckets ending at +Inf,
	// +Inf bucket == _count, one _sum.
	for _, hist := range []struct {
		fam    string
		labels map[string]string
		count  float64
	}{
		{"dram_seconds", nil, 3},
		{"sim_phase_span_seconds", map[string]string{"kind": "blocks", "phase": "flux"}, 2},
	} {
		var buckets []promSeries
		for _, s := range series {
			if s.name != hist.fam+"_bucket" {
				continue
			}
			ok := true
			for k, v := range hist.labels {
				if s.labels[k] != v {
					ok = false
				}
			}
			if ok {
				buckets = append(buckets, s)
			}
		}
		if len(buckets) != histBuckets {
			t.Fatalf("%s: %d buckets, want %d", hist.fam, len(buckets), histBuckets)
		}
		prevLe, prevCum := math.Inf(-1), float64(0)
		for _, b := range buckets {
			le, err := strconv.ParseFloat(strings.Replace(b.labels["le"], "+Inf", "Inf", 1), 64)
			if err != nil {
				t.Fatalf("%s: bad le %q", hist.fam, b.labels["le"])
			}
			if le <= prevLe {
				t.Fatalf("%s: le not increasing: %v after %v", hist.fam, le, prevLe)
			}
			if b.value < prevCum {
				t.Fatalf("%s: bucket counts not cumulative", hist.fam)
			}
			prevLe, prevCum = le, b.value
		}
		if !math.IsInf(prevLe, 1) {
			t.Fatalf("%s: last bucket le = %v, want +Inf", hist.fam, prevLe)
		}
		if prevCum != hist.count {
			t.Fatalf("%s: +Inf bucket %v != expected count %v", hist.fam, prevCum, hist.count)
		}
		cnt := find(hist.fam+"_count", hist.labels)
		if cnt.value != hist.count {
			t.Fatalf("%s_count = %v, want %v", hist.fam, cnt.value, hist.count)
		}
		find(hist.fam+"_sum", hist.labels)
	}

	// Families must be sorted by name in the raw text.
	var headerOrder []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			headerOrder = append(headerOrder, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(headerOrder) {
		t.Fatalf("families not sorted: %v", headerOrder)
	}
}

func TestWritePromNil(t *testing.T) {
	var b strings.Builder
	if err := (*Registry)(nil).WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
	var s *Sink
	if err := s.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil sink wrote %q (%v)", b.String(), err)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sim.phase.span_seconds": "sim_phase_span_seconds",
		"9lives":                 "_9lives",
		"a-b c":                  "a_b_c",
		"ok_name:sub":            "ok_name:sub",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramUpperBounds(t *testing.T) {
	ubs := HistogramUpperBounds()
	if ubs[0] != histBase {
		t.Fatalf("ubs[0] = %v", ubs[0])
	}
	for i := 1; i < histBuckets-1; i++ {
		if ratio := ubs[i] / ubs[i-1]; math.Abs(ratio-histGrowth) > 1e-9 {
			t.Fatalf("bucket %d growth %v", i, ratio)
		}
	}
	if !math.IsInf(ubs[histBuckets-1], 1) {
		t.Fatal("last bound not +Inf")
	}
	// An observation must land in the bucket its bound claims.
	h := NewRegistry().Histogram("x")
	h.Observe(2e-9)
	counts := h.BucketCounts()
	idx := -1
	for i, c := range counts {
		if c == 1 {
			idx = i
		}
	}
	if idx < 0 || ubs[idx] < 2e-9 || (idx > 0 && ubs[idx-1] >= 2e-9) {
		t.Fatalf("observation 2e-9 landed in bucket %d (bound %v)", idx, fmt.Sprint(ubs))
	}
}
