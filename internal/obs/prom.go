package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (the format every Prometheus-family
// scraper — Prometheus, VictoriaMetrics, the OpenMetrics parsers — reads
// from GET /metrics).
//
// The output is byte-deterministic for a given registry state: metric
// families are emitted in sorted (sanitized) name order, a vec's children
// in sorted label-value order, and every float is rendered with
// strconv.FormatFloat(v, 'g', -1, 64). Determinism is load-bearing here
// the same way it is for the fault reports: the CI smoke test diffs and
// parses scrapes, and future PRs byte-diff exposition goldens.
//
// Conventions applied:
//   - names are sanitized to [a-zA-Z0-9_:] (dots become underscores);
//   - counters gain the `_total` suffix unless already present;
//   - histograms expose cumulative `_bucket{le="..."}` series plus
//     `_sum` and `_count`, with the fixed exponential bucket layout of
//     this package (18 buckets, 1e-12 .. 1e4, then +Inf);
//   - label values are escaped per the text-format rules.

// WriteProm writes the registry in Prometheus text exposition format.
// It returns the registry's latched registration errors (Err) if any,
// after writing everything that is well-formed.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r != nil {
		r.writePromLocked(bw)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return r.Err()
}

// WriteProm exports the sink's registry (empty exposition from nil).
func (s *Sink) WriteProm(w io.Writer) error {
	if s == nil {
		return (*Registry)(nil).WriteProm(w)
	}
	return s.Reg.WriteProm(w)
}

// promFamily is one exposition unit: a TYPE header plus its sample lines.
type promFamily struct {
	name  string // sanitized family name (without _total et al.)
	kind  string // "counter", "gauge", "histogram"
	lines []string
}

func (r *Registry) writePromLocked(w *bufio.Writer) {
	r.mu.Lock()
	fams := make([]promFamily, 0,
		len(r.ctrs)+len(r.gauges)+len(r.hists)+len(r.ctrVecs)+len(r.gaugeVecs)+len(r.histVecs))

	for name, c := range r.ctrs {
		fams = append(fams, counterFamily(name, []promSample{{labels: "", value: float64(c.Value())}}))
	}
	for name, cv := range r.ctrVecs {
		samples := make([]promSample, 0, 4)
		for _, ch := range cv.v.children() {
			samples = append(samples, promSample{
				labels: labelString(cv.v.keys, ch.values), value: float64(ch.inst.Value())})
		}
		fams = append(fams, counterFamily(name, samples))
	}
	for name, g := range r.gauges {
		fams = append(fams, gaugeFamily(name, []promSample{{labels: "", value: g.Value()}}))
	}
	for name, gv := range r.gaugeVecs {
		samples := make([]promSample, 0, 4)
		for _, ch := range gv.v.children() {
			samples = append(samples, promSample{
				labels: labelString(gv.v.keys, ch.values), value: ch.inst.Value()})
		}
		fams = append(fams, gaugeFamily(name, samples))
	}
	for name, h := range r.hists {
		fams = append(fams, histFamily(name, []promHist{{labels: "", h: h}}))
	}
	for name, hv := range r.histVecs {
		hs := make([]promHist, 0, 4)
		for _, ch := range hv.v.children() {
			hs = append(hs, promHist{labels: labelString(hv.v.keys, ch.values), h: ch.inst})
		}
		fams = append(fams, histFamily(name, hs))
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if len(f.lines) == 0 {
			continue
		}
		w.WriteString("# TYPE ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(f.kind)
		w.WriteByte('\n')
		for _, l := range f.lines {
			w.WriteString(l)
			w.WriteByte('\n')
		}
	}
}

type promSample struct {
	labels string // rendered {k="v",...} block, or ""
	value  float64
}

type promHist struct {
	labels string
	h      *Histogram
}

func counterFamily(name string, samples []promSample) promFamily {
	n := promName(name)
	if !strings.HasSuffix(n, "_total") {
		n += "_total"
	}
	lines := make([]string, len(samples))
	for i, s := range samples {
		lines[i] = n + s.labels + " " + formatPromValue(s.value)
	}
	return promFamily{name: n, kind: "counter", lines: lines}
}

func gaugeFamily(name string, samples []promSample) promFamily {
	n := promName(name)
	lines := make([]string, len(samples))
	for i, s := range samples {
		lines[i] = n + s.labels + " " + formatPromValue(s.value)
	}
	return promFamily{name: n, kind: "gauge", lines: lines}
}

func histFamily(name string, hs []promHist) promFamily {
	n := promName(name)
	ubs := HistogramUpperBounds()
	var lines []string
	for _, ph := range hs {
		counts := ph.h.BucketCounts()
		var cum int64
		for i, ub := range ubs {
			cum += counts[i]
			lines = append(lines, n+"_bucket"+withLabel(ph.labels, "le", formatPromValue(ub))+
				" "+strconv.FormatInt(cum, 10))
		}
		lines = append(lines,
			n+"_sum"+ph.labels+" "+formatPromValue(ph.h.Sum()),
			n+"_count"+ph.labels+" "+strconv.FormatInt(ph.h.Count(), 10))
	}
	return promFamily{name: n, kind: "histogram", lines: lines}
}

// withLabel appends one more label pair to an already-rendered label
// block (possibly empty).
func withLabel(labels, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatPromValue renders a float the way Prometheus text format expects:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName sanitizes a registry name into a legal Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_' (so the registry's
// dotted names map 1:1 onto underscore names), and a leading digit gains
// a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
