package obs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("rpc.calls", "method", "code")
	cv.With("get", "200").Add(3)
	cv.With("get", "500").Inc()
	cv.With("put", "200").Inc()
	// Same tuple resolves the same child.
	if cv.With("get", "200") != cv.With("get", "200") {
		t.Fatal("With not idempotent for one tuple")
	}
	snap := r.Snapshot()
	if got := snap.Counters[`rpc.calls{method="get",code="200"}`]; got != 3 {
		t.Fatalf("child value = %d, want 3 (counters: %v)", got, snap.Counters)
	}
	if len(snap.Counters) != 3 {
		t.Fatalf("want 3 children, got %v", snap.Counters)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("clean registry reports %v", err)
	}
}

func TestGaugeAndHistogramVec(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("pool.size", "state").With("idle").Set(7)
	r.HistogramVec("span.seconds", "phase").With("flux").Observe(1e-6)
	r.HistogramVec("span.seconds", "phase").With("flux").Observe(1e-3)
	snap := r.Snapshot()
	if got := snap.Gauges[`pool.size{state="idle"}`]; got != 7 {
		t.Fatalf("gauge child = %v", got)
	}
	h := snap.Histograms[`span.seconds{phase="flux"}`]
	if h.Count != 2 || h.Sum != 1e-6+1e-3 {
		t.Fatalf("hist child = %+v", h)
	}
}

func TestVecNilSafety(t *testing.T) {
	var r *Registry
	var s *Sink
	// Every step of the nil chain must no-op, not panic.
	r.CounterVec("x", "a").With("v").Inc()
	r.GaugeVec("x", "a").With("v").Set(1)
	r.HistogramVec("x", "a").With("v").Observe(1)
	s.CounterVec("x", "a").With("v").Inc()
	s.GaugeVec("x", "a").With("v").Set(1)
	s.HistogramVec("x", "a").With("v").Observe(1)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestKindConflictLatched(t *testing.T) {
	r := NewRegistry()
	r.Counter("m").Inc()
	if g := r.Gauge("m"); g != nil {
		t.Fatal("conflicting Gauge registration returned a live instrument")
	}
	if cv := r.CounterVec("m", "k"); cv != nil {
		t.Fatal("conflicting CounterVec registration returned a live vec")
	}
	err := r.Err()
	if err == nil {
		t.Fatal("no latched error after kind conflict")
	}
	var kc *KindConflictError
	if !errors.As(err, &kc) {
		t.Fatalf("want KindConflictError, got %T: %v", err, err)
	}
	if kc.Name != "m" || kc.Existing != "counter" {
		t.Fatalf("bad conflict detail: %+v", kc)
	}
	// The original instrument keeps working.
	r.Counter("m").Inc()
	if got := r.Snapshot().Counters["m"]; got != 2 {
		t.Fatalf("original counter broken after conflict: %d", got)
	}
	// WriteJSON and WriteProm both surface the latched error.
	if err := r.WriteJSON(&strings.Builder{}); err == nil {
		t.Fatal("WriteJSON swallowed the conflict")
	}
	if err := r.WriteProm(&strings.Builder{}); err == nil {
		t.Fatal("WriteProm swallowed the conflict")
	}
}

func TestLabelKeyMismatchLatched(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("v", "a", "b").With("1", "2").Inc()
	if cv := r.CounterVec("v", "a", "c"); cv != nil {
		t.Fatal("re-registration with different keys returned a live vec")
	}
	var lm *LabelMismatchError
	if err := r.Err(); !errors.As(err, &lm) || lm.Use != "register" {
		t.Fatalf("want register LabelMismatchError, got %v", err)
	}
}

func TestWithArityMismatchLatched(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("v", "a", "b")
	if c := cv.With("only-one"); c != nil {
		t.Fatal("arity-mismatched With returned a live counter")
	}
	cv.With("only-one").Inc() // and the nil child must no-op
	var lm *LabelMismatchError
	if err := r.Err(); !errors.As(err, &lm) || lm.Use != "with" {
		t.Fatalf("want with LabelMismatchError, got %v", err)
	}
}

func TestSnapshotDeterministicForVecs(t *testing.T) {
	// Two registries populated in opposite orders must serialize to
	// identical bytes.
	mk := func(order []int) string {
		r := NewRegistry()
		cv := r.CounterVec("c", "i")
		hv := r.HistogramVec("h", "i")
		for _, i := range order {
			cv.With(fmt.Sprint(i)).Add(int64(i))
			hv.With(fmt.Sprint(i)).Observe(float64(i))
		}
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := mk([]int{0, 1, 2, 3})
	b := mk([]int{3, 1, 0, 2})
	if a != b {
		t.Fatalf("vec snapshot order-dependent:\n%s\nvs\n%s", a, b)
	}
}

// TestCounterVecConcurrentScrape hammers one vec from 16 goroutines —
// both resolving new children and incrementing existing ones — while the
// main goroutine scrapes. Run under -race (CI does) this is the
// thread-safety proof for the RWMutex child map.
func TestCounterVecConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("hammer", "worker", "step")
	const workers = 16
	const iters = 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				cv.With(fmt.Sprint(w), fmt.Sprint(i%8)).Inc()
			}
		}(w)
	}
	close(start)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
			if err := r.WriteProm(&strings.Builder{}); err != nil {
				t.Errorf("scrape during hammer: %v", err)
				scraping = false
			}
		}
	}
	wg.Wait()
	var total int64
	for _, v := range r.Snapshot().Counters {
		total += v
	}
	if total != workers*iters {
		t.Fatalf("lost increments: %d of %d", total, workers*iters)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer().WithCap(4)
	for i := 0; i < 10; i++ {
		tr.Span(fmt.Sprintf("s%d", i), "test", float64(i), 1, 0)
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Fatalf("span %d = %q, want %q (ring not oldest-first)", i, s.Name, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if tail := tr.Tail(2); len(tail) != 2 || tail[1].Name != "s9" {
		t.Fatalf("Tail(2) = %v", tail)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear ring state")
	}
	// Cap <= 0 restores unbounded mode.
	tr.WithCap(0)
	for i := 0; i < 10; i++ {
		tr.Span("x", "test", 0, 1, 0)
	}
	if tr.Len() != 10 {
		t.Fatalf("unbounded mode capped at %d", tr.Len())
	}
}
