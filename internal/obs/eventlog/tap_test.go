package eventlog

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestTapReplayAndFollow: a follower that starts late replays the full
// prefix, then sees live appends, then observes Close.
func TestTapReplayAndFollow(t *testing.T) {
	tap := NewTap()
	tap.Write([]byte("a\n"))
	tap.Write([]byte("b\n"))

	var got [][]byte
	i := 0
	lines, closed, _ := tap.Since(i)
	if closed {
		t.Fatal("tap closed early")
	}
	got = append(got, lines...)
	i += len(lines)
	if len(got) != 2 {
		t.Fatalf("replay got %d lines", len(got))
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			lines, closed, wait := tap.Since(i)
			got = append(got, lines...)
			i += len(lines)
			if closed {
				return
			}
			<-wait
		}
	}()
	tap.Write([]byte("c\n"))
	tap.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never saw Close")
	}
	want := [][]byte{[]byte("a\n"), []byte("b\n"), []byte("c\n")}
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d", len(got), len(want))
	}
	for j := range want {
		if !bytes.Equal(got[j], want[j]) {
			t.Fatalf("line %d = %q, want %q", j, got[j], want[j])
		}
	}
}

// TestTapWriteAfterCloseDiscarded: the stream is immutable once complete.
func TestTapWriteAfterCloseDiscarded(t *testing.T) {
	tap := NewTap()
	tap.Write([]byte("a\n"))
	tap.Close()
	tap.Close() // idempotent
	if n, err := tap.Write([]byte("late\n")); n != 5 || err != nil {
		t.Fatalf("Write after close: %d %v", n, err)
	}
	if tap.Len() != 1 {
		t.Fatalf("late write retained: %d lines", tap.Len())
	}
	lines, closed, _ := tap.Since(0)
	if !closed || len(lines) != 1 {
		t.Fatalf("closed=%v lines=%d", closed, len(lines))
	}
}

// TestTapCopiesLines: the tap must not alias the caller's buffer (the
// Logger reuses its line buffer between events).
func TestTapCopiesLines(t *testing.T) {
	tap := NewTap()
	buf := []byte("first\n")
	tap.Write(buf)
	copy(buf, "XXXXX")
	lines, _, _ := tap.Since(0)
	if string(lines[0]) != "first\n" {
		t.Fatalf("tap aliased caller buffer: %q", lines[0])
	}
}

// TestTapSinceClamps: out-of-range indices are clamped, not panics.
func TestTapSinceClamps(t *testing.T) {
	tap := NewTap()
	tap.Write([]byte("a\n"))
	if lines, _, _ := tap.Since(-3); len(lines) != 1 {
		t.Fatalf("negative index: %d lines", len(lines))
	}
	if lines, _, _ := tap.Since(99); len(lines) != 0 {
		t.Fatalf("past-end index: %d lines", len(lines))
	}
}

// TestTapNil: a nil tap is inert for writers and reports closed to readers.
func TestTapNil(t *testing.T) {
	var tap *Tap
	if n, err := tap.Write([]byte("x")); n != 1 || err != nil {
		t.Fatalf("nil write: %d %v", n, err)
	}
	tap.Close()
	lines, closed, wait := tap.Since(0)
	if len(lines) != 0 || !closed {
		t.Fatalf("nil Since: %d lines closed=%v", len(lines), closed)
	}
	select {
	case <-wait:
	default:
		t.Fatal("nil wait channel not closed")
	}
	if tap.Len() != 0 {
		t.Fatal("nil Len")
	}
}

// TestTapThroughLogger: a Logger whose writer multiplexes into a Tap
// yields one tap line per event, byte-identical to the writer's output.
func TestTapThroughLogger(t *testing.T) {
	tap := NewTap()
	var sink bytes.Buffer
	log := New(io.MultiWriter(&sink, tap), Info)
	log.SetClock(func() time.Time { return time.Unix(0, 42).UTC() })
	log.Info("run.start", Int("steps", 3))
	log.Info("run.progress", Int("step", 1))
	log.Info("run.end")
	tap.Close()

	lines, closed, _ := tap.Since(0)
	if !closed || len(lines) != 3 {
		t.Fatalf("closed=%v lines=%d", closed, len(lines))
	}
	if got := bytes.Join(lines, nil); !bytes.Equal(got, sink.Bytes()) {
		t.Fatalf("tap diverges from writer:\n%s\nvs\n%s", got, sink.Bytes())
	}
}

// TestTapConcurrent: racing writers and followers agree on a single
// totally-ordered stream (run with -race).
func TestTapConcurrent(t *testing.T) {
	tap := NewTap()
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				tap.Write([]byte(fmt.Sprintf("w%d-%d\n", w, k)))
			}
		}(w)
	}
	results := make([][][]byte, 3)
	var rg sync.WaitGroup
	for r := range results {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			i := 0
			for {
				lines, closed, wait := tap.Since(i)
				results[r] = append(results[r], lines...)
				i += len(lines)
				if closed {
					return
				}
				<-wait
			}
		}(r)
	}
	wg.Wait()
	tap.Close()
	rg.Wait()
	if tap.Len() != writers*perWriter {
		t.Fatalf("retained %d lines, want %d", tap.Len(), writers*perWriter)
	}
	for r := 1; r < len(results); r++ {
		if len(results[r]) != len(results[0]) {
			t.Fatalf("follower %d saw %d lines, follower 0 saw %d",
				r, len(results[r]), len(results[0]))
		}
		for j := range results[0] {
			if !bytes.Equal(results[r][j], results[0][j]) {
				t.Fatalf("followers diverge at line %d", j)
			}
		}
	}
}
