package eventlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"wavepim/internal/obs"
)

// fixedClock returns a deterministic, advancing clock for byte-stable
// output.
func fixedClock() func() time.Time {
	t := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Nanosecond)
		return t
	}
}

func TestLogLineFormat(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Info)
	l.SetClock(func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 1, time.UTC) })
	l.Info("run.start", Str("equation", "acoustic"), Int("steps", 4))
	want := `{"ts":"2026-08-05T12:00:00.000000001Z","level":"info","event":"run.start","equation":"acoustic","steps":4}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestFieldTypes(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Debug)
	l.SetClock(fixedClock())
	l.Debug("types",
		Str("s", "a\"b\\c\nd\te"),
		Int64("i", -12),
		Uint64("u", 18446744073709551615),
		F64("f", 0.25),
		F64("inf", math.Inf(1)),
		F64("nan", math.NaN()),
		Bool("b", true))
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("line does not parse: %v\n%s", err, buf.String())
	}
	if ev["s"] != "a\"b\\c\nd\te" {
		t.Fatalf("string round-trip: %q", ev["s"])
	}
	if ev["i"] != float64(-12) || ev["b"] != true || ev["f"] != 0.25 {
		t.Fatalf("scalar fields: %v", ev)
	}
	// Non-finite floats are quoted, keeping the line valid JSON.
	if ev["inf"] != "+Inf" || ev["nan"] != "NaN" {
		t.Fatalf("non-finite floats: inf=%v nan=%v", ev["inf"], ev["nan"])
	}
	// Uint64 max survives textually (json numbers lose precision past 2^53).
	if !strings.Contains(buf.String(), `"u":18446744073709551615`) {
		t.Fatalf("uint64 mangled: %s", buf.String())
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Warn)
	l.SetClock(fixedClock())
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %v", lines)
	}
	if !l.Enabled(Error) || l.Enabled(Info) {
		t.Fatal("Enabled disagrees with filtering")
	}
	for lv, name := range map[Level]string{Debug: "debug", Info: "info", Warn: "warn", Error: "error"} {
		if lv.String() != name || ParseLevel(name) != lv {
			t.Fatalf("level %v round-trip", lv)
		}
	}
	if ParseLevel("bogus") != Info {
		t.Fatal("unknown level must default to Info")
	}
}

func TestWithRunAndDerivation(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Info)
	l.SetClock(fixedClock())
	r1 := l.WithRun("r1")
	r2 := r1.With(Str("job", "acoustic"))
	r1.Info("a")
	r2.Info("b")
	l.Info("c")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], `"run":"r1"`) {
		t.Fatalf("derived logger lost run id: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"run":"r1"`) || !strings.Contains(lines[1], `"job":"acoustic"`) {
		t.Fatalf("second derivation lost fields: %s", lines[1])
	}
	if strings.Contains(lines[2], `"run"`) {
		t.Fatalf("parent polluted by derivation: %s", lines[2])
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	l.Info("x", Str("k", "v"))
	l.SetClock(fixedClock())
	l.SetRecorder(nil)
	if l.WithRun("r") != nil || l.With(Str("a", "b")) != nil {
		t.Fatal("derivations of nil must stay nil")
	}
	if l.Enabled(Error) {
		t.Fatal("nil logger claims to be enabled")
	}
}

func TestConcurrentLogging(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Info)
	l.SetClock(fixedClock())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rl := l.WithRun(fmt.Sprintf("r%d", w))
			for i := 0; i < 200; i++ {
				rl.Info("tick", Int("i", i))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("lost lines: %d", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved/corrupt line: %q", line)
		}
	}
}

func TestFlightRecorderRing(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer().WithCap(8)
	for i := 0; i < 12; i++ {
		tr.Span(fmt.Sprintf("s%d", i), "test", float64(i), 1, 0)
	}
	l := New(&buf, Info)
	l.SetClock(fixedClock())
	fr := NewFlightRecorder(tr, 4, 3)
	l.SetRecorder(fr)
	for i := 0; i < 10; i++ {
		l.Info("e", Int("i", i))
	}
	d := fr.Dump("test", "r")
	if d.Reason != "test" || d.Run != "r" {
		t.Fatalf("header: %+v", d)
	}
	if len(d.Events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(d.Events))
	}
	if d.DroppedEvents != 6 {
		t.Fatalf("dropped = %d, want 6", d.DroppedEvents)
	}
	// Oldest-first, and each entry is a complete JSON object (no newline).
	for i, raw := range d.Events {
		var ev map[string]any
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if want := float64(6 + i); ev["i"] != want {
			t.Fatalf("event %d = %v, want i=%v", i, ev["i"], want)
		}
		if bytes.ContainsRune(raw, '\n') {
			t.Fatalf("event %d kept its newline", i)
		}
	}
	if len(d.Spans) != 3 || d.Spans[2].Name != "s11" {
		t.Fatalf("span tail: %+v", d.Spans)
	}
	// The dump serializes as JSON.
	var out bytes.Buffer
	if err := d.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var back FlightDump
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Reason != "test" || len(back.Events) != 4 || len(back.Spans) != 3 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.record([]byte("x"))
	if fr.Dump("r", "") != nil {
		t.Fatal("nil recorder must dump nil")
	}
	// Recorder without a tracer still dumps events.
	fr = NewFlightRecorder(nil, 2, 2)
	fr.record([]byte(`{"a":1}` + "\n"))
	d := fr.Dump("x", "")
	if len(d.Events) != 1 || d.Spans != nil {
		t.Fatalf("tracerless dump: %+v", d)
	}
}

func TestRecorderSeesFilteredWriterStream(t *testing.T) {
	// The recorder captures exactly what the writer sees: events below
	// the level reach neither.
	var buf bytes.Buffer
	l := New(&buf, Warn)
	l.SetClock(fixedClock())
	fr := NewFlightRecorder(nil, 8, 0)
	l.SetRecorder(fr)
	l.Info("dropped")
	l.Warn("kept")
	d := fr.Dump("x", "")
	if len(d.Events) != 1 || !bytes.Contains(d.Events[0], []byte(`"kept"`)) {
		t.Fatalf("recorder/writer disagree: %v", d.Events)
	}
}

func BenchmarkLogEvent(b *testing.B) {
	l := New(nilWriter{}, Info)
	l.SetClock(func() time.Time { return time.Unix(0, 0) })
	rl := l.WithRun("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rl.Info("fault.rung", Str("rung", "ecc"), Int("block", 3), F64("cost_seconds", 1e-9))
	}
}

func BenchmarkNilLogger(b *testing.B) {
	var l *Logger
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Info("fault.rung", Str("rung", "ecc"), Int("block", 3), F64("cost_seconds", 1e-9))
	}
}

type nilWriter struct{}

func (nilWriter) Write(p []byte) (int, error) { return len(p), nil }
