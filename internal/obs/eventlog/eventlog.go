// Package eventlog is the reproduction's structured event log: leveled,
// allocation-conscious JSON-lines output for long-running services
// (wavepimd) and instrumented CLI runs. It complements internal/obs —
// metrics say how much and how fast, the event log says what happened and
// in which run.
//
// Design points, in the same spirit as obs:
//
//   - A nil *Logger is the zero-cost off switch: every method no-ops, so
//     instrumented code holds one pointer and needs no branches.
//   - Events are encoded by hand into a reused buffer under the logger's
//     mutex — no maps, no reflection, no fmt in the hot path — so a rung
//     event inside the recovery ladder costs one lock and one write.
//   - Fields are typed (Str/Int/Uint64/F64/Bool), keys are expected to be
//     fixed identifiers, and the encoder escapes values, so output is
//     always parseable JSONL.
//   - Derived loggers share the parent's writer, level, clock, and flight
//     recorder; WithRun pre-renders the run id into every event, giving
//     per-Session run attribution for free.
//
// The clock is injectable (SetClock) so tests produce byte-stable lines.
package eventlog

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"

	"wavepim/internal/obs"
)

// Level orders event severities.
type Level int8

const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String returns the lowercase level name used in the JSON output.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to its
// Level; unknown names default to Info.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return Debug
	case "warn":
		return Warn
	case "error":
		return Error
	default:
		return Info
	}
}

// fieldKind discriminates the Field payload.
type fieldKind uint8

const (
	kindStr fieldKind = iota
	kindInt
	kindUint
	kindFloat
	kindBool
)

// Field is one typed key/value pair of an event.
type Field struct {
	Key  string
	kind fieldKind
	s    string
	i    int64
	u    uint64
	f    float64
	b    bool
}

// Str builds a string field.
func Str(k, v string) Field { return Field{Key: k, kind: kindStr, s: v} }

// Int builds an int field.
func Int(k string, v int) Field { return Field{Key: k, kind: kindInt, i: int64(v)} }

// Int64 builds an int64 field.
func Int64(k string, v int64) Field { return Field{Key: k, kind: kindInt, i: v} }

// Uint64 builds a uint64 field.
func Uint64(k string, v uint64) Field { return Field{Key: k, kind: kindUint, u: v} }

// F64 builds a float64 field.
func F64(k string, v float64) Field { return Field{Key: k, kind: kindFloat, f: v} }

// Bool builds a bool field.
func Bool(k string, v bool) Field { return Field{Key: k, kind: kindBool, b: v} }

// core is the shared state behind a logger and all its derivations.
type core struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte // reused line buffer, guarded by mu

	level Level
	now   func() time.Time
	rec   *FlightRecorder
}

// Logger emits JSONL events. Create with New; derive per-run loggers with
// WithRun. A nil *Logger discards everything.
type Logger struct {
	c    *core
	base []byte // pre-rendered `,"k":"v"` pairs appended to every event
}

// New creates a logger writing events at or above level to w.
func New(w io.Writer, level Level) *Logger {
	return &Logger{c: &core{w: w, level: level, now: time.Now}}
}

// SetClock replaces the timestamp source (tests). No-op on nil.
func (l *Logger) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.c.mu.Lock()
	l.c.now = now
	l.c.mu.Unlock()
}

// SetRecorder tees every emitted line (regardless of level filtering —
// the recorder sees what the writer sees) into a flight recorder.
// No-op on nil.
func (l *Logger) SetRecorder(r *FlightRecorder) {
	if l == nil {
		return
	}
	l.c.mu.Lock()
	l.c.rec = r
	l.c.mu.Unlock()
}

// WithRun derives a logger whose every event carries `"run":id`. The
// derivation shares the parent's writer, level, clock, and recorder.
func (l *Logger) WithRun(id string) *Logger {
	return l.With(Str("run", id))
}

// With derives a logger with extra fields pre-rendered into every event.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	base := append([]byte(nil), l.base...)
	for _, f := range fields {
		base = appendField(base, f)
	}
	return &Logger{c: l.c, base: base}
}

// Enabled reports whether events at lv would be written (false for nil).
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.c.level
}

// Debugf-style helpers. All no-op on a nil logger.

func (l *Logger) Debug(msg string, fields ...Field) { l.Log(Debug, msg, fields...) }
func (l *Logger) Info(msg string, fields ...Field)  { l.Log(Info, msg, fields...) }
func (l *Logger) Warn(msg string, fields ...Field)  { l.Log(Warn, msg, fields...) }
func (l *Logger) Error(msg string, fields ...Field) { l.Log(Error, msg, fields...) }

// Log encodes and writes one event:
//
//	{"ts":"2026-08-05T12:00:00.000000001Z","level":"info","event":"run.start","run":"r1","steps":4}
//
// Events below the logger's level are dropped before encoding.
func (l *Logger) Log(lv Level, msg string, fields ...Field) {
	if l == nil || lv < l.c.level {
		return
	}
	c := l.c
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := c.buf[:0]
	buf = append(buf, `{"ts":"`...)
	buf = c.now().UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, lv.String()...)
	buf = append(buf, `","event":`...)
	buf = appendJSONString(buf, msg)
	buf = append(buf, l.base...)
	for _, f := range fields {
		buf = appendField(buf, f)
	}
	buf = append(buf, '}', '\n')
	c.buf = buf // keep the grown buffer for reuse
	if c.w != nil {
		c.w.Write(buf)
	}
	if c.rec != nil {
		c.rec.record(buf)
	}
}

// appendField renders `,"key":value`.
func appendField(buf []byte, f Field) []byte {
	buf = append(buf, ',')
	buf = appendJSONString(buf, f.Key)
	buf = append(buf, ':')
	switch f.kind {
	case kindStr:
		buf = appendJSONString(buf, f.s)
	case kindInt:
		buf = strconv.AppendInt(buf, f.i, 10)
	case kindUint:
		buf = strconv.AppendUint(buf, f.u, 10)
	case kindFloat:
		// JSON has no Inf/NaN; quote them rather than emit invalid JSON.
		if f.f != f.f || f.f > 1.797e308 || f.f < -1.797e308 {
			buf = appendJSONString(buf, strconv.FormatFloat(f.f, 'g', -1, 64))
		} else {
			buf = strconv.AppendFloat(buf, f.f, 'g', -1, 64)
		}
	case kindBool:
		buf = strconv.AppendBool(buf, f.b)
	}
	return buf
}

// appendJSONString appends s as a quoted, escaped JSON string. Control
// characters, quotes, and backslashes are escaped; everything else is
// passed through (keys and values here are ASCII identifiers and short
// messages, valid UTF-8 passes through unchanged).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

// FlightRecorder keeps the most recent events (as serialized JSONL) and,
// via an attached tracer, the most recent spans — the telemetry a crashed
// or unrecoverable run leaves behind. It is the software analogue of an
// avionics flight recorder: always on, bounded memory, snapshotted at the
// moment of failure.
//
// A nil *FlightRecorder is inert (Dump returns nil).
type FlightRecorder struct {
	mu       sync.Mutex
	events   [][]byte // ring, next is the write index once full
	cap      int
	next     int
	full     bool
	dropped  int64
	tracer   *obs.Tracer
	spanTail int
}

// NewFlightRecorder creates a recorder keeping the last eventCap events
// and, when snapshotting, the last spanTail spans of tracer (which may be
// nil for an events-only recorder).
func NewFlightRecorder(tracer *obs.Tracer, eventCap, spanTail int) *FlightRecorder {
	if eventCap <= 0 {
		eventCap = 256
	}
	if spanTail <= 0 {
		spanTail = 256
	}
	return &FlightRecorder{
		events:   make([][]byte, 0, eventCap),
		cap:      eventCap,
		tracer:   tracer,
		spanTail: spanTail,
	}
}

// record stores a copy of one serialized event line.
func (r *FlightRecorder) record(line []byte) {
	if r == nil {
		return
	}
	cp := append([]byte(nil), line...)
	r.mu.Lock()
	if !r.full && len(r.events) < r.cap {
		r.events = append(r.events, cp)
		if len(r.events) == r.cap {
			r.full = true
		}
	} else {
		r.events[r.next] = cp
		r.next = (r.next + 1) % r.cap
		r.dropped++
	}
	r.mu.Unlock()
}

// FlightDump is one snapshot of the recorder: the reason it was taken,
// the retained events (oldest first, each a complete JSON object), and
// the span tail. Field order is fixed for byte-diffable artifacts.
type FlightDump struct {
	Reason        string            `json:"reason"`
	Run           string            `json:"run,omitempty"`
	Trace         string            `json:"trace,omitempty"` // cluster trace id (hex), when the run carried one
	DroppedEvents int64             `json:"dropped_events"`
	Events        []json.RawMessage `json:"events"`
	Spans         []obs.Span        `json:"spans"`
}

// Dump snapshots the recorder. Returns nil on a nil recorder.
func (r *FlightRecorder) Dump(reason, run string) *FlightDump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	events := make([]json.RawMessage, 0, len(r.events))
	if r.full {
		for i := 0; i < r.cap; i++ {
			events = append(events, trimLine(r.events[(r.next+i)%r.cap]))
		}
	} else {
		for _, e := range r.events {
			events = append(events, trimLine(e))
		}
	}
	dropped := r.dropped
	tracer, tail := r.tracer, r.spanTail
	r.mu.Unlock()

	return &FlightDump{
		Reason:        reason,
		Run:           run,
		DroppedEvents: dropped,
		Events:        events,
		Spans:         tracer.Tail(tail),
	}
}

// trimLine strips the trailing newline of a recorded JSONL line so it
// embeds as a JSON array element.
func trimLine(b []byte) json.RawMessage {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return json.RawMessage(b[:n-1])
	}
	return json.RawMessage(b)
}

// WriteJSON writes the dump as indented JSON with a trailing newline.
// No-op (writes "null") on a nil dump.
func (d *FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
