package eventlog

import "sync"

// Tap is an io.Writer that retains every line written through it and lets
// any number of readers replay the stream from the beginning and then
// follow it live. It is the bridge between a run's event log and the
// serving layer's SSE endpoints: the worker wires a Tap into the run's
// logger (via io.MultiWriter next to the process-wide writer), and each
// GET /runs/{id}/events subscriber drains Since in a loop.
//
// The Logger writes exactly one complete JSONL line per Write call, so a
// Tap line is always one complete event. Lines are copied on write and
// never mutated afterwards, which makes the slices returned by Since safe
// to read without holding any lock.
type Tap struct {
	mu     sync.Mutex
	lines  [][]byte
	done   bool
	notify chan struct{} // closed and replaced on every append; closed for good on Close
}

// NewTap creates an empty, open tap.
func NewTap() *Tap {
	return &Tap{notify: make(chan struct{})}
}

// Write retains a copy of one event line. Writes after Close are
// discarded (the stream has been declared complete). Always returns
// len(p), nil so an io.MultiWriter never aborts the real writer.
func (t *Tap) Write(p []byte) (int, error) {
	if t == nil {
		return len(p), nil
	}
	cp := append([]byte(nil), p...)
	t.mu.Lock()
	if !t.done {
		t.lines = append(t.lines, cp)
		close(t.notify)
		t.notify = make(chan struct{})
	}
	t.mu.Unlock()
	return len(p), nil
}

// Close marks the stream complete and wakes every follower. Idempotent.
func (t *Tap) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		close(t.notify)
	}
	t.mu.Unlock()
}

// Len returns the number of retained lines.
func (t *Tap) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lines)
}

// Since returns the lines appended at or after index i (clamped), whether
// the stream is complete, and a channel that is closed on the next append
// or on Close. The follower loop is:
//
//	i := 0
//	for {
//		lines, closed, wait := tap.Since(i)
//		for _, ln := range lines { emit(ln); i++ }
//		if closed { return }
//		select { case <-wait: case <-ctx.Done(): return }
//	}
func (t *Tap) Since(i int) (lines [][]byte, closed bool, wait <-chan struct{}) {
	if t == nil {
		ch := make(chan struct{})
		close(ch)
		return nil, true, ch
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i > len(t.lines) {
		i = len(t.lines)
	}
	return t.lines[i:], t.done, t.notify
}
