package obs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Labeled instruments ("vecs"). A vec is a family of instruments of one
// kind sharing a name and a fixed, ordered set of label keys; With resolves
// one child per label-value tuple. The design mirrors Prometheus client
// conventions but stays registry-local and allocation-light: hot code
// resolves its child once (With at setup time) and holds the instrument
// pointer, exactly like the unlabeled instruments.
//
// All vec types are nil-safe: With on a nil vec returns a nil instrument,
// which no-ops, so the nil-sink fast path extends through labels.
//
// Label cardinality is the caller's contract: keys like "phase", "kind",
// "equation", and "rung" are drawn from small enumerated sets. Block- or
// run-indexed labels must be capped by the producer (see DESIGN.md §10);
// the registry does not police cardinality.

// KindConflictError reports a metric name registered twice with different
// instrument kinds (for example Counter("x") after Gauge("x")). The second
// registration yields a nil (no-op) instrument and the error is latched on
// the registry — surfaced by Registry.Err, WriteJSON, and WriteProm — so
// the conflict cannot silently fork the exposition.
type KindConflictError struct {
	Name      string // the conflicted metric name
	Existing  string // kind registered first
	Requested string // kind of the rejected registration
}

func (e *KindConflictError) Error() string {
	return fmt.Sprintf("obs: metric %q already registered as %s, re-registered as %s",
		e.Name, e.Existing, e.Requested)
}

// LabelMismatchError reports a vec registered twice with different label
// keys, or a With call whose value count does not match the vec's keys.
type LabelMismatchError struct {
	Name string
	Want []string // the registered label keys
	Got  []string // the conflicting keys (or With values, for arity errors)
	Use  string   // "register" or "with"
}

func (e *LabelMismatchError) Error() string {
	return fmt.Sprintf("obs: vec %q (%s): label keys %v do not match registered %v",
		e.Name, e.Use, e.Got, e.Want)
}

// labelSep joins label values into a child key. Label values containing
// the unit separator would alias; values are expected to be short
// enumerated identifiers, not free text.
const labelSep = "\x1f"

// vecChild pairs a child instrument with its label values (kept for
// deterministic exposition).
type vecChild[T any] struct {
	values []string
	inst   T
}

// vec is the generic core shared by the three concrete vec types.
type vec[T any] struct {
	name string
	keys []string
	reg  *Registry // for latching With-arity errors; never nil on a live vec

	mu   sync.RWMutex
	kids map[string]*vecChild[T]
}

func newVec[T any](reg *Registry, name string, keys []string) *vec[T] {
	return &vec[T]{name: name, keys: keys, reg: reg, kids: make(map[string]*vecChild[T])}
}

// with resolves (creating via mk) the child for one label-value tuple.
func (v *vec[T]) with(mk func() T, values []string) (T, bool) {
	var zero T
	if len(values) != len(v.keys) {
		v.reg.latchConflict(v.name+"/arity", &LabelMismatchError{
			Name: v.name, Want: v.keys, Got: append([]string(nil), values...), Use: "with",
		})
		return zero, false
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	c, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return c.inst, true
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.kids[key]; ok {
		return c.inst, true
	}
	c = &vecChild[T]{values: append([]string(nil), values...), inst: mk()}
	v.kids[key] = c
	return c.inst, true
}

// children returns the vec's children sorted by label-value tuple — the
// deterministic iteration order every exporter uses.
func (v *vec[T]) children() []*vecChild[T] {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*vecChild[T], 0, len(v.kids))
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, v.kids[k])
	}
	return out
}

// labelString renders one child's label set as {k1="v1",k2="v2"} with
// escaped values — the exposition-format label block, also used as the
// child's key in Snapshot maps.
func labelString(keys, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format label escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ v *vec[*Counter] }

// With resolves the child counter for the given label values (in key
// order). Nil vec or wrong arity returns a nil (no-op) counter; arity
// errors are latched on the registry.
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	c, _ := cv.v.with(func() *Counter { return &Counter{} }, values)
	return c
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ v *vec[*Gauge] }

// With resolves the child gauge (nil on nil vec or arity mismatch).
func (gv *GaugeVec) With(values ...string) *Gauge {
	if gv == nil {
		return nil
	}
	g, _ := gv.v.with(func() *Gauge { return &Gauge{} }, values)
	return g
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct{ v *vec[*Histogram] }

// With resolves the child histogram (nil on nil vec or arity mismatch).
func (hv *HistogramVec) With(values ...string) *Histogram {
	if hv == nil {
		return nil
	}
	h, _ := hv.v.with(func() *Histogram { return &Histogram{} }, values)
	return h
}

// CounterVec returns (creating if needed) the named counter family with
// the given label keys. Nil from a nil registry; nil (with a latched
// typed error) when the name is already registered as another kind or
// with different keys.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.registerKind(name, "countervec") {
		return nil
	}
	cv, ok := r.ctrVecs[name]
	if !ok {
		cv = &CounterVec{v: newVec[*Counter](r, name, append([]string(nil), keys...))}
		r.ctrVecs[name] = cv
	} else if !sameKeys(cv.v.keys, keys) {
		r.latchConflictLocked(name, &LabelMismatchError{
			Name: name, Want: cv.v.keys, Got: append([]string(nil), keys...), Use: "register"})
		return nil
	}
	return cv
}

// GaugeVec returns (creating if needed) the named gauge family.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.registerKind(name, "gaugevec") {
		return nil
	}
	gv, ok := r.gaugeVecs[name]
	if !ok {
		gv = &GaugeVec{v: newVec[*Gauge](r, name, append([]string(nil), keys...))}
		r.gaugeVecs[name] = gv
	} else if !sameKeys(gv.v.keys, keys) {
		r.latchConflictLocked(name, &LabelMismatchError{
			Name: name, Want: gv.v.keys, Got: append([]string(nil), keys...), Use: "register"})
		return nil
	}
	return gv
}

// HistogramVec returns (creating if needed) the named histogram family.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.registerKind(name, "histogramvec") {
		return nil
	}
	hv, ok := r.histVecs[name]
	if !ok {
		hv = &HistogramVec{v: newVec[*Histogram](r, name, append([]string(nil), keys...))}
		r.histVecs[name] = hv
	} else if !sameKeys(hv.v.keys, keys) {
		r.latchConflictLocked(name, &LabelMismatchError{
			Name: name, Want: hv.v.keys, Got: append([]string(nil), keys...), Use: "register"})
		return nil
	}
	return hv
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// registerKind records the kind of a name, or latches a KindConflictError
// and returns false when the name is already claimed by a different kind.
// Caller holds r.mu.
func (r *Registry) registerKind(name, kind string) bool {
	if existing, ok := r.kinds[name]; ok {
		if existing != kind {
			r.latchConflictLocked(name, &KindConflictError{Name: name, Existing: existing, Requested: kind})
			return false
		}
		return true
	}
	r.kinds[name] = kind
	return true
}

// latchConflict records a registration error under the registry lock.
func (r *Registry) latchConflict(key string, err error) {
	r.mu.Lock()
	r.latchConflictLocked(key, err)
	r.mu.Unlock()
}

// latchConflictLocked keeps the first error per key (caller holds r.mu).
func (r *Registry) latchConflictLocked(key string, err error) {
	if _, dup := r.conflicts[key]; !dup {
		r.conflicts[key] = err
	}
}

// Err returns the registration errors latched so far (kind conflicts,
// label mismatches), joined in sorted-name order, or nil. Exporters
// return it so a conflicted registry cannot be scraped silently.
func (r *Registry) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.conflicts) == 0 {
		return nil
	}
	names := make([]string, 0, len(r.conflicts))
	for n := range r.conflicts {
		names = append(names, n)
	}
	sort.Strings(names)
	errs := make([]error, len(names))
	for i, n := range names {
		errs[i] = r.conflicts[n]
	}
	return errors.Join(errs...)
}

// Sink-level vec accessors (nil-safe, like the unlabeled ones).

// CounterVec resolves a registry counter family; nil from a nil sink.
func (s *Sink) CounterVec(name string, keys ...string) *CounterVec {
	if s == nil {
		return nil
	}
	return s.Reg.CounterVec(name, keys...)
}

// GaugeVec resolves a registry gauge family; nil from a nil sink.
func (s *Sink) GaugeVec(name string, keys ...string) *GaugeVec {
	if s == nil {
		return nil
	}
	return s.Reg.GaugeVec(name, keys...)
}

// HistogramVec resolves a registry histogram family; nil from a nil sink.
func (s *Sink) HistogramVec(name string, keys ...string) *HistogramVec {
	if s == nil {
		return nil
	}
	return s.Reg.HistogramVec(name, keys...)
}
