package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("gauge = %v, want 2.0", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var s *Sink
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Span("x", "y", 0, 1, 0)
	s.Span("x", "y", 0, 1, 0)
	s.Counter("c").Inc()
	s.Gauge("g").Set(1)
	s.Histogram("h").Observe(1)
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Histogram("h") != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Error("nil instruments must stay empty")
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1e-9, 2e-9, 5e-3, 1.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if !approxEq(h.Sum(), 1e-9+2e-9+5e-3+1.5) {
		t.Errorf("sum = %v", h.Sum())
	}
	if h.Min() != 1e-9 || h.Max() != 1.5 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if !approxEq(h.Mean(), h.Sum()/4) {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramBuckets(t *testing.T) {
	if bucketOf(0) != 0 || bucketOf(1e-13) != 0 {
		t.Error("tiny values must land in bucket 0")
	}
	if bucketOf(math.Inf(1)) != histBuckets-1 || bucketOf(1e30) != histBuckets-1 {
		t.Error("huge values must land in the last bucket")
	}
	for i := 1; i < histBuckets-1; i++ {
		v := histBase * math.Pow(histGrowth, float64(i)-0.5)
		if got := bucketOf(v); got != i {
			t.Errorf("bucketOf(%g) = %d, want %d", v, got, i)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1)
				r.Gauge("g").Set(float64(i))
				tr.Span("s", "cat", float64(i), 1, 0)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h").Count(); got != workers*per {
		t.Errorf("histogram count = %d", got)
	}
	if got := r.Histogram("h").Sum(); got != workers*per {
		t.Errorf("histogram sum = %v", got)
	}
	if tr.Len() != workers*per {
		t.Errorf("tracer len = %d", tr.Len())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("g").Set(3.5)
	r.Histogram("h").Observe(0.25)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if snap.Counters["a.first"] != 1 || snap.Counters["z.second"] != 2 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["g"] != 3.5 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	if hs := snap.Histograms["h"]; hs.Count != 1 || hs.Sum != 0.25 {
		t.Errorf("histograms = %v", snap.Histograms)
	}
	if got := r.Names("counter"); len(got) != 2 || got[0] != "a.first" {
		t.Errorf("Names = %v", got)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	tr.Span("volume", "blocks", 0, 1e-6, 0)
	tr.Span("flux", "blocks", 1e-6, 2e-6, 0)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events", len(out.TraceEvents))
	}
	if out.TraceEvents[0].Name != "volume" || out.TraceEvents[0].Ph != "X" {
		t.Errorf("event 0 = %+v", out.TraceEvents[0])
	}
	// Seconds convert to microseconds.
	if out.TraceEvents[1].TS != 1 || out.TraceEvents[1].Dur != 2 {
		t.Errorf("event 1 ts/dur = %v/%v, want 1/2", out.TraceEvents[1].TS, out.TraceEvents[1].Dur)
	}
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}
