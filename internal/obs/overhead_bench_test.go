package obs

import "testing"

// NilSink is a package-level mutable sink so the compiler cannot
// constant-fold the nil checks away in the benchmark below. It stays nil:
// the benchmark measures exactly the cost an instrumented hot loop pays
// when no sink is attached.
var NilSink *Sink

// workload is a stand-in for one element's worth of RHS arithmetic: long
// enough that a per-iteration instrument hook amortizes the way the real
// call sites do (one nil check per kernel call, not per flop).
func workload(x []float64) float64 {
	var sum float64
	for i, v := range x {
		sum += v*1.0000001 + float64(i&7)*0.25
	}
	return sum
}

// BenchmarkNilSinkOverhead is the CI-guarded pair
// (scripts/obs_overhead_guard.sh): "baseline" is the loop with no
// instrumentation at all; "nilsink" is the identical loop with the hooks
// the instrumented subsystems use — a sink nil check plus nil-receiver
// counter/histogram calls. The guard fails the build when nilsink exceeds
// baseline by more than 2%.
func BenchmarkNilSinkOverhead(b *testing.B) {
	x := make([]float64, 512)
	for i := range x {
		x[i] = float64(i) * 0.001
	}
	var keep float64

	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			keep += workload(x)
		}
	})

	b.Run("nilsink", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink := NilSink
			if sink != nil {
				sink.Counter("bench.calls").Inc()
			}
			keep += workload(x)
			if sink != nil {
				sink.Histogram("bench.seconds").Observe(keep)
			}
		}
	})

	if keep == -1 {
		b.Log(keep) // defeat dead-code elimination
	}
}
