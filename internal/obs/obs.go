// Package obs is the reproduction's observability layer: a lightweight,
// allocation-free metrics registry (counters, gauges, histograms) plus a
// span recorder with Chrome trace_event export. The paper's evaluation is
// entirely per-kernel timelines and energies (Tables 2-6, Figure 13), so
// the simulator's primary experimental output is what this package
// captures.
//
// Every instrument type is nil-safe: calling Add/Set/Observe on a nil
// pointer is a no-op, and a nil *Sink (or nil *Registry / *Tracer) is the
// zero-cost off switch. Instrumented code holds a single sink pointer and
// branches once per operation batch — when no sink is attached the hot
// paths are byte-identical to uninstrumented code (guarded by the
// BenchmarkNilSinkOverhead pair and the CI overhead gate).
//
// All instruments are safe for concurrent use: counters and gauges are
// single atomics, histogram buckets are atomic, and registry lookups are
// mutex-protected (lookups are expected at setup time, not per-event; hot
// code should resolve its instruments once and hold the pointers).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set to arbitrary values.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of exponential histogram buckets. Bucket i
// holds observations in (histBase*histGrowth^(i-1), histBase*histGrowth^i];
// bucket 0 holds everything <= histBase and the last bucket is unbounded.
// With base 1e-12 and growth 10 the range spans picoseconds to kiloseconds,
// which covers every duration and energy this simulator produces.
const (
	histBuckets = 18
	histBase    = 1e-12
	histGrowth  = 10
)

// Histogram accumulates float64 observations into fixed exponential
// buckets plus an exact sum/count/min/max.
type Histogram struct {
	counts  [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // stores math.Float64bits; initialized lazily
	maxBits atomic.Uint64
	hasObs  atomic.Bool
}

// bucketOf returns the bucket index for v.
func bucketOf(v float64) int {
	if v <= histBase || math.IsNaN(v) {
		return 0
	}
	exp := math.Floor(math.Log(v/histBase) / math.Log(histGrowth))
	if exp >= histBuckets-2 { // covers +Inf, whose float->int conversion is unspecified
		return histBuckets - 1
	}
	return 1 + int(exp)
}

// Observe records v. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if h.hasObs.CompareAndSwap(false, true) {
		h.minBits.Store(math.Float64bits(v))
		h.maxBits.Store(math.Float64bits(v))
		return
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min and Max return the observation extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || !h.hasObs.Load() {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

func (h *Histogram) Max() float64 {
	if h == nil || !h.hasObs.Load() {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Registry maps names to instruments. The zero value is not usable; call
// NewRegistry. A nil *Registry hands out nil instruments, so lookups
// against an absent registry compose with the nil-safe instrument methods.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil from a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil from a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil from a
// nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Snapshot is a point-in-time copy of every instrument, with
// deterministic (sorted) iteration order when marshaled.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values. Safe on a nil registry
// (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON with sorted
// keys (encoding/json sorts map keys, so the output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns the sorted instrument names of one kind ("counter",
// "gauge", "histogram") — a test and reporting convenience.
func (r *Registry) Names(kind string) []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	switch kind {
	case "counter":
		for n := range r.ctrs {
			out = append(out, n)
		}
	case "gauge":
		for n := range r.gauges {
			out = append(out, n)
		}
	case "histogram":
		for n := range r.hists {
			out = append(out, n)
		}
	default:
		panic(fmt.Sprintf("obs: unknown instrument kind %q", kind))
	}
	sort.Strings(out)
	return out
}
