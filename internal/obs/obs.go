// Package obs is the reproduction's observability layer: a lightweight,
// allocation-free metrics registry (counters, gauges, histograms) plus a
// span recorder with Chrome trace_event export. The paper's evaluation is
// entirely per-kernel timelines and energies (Tables 2-6, Figure 13), so
// the simulator's primary experimental output is what this package
// captures.
//
// Every instrument type is nil-safe: calling Add/Set/Observe on a nil
// pointer is a no-op, and a nil *Sink (or nil *Registry / *Tracer) is the
// zero-cost off switch. Instrumented code holds a single sink pointer and
// branches once per operation batch — when no sink is attached the hot
// paths are byte-identical to uninstrumented code (guarded by the
// BenchmarkNilSinkOverhead pair and the CI overhead gate).
//
// All instruments are safe for concurrent use: counters and gauges are
// single atomics, histogram buckets are atomic, and registry lookups are
// mutex-protected (lookups are expected at setup time, not per-event; hot
// code should resolve its instruments once and hold the pointers).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set to arbitrary values.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of exponential histogram buckets. Bucket i
// holds observations in (histBase*histGrowth^(i-1), histBase*histGrowth^i];
// bucket 0 holds everything <= histBase and the last bucket is unbounded.
// With base 1e-12 and growth 10 the range spans picoseconds to kiloseconds,
// which covers every duration and energy this simulator produces.
const (
	histBuckets = 18
	histBase    = 1e-12
	histGrowth  = 10
)

// Histogram accumulates float64 observations into fixed exponential
// buckets plus an exact sum/count/min/max.
type Histogram struct {
	counts  [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // stores math.Float64bits; initialized lazily
	maxBits atomic.Uint64
	hasObs  atomic.Bool
}

// bucketOf returns the bucket index for v.
func bucketOf(v float64) int {
	if v <= histBase || math.IsNaN(v) {
		return 0
	}
	exp := math.Floor(math.Log(v/histBase) / math.Log(histGrowth))
	if exp >= histBuckets-2 { // covers +Inf, whose float->int conversion is unspecified
		return histBuckets - 1
	}
	return 1 + int(exp)
}

// Observe records v. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if h.hasObs.CompareAndSwap(false, true) {
		h.minBits.Store(math.Float64bits(v))
		h.maxBits.Store(math.Float64bits(v))
		return
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min and Max return the observation extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || !h.hasObs.Load() {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

func (h *Histogram) Max() float64 {
	if h == nil || !h.hasObs.Load() {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// BucketCounts returns the per-bucket observation counts (all zero for
// nil). Bucket i's inclusive upper bound is HistogramUpperBounds()[i];
// the last bucket is unbounded.
func (h *Histogram) BucketCounts() [histBuckets]int64 {
	var out [histBuckets]int64
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}

// HistogramUpperBounds returns the inclusive upper bounds of the fixed
// exponential bucket layout. The final bucket's bound is +Inf. Bounds are
// computed with math.Pow10 (table-exact) rather than histBase*Pow(10, i),
// which rounds some decades to 9.999...e-06 and would leak ugly `le`
// values into the exposition.
func HistogramUpperBounds() [histBuckets]float64 {
	var ubs [histBuckets]float64
	baseExp := int(math.Round(math.Log10(histBase)))
	for i := 0; i < histBuckets-1; i++ {
		ubs[i] = math.Pow10(baseExp + i)
	}
	ubs[histBuckets-1] = math.Inf(1)
	return ubs
}

// Registry maps names to instruments. The zero value is not usable; call
// NewRegistry. A nil *Registry hands out nil instruments, so lookups
// against an absent registry compose with the nil-safe instrument methods.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram

	// Labeled families (vec.go).
	ctrVecs   map[string]*CounterVec
	gaugeVecs map[string]*GaugeVec
	histVecs  map[string]*HistogramVec

	// kinds maps every registered name to its instrument kind; conflicts
	// latches the typed error of each rejected registration (see
	// KindConflictError / LabelMismatchError in vec.go).
	kinds     map[string]string
	conflicts map[string]error
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:      make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		ctrVecs:   make(map[string]*CounterVec),
		gaugeVecs: make(map[string]*GaugeVec),
		histVecs:  make(map[string]*HistogramVec),
		kinds:     make(map[string]string),
		conflicts: make(map[string]error),
	}
}

// Counter returns (creating if needed) the named counter; nil from a nil
// registry, and nil (with a latched KindConflictError) when the name is
// already registered as another kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.registerKind(name, "counter") {
		return nil
	}
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil from a nil
// registry or on a kind conflict (latched as a typed error).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.registerKind(name, "gauge") {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil from a
// nil registry or on a kind conflict (latched as a typed error).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.registerKind(name, "histogram") {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Snapshot is a point-in-time copy of every instrument, with
// deterministic (sorted) iteration order when marshaled.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values. Safe on a nil registry
// (returns empty maps). Vec children appear under `name{k="v",...}` keys
// with label sets rendered in registered key order — combined with
// encoding/json's sorted map-key marshaling, snapshot output is fully
// deterministic for labeled and unlabeled instruments alike.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = histSnapshot(h)
	}
	for name, cv := range r.ctrVecs {
		for _, c := range cv.v.children() {
			s.Counters[name+labelString(cv.v.keys, c.values)] = c.inst.Value()
		}
	}
	for name, gv := range r.gaugeVecs {
		for _, c := range gv.v.children() {
			s.Gauges[name+labelString(gv.v.keys, c.values)] = c.inst.Value()
		}
	}
	for name, hv := range r.histVecs {
		for _, c := range hv.v.children() {
			s.Histograms[name+labelString(hv.v.keys, c.values)] = histSnapshot(c.inst)
		}
	}
	return s
}

func histSnapshot(h *Histogram) HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
	}
}

// WriteJSON writes the registry snapshot as indented JSON with sorted
// keys (encoding/json sorts map keys, so the output is deterministic).
// It returns the registry's latched registration errors (Err) if any —
// a conflicted registry cannot be exported silently.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return err
	}
	return r.Err()
}

// Names returns the sorted instrument names of one kind ("counter",
// "gauge", "histogram", "countervec", "gaugevec", "histogramvec") — a
// test and reporting convenience.
func (r *Registry) Names(kind string) []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	switch kind {
	case "counter":
		for n := range r.ctrs {
			out = append(out, n)
		}
	case "gauge":
		for n := range r.gauges {
			out = append(out, n)
		}
	case "histogram":
		for n := range r.hists {
			out = append(out, n)
		}
	case "countervec":
		for n := range r.ctrVecs {
			out = append(out, n)
		}
	case "gaugevec":
		for n := range r.gaugeVecs {
			out = append(out, n)
		}
	case "histogramvec":
		for n := range r.histVecs {
			out = append(out, n)
		}
	default:
		panic(fmt.Sprintf("obs: unknown instrument kind %q", kind))
	}
	sort.Strings(out)
	return out
}
