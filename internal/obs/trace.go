package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Span is one completed duration event. Times are in seconds on whatever
// clock the producer uses — the simulator records simulated chip time, the
// dg solvers record host wall time — and are converted to the microsecond
// timestamps Chrome's trace viewer expects only at export.
type Span struct {
	Name  string  // event name (phase or kernel)
	Cat   string  // category: "blocks", "transfer", "dram", "host", "stage", ...
	Start float64 // start time, seconds
	Dur   float64 // duration, seconds
	Track int     // rendered as the trace's thread id (one lane per track)
}

// End returns the span end time.
func (s Span) End() float64 { return s.Start + s.Dur }

// Tracer records spans. A nil *Tracer discards everything. Safe for
// concurrent use.
//
// By default a tracer grows without bound (the right mode for golden-trace
// tests and short runs, where every span matters). WithCap switches it to
// a fixed-capacity ring that keeps only the most recent spans — the mode
// long-running services use so a week of scraping cannot grow RSS.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	cap     int   // 0: unbounded append mode; >0: ring of this size
	start   int   // ring mode: index of the oldest span
	dropped int64 // ring mode: spans overwritten so far
}

// NewTracer creates an empty, unbounded tracer.
func NewTracer() *Tracer { return &Tracer{} }

// WithCap bounds the tracer to a ring of the n most recent spans (n <= 0
// restores unbounded mode) and returns the tracer for chaining:
//
//	tr := obs.NewTracer().WithCap(4096)
//
// Switching modes resets recorded spans.
func (t *Tracer) WithCap(n int) *Tracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if n < 0 {
		n = 0
	}
	t.cap = n
	t.spans = nil
	t.start = 0
	t.dropped = 0
	t.mu.Unlock()
	return t
}

// Record appends a completed span. No-op on a nil tracer. In ring mode,
// once the ring is full each new span overwrites the oldest one.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.cap > 0 && len(t.spans) == t.cap {
		t.spans[t.start] = s
		t.start = (t.start + 1) % t.cap
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Span is the convenience form of Record.
func (t *Tracer) Span(name, cat string, start, dur float64, track int) {
	t.Record(Span{Name: name, Cat: cat, Start: start, Dur: dur, Track: track})
}

// Spans returns a copy of the recorded spans in record order (in ring
// mode: oldest retained first).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	if t.start == 0 {
		copy(out, t.spans)
	} else {
		n := copy(out, t.spans[t.start:])
		copy(out[n:], t.spans[:t.start])
	}
	return out
}

// Tail returns the most recent n spans in record order (all of them when
// fewer are retained) — the span half of a flight-recorder snapshot.
func (t *Tracer) Tail(n int) []Span {
	all := t.Spans()
	if n <= 0 || len(all) <= n {
		return all
	}
	return all[len(all)-n:]
}

// Dropped reports how many spans the ring has overwritten (0 in
// unbounded mode or for nil).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of recorded spans (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset drops all recorded spans (keeping the configured cap mode).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.start = 0
	t.dropped = 0
	t.mu.Unlock()
}

// chromeEvent is one trace_event entry ("X" = complete event). Timestamps
// and durations are microseconds, per the Chrome trace format spec.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// chromeTrace is the JSON-object envelope (the variant that allows
// metadata next to the event array).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded spans as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto. Spans keep their record order;
// producers that record in clock order (the simulator commits phases as
// the simulated clock advances) therefore export monotonically ordered
// timestamps.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	out := chromeTrace{TraceEvents: make([]chromeEvent, len(spans)), DisplayTimeUnit: "ns"}
	for i, s := range spans {
		out.TraceEvents[i] = chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.Start * 1e6, Dur: s.Dur * 1e6,
			PID: 1, TID: s.Track,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Sink bundles a metrics registry and a tracer — the single pointer
// instrumented subsystems hold. A nil *Sink disables all instrumentation;
// the accessor methods below are nil-safe so call sites can stay
// branch-free at the cost of one nil-returning call.
type Sink struct {
	Reg   *Registry
	Trace *Tracer
}

// NewSink creates a sink with a fresh registry and tracer.
func NewSink() *Sink { return &Sink{Reg: NewRegistry(), Trace: NewTracer()} }

// Counter resolves a registry counter; nil from a nil sink.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Reg.Counter(name)
}

// Gauge resolves a registry gauge; nil from a nil sink.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Reg.Gauge(name)
}

// Histogram resolves a registry histogram; nil from a nil sink.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.Reg.Histogram(name)
}

// Span records a span; no-op on a nil sink.
func (s *Sink) Span(name, cat string, start, dur float64, track int) {
	if s == nil {
		return
	}
	s.Trace.Span(name, cat, start, dur, track)
}

// WriteTrace exports the Chrome trace (empty trace from a nil sink).
func (s *Sink) WriteTrace(w io.Writer) error {
	if s == nil {
		return (*Tracer)(nil).WriteChromeTrace(w)
	}
	return s.Trace.WriteChromeTrace(w)
}

// WriteMetrics exports the registry snapshot JSON (empty from nil).
func (s *Sink) WriteMetrics(w io.Writer) error {
	if s == nil {
		return (*Registry)(nil).WriteJSON(w)
	}
	return s.Reg.WriteJSON(w)
}
