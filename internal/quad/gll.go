// Package quad provides Gauss-Legendre-Lobatto (GLL) quadrature rules and
// the 1-D Lagrange differentiation matrices used by the nodal discontinuous
// Galerkin discretization (the paper's "GLL Point", "GLL Weight" and
// "dshape" constants of Table 1).
package quad

import (
	"fmt"
	"math"
)

// Rule holds an N-point GLL rule on the reference interval [-1, 1] together
// with the Lagrange differentiation matrix on its nodes.
type Rule struct {
	N       int         // number of points
	Points  []float64   // GLL nodes, ascending, Points[0]=-1, Points[N-1]=+1
	Weights []float64   // quadrature weights
	D       [][]float64 // D[i][j] = l_j'(x_i), derivative matrix ("dshape")
}

// legendreAndDeriv evaluates the Legendre polynomial P_n and its derivative
// P_n' at x using the three-term recurrence.
func legendreAndDeriv(n int, x float64) (p, dp float64) {
	if n == 0 {
		return 1, 0
	}
	pm1, p := 1.0, x
	for k := 2; k <= n; k++ {
		pk := ((2*float64(k)-1)*x*p - (float64(k)-1)*pm1) / float64(k)
		pm1, p = p, pk
	}
	// P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1); guard the endpoints.
	if x == 1 || x == -1 {
		dp = math.Pow(x, float64(n-1)) * float64(n) * float64(n+1) / 2
		return p, dp
	}
	dp = float64(n) * (x*p - pm1) / (x*x - 1)
	return p, dp
}

// New constructs the n-point GLL rule. It panics if n < 2 (a Lobatto rule
// needs both endpoints).
func New(n int) *Rule {
	if n < 2 {
		panic(fmt.Sprintf("quad: GLL rule needs n >= 2 points, got %d", n))
	}
	r := &Rule{
		N:       n,
		Points:  make([]float64, n),
		Weights: make([]float64, n),
	}
	ord := n - 1 // polynomial order
	r.Points[0], r.Points[n-1] = -1, 1
	// Interior GLL nodes are the roots of P'_{n-1}. Use Newton iteration
	// seeded with Chebyshev-Gauss-Lobatto points, solving for the extrema of
	// P_{n-1} via the derivative of (1-x^2) P'_{n-1}(x) relation:
	// interior nodes satisfy P'_{ord}(x) = 0.
	for i := 1; i < n-1; i++ {
		x := -math.Cos(math.Pi * float64(i) / float64(ord))
		for iter := 0; iter < 100; iter++ {
			_, dp := legendreAndDeriv(ord, x)
			// Newton on f = P'_ord. f' = P''_ord from the Legendre ODE:
			// (1-x^2) P'' - 2x P' + ord(ord+1) P = 0
			p, _ := legendreAndDeriv(ord, x)
			d2p := (2*x*dp - float64(ord*(ord+1))*p) / (1 - x*x)
			dx := dp / d2p
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		r.Points[i] = x
	}
	// Enforce symmetry to kill residual Newton asymmetry.
	for i := 0; i < n/2; i++ {
		s := (r.Points[i] - r.Points[n-1-i]) / 2
		r.Points[i], r.Points[n-1-i] = s, -s
	}
	// Weights: w_i = 2 / (ord (ord+1) [P_ord(x_i)]^2).
	for i := 0; i < n; i++ {
		p, _ := legendreAndDeriv(ord, r.Points[i])
		r.Weights[i] = 2 / (float64(ord*(ord+1)) * p * p)
	}
	r.D = diffMatrix(r.Points)
	return r
}

// diffMatrix builds the Lagrange differentiation matrix for the node set x:
// D[i][j] = l_j'(x_i), using the barycentric form.
func diffMatrix(x []float64) [][]float64 {
	n := len(x)
	// Barycentric weights.
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		w[j] = 1
		for k := 0; k < n; k++ {
			if k != j {
				w[j] /= x[j] - x[k]
			}
		}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d[i][j] = (w[j] / w[i]) / (x[i] - x[j])
			rowSum += d[i][j]
		}
		d[i][i] = -rowSum // rows of D sum to zero (derivative of constant)
	}
	return d
}

// Differentiate applies the rule's differentiation matrix to the nodal
// values u, writing l'(x_i) into out. len(u) and len(out) must equal N.
func (r *Rule) Differentiate(u, out []float64) {
	if len(u) != r.N || len(out) != r.N {
		panic("quad: Differentiate length mismatch")
	}
	for i := 0; i < r.N; i++ {
		var s float64
		row := r.D[i]
		for j := 0; j < r.N; j++ {
			s += row[j] * u[j]
		}
		out[i] = s
	}
}

// Integrate computes the quadrature sum of nodal values u.
func (r *Rule) Integrate(u []float64) float64 {
	if len(u) != r.N {
		panic("quad: Integrate length mismatch")
	}
	var s float64
	for i, w := range r.Weights {
		s += w * u[i]
	}
	return s
}
