package quad

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownGLLNodes(t *testing.T) {
	// Reference values for small rules (Abramowitz & Stegun / standard
	// spectral-methods texts).
	cases := []struct {
		n       int
		points  []float64
		weights []float64
	}{
		{2, []float64{-1, 1}, []float64{1, 1}},
		{3, []float64{-1, 0, 1}, []float64{1.0 / 3, 4.0 / 3, 1.0 / 3}},
		{4,
			[]float64{-1, -math.Sqrt(1.0 / 5), math.Sqrt(1.0 / 5), 1},
			[]float64{1.0 / 6, 5.0 / 6, 5.0 / 6, 1.0 / 6}},
		{5,
			[]float64{-1, -math.Sqrt(3.0 / 7), 0, math.Sqrt(3.0 / 7), 1},
			[]float64{0.1, 49.0 / 90, 32.0 / 45, 49.0 / 90, 0.1}},
	}
	for _, c := range cases {
		r := New(c.n)
		for i := range c.points {
			if math.Abs(r.Points[i]-c.points[i]) > 1e-12 {
				t.Errorf("n=%d point %d: got %.15f want %.15f", c.n, i, r.Points[i], c.points[i])
			}
			if math.Abs(r.Weights[i]-c.weights[i]) > 1e-12 {
				t.Errorf("n=%d weight %d: got %.15f want %.15f", c.n, i, r.Weights[i], c.weights[i])
			}
		}
	}
}

func TestWeightsSumToTwo(t *testing.T) {
	for n := 2; n <= 16; n++ {
		r := New(n)
		var s float64
		for _, w := range r.Weights {
			s += w
		}
		if math.Abs(s-2) > 1e-12 {
			t.Errorf("n=%d: weights sum %.15f, want 2", n, s)
		}
	}
}

func TestNodesSymmetricAndSorted(t *testing.T) {
	for n := 2; n <= 16; n++ {
		r := New(n)
		for i := 0; i < n/2; i++ {
			if math.Abs(r.Points[i]+r.Points[n-1-i]) > 1e-13 {
				t.Errorf("n=%d: nodes %d,%d not symmetric: %v %v", n, i, n-1-i, r.Points[i], r.Points[n-1-i])
			}
		}
		for i := 1; i < n; i++ {
			if r.Points[i] <= r.Points[i-1] {
				t.Errorf("n=%d: nodes not strictly ascending at %d", n, i)
			}
		}
	}
}

// GLL with n points integrates polynomials up to degree 2n-3 exactly.
func TestPolynomialExactness(t *testing.T) {
	for n := 2; n <= 10; n++ {
		r := New(n)
		maxDeg := 2*n - 3
		for deg := 0; deg <= maxDeg; deg++ {
			u := make([]float64, n)
			for i, x := range r.Points {
				u[i] = math.Pow(x, float64(deg))
			}
			got := r.Integrate(u)
			var want float64
			if deg%2 == 0 {
				want = 2.0 / float64(deg+1)
			}
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("n=%d deg=%d: integral %.15f want %.15f", n, deg, got, want)
			}
		}
	}
}

// The differentiation matrix is exact for polynomials of degree < n.
func TestDifferentiationExactOnPolynomials(t *testing.T) {
	for n := 2; n <= 12; n++ {
		r := New(n)
		for deg := 0; deg < n; deg++ {
			u := make([]float64, n)
			du := make([]float64, n)
			for i, x := range r.Points {
				u[i] = math.Pow(x, float64(deg))
			}
			r.Differentiate(u, du)
			for i, x := range r.Points {
				want := 0.0
				if deg > 0 {
					want = float64(deg) * math.Pow(x, float64(deg-1))
				}
				if math.Abs(du[i]-want) > 1e-9 {
					t.Errorf("n=%d deg=%d node %d: d=%g want %g", n, deg, i, du[i], want)
				}
			}
		}
	}
}

func TestDiffMatrixRowsSumToZero(t *testing.T) {
	for n := 2; n <= 12; n++ {
		r := New(n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += r.D[i][j]
			}
			if math.Abs(s) > 1e-11 {
				t.Errorf("n=%d row %d sums to %g", n, i, s)
			}
		}
	}
}

// Property: differentiation is linear. D(a*u + b*v) = a*Du + b*Dv.
func TestDifferentiateLinearityProperty(t *testing.T) {
	r := New(8)
	f := func(seedU, seedV [8]float64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// Clamp magnitudes so float error stays bounded.
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		u, v, w := make([]float64, 8), make([]float64, 8), make([]float64, 8)
		for i := 0; i < 8; i++ {
			u[i] = math.Mod(seedU[i], 100)
			v[i] = math.Mod(seedV[i], 100)
			if math.IsNaN(u[i]) {
				u[i] = 0
			}
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
			w[i] = a*u[i] + b*v[i]
		}
		du, dv, dw := make([]float64, 8), make([]float64, 8), make([]float64, 8)
		r.Differentiate(u, du)
		r.Differentiate(v, dv)
		r.Differentiate(w, dw)
		for i := 0; i < 8; i++ {
			want := a*du[i] + b*dv[i]
			if math.Abs(dw[i]-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Spectral accuracy: differentiating sin(x) on increasing N converges
// geometrically.
func TestSpectralConvergence(t *testing.T) {
	prevErr := math.Inf(1)
	for _, n := range []int{4, 6, 8, 10, 12} {
		r := New(n)
		u, du := make([]float64, n), make([]float64, n)
		for i, x := range r.Points {
			u[i] = math.Sin(x)
		}
		r.Differentiate(u, du)
		var maxErr float64
		for i, x := range r.Points {
			if e := math.Abs(du[i] - math.Cos(x)); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > prevErr {
			t.Errorf("n=%d: error %g did not decrease from %g", n, maxErr, prevErr)
		}
		prevErr = maxErr
	}
	if prevErr > 1e-10 {
		t.Errorf("n=12 error %g, want spectral accuracy < 1e-10", prevErr)
	}
}

func TestNewPanicsOnTooFewPoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1) did not panic")
		}
	}()
	New(1)
}

func TestDifferentiateLengthMismatchPanics(t *testing.T) {
	r := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	r.Differentiate(make([]float64, 3), make([]float64, 4))
}
