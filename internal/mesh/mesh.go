// Package mesh builds the structured hexahedral meshes used by the dG wave
// solver. A mesh at refinement level n discretizes the unit-cube problem
// domain into (2^n)^3 equal hexahedral elements (Table 1: "Refinement Level
// n indicates the problem domain is discretized into (2^n)^3 elements").
// Each element carries an (Np)^3 tensor-product grid of GLL nodes.
package mesh

import (
	"fmt"

	"wavepim/internal/quad"
)

// Axis identifies one of the three coordinate directions.
type Axis int

const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Face identifies one of an element's six faces by axis and normal sign.
type Face int

const (
	FaceXMinus Face = iota
	FaceXPlus
	FaceYMinus
	FaceYPlus
	FaceZMinus
	FaceZPlus
	NumFaces
)

// Axis returns the axis the face is perpendicular to.
func (f Face) Axis() Axis { return Axis(f / 2) }

// Sign returns -1 for the minus face, +1 for the plus face.
func (f Face) Sign() int {
	if f%2 == 0 {
		return -1
	}
	return 1
}

// Opposite returns the face with the same axis and the opposite sign.
func (f Face) Opposite() Face { return f ^ 1 }

func (f Face) String() string {
	s := "-"
	if f.Sign() > 0 {
		s = "+"
	}
	return f.Axis().String() + s
}

// Mesh is a structured hex mesh of the unit cube.
type Mesh struct {
	Refinement int        // refinement level n
	EPerAxis   int        // 2^n elements along each axis
	NumElem    int        // EPerAxis^3
	Np         int        // GLL nodes per axis within an element
	NodesPerEl int        // Np^3
	Rule       *quad.Rule // 1-D GLL rule on [-1,1]
	H          float64    // element edge length (1 / EPerAxis)
	Periodic   bool       // wrap neighbors across the domain boundary
}

// NodesPerFace is the number of nodes on one element face (Np^2). For the
// paper's 512-node elements this is 64, matching Figure 2's "up-to
// 6x64x32b" neighbor traffic.
func (m *Mesh) NodesPerFace() int { return m.Np * m.Np }

// New builds a mesh at the given refinement level with np GLL nodes per
// axis. The paper's benchmarks use np = 8 (512 nodes per element).
func New(refinement, np int, periodic bool) *Mesh {
	if refinement < 0 || refinement > 10 {
		panic(fmt.Sprintf("mesh: refinement level %d out of range [0,10]", refinement))
	}
	if np < 2 {
		panic(fmt.Sprintf("mesh: need np >= 2 nodes per axis, got %d", np))
	}
	e := 1 << refinement
	return &Mesh{
		Refinement: refinement,
		EPerAxis:   e,
		NumElem:    e * e * e,
		Np:         np,
		NodesPerEl: np * np * np,
		Rule:       quad.New(np),
		H:          1 / float64(e),
		Periodic:   periodic,
	}
}

// ElemID converts element lattice coordinates to a linear element id.
// Ordering is x fastest, then y, then z — so a fixed-z "slice" (the unit of
// the paper's Flux batching, Figure 7) is contiguous.
func (m *Mesh) ElemID(ex, ey, ez int) int {
	return (ez*m.EPerAxis+ey)*m.EPerAxis + ex
}

// ElemCoords inverts ElemID.
func (m *Mesh) ElemCoords(id int) (ex, ey, ez int) {
	ex = id % m.EPerAxis
	id /= m.EPerAxis
	ey = id % m.EPerAxis
	ez = id / m.EPerAxis
	return
}

// Neighbor returns the element id adjacent across the given face, and
// whether such a neighbor exists. With a periodic mesh every face has a
// neighbor; otherwise boundary faces return ok=false.
func (m *Mesh) Neighbor(id int, f Face) (nid int, ok bool) {
	ex, ey, ez := m.ElemCoords(id)
	d := f.Sign()
	switch f.Axis() {
	case AxisX:
		ex += d
	case AxisY:
		ey += d
	case AxisZ:
		ez += d
	}
	if m.Periodic {
		w := m.EPerAxis
		ex, ey, ez = (ex+w)%w, (ey+w)%w, (ez+w)%w
		return m.ElemID(ex, ey, ez), true
	}
	if ex < 0 || ey < 0 || ez < 0 || ex >= m.EPerAxis || ey >= m.EPerAxis || ez >= m.EPerAxis {
		return -1, false
	}
	return m.ElemID(ex, ey, ez), true
}

// NodeIndex converts within-element node lattice coordinates (i along x,
// j along y, k along z, each in [0,Np)) to a linear node index.
func (m *Mesh) NodeIndex(i, j, k int) int {
	return (k*m.Np+j)*m.Np + i
}

// NodeCoords inverts NodeIndex.
func (m *Mesh) NodeCoords(n int) (i, j, k int) {
	i = n % m.Np
	n /= m.Np
	j = n % m.Np
	k = n / m.Np
	return
}

// NodePosition returns the physical coordinates of node n of element id.
func (m *Mesh) NodePosition(id, n int) (x, y, z float64) {
	ex, ey, ez := m.ElemCoords(id)
	i, j, k := m.NodeCoords(n)
	// Map reference [-1,1] to the element extent.
	x = (float64(ex) + (m.Rule.Points[i]+1)/2) * m.H
	y = (float64(ey) + (m.Rule.Points[j]+1)/2) * m.H
	z = (float64(ez) + (m.Rule.Points[k]+1)/2) * m.H
	return
}

// FaceNodes returns the linear node indices of the Np^2 nodes lying on the
// given face, ordered so that index f*Np+g walks the two in-face axes in
// ascending axis order. The matching nodes of the neighbor across that face
// are FaceNodes(f.Opposite()) in the same order — a property the flux kernel
// and the PIM layout both rely on.
func (m *Mesh) FaceNodes(f Face) []int {
	idx := make([]int, 0, m.Np*m.Np)
	fixed := 0
	if f.Sign() > 0 {
		fixed = m.Np - 1
	}
	switch f.Axis() {
	case AxisX:
		for k := 0; k < m.Np; k++ {
			for j := 0; j < m.Np; j++ {
				idx = append(idx, m.NodeIndex(fixed, j, k))
			}
		}
	case AxisY:
		for k := 0; k < m.Np; k++ {
			for i := 0; i < m.Np; i++ {
				idx = append(idx, m.NodeIndex(i, fixed, k))
			}
		}
	case AxisZ:
		for j := 0; j < m.Np; j++ {
			for i := 0; i < m.Np; i++ {
				idx = append(idx, m.NodeIndex(i, j, fixed))
			}
		}
	}
	return idx
}

// JacobianScale returns d(reference)/d(physical) = 2/H, the constant
// geometric factor of the affine structured elements (the "jacobian"
// constants of Table 1 collapse to powers of this for a uniform mesh).
func (m *Mesh) JacobianScale() float64 { return 2 / m.H }

// JacobianDet is the determinant of the reference-to-physical map,
// (H/2)^3 — Table 1's jacobian_det_domain.
func (m *Mesh) JacobianDet() float64 { return (m.H / 2) * (m.H / 2) * (m.H / 2) }

// FaceJacobianDet is the surface Jacobian of a face, (H/2)^2 — Table 1's
// jacobian_det_boundary.
func (m *Mesh) FaceJacobianDet() float64 { return (m.H / 2) * (m.H / 2) }

// Slice returns the element ids of z-slice s (all elements with ez == s),
// the decomposition unit for Flux batching (Figure 7).
func (m *Mesh) Slice(s int) []int {
	if s < 0 || s >= m.EPerAxis {
		panic(fmt.Sprintf("mesh: slice %d out of range [0,%d)", s, m.EPerAxis))
	}
	n := m.EPerAxis * m.EPerAxis
	ids := make([]int, n)
	base := s * n
	for i := range ids {
		ids[i] = base + i
	}
	return ids
}

// NumSlices returns the number of z-slices (EPerAxis).
func (m *Mesh) NumSlices() int { return m.EPerAxis }
