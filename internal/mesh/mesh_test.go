package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRefinementElementCounts(t *testing.T) {
	// Table 1 / Table 6: level n has (2^n)^3 elements; level 4 -> 4096,
	// level 5 -> 32768.
	cases := []struct{ level, want int }{
		{0, 1}, {1, 8}, {2, 64}, {3, 512}, {4, 4096}, {5, 32768},
	}
	for _, c := range cases {
		m := New(c.level, 8, false)
		if m.NumElem != c.want {
			t.Errorf("level %d: NumElem=%d want %d", c.level, m.NumElem, c.want)
		}
	}
}

func TestNodesPerElement(t *testing.T) {
	m := New(2, 8, false)
	if m.NodesPerEl != 512 {
		t.Errorf("NodesPerEl=%d want 512 (the paper's 512-node element)", m.NodesPerEl)
	}
	if m.NodesPerFace() != 64 {
		t.Errorf("NodesPerFace=%d want 64 (Figure 2: 6x64x32b)", m.NodesPerFace())
	}
}

func TestElemIDRoundTrip(t *testing.T) {
	m := New(3, 4, false)
	for id := 0; id < m.NumElem; id++ {
		ex, ey, ez := m.ElemCoords(id)
		if got := m.ElemID(ex, ey, ez); got != id {
			t.Fatalf("round trip failed: id=%d -> (%d,%d,%d) -> %d", id, ex, ey, ez, got)
		}
	}
}

func TestNodeIndexRoundTrip(t *testing.T) {
	m := New(1, 8, false)
	for n := 0; n < m.NodesPerEl; n++ {
		i, j, k := m.NodeCoords(n)
		if got := m.NodeIndex(i, j, k); got != n {
			t.Fatalf("round trip failed: n=%d -> (%d,%d,%d) -> %d", n, i, j, k, got)
		}
	}
}

func TestNeighborNonPeriodic(t *testing.T) {
	m := New(2, 4, false) // 4x4x4 elements
	// Interior element: all six neighbors exist.
	id := m.ElemID(1, 1, 1)
	for f := Face(0); f < NumFaces; f++ {
		nid, ok := m.Neighbor(id, f)
		if !ok {
			t.Errorf("interior element missing neighbor across %v", f)
		}
		// Neighbor-of-neighbor across the opposite face returns home.
		back, ok := m.Neighbor(nid, f.Opposite())
		if !ok || back != id {
			t.Errorf("face %v: neighbor round trip %d -> %d -> %d", f, id, nid, back)
		}
	}
	// Corner element: exactly three neighbors.
	corner := m.ElemID(0, 0, 0)
	var count int
	for f := Face(0); f < NumFaces; f++ {
		if _, ok := m.Neighbor(corner, f); ok {
			count++
		}
	}
	if count != 3 {
		t.Errorf("corner element has %d neighbors, want 3", count)
	}
}

func TestNeighborPeriodicWraps(t *testing.T) {
	m := New(2, 4, true)
	id := m.ElemID(0, 0, 0)
	nid, ok := m.Neighbor(id, FaceXMinus)
	if !ok {
		t.Fatal("periodic mesh returned no neighbor")
	}
	if want := m.ElemID(3, 0, 0); nid != want {
		t.Errorf("periodic x- neighbor of origin = %d, want %d", nid, want)
	}
}

// Property: in a periodic mesh, every element has exactly 6 neighbors and
// each neighbor relationship is mutual.
func TestNeighborSymmetryProperty(t *testing.T) {
	m := New(2, 3, true)
	f := func(rawID uint16, rawFace uint8) bool {
		id := int(rawID) % m.NumElem
		face := Face(rawFace % 6)
		nid, ok := m.Neighbor(id, face)
		if !ok {
			return false
		}
		back, ok := m.Neighbor(nid, face.Opposite())
		return ok && back == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFaceNodesMatchAcrossInterface(t *testing.T) {
	// Node g of FaceNodes(x+) of element e must coincide geometrically with
	// node g of FaceNodes(x-) of e's x+ neighbor.
	m := New(1, 5, false)
	id := m.ElemID(0, 1, 1)
	for f := Face(0); f < NumFaces; f++ {
		nid, ok := m.Neighbor(id, f)
		if !ok {
			continue
		}
		mine := m.FaceNodes(f)
		theirs := m.FaceNodes(f.Opposite())
		if len(mine) != m.NodesPerFace() {
			t.Fatalf("face %v: %d nodes, want %d", f, len(mine), m.NodesPerFace())
		}
		for g := range mine {
			x1, y1, z1 := m.NodePosition(id, mine[g])
			x2, y2, z2 := m.NodePosition(nid, theirs[g])
			d := math.Abs(x1-x2) + math.Abs(y1-y2) + math.Abs(z1-z2)
			if d > 1e-12 {
				t.Errorf("face %v node %d: positions differ by %g", f, g, d)
			}
		}
	}
}

func TestFaceNodesAreOnFace(t *testing.T) {
	m := New(0, 6, false)
	for f := Face(0); f < NumFaces; f++ {
		want := 0
		if f.Sign() > 0 {
			want = m.Np - 1
		}
		for _, n := range m.FaceNodes(f) {
			i, j, k := m.NodeCoords(n)
			var got int
			switch f.Axis() {
			case AxisX:
				got = i
			case AxisY:
				got = j
			case AxisZ:
				got = k
			}
			if got != want {
				t.Errorf("face %v: node %d has lattice coord %d, want %d", f, n, got, want)
			}
		}
	}
}

func TestNodePositionsInsideDomain(t *testing.T) {
	m := New(2, 4, false)
	for _, id := range []int{0, 17, m.NumElem - 1} {
		for n := 0; n < m.NodesPerEl; n++ {
			x, y, z := m.NodePosition(id, n)
			for _, v := range []float64{x, y, z} {
				if v < -1e-12 || v > 1+1e-12 {
					t.Fatalf("elem %d node %d outside unit cube: (%g,%g,%g)", id, n, x, y, z)
				}
			}
		}
	}
}

func TestSliceDecomposition(t *testing.T) {
	m := New(2, 3, false)
	seen := make(map[int]bool)
	for s := 0; s < m.NumSlices(); s++ {
		for _, id := range m.Slice(s) {
			_, _, ez := m.ElemCoords(id)
			if ez != s {
				t.Errorf("slice %d contains element %d with ez=%d", s, id, ez)
			}
			if seen[id] {
				t.Errorf("element %d in two slices", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != m.NumElem {
		t.Errorf("slices cover %d elements, want %d", len(seen), m.NumElem)
	}
}

func TestJacobians(t *testing.T) {
	m := New(4, 8, false) // H = 1/16
	if got, want := m.JacobianScale(), 32.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("JacobianScale=%g want %g", got, want)
	}
	if got, want := m.JacobianDet(), math.Pow(1.0/32, 3); math.Abs(got-want) > 1e-18 {
		t.Errorf("JacobianDet=%g want %g", got, want)
	}
	if got, want := m.FaceJacobianDet(), math.Pow(1.0/32, 2); math.Abs(got-want) > 1e-18 {
		t.Errorf("FaceJacobianDet=%g want %g", got, want)
	}
}

func TestFaceHelpers(t *testing.T) {
	if FaceXPlus.Opposite() != FaceXMinus || FaceZMinus.Opposite() != FaceZPlus {
		t.Error("Opposite() wrong")
	}
	if FaceYMinus.Axis() != AxisY || FaceYMinus.Sign() != -1 || FaceYPlus.Sign() != 1 {
		t.Error("Axis/Sign wrong")
	}
	if FaceXMinus.String() != "x-" || FaceZPlus.String() != "z+" {
		t.Errorf("String() wrong: %q %q", FaceXMinus, FaceZPlus)
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, c := range []struct{ ref, np int }{{-1, 8}, {11, 8}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.ref, c.np)
				}
			}()
			New(c.ref, c.np, false)
		}()
	}
}
