package experiments

import (
	"math"
	"strings"
	"testing"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/pim/chip"
)

// Section 3.1's six speedups must reproduce within 2%.
func TestSec31WithinTolerance(t *testing.T) {
	for _, r := range Sec31() {
		if rel := math.Abs(r.Model-r.Paper) / r.Paper; rel > 0.02 {
			t.Errorf("level %d %s: model %.2f vs paper %.2f (off %.1f%%)",
				r.Level, r.Platform, r.Model, r.Paper, rel*100)
		}
	}
}

// Table 3: every power row within 3% of the published value.
func TestTable3WithinTolerance(t *testing.T) {
	for _, r := range Table3() {
		if rel := math.Abs(r.ModelW-r.PaperW) / r.PaperW; rel > 0.03 {
			t.Errorf("%s: model %.4g W vs paper %.4g W", r.Component, r.ModelW, r.PaperW)
		}
	}
}

// Table 5: exact match on every cell.
func TestTable5ExactMatch(t *testing.T) {
	for _, c := range Table5() {
		if c.Model != c.Paper {
			t.Errorf("(%s, %s): model %s vs paper %s", c.Bench, c.Chip, c.Model, c.Paper)
		}
	}
}

// Table 6: FP ops within 2x, instructions within ~2x, exact element counts.
func TestTable6WithinTolerance(t *testing.T) {
	for _, r := range Table6() {
		fr := float64(r.ModelFLOPs) / float64(r.PaperFLOPs)
		if fr < 0.5 || fr > 2 {
			t.Errorf("%s: FLOPs ratio %.2f", r.Name, fr)
		}
		ir := float64(r.ModelInstr) / float64(r.PaperInstr)
		if ir < 0.45 || ir > 2.2 {
			t.Errorf("%s: instruction ratio %.2f", r.Name, ir)
		}
	}
}

// Figure 11's headline shape: every PIM configuration beats every GPU on
// every benchmark, speedups grow with capacity, and Elastic-Riemann shows
// the smallest PIM advantage among the level-4 groups (the paper: its
// compute intensity blunts the data-movement win).
func TestFig11Shape(t *testing.T) {
	rows := Fig11And12()
	for _, row := range rows {
		base := row.Baseline().TimeSec
		for _, e := range row.Results {
			if strings.HasPrefix(e.Platform, "PIM-") && e.TimeSec >= base {
				t.Errorf("%s: %s (%.3gs) not faster than Unfused-1080Ti (%.3gs)",
					row.Bench.Name(), e.Platform, e.TimeSec, base)
			}
		}
	}
	sp := AvgSpeedups(rows, "Unfused-1080Ti")
	configs := chip.AllConfigs()
	for i := 1; i < len(configs); i++ {
		lo := sp[configs[i-1].Name+"-28nm"]
		hi := sp[configs[i].Name+"-28nm"]
		if hi <= lo {
			t.Errorf("avg speedup should grow with capacity: %s %.1f -> %s %.1f",
				configs[i-1].Name, lo, configs[i].Name, hi)
		}
	}
}

// Paper-magnitude check on the averages: each 28nm config's mean speedup
// over Unfused-1080Ti must land within 2x of the published average.
func TestFig11AveragesNearPaper(t *testing.T) {
	paper := map[string]float64{
		"PIM-512MB-28nm": 10.28,
		"PIM-2GB-28nm":   35.80,
		"PIM-8GB-28nm":   72.21,
		"PIM-16GB-28nm":  172.76,
	}
	sp := AvgSpeedups(Fig11And12(), "Unfused-1080Ti")
	for name, want := range paper {
		got := sp[name]
		if got < want/2 || got > want*2 {
			t.Errorf("%s: avg speedup %.2f, paper %.2f (want within 2x)", name, got, want)
		}
	}
}

// The Elastic-Riemann speedup is below the per-level average — the paper's
// explanation: high compute intensity limits the benefit of removing data
// movement.
func TestRiemannSpeedupBelowAverage(t *testing.T) {
	rows := Fig11And12()
	cfg := "PIM-2GB-28nm"
	var sum float64
	byName := map[string]float64{}
	for _, row := range rows {
		var ref, p float64
		for _, e := range row.Results {
			if e.Platform == "Unfused-1080Ti" {
				ref = e.TimeSec
			}
			if e.Platform == cfg {
				p = e.TimeSec
			}
		}
		byName[row.Bench.Name()] = ref / p
		sum += ref / p
	}
	_ = sum
	// The high compute intensity of the Riemann solver blunts the
	// data-movement win, so at each refinement level its speedup trails
	// the central solver's.
	if byName["Elastic-Riemann_4"] >= byName["Elastic-Central_4"] {
		t.Errorf("Riemann_4 speedup %.1f should trail Central_4 %.1f",
			byName["Elastic-Riemann_4"], byName["Elastic-Central_4"])
	}
	if byName["Elastic-Riemann_5"] >= byName["Elastic-Central_5"] {
		t.Errorf("Riemann_5 speedup %.1f should trail Central_5 %.1f",
			byName["Elastic-Riemann_5"], byName["Elastic-Central_5"])
	}
}

// Figure 12 energy: every PIM configuration saves energy versus every GPU,
// and the small chips are more energy-efficient than the big ones on
// level-4 problems (the paper's Section 7.4 trade-off).
func TestFig12Shape(t *testing.T) {
	rows := Fig11And12()
	for _, row := range rows {
		base := row.Baseline().EnergyJ
		for _, e := range row.Results {
			if strings.HasPrefix(e.Platform, "PIM-") && e.EnergyJ >= base {
				t.Errorf("%s: %s uses more energy than the baseline", row.Bench.Name(), e.Platform)
			}
		}
	}
	// Acoustic_4 on 512MB (fits exactly) must beat 16GB on energy.
	var e512, e16 float64
	for _, e := range rows[0].Results {
		switch e.Platform {
		case "PIM-512MB-28nm":
			e512 = e.EnergyJ
		case "PIM-16GB-28nm":
			e16 = e.EnergyJ
		}
	}
	if e512 >= e16 {
		t.Errorf("right-sized 512MB chip (%.3g J) should beat 16GB (%.3g J) on Acoustic_4 energy", e512, e16)
	}
}

// Figure 13: pipelining hides the flux fetch and host preprocessing; the
// unpipelined throughput ratio must land near the paper's 0.77x.
func TestFig13PipelineRatio(t *testing.T) {
	r := Fig13()
	if r.ThroughputRatio <= 0.6 || r.ThroughputRatio >= 0.95 {
		t.Errorf("pipelined/unpipelined stage ratio %.3f, want in (0.6, 0.95), paper 0.77", r.ThroughputRatio)
	}
	if len(r.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	// The stage must end with Integration, and the host work must overlap
	// Volume (both starting at 0).
	last := r.Timeline[len(r.Timeline)-1]
	if last.Name != "Integration" {
		t.Errorf("last phase %q, want Integration", last.Name)
	}
	if r.Timeline[1].Start != 0 {
		t.Error("host preprocessing should overlap Volume from t=0")
	}
	// The paper's Figure 13 stage is ~300us for this configuration.
	if end := last.Start + last.Dur; end < 100e-6 || end > 900e-6 {
		t.Errorf("stage duration %.3g s, want a few hundred microseconds as in Figure 13", end)
	}
}

// Figure 14: bus inter-element share exceeds the H-tree's in every case;
// expansion raises both shares; the overall H-tree time savings land near
// the paper's 2.16x.
func TestFig14Shape(t *testing.T) {
	cases := Fig14()
	if len(cases) != 4 {
		t.Fatalf("want 4 cases, got %d", len(cases))
	}
	for _, c := range cases {
		if c.BusInterShare <= c.HTreeInterShare {
			t.Errorf("%s: bus share %.1f%% should exceed H-tree %.1f%%",
				c.Label, c.BusInterShare*100, c.HTreeInterShare*100)
		}
	}
	// Expansion raises the inter-element share: Elastic 8GB (expanded)
	// versus Elastic 2GB (not).
	if cases[3].HTreeInterShare <= cases[2].HTreeInterShare {
		t.Error("expansion should raise the inter-element share (Elastic 8GB vs 2GB)")
	}
	if s := HTreeTimeSavings(); s < 1.4 || s > 3.2 {
		t.Errorf("H-tree time savings %.2fx, want near the paper's 2.16x", s)
	}
}

// Paper-value check on the Figure 14 H-tree shares: the two-case averages
// land within ~10 points of the published percentages.
func TestFig14HTreeSharesNearPaper(t *testing.T) {
	cases := Fig14()
	noExp := (cases[0].HTreeInterShare + cases[2].HTreeInterShare) / 2 * 100
	exp := (cases[1].HTreeInterShare + cases[3].HTreeInterShare) / 2 * 100
	if math.Abs(noExp-21.62) > 10 {
		t.Errorf("no-expansion H-tree inter share %.1f%%, paper 21.62%%", noExp)
	}
	if math.Abs(exp-42.77) > 12 {
		t.Errorf("expansion H-tree inter share %.1f%%, paper 42.77%%", exp)
	}
}

// Headline: the whole-paper average energy savings land in the paper's
// zone (12.66x) and every per-GPU speedup shows PIM ahead.
func TestHeadline(t *testing.T) {
	h := Headline()
	if h.AvgEnergy < 12.66/2 || h.AvgEnergy > 12.66*2 {
		t.Errorf("avg energy savings %.2fx, paper 12.66x (want within 2x)", h.AvgEnergy)
	}
	for g, s := range h.SpeedupVsGPU {
		if s <= 1 {
			t.Errorf("PIM should beat %s on average, got %.2fx", g, s)
		}
	}
	// Per-GPU ordering: the advantage shrinks toward the fastest GPU.
	if !(h.SpeedupVsGPU["Fused-1080Ti"] > h.SpeedupVsGPU["Fused-P100"] &&
		h.SpeedupVsGPU["Fused-P100"] > h.SpeedupVsGPU["Fused-V100"]) {
		t.Error("speedup should shrink toward faster GPUs (paper: 45.31/34.52/15.89)")
	}
}

// The rendered tables must be non-empty and well-formed.
func TestTableRendering(t *testing.T) {
	rows := Fig11And12()
	for name, s := range map[string]string{
		"sec31":  Sec31Table().String(),
		"table2": Table2().String(),
		"table3": Table3Table().String(),
		"table4": Table4().String(),
		"table5": Table5Table().String(),
		"table6": Table6Table().String(),
		"fig11":  Fig11Table(rows).String(),
		"fig12":  Fig12Table(rows).String(),
		"fig13":  Fig13Table().String(),
		"fig14":  Fig14Table().String(),
	} {
		if len(s) < 100 || !strings.Contains(s, "\n") {
			t.Errorf("%s: suspiciously short render", name)
		}
	}
}

// The compiled instruction streams empirically validate the paper's
// throughput assumption: "a workload containing 50% addition and 50%
// multiplication operations". The whole-stage multiply share of the
// arithmetic instructions must sit near one half.
func TestOpMixNearFiftyFifty(t *testing.T) {
	rows := OpMixStudy()
	whole := rows[len(rows)-1]
	if whole.Kernel != "Whole stage" {
		t.Fatal("missing whole-stage row")
	}
	if whole.MulFrac < 0.40 || whole.MulFrac > 0.62 {
		t.Errorf("whole-stage multiply share %.1f%%, paper assumes ~50%%", whole.MulFrac*100)
	}
	// Arithmetic dominates the stream (the data-rearrangement overhead is
	// a minority).
	if whole.ArithFrac < 0.5 {
		t.Errorf("arithmetic share %.1f%% should be the majority", whole.ArithFrac*100)
	}
}

// The Maxwell extension runs through the whole pipeline and shows the
// same qualitative behaviour as the paper's systems: PIM beats the fused
// V100 whenever the model fits without heavy batching, and the fully
// resident 16GB configuration wins at level 5.
func TestMaxwellExtension(t *testing.T) {
	rows := MaxwellExtension()
	if len(rows) != 8 {
		t.Fatalf("want 8 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.PIMSec <= 0 || r.PIMEnergyJ <= 0 {
			t.Fatalf("%s on %s: nonpositive results", r.Bench.Name(), r.Chip)
		}
		if r.Batches == 1 && r.Speedup <= 1 {
			t.Errorf("%s on %s: resident PIM run should beat Fused-V100, got %.2fx",
				r.Bench.Name(), r.Chip, r.Speedup)
		}
	}
	// Maxwell sits between acoustic (4 vars) and elastic (9 vars) in cost.
	ac := opcount.OneLaunchEach(opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}).FLOPs
	mx := opcount.OneLaunchEach(opcount.Benchmark{Eq: opcount.Maxwell, Refinement: 4}).FLOPs
	el := opcount.OneLaunchEach(opcount.Benchmark{Eq: opcount.ElasticCentral, Refinement: 4}).FLOPs
	if !(ac < mx && mx < el) {
		t.Errorf("Maxwell FLOPs (%d) should sit between acoustic (%d) and elastic (%d)", mx, ac, el)
	}
}
