package experiments

import (
	"fmt"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/gpu"
	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/report"
)

// The Maxwell extension benchmark: the paper's Section 2.1 claims the
// acoustic strategies carry to electromagnetic waves; this table runs the
// claim through the whole evaluation pipeline — operation counts, the GPU
// roofline, and the Wave-PIM timing simulator — for refinement levels 4
// and 5 on every chip configuration.

// MaxwellRow is one (level, chip) data point.
type MaxwellRow struct {
	Bench      opcount.Benchmark
	Chip       string
	Plan       string
	Batches    int
	PIMSec     float64
	PIMEnergyJ float64
	FusedV100  float64 // reference GPU time
	Speedup    float64
}

// MaxwellExtension runs the study.
func MaxwellExtension() []MaxwellRow {
	var out []MaxwellRow
	for _, ref := range []int{4, 5} {
		b := opcount.Benchmark{Eq: opcount.Maxwell, Refinement: ref}
		v100 := gpu.Model{Spec: params.TeslaV100, Impl: gpu.Fused}
		gt := v100.RunTime(b, TimeSteps)
		for _, cfg := range chip.AllConfigs() {
			res := pimRun(b, cfg, true)
			out = append(out, MaxwellRow{
				Bench: b, Chip: cfg.Name,
				Plan: res.Plan.Table5String(), Batches: res.Plan.Batches,
				PIMSec: res.TotalSec, PIMEnergyJ: res.EnergyJ,
				FusedV100: gt, Speedup: gt / res.TotalSec,
			})
		}
	}
	return out
}

// MaxwellTable renders the study.
func MaxwellTable() *report.Table {
	t := &report.Table{
		Title: "Extension: Maxwell (electromagnetic) benchmarks through the full pipeline",
		Headers: []string{"Benchmark", "Chip", "Plan", "Batches", "PIM time",
			"PIM energy", "Fused-V100", "Speedup"},
	}
	for _, r := range MaxwellExtension() {
		t.AddRow(r.Bench.Name(), r.Chip, r.Plan, fmt.Sprintf("%d", r.Batches),
			report.Seconds(r.PIMSec), report.Joules(r.PIMEnergyJ),
			report.Seconds(r.FusedV100), report.Ratio(r.Speedup))
	}
	t.AddNote("not in the paper's evaluation; realizes its Section 2.1 electromagnetic claim end to end")
	return t
}
