package experiments

import (
	"fmt"
	"sync"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/gpu"
	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/report"
	"wavepim/internal/wavepim"
)

// pimCache memoizes PIM timing runs (Figures 11, 12 and 14 share them).
var pimCache sync.Map

type pimKey struct {
	bench     string
	chip      string
	inter     chip.InterconnectKind
	pipelined bool
}

func pimRun(b opcount.Benchmark, cfg chip.Config, pipelined bool) wavepim.Result {
	key := pimKey{b.Name(), cfg.Name, cfg.Interconnect, pipelined}
	if v, ok := pimCache.Load(key); ok {
		return v.(wavepim.Result)
	}
	opt := wavepim.DefaultOptions()
	opt.Pipelined = pipelined
	res, err := wavepim.Run(b, cfg, opt)
	if err != nil {
		panic(err)
	}
	pimCache.Store(key, res)
	return res
}

// ---------------------------------------------------------------------------
// Figures 11 and 12: performance and energy comparison
// ---------------------------------------------------------------------------

// PlatformResult is one platform's absolute time and energy on a benchmark.
type PlatformResult struct {
	Platform string
	TimeSec  float64
	EnergyJ  float64
}

// FigRow is one benchmark's results across all platforms, with everything
// needed to normalize to the Unfused-1080Ti baseline as the figures do.
type FigRow struct {
	Bench   opcount.Benchmark
	Results []PlatformResult
}

// Baseline returns the row's Unfused-1080Ti entry.
func (r FigRow) Baseline() PlatformResult { return r.Results[0] }

// Normalized returns time and energy of platform i relative to the
// baseline.
func (r FigRow) Normalized(i int) (time, energy float64) {
	b := r.Baseline()
	return r.Results[i].TimeSec / b.TimeSec, r.Results[i].EnergyJ / b.EnergyJ
}

// PIMPlatforms lists the PIM entries of Figures 11-12 in order: the four
// capacities at 28 nm, then the four capacities scaled to 12 nm.
func PIMPlatforms() []string {
	var names []string
	for _, cfg := range chip.AllConfigs() {
		names = append(names, cfg.Name+"-28nm")
	}
	for _, cfg := range chip.AllConfigs() {
		names = append(names, cfg.Name+"-12nm")
	}
	return names
}

// Fig11And12 computes every platform's time and energy on every benchmark.
func Fig11And12() []FigRow {
	var rows []FigRow
	for _, b := range opcount.AllBenchmarks() {
		row := FigRow{Bench: b}
		for _, m := range gpu.Baselines() {
			row.Results = append(row.Results, PlatformResult{
				Platform: m.Name(),
				TimeSec:  m.RunTime(b, TimeSteps),
				EnergyJ:  m.Energy(b, TimeSteps),
			})
		}
		for _, cfg := range chip.AllConfigs() {
			res := pimRun(b, cfg, true)
			row.Results = append(row.Results, PlatformResult{
				Platform: cfg.Name + "-28nm",
				TimeSec:  res.TotalSec,
				EnergyJ:  res.EnergyJ,
			})
		}
		for _, cfg := range chip.AllConfigs() {
			res := pimRun(b, cfg, true)
			row.Results = append(row.Results, PlatformResult{
				Platform: cfg.Name + "-12nm",
				TimeSec:  res.TotalSec / params.Scale12nmPerf,
				EnergyJ:  res.EnergyJ / params.Scale12nmEnergy,
			})
		}
		rows = append(rows, row)
	}
	return rows
}

// AvgSpeedups computes, for each PIM platform name, the mean speedup over
// the six benchmarks against the given GPU reference platform.
func AvgSpeedups(rows []FigRow, reference string) map[string]float64 {
	out := make(map[string]float64)
	for _, pim := range PIMPlatforms() {
		var sum float64
		for _, row := range rows {
			var ref, p float64
			for _, e := range row.Results {
				if e.Platform == reference {
					ref = e.TimeSec
				}
				if e.Platform == pim {
					p = e.TimeSec
				}
			}
			sum += ref / p
		}
		out[pim] = sum / float64(len(rows))
	}
	return out
}

// AvgEnergySavings computes mean energy savings against a reference.
func AvgEnergySavings(rows []FigRow, reference string) map[string]float64 {
	out := make(map[string]float64)
	for _, pim := range PIMPlatforms() {
		var sum float64
		for _, row := range rows {
			var ref, p float64
			for _, e := range row.Results {
				if e.Platform == reference {
					ref = e.EnergyJ
				}
				if e.Platform == pim {
					p = e.EnergyJ
				}
			}
			sum += ref / p
		}
		out[pim] = sum / float64(len(rows))
	}
	return out
}

// figTable renders a normalized grid (time or energy).
func figTable(rows []FigRow, title string, energy bool) *report.Table {
	t := &report.Table{Title: title}
	t.Headers = []string{"Platform"}
	for _, row := range rows {
		t.Headers = append(t.Headers, row.Bench.Name())
	}
	for i := range rows[0].Results {
		cells := []string{rows[0].Results[i].Platform}
		for _, row := range rows {
			tm, en := row.Normalized(i)
			v := tm
			if energy {
				v = en
			}
			cells = append(cells, fmt.Sprintf("%.4f", v))
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig11Table renders Figure 11 (time normalized to Unfused-1080Ti).
func Fig11Table(rows []FigRow) *report.Table {
	t := figTable(rows, "Figure 11: Time normalized to Unfused GTX 1080Ti", false)
	sp := AvgSpeedups(rows, "Unfused-1080Ti")
	spf := AvgSpeedups(rows, "Fused-V100")
	for _, cfg := range chip.AllConfigs() {
		t.AddNote("%s-28nm avg speedup: %.2fx vs Unfused-1080Ti (paper 12nm-class avgs: 10.28/35.80/72.21/172.76), %.2fx vs Fused-V100",
			cfg.Name, sp[cfg.Name+"-28nm"], spf[cfg.Name+"-28nm"])
	}
	return t
}

// Fig12Table renders Figure 12 (energy normalized to Unfused-1080Ti).
func Fig12Table(rows []FigRow) *report.Table {
	t := figTable(rows, "Figure 12: Energy normalized to Unfused GTX 1080Ti", true)
	es := AvgEnergySavings(rows, "Unfused-1080Ti")
	for _, cfg := range chip.AllConfigs() {
		t.AddNote("%s-28nm avg energy savings: %.2fx vs Unfused-1080Ti (paper: 26.62/26.82/14.28/16.01)",
			cfg.Name, es[cfg.Name+"-28nm"])
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 13: pipeline breakdown
// ---------------------------------------------------------------------------

// Fig13Result carries one stage's pipeline timeline plus the
// pipelined-versus-unpipelined throughput relation.
type Fig13Result struct {
	Timeline         []wavepim.StagePhase
	PipelinedStage   float64
	UnpipelinedStage float64
	// ThroughputRatio is the unpipelined system's relative throughput
	// (the paper: "Without pipelining, our Wave-PIM can only obtain a
	// 0.77x throughput").
	ThroughputRatio float64
}

// Fig13 analyzes the acoustic refinement-4 benchmark on the 2 GB chip
// (the Figure 13 configuration).
func Fig13() Fig13Result {
	b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	cfg := chip.Config2GB()
	piped := pimRun(b, cfg, true)
	flat := pimRun(b, cfg, false)
	return Fig13Result{
		Timeline:         piped.Timeline,
		PipelinedStage:   piped.StageSec,
		UnpipelinedStage: flat.StageSec,
		ThroughputRatio:  piped.StageSec / flat.StageSec,
	}
}

// Fig13Table renders the timeline with an ASCII Gantt chart mirroring the
// paper's figure.
func Fig13Table() *report.Table {
	r := Fig13()
	t := &report.Table{
		Title:   "Figure 13: Pipeline breakdown (Acoustic_4 on PIM-2GB, one RK stage)",
		Headers: []string{"Activity", "Start", "Duration", "Timeline"},
	}
	var end float64
	for _, p := range r.Timeline {
		if e := p.Start + p.Dur; e > end {
			end = e
		}
	}
	const width = 48
	for _, p := range r.Timeline {
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		lo := int(p.Start / end * float64(width))
		hi := int((p.Start + p.Dur) / end * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for i := lo; i < hi; i++ {
			bar[i] = '#'
		}
		t.AddRow(p.Name, report.Seconds(p.Start), report.Seconds(p.Dur), "|"+string(bar)+"|")
	}
	t.AddNote("pipelined stage %s vs unpipelined %s: unpipelined throughput = %.2fx (paper: 0.77x)",
		report.Seconds(r.PipelinedStage), report.Seconds(r.UnpipelinedStage), r.ThroughputRatio)
	return t
}

// ---------------------------------------------------------------------------
// Figure 14: H-tree versus Bus
// ---------------------------------------------------------------------------

// Fig14Case is one of the four benchmark/chip cases, under both
// interconnects.
type Fig14Case struct {
	Label           string
	Bench           opcount.Benchmark
	ChipName        string
	HTree           wavepim.Breakdown
	Bus             wavepim.Breakdown
	HTreeInterShare float64
	BusInterShare   float64
}

// IntraSec and InterSec implement Figure 14's stacked-bar decomposition.
func IntraSec(b wavepim.Breakdown) float64 { return b.ComputeSec + b.IntraTransferSec }
func InterSec(b wavepim.Breakdown) float64 { return b.InterTransferSec }

// Fig14 runs the four cases of the interconnect study.
func Fig14() []Fig14Case {
	cases := []struct {
		bench opcount.Benchmark
		cfg   chip.Config
	}{
		{opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}, chip.Config512MB()},
		{opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}, chip.Config2GB()},
		{opcount.Benchmark{Eq: opcount.ElasticCentral, Refinement: 4}, chip.Config2GB()},
		{opcount.Benchmark{Eq: opcount.ElasticCentral, Refinement: 4}, chip.Config8GB()},
	}
	var out []Fig14Case
	for _, c := range cases {
		ht := pimRun(c.bench, c.cfg, true)
		busCfg := c.cfg
		busCfg.Interconnect = chip.Bus
		bus := pimRun(c.bench, busCfg, true)
		fc := Fig14Case{
			Label:    fmt.Sprintf("%s @ %s", c.bench.Name(), c.cfg.Name),
			Bench:    c.bench,
			ChipName: c.cfg.Name,
			HTree:    ht.Breakdown,
			Bus:      bus.Breakdown,
		}
		fc.HTreeInterShare = InterSec(ht.Breakdown) / (IntraSec(ht.Breakdown) + InterSec(ht.Breakdown))
		fc.BusInterShare = InterSec(bus.Breakdown) / (IntraSec(bus.Breakdown) + InterSec(bus.Breakdown))
		out = append(out, fc)
	}
	return out
}

// Fig14Table renders the study.
func Fig14Table() *report.Table {
	t := &report.Table{
		Title:   "Figure 14: H-tree versus Bus (intra- vs inter-element time)",
		Headers: []string{"Case", "Interconnect", "Intra-element", "Inter-element", "Inter share"},
	}
	for _, c := range Fig14() {
		t.AddRow(c.Label, "H-tree", report.Seconds(IntraSec(c.HTree)),
			report.Seconds(InterSec(c.HTree)), fmt.Sprintf("%.2f%%", c.HTreeInterShare*100))
		t.AddRow(c.Label, "Bus", report.Seconds(IntraSec(c.Bus)),
			report.Seconds(InterSec(c.Bus)), fmt.Sprintf("%.2f%%", c.BusInterShare*100))
	}
	t.AddNote("paper inter-element shares: no expansion 21.62%% (H-tree) vs 58.41%% (Bus); expansion 42.77%% vs 69.96%%")
	return t
}

// HTreeTimeSavings returns the mean Bus/H-tree total-time ratio over the
// Figure 14 cases (the paper's "approximately 2.16x time savings in
// comparison to a bus architecture").
func HTreeTimeSavings() float64 {
	var sum float64
	cases := Fig14()
	for _, c := range cases {
		sum += (IntraSec(c.Bus) + InterSec(c.Bus)) / (IntraSec(c.HTree) + InterSec(c.HTree))
	}
	return sum / float64(len(cases))
}

// ---------------------------------------------------------------------------
// Headline numbers
// ---------------------------------------------------------------------------

// Headline computes the abstract's whole-paper averages: speedup and
// energy savings of the four 28nm PIM configurations versus the fused
// implementation on each of the three GPUs, then averaged.
type HeadlineResult struct {
	SpeedupVsGPU map[string]float64 // per GPU (fused impl), averaged over benchmarks and PIM configs
	EnergyVsGPU  map[string]float64
	AvgSpeedup   float64
	AvgEnergy    float64
}

// Headline computes the summary numbers.
func Headline() HeadlineResult {
	rows := Fig11And12()
	res := HeadlineResult{
		SpeedupVsGPU: make(map[string]float64),
		EnergyVsGPU:  make(map[string]float64),
	}
	gpus := []string{"Fused-1080Ti", "Fused-P100", "Fused-V100"}
	for _, g := range gpus {
		sp := AvgSpeedups(rows, g)
		es := AvgEnergySavings(rows, g)
		var s, e float64
		for _, cfg := range chip.AllConfigs() {
			s += sp[cfg.Name+"-28nm"]
			e += es[cfg.Name+"-28nm"]
		}
		res.SpeedupVsGPU[g] = s / 4
		res.EnergyVsGPU[g] = e / 4
		res.AvgSpeedup += s / 4
		res.AvgEnergy += e / 4
	}
	res.AvgSpeedup /= float64(len(gpus))
	res.AvgEnergy /= float64(len(gpus))
	return res
}
