package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/pim/intercon"
	"wavepim/internal/report"
	"wavepim/internal/wavepim"
)

// The topology sweep compares every constructible tile interconnect
// (H-tree, Bus, Mesh, Torus, Flattened Butterfly, Dragonfly) across the
// paper's six evaluation benchmarks on one chip configuration. The report
// is byte-deterministic: the simulator is a pure function of its inputs,
// every collection is a slice with fixed field order, and serialization
// is encoding/json with fixed indentation — so two sweeps of the same
// configuration produce identical bytes (the CI sweep guard cmp's them).

// OccupancyHistogram summarizes one fabric's per-switch busy-seconds
// ledger: how many switches never carried traffic, the busiest switch,
// and a count of switches per occupancy octile of that maximum (Counts[7]
// holds the switches within 1/8 of the busiest). A skewed histogram means
// a hot spine; a flat one means the fabric spreads load.
type OccupancyHistogram struct {
	Switches int     `json:"switches"`
	Idle     int     `json:"idle"`
	MaxSec   float64 `json:"max_seconds"`
	MeanSec  float64 `json:"mean_seconds"`
	TotalSec float64 `json:"total_seconds"`
	Counts   [8]int  `json:"octile_counts"`
}

func buildHistogram(busy []float64) OccupancyHistogram {
	h := OccupancyHistogram{Switches: len(busy)}
	for _, v := range busy {
		if v > h.MaxSec {
			h.MaxSec = v
		}
		h.TotalSec += v
	}
	if len(busy) > 0 {
		h.MeanSec = h.TotalSec / float64(len(busy))
	}
	for _, v := range busy {
		if v <= 0 {
			h.Idle++
			continue
		}
		idx := int(v / h.MaxSec * 8)
		if idx > 7 {
			idx = 7
		}
		h.Counts[idx]++
	}
	return h
}

// TimelineSpan is one stage-pipeline phase in the sweep report.
type TimelineSpan struct {
	Name  string  `json:"name"`
	Start float64 `json:"start_seconds"`
	Dur   float64 `json:"duration_seconds"`
}

// SweepBench is one benchmark's outcome on one topology.
type SweepBench struct {
	Bench           string             `json:"bench"`
	StageSec        float64            `json:"stage_seconds"`
	TotalSec        float64            `json:"total_seconds"`
	Cycles          int64              `json:"cycles"`
	DynamicJ        float64            `json:"dynamic_joules"`
	StaticJ         float64            `json:"static_joules"`
	EnergyJ         float64            `json:"energy_joules"`
	Transfers       int64              `json:"transfers"`
	Backpressured   int64              `json:"backpressured"`
	BackpressureSec float64            `json:"backpressure_seconds"`
	SpeedupVsHTree  float64            `json:"speedup_vs_htree"`
	EnergyVsHTree   float64            `json:"energy_vs_htree"`
	TileOccupancy   OccupancyHistogram `json:"tile_occupancy"`
	ChipOccupancy   OccupancyHistogram `json:"chip_occupancy"`
	Timeline        []TimelineSpan     `json:"timeline"`
}

// SweepTopology groups one fabric's results.
type SweepTopology struct {
	Topology     string       `json:"topology"`
	TileSwitches int          `json:"tile_switches"`
	LeakageW     float64      `json:"tile_leakage_watts"`
	Benches      []SweepBench `json:"benchmarks"`
}

// SweepReport is the full comparison.
type SweepReport struct {
	Chip       string          `json:"chip"`
	TimeSteps  int             `json:"time_steps"`
	Topologies []SweepTopology `json:"topologies"`
}

// TopologySweep runs every benchmark of the evaluation on every
// constructible interconnect of cfg's chip. timeSteps <= 0 selects the
// paper's 1024. Speedup and energy ratios are relative to the H-tree
// (the paper's default), which sweeps first.
func TopologySweep(cfg chip.Config, timeSteps int) (*SweepReport, error) {
	if timeSteps <= 0 {
		timeSteps = params.TimeStepsPerRun
	}
	rep := &SweepReport{Chip: cfg.Name, TimeSteps: timeSteps}
	benches := opcount.AllBenchmarks()
	baseTotal := make([]float64, len(benches))
	baseEnergy := make([]float64, len(benches))
	for _, name := range intercon.Names() {
		kind, err := chip.ParseInterconnect(name)
		if err != nil {
			return nil, err
		}
		tcfg := cfg
		tcfg.Interconnect = kind
		topo, err := intercon.New(name, params.BlocksPerTile, intercon.Config{Fanout: tcfg.Fanout})
		if err != nil {
			return nil, err
		}
		st := SweepTopology{
			Topology:     name,
			TileSwitches: topo.SwitchCount(),
			LeakageW:     topo.LeakagePowerW(),
		}
		for i, b := range benches {
			opt := wavepim.DefaultOptions()
			opt.TimeSteps = timeSteps
			res, err := wavepim.Run(b, tcfg, opt)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", b.Name(), name, err)
			}
			if name == "htree" {
				baseTotal[i] = res.TotalSec
				baseEnergy[i] = res.EnergyJ
			}
			sb := SweepBench{
				Bench:           b.Name(),
				StageSec:        res.StageSec,
				TotalSec:        res.TotalSec,
				Cycles:          int64(math.Round(res.TotalSec * params.WavePIM2GB.ClockMHz * 1e6)),
				DynamicJ:        res.DynamicJ,
				StaticJ:         res.StaticJ,
				EnergyJ:         res.EnergyJ,
				Transfers:       res.Intercon.Transfers,
				Backpressured:   res.Intercon.Backpressured,
				BackpressureSec: res.Intercon.BackpressureSec,
				SpeedupVsHTree:  baseTotal[i] / res.TotalSec,
				EnergyVsHTree:   baseEnergy[i] / res.EnergyJ,
				TileOccupancy:   buildHistogram(res.Intercon.TileSwitchBusy),
				ChipOccupancy:   buildHistogram(res.Intercon.ChipSwitchBusy),
			}
			for _, p := range res.Timeline {
				sb.Timeline = append(sb.Timeline, TimelineSpan{Name: p.Name, Start: p.Start, Dur: p.Dur})
			}
			st.Benches = append(st.Benches, sb)
		}
		rep.Topologies = append(rep.Topologies, st)
	}
	return rep, nil
}

// WriteJSON serializes the report with fixed two-space indentation.
func (r *SweepReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// TopologySweepTable renders the sweep as a per-benchmark comparison of
// run time, energy, and congestion across fabrics.
func TopologySweepTable(r *SweepReport) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Interconnect topology sweep (%s, %d steps; ratios vs H-tree)",
			r.Chip, r.TimeSteps),
		Headers: []string{"Benchmark", "Topology", "Switches", "Total", "Energy",
			"Speedup", "Backpressured", "Busiest switch"},
	}
	if len(r.Topologies) == 0 {
		return t
	}
	for i := range r.Topologies[0].Benches {
		for _, st := range r.Topologies {
			b := st.Benches[i]
			t.AddRow(b.Bench, st.Topology, fmt.Sprintf("%d", st.TileSwitches),
				report.Seconds(b.TotalSec), report.Joules(b.EnergyJ),
				report.F(b.SpeedupVsHTree, 2)+"x",
				fmt.Sprintf("%d", b.Backpressured),
				report.Seconds(b.TileOccupancy.MaxSec))
		}
	}
	return t
}
