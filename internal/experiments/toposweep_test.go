package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wavepim/internal/pim/chip"
)

var updateGolden = flag.Bool("update", false, "rewrite the topology-sweep golden file")

// goldenSweep is the fixed configuration behind the committed golden:
// the smallest chip, a handful of steps. The sweep is analytic, so the
// step count only scales the totals — it does not change convergence.
func goldenSweep(t *testing.T) []byte {
	t.Helper()
	r, err := TopologySweep(chip.Config512MB(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTopologySweepByteDeterminism: two sweeps over the same
// configuration serialize to identical bytes — the property the
// regression guard and the committed golden both lean on.
func TestTopologySweepByteDeterminism(t *testing.T) {
	a := goldenSweep(t)
	b := goldenSweep(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical sweeps produced different report bytes")
	}
}

// TestTopologySweepGolden pins the report bytes to the committed
// golden, so any change to fabric pricing, the contention loop, or the
// report schema is a visible diff. Regenerate with:
//
//	go test ./internal/experiments/ -run TestTopologySweepGolden -update
func TestTopologySweepGolden(t *testing.T) {
	path := filepath.Join("testdata", "toposweep_golden.json")
	got := goldenSweep(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Find the first divergence for a readable failure.
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		i := 0
		for i < n && got[i] == want[i] {
			i++
		}
		lo := i - 60
		if lo < 0 {
			lo = 0
		}
		hiG, hiW := i+60, i+60
		if hiG > len(got) {
			hiG = len(got)
		}
		if hiW > len(want) {
			hiW = len(want)
		}
		t.Fatalf("sweep report drifted from golden at byte %d:\n got ...%s...\nwant ...%s...\n(regenerate with -update if the change is intended)",
			i, got[lo:hiG], want[lo:hiW])
	}
}
