// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) from the reproduction's models: the dG operation
// counts, the GPU roofline, the CPU baseline, and the Wave-PIM timing
// simulator. Each generator returns formatted tables plus the raw numbers
// the test suite asserts on.
package experiments

import (
	"fmt"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/gpu"
	"wavepim/internal/hostcpu"
	"wavepim/internal/params"
	"wavepim/internal/pim/chip"
	"wavepim/internal/report"
	"wavepim/internal/wavepim"
)

// TimeSteps is the evaluation's simulation length.
const TimeSteps = params.TimeStepsPerRun

// ---------------------------------------------------------------------------
// Section 3.1: GPU versus CPU speedups
// ---------------------------------------------------------------------------

// Sec31Row is one platform's modeled speedup next to the paper's value.
type Sec31Row struct {
	Level    int
	Platform string
	Model    float64
	Paper    float64
}

// Sec31 computes the GPU-vs-CPU speedups of Section 3.1.
func Sec31() []Sec31Row {
	paper := map[int]map[string]float64{
		4: {"GTX 1080Ti": 94.35, "Tesla P100": 100.25, "Tesla V100": 123.38},
		5: {"GTX 1080Ti": 131.10, "Tesla P100": 223.95, "Tesla V100": 369.05},
	}
	var rows []Sec31Row
	for _, level := range []int{4, 5} {
		b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: level}
		cpu := hostcpu.BaselineRunTime(b, TimeSteps)
		for _, spec := range []params.GPUSpec{params.GTX1080Ti, params.TeslaP100, params.TeslaV100} {
			m := gpu.Model{Spec: spec, Impl: gpu.Unfused}
			rows = append(rows, Sec31Row{
				Level: level, Platform: spec.Name,
				Model: cpu / m.RunTime(b, TimeSteps),
				Paper: paper[level][spec.Name],
			})
		}
	}
	return rows
}

// Sec31Table renders Sec31.
func Sec31Table() *report.Table {
	t := &report.Table{
		Title:   "Section 3.1: GPU speedup over dual Xeon Platinum 8160 (acoustic, 1024 steps)",
		Headers: []string{"Refinement", "Platform", "Model", "Paper"},
	}
	for _, r := range Sec31() {
		t.AddRow(fmt.Sprintf("%d", r.Level), r.Platform, report.F(r.Model, 2), report.F(r.Paper, 2))
	}
	return t
}

// ---------------------------------------------------------------------------
// Table 2: hardware configurations
// ---------------------------------------------------------------------------

// Table2 renders the platform configuration table.
func Table2() *report.Table {
	t := &report.Table{
		Title: "Table 2: Hardware configurations",
		Headers: []string{"Platform", "Host CPU", "Node", "Clock", "Memory",
			"Mem BW", "Peak FP32"},
	}
	for _, s := range []params.GPUSpec{params.GTX1080Ti, params.TeslaP100, params.TeslaV100} {
		t.AddRow(s.Name, s.HostCPU, s.ProcessNode,
			fmt.Sprintf("%.0fMHz", s.ClockMHz),
			fmt.Sprintf("%dGB %s", s.MemoryGB, s.MemoryType),
			fmt.Sprintf("%.0fGB/s", s.MemoryBWBps/1e9),
			fmt.Sprintf("%.1fTFLOPS", s.PeakFP32FLOPS/1e12))
	}
	p := params.WavePIM2GB
	t.AddRow(p.Name, p.HostCPU, p.ProcessNode,
		fmt.Sprintf("%.0fMHz", p.ClockMHz),
		"512MB/2GB/8GB/16GB ReRAM",
		fmt.Sprintf("%.0fGB/s", p.MemoryBWBps/1e9),
		fmt.Sprintf("%.2fTFLOPS", p.PeakFP32FLOPS/1e12))
	t.AddNote("PIM throughput at the paper's 50%% add / 50%% mul mix (Table 2 prints 7.25 TFLOPS with decimal 16M rows)")
	return t
}

// ---------------------------------------------------------------------------
// Table 3: PIM power
// ---------------------------------------------------------------------------

// Table3Row pairs a component's modeled power with the published value.
type Table3Row struct {
	Component string
	ModelW    float64
	PaperW    float64
}

// Table3 computes the 2 GB chip power breakdown for both interconnects.
func Table3() []Table3Row {
	ht := chip.PowerModel(chip.Config2GB())
	bus := chip.Config2GB()
	bus.Interconnect = chip.Bus
	bt := chip.PowerModel(bus)
	return []Table3Row{
		{"Crossbar array (1Mb)", ht.CrossbarArrayW, params.PowerCrossbarArrayW},
		{"Sense amps (per block)", ht.SenseAmpW, params.PowerSenseAmpW},
		{"Decoder (per block)", ht.DecoderW, params.PowerDecoderW},
		{"Memory block", ht.MemoryBlockW, params.PowerMemoryBlockW},
		{"Tile memory (256 arrays)", ht.TileMemoryW, params.PowerTileMemoryW},
		{"H-tree switches (85)", ht.TileSwitchW, params.PowerHTreeSwitchesW},
		{"Bus switch", bt.TileSwitchW, params.PowerBusSwitchW},
		{"Tile (H-tree)", ht.TileW, params.PowerTileHTreeW},
		{"Tile (Bus)", bt.TileW, params.PowerTileBusW},
		{"Central controller", ht.ControllerW, params.PowerCentralCtrlW},
		{"CPU host", ht.HostW, params.PowerCPUHostW},
		{"Total 2GB (H-tree)", ht.TotalW, params.PowerChip2GBHTreeW},
		{"Total 2GB (Bus)", bt.TotalW, params.PowerChip2GBBusW},
	}
}

// Table3Table renders Table3.
func Table3Table() *report.Table {
	t := &report.Table{
		Title:   "Table 3: PIM parameters (2GB capacity) - power",
		Headers: []string{"Component", "Model", "Paper"},
	}
	for _, r := range Table3() {
		t.AddRow(r.Component, fmt.Sprintf("%.4gW", r.ModelW), fmt.Sprintf("%.4gW", r.PaperW))
	}
	t.AddNote("totals differ from the paper's by <2%%: its own rows (64 x 1.68 + 6.41 + 3.06 = 116.99) exceed its printed 115.02")
	return t
}

// ---------------------------------------------------------------------------
// Table 4: basic operation energy and time
// ---------------------------------------------------------------------------

// Table4 renders the memristor operation parameters the simulator charges.
func Table4() *report.Table {
	t := &report.Table{
		Title:   "Table 4: PIM basic operation energy (E) and time (T)",
		Headers: []string{"Parameter", "Value"},
	}
	t.AddRow("E_set", fmt.Sprintf("%.3gfJ", params.ESetJoules*1e15))
	t.AddRow("E_reset", fmt.Sprintf("%.3gfJ", params.EResetJoules*1e15))
	t.AddRow("E_NOR", fmt.Sprintf("%.3gfJ", params.ENORJoules*1e15))
	t.AddRow("E_search", fmt.Sprintf("%.3gpJ", params.ESearchJoules*1e12))
	t.AddRow("T_NOR", fmt.Sprintf("%.2gns", params.TNORSeconds*1e9))
	t.AddRow("T_search", fmt.Sprintf("%.2gns", params.TSearchSec*1e9))
	t.AddRow("FP32 add", fmt.Sprintf("%d NOR steps (%.2fus)", params.NORStepsFPAdd32,
		float64(params.NORStepsFPAdd32)*params.TNORSeconds*1e6))
	t.AddRow("FP32 mul", fmt.Sprintf("%d NOR steps (%.2fus)", params.NORStepsFPMul32,
		float64(params.NORStepsFPMul32)*params.TNORSeconds*1e6))
	return t
}

// ---------------------------------------------------------------------------
// Table 5: implementation configurations
// ---------------------------------------------------------------------------

// Table5Cell is one planner decision with the paper's.
type Table5Cell struct {
	Bench, Chip  string
	Model, Paper string
}

// Table5 runs the planner over the grid.
func Table5() []Table5Cell {
	paper := wavepim.PaperTable5()
	var out []Table5Cell
	rows := []opcount.Benchmark{
		{Eq: opcount.Acoustic, Refinement: 4},
		{Eq: opcount.ElasticCentral, Refinement: 4},
		{Eq: opcount.Acoustic, Refinement: 5},
		{Eq: opcount.ElasticCentral, Refinement: 5},
	}
	names := []string{"Acoustic_4", "Elastic_4", "Acoustic_5", "Elastic_5"}
	for i, b := range rows {
		for _, cfg := range chip.AllConfigs() {
			p, err := wavepim.MakePlan(b, cfg)
			if err != nil {
				panic(err)
			}
			out = append(out, Table5Cell{
				Bench: names[i], Chip: cfg.Name,
				Model: p.Table5String(),
				Paper: paper[names[i]][cfg.Name],
			})
		}
	}
	return out
}

// Table5Table renders the planner grid.
func Table5Table() *report.Table {
	t := &report.Table{
		Title:   "Table 5: PIM implementation configuration (model == paper on every cell)",
		Headers: []string{"Configuration", "512MB", "2GB", "8GB", "16GB"},
	}
	cells := Table5()
	for i := 0; i < len(cells); i += 4 {
		t.AddRow(cells[i].Bench, cells[i].Model, cells[i+1].Model, cells[i+2].Model, cells[i+3].Model)
	}
	return t
}

// ---------------------------------------------------------------------------
// Table 6: benchmark characteristics
// ---------------------------------------------------------------------------

// Table6Row is one benchmark's modeled counts next to the paper's.
type Table6Row struct {
	Name                   string
	Elements               int
	ModelInstr, PaperInstr int64
	ModelFLOPs, PaperFLOPs int64
}

// Table6 derives the benchmark characteristics.
func Table6() []Table6Row {
	paper := opcount.PaperTable6()
	var out []Table6Row
	for i, b := range opcount.AllBenchmarks() {
		out = append(out, Table6Row{
			Name:       b.Name(),
			Elements:   b.NumElements(),
			ModelInstr: opcount.Instructions(b),
			PaperInstr: paper[i].Instructions,
			ModelFLOPs: opcount.OneLaunchEach(b).FLOPs,
			PaperFLOPs: paper[i].FPOps,
		})
	}
	return out
}

// Table6Table renders Table6.
func Table6Table() *report.Table {
	t := &report.Table{
		Title: "Table 6: Characteristics of benchmarks (per kernel launched once)",
		Headers: []string{"Benchmark", "Elements", "Instr (model)", "Instr (paper)",
			"FP ops (model)", "FP ops (paper)"},
	}
	for _, r := range Table6() {
		t.AddRow(r.Name, fmt.Sprintf("%d", r.Elements),
			fmt.Sprintf("%d", r.ModelInstr), fmt.Sprintf("%d", r.PaperInstr),
			fmt.Sprintf("%d", r.ModelFLOPs), fmt.Sprintf("%d", r.PaperFLOPs))
	}
	t.AddNote("FP ops derived from the dG discretization; instruction counts apply the paper's nvprof-measured instruction/FLOP expansion")
	return t
}
