package experiments

import (
	"fmt"

	"wavepim/internal/dg"
	"wavepim/internal/mesh"
	"wavepim/internal/pim/isa"
	"wavepim/internal/report"
	"wavepim/internal/wavepim"
)

// OpMixResult reports the measured instruction mix of the compiled
// Wave-PIM kernels — the empirical check of the paper's throughput
// assumption ("assuming a workload containing 50% addition and 50%
// multiplication operations", Section 7.1).
type OpMixResult struct {
	Kernel    string
	Mix       isa.OpMix
	ArithFrac float64 // arithmetic instructions / all instructions
	MulFrac   float64 // multiplies / arithmetic instructions
}

// OpMixStudy compiles one full acoustic time-step's kernels (naive
// layout, Riemann flux, paper-sized elements) and histograms the opcodes.
func OpMixStudy() []OpMixResult {
	plan := wavepim.Plan{Tech: wavepim.Naive, Layout: wavepim.AcousticOneBlock, SlotsPerElem: 1}
	c := wavepim.NewCompiler(plan, 8, dg.RiemannFlux)

	kernels := []struct {
		name string
		prog []isa.Instr
	}{
		{"Volume", c.VolumeOneBlock()},
	}
	var flux []isa.Instr
	for f := mesh.Face(0); f < mesh.NumFaces; f++ {
		flux = append(flux, c.FluxOneBlock(f)...)
	}
	kernels = append(kernels, struct {
		name string
		prog []isa.Instr
	}{"Flux (6 faces)", flux})
	kernels = append(kernels, struct {
		name string
		prog []isa.Instr
	}{"Integration", c.IntegrationOneBlock(0)})

	var out []OpMixResult
	total := isa.OpMix{Counts: map[isa.Opcode]int{}}
	for _, k := range kernels {
		m := isa.Mix(k.prog)
		a, mu := m.ArithShare()
		out = append(out, OpMixResult{Kernel: k.name, Mix: m, ArithFrac: a, MulFrac: mu})
		total.Add(m)
	}
	a, mu := total.ArithShare()
	out = append(out, OpMixResult{Kernel: "Whole stage", Mix: total, ArithFrac: a, MulFrac: mu})
	return out
}

// OpMixTable renders the study.
func OpMixTable() *report.Table {
	t := &report.Table{
		Title: "Instruction mix of the compiled acoustic kernels (naive layout, Riemann flux)",
		Headers: []string{"Kernel", "Instrs", "Add/Sub", "Mul", "GBcast/Pattern", "Bcast",
			"Arith share", "Mul share"},
	}
	for _, r := range OpMixStudy() {
		t.AddRow(r.Kernel,
			fmt.Sprintf("%d", r.Mix.Total),
			fmt.Sprintf("%d", r.Mix.Counts[isa.OpAdd]+r.Mix.Counts[isa.OpSub]),
			fmt.Sprintf("%d", r.Mix.Counts[isa.OpMul]),
			fmt.Sprintf("%d", r.Mix.Counts[isa.OpGroupBcast]+r.Mix.Counts[isa.OpPattern]),
			fmt.Sprintf("%d", r.Mix.Counts[isa.OpBroadcast]),
			fmt.Sprintf("%.1f%%", r.ArithFrac*100),
			fmt.Sprintf("%.1f%%", r.MulFrac*100))
	}
	t.AddNote("the paper's throughput model assumes a 50%%/50%% add/mul arithmetic mix; the measured whole-stage mul share tests that assumption")
	return t
}
