// Package params is the single source of truth for every device constant
// and model-calibration factor used by the Wave-PIM reproduction.
//
// The numbers in this package come from three places:
//
//  1. The paper's published tables (Table 2: hardware configurations,
//     Table 3: PIM component power for the 2 GB chip, Table 4: basic
//     memristor operation energy and time).
//  2. Derived quantities the paper states in prose (for example the 16M-row
//     parallelism of a 2 GB chip, 2GB/1024b = 16M, and the resulting
//     ~7.25 TFLOP/s mixed add/multiply throughput).
//  3. Calibration factors for the analytic GPU roofline model, chosen so the
//     model reproduces the paper's measured GPU-vs-CPU speedups (Section
//     3.1). These are substitutes for real-hardware measurement and are
//     documented in EXPERIMENTS.md.
package params

// ---------------------------------------------------------------------------
// Table 4: PIM basic operation energy (E) and time (T).
// ---------------------------------------------------------------------------

// Basic memristor cell operation costs. The paper's Table 4 lists Eset as
// "23.8J", an obvious typo for femtojoules alongside Ereset = 0.32 fJ; every
// digital-PIM source the paper builds on (FloatPIM, MAGIC) reports set/reset
// energies in femtojoules, so we use fJ.
const (
	ESetJoules    = 23.8e-15 // energy to switch a cell Roff -> Ron
	EResetJoules  = 0.32e-15 // energy to switch a cell Ron -> Roff
	ENORJoules    = 0.29e-15 // energy of a single in-array NOR evaluation
	ESearchJoules = 5.34e-12 // energy of an associative row search
	TNORSeconds   = 1.1e-9   // latency of one NOR step
	TSearchSec    = 1.5e-9   // latency of a row search
)

// ---------------------------------------------------------------------------
// Bit-serial arithmetic cost model (Section 7.1 and Table 2 derivation).
// ---------------------------------------------------------------------------

// NOR-step counts for one 32-bit floating point operation executed
// bit-serially in a crossbar row. The paper does not publish these directly;
// it states the chip throughput is computed "based on the maximum parallelism
// (2GB/1,024b = 16M) and the arithmetic operation latency from prior works,
// assuming a workload containing 50% addition and 50% multiplication", and
// Table 2 lists that throughput as 7.25 TFLOP/s. With T_NOR = 1.1 ns, a
// (1300, 2700) split gives an average op latency of 2.2 us and
// 16M / 2.2us = 7.27 TFLOP/s, matching Table 2. The 2700-step multiply and
// 1300-step add also preserve FloatPIM's ~2x multiply/add latency ratio.
const (
	NORStepsFPAdd32 = 1300
	NORStepsFPMul32 = 2700
)

// CellsPerRow is the row (and column) size of one crossbar memory block:
// a 1K x 1K array = 1 Mb (Table 3).
const CellsPerRow = 1024

// BlockBits is the capacity of one memory block in bits.
const BlockBits = CellsPerRow * CellsPerRow

// BlocksPerTile is the number of memory blocks per tile (Table 3: 256,
// giving a 32 MB tile).
const BlocksPerTile = 256

// Word is the data precision used throughout the system (32-bit float).
const WordBits = 32

// WordsPerRow is how many 32-bit words fit in one crossbar row.
const WordsPerRow = CellsPerRow / WordBits // 32

// EnergyPerNORStep is the average dynamic energy of one NOR step of a
// bit-serial arithmetic operation, including the output-cell switching it
// causes. Each NOR evaluation costs ENOR and, with probability ~1/2,
// switches its pre-reset output cell (Roff -> Ron, ESet) after the
// mandatory reset (EReset). This average is the per-step energy used by the
// timing engine; the functional engine counts actual switches.
const EnergyPerNORStep = ENORJoules + EResetJoules + 0.5*ESetJoules

// ---------------------------------------------------------------------------
// Table 3: PIM component power (2 GB chip reference design).
// ---------------------------------------------------------------------------

const (
	PowerCrossbarArrayW  = 6.14e-3   // one 1 Mb crossbar array
	PowerSenseAmpW       = 2.38e-3   // 1K sense amplifiers of one block
	PowerDecoderW        = 0.31e-3   // per-block instruction decoder
	PowerMemoryBlockW    = 8.83e-3   // total for one memory block
	PowerTileMemoryW     = 1.57      // 256 blocks' worth of memory arrays (paper rounds)
	PowerHTreeSwitchesW  = 107.13e-3 // all 85 H-tree switches of one 256-block tile
	PowerBusSwitchW      = 17.2e-3   // the single bus switch of one tile
	PowerTileHTreeW      = 1.68      // one 32 MB tile, H-tree interconnect
	PowerTileBusW        = 1.59      // one 32 MB tile, bus interconnect
	PowerCentralCtrlW    = 6.41      // chip-level central controller
	PowerCPUHostW        = 3.06      // ARM Cortex-A72 host
	PowerChip2GBHTreeW   = 115.02    // published total, 2 GB H-tree chip
	PowerChip2GBBusW     = 109.25    // published total, 2 GB bus chip
	HTreeSwitchesPerTile = 85        // 64 S0 + 16 S1 + 4 S2 + 1 S3 in a 256-block tile
)

// OffChipDRAMPowerW is the 900 GB/s HBM2 used as Wave-PIM's off-chip memory
// (Section 7.1, citing Li et al. for the 36.91 W figure).
const OffChipDRAMPowerW = 36.91

// OffChipBandwidthBps is the HBM2 bandwidth shared by the PIM chip and the
// GPU baselines' V100 (900 GB/s).
const OffChipBandwidthBps = 900e9

// ---------------------------------------------------------------------------
// Interconnect timing model (Section 4.2).
// ---------------------------------------------------------------------------

// Per-hop latency of moving one row-buffer payload through one interconnect
// switch. The paper does not publish this directly; FloatPIM-class designs
// move a full 1 Kb row buffer between adjacent blocks in a handful of
// nanoseconds over the wide internal datapath. Transfers are therefore
// priced per 1 Kb payload (32 words) per hop; energy still scales with the
// bits actually moved. Together with the topology difference (parallel
// disjoint H-tree subtrees versus one serializing bus) this reproduces the
// paper's Figure 14 ratios.
const (
	SwitchHopLatencySec   = 4.4e-9   // per 1 Kb row-buffer payload per switch hop
	BusHopPenalty         = 2.0      // bus switch drives tile-spanning wires
	MeshHopPenalty        = 1.0      // mesh/torus links span one switch neighborhood
	FlatFlyHopPenalty     = 1.5      // flattened-butterfly express links cross rows/columns
	DragonflyHopPenalty   = 1.75     // dragonfly mixes local and tile-spanning global links
	PayloadWords          = 32       // words per routed payload (one row buffer)
	SwitchHopEnergyJ      = 0.18e-12 // per 32-bit word per switch hop
	BlockRowReadLatency   = TSearchSec
	BlockRowWriteLatency  = TNORSeconds * 2
	RowBufferReadEnergyJ  = 1.1e-12 // load one 1 Kb row into the row buffer
	RowBufferWriteEnergyJ = 1.4e-12 // store one 1 Kb row from the row buffer

	// A group-broadcast (strided intra-block data rearrangement through the
	// column buffers) moves one 32-bit-wide column: 32 physical column
	// reads plus 32 permuted column writes.
	GroupBcastLatencySec = 32 * (TSearchSec + 2*TNORSeconds)
	GroupBcastEnergyJ    = 32 * (RowBufferReadEnergyJ + RowBufferWriteEnergyJ) / 8
)

// ---------------------------------------------------------------------------
// Table 2: hardware configurations.
// ---------------------------------------------------------------------------

// GPUSpec describes one GPU platform of Table 2.
type GPUSpec struct {
	Name           string
	HostCPU        string
	ProcessNode    string
	ClockMHz       float64
	RegisterKB     int
	L2CacheKB      int
	MemoryGB       int
	MemoryType     string
	MemoryBWBps    float64
	FP32Cores      int
	PeakFP32FLOPS  float64
	BoardPowerW    float64 // TDP
	HostPowerW     float64 // measured host (dual-socket Xeon) package power share
	LaunchOverhead float64 // seconds per kernel launch
}

// The three GPU baselines of Table 2. Peak FP32 throughput follows the
// published whitepaper numbers (11.5 / 10.6 / 15.7 TFLOP/s). TDPs are the
// vendor board powers (250 / 300 / 300 W); host power is the RAPL-measured
// share the paper attributes to the host.
var (
	GTX1080Ti = GPUSpec{
		Name: "GTX 1080Ti", HostCPU: "Xeon E5-2697 v4", ProcessNode: "16nm",
		ClockMHz: 1530, RegisterKB: 7168, L2CacheKB: 2816,
		MemoryGB: 11, MemoryType: "GDDR5X", MemoryBWBps: 484e9,
		FP32Cores: 3584, PeakFP32FLOPS: 11.5e12,
		BoardPowerW: 250, HostPowerW: 145, LaunchOverhead: 5e-6,
	}
	TeslaP100 = GPUSpec{
		Name: "Tesla P100", HostCPU: "Xeon Platinum 8160", ProcessNode: "16nm",
		ClockMHz: 1480, RegisterKB: 14336, L2CacheKB: 4096,
		MemoryGB: 16, MemoryType: "HBM2", MemoryBWBps: 720e9,
		FP32Cores: 3584, PeakFP32FLOPS: 10.6e12,
		BoardPowerW: 300, HostPowerW: 150, LaunchOverhead: 5e-6,
	}
	TeslaV100 = GPUSpec{
		Name: "Tesla V100", HostCPU: "Xeon Platinum 8160", ProcessNode: "12nm",
		ClockMHz: 1582, RegisterKB: 20480, L2CacheKB: 6144,
		MemoryGB: 16, MemoryType: "HBM2", MemoryBWBps: 900e9,
		FP32Cores: 5120, PeakFP32FLOPS: 15.7e12,
		BoardPowerW: 300, HostPowerW: 150, LaunchOverhead: 5e-6,
	}
)

// PIMSpec summarises the Wave-PIM column of Table 2.
type PIMSpec struct {
	Name          string
	HostCPU       string
	ProcessNode   string
	ClockMHz      float64
	CapacityBytes int64
	MemoryBWBps   float64
	PeakFP32FLOPS float64 // mixed 50/50 add-multiply throughput
}

// WavePIM2GB is the reference 2 GB configuration of Table 2.
var WavePIM2GB = PIMSpec{
	Name: "Wave-PIM", HostCPU: "ARM Cortex-A72", ProcessNode: "28nm",
	ClockMHz: 900, CapacityBytes: 2 << 30, MemoryBWBps: OffChipBandwidthBps,
	PeakFP32FLOPS: MixedThroughputFLOPS(2 << 30),
}

// MaxParallelRows is the number of crossbar rows a chip of the given
// capacity can operate on simultaneously: one op per 1 Kb row
// (capacity / 1024 bits). For the 2 GB chip this is the paper's 16M.
func MaxParallelRows(capacityBytes int64) int64 {
	return capacityBytes * 8 / CellsPerRow
}

// MixedThroughputFLOPS is the chip throughput for the paper's 50% addition /
// 50% multiplication workload mix.
func MixedThroughputFLOPS(capacityBytes int64) float64 {
	avgLatency := TNORSeconds * (NORStepsFPAdd32 + NORStepsFPMul32) / 2
	return float64(MaxParallelRows(capacityBytes)) / avgLatency
}

// CPUBaselineSpec is the dual Xeon Platinum 8160 (48 cores) CPU baseline of
// Section 3.1.
type CPUSpec struct {
	Name          string
	Cores         int
	PeakFP32FLOPS float64
	MemoryBWBps   float64
	PowerW        float64
}

var XeonPlatinum8160x2 = CPUSpec{
	Name:  "2x Xeon Platinum 8160",
	Cores: 48,
	// 48 cores x 2.1 GHz x 2 AVX-512 FMA pipes x 32 FP32/FMA.
	PeakFP32FLOPS: 48 * 2.1e9 * 64,
	MemoryBWBps:   256e9, // 12 DDR4-2666 channels
	PowerW:        2*150 + 60,
}

// ARMCortexA72 hosts the PIM chip: it streams instructions and serves the
// offloaded sqrt/inverse preprocessing (Section 4.3).
type HostSpec struct {
	Name              string
	Cores             int
	ClockHz           float64
	PowerW            float64
	SqrtLatencySec    float64 // one scalar fp32 sqrt, including loop overhead
	InverseLatencySec float64 // one scalar fp32 reciprocal
}

var ARMCortexA72 = HostSpec{
	Name: "ARM Cortex-A72", Cores: 4, ClockHz: 1.5e9, PowerW: PowerCPUHostW,
	SqrtLatencySec:    22e-9, // ~17-cycle fsqrt plus loop overhead at 1.5 GHz
	InverseLatencySec: 12e-9,
}

// ---------------------------------------------------------------------------
// Process scaling (Section 7.3): the PIM is simulated at 28 nm; the paper
// applies published scaling results to project a 12 nm implementation.
// ---------------------------------------------------------------------------

const (
	Scale12nmPerf   = 3.81 // 12nm performance improvement over 28nm
	Scale12nmEnergy = 2.0  // 12nm energy savings over 28nm
)

// ---------------------------------------------------------------------------
// GPU roofline calibration (substitutes for real-hardware measurement).
// ---------------------------------------------------------------------------

// Per-kernel efficiency factors for the GPU model. The paper's profiling
// narrative (Section 3.1) fixes their ordering: Volume scales with SMs until
// bandwidth-bound; Integration is dominated by memory accesses; Flux is "the
// most inefficient kernel" because of control divergence.
const (
	GPUBandwidthEff     = 0.78 // achieved fraction of peak DRAM bandwidth
	GPUVolumeComputeEff = 0.55 // achieved fraction of peak FP32 in Volume
	GPUIntegComputeEff  = 0.45
	GPUFluxComputeEff   = 0.20 // divergence-degraded
	GPUFluxDivergence   = 2.6  // extra serialization multiplier for Flux (unfused)
	GPUFusedSaving      = 0.62 // fused implementation's time relative to unfused
	GPUFusedDivergence  = 1.8  // fused kernel determines neighbours more efficiently
)

// CPUBaselineEff is the achieved fraction of CPU peak for the p4est-based
// reference implementation; wave dG codes on CPUs are bandwidth- and
// latency-limited, which the paper's 94-369x GPU speedups imply.
const CPUBaselineEff = 0.018

// TimeStepsPerRun is the simulation length used throughout the evaluation
// (Section 3.1: 1024 time-steps).
const TimeStepsPerRun = 1024

// IntegrationStagesPerStep is the paper's "five integration steps in each
// time-step" (a 5-stage low-storage Runge-Kutta scheme).
const IntegrationStagesPerStep = 5
