package wavefield

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"wavepim/internal/mesh"
)

// buildField fills a nodal field with f(x, y, z).
func buildField(m *mesh.Mesh, f func(x, y, z float64) float64) []float64 {
	out := make([]float64, m.NumElem*m.NodesPerEl)
	for e := 0; e < m.NumElem; e++ {
		for n := 0; n < m.NodesPerEl; n++ {
			x, y, z := m.NodePosition(e, n)
			out[e*m.NodesPerEl+n] = f(x, y, z)
		}
	}
	return out
}

func TestSampleRecoversSmoothField(t *testing.T) {
	m := mesh.New(2, 5, true)
	field := buildField(m, func(x, y, z float64) float64 {
		return math.Sin(2*math.Pi*x) * math.Cos(2*math.Pi*y)
	})
	snap := Sample(m, field, Plane{Axis: mesh.AxisZ, Coord: 0.5}, 24, 24)
	var worst float64
	for j := 0; j < snap.Ny; j++ {
		for i := 0; i < snap.Nx; i++ {
			x := (float64(i) + 0.5) / 24
			y := (float64(j) + 0.5) / 24
			want := math.Sin(2*math.Pi*x) * math.Cos(2*math.Pi*y)
			if d := math.Abs(snap.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	// Nearest-node sampling error is bounded by the node spacing times the
	// field gradient (~2 pi * spacing).
	if worst > 0.45 {
		t.Errorf("nearest-node sampling error %g too large", worst)
	}
}

func TestSamplePlaneSelection(t *testing.T) {
	m := mesh.New(1, 4, true)
	field := buildField(m, func(x, y, z float64) float64 { return z })
	lowZ := Sample(m, field, Plane{Axis: mesh.AxisZ, Coord: 0.1}, 8, 8)
	highZ := Sample(m, field, Plane{Axis: mesh.AxisZ, Coord: 0.9}, 8, 8)
	if lowZ.Data[0] >= highZ.Data[0] {
		t.Errorf("plane selection wrong: z=0.1 sample %g vs z=0.9 sample %g", lowZ.Data[0], highZ.Data[0])
	}
	// X-plane: in-plane axes are (y, z); the field z should vary along j.
	xp := Sample(m, field, Plane{Axis: mesh.AxisX, Coord: 0.5}, 4, 4)
	if xp.At(0, 0) >= xp.At(0, 3) {
		t.Error("x-plane in-plane axis mapping wrong")
	}
}

func TestMinMaxAndRMS(t *testing.T) {
	s := &Snapshot{Nx: 2, Ny: 2, Data: []float64{-1, 0, 0, 3}}
	lo, hi := s.MinMax()
	if lo != -1 || hi != 3 {
		t.Errorf("MinMax = %g, %g", lo, hi)
	}
	if want := math.Sqrt(10.0 / 4); math.Abs(s.RMS()-want) > 1e-15 {
		t.Errorf("RMS = %g want %g", s.RMS(), want)
	}
}

func TestWriteCSV(t *testing.T) {
	s := &Snapshot{Nx: 2, Ny: 2, Data: []float64{1, 2, 3, 4.5}}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1,2\n3,4.5\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestWritePGM(t *testing.T) {
	s := &Snapshot{Nx: 3, Ny: 2, Data: []float64{0, 0.5, 1, 1, 0.5, 0}}
	var buf bytes.Buffer
	if err := s.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	pixels := out[len("P5\n3 2\n255\n"):]
	if len(pixels) != 6 {
		t.Fatalf("want 6 pixels, got %d", len(pixels))
	}
	if pixels[0] != 0 || pixels[2] != 255 {
		t.Errorf("normalization wrong: %v", pixels)
	}
}

func TestWritePGMConstantField(t *testing.T) {
	s := &Snapshot{Nx: 2, Ny: 1, Data: []float64{7, 7}}
	var buf bytes.Buffer
	if err := s.WritePGM(&buf); err != nil {
		t.Fatal(err) // zero span must not divide by zero
	}
}

func TestASCII(t *testing.T) {
	s := &Snapshot{Nx: 3, Ny: 2, Data: []float64{0, 0, 0, 1, -1, 0}}
	art := s.ASCII()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 2 || len([]rune(lines[0])) != 3 {
		t.Fatalf("ASCII shape wrong: %q", art)
	}
	// Row j=1 renders first (top); |1| and |-1| map to the densest glyph.
	if lines[0][0] != '@' || lines[0][1] != '@' {
		t.Errorf("peak glyphs wrong: %q", lines[0])
	}
	if lines[1] != "   " {
		t.Errorf("zero row wrong: %q", lines[1])
	}
}

func TestSamplePanicsOnLengthMismatch(t *testing.T) {
	m := mesh.New(1, 4, true)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Sample(m, make([]float64, 3), Plane{Axis: mesh.AxisZ, Coord: 0.5}, 4, 4)
}
