// Package wavefield provides field sampling and output utilities for the
// wave solvers: uniform-grid snapshots of a nodal field, planar
// cross-sections, and writers (CSV for analysis, PGM and ASCII art for
// quick looks). The examples use it to turn simulations into inspectable
// artifacts.
package wavefield

import (
	"fmt"
	"io"
	"math"
	"strings"

	"wavepim/internal/mesh"
)

// Snapshot is a field sampled on a uniform nx x ny grid over a planar
// cross-section of the unit cube.
type Snapshot struct {
	Nx, Ny int
	Data   []float64 // row-major, Data[j*Nx+i]
	Label  string
}

// At returns the sample at (i, j).
func (s *Snapshot) At(i, j int) float64 { return s.Data[j*s.Nx+i] }

// MinMax returns the data range.
func (s *Snapshot) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range s.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return
}

// Plane identifies a cross-section: the fixed axis and its coordinate.
type Plane struct {
	Axis  mesh.Axis
	Coord float64
}

// Sample extracts a snapshot of the nodal field (one value per global
// node, NumElem*NodesPerEl long) on the plane, using nearest-node
// sampling: for each grid point, the value at the closest mesh node on
// the plane's containing element layer. Resolution nx x ny covers the
// two in-plane axes in [0,1].
func Sample(m *mesh.Mesh, field []float64, p Plane, nx, ny int) *Snapshot {
	if len(field) != m.NumElem*m.NodesPerEl {
		panic(fmt.Sprintf("wavefield: field has %d values, mesh has %d nodes",
			len(field), m.NumElem*m.NodesPerEl))
	}
	snap := &Snapshot{Nx: nx, Ny: ny, Data: make([]float64, nx*ny)}
	axA, axB := inPlaneAxes(p.Axis)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			var pos [3]float64
			pos[p.Axis] = clamp01(p.Coord)
			pos[axA] = (float64(i) + 0.5) / float64(nx)
			pos[axB] = (float64(j) + 0.5) / float64(ny)
			e, n := nearestNode(m, pos[0], pos[1], pos[2])
			snap.Data[j*nx+i] = field[e*m.NodesPerEl+n]
		}
	}
	return snap
}

func inPlaneAxes(a mesh.Axis) (mesh.Axis, mesh.Axis) {
	switch a {
	case mesh.AxisX:
		return mesh.AxisY, mesh.AxisZ
	case mesh.AxisY:
		return mesh.AxisX, mesh.AxisZ
	default:
		return mesh.AxisX, mesh.AxisY
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// nearestNode locates the element and node closest to (x, y, z) without a
// full scan: the element comes from the lattice, the node from per-axis
// nearest GLL points.
func nearestNode(m *mesh.Mesh, x, y, z float64) (elem, node int) {
	locate := func(c float64) (e int, local float64) {
		e = int(c * float64(m.EPerAxis))
		if e >= m.EPerAxis {
			e = m.EPerAxis - 1
		}
		// Map into the element's reference coordinate [-1, 1].
		local = (c-float64(e)*m.H)/m.H*2 - 1
		return
	}
	ex, rx := locate(x)
	ey, ry := locate(y)
	ez, rz := locate(z)
	ni := nearestPoint(m.Rule.Points, rx)
	nj := nearestPoint(m.Rule.Points, ry)
	nk := nearestPoint(m.Rule.Points, rz)
	return m.ElemID(ex, ey, ez), m.NodeIndex(ni, nj, nk)
}

func nearestPoint(pts []float64, r float64) int {
	best, bestD := 0, math.Inf(1)
	for i, p := range pts {
		if d := math.Abs(p - r); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// WriteCSV writes the snapshot as rows of comma-separated values.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	for j := 0; j < s.Ny; j++ {
		for i := 0; i < s.Nx; i++ {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%g", s.At(i, j)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WritePGM writes the snapshot as a binary 8-bit PGM image, normalizing
// the data range to [0, 255].
func (s *Snapshot) WritePGM(w io.Writer) error {
	lo, hi := s.MinMax()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", s.Nx, s.Ny); err != nil {
		return err
	}
	buf := make([]byte, s.Nx)
	for j := 0; j < s.Ny; j++ {
		for i := 0; i < s.Nx; i++ {
			buf[i] = byte((s.At(i, j) - lo) / span * 255)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ASCII renders the snapshot as terminal art with a symmetric diverging
// ramp around zero.
func (s *Snapshot) ASCII() string {
	ramp := []rune(" .:-=+*#%@")
	lo, hi := s.MinMax()
	amp := math.Max(math.Abs(lo), math.Abs(hi))
	if amp == 0 {
		amp = 1
	}
	var b strings.Builder
	for j := s.Ny - 1; j >= 0; j-- { // y axis upward
		for i := 0; i < s.Nx; i++ {
			v := math.Abs(s.At(i, j)) / amp
			idx := int(v * float64(len(ramp)-1))
			b.WriteRune(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RMS returns the root-mean-square of the snapshot.
func (s *Snapshot) RMS() float64 {
	var sum float64
	for _, v := range s.Data {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(s.Data)))
}
