package hostcpu

import (
	"testing"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/params"
)

func TestBaselineRunTimePositiveAndOrdered(t *testing.T) {
	var prev float64
	for _, b := range opcount.AllBenchmarks() {
		tt := BaselineRunTime(b, params.TimeStepsPerRun)
		if tt <= 0 {
			t.Fatalf("%s: nonpositive CPU time", b.Name())
		}
		_ = prev
		prev = tt
	}
	// Bigger equations take longer at a fixed level.
	ac := BaselineRunTime(opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}, 64)
	er := BaselineRunTime(opcount.Benchmark{Eq: opcount.ElasticRiemann, Refinement: 4}, 64)
	if er <= ac {
		t.Error("elastic-Riemann should take longer than acoustic on the CPU")
	}
}

func TestLevel5LessEfficientThanLevel4(t *testing.T) {
	// Level 5 runs at lower efficiency (cache thrashing), so its time grows
	// superlinearly: more than 8x the level-4 time.
	b4 := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	b5 := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 5}
	r := BaselineRunTime(b5, 64) / BaselineRunTime(b4, 64)
	if r <= 8 {
		t.Errorf("level5/level4 CPU time ratio %.2f, want > 8 (efficiency degradation)", r)
	}
}

func TestBaselineEnergy(t *testing.T) {
	b := opcount.Benchmark{Eq: opcount.Acoustic, Refinement: 4}
	e := BaselineEnergy(b, 64)
	want := BaselineRunTime(b, 64) * params.XeonPlatinum8160x2.PowerW
	if e != want {
		t.Errorf("energy %g want %g", e, want)
	}
}

func TestHostPreprocessTime(t *testing.T) {
	h := params.ARMCortexA72
	got := HostPreprocessTime(100, 200)
	want := (100*h.SqrtLatencySec + 200*h.InverseLatencySec) / float64(h.Cores)
	if got != want {
		t.Errorf("got %g want %g", got, want)
	}
	if HostPreprocessTime(0, 0) != 0 {
		t.Error("zero work should cost zero time")
	}
}
