// Package hostcpu models the two CPUs of the evaluation: the dual Xeon
// Platinum 8160 baseline of Section 3.1 (whose p4est-based reference
// implementation the paper's GPU speedups are measured against) and the
// ARM Cortex-A72 host that feeds the PIM chip.
package hostcpu

import (
	"wavepim/internal/dg/opcount"
	"wavepim/internal/params"
)

// BaselineEff is the achieved fraction of the 48-core Xeon system's peak
// FP32 throughput for the paper's CPU reference implementation, by
// refinement level. These values are calibrated from the paper's own data:
// the published GPU speedups (94-369x over 48 Skylake cores, Section 3.1)
// imply a CPU code running at well under a GFLOP/s — the only information
// the paper provides about it — and the level-5 efficiency is lower
// because the larger model thrashes the cache hierarchy.
var BaselineEff = map[int]float64{
	4: 4.05e-5,
	5: 2.46e-5,
}

// BaselineRunTime returns the CPU reference implementation's duration for
// a benchmark (five stages per step).
func BaselineRunTime(b opcount.Benchmark, timeSteps int) float64 {
	eff, ok := BaselineEff[b.Refinement]
	if !ok {
		eff = BaselineEff[5]
	}
	flops := float64(opcount.OneLaunchEach(b).FLOPs) *
		float64(params.IntegrationStagesPerStep) * float64(timeSteps)
	return flops / (params.XeonPlatinum8160x2.PeakFP32FLOPS * eff)
}

// BaselineEnergy returns the CPU run's energy at the package power.
func BaselineEnergy(b opcount.Benchmark, timeSteps int) float64 {
	return BaselineRunTime(b, timeSteps) * params.XeonPlatinum8160x2.PowerW
}

// HostPreprocessTime returns the ARM host's time to precompute n sqrt and
// m inverse values (the Section 4.3 offload), spread over its cores.
func HostPreprocessTime(sqrts, inverses int) float64 {
	h := params.ARMCortexA72
	return (float64(sqrts)*h.SqrtLatencySec + float64(inverses)*h.InverseLatencySec) / float64(h.Cores)
}
