package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Trace ids are pure functions of the job id, distinct across ids, and
// survive the header round trip.
func TestIDAndHeaderRoundTrip(t *testing.T) {
	a, b := New("job-a"), New("job-b")
	if a.TraceID == 0 || b.TraceID == 0 {
		t.Fatalf("zero trace id: %x %x", a.TraceID, b.TraceID)
	}
	if a.TraceID == b.TraceID {
		t.Fatalf("distinct jobs share trace id %x", a.TraceID)
	}
	if got := New("job-a"); got != a {
		t.Fatalf("trace id not deterministic: %+v vs %+v", got, a)
	}
	parsed, err := Parse(a.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", a.String(), err)
	}
	if parsed != a {
		t.Fatalf("round trip: %+v vs %+v", parsed, a)
	}
	if !strings.HasPrefix(a.String(), "trace=") || !strings.Contains(a.String(), ";job=job-a") {
		t.Fatalf("header format: %q", a.String())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, v := range []string{"", "trace", "trace=xyz;job=a", "trace=123;job=a"} {
		if _, err := Parse(v); err == nil {
			t.Fatalf("Parse(%q) accepted", v)
		}
	}
	// Unknown keys are ignored (forward compatibility).
	c, err := Parse("trace=00000000000000aa;job=j;future=1")
	if err != nil || c.TraceID != 0xaa || c.Job != "j" {
		t.Fatalf("forward-compat parse: %+v, %v", c, err)
	}
}

// Span ids separate stages and occurrences of one trace.
func TestSpanIDs(t *testing.T) {
	tid := ID("job-a")
	seen := map[uint64]string{}
	for _, stage := range []string{StageJob, StageQueue, StageDispatch, StageExec} {
		for occ := 0; occ < 3; occ++ {
			id := SpanID(tid, stage, occ)
			if prev, dup := seen[id]; dup {
				t.Fatalf("span id collision: %s/%d vs %s", stage, occ, prev)
			}
			seen[id] = stage
			if id != SpanID(tid, stage, occ) {
				t.Fatalf("span id not deterministic: %s/%d", stage, occ)
			}
		}
	}
}

// Merge is byte-deterministic and produces a well-formed nested document.
func TestMergeDeterministicAndNested(t *testing.T) {
	ctx := New("merge-job")
	spans := []Span{
		{Stage: StageAdmission, Start: 0, Dur: 0.001, Annot: "normal"},
		{Stage: StageQueue, Start: 0.001, Dur: 0.010, Annot: "normal"},
		{Stage: StageDispatch, Start: 0.011, Dur: 0.002, Annot: "retry: connection refused"},
		{Stage: StageBackoff, Start: 0.013, Dur: 0.020, Annot: "attempt 1"},
		{Stage: StageDispatch, Occurrence: 1, Start: 0.033, Dur: 0.002, Annot: "accepted:w1"},
		{Stage: StageExec, Start: 0.035, Dur: 0.050, Annot: "worker:w1"},
		{Stage: StageJob, Start: 0, Dur: 0.090, Annot: "done"},
	}
	workerTrace := []byte(`{"traceEvents":[{"name":"step","cat":"sim","ph":"X","ts":1,"dur":2,"pid":7,"tid":0}],"displayTimeUnit":"ns"}`)

	var a, b bytes.Buffer
	if err := Merge(&a, ctx, spans, "w1", workerTrace); err != nil {
		t.Fatal(err)
	}
	if err := Merge(&b, ctx, spans, "w1", workerTrace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merge not byte-deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !Valid(a.Bytes()) {
		t.Fatalf("merged doc fails Valid:\n%s", a.String())
	}
	out := a.String()
	for _, want := range []string{
		`"name": "wavepimctl"`,
		`"name": "wavepimd:w1"`,
		`"name": "job"`,
		`"name": "dispatch#1"`,
		`"annot": "accepted:w1"`,
		`"parent"`,
		`"name": "step"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged doc missing %s:\n%s", want, out)
		}
	}
	// The worker event is re-homed to pid 2, never its original pid.
	if strings.Contains(out, `"pid": 7`) {
		t.Fatalf("worker event kept its original pid:\n%s", out)
	}
	if Digest(a.Bytes()) != Digest(b.Bytes()) {
		t.Fatal("digest not deterministic")
	}
	if Digest(a.Bytes()) == Digest(a.Bytes()[1:]) {
		t.Fatal("digest insensitive to content")
	}
}

func TestMergeRejectsMalformedWorkerTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Merge(&buf, New("x"), nil, "w1", []byte("{nope")); err == nil {
		t.Fatal("malformed worker trace accepted")
	}
	if Valid([]byte("{nope")) || Valid([]byte(`{"traceEvents":[]}`)) {
		t.Fatal("Valid accepted an invalid document")
	}
}
