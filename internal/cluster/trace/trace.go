// Package trace is the cluster's deterministic distributed-tracing
// substrate. A trace follows one job across the coordinator/worker
// boundary: the trace id is a pure hash of the normalized job id, span
// ids are pure hashes of (trace id, stage, occurrence), and timestamps
// come from the injectable clocks both daemons already run on — so two
// fixed-clock cluster stacks executing the same seeded schedule produce
// byte-identical merged traces, and a span id seen in a log line can be
// recomputed offline from the job id alone.
//
// The coordinator propagates the context to workers in the
// X-Wavepim-Trace header, records one Span per job lifecycle stage
// (admission, per-priority queue wait, each dispatch attempt with its
// retry/backoff/breaker annotation, worker execution, report fetch),
// then merges its own timeline with the worker's Chrome trace into one
// cluster-level Chrome trace served at /v1/jobs/{id}/trace.
package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Header is the HTTP header carrying the trace context coordinator →
// worker.
const Header = "X-Wavepim-Trace"

// Stage names of the coordinator-side spans. The root "job" span covers
// submission to terminal; every other stage nests inside it.
const (
	StageJob       = "job"       // root: submission → terminal state
	StageAdmission = "admission" // submit parsing, quota check, journal fsync
	StageQueue     = "queue"     // waiting in the priority queues (one per wait)
	StageDispatch  = "dispatch"  // one POST /v1/runs attempt
	StageStall     = "stall"     // held without an HTTP attempt (breaker-open, no-owner)
	StageBackoff   = "backoff"   // retry backoff sleep after a failed attempt
	StageExec      = "exec"      // accepted by the worker → terminal run status
	StageReport    = "report"    // fetching the worker's report trace
)

// Context is the propagated trace identity.
type Context struct {
	TraceID uint64 // derived from the normalized job id
	Job     string // the normalized job id
}

// New derives the context for a normalized job id.
func New(jobID string) Context { return Context{TraceID: ID(jobID), Job: jobID} }

// ID maps a normalized job id to its 64-bit trace id: FNV-1a over a
// domain-separated copy of the id, then the splitmix64 finalizer — the
// same construction the ring key uses, under a different domain prefix
// so trace ids and ring positions never collide by construction.
func ID(jobID string) uint64 {
	return mix64(fnv1a("trace:", jobID))
}

// SpanID derives the deterministic span id of one stage occurrence:
// a splitmix64 hash of (trace id, stage, occurrence). The n-th "queue"
// wait of a job therefore has the same span id in every run.
func SpanID(traceID uint64, stage string, occurrence int) uint64 {
	return mix64(traceID ^ fnv1a("span:", stage) ^ mix64(uint64(occurrence)+1))
}

// String renders the header value: "trace=<16 hex>;job=<id>".
func (c Context) String() string {
	return fmt.Sprintf("trace=%016x;job=%s", c.TraceID, c.Job)
}

// Hex returns the trace id as the 16-hex-digit string used in views and
// event-log fields.
func (c Context) Hex() string { return fmt.Sprintf("%016x", c.TraceID) }

// Parse decodes a header value produced by String.
func Parse(v string) (Context, error) {
	var c Context
	for _, part := range strings.Split(v, ";") {
		k, val, ok := strings.Cut(part, "=")
		if !ok {
			return Context{}, fmt.Errorf("trace: malformed header part %q", part)
		}
		switch k {
		case "trace":
			if _, err := fmt.Sscanf(val, "%016x", &c.TraceID); err != nil || len(val) != 16 {
				return Context{}, fmt.Errorf("trace: bad trace id %q", val)
			}
		case "job":
			c.Job = val
		default:
			// Unknown keys are ignored: the header is append-only.
		}
	}
	if c.TraceID == 0 && c.Job == "" {
		return Context{}, fmt.Errorf("trace: empty header")
	}
	return c, nil
}

// Span is one completed coordinator-side stage of a job's timeline.
// Start and Dur are seconds relative to the trace epoch (the job's
// submission instant), so a frozen coordinator clock yields all-zero
// times and byte-stable output.
type Span struct {
	Stage      string  // one of the Stage* constants
	Occurrence int     // 0-based occurrence index of this stage
	Start      float64 // seconds since the trace epoch
	Dur        float64 // seconds
	Annot      string  // sanitized annotation: priority, retry cause, breaker state, worker id
}

// chromeEvent is one trace_event entry. Field order is fixed by the
// struct so the merged document is byte-deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope Chrome's trace viewer and
// Perfetto accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track lanes (Chrome tids) of the coordinator process in the merged
// trace: the root job span gets its own lane, queueing/stalls another,
// dispatch attempts and backoffs a third, execution and report a fourth.
func trackOf(stage string) int {
	switch stage {
	case StageJob:
		return 0
	case StageAdmission, StageQueue, StageStall:
		return 1
	case StageDispatch, StageBackoff:
		return 2
	}
	return 3 // exec, report
}

// Merge writes the cluster-level Chrome trace: the coordinator's stage
// spans as process 1 ("wavepimctl"), the worker's own Chrome trace
// events (as exported by GET /v1/runs/{id}/trace) re-homed to process 2
// ("wavepimd:<worker id>"). workerTrace may be nil (the job never
// executed — rejected, cached, or budget-exhausted); workerID labels
// process 2 and may be "" when workerTrace is nil.
//
// The coordinator spans are emitted root-first, then in record order,
// which for a live coordinator is chronological — consumers (and the CI
// guard) can therefore check that child spans nest inside the root and
// that start times are monotone. Worker events keep their original
// order and timebase (simulated seconds, also monotone).
func Merge(w io.Writer, ctx Context, spans []Span, workerID string, workerTrace []byte) error {
	doc := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{{
		Name: "process_name", Cat: "__metadata", Ph: "M", PID: 1,
		Args: map[string]any{"name": "wavepimctl"},
	}}}

	var worker []chromeEvent
	if len(workerTrace) > 0 {
		var wt chromeTrace
		if err := json.Unmarshal(workerTrace, &wt); err != nil {
			return fmt.Errorf("trace: worker trace for %s: %w", ctx.Job, err)
		}
		worker = wt.TraceEvents
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Cat: "__metadata", Ph: "M", PID: 2,
			Args: map[string]any{"name": "wavepimd:" + workerID},
		})
	}

	// Root first, then children in record order.
	ordered := make([]Span, 0, len(spans))
	for _, s := range spans {
		if s.Stage == StageJob {
			ordered = append(ordered, s)
		}
	}
	for _, s := range spans {
		if s.Stage != StageJob {
			ordered = append(ordered, s)
		}
	}
	for _, s := range ordered {
		args := map[string]any{
			"trace": ctx.Hex(),
			"span":  fmt.Sprintf("%016x", SpanID(ctx.TraceID, s.Stage, s.Occurrence)),
		}
		if s.Stage != StageJob {
			args["parent"] = fmt.Sprintf("%016x", SpanID(ctx.TraceID, StageJob, 0))
		}
		if s.Annot != "" {
			args["annot"] = s.Annot
		}
		name := s.Stage
		if s.Occurrence > 0 {
			name = fmt.Sprintf("%s#%d", s.Stage, s.Occurrence)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Cat: "cluster", Ph: "X",
			TS: s.Start * 1e6, Dur: s.Dur * 1e6,
			PID: 1, TID: trackOf(s.Stage), Args: args,
		})
	}
	for _, ev := range worker {
		ev.PID = 2
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Digest content-addresses a merged trace (FNV-1a then splitmix64) —
// journaled alongside the bytes so a replayed timeline can be verified
// before it is served.
func Digest(traceBytes []byte) uint64 {
	const prime = 1099511628211
	h := fnv1a("tracedoc:", "")
	for _, c := range traceBytes {
		h ^= uint64(c)
		h *= prime
	}
	return mix64(h)
}

// Valid reports whether b parses as a Chrome trace document with at
// least one event — the shape check the coordinator applies to a
// fetched worker trace before merging it.
func Valid(b []byte) bool {
	var wt chromeTrace
	if err := json.Unmarshal(bytes.TrimSpace(b), &wt); err != nil {
		return false
	}
	return len(wt.TraceEvents) > 0
}

// fnv1a hashes a domain prefix plus a payload string.
func fnv1a(domain, s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= prime64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer (the same construction the ring key
// and the fault injector use).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
