package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestJournalRoundTrip: appended records come back in order on reopen.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	want := []JournalRecord{
		{T: JournalSubmit, ID: "a", Spec: json.RawMessage(`{"id":"a","equation":"acoustic"}`)},
		{T: JournalDispatch, ID: "a", Worker: "w1"},
		{T: JournalTerminal, ID: "a", Status: "done", Result: json.RawMessage(`{"status":"done"}`)},
		{T: JournalSubmit, ID: "b", Spec: json.RawMessage(`{"id":"b","equation":"acoustic"}`)},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if n := j.Records(); n != int64(len(want)) {
		t.Fatalf("Records() = %d, want %d", n, len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.T != want[i].T || rec.ID != want[i].ID || rec.Worker != want[i].Worker ||
			rec.Status != want[i].Status || string(rec.Spec) != string(want[i].Spec) ||
			string(rec.Result) != string(want[i].Result) {
			t.Fatalf("record %d: %+v, want %+v", i, rec, want[i])
		}
	}
	if n := j2.Records(); n != int64(len(want)) {
		t.Fatalf("reopened Records() = %d", n)
	}
}

// TestJournalTornTail: a partial final line — the signature of a crash
// mid-write — is dropped; everything before it survives, and the next
// append lands on a fresh line.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	full := `{"t":"submit","id":"a","spec":{"id":"a"}}` + "\n"
	torn := `{"t":"submit","id":"b","sp`
	if err := os.WriteFile(path, []byte(full+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("replayed %+v", recs)
	}
	if err := j.Append(JournalRecord{T: JournalSubmit, ID: "c"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// The torn fragment must be truncated away, NOT appended onto: were
	// the fragment still there, record "c" would share its line and be
	// silently dropped by the next replay.
	b, _ := os.ReadFile(path)
	if strings.Contains(string(b), `"id":"b"`) {
		t.Fatalf("torn fragment survived: %s", b)
	}
	_, recs2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after torn-tail append: %v", err)
	}
	if len(recs2) != 2 || recs2[0].ID != "a" || recs2[1].ID != "c" {
		t.Fatalf("reopen replayed %+v", recs2)
	}
}

// TestJournalMidFileCorruption: garbage in the middle of the file is not
// a torn tail — replay must refuse rather than silently lose jobs.
func TestJournalMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"t":"submit","id":"a"}` + "\n" + `GARBAGE` + "\n" + `{"t":"submit","id":"b"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// TestJournalConcurrentAppends: concurrent appends all become durable
// and parseable (the group-commit path under contention).
func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := JournalRecord{T: JournalSubmit, ID: "job"}
				if err := j.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*each)
	}
}

// TestJournalAppendAfterClose fails loudly.
func TestJournalAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(JournalRecord{T: JournalSubmit, ID: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}
