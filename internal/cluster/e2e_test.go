package cluster_test

// End-to-end cluster tests: a real Coordinator and real serve.Server
// workers wired through httptest listeners — the same HTTP surface
// production uses, minus the sockets' port numbers. The external test
// package lets these tests import internal/serve without giving the
// cluster package itself a serve dependency.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wavepim/internal/cluster"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/serve"
)

// testCluster is a coordinator plus its in-process workers.
type testCluster struct {
	coord   *cluster.Coordinator
	coordTS *httptest.Server
	workers map[string]*testWorker
}

type testWorker struct {
	srv *serve.Server
	ts  *httptest.Server
	hb  *cluster.Heartbeater
}

// kill simulates a worker crash: the heartbeat dies with the process,
// then the listener drops.
func (w *testWorker) kill() {
	w.hb.Stop()
	w.ts.Close()
}

type clusterOptions struct {
	workers      int              // workers per daemon
	queue        int              // daemon queue capacity
	dispatchers  int              // coordinator dispatch loops
	now          func() time.Time // injectable clock for daemons
	coordNow     func() time.Time // injectable clock for the coordinator
	quota        cluster.QuotaConfig
	pollInterval time.Duration
	ttl          time.Duration // worker heartbeat TTL (0 = production default)

	// chaos / robustness knobs (zero values keep the legacy behavior)
	client     *http.Client // coordinator control-plane client (chaos transport)
	seed       uint64
	maxRetries int
	backoffCap time.Duration
	breaker    cluster.BreakerConfig
	journal    *cluster.Journal
	replay     []cluster.JournalRecord

	// observability taps (nil keeps the silent path)
	log     *eventlog.Logger
	flightW io.Writer
}

// startCluster boots a coordinator and n named workers (w1..wn), each
// registered through the real POST /register path.
func startCluster(t *testing.T, n int, o clusterOptions) *testCluster {
	t.Helper()
	if o.workers <= 0 {
		o.workers = 1
	}
	if o.queue <= 0 {
		o.queue = 64
	}
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Now:          o.coordNow,
		Dispatchers:  o.dispatchers,
		Quota:        o.quota,
		PollInterval: o.pollInterval,
		TTL:          o.ttl,
		RetryDelay:   10 * time.Millisecond,
		Client:       o.client,
		Seed:         o.seed,
		MaxRetries:   o.maxRetries,
		BackoffCap:   o.backoffCap,
		Breaker:      o.breaker,
		Journal:      o.journal,
		Replay:       o.replay,
		Log:          o.log,
		FlightW:      o.flightW,
	})
	coordTS := httptest.NewServer(coord.Handler())
	t.Cleanup(coordTS.Close)
	t.Cleanup(coord.Close)

	tc := &testCluster{coord: coord, coordTS: coordTS, workers: map[string]*testWorker{}}
	for i := 1; i <= n; i++ {
		tc.addWorker(t, fmt.Sprintf("w%d", i), o)
	}
	return tc
}

func (tc *testCluster) addWorker(t *testing.T, name string, o clusterOptions) *testWorker {
	t.Helper()
	srv := serve.NewServer(serve.Options{
		Workers: o.workers, QueueCap: o.queue, TraceCap: 128,
		Level: eventlog.Info, Now: o.now,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Drain)
	// The real heartbeat loop, fast: it is the mechanism that re-admits a
	// worker a dispatcher wrongly marked dead on a transient transport
	// error, so the harness must run it like production does.
	hb := &cluster.Heartbeater{
		Coordinator: tc.coordTS.URL, ID: name, URL: ts.URL,
		Interval: 100 * time.Millisecond,
	}
	if err := hb.Start(); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	t.Cleanup(hb.Stop)
	w := &testWorker{srv: srv, ts: ts, hb: hb}
	tc.workers[name] = w
	return w
}

func (tc *testCluster) submit(t *testing.T, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(tc.coordTS.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func (tc *testCluster) get(t *testing.T, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(tc.coordTS.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// waitJob polls the coordinator until the job is terminal and returns
// the terminal body (the worker's report for done/failed jobs).
func (tc *testCluster) waitJob(t *testing.T, id string, timeout time.Duration) (status, body string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		code, b := tc.get(t, "/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d %s", id, code, b)
		}
		var v struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal([]byte(b), &v); err != nil {
			t.Fatalf("job view not JSON: %v: %s", err, b)
		}
		if v.Status == "done" || v.Status == "failed" {
			return v.Status, b
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return "", ""
}

// shardedIDs picks job ids whose ring owners cover every worker, using
// the same ring construction the registry uses — so the test provably
// exercises every shard rather than hoping a random spread does.
func shardedIDs(workers []string, perWorker int) []string {
	ring := cluster.NewRing(0)
	for _, w := range workers {
		ring.Add(w)
	}
	got := map[string]int{}
	var ids []string
	for i := 0; len(ids) < perWorker*len(workers); i++ {
		id := fmt.Sprintf("shard-job-%d", i)
		owner, _ := ring.OwnerOf(id)
		if got[owner] < perWorker {
			got[owner]++
			ids = append(ids, id)
		}
	}
	return ids
}

// TestClusterEndToEnd: an acoustic job lands on every shard of a
// 3-worker cluster, every job completes, the coordinator's job listing
// holds them in submission order, and each worker really executed its
// share (verified against the workers' own run tables).
func TestClusterEndToEnd(t *testing.T) {
	tc := startCluster(t, 3, clusterOptions{workers: 2, dispatchers: 8})
	ids := shardedIDs([]string{"w1", "w2", "w3"}, 2)

	// Distinct step counts keep the specs content-distinct: otherwise the
	// coordinator's result cache would serve later jobs without ever
	// touching their shard's worker.
	for i, id := range ids {
		code, body := tc.submit(t, fmt.Sprintf(`{"equation":"acoustic","steps":%d,"id":%q}`, 2+i, id))
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", id, code, body)
		}
	}
	for _, id := range ids {
		status, body := tc.waitJob(t, id, 30*time.Second)
		if status != "done" {
			t.Fatalf("job %s: %s %s", id, status, body)
		}
		// Terminal jobs return the worker's full run view with the report.
		if !strings.Contains(body, `"fault_report"`) {
			t.Fatalf("terminal job %s body lacks report: %s", id, body)
		}
	}

	// Every worker executed at least one run.
	for name, w := range tc.workers {
		resp, err := http.Get(w.ts.URL + "/runs")
		if err != nil {
			t.Fatal(err)
		}
		var runs []serve.RunView
		if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(runs) == 0 {
			t.Fatalf("worker %s executed no runs", name)
		}
		for _, r := range runs {
			if r.Status != "done" {
				t.Fatalf("worker %s run %s: %s", name, r.ID, r.Status)
			}
		}
	}

	// The listing is in submission order.
	_, body := tc.get(t, "/jobs")
	var views []cluster.JobView
	if err := json.Unmarshal([]byte(body), &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != len(ids) {
		t.Fatalf("listing has %d jobs, want %d", len(views), len(ids))
	}
	for i, v := range views {
		if v.ID != ids[i] {
			t.Fatalf("listing order: %v", views)
		}
	}
}

// TestClusterIdempotentResubmit: resubmitting a finished job's id
// returns the cached report byte-for-byte — twice — and never reruns
// the job. A content-identical spec under a new id is served from the
// content-addressed cache without touching a worker.
func TestClusterIdempotentResubmit(t *testing.T) {
	tc := startCluster(t, 3, clusterOptions{workers: 1, dispatchers: 4})
	spec := `{"equation":"acoustic","steps":3,"id":"idem-1","faults":"seed=4,flip=1e-5,stuck=1e-6"}`

	code, body := tc.submit(t, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	status, report := tc.waitJob(t, "idem-1", 30*time.Second)
	if status != "done" {
		t.Fatalf("job: %s %s", status, report)
	}

	runsBefore := tc.totalRuns(t)
	code1, body1 := tc.submit(t, spec)
	code2, body2 := tc.submit(t, spec)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("resubmit codes: %d %d", code1, code2)
	}
	if body1 != body2 {
		t.Fatalf("resubmission not byte-identical:\n%s\nvs\n%s", body1, body2)
	}
	if body1 != report {
		t.Fatalf("resubmission diverges from the job's report:\n%s\nvs\n%s", body1, report)
	}

	// Same spec, different id: the content cache answers, no dispatch.
	code3, body3 := tc.submit(t, strings.Replace(spec, "idem-1", "idem-2", 1))
	if code3 != http.StatusOK {
		t.Fatalf("content-cache submit: %d %s", code3, body3)
	}
	if body3 != report {
		t.Fatalf("content-cache report diverges:\n%s\nvs\n%s", body3, report)
	}
	_, view := tc.get(t, "/jobs")
	if !strings.Contains(view, `"cached":true`) {
		t.Fatalf("listing shows no cached job: %s", view)
	}
	if after := tc.totalRuns(t); after != runsBefore {
		t.Fatalf("resubmissions touched workers: %d runs -> %d", runsBefore, after)
	}
}

// totalRuns sums the runs across every live worker.
func (tc *testCluster) totalRuns(t *testing.T) int {
	t.Helper()
	total := 0
	for _, w := range tc.workers {
		resp, err := http.Get(w.ts.URL + "/runs")
		if err != nil {
			continue // killed workers don't count
		}
		var runs []serve.RunView
		json.NewDecoder(resp.Body).Decode(&runs)
		resp.Body.Close()
		total += len(runs)
	}
	return total
}

// TestClusterWorkerDeathRebalances: killing a worker mid-flight loses no
// accepted job — its keys rebalance to the survivors and every job still
// reaches "done".
func TestClusterWorkerDeathRebalances(t *testing.T) {
	// Short TTL (still 5× the 100ms heartbeat) so membership eviction is
	// observable without the 10s production default: the victim leaves
	// either via MarkDead (a dispatcher touched its corpse) or via TTL
	// expiry (all its jobs happened to finish before the kill landed).
	tc := startCluster(t, 3, clusterOptions{
		workers: 1, queue: 64, dispatchers: 8, ttl: 500 * time.Millisecond,
	})

	// Enough jobs that the victim certainly owns some, slow enough that
	// they cannot all finish before the kill. Per-job CFL values keep the
	// specs content-distinct so the result cache can't absorb any of them.
	var ids []string
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("kill-job-%d", i)
		ids = append(ids, id)
		code, body := tc.submit(t, fmt.Sprintf(
			`{"equation":"acoustic","steps":25,"cfl":%g,"id":%q}`, 0.25+0.001*float64(i), id))
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", id, code, body)
		}
	}

	// Kill w2 the moment it has work in flight.
	victim := tc.workers["w2"]
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(victim.ts.URL + "/runs")
		if err != nil {
			t.Fatal(err)
		}
		var runs []serve.RunView
		json.NewDecoder(resp.Body).Decode(&runs)
		resp.Body.Close()
		if len(runs) > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.kill()

	for _, id := range ids {
		status, body := tc.waitJob(t, id, 60*time.Second)
		if status != "done" {
			t.Fatalf("job %s dropped by the kill: %s %s", id, status, body)
		}
	}

	// The victim leaves the membership — by MarkDead if a dispatcher hit
	// its closed listener, otherwise by TTL expiry once its heartbeats
	// stop. Either way it must be gone well within a few TTLs.
	evictBy := time.Now().Add(5 * time.Second)
	for {
		_, body := tc.get(t, "/workers")
		if !strings.Contains(body, `"id":"w2"`) {
			break
		}
		if time.Now().After(evictBy) {
			t.Fatalf("dead worker still a member: %s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClusterAggregatedMetrics: the coordinator's /metrics merges its
// own families with every worker's, relabeled per worker, and two
// scrapes of a quiet cluster are byte-identical.
func TestClusterAggregatedMetrics(t *testing.T) {
	tc := startCluster(t, 3, clusterOptions{workers: 1, dispatchers: 4})
	code, body := tc.submit(t, `{"equation":"acoustic","steps":2,"id":"metrics-1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	tc.waitJob(t, "metrics-1", 30*time.Second)

	code, m1 := tc.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	_, m2 := tc.get(t, "/metrics")
	if m1 != m2 {
		t.Fatalf("quiet-cluster scrapes differ:\n%s\nvs\n%s", m1, m2)
	}
	for _, want := range []string{
		`wavepimctl_jobs_total{status="done"} 1`,
		"wavepimctl_workers 3",
		`worker="w1"`,
		`worker="w2"`,
		`worker="w3"`,
		"# TYPE sim_fault_rung_events_total counter",
		// robustness families: retry backoff histogram, journal gauge, and
		// the breaker state of the worker that took the job
		"# TYPE wavepimctl_retry_backoff_seconds histogram",
		"wavepimctl_journal_records 0",
		"wavepimctl_jobs_evicted_total 0",
		"# TYPE wavepimctl_breaker_state gauge",
		// the latency decomposition: four stage histograms labeled
		// (priority, outcome), pre-registered so a quiet scrape already
		// exposes every child in sorted order, plus the per-class queue
		// gauges
		"# TYPE wavepimctl_job_queue_seconds histogram",
		"# TYPE wavepimctl_dispatch_seconds histogram",
		"# TYPE wavepimctl_exec_seconds histogram",
		"# TYPE wavepimctl_e2e_seconds histogram",
		`wavepimctl_e2e_seconds_count{outcome="done",priority="normal"} 1`,
		`wavepimctl_queue_depth{priority="high"} 0`,
		`# TYPE wavepimctl_queue_age_seconds gauge`,
	} {
		if !strings.Contains(m1, want) {
			t.Fatalf("aggregated metrics missing %q:\n%s", want, m1)
		}
	}
	// Exactly one TYPE header per family across the whole merge.
	seen := map[string]bool{}
	for _, line := range strings.Split(m1, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if seen[name] {
				t.Fatalf("duplicate TYPE %s in merged exposition", name)
			}
			seen[name] = true
		}
	}
}

// fixedClock returns a frozen injectable clock.
func fixedClock() func() time.Time {
	at := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time { return at }
}

// goldenStream boots a fresh single-worker cluster with a frozen clock,
// runs the fixed spec, and returns the job's full SSE stream as proxied
// by the coordinator.
func goldenStream(t *testing.T) string {
	t.Helper()
	tc := startCluster(t, 1, clusterOptions{workers: 1, dispatchers: 2, now: fixedClock()})
	code, body := tc.submit(t, `{"equation":"acoustic","steps":4,"id":"golden-1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if status, b := tc.waitJob(t, "golden-1", 30*time.Second); status != "done" {
		t.Fatalf("golden job: %s %s", status, b)
	}
	resp, err := http.Get(tc.coordTS.URL + "/jobs/golden-1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterGoldenSSEStream: two completely independent replays of the
// same fixed-seed, fixed-clock run — fresh coordinator, fresh worker,
// fresh everything — produce byte-identical SSE streams through the
// coordinator proxy. This pins the whole pipeline: deterministic engine
// progress events, injectable event-log clock, tap replay, SSE framing,
// and the proxy's pass-through.
func TestClusterGoldenSSEStream(t *testing.T) {
	a := goldenStream(t)
	b := goldenStream(t)
	if a != b {
		t.Fatalf("golden SSE replays diverge:\n%q\nvs\n%q", a, b)
	}
	for _, want := range []string{
		"id: 0\n",
		"event: run.start\n",
		"event: run.progress\n",
		"event: run.end\n",
		`"step":4`,
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("golden stream missing %q:\n%s", want, a)
		}
	}
	// The frozen clock really governs the stream's timestamps.
	if !strings.Contains(a, "2026-01-02T03:04:05") {
		t.Fatalf("stream timestamps ignore the injected clock:\n%s", a)
	}
}

// goldenTrace boots a fresh single-worker cluster with BOTH clocks
// frozen — the coordinator's span timeline and the worker's tracer read
// the same fixed instant — runs the fixed spec, and returns the merged
// cluster-level Chrome trace plus the terminal job table.
func goldenTrace(t *testing.T) (doc, table string) {
	t.Helper()
	tc := startCluster(t, 1, clusterOptions{
		workers: 1, dispatchers: 2, now: fixedClock(), coordNow: fixedClock(),
	})
	code, body := tc.submit(t, `{"equation":"acoustic","steps":4,"id":"golden-trace-1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if status, b := tc.waitJob(t, "golden-trace-1", 30*time.Second); status != "done" {
		t.Fatalf("golden job: %s %s", status, b)
	}
	code, doc = tc.get(t, "/v1/jobs/golden-trace-1/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: %d %s", code, doc)
	}
	_, table = tc.get(t, "/v1/jobs")
	return doc, table
}

// TestClusterGoldenMergedTrace: two completely independent fixed-clock
// cluster stacks — fresh coordinator, fresh worker, fresh everything —
// serve byte-identical merged traces for the same job. This pins the
// whole tracing pipeline: hash-derived span ids, the coordinator's span
// timeline, header propagation, the worker's own trace, and the merge's
// canonical encoding.
func TestClusterGoldenMergedTrace(t *testing.T) {
	a, view := goldenTrace(t)
	b, _ := goldenTrace(t)
	if a != b {
		t.Fatalf("golden merged traces diverge:\n%s\nvs\n%s", a, b)
	}
	// One document, both processes, every coordinator stage.
	for _, want := range []string{
		`"name": "wavepimctl"`,
		`"name": "wavepimd:w1"`,
		`"name": "job"`,
		`"name": "admission"`,
		`"name": "queue"`,
		`"name": "dispatch"`,
		`"name": "exec"`,
		`"name": "report"`,
		`"annot": "done"`,
		`"annot": "worker:w1"`,
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("merged trace missing %q:\n%s", want, a)
		}
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(a), &doc); err != nil {
		t.Fatalf("merged trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 8 {
		t.Fatalf("merged trace has only %d events", len(doc.TraceEvents))
	}
	// The terminal job view exposes the same decomposition the trace
	// records (zero-duration under the frozen clock, but present).
	if !strings.Contains(view, `"stages"`) || !strings.Contains(view, `"e2e_sec"`) {
		t.Fatalf("job view lacks latency decomposition: %s", view)
	}
}

// TestClusterQuotaRejection: a tenant over its queue quota gets 429
// while other tenants keep flowing.
func TestClusterQuotaRejection(t *testing.T) {
	tc := startCluster(t, 1, clusterOptions{
		workers: 1, dispatchers: 1,
		quota: cluster.QuotaConfig{MaxQueued: 2, MaxActive: 1},
	})
	// Slow, content-distinct jobs so the queue actually fills (identical
	// specs would be absorbed by the result cache once one finishes).
	var saw429 bool
	for i := 0; i < 8; i++ {
		code, body := tc.submit(t,
			fmt.Sprintf(`{"equation":"acoustic","steps":40,"cfl":%g,"id":"quota-%d","tenant":"hog"}`,
				0.25+0.001*float64(i), i))
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
			if !strings.Contains(body, "quota") {
				t.Fatalf("429 body: %s", body)
			}
		default:
			t.Fatalf("submit %d: %d %s", i, code, body)
		}
	}
	if !saw429 {
		t.Fatal("hog tenant never hit its quota")
	}
	// Another tenant still gets in.
	code, body := tc.submit(t, `{"equation":"acoustic","steps":2,"id":"polite-1","tenant":"polite"}`)
	if code != http.StatusAccepted {
		t.Fatalf("polite tenant rejected: %d %s", code, body)
	}
}
