package cluster

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Aggregated Prometheus exposition. The coordinator scrapes every
// worker's /metrics (the byte-deterministic obs.WriteProm format: TYPE
// headers plus sample lines, no HELP), relabels every sample with
// worker="<id>", and merges the families into one exposition that is
// itself byte-deterministic: families sorted by name, one TYPE header
// per family, samples sorted lexicographically within a family, label
// keys sorted within a sample. Scraping N workers twice in a row yields
// identical bytes for identical worker states — the same property the
// single-daemon exposition has, preserved across the cluster seam.

// PromSource is one exposition to merge. Label is the worker id added to
// every sample ("" adds nothing — used for the coordinator's own
// registry).
type PromSource struct {
	Label string
	Text  string
}

// promMergeFamily accumulates one family across sources.
type promMergeFamily struct {
	kind    string
	samples []string // fully relabeled, unsorted until output
}

// MergeProm merges expositions into w. Families present in several
// sources must agree on their type. Malformed input is an error naming
// the source; nothing is written until every source parses.
func MergeProm(w io.Writer, sources []PromSource) error {
	fams := map[string]*promMergeFamily{}
	for _, src := range sources {
		if err := mergeOne(fams, src); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		sort.Strings(f.samples)
		fmt.Fprintf(bw, "# TYPE %s %s\n", n, f.kind)
		for _, s := range f.samples {
			bw.WriteString(s)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// mergeOne parses one source and folds its samples into fams.
func mergeOne(fams map[string]*promMergeFamily, src PromSource) error {
	// Family names seen in this source, used to attach samples: a sample
	// belongs to family F if its name is F, or F is its name with a
	// histogram suffix (_bucket/_sum/_count) stripped.
	local := map[string]bool{}
	for lineNo, line := range strings.Split(src.Text, "\n") {
		fail := func(msg string) error {
			return fmt.Errorf("cluster: exposition from %q line %d: %s: %q",
				src.Label, lineNo+1, msg, line)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fail("malformed TYPE header")
			}
			name, kind := parts[2], parts[3]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				return fail("unknown family type")
			}
			if f, ok := fams[name]; ok {
				if f.kind != kind {
					return fmt.Errorf("cluster: exposition from %q: family %s is %s here but %s elsewhere",
						src.Label, name, kind, f.kind)
				}
			} else {
				fams[name] = &promMergeFamily{kind: kind}
			}
			local[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comments / HELP pass-through sources may carry
		}
		name, labels, value, err := splitPromSample(line)
		if err != nil {
			return fail(err.Error())
		}
		fam := name
		if !local[fam] {
			fam = ""
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suffix); ok && local[base] {
					fam = base
					break
				}
			}
			if fam == "" {
				return fail("sample has no TYPE header")
			}
		}
		if src.Label != "" {
			labels = append(labels, promLabel{"worker", src.Label})
		}
		sort.SliceStable(labels, func(a, b int) bool { return labels[a].key < labels[b].key })
		fams[fam].samples = append(fams[fam].samples, renderPromSample(name, labels, value))
	}
	return nil
}

type promLabel struct{ key, value string }

// splitPromSample parses `name{k="v",...} value` (label block optional).
// Label values may contain escaped quotes and backslashes per the text
// format; everything after the closing brace (or the name) up to the
// final space is structural.
func splitPromSample(line string) (name string, labels []promLabel, value string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace == -1 {
		sp := strings.IndexByte(line, ' ')
		if sp <= 0 || sp == len(line)-1 {
			return "", nil, "", fmt.Errorf("no value")
		}
		return line[:sp], nil, line[sp+1:], nil
	}
	name = line[:brace]
	i := brace + 1
	for {
		if i >= len(line) {
			return "", nil, "", fmt.Errorf("unterminated label block")
		}
		if line[i] == '}' {
			i++
			break
		}
		eq := strings.IndexByte(line[i:], '=')
		if eq == -1 {
			return "", nil, "", fmt.Errorf("label without '='")
		}
		key := line[i : i+eq]
		i += eq + 1
		if i >= len(line) || line[i] != '"' {
			return "", nil, "", fmt.Errorf("unquoted label value")
		}
		i++
		start := i
		for i < len(line) && line[i] != '"' {
			if line[i] == '\\' {
				i++ // skip the escaped byte
			}
			i++
		}
		if i >= len(line) {
			return "", nil, "", fmt.Errorf("unterminated label value")
		}
		labels = append(labels, promLabel{key, line[start:i]})
		i++ // closing quote
		if i < len(line) && line[i] == ',' {
			i++
		}
	}
	if i >= len(line) || line[i] != ' ' || i == len(line)-1 {
		return "", nil, "", fmt.Errorf("no value after label block")
	}
	return name, labels, line[i+1:], nil
}

// renderPromSample re-renders a sample with its (sorted) labels.
func renderPromSample(name string, labels []promLabel, value string) string {
	if len(labels) == 0 {
		return name + " " + value
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.key)
		b.WriteString(`="`)
		b.WriteString(l.value)
		b.WriteByte('"')
	}
	b.WriteString("} ")
	b.WriteString(value)
	return b.String()
}
