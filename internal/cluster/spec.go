package cluster

import (
	"fmt"

	"wavepim/internal/dg/opcount"
	"wavepim/internal/wavepim"
)

// JobSpec is the wire shape of one functional simulation job. It is the
// POST /runs body a worker accepts and the POST /jobs body the
// coordinator accepts — one type travels the whole cluster (internal/
// serve aliases it), which is what lets the coordinator forward
// submissions verbatim and content-address them consistently.
type JobSpec struct {
	ID         string  `json:"id,omitempty"`       // idempotency key (optional)
	Equation   string  `json:"equation"`           // acoustic | elastic-central | elastic-riemann | maxwell
	Refine     int     `json:"refine"`             // mesh refinement level (default 1)
	Np         int     `json:"np"`                 // GLL nodes per axis (default 4)
	Steps      int     `json:"steps"`              // time steps (default 4)
	CFL        float64 `json:"cfl"`                // CFL number for dt (default 0.3)
	Workers    int     `json:"workers"`            // engine worker pool (default: per core)
	Faults     string  `json:"faults"`             // fault.ParseSpec string, e.g. "seed=4,flip=1e-5"
	Recover    string  `json:"recover"`            // fault.ParseRecoverySpec string
	DeadlineMS int     `json:"deadline_ms"`        // wall-clock run deadline (0: none)
	Topology   string  `json:"topology,omitempty"` // tile interconnect: htree (default) | bus | mesh | torus | flatfly | dragonfly
	Tenant     string  `json:"tenant,omitempty"`   // admission-control tenant ("" is the anonymous tenant)
	Priority   string  `json:"priority,omitempty"` // high | normal (default) | low
}

// EquationOf maps the wire name to the opcount constant.
func EquationOf(s string) (opcount.Equation, bool) {
	switch s {
	case "", "acoustic":
		return opcount.Acoustic, true
	case "elastic-central":
		return opcount.ElasticCentral, true
	case "elastic-riemann":
		return opcount.ElasticRiemann, true
	case "maxwell":
		return opcount.Maxwell, true
	}
	return 0, false
}

// Digest content-addresses the simulation a spec requests: two specs
// with equal digests describe the same deterministic run. The static
// problem geometry reuses the plan cache's PlanKey digest (the same
// content address the workers' compiled-plan cache keys on), and the
// dynamic fields — steps, CFL, fault and recovery specs — are folded on
// top with FNV-1a. Scheduling-only fields (ID, Tenant, Priority,
// Workers, DeadlineMS) are deliberately excluded: they change who runs
// the job and when, not what it computes, so the coordinator's result
// cache can serve a duplicate submission without touching a worker.
func (s JobSpec) Digest() uint64 {
	eq, _ := EquationOf(s.Equation)
	refine, np, steps, cfl := s.Refine, s.Np, s.Steps, s.CFL
	if refine <= 0 {
		refine = 1
	}
	if np <= 0 {
		np = 4
	}
	if steps <= 0 {
		steps = 4
	}
	if cfl <= 0 {
		cfl = 0.3
	}
	// Topology changes the simulated timing and energy of the run, so it
	// is part of the content address; the empty string and "htree"
	// normalize to one digest (they request the same run).
	topo := s.Topology
	if topo == "" {
		topo = "htree"
	}
	k := wavepim.PlanKey{
		Eq:       eq,
		Flux:     wavepim.FluxFor(eq),
		Np:       np,
		EPerAxis: 1 << refine,
		Chip:     "auto",
		Topo:     topo,
	}
	const prime = 1099511628211
	h := k.Digest()
	for _, c := range []byte(fmt.Sprintf("|steps=%d|cfl=%g|faults=%s|recover=%s",
		steps, cfl, s.Faults, s.Recover)) {
		h ^= uint64(c)
		h *= prime
	}
	return mix64(h)
}
