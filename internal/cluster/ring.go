package cluster

import (
	"sort"
	"strconv"
)

// DefaultRingReplicas is the virtual-node count per worker. 1024 points
// per worker keeps each worker's hash-space share within a few percent of
// ideal (arc-length coefficient of variation ~ 1/sqrt(replicas)), so the
// ±20% spread bound the tests enforce has an order of magnitude of
// headroom. At the 64-worker high end that is 65536 ring points — a 1 MB
// sorted slice and a 16-deep binary search per lookup.
const DefaultRingReplicas = 1024

// Ring is a consistent-hash ring: each node projects `replicas` virtual
// points onto the 64-bit hash circle, and a key is owned by the node of
// the first point at or clockwise of the key's hash. Membership changes
// remap only the arcs adjacent to the changed node's points — about 1/N
// of the keyspace for one node among N.
//
// Ring is not goroutine-safe; the Registry serializes access.
type Ring struct {
	replicas int
	nodes    map[string]struct{}
	points   []ringPoint // sorted by (hash, node) once dirty is cleared
	dirty    bool        // points appended since the last sort
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing creates an empty ring; replicas <= 0 selects
// DefaultRingReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	return &Ring{replicas: replicas, nodes: map[string]struct{}{}}
}

// pointHash places virtual point i of a node: FNV-1a over "node#i" with
// the same splitmix64 finalizer as RingKey, so node points and key
// hashes mix into one well-scrambled circle.
func pointHash(node string, i int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for j := 0; j < len(node); j++ {
		h ^= uint64(node[j])
		h *= prime64
	}
	h ^= uint64('#')
	h *= prime64
	for _, c := range []byte(strconv.Itoa(i)) {
		h ^= uint64(c)
		h *= prime64
	}
	return mix64(h)
}

// Add inserts a node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{pointHash(node, i), node})
	}
	// Sorting is deferred to the next lookup so a batch of joins costs
	// one sort instead of one per node.
	r.dirty = true
}

// settle sorts the point list if membership changed since the last
// lookup. Ties are broken by name so ownership is insertion-order
// independent.
func (r *Ring) settle() {
	if !r.dirty {
		return
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	r.dirty = false
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members sorted by name.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning a ring position, walking clockwise to
// the first virtual point at or after key (wrapping at the top).
func (r *Ring) Owner(key uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	r.settle()
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= key
	})
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// OwnerOf returns the node owning a canonical job id.
func (r *Ring) OwnerOf(id string) (string, bool) {
	return r.Owner(RingKey(id))
}
