package cluster

import (
	"testing"
	"time"
)

// tickClock is a manually advanced clock.
type tickClock struct{ at time.Time }

func (c *tickClock) now() time.Time          { return c.at }
func (c *tickClock) advance(d time.Duration) { c.at = c.at.Add(d) }
func newTickClock() *tickClock               { return &tickClock{at: time.Unix(1_700_000_000, 0)} }

// TestBreakerOpensAfterThreshold: the circuit stays closed through
// Threshold-1 consecutive failures, opens on the Threshold-th, and a
// success anywhere resets the streak.
func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newTickClock()
	b := NewBreakers(BreakerConfig{Threshold: 3, Probe: time.Second}, clk.now)

	for i := 0; i < 2; i++ {
		if open := b.Failure("w1"); open {
			t.Fatalf("opened after %d failures (threshold 3)", i+1)
		}
		if !b.Allow("w1") {
			t.Fatalf("closed circuit refused dispatch after %d failures", i+1)
		}
	}
	b.Success("w1") // resets the streak
	for i := 0; i < 2; i++ {
		b.Failure("w1")
	}
	if st := b.State("w1"); st != BreakerClosed {
		t.Fatalf("state %v after reset + 2 failures", st)
	}
	if open := b.Failure("w1"); !open {
		t.Fatal("third consecutive failure did not open the circuit")
	}
	if b.Allow("w1") {
		t.Fatal("open circuit admitted a dispatch")
	}
	if st := b.State("w1"); st != BreakerOpen {
		t.Fatalf("state %v, want open", st)
	}
}

// TestBreakerHalfOpenProbe: after the probe delay the circuit admits
// exactly one probe; the probe's outcome closes or re-opens it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newTickClock()
	b := NewBreakers(BreakerConfig{Threshold: 1, Probe: time.Second}, clk.now)

	b.Failure("w1") // threshold 1: opens immediately
	if b.Allow("w1") {
		t.Fatal("open circuit admitted before the probe delay")
	}
	clk.advance(1500 * time.Millisecond)
	if !b.Allow("w1") {
		t.Fatal("probe refused after the delay elapsed")
	}
	if st := b.State("w1"); st != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", st)
	}
	// Only one probe at a time: a second dispatcher is refused.
	if b.Allow("w1") {
		t.Fatal("second concurrent probe admitted")
	}
	// Failed probe re-opens immediately and restarts the probe timer.
	b.Failure("w1")
	if st := b.State("w1"); st != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", st)
	}
	if b.Allow("w1") {
		t.Fatal("admitted right after a failed probe")
	}
	clk.advance(1500 * time.Millisecond)
	if !b.Allow("w1") {
		t.Fatal("second probe refused")
	}
	b.Success("w1")
	if st := b.State("w1"); st != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", st)
	}
	if !b.Allow("w1") {
		t.Fatal("closed circuit refused dispatch")
	}
}

// TestBreakerForgetAndSnapshot: Forget drops a circuit (a reborn worker
// starts closed) and Snapshot lists circuits sorted by worker id.
func TestBreakerForgetAndSnapshot(t *testing.T) {
	clk := newTickClock()
	b := NewBreakers(BreakerConfig{Threshold: 1, Probe: time.Second}, clk.now)
	b.Failure("w2")
	b.Failure("w1")
	b.Success("w3")

	snap := b.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot %v", snap)
	}
	for i, want := range []string{"w1", "w2", "w3"} {
		if snap[i].Worker != want {
			t.Fatalf("snapshot order %v", snap)
		}
	}
	if snap[0].State != BreakerOpen || snap[2].State != BreakerClosed {
		t.Fatalf("snapshot states %v", snap)
	}

	b.Forget("w1")
	if st := b.State("w1"); st != BreakerClosed {
		t.Fatalf("forgotten worker state %v", st)
	}
	if !b.Allow("w1") {
		t.Fatal("forgotten worker refused")
	}
}

// TestBreakerStateStrings pins the gauge encoding and names.
func TestBreakerStateStrings(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed: "closed", BreakerHalfOpen: "half-open", BreakerOpen: "open",
	}
	if BreakerClosed != 0 || BreakerHalfOpen != 1 || BreakerOpen != 2 {
		t.Fatal("gauge encoding changed")
	}
	for st, want := range cases {
		if st.String() != want {
			t.Fatalf("%d: %q", st, st.String())
		}
	}
}
