package cluster

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for registry TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestRegistry(ttl time.Duration) (*Registry, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewRegistry(ttl, 64, clk.now), clk
}

// TestRegistryHeartbeatLifecycle: a first heartbeat registers (and joins
// the ring), repeat heartbeats refresh, and expiry drops stale workers.
func TestRegistryHeartbeatLifecycle(t *testing.T) {
	g, clk := newTestRegistry(time.Second)

	if isNew := g.Heartbeat("w1", "http://w1"); !isNew {
		t.Fatal("first heartbeat not reported as new")
	}
	if isNew := g.Heartbeat("w1", "http://w1"); isNew {
		t.Fatal("repeat heartbeat reported as new")
	}
	g.Heartbeat("w2", "http://w2")

	ws := g.Workers()
	if len(ws) != 2 || ws[0].ID != "w1" || ws[1].ID != "w2" {
		t.Fatalf("workers = %+v", ws)
	}
	if w, ok := g.OwnerOf("job-1"); !ok || (w.ID != "w1" && w.ID != "w2") {
		t.Fatalf("owner = %+v ok=%v", w, ok)
	}

	// w1 keeps beating, w2 goes silent past the TTL.
	clk.advance(600 * time.Millisecond)
	g.Heartbeat("w1", "http://w1")
	clk.advance(600 * time.Millisecond)
	dropped := g.Expire()
	if len(dropped) != 1 || dropped[0] != "w2" {
		t.Fatalf("dropped = %v", dropped)
	}
	if ws := g.Workers(); len(ws) != 1 || ws[0].ID != "w1" {
		t.Fatalf("workers after expiry = %+v", ws)
	}
	if w, ok := g.OwnerOf("job-1"); !ok || w.ID != "w1" {
		t.Fatalf("owner after expiry = %+v ok=%v", w, ok)
	}
}

// TestRegistryOwnerOfExpires: OwnerOf must never hand out a worker whose
// heartbeat is stale — lookup itself applies the TTL.
func TestRegistryOwnerOfExpires(t *testing.T) {
	g, clk := newTestRegistry(time.Second)
	g.Heartbeat("w1", "http://w1")
	clk.advance(2 * time.Second)
	if w, ok := g.OwnerOf("job-1"); ok {
		t.Fatalf("stale worker handed out: %+v", w)
	}
}

// TestRegistryDeregister: the draining handoff removes the worker from
// the ring immediately, and its keys land on the survivors.
func TestRegistryDeregister(t *testing.T) {
	g, _ := newTestRegistry(time.Minute)
	for _, w := range []string{"w1", "w2", "w3"} {
		g.Heartbeat(w, "http://"+w)
	}
	victim, ok := g.OwnerOf("job-42")
	if !ok {
		t.Fatal("no owner")
	}
	if !g.Deregister(victim.ID) {
		t.Fatal("deregister returned false for a member")
	}
	if g.Deregister(victim.ID) {
		t.Fatal("second deregister returned true")
	}
	after, ok := g.OwnerOf("job-42")
	if !ok || after.ID == victim.ID {
		t.Fatalf("key still owned by drained worker: %+v ok=%v", after, ok)
	}
	// A late heartbeat from a drained worker re-registers it (restart).
	if isNew := g.Heartbeat(victim.ID, victim.URL); !isNew {
		t.Fatal("re-registration after drain not new")
	}
	if len(g.Workers()) != 3 {
		t.Fatalf("workers = %+v", g.Workers())
	}
}

// TestRegistryMarkDead: a dispatch failure evicts the worker without
// waiting for the TTL.
func TestRegistryMarkDead(t *testing.T) {
	g, _ := newTestRegistry(time.Minute)
	g.Heartbeat("w1", "http://w1")
	g.Heartbeat("w2", "http://w2")
	g.MarkDead("w1")
	g.MarkDead("ghost") // absent: no-op
	ws := g.Workers()
	if len(ws) != 1 || ws[0].ID != "w2" {
		t.Fatalf("workers = %+v", ws)
	}
	if w, _ := g.OwnerOf("anything"); w.ID != "w2" {
		t.Fatalf("owner = %+v", w)
	}
}

// TestRegistryURLUpdate: a heartbeat with a new URL (worker restarted on
// a new port) updates the stored address without churning the ring.
func TestRegistryURLUpdate(t *testing.T) {
	g, _ := newTestRegistry(time.Minute)
	g.Heartbeat("w1", "http://old")
	before, _ := g.OwnerOf("job-7")
	if isNew := g.Heartbeat("w1", "http://new"); isNew {
		t.Fatal("URL update reported as new registration")
	}
	after, _ := g.OwnerOf("job-7")
	if after.URL != "http://new" || before.ID != after.ID {
		t.Fatalf("before=%+v after=%+v", before, after)
	}
}

// TestRegistryMinimalRebalance: expiring one of N workers remaps only
// that worker's jobs (the ring's minimal-disruption contract holds
// through the registry layer too).
func TestRegistryMinimalRebalance(t *testing.T) {
	g, clk := newTestRegistry(time.Second)
	workers := []string{"w1", "w2", "w3", "w4"}
	for _, w := range workers {
		g.Heartbeat(w, "http://"+w)
	}
	keys := corpus()
	before := map[string]string{}
	for _, k := range keys {
		w, _ := g.OwnerOf(k)
		before[k] = w.ID
	}
	// Everyone but w3 keeps beating.
	clk.advance(600 * time.Millisecond)
	for _, w := range workers {
		if w != "w3" {
			g.Heartbeat(w, "http://"+w)
		}
	}
	clk.advance(600 * time.Millisecond)
	moved := 0
	for _, k := range keys {
		w, ok := g.OwnerOf(k)
		if !ok {
			t.Fatal("no owner after expiry")
		}
		if w.ID != before[k] {
			if before[k] != "w3" {
				t.Fatalf("key %s moved %s -> %s though only w3 died", k, before[k], w.ID)
			}
			moved++
		}
	}
	if bound := 2 * len(keys) / len(workers); moved == 0 || moved >= bound {
		t.Fatalf("moved %d keys, want (0, %d)", moved, bound)
	}
}
