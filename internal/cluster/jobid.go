// Package cluster shards wavepimd into a coordinator + worker cluster:
// a consistent-hash ring assigns idempotent, client-named jobs to
// registered workers, a registry tracks membership through heartbeats and
// draining handoffs, per-tenant admission control with priority queues
// layers on top of the workers' own backpressure, and the coordinator
// aggregates worker telemetry (Prometheus expositions, SSE event
// streams) into single deterministic views.
package cluster

import (
	"fmt"
)

// MaxJobIDLen bounds canonical job ids. 128 characters is enough for a
// UUID plus generous tenant/campaign prefixes while keeping ids cheap to
// log and hash.
const MaxJobIDLen = 128

// NormalizeJobID canonicalizes a client-supplied idempotency key:
// surrounding ASCII whitespace is trimmed and ASCII letters fold to
// lowercase (ids are case-insensitive). The canonical form must be 1..128
// characters drawn from [a-z0-9._:-] with at least one alphanumeric.
// Distinct canonical ids are distinct jobs; equal canonical ids are the
// same job however many times they are submitted.
func NormalizeJobID(raw string) (string, error) {
	start, end := 0, len(raw)
	for start < end && isSpace(raw[start]) {
		start++
	}
	for end > start && isSpace(raw[end-1]) {
		end--
	}
	if start == end {
		return "", fmt.Errorf("cluster: empty job id")
	}
	if end-start > MaxJobIDLen {
		return "", fmt.Errorf("cluster: job id longer than %d characters", MaxJobIDLen)
	}
	buf := make([]byte, 0, end-start)
	alnum := false
	for i := start; i < end; i++ {
		c := raw[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
			alnum = true
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			alnum = true
		case c == '.' || c == '_' || c == ':' || c == '-':
		default:
			return "", fmt.Errorf("cluster: job id byte %q not in [a-z0-9._:-]", c)
		}
		buf = append(buf, c)
	}
	if !alnum {
		return "", fmt.Errorf("cluster: job id needs at least one alphanumeric")
	}
	return string(buf), nil
}

// isSpace reports ASCII whitespace (the only kind ids may be wrapped in).
func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}

// RingKey maps a canonical job id to its position on the hash ring:
// FNV-1a over a domain-separated copy of the id, then a splitmix64
// finalizer so every input bit diffuses into the high bits the ring's
// binary search discriminates on. Stable across processes and releases —
// persisted shard assignments depend on it.
func RingKey(id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range []byte("job:") {
		h ^= uint64(c)
		h *= prime64
	}
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer (same construction the fault
// injector uses for schedule-independent decisions).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
