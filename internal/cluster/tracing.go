package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"wavepim/internal/cluster/trace"
)

// The coordinator side of the distributed-tracing pipeline (see
// internal/cluster/trace for the identity scheme and the merge format).
// Each tracked job carries a jobTrace: an append-only list of completed
// stage spans plus the two stages that can be open at any moment — the
// queue wait and the worker execution. All mutation happens under the
// owning cjob's mutex; span times are seconds relative to the job's
// submission instant, so a frozen coordinator clock yields an all-zero,
// byte-stable timeline.

// jobTrace is one job's coordinator-side timeline.
type jobTrace struct {
	ctx   trace.Context
	epoch time.Time // submission instant; the trace's time zero

	spans  []trace.Span
	counts map[string]int // per-stage occurrence counters

	queueStart time.Time // open queue wait (zero: none)
	queueAnnot string
	execStart  time.Time // open worker execution (zero: none)
	execAnnot  string

	// Accumulated stage seconds for the latency decomposition. The
	// dispatch bucket absorbs everything between queue and execution:
	// attempts, stalls, backoffs, and the report fetch.
	queueSec, dispatchSec, execSec float64
}

func newJobTrace(id string, now time.Time) *jobTrace {
	return &jobTrace{ctx: trace.New(id), epoch: now, counts: map[string]int{}}
}

// rel converts an absolute instant to trace-relative seconds.
func (tl *jobTrace) rel(t time.Time) float64 {
	if t.Before(tl.epoch) {
		return 0
	}
	return t.Sub(tl.epoch).Seconds()
}

// record appends one completed span and feeds its duration into the
// stage decomposition. Caller holds the owning cjob's mutex.
func (tl *jobTrace) record(stage string, start, end time.Time, annot string) {
	s := trace.Span{
		Stage:      stage,
		Occurrence: tl.counts[stage],
		Start:      tl.rel(start),
		Dur:        tl.rel(end) - tl.rel(start),
		Annot:      annot,
	}
	tl.counts[stage]++
	tl.spans = append(tl.spans, s)
	switch stage {
	case trace.StageQueue:
		tl.queueSec += s.Dur
	case trace.StageExec:
		tl.execSec += s.Dur
	case trace.StageDispatch, trace.StageStall, trace.StageBackoff, trace.StageReport:
		tl.dispatchSec += s.Dur
	}
}

// openQueue starts a queue-wait span (annotated with the job's class).
func (tl *jobTrace) openQueue(now time.Time, annot string) {
	tl.queueStart, tl.queueAnnot = now, annot
}

// closeQueue ends the open queue wait, if any.
func (tl *jobTrace) closeQueue(now time.Time) {
	if tl.queueStart.IsZero() {
		return
	}
	tl.record(trace.StageQueue, tl.queueStart, now, tl.queueAnnot)
	tl.queueStart = time.Time{}
}

// openExec starts a worker-execution span (annotated with the worker id).
func (tl *jobTrace) openExec(now time.Time, annot string) {
	tl.execStart, tl.execAnnot = now, annot
}

// closeExec ends the open execution span; a non-empty annot (the retry
// cause of an execution that did not reach a terminal state) replaces
// the worker annotation.
func (tl *jobTrace) closeExec(now time.Time, annot string) {
	if tl.execStart.IsZero() {
		return
	}
	if annot == "" {
		annot = tl.execAnnot
	}
	tl.record(trace.StageExec, tl.execStart, now, annot)
	tl.execStart = time.Time{}
}

// finalize closes any open stage and appends the root job span. Called
// exactly once, at the terminal transition.
func (tl *jobTrace) finalize(now time.Time, status string) {
	tl.closeQueue(now)
	tl.closeExec(now, "")
	tl.spans = append(tl.spans, trace.Span{
		Stage: trace.StageJob, Occurrence: 0,
		Start: 0, Dur: tl.rel(now), Annot: status,
	})
}

// stageSeconds snapshots the latency decomposition. E2E is zero until
// finalize has run (it is the root span's duration).
func (tl *jobTrace) stageSeconds() StageSeconds {
	ss := StageSeconds{
		QueueSec:    tl.queueSec,
		DispatchSec: tl.dispatchSec,
		ExecSec:     tl.execSec,
	}
	for _, s := range tl.spans {
		if s.Stage == trace.StageJob {
			ss.E2ESec = s.Dur
			break
		}
	}
	return ss
}

// merged renders the cluster-level Chrome trace for this timeline plus
// the owning worker's trace (either may be absent). Returns nil on a
// malformed worker document — the coordinator's own spans are never
// worth serving with a parse error behind them.
func (tl *jobTrace) merged(workerID string, workerTrace []byte) []byte {
	var buf bytes.Buffer
	if err := trace.Merge(&buf, tl.ctx, tl.spans, workerID, workerTrace); err != nil {
		return nil
	}
	return buf.Bytes()
}

// StageSeconds is the per-job latency decomposition in the /v1/jobs
// table: time queued, time spent dispatching (attempts + stalls +
// backoffs + report fetch), time executing on a worker, and the
// submission-to-terminal total. Field order is fixed by the struct.
type StageSeconds struct {
	QueueSec    float64 `json:"queue_sec"`
	DispatchSec float64 `json:"dispatch_sec"`
	ExecSec     float64 `json:"exec_sec"`
	E2ESec      float64 `json:"e2e_sec"`
}

// stageFamilies are the four HistogramVec families of the latency
// decomposition, all labeled (priority, outcome).
var stageFamilies = []string{
	"wavepimctl.job_queue_seconds",
	"wavepimctl.dispatch_seconds",
	"wavepimctl.exec_seconds",
	"wavepimctl.e2e_seconds",
}

// observeStages feeds one terminal job's decomposition into the four
// histogram families.
func (c *Coordinator) observeStages(priority, outcome string, ss StageSeconds) {
	vals := [...]float64{ss.QueueSec, ss.DispatchSec, ss.ExecSec, ss.E2ESec}
	for i, fam := range stageFamilies {
		c.metrics.HistogramVec(fam, "priority", "outcome").With(priority, outcome).Observe(vals[i])
	}
}

// traceDigestHex content-addresses a merged trace for the journal ("" for
// a job without one).
func traceDigestHex(doc []byte) string {
	if len(doc) == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", trace.Digest(doc))
}

// restoreTraceDoc rebuilds the served merged-trace bytes from a journaled
// terminal record. The journal stores the document compacted (a
// json.RawMessage is compacted when the record is marshaled), so the
// restore re-indents it exactly the way trace.Merge's encoder does and
// then proves the result against the recorded digest — a mismatch drops
// the trace (nil) rather than serving bytes that never existed.
func restoreTraceDoc(compact json.RawMessage, digestHex string) []byte {
	if len(compact) == 0 || digestHex == "" {
		return nil
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, compact, "", " "); err != nil {
		return nil
	}
	buf.WriteByte('\n')
	if traceDigestHex(buf.Bytes()) != digestHex {
		return nil
	}
	return buf.Bytes()
}
