package cluster

import (
	"sort"
	"sync"
	"time"
)

// Per-worker circuit breakers. A worker that keeps failing dispatches —
// flapping, partitioned, or overloaded — trips its breaker open, and the
// coordinator stops burning retry budget (and backoff latency) on it
// until a half-open probe proves it recovered. The state machine is the
// classic three-state breaker:
//
//	closed    -> open       after Threshold consecutive failures
//	open      -> half-open  Probe after it opened, admitting ONE request
//	half-open -> closed     the probe succeeded
//	half-open -> open       the probe failed (the probe timer restarts)
//
// Breakers are softer than Registry.MarkDead: a dead worker leaves the
// ring and its keys rebalance, while an open breaker only pauses
// dispatch to a worker that is still a member (its heartbeats keep
// arriving) — exactly the flapping case where eviction would cause ring
// churn without fixing anything.

// BreakerState enumerates the circuit states. The numeric values are the
// wavepimctl.breaker_state gauge's encoding.
type BreakerState int

const (
	BreakerClosed   BreakerState = 0
	BreakerHalfOpen BreakerState = 1
	BreakerOpen     BreakerState = 2
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes the per-worker breakers. Zero values select the
// defaults.
type BreakerConfig struct {
	Threshold int           // consecutive failures that open the breaker (default 5)
	Probe     time.Duration // open -> half-open probe delay (default 500ms)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Probe <= 0 {
		c.Probe = 500 * time.Millisecond
	}
	return c
}

// workerBreaker is one worker's circuit. Guarded by Breakers.mu.
type workerBreaker struct {
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

// BreakerView is one worker's breaker state for metrics and tests.
type BreakerView struct {
	Worker string       `json:"worker"`
	State  BreakerState `json:"state"`
	Fails  int          `json:"fails"`
}

// Breakers is the coordinator's set of per-worker circuits.
type Breakers struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now func() time.Time
	m   map[string]*workerBreaker
}

// NewBreakers builds the breaker set (nil now selects time.Now).
func NewBreakers(cfg BreakerConfig, now func() time.Time) *Breakers {
	if now == nil {
		now = time.Now
	}
	return &Breakers{cfg: cfg.withDefaults(), now: now, m: map[string]*workerBreaker{}}
}

func (b *Breakers) get(id string) *workerBreaker {
	wb, ok := b.m[id]
	if !ok {
		wb = &workerBreaker{}
		b.m[id] = wb
	}
	return wb
}

// Allow reports whether a dispatch to the worker may proceed. An open
// breaker whose probe delay elapsed transitions to half-open and admits
// exactly one probe; concurrent dispatchers asking during the probe are
// refused until Success or Failure resolves it.
func (b *Breakers) Allow(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	wb := b.get(id)
	switch wb.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(wb.openedAt) < b.cfg.Probe {
			return false
		}
		wb.state = BreakerHalfOpen
		wb.probing = true
		return true
	default: // half-open
		if wb.probing {
			return false
		}
		wb.probing = true
		return true
	}
}

// Success records a successful dispatch: the circuit closes and the
// failure streak resets.
func (b *Breakers) Success(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wb := b.get(id)
	wb.state = BreakerClosed
	wb.fails = 0
	wb.probing = false
}

// Failure records a failed dispatch and returns whether the circuit is
// now open. A failure in half-open state re-opens immediately (the probe
// disproved recovery); in closed state the streak must reach Threshold.
func (b *Breakers) Failure(id string) (open bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wb := b.get(id)
	wb.fails++
	if wb.state == BreakerHalfOpen || wb.fails >= b.cfg.Threshold {
		wb.state = BreakerOpen
		wb.openedAt = b.now()
		wb.probing = false
	}
	return wb.state == BreakerOpen
}

// Forget drops a worker's circuit (it deregistered; a future worker
// under the same id starts closed).
func (b *Breakers) Forget(id string) {
	b.mu.Lock()
	delete(b.m, id)
	b.mu.Unlock()
}

// State returns the worker's current circuit state (closed if unknown).
func (b *Breakers) State(id string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if wb, ok := b.m[id]; ok {
		return wb.state
	}
	return BreakerClosed
}

// Snapshot lists every tracked circuit sorted by worker id (the order
// the breaker_state gauge vec publishes in).
func (b *Breakers) Snapshot() []BreakerView {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerView, 0, len(b.m))
	for id, wb := range b.m {
		out = append(out, BreakerView{Worker: id, State: wb.state, Fails: wb.fails})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}
