package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func job(id, tenant string, p Priority) *QueuedJob {
	return &QueuedJob{ID: id, Tenant: tenant, Priority: p}
}

// TestParsePriority pins the wire names.
func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want Priority
		ok   bool
	}{
		{"", PriorityNormal, true},
		{"normal", PriorityNormal, true},
		{"high", PriorityHigh, true},
		{"low", PriorityLow, true},
		{"urgent", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePriority(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParsePriority(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePriority(%q) accepted", c.in)
		}
	}
}

// TestAdmissionPriorityOrder: queued jobs drain high before normal
// before low, FIFO within a class.
func TestAdmissionPriorityOrder(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxQueued: 10, MaxActive: 10})
	for _, j := range []*QueuedJob{
		job("l1", "t", PriorityLow),
		job("n1", "t", PriorityNormal),
		job("h1", "t", PriorityHigh),
		job("n2", "t", PriorityNormal),
		job("h2", "t", PriorityHigh),
	} {
		if err := a.Submit(j); err != nil {
			t.Fatalf("Submit(%s): %v", j.ID, err)
		}
	}
	want := []string{"h1", "h2", "n1", "n2", "l1"}
	ctx := context.Background()
	for _, id := range want {
		j, ok := a.Next(ctx)
		if !ok || j.ID != id {
			t.Fatalf("Next = %v/%v, want %s", j, ok, id)
		}
	}
}

// TestAdmissionQueueQuota: a tenant at its queue quota is rejected with a
// typed error; other tenants are unaffected; draining the queue frees
// the quota.
func TestAdmissionQueueQuota(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxQueued: 2, MaxActive: 10})
	if err := a.Submit(job("a1", "alice", PriorityNormal)); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(job("a2", "alice", PriorityNormal)); err != nil {
		t.Fatal(err)
	}
	err := a.Submit(job("a3", "alice", PriorityNormal))
	var qe *ErrQuota
	if !errors.As(err, &qe) || qe.Tenant != "alice" || qe.Kind != "queued" {
		t.Fatalf("quota error = %v", err)
	}
	if err := a.Submit(job("b1", "bob", PriorityNormal)); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if _, ok := a.Next(context.Background()); !ok {
		t.Fatal("Next failed")
	}
	if err := a.Submit(job("a3", "alice", PriorityNormal)); err != nil {
		t.Fatalf("quota not released: %v", err)
	}
}

// TestAdmissionActiveQuota: Next skips a tenant at its active limit and
// serves other tenants; Done releases the slot.
func TestAdmissionActiveQuota(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxQueued: 10, MaxActive: 1})
	a.SetTenantQuota("bob", QuotaConfig{MaxQueued: 10, MaxActive: 2})
	for _, j := range []*QueuedJob{
		job("a1", "alice", PriorityHigh),
		job("a2", "alice", PriorityHigh),
		job("b1", "bob", PriorityLow),
	} {
		if err := a.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	j1, _ := a.Next(ctx)
	if j1.ID != "a1" {
		t.Fatalf("first = %s", j1.ID)
	}
	// alice is at MaxActive=1, so the low-priority bob job goes next even
	// though a2 is high priority.
	j2, _ := a.Next(ctx)
	if j2.ID != "b1" {
		t.Fatalf("second = %s (active quota not enforced)", j2.ID)
	}
	// Nothing eligible: Next blocks until alice's slot frees.
	got := make(chan string, 1)
	go func() {
		j, ok := a.Next(ctx)
		if ok {
			got <- j.ID
		}
	}()
	select {
	case id := <-got:
		t.Fatalf("Next returned %s while alice was at quota", id)
	case <-time.After(50 * time.Millisecond):
	}
	a.Done("alice")
	select {
	case id := <-got:
		if id != "a2" {
			t.Fatalf("after release Next = %s", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke after Done")
	}
}

// TestAdmissionRequeue: a requeued job (worker died) goes to the front of
// its priority class and does not double-count against the tenant's
// queue quota path.
func TestAdmissionRequeue(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxQueued: 2, MaxActive: 10})
	a.Submit(job("n1", "t", PriorityNormal))
	a.Submit(job("n2", "t", PriorityNormal))
	ctx := context.Background()
	j, _ := a.Next(ctx)
	if j.ID != "n1" {
		t.Fatalf("first = %s", j.ID)
	}
	a.Requeue(j) // releases the active slot, jumps the queue
	next, _ := a.Next(ctx)
	if next.ID != "n1" {
		t.Fatalf("requeued job not first: got %s", next.ID)
	}
	if d := a.Depths(); d.Queued != 1 {
		t.Fatalf("depths = %+v", d)
	}
}

// TestAdmissionNextContext: a canceled context unblocks Next.
func TestAdmissionNextContext(t *testing.T) {
	a := NewAdmission(QuotaConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := a.Next(ctx)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned a job from an empty queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next ignored context cancellation")
	}
}

// TestAdmissionClose: Close unblocks waiters and rejects new submits.
func TestAdmissionClose(t *testing.T) {
	a := NewAdmission(QuotaConfig{})
	done := make(chan bool, 1)
	go func() {
		_, ok := a.Next(context.Background())
		done <- ok
	}()
	a.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned a job after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next ignored Close")
	}
	if err := a.Submit(job("x", "t", PriorityNormal)); err == nil {
		t.Fatal("Submit accepted after Close")
	}
}

// TestAdmissionConcurrent: many producers and consumers, every submitted
// job is handed out exactly once (run with -race).
func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxQueued: 10000, MaxActive: 10000})
	const producers, perProducer = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				prio := Priority(k % 3)
				if err := a.Submit(job(itoa(p*1000+k), "t", prio)); err != nil {
					t.Errorf("Submit: %v", err)
				}
			}
		}(p)
	}
	seen := make(chan string, producers*perProducer)
	var cg sync.WaitGroup
	ctx := context.Background()
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				j, ok := a.Next(ctx)
				if !ok {
					return
				}
				seen <- j.ID
				a.Done(j.Tenant)
			}
		}()
	}
	wg.Wait()
	ids := map[string]bool{}
	for i := 0; i < producers*perProducer; i++ {
		select {
		case id := <-seen:
			if ids[id] {
				t.Fatalf("job %s handed out twice", id)
			}
			ids[id] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d jobs drained", len(ids))
		}
	}
	a.Close()
	cg.Wait()
}
