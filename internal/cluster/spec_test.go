package cluster

import "testing"

// TestJobSpecDigestTopology: the content digest distinguishes topologies
// (the same spec on two fabrics is two distinct cached results), while
// the empty string and "htree" normalize to one digest, and scheduling-
// only fields stay excluded.
func TestJobSpecDigestTopology(t *testing.T) {
	base := JobSpec{Equation: "acoustic", Steps: 4}
	d0 := base.Digest()

	ht := base
	ht.Topology = "htree"
	if ht.Digest() != d0 {
		t.Error("empty and htree topologies must share a digest (same run requested)")
	}

	seen := map[uint64]string{d0: "htree"}
	for _, topo := range []string{"bus", "mesh", "torus", "flatfly", "dragonfly"} {
		s := base
		s.Topology = topo
		d := s.Digest()
		if prev, ok := seen[d]; ok {
			t.Errorf("topology %q digest collides with %q", topo, prev)
		}
		seen[d] = topo
	}

	sched := base
	sched.ID, sched.Tenant, sched.Priority = "j1", "acme", "high"
	sched.Workers, sched.DeadlineMS = 8, 5000
	if sched.Digest() != d0 {
		t.Error("scheduling-only fields leaked into the content digest")
	}

	dyn := base
	dyn.Faults = "seed=4,flip=1e-5"
	if dyn.Digest() == d0 {
		t.Error("fault spec must change the content digest")
	}
}
