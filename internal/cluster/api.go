package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// The versioned HTTP surface. Every coordinator and worker endpoint lives
// under /v1; the pre-versioning unversioned paths remain mounted as
// permanent redirects (308, method- and body-preserving) so old clients
// keep working, while new clients — and every internal control-plane
// call — hit /v1 directly. DESIGN.md §11 documents the surface and the
// migration table.

// APIPrefix is the path prefix of the current API version.
const APIPrefix = "/v1"

// APIError is the single error envelope every /v1 endpoint returns on
// failure. Code is a stable machine-readable string from the vocabulary
// below; Retryable tells a client whether the same request can succeed
// later without modification (backpressure, draining, transient upstream
// failures) or is permanently malformed/missing.
type APIError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// The error-code vocabulary. Codes are append-only: clients switch on
// them, so renaming one is a breaking API change.
const (
	CodeBadRequest = "bad_request" // malformed body, unknown equation/topology, bad id or priority
	CodeNotFound   = "not_found"   // no such run/job, or no flight dump recorded
	CodeNotReady   = "not_ready"   // resource exists but is not available yet (trace of a queued run)
	CodeDraining   = "draining"    // server is shutting down; resubmit elsewhere or later
	CodeQueueFull  = "queue_full"  // worker job queue at capacity
	CodeQuota      = "quota"       // tenant quota exhausted
	CodeConflict   = "conflict"    // id already tracked with different content

	CodeUpstream = "upstream" // a worker the coordinator proxied to failed
	CodeInternal = "internal" // invariant violation inside the server
)

// WriteAPIError writes the envelope with the given status.
func WriteAPIError(w http.ResponseWriter, status int, code string, retryable bool, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(APIError{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Retryable: retryable,
	})
}

// RedirectV1 serves a legacy unversioned route: a permanent redirect to
// the same path under /v1. 308 (not 301) so POST bodies survive the hop.
func RedirectV1(w http.ResponseWriter, req *http.Request) {
	target := APIPrefix + req.URL.Path
	if q := req.URL.RawQuery; q != "" {
		target += "?" + q
	}
	http.Redirect(w, req, target, http.StatusPermanentRedirect)
}

// MountLegacyRedirects registers RedirectV1 for each legacy route root
// ("/runs", "/jobs", ...), covering both the exact path and its subtree.
func MountLegacyRedirects(mux *http.ServeMux, roots ...string) {
	for _, r := range roots {
		mux.HandleFunc(r, RedirectV1)
		mux.HandleFunc(r+"/", RedirectV1)
	}
}
