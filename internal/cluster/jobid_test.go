package cluster

import (
	"strings"
	"testing"
)

// TestNormalizeJobID pins the canonicalization rules: surrounding ASCII
// whitespace is trimmed, ASCII letters fold to lowercase (ids are
// case-insensitive), and the canonical form is drawn from
// [a-z0-9._:-]{1,128} with at least one alphanumeric.
func TestNormalizeJobID(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"job-1", "job-1", true},
		{"  job-1\t\n", "job-1", true},
		{"JOB-1", "job-1", true},
		{"Tenant:alpha.run_7", "tenant:alpha.run_7", true},
		{"a", "a", true},
		{strings.Repeat("x", 128), strings.Repeat("x", 128), true},
		{"", "", false},
		{"   ", "", false},
		{strings.Repeat("x", 129), "", false},
		{"job 1", "", false},     // interior space
		{"job/1", "", false},     // disallowed separator
		{"job\x001", "", false},  // control byte
		{"jöb", "", false},       // non-ASCII
		{"----", "", false},      // no alphanumeric
		{"..::", "", false},      // no alphanumeric
		{"-job-", "-job-", true}, // leading/trailing separators are fine
	}
	for _, c := range cases {
		got, err := NormalizeJobID(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("NormalizeJobID(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("NormalizeJobID(%q) = %q, want error", c.in, got)
		}
	}
}

// TestNormalizeJobIDIdempotent: normalizing a canonical id is a no-op.
func TestNormalizeJobIDIdempotent(t *testing.T) {
	for _, id := range []string{"job-1", "  MiXeD.Case:ID_9 ", "a-b-c"} {
		once, err := NormalizeJobID(id)
		if err != nil {
			t.Fatalf("NormalizeJobID(%q): %v", id, err)
		}
		twice, err := NormalizeJobID(once)
		if err != nil || twice != once {
			t.Fatalf("not idempotent: %q -> %q -> %q (%v)", id, once, twice, err)
		}
	}
}

// TestRingKeyDistinct: distinct canonical ids must land on distinct ring
// keys — the dispatcher's idempotency depends on the key being a stable
// 1:1 address for the id (modulo 64-bit hash collisions, which this
// corpus must not contain).
func TestRingKeyDistinct(t *testing.T) {
	seen := map[uint64]string{}
	ids := []string{"a", "b", "job-1", "job-2", "job-10", "1-job", "job_1", "job.1", "job:1"}
	for i := 0; i < 10000; i++ {
		ids = append(ids, "load-"+strings.Repeat("9", i%4)+itoa(i))
	}
	for _, id := range ids {
		k := RingKey(id)
		if prev, dup := seen[k]; dup && prev != id {
			t.Fatalf("RingKey collision: %q and %q -> %d", prev, id, k)
		}
		seen[k] = id
	}
}

// TestRingKeyStable pins the hash so persisted shard assignments survive
// process restarts and cross-version upgrades.
func TestRingKeyStable(t *testing.T) {
	if got := RingKey("job-1"); got != RingKey("job-1") {
		t.Fatal("RingKey not deterministic")
	}
	if RingKey("job-1") == RingKey("job-2") {
		t.Fatal("trivial collision")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
