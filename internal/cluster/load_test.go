package cluster_test

// Cluster load guard: push >=200 concurrent jobs through a 3-worker
// cluster and demand zero errors. Gated behind CLUSTER_LOAD=1 so plain
// `go test` stays fast; scripts/cluster_load_guard.sh runs it under
// -race in CI and records throughput and latency percentiles into the
// benchmark trajectory (BENCH_pr7.json).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wavepim/internal/cluster"
)

// loadResult is the guard's JSON output. Field order is fixed by the
// struct so recorded files diff cleanly.
type loadResult struct {
	Workers    int     `json:"workers"`
	Jobs       int     `json:"jobs"`
	Errors     int     `json:"errors"`
	WallSec    float64 `json:"wall_seconds"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`

	// Decomp breaks the end-to-end latency into the coordinator's traced
	// stages, aggregated over every completed job's JobView.Stages — the
	// same decomposition /v1/metrics exports as histograms.
	Decomp struct {
		Queue    stageStats `json:"queue"`
		Dispatch stageStats `json:"dispatch"`
		Exec     stageStats `json:"exec"`
		E2E      stageStats `json:"e2e"`
	} `json:"latency_decomposition"`
}

type stageStats struct {
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// stageDist summarizes one stage's per-job milliseconds.
func stageDist(vals []float64) stageStats {
	if len(vals) == 0 {
		return stageStats{}
	}
	sort.Float64s(vals)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	pct := func(p float64) float64 { return vals[int(p*float64(len(vals)-1))] }
	return stageStats{MeanMs: sum / float64(len(vals)), P50Ms: pct(0.50), P99Ms: pct(0.99)}
}

func TestClusterLoadGuard(t *testing.T) {
	if os.Getenv("CLUSTER_LOAD") == "" {
		t.Skip("set CLUSTER_LOAD=1 to run the cluster load guard")
	}
	jobs := 200
	if v := os.Getenv("CLUSTER_LOAD_JOBS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("CLUSTER_LOAD_JOBS=%q", v)
		}
		jobs = n
	}

	const workers = 3
	tc := startCluster(t, workers, clusterOptions{
		workers: 2, queue: 128, dispatchers: 32,
		pollInterval: 2 * time.Millisecond,
	})

	// All jobs in flight at once: one goroutine per job submits, then
	// polls its job to "done" and records the end-to-end latency. Specs
	// are content-distinct (per-job CFL) so every job really executes.
	var (
		mu        sync.Mutex
		latencies []float64
		errs      []string
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("load-%04d", i)
			body := fmt.Sprintf(`{"equation":"acoustic","steps":2,"cfl":%g,"id":%q}`,
				0.2+1e-6*float64(i), id)
			t0 := time.Now()
			resp, err := http.Post(tc.coordTS.URL+"/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Sprintf("%s: submit: %v", id, err))
				mu.Unlock()
				return
			}
			code := resp.StatusCode
			resp.Body.Close()
			if code != http.StatusAccepted {
				mu.Lock()
				errs = append(errs, fmt.Sprintf("%s: submit status %d", id, code))
				mu.Unlock()
				return
			}
			deadline := time.Now().Add(5 * time.Minute)
			for {
				if time.Now().After(deadline) {
					mu.Lock()
					errs = append(errs, fmt.Sprintf("%s: timed out", id))
					mu.Unlock()
					return
				}
				resp, err := http.Get(tc.coordTS.URL + "/jobs/" + id)
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Sprintf("%s: poll: %v", id, err))
					mu.Unlock()
					return
				}
				var v struct {
					Status string `json:"status"`
					Error  string `json:"error"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if decErr != nil {
					mu.Lock()
					errs = append(errs, fmt.Sprintf("%s: decode: %v", id, decErr))
					mu.Unlock()
					return
				}
				if v.Status == "done" {
					mu.Lock()
					latencies = append(latencies, time.Since(t0).Seconds()*1e3)
					mu.Unlock()
					return
				}
				if v.Status == "failed" {
					mu.Lock()
					errs = append(errs, fmt.Sprintf("%s: failed: %s", id, v.Error))
					mu.Unlock()
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	if len(errs) > 0 {
		max := len(errs)
		if max > 10 {
			max = 10
		}
		t.Fatalf("%d/%d jobs errored; first %d:\n%s",
			len(errs), jobs, max, strings.Join(errs[:max], "\n"))
	}
	if len(latencies) != jobs {
		t.Fatalf("only %d/%d jobs completed", len(latencies), jobs)
	}

	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	res := loadResult{
		Workers:    workers,
		Jobs:       jobs,
		Errors:     0,
		WallSec:    wall,
		Throughput: float64(jobs) / wall,
		P50Ms:      pct(0.50),
		P99Ms:      pct(0.99),
	}

	// The coordinator's own stage decomposition for the same jobs.
	_, table := tc.get(t, "/v1/jobs")
	var views []cluster.JobView
	if err := json.Unmarshal([]byte(table), &views); err != nil {
		t.Fatalf("job table: %v", err)
	}
	var qMs, dMs, eMs, e2eMs []float64
	for _, v := range views {
		if v.Status != "done" {
			continue
		}
		qMs = append(qMs, v.Stages.QueueSec*1e3)
		dMs = append(dMs, v.Stages.DispatchSec*1e3)
		eMs = append(eMs, v.Stages.ExecSec*1e3)
		e2eMs = append(e2eMs, v.Stages.E2ESec*1e3)
	}
	if len(e2eMs) != jobs {
		t.Fatalf("job table has %d done jobs with stages, want %d", len(e2eMs), jobs)
	}
	res.Decomp.Queue = stageDist(qMs)
	res.Decomp.Dispatch = stageDist(dMs)
	res.Decomp.Exec = stageDist(eMs)
	res.Decomp.E2E = stageDist(e2eMs)

	t.Logf("cluster load: %d jobs, %d workers, %.2fs wall, %.1f jobs/s, p50 %.1fms, p99 %.1fms",
		res.Jobs, res.Workers, res.WallSec, res.Throughput, res.P50Ms, res.P99Ms)
	t.Logf("stage p50 ms: queue %.1f, dispatch %.1f, exec %.1f, e2e %.1f",
		res.Decomp.Queue.P50Ms, res.Decomp.Dispatch.P50Ms, res.Decomp.Exec.P50Ms, res.Decomp.E2E.P50Ms)

	if out := os.Getenv("CLUSTER_LOAD_OUT"); out != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
