package cluster

import "testing"

// FuzzJobID fuzzes the idempotency-key parser. Invariants:
//
//  1. NormalizeJobID never panics, whatever bytes arrive off the wire.
//  2. Normalization is idempotent: a canonical id re-normalizes to itself.
//  3. Canonical ids stay within the documented alphabet and length.
//  4. No two *distinct* canonical ids collide to one ring key: the ring
//     key of an id differs from the key of cheap mutations of it
//     (extension, truncation, character substitution). Equal raw inputs
//     that fold to the same canonical id (case, whitespace) are the same
//     id by definition, not a collision.
//
// The seeded corpus under testdata/fuzz/FuzzJobID covers the tricky
// classes: case folding, whitespace trimming, separator-only ids,
// overlong ids, and non-ASCII bytes.
func FuzzJobID(f *testing.F) {
	for _, seed := range []string{
		"job-1", "JOB-1", "  job-1  ", "tenant:alpha.run_7", "a",
		"", "   ", "----", "job 1", "job/1", "j\xc3\xb6b", "\x00",
		"0123456789abcdefghijklmnopqrstuvwxyz._:-",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		id, err := NormalizeJobID(raw)
		if err != nil {
			if id != "" {
				t.Fatalf("error with non-empty id %q", id)
			}
			return
		}
		if id == "" || len(id) > 128 {
			t.Fatalf("canonical id %q out of bounds", id)
		}
		alnum := false
		for i := 0; i < len(id); i++ {
			c := id[i]
			switch {
			case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
				alnum = true
			case c == '.' || c == '_' || c == ':' || c == '-':
			default:
				t.Fatalf("canonical id %q contains %q", id, c)
			}
		}
		if !alnum {
			t.Fatalf("canonical id %q has no alphanumeric", id)
		}
		again, err := NormalizeJobID(id)
		if err != nil || again != id {
			t.Fatalf("not idempotent: %q -> %q (%v)", id, again, err)
		}

		// Distinctness probes: mutations that produce a different
		// canonical id must produce a different ring key.
		key := RingKey(id)
		for _, mut := range []string{
			id + "0",
			id[:len(id)-1],
			"x" + id,
		} {
			mid, err := NormalizeJobID(mut)
			if err != nil || mid == id {
				continue
			}
			if RingKey(mid) == key {
				t.Fatalf("distinct ids collide: %q and %q -> %d", id, mid, key)
			}
		}
	})
}
