package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fixedHandler answers 200 with a fixed body.
func fixedHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, body)
	})
}

// doPost fires one POST through the transport and returns (status, body
// read error, transport error).
func doPost(t *testing.T, tr *Transport, url, body string) (int, error, error) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	_, rerr := io.ReadAll(resp.Body)
	return resp.StatusCode, rerr, nil
}

// TestChaosDeterministicDecisions: two transports with the same seed
// make identical injection decisions for the same request sequence —
// and a different seed makes different ones.
func TestChaosDeterministicDecisions(t *testing.T) {
	ts := httptest.NewServer(fixedHandler(`{"ok":true}`))
	defer ts.Close()

	schedule := func(seed uint64) []string {
		tr := New(Config{Seed: seed, DropProb: 0.4, ErrProb: 0.2}).Base(http.DefaultTransport)
		var out []string
		for i := 0; i < 40; i++ {
			code, _, err := doPost(t, tr, ts.URL+"/v1/runs", `{"id":"job-a"}`)
			switch {
			case err != nil:
				out = append(out, "drop")
			case code == http.StatusServiceUnavailable:
				out = append(out, "503")
			default:
				out = append(out, "ok")
			}
		}
		return out
	}

	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at attempt %d: %v vs %v", i, a, b)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical 40-attempt schedules: %v", a)
	}
	// The mix actually injected something and let something through.
	hasFault, hasOK := false, false
	for _, s := range a {
		if s == "ok" {
			hasOK = true
		} else {
			hasFault = true
		}
	}
	if !hasFault || !hasOK {
		t.Fatalf("degenerate schedule (want both faults and passes): %v", a)
	}
}

// TestChaosRouteIndependence: different bodies on the same endpoint are
// different routes with independent attempt streams, and the host is
// excluded from the route (ephemeral ports must not perturb decisions).
func TestChaosRouteIndependence(t *testing.T) {
	mk := func(url, body string) *http.Request {
		req, err := http.NewRequest("POST", url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	rA := RouteOf(mk("http://127.0.0.1:1111/v1/runs", `{"id":"a"}`))
	rA2 := RouteOf(mk("http://127.0.0.1:2222/v1/runs", `{"id":"a"}`))
	rB := RouteOf(mk("http://127.0.0.1:1111/v1/runs", `{"id":"b"}`))
	if rA != rA2 {
		t.Fatalf("route depends on host: %q vs %q", rA, rA2)
	}
	if rA == rB {
		t.Fatalf("distinct bodies share route %q", rA)
	}
	if !strings.HasPrefix(rA, "POST /v1/runs#") {
		t.Fatalf("route %q", rA)
	}
	get, _ := http.NewRequest("GET", "http://127.0.0.1:1111/v1/runs/a", nil)
	if r := RouteOf(get); r != "GET /v1/runs/a" {
		t.Fatalf("GET route %q", r)
	}
}

// TestChaosOnlyFilter: injection is confined to matching routes; other
// traffic passes through untouched and uncounted.
func TestChaosOnlyFilter(t *testing.T) {
	ts := httptest.NewServer(fixedHandler("ok"))
	defer ts.Close()
	tr := New(Config{Seed: 1, DropProb: 1.0, Only: "POST /v1/runs"}).Base(http.DefaultTransport)

	// GETs sail through even at DropProb 1.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/runs/x", nil)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatalf("filtered route dropped: %v", err)
	}
	resp.Body.Close()
	// POSTs always drop.
	if _, _, err := doPost(t, tr, ts.URL+"/v1/runs", `{"id":"x"}`); err == nil {
		t.Fatal("unfiltered POST survived DropProb 1")
	}
	c := tr.Counts()
	if c.Requests != 1 || c.Drops != 1 {
		t.Fatalf("counts %+v (want exactly the POST counted)", c)
	}
}

// TestChaosPartition: a partitioned host fails deterministically with
// the typed chaos error until healed; the error text names no host.
func TestChaosPartition(t *testing.T) {
	ts := httptest.NewServer(fixedHandler("ok"))
	defer ts.Close()
	host := strings.TrimPrefix(ts.URL, "http://")
	tr := New(Config{Seed: 9}).Base(http.DefaultTransport)

	tr.Partition(host)
	_, _, err := doPost(t, tr, ts.URL+"/v1/runs", `{"id":"p"}`)
	var ce *Error
	if !errors.As(err, &ce) || ce.Kind != "partition" {
		t.Fatalf("want partition error, got %v", err)
	}
	if strings.Contains(ce.Error(), host) {
		t.Fatalf("partition error leaks the host: %s", ce.Error())
	}
	tr.Heal(host)
	if _, _, err := doPost(t, tr, ts.URL+"/v1/runs", `{"id":"p"}`); err != nil {
		t.Fatalf("healed partition still fails: %v", err)
	}
	if c := tr.Counts(); c.Partitions != 1 {
		t.Fatalf("counts %+v", c)
	}
}

// TestChaosTruncation: a truncated response yields a short prefix then a
// typed chaos error from Read, so clients see a mid-stream cut rather
// than a clean EOF.
func TestChaosTruncation(t *testing.T) {
	long := strings.Repeat("x", 4096)
	ts := httptest.NewServer(fixedHandler(long))
	defer ts.Close()
	tr := New(Config{Seed: 7, TruncateProb: 1.0}).Base(http.DefaultTransport)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/runs/t", nil)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, rerr := io.ReadAll(resp.Body)
	var ce *Error
	if !errors.As(rerr, &ce) || ce.Kind != "truncate" {
		t.Fatalf("want truncate error, got %v (read %d bytes)", rerr, len(b))
	}
	if len(b) == 0 || len(b) >= len(long) {
		t.Fatalf("truncation read %d of %d bytes", len(b), len(long))
	}
}

// TestChaosSynthesizedError: ErrProb yields a well-formed HTTP response
// carrying the API error envelope, fully readable.
func TestChaosSynthesizedError(t *testing.T) {
	ts := httptest.NewServer(fixedHandler("ok"))
	defer ts.Close()
	tr := New(Config{Seed: 3, ErrProb: 1.0}).Base(http.DefaultTransport)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/runs/e", nil)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"retryable":true`)) {
		t.Fatalf("synthesized body %s", b)
	}
}

// TestChaosClientPlumbs: Client wraps the transport with the timeout.
func TestChaosClientPlumbs(t *testing.T) {
	tr := New(Config{})
	cl := tr.Client(5 * time.Second)
	if cl.Transport != tr || cl.Timeout != 5*time.Second {
		t.Fatalf("client %+v", cl)
	}
}
