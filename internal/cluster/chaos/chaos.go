// Package chaos is a deterministic, seedable fault-injecting
// http.RoundTripper for the cluster's control plane. It models the
// canonical failure modes of a distributed serving plane — dropped
// connections, injected latency, 5xx responses, truncated response
// bodies, and per-host network partitions — the same way
// internal/pim/fault models memristor defects: every decision is a pure
// splitmix64 hash of (seed, route, attempt), never of wall-clock time or
// goroutine scheduling.
//
// A route is the canonical identity of a request — "METHOD /path", plus
// a digest of the body for POSTs — and each route carries its own
// monotonic attempt counter. The k-th request on a route therefore sees
// the same injection decision in every run with the same seed,
// regardless of when or on which goroutine it fires. That is what lets
// the chaos test suite demand byte-identical final job tables across two
// runs of the same seeded schedule: retries may land at different
// wall-clock times, but the k-th dispatch of a given job meets the same
// fate.
//
// The transport plugs into cluster.CoordinatorOptions.Client and
// cluster.Heartbeater.Client; production code never imports it.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Config holds the injection knobs. The zero value injects nothing.
// Probabilities are independent per fault kind: each kind hashes the
// same (seed, route, attempt) triple under its own salt.
type Config struct {
	Seed uint64 // base seed for every hash-derived decision

	DropProb float64 // per-attempt probability of a connection-level failure

	DelayProb float64       // per-attempt probability of injected latency
	Delay     time.Duration // latency to inject when DelayProb fires (default 2ms)

	ErrProb   float64 // per-attempt probability of a synthesized HTTP error
	ErrStatus int     // status of the synthesized error (default 503)

	TruncateProb float64 // per-attempt probability the response body is cut short

	// Only filters injection to routes containing the substring (e.g.
	// "POST /v1/runs" faults dispatches but leaves status polls clean).
	// Empty means every route is eligible.
	Only string
}

// Error is the deterministic transport error the chaos layer injects.
// Its text deliberately contains no host or port (ephemeral listener
// ports would otherwise leak run-to-run nondeterminism into error
// messages that end up in job tables).
type Error struct {
	Kind    string // "drop", "truncate", "partition"
	Route   string
	Attempt uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("chaos: %s (route %s, attempt %d)", e.Kind, e.Route, e.Attempt)
}

// Counts aggregates what the transport injected.
type Counts struct {
	Requests   uint64 `json:"requests"`
	Drops      uint64 `json:"drops"`
	Delays     uint64 `json:"delays"`
	Errors     uint64 `json:"errors"`
	Truncates  uint64 `json:"truncates"`
	Partitions uint64 `json:"partitions"`
}

// Transport is the fault-injecting RoundTripper. It wraps a base
// transport (http.DefaultTransport unless overridden with Base) and is
// safe for concurrent use.
type Transport struct {
	cfg  Config
	base http.RoundTripper

	mu          sync.Mutex
	attempts    map[string]uint64
	partitioned map[string]bool
	counts      Counts
}

// New builds a Transport over http.DefaultTransport.
func New(cfg Config) *Transport {
	if cfg.Delay <= 0 {
		cfg.Delay = 2 * time.Millisecond
	}
	if cfg.ErrStatus == 0 {
		cfg.ErrStatus = http.StatusServiceUnavailable
	}
	return &Transport{
		cfg:         cfg,
		base:        http.DefaultTransport,
		attempts:    map[string]uint64{},
		partitioned: map[string]bool{},
	}
}

// Base replaces the underlying transport (tests inject an
// httptest-backed one) and returns the Transport for chaining.
func (t *Transport) Base(rt http.RoundTripper) *Transport {
	t.base = rt
	return t
}

// Client wraps the transport in an http.Client with the given timeout.
func (t *Transport) Client(timeout time.Duration) *http.Client {
	return &http.Client{Transport: t, Timeout: timeout}
}

// Partition makes every request to host (as it appears in the request
// URL, e.g. "127.0.0.1:8081") fail deterministically until Heal.
func (t *Transport) Partition(host string) {
	t.mu.Lock()
	t.partitioned[host] = true
	t.mu.Unlock()
}

// Heal lifts a partition.
func (t *Transport) Heal(host string) {
	t.mu.Lock()
	delete(t.partitioned, host)
	t.mu.Unlock()
}

// Counts snapshots the injection tallies.
func (t *Transport) Counts() Counts {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts
}

// Hash salts separating the per-kind decision streams.
const (
	saltDrop     = 0x44524f50 // "DROP"
	saltDelay    = 0x44454c59 // "DELY"
	saltErr      = 0x45525253 // "ERRS"
	saltTruncate = 0x5452554e // "TRUN"
)

// splitmix64 is the SplitMix64 finalizer (same construction as
// internal/pim/fault and cluster.RingKey).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds the arguments into one hash value.
func mix(xs ...uint64) uint64 {
	h := uint64(0x51_7cc1b727220a95)
	for _, x := range xs {
		h = splitmix64(h ^ x)
	}
	return h
}

// u01 maps a hash to a uniform float64 in [0,1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// hit decides one fault kind for one (route, attempt).
func (t *Transport) hit(salt, routeHash, attempt uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	return u01(mix(t.cfg.Seed, salt, routeHash, attempt)) < prob
}

// fnv is FNV-1a over a string.
func fnv(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// RouteOf canonicalizes a request to its chaos route: "METHOD /path",
// with a body digest suffix when the request carries a replayable body
// (so two jobs POSTed to the same endpoint are distinct routes with
// independent attempt streams). The host is deliberately excluded —
// ephemeral test ports must not perturb the decision stream.
func RouteOf(req *http.Request) string {
	route := req.Method + " " + req.URL.Path
	if req.GetBody != nil && req.ContentLength > 0 {
		if rd, err := req.GetBody(); err == nil {
			b, err := io.ReadAll(rd)
			if err == nil && len(b) > 0 {
				route += fmt.Sprintf("#%016x", fnv(string(b)))
			}
		}
	}
	return route
}

// truncatedBody yields a prefix of the underlying body, then fails the
// read with the chaos error so clients observe a mid-stream cut.
type truncatedBody struct {
	rc    io.ReadCloser
	left  int
	cause error
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, b.cause
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= n
	if err == io.EOF {
		// The body was shorter than the cut point; truncation is moot.
		return n, err
	}
	if b.left <= 0 && err == nil {
		err = b.cause
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// RoundTrip injects faults per (seed, route, attempt), in a fixed
// precedence order: partition, drop, synthesized error, then (on a real
// response) truncation; injected latency applies before the request is
// forwarded.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	route := RouteOf(req)
	if t.cfg.Only != "" && !strings.Contains(route, t.cfg.Only) {
		return t.base.RoundTrip(req)
	}

	t.mu.Lock()
	t.counts.Requests++
	t.attempts[route]++
	attempt := t.attempts[route]
	parted := t.partitioned[req.URL.Host]
	t.mu.Unlock()

	if parted {
		t.bump(func(c *Counts) { c.Partitions++ })
		return nil, &Error{Kind: "partition", Route: route, Attempt: attempt}
	}
	rh := fnv(route)
	if t.hit(saltDelay, rh, attempt, t.cfg.DelayProb) {
		t.bump(func(c *Counts) { c.Delays++ })
		time.Sleep(t.cfg.Delay)
	}
	if t.hit(saltDrop, rh, attempt, t.cfg.DropProb) {
		t.bump(func(c *Counts) { c.Drops++ })
		return nil, &Error{Kind: "drop", Route: route, Attempt: attempt}
	}
	if t.hit(saltErr, rh, attempt, t.cfg.ErrProb) {
		t.bump(func(c *Counts) { c.Errors++ })
		body := fmt.Sprintf(`{"code":"queue_full","message":"chaos: injected %d (route %s, attempt %d)","retryable":true}`,
			t.cfg.ErrStatus, route, attempt)
		return &http.Response{
			StatusCode:    t.cfg.ErrStatus,
			Status:        fmt.Sprintf("%d chaos", t.cfg.ErrStatus),
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.hit(saltTruncate, rh, attempt, t.cfg.TruncateProb) {
		t.bump(func(c *Counts) { c.Truncates++ })
		resp.Body = &truncatedBody{
			rc:    resp.Body,
			left:  8,
			cause: &Error{Kind: "truncate", Route: route, Attempt: attempt},
		}
	}
	return resp, nil
}

// bump applies one tally mutation under the lock.
func (t *Transport) bump(f func(*Counts)) {
	t.mu.Lock()
	f(&t.counts)
	t.mu.Unlock()
}
