package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// The coordinator's crash-safety layer: an append-only JSONL job journal.
// Every accepted job writes a "submit" record before its 202 leaves the
// building, every successful forward writes a "dispatch" record, and
// every terminal transition writes a "terminal" record carrying the
// worker's report bytes. On startup the journal is replayed: jobs with a
// terminal record are restored verbatim (their reports stay queryable
// byte-for-byte), jobs without one are re-admitted to the dispatch
// queues — a job that was mid-flight when the process died is re-POSTed
// under its idempotent id, so the owning worker returns the existing run
// instead of executing twice.
//
// Durability is fsync-batched (group commit): concurrent Appends ride a
// single write+fsync performed by one flusher goroutine, and each Append
// returns only after the batch containing its record is on disk. A crash
// can therefore lose only records whose Append had not yet returned —
// i.e. jobs whose submitters never saw a 202 and will retry under the
// same idempotent id.

// Journal record types.
const (
	JournalSubmit   = "submit"
	JournalDispatch = "dispatch"
	JournalTerminal = "terminal"
)

// JournalRecord is one JSONL line. Field order is fixed by the struct.
type JournalRecord struct {
	T      string          `json:"t"`                // submit | dispatch | terminal
	ID     string          `json:"id"`               // canonical job id
	Spec   json.RawMessage `json:"spec,omitempty"`   // submit: the canonical forward body
	Worker string          `json:"worker,omitempty"` // dispatch: the accepting worker
	Status string          `json:"status,omitempty"` // terminal: done | failed
	Error  string          `json:"error,omitempty"`  // terminal: failure message
	Cached bool            `json:"cached,omitempty"` // terminal: served from the result cache
	Result json.RawMessage `json:"result,omitempty"` // terminal: the worker's report bytes

	// Distributed-tracing payload of a terminal record: the job's latency
	// decomposition, the merged cluster-level Chrome trace (compacted by
	// the record marshal; re-indented on replay), and the digest of the
	// served bytes that proves the re-indent (see restoreTraceDoc).
	Stages      *StageSeconds   `json:"stages,omitempty"`
	Trace       json.RawMessage `json:"trace,omitempty"`
	TraceDigest string          `json:"trace_digest,omitempty"`
}

// Journal is the append-only JSONL file with group-commit durability.
type Journal struct {
	mu        sync.Mutex
	cond      *sync.Cond
	f         *os.File
	buf       []byte
	appendSeq int64 // last Append admitted to buf
	syncedSeq int64 // all appends <= this are fsynced
	err       error // first write/fsync error, latched
	closed    bool
	flusherWG sync.WaitGroup
	records   int64 // total records on disk (replayed + appended)
}

// OpenJournal opens (creating if needed) the journal at path, replays
// its existing records, and returns them in file order. A torn final
// line — the signature of a crash mid-write — is tolerated: it is
// TRUNCATED away (not just skipped) so the next append starts on a clean
// line instead of concatenating onto the fragment and being lost on the
// following replay. Any other parse failure is an error (the journal is
// corrupt and replay would silently lose jobs).
func OpenJournal(path string) (*Journal, []JournalRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: open journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: read journal: %w", err)
	}
	var recs []JournalRecord
	validEnd := 0 // byte offset just past the last well-formed record
	torn := false
	for off := 0; off < len(data); {
		lineEnd := len(data)
		terminated := false
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			lineEnd = off + nl + 1
			terminated = true
		}
		line := bytes.TrimSpace(data[off:lineEnd])
		if len(line) > 0 {
			var rec JournalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				torn = true
			} else {
				if torn {
					// A malformed line followed by a well-formed one is not a
					// torn tail — the file is corrupt in the middle.
					f.Close()
					return nil, nil, fmt.Errorf("cluster: journal %s corrupt mid-file", path)
				}
				if !terminated {
					// A parseable final record missing its newline: keep it,
					// but rewrite the terminator so the next append does not
					// share its line.
					torn = false
					recs = append(recs, rec)
					validEnd = lineEnd
					break
				}
				recs = append(recs, rec)
				validEnd = lineEnd
			}
		} else if !torn {
			validEnd = lineEnd
		}
		off = lineEnd
	}
	if validEnd < len(data) {
		if err := f.Truncate(int64(validEnd)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("cluster: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(validEnd), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: seek journal: %w", err)
	}
	if validEnd > 0 && data[validEnd-1] != '\n' {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("cluster: terminate journal tail: %w", err)
		}
	}
	j := &Journal{f: f, records: int64(len(recs))}
	j.cond = sync.NewCond(&j.mu)
	j.flusherWG.Add(1)
	go j.flusher()
	return j, recs, nil
}

// Append durably writes one record: it returns once the group commit
// containing the record has been written and fsynced (or with the
// journal's latched error).
func (j *Journal) Append(rec JournalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: marshal journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("cluster: journal closed")
	}
	if j.err != nil {
		return j.err
	}
	j.buf = append(j.buf, line...)
	j.buf = append(j.buf, '\n')
	j.appendSeq++
	my := j.appendSeq
	j.cond.Broadcast() // wake the flusher
	for j.syncedSeq < my && j.err == nil {
		j.cond.Wait()
	}
	if j.err != nil {
		return j.err
	}
	j.records++
	return nil
}

// flusher performs the group commits: it drains whatever accumulated in
// buf, writes and fsyncs it as one batch, then wakes every Append
// waiting on that batch.
func (j *Journal) flusher() {
	defer j.flusherWG.Done()
	j.mu.Lock()
	for {
		for len(j.buf) == 0 && !j.closed {
			j.cond.Wait()
		}
		if len(j.buf) == 0 && j.closed {
			j.mu.Unlock()
			return
		}
		batch := j.buf
		top := j.appendSeq
		j.buf = nil
		j.mu.Unlock()

		_, werr := j.f.Write(batch)
		if werr == nil {
			werr = j.f.Sync()
		}

		j.mu.Lock()
		if werr != nil && j.err == nil {
			j.err = werr
		}
		j.syncedSeq = top
		j.cond.Broadcast()
	}
}

// Records reports the total records on disk (replayed plus appended).
func (j *Journal) Records() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Err returns the latched write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes pending records and closes the file. Appends after Close
// fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.cond.Broadcast()
	j.mu.Unlock()
	j.flusherWG.Wait()
	j.mu.Lock()
	err := j.err
	j.mu.Unlock()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReplayStats summarizes a journal replay for /v1/readyz.
type ReplayStats struct {
	Records  int `json:"records"`  // journal records read at startup
	Restored int `json:"restored"` // terminal jobs restored with their reports
	Requeued int `json:"requeued"` // queued/in-flight jobs re-admitted for dispatch
	Dropped  int `json:"dropped"`  // records skipped (unparsable spec, duplicate id)
}
