package cluster

import (
	"sort"
	"sync"
	"time"
)

// Worker is one registered wavepimd instance.
type Worker struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	LastSeen time.Time `json:"last_seen"`
}

// Registry tracks cluster membership and drives the consistent-hash
// ring. Workers join and stay alive via Heartbeat, leave cleanly via
// Deregister (the draining handoff), and are evicted by TTL expiry or by
// MarkDead when a dispatch fails. Every membership change updates the
// ring, so job ownership rebalances with consistent hashing's minimal
// key movement.
type Registry struct {
	mu      sync.Mutex
	ttl     time.Duration
	now     func() time.Time
	ring    *Ring
	workers map[string]*Worker
}

// NewRegistry creates a registry. Workers expire ttl after their last
// heartbeat (ttl <= 0 selects 10s). replicas configures the ring
// (<= 0 selects DefaultRingReplicas); now is the clock (nil selects
// time.Now).
func NewRegistry(ttl time.Duration, replicas int, now func() time.Time) *Registry {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Registry{
		ttl:     ttl,
		now:     now,
		ring:    NewRing(replicas),
		workers: map[string]*Worker{},
	}
}

// Heartbeat registers or refreshes a worker and returns whether it was
// newly registered. A changed URL (worker restarted elsewhere) is
// adopted without ring churn — ring points depend only on the ID.
func (g *Registry) Heartbeat(id, url string) (isNew bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		g.workers[id] = &Worker{ID: id, URL: url, LastSeen: g.now()}
		g.ring.Add(id)
		return true
	}
	w.URL = url
	w.LastSeen = g.now()
	return false
}

// Deregister is the draining handoff: the worker leaves the ring
// immediately so no new jobs route to it while it finishes its queue.
// Returns whether the worker was a member.
func (g *Registry) Deregister(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropLocked(id)
}

// MarkDead evicts a worker a dispatcher found unreachable, without
// waiting for its TTL.
func (g *Registry) MarkDead(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.dropLocked(id)
}

func (g *Registry) dropLocked(id string) bool {
	if _, ok := g.workers[id]; !ok {
		return false
	}
	delete(g.workers, id)
	g.ring.Remove(id)
	return true
}

// Expire drops every worker whose last heartbeat is older than the TTL
// and returns their IDs (sorted).
func (g *Registry) Expire() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.expireLocked()
}

func (g *Registry) expireLocked() []string {
	cutoff := g.now().Add(-g.ttl)
	var dropped []string
	for id, w := range g.workers {
		if w.LastSeen.Before(cutoff) {
			dropped = append(dropped, id)
		}
	}
	sort.Strings(dropped)
	for _, id := range dropped {
		g.dropLocked(id)
	}
	return dropped
}

// OwnerOf expires stale workers, then resolves the ring owner of a
// canonical job id. The returned Worker is a copy.
func (g *Registry) OwnerOf(id string) (Worker, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireLocked()
	owner, ok := g.ring.OwnerOf(id)
	if !ok {
		return Worker{}, false
	}
	return *g.workers[owner], true
}

// Workers returns the live members sorted by ID (copies).
func (g *Registry) Workers() []Worker {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireLocked()
	out := make([]Worker, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
