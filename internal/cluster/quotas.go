package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Priority orders job classes; lower values drain first.
type Priority int8

const (
	PriorityHigh Priority = iota
	PriorityNormal
	PriorityLow
	numPriorities
)

// String returns the wire name.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityLow:
		return "low"
	}
	return "unknown"
}

// ParsePriority maps a wire name to its Priority; "" means normal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low":
		return PriorityLow, nil
	}
	return 0, fmt.Errorf("cluster: unknown priority %q (want high, normal, low)", s)
}

// QuotaConfig bounds one tenant: MaxQueued jobs waiting for dispatch and
// MaxActive jobs running on workers. Zero fields select the defaults
// (1024 queued, 256 active).
type QuotaConfig struct {
	MaxQueued int
	MaxActive int
}

func (q QuotaConfig) withDefaults() QuotaConfig {
	if q.MaxQueued <= 0 {
		q.MaxQueued = 1024
	}
	if q.MaxActive <= 0 {
		q.MaxActive = 256
	}
	return q
}

// ErrQuota is the typed admission rejection: the tenant is at its queue
// quota. Callers map it to HTTP 429.
type ErrQuota struct {
	Tenant string
	Kind   string // "queued"
	Limit  int
}

func (e *ErrQuota) Error() string {
	return fmt.Sprintf("cluster: tenant %q at %s quota (%d)", e.Tenant, e.Kind, e.Limit)
}

// QueuedJob is the admission queue's view of a job: identity, tenant,
// class, enqueue instant (stamped by the coordinator; preserved across
// Requeue so queue age measures the oldest wait, not the latest), and an
// opaque payload the dispatcher forwards.
type QueuedJob struct {
	ID       string
	Tenant   string
	Priority Priority
	Enqueued time.Time
	Payload  any
}

// Depths is a snapshot of the admission queues. Oldest holds the enqueue
// instant of the front job per class (zero when the class is empty or
// jobs carry no stamp) — the age feed for the queue-age gauge.
type Depths struct {
	Queued  int
	ByClass [int(numPriorities)]int
	Oldest  [int(numPriorities)]time.Time
	Active  int
}

// Admission is the coordinator's admission-control layer: per-tenant
// quotas decide whether a submission is accepted, and accepted jobs wait
// in per-priority FIFO queues until a dispatcher claims them with Next.
// It layers on the workers' own backpressure — a job the cluster admits
// may still bounce off a full worker queue and be retried, but a tenant
// can never occupy more than its share of the cluster's attention.
type Admission struct {
	mu     sync.Mutex
	notify chan struct{} // closed+replaced on every state change
	closed bool

	def    QuotaConfig
	tenant map[string]QuotaConfig

	queues [int(numPriorities)][]*QueuedJob
	queued map[string]int // per tenant
	active map[string]int // per tenant
}

// NewAdmission creates the admission layer with a default per-tenant
// quota (zero fields select the documented defaults).
func NewAdmission(def QuotaConfig) *Admission {
	return &Admission{
		notify: make(chan struct{}),
		def:    def.withDefaults(),
		tenant: map[string]QuotaConfig{},
		queued: map[string]int{},
		active: map[string]int{},
	}
}

// SetTenantQuota overrides the quota for one tenant.
func (a *Admission) SetTenantQuota(tenant string, q QuotaConfig) {
	a.mu.Lock()
	a.tenant[tenant] = q.withDefaults()
	a.mu.Unlock()
}

func (a *Admission) quotaLocked(tenant string) QuotaConfig {
	if q, ok := a.tenant[tenant]; ok {
		return q
	}
	return a.def
}

// wake signals every Next waiter. Caller holds mu.
func (a *Admission) wakeLocked() {
	close(a.notify)
	a.notify = make(chan struct{})
}

// Submit admits a job into its priority queue or rejects it with
// *ErrQuota (tenant at MaxQueued) / an error after Close.
func (a *Admission) Submit(j *QueuedJob) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return fmt.Errorf("cluster: admission closed")
	}
	q := a.quotaLocked(j.Tenant)
	if a.queued[j.Tenant] >= q.MaxQueued {
		return &ErrQuota{Tenant: j.Tenant, Kind: "queued", Limit: q.MaxQueued}
	}
	a.queued[j.Tenant]++
	a.queues[j.Priority] = append(a.queues[j.Priority], j)
	a.wakeLocked()
	return nil
}

// Restore re-admits a job during journal replay. It bypasses the queued
// quota: the job was already accepted (and journaled) by the previous
// incarnation, so a tightened quota must not silently drop it.
func (a *Admission) Restore(j *QueuedJob) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.queued[j.Tenant]++
	a.queues[j.Priority] = append(a.queues[j.Priority], j)
	a.wakeLocked()
}

// Requeue puts a claimed job back at the FRONT of its priority class
// (dispatch failed; the job must not lose its place) and releases the
// tenant's active slot taken by Next. After Close the job is dropped
// instead of re-enqueued — the dispatchers are exiting and a queue
// nobody will drain would only pin memory (a journaled coordinator
// re-admits the job on restart).
func (a *Admission) Requeue(j *QueuedJob) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active[j.Tenant] > 0 {
		a.active[j.Tenant]--
	}
	if a.closed {
		return
	}
	a.queued[j.Tenant]++
	a.queues[j.Priority] = append([]*QueuedJob{j}, a.queues[j.Priority]...)
	a.wakeLocked()
}

// Done releases a tenant's active slot once its job reached a terminal
// state.
func (a *Admission) Done(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active[tenant] > 0 {
		a.active[tenant]--
	}
	a.wakeLocked()
}

// pickLocked removes and returns the first eligible job: highest
// priority first, FIFO within a class, skipping jobs whose tenant is at
// its MaxActive limit.
func (a *Admission) pickLocked() *QueuedJob {
	for p := range a.queues {
		for i, j := range a.queues[p] {
			if a.active[j.Tenant] >= a.quotaLocked(j.Tenant).MaxActive {
				continue
			}
			a.queues[p] = append(a.queues[p][:i], a.queues[p][i+1:]...)
			a.queued[j.Tenant]--
			a.active[j.Tenant]++
			return j
		}
	}
	return nil
}

// Next blocks until an eligible job is available (claiming one of its
// tenant's active slots) or until ctx is canceled / the admission layer
// is closed, in which case ok is false.
func (a *Admission) Next(ctx context.Context) (j *QueuedJob, ok bool) {
	for {
		a.mu.Lock()
		if j := a.pickLocked(); j != nil {
			a.mu.Unlock()
			return j, true
		}
		if a.closed {
			a.mu.Unlock()
			return nil, false
		}
		wait := a.notify
		a.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// Depths snapshots queue occupancy.
func (a *Admission) Depths() Depths {
	a.mu.Lock()
	defer a.mu.Unlock()
	var d Depths
	for p := range a.queues {
		d.ByClass[p] = len(a.queues[p])
		d.Queued += len(a.queues[p])
		if len(a.queues[p]) > 0 {
			d.Oldest[p] = a.queues[p][0].Enqueued
		}
	}
	for _, n := range a.active {
		d.Active += n
	}
	return d
}

// Close rejects further submissions and unblocks every Next waiter.
func (a *Admission) Close() {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		a.wakeLocked()
	}
	a.mu.Unlock()
}
