package cluster

import (
	"bytes"
	"strings"
	"testing"

	"wavepim/internal/obs"
)

// TestMergePromGolden pins the merged exposition byte-for-byte: families
// union-sorted by name, one TYPE header each, every worker sample
// relabeled with worker="...", label keys sorted, samples sorted within
// a family.
func TestMergePromGolden(t *testing.T) {
	w1 := strings.Join([]string{
		`# TYPE wavepimd_runs_total counter`,
		`wavepimd_runs_total{status="done"} 3`,
		`wavepimd_runs_total{status="failed"} 1`,
		`# TYPE wavepimd_queue_depth gauge`,
		`wavepimd_queue_depth 2`,
		``,
	}, "\n")
	w2 := strings.Join([]string{
		`# TYPE sim_fault_rung_events_total counter`,
		`sim_fault_rung_events_total{rung="ecc"} 7`,
		`# TYPE wavepimd_runs_total counter`,
		`wavepimd_runs_total{status="done"} 5`,
		``,
	}, "\n")
	var out bytes.Buffer
	err := MergeProm(&out, []PromSource{
		{Label: "w2", Text: w2}, // source order must not matter
		{Label: "w1", Text: w1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE sim_fault_rung_events_total counter`,
		`sim_fault_rung_events_total{rung="ecc",worker="w2"} 7`,
		`# TYPE wavepimd_queue_depth gauge`,
		`wavepimd_queue_depth{worker="w1"} 2`,
		`# TYPE wavepimd_runs_total counter`,
		`wavepimd_runs_total{status="done",worker="w1"} 3`,
		`wavepimd_runs_total{status="done",worker="w2"} 5`,
		`wavepimd_runs_total{status="failed",worker="w1"} 1`,
		``,
	}, "\n")
	if out.String() != want {
		t.Fatalf("merged exposition:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestMergePromDeterministic: merging the same sources in any order
// yields identical bytes.
func TestMergePromDeterministic(t *testing.T) {
	srcs := []PromSource{
		{Label: "b", Text: "# TYPE m counter\nm{x=\"1\"} 2\n"},
		{Label: "a", Text: "# TYPE m counter\nm{x=\"1\"} 4\nm 9\n"},
		{Label: "", Text: "# TYPE coord_up gauge\ncoord_up 1\n"},
	}
	var fwd, rev bytes.Buffer
	if err := MergeProm(&fwd, srcs); err != nil {
		t.Fatal(err)
	}
	if err := MergeProm(&rev, []PromSource{srcs[2], srcs[1], srcs[0]}); err != nil {
		t.Fatal(err)
	}
	if fwd.String() != rev.String() {
		t.Fatalf("order-dependent merge:\n%s\nvs\n%s", fwd.String(), rev.String())
	}
	if !strings.Contains(fwd.String(), "coord_up 1\n") {
		t.Fatalf("unlabeled source lost: %s", fwd.String())
	}
}

// TestMergePromHistogram: _bucket/_sum/_count samples stay under their
// family's single TYPE header and keep the le label next to worker.
func TestMergePromHistogram(t *testing.T) {
	src := strings.Join([]string{
		`# TYPE lat_seconds histogram`,
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		`lat_seconds_sum 0.3`,
		`lat_seconds_count 2`,
		``,
	}, "\n")
	var out bytes.Buffer
	if err := MergeProm(&out, []PromSource{{Label: "w1", Text: src}}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		`# TYPE lat_seconds histogram`,
		`lat_seconds_bucket{le="+Inf",worker="w1"} 2`,
		`lat_seconds_bucket{le="0.1",worker="w1"} 1`,
		`lat_seconds_sum{worker="w1"} 0.3`,
		`lat_seconds_count{worker="w1"} 2`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
	if strings.Count(got, "# TYPE") != 1 {
		t.Fatalf("histogram family split:\n%s", got)
	}
}

// TestMergePromEscapedLabels: label values containing escaped quotes,
// commas, and braces survive relabeling intact.
func TestMergePromEscapedLabels(t *testing.T) {
	src := "# TYPE m counter\nm{msg=\"a\\\"b,c}d\"} 1\n"
	var out bytes.Buffer
	if err := MergeProm(&out, []PromSource{{Label: "w", Text: src}}); err != nil {
		t.Fatal(err)
	}
	want := "m{msg=\"a\\\"b,c}d\",worker=\"w\"} 1\n"
	if !strings.Contains(out.String(), want) {
		t.Fatalf("escaped label mangled:\n%s\nwant contains %q", out.String(), want)
	}
}

// TestMergePromTypeConflict: the same family advertised with different
// types across workers is an error, not silent corruption.
func TestMergePromTypeConflict(t *testing.T) {
	err := MergeProm(&bytes.Buffer{}, []PromSource{
		{Label: "w1", Text: "# TYPE m counter\nm 1\n"},
		{Label: "w2", Text: "# TYPE m gauge\nm 2\n"},
	})
	if err == nil {
		t.Fatal("type conflict not surfaced")
	}
}

// TestMergePromMalformed: garbage input is rejected with an error naming
// the offending source.
func TestMergePromMalformed(t *testing.T) {
	err := MergeProm(&bytes.Buffer{}, []PromSource{
		{Label: "w1", Text: "no_type_header 1\n"},
	})
	if err == nil {
		t.Fatal("sample without TYPE accepted")
	}
	err = MergeProm(&bytes.Buffer{}, []PromSource{
		{Label: "w1", Text: "# TYPE m counter\nm{unterminated 1\n"},
	})
	if err == nil {
		t.Fatal("malformed sample accepted")
	}
	if !strings.Contains(err.Error(), "w1") {
		t.Fatalf("error does not name the source: %v", err)
	}
}

// TestMergePromRoundTripsObsRegistry: the merger accepts everything the
// repo's own WriteProm emits — the coordinator aggregates real worker
// registries, so the formats must stay in lockstep.
func TestMergePromRoundTripsObsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.CounterVec("sim.fault.rung_events", "rung").With("ecc").Inc()
	reg.Gauge("wavepimd.queue_depth").Set(3)
	reg.Histogram("wavepimd.run_wall_seconds").Observe(0.25)
	var expo bytes.Buffer
	if err := reg.WriteProm(&expo); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := MergeProm(&out, []PromSource{{Label: "w0", Text: expo.String()}}); err != nil {
		t.Fatalf("merger rejects obs exposition: %v\n%s", err, expo.String())
	}
	for _, want := range []string{
		`sim_fault_rung_events_total{rung="ecc",worker="w0"} 1`,
		`wavepimd_queue_depth{worker="w0"} 3`,
		`wavepimd_run_wall_seconds_count{worker="w0"} 1`,
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
}
