package cluster_test

// Coordinator observability e2e: the job-lifecycle event log
// (job.submit / job.dispatch / job.retry / job.terminal) and the
// automatic flight dump on retry-budget exhaustion, driven through a
// real cluster with a seeded partition.

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"wavepim/internal/cluster/chaos"
	"wavepim/internal/cluster/trace"
	"wavepim/internal/obs/eventlog"
)

// syncBuf is a goroutine-safe bytes.Buffer: dispatch loops log
// concurrently.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestCoordinatorEventLogAndFlightDump(t *testing.T) {
	var logBuf, flightBuf syncBuf
	tr := chaos.New(chaos.Config{Seed: 15, Only: "POST /v1/runs"})
	tc := startCluster(t, 1, clusterOptions{
		workers: 1, dispatchers: 2,
		client:     tr.Client(30 * time.Second),
		maxRetries: 2,
		backoffCap: 20 * time.Millisecond,
		log:        eventlog.New(&logBuf, eventlog.Info),
		flightW:    &flightBuf,
	})

	// Happy path first: submit → dispatch → terminal, all logged.
	code, body := tc.submit(t, `{"equation":"acoustic","steps":2,"id":"obs-ok-1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if status, b := tc.waitJob(t, "obs-ok-1", 30*time.Second); status != "done" {
		t.Fatalf("job: %s %s", status, b)
	}
	for _, want := range []string{
		`"event":"job.submit"`, `"job":"obs-ok-1"`,
		`"event":"job.dispatch"`, `"worker":"w1"`,
		`"event":"job.terminal"`, `"status":"done"`,
		// lifecycle lines carry the job's trace id for correlation
		fmt.Sprintf(`"trace":"%016x"`, trace.ID("obs-ok-1")),
	} {
		if !strings.Contains(logBuf.String(), want) {
			t.Fatalf("event log missing %q:\n%s", want, logBuf.String())
		}
	}

	// Partition the worker: the next job bleeds its 2-attempt budget dry,
	// logging retries and snapshotting the flight recorder on exhaustion.
	host := strings.TrimPrefix(tc.workers["w1"].ts.URL, "http://")
	tr.Partition(host)
	code, body = tc.submit(t, `{"equation":"acoustic","steps":3,"id":"obs-doomed-1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if status, b := tc.waitJob(t, "obs-doomed-1", 30*time.Second); status != "failed" {
		t.Fatalf("partitioned job: %s %s", status, b)
	}
	logs := logBuf.String()
	for _, want := range []string{
		`"event":"job.retry"`, `"job":"obs-doomed-1"`, `"backoff_ms"`,
		`"status":"failed"`, "retries exhausted",
	} {
		if !strings.Contains(logs, want) {
			t.Fatalf("event log missing %q:\n%s", want, logs)
		}
	}
	dump := flightBuf.String()
	if !strings.Contains(dump, `"reason": "retries-exhausted"`) ||
		!strings.Contains(dump, `"run": "obs-doomed-1"`) {
		t.Fatalf("flight dump missing exhaustion snapshot:\n%s", dump)
	}
	// The dump's event window includes the doomed job's retry lines, and
	// no ephemeral host leaks into any of it.
	if !strings.Contains(dump, "job.retry") {
		t.Fatalf("flight dump window lacks the retry events:\n%s", dump)
	}
	for name, blob := range map[string]string{"event log": logs, "flight dump": dump} {
		if strings.Contains(blob, "127.0.0.1") {
			t.Fatalf("%s leaks a host:\n%s", name, blob)
		}
	}
}
