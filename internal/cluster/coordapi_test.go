package cluster_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"wavepim/internal/cluster"
)

// noFollow surfaces 3xx responses instead of following them, so the
// legacy-redirect assertions see the 308 itself.
var noFollow = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	},
}

func decodeEnvelope(t *testing.T, resp *http.Response) cluster.APIError {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var e cluster.APIError
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatalf("error body is not the envelope: %v (%s)", err, b)
	}
	if e.Code == "" || e.Message == "" {
		t.Fatalf("envelope missing code or message: %s", b)
	}
	return e
}

// TestCoordV1Surface: every coordinator endpoint answers at its /v1
// path, and every legacy unversioned path answers a 308 into /v1.
func TestCoordV1Surface(t *testing.T) {
	tc := startCluster(t, 1, clusterOptions{})
	code, body := tc.submit(t, `{"equation":"acoustic","steps":1,"topology":"torus"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &acc); err != nil {
		t.Fatal(err)
	}
	id := acc.ID
	if status, _ := tc.waitJob(t, id, 30*time.Second); status != "done" {
		t.Fatalf("job %s finished %q, want done", id, status)
	}

	for _, path := range []string{
		"/v1/jobs", "/v1/jobs/" + id, "/v1/jobs/" + id + "/events",
		"/v1/jobs/" + id + "/trace",
		"/v1/workers", "/v1/metrics", "/v1/healthz", "/v1/readyz",
	} {
		resp, err := noFollow.Get(tc.coordTS.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d, want 200", path, resp.StatusCode)
		}
	}

	for _, tc2 := range []struct{ method, path, want string }{
		{"POST", "/jobs", "/v1/jobs"},
		{"GET", "/jobs", "/v1/jobs"},
		{"GET", "/jobs/" + id, "/v1/jobs/" + id},
		{"POST", "/register", "/v1/register"},
		{"POST", "/deregister", "/v1/deregister"},
		{"GET", "/workers", "/v1/workers"},
		{"GET", "/metrics", "/v1/metrics"},
		{"GET", "/healthz", "/v1/healthz"},
		{"GET", "/readyz", "/v1/readyz"},
	} {
		req, err := http.NewRequest(tc2.method, tc.coordTS.URL+tc2.path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noFollow.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s %s: %d, want 308", tc2.method, tc2.path, resp.StatusCode)
			continue
		}
		if loc := resp.Header.Get("Location"); loc != tc2.want {
			t.Errorf("%s %s: Location %q, want %q", tc2.method, tc2.path, loc, tc2.want)
		}
	}
}

// TestCoordErrorEnvelope: coordinator error paths answer the typed
// {code, message, retryable} envelope.
func TestCoordErrorEnvelope(t *testing.T) {
	tc := startCluster(t, 1, clusterOptions{})
	for _, c := range []struct {
		name, method, path, body string
		status                   int
		code                     string
		retryable                bool
	}{
		{"bad JSON", "POST", "/v1/jobs", `{`, 400, cluster.CodeBadRequest, false},
		{"unknown equation", "POST", "/v1/jobs", `{"equation":"navier-stokes"}`, 400, cluster.CodeBadRequest, false},
		{"unknown topology", "POST", "/v1/jobs", `{"equation":"acoustic","topology":"clos"}`, 400, cluster.CodeBadRequest, false},
		{"missing job", "GET", "/v1/jobs/nope", "", 404, cluster.CodeNotFound, false},
		{"missing job events", "GET", "/v1/jobs/nope/events", "", 404, cluster.CodeNotFound, false},
	} {
		var body io.Reader
		if c.body != "" {
			body = strings.NewReader(c.body)
		}
		req, err := http.NewRequest(c.method, tc.coordTS.URL+c.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noFollow.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
		e := decodeEnvelope(t, resp)
		if e.Code != c.code || e.Retryable != c.retryable {
			t.Errorf("%s: envelope {%s retryable=%v}, want {%s retryable=%v}",
				c.name, e.Code, e.Retryable, c.code, c.retryable)
		}
	}
}
