package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWorker is a minimal wavepimd stand-in: POST /v1/runs accepts,
// GET /v1/runs/{id} answers with a programmable status.
type fakeWorker struct {
	ts     *httptest.Server
	posts  atomic.Int64
	status atomic.Value // string: "running", "done", "failed"
	reject atomic.Int64 // while > 0, POSTs answer 503 and decrement
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{}
	fw.status.Store("done")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, req *http.Request) {
		fw.posts.Add(1)
		if fw.reject.Load() > 0 {
			fw.reject.Add(-1)
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		var spec JobSpec
		json.NewDecoder(req.Body).Decode(&spec)
		json.NewEncoder(w).Encode(map[string]string{"id": spec.ID})
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, req *http.Request) {
		st := fw.status.Load().(string)
		json.NewEncoder(w).Encode(map[string]string{
			"id": req.PathValue("id"), "status": st,
		})
	})
	fw.ts = httptest.NewServer(mux)
	t.Cleanup(fw.ts.Close)
	return fw
}

// register adds the fake worker to the coordinator's ring directly (no
// heartbeat loop: these are dispatch unit tests).
func (fw *fakeWorker) register(c *Coordinator, id string) {
	c.reg.Heartbeat(id, fw.ts.URL)
}

func waitTerminal(t *testing.T, c *Coordinator, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j, ok := c.Job(id); ok {
			v := j.view()
			if v.Status == "done" || v.Status == "failed" {
				return v
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never terminal", id)
	return JobView{}
}

// TestRetryBudgetExhausted: a job whose owner never stops bouncing it
// terminates as "failed" with a typed *ErrRetriesExhausted after exactly
// MaxRetries attempts — it does not spin forever.
func TestRetryBudgetExhausted(t *testing.T) {
	fw := newFakeWorker(t)
	fw.reject.Store(1 << 30) // bounce every POST
	c := NewCoordinator(CoordinatorOptions{
		Dispatchers: 1, MaxRetries: 3, BackoffBase: time.Millisecond,
		BackoffCap: 2 * time.Millisecond, TTL: time.Minute,
		Breaker: BreakerConfig{Threshold: 100}, // keep the breaker out of this test
	})
	t.Cleanup(c.Close)
	fw.register(c, "w1")

	j, _, err := c.Submit(JobSpec{ID: "budget-1", Equation: "acoustic", Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, c, "budget-1", 10*time.Second)
	if v.Status != "failed" {
		t.Fatalf("status %s", v.Status)
	}
	if v.Attempts != 3 {
		t.Fatalf("attempts %d, want 3", v.Attempts)
	}
	var ex *ErrRetriesExhausted
	if !errors.As(j.Err(), &ex) {
		t.Fatalf("terminal error %v is not *ErrRetriesExhausted", j.Err())
	}
	if ex.ID != "budget-1" || ex.Attempts != 3 {
		t.Fatalf("exhausted %+v", ex)
	}
	if got := fw.posts.Load(); got != 3 {
		t.Fatalf("worker saw %d POSTs, want 3", got)
	}
}

// TestRetryRecovers: a worker that bounces twice then accepts yields a
// done job with attempts=2 — the budget charges only real failures.
func TestRetryRecovers(t *testing.T) {
	fw := newFakeWorker(t)
	fw.reject.Store(2)
	c := NewCoordinator(CoordinatorOptions{
		Dispatchers: 1, MaxRetries: 10, BackoffBase: time.Millisecond,
		BackoffCap: 2 * time.Millisecond, TTL: time.Minute,
		Breaker: BreakerConfig{Threshold: 100},
	})
	t.Cleanup(c.Close)
	fw.register(c, "w1")
	if _, _, err := c.Submit(JobSpec{ID: "recover-1", Equation: "acoustic", Steps: 2}); err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, c, "recover-1", 10*time.Second)
	if v.Status != "done" || v.Attempts != 2 {
		t.Fatalf("view %+v", v)
	}
}

// TestRetryBackoffDeterministic: same (seed, id, attempt) → same delay;
// the delay stays within [0.5, 1.0) of the capped exponential raw value;
// different seeds jitter differently.
func TestRetryBackoffDeterministic(t *testing.T) {
	base, cap := 10*time.Millisecond, 2*time.Second
	for attempt := 1; attempt <= 12; attempt++ {
		a := RetryBackoff(7, "job-x", attempt, base, cap)
		b := RetryBackoff(7, "job-x", attempt, base, cap)
		if a != b {
			t.Fatalf("attempt %d nondeterministic: %v vs %v", attempt, a, b)
		}
		raw := base
		for i := 1; i < attempt && raw < cap; i++ {
			raw *= 2
		}
		if raw > cap {
			raw = cap
		}
		if a < raw/2 || a >= raw {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, a, raw/2, raw)
		}
	}
	if RetryBackoff(1, "job-x", 3, base, cap) == RetryBackoff(2, "job-x", 3, base, cap) {
		t.Fatal("different seeds produced identical jitter")
	}
	if RetryBackoff(1, "job-x", 3, base, cap) == RetryBackoff(1, "job-y", 3, base, cap) {
		t.Fatal("different jobs produced identical jitter")
	}
}

// TestSanitizeCause strips url.Error wrappers so ephemeral ports never
// reach job-table error strings.
func TestSanitizeCause(t *testing.T) {
	inner := errors.New("connection refused")
	wrapped := &url.Error{Op: "Post", URL: "http://127.0.0.1:49152/v1/runs", Err: inner}
	if got := sanitizeCause(wrapped); got != inner {
		t.Fatalf("sanitized to %v", got)
	}
	plain := errors.New("plain")
	if got := sanitizeCause(plain); got != plain {
		t.Fatalf("plain error mangled: %v", got)
	}
}

// TestBreakerShieldsDispatch: once a worker's circuit opens, dispatch
// stops reaching it — the worker sees no POSTs while open, and jobs
// flow again after it recovers through the half-open probe.
func TestBreakerShieldsDispatch(t *testing.T) {
	fw := newFakeWorker(t)
	fw.reject.Store(2) // exactly two bounces open the threshold-2 breaker
	c := NewCoordinator(CoordinatorOptions{
		Dispatchers: 1, MaxRetries: 50, BackoffBase: time.Millisecond,
		BackoffCap: 5 * time.Millisecond, TTL: time.Minute,
		Breaker: BreakerConfig{Threshold: 2, Probe: 20 * time.Millisecond},
	})
	t.Cleanup(c.Close)
	fw.register(c, "w1")
	if _, _, err := c.Submit(JobSpec{ID: "brk-1", Equation: "acoustic", Steps: 2}); err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, c, "brk-1", 10*time.Second)
	if v.Status != "done" {
		t.Fatalf("view %+v", v)
	}
	if st := c.Breakers().State("w1"); st != BreakerClosed {
		t.Fatalf("breaker %v after recovery", st)
	}
	// The circuit opened after the second bounce, so the third POST (the
	// success) must have waited for the probe window; total POSTs = 3.
	if got := fw.posts.Load(); got != 3 {
		t.Fatalf("worker saw %d POSTs, want 3 (breaker did not shield)", got)
	}
}

// TestDeadlinePropagation: a job whose DeadlineMS (plus grace) expires
// while its worker never finishes terminates as failed with a deadline
// error instead of polling forever.
func TestDeadlinePropagation(t *testing.T) {
	fw := newFakeWorker(t)
	fw.status.Store("running") // never finishes
	c := NewCoordinator(CoordinatorOptions{
		Dispatchers: 1, PollInterval: 2 * time.Millisecond, TTL: time.Minute,
		DeadlineGrace: 50 * time.Millisecond,
	})
	t.Cleanup(c.Close)
	fw.register(c, "w1")
	if _, _, err := c.Submit(JobSpec{ID: "dl-1", Equation: "acoustic", Steps: 2, DeadlineMS: 20}); err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, c, "dl-1", 10*time.Second)
	if v.Status != "failed" {
		t.Fatalf("view %+v", v)
	}
	if want := "deadline exceeded"; !strings.Contains(v.Error, want) {
		t.Fatalf("error %q lacks %q", v.Error, want)
	}
}

// TestCloseRacesPollLoop: Close returns promptly while a dispatcher is
// mid-poll on a never-finishing run (the poll loop must observe ctx
// cancellation, not block on the worker).
func TestCloseRacesPollLoop(t *testing.T) {
	fw := newFakeWorker(t)
	fw.status.Store("running")
	c := NewCoordinator(CoordinatorOptions{
		Dispatchers: 2, PollInterval: 2 * time.Millisecond, TTL: time.Minute,
	})
	fw.register(c, "w1")
	if _, _, err := c.Submit(JobSpec{ID: "race-1", Equation: "acoustic", Steps: 2}); err != nil {
		t.Fatal(err)
	}
	// Wait until the job is genuinely in the poll loop.
	deadline := time.Now().Add(5 * time.Second)
	for fw.posts.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fw.posts.Load() == 0 {
		t.Fatal("job never dispatched")
	}
	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on an in-flight poll loop")
	}
}

// TestRequeueAfterClose: a Requeue that loses the race with Close drops
// the job instead of parking it in a queue nobody will drain.
func TestRequeueAfterClose(t *testing.T) {
	a := NewAdmission(QuotaConfig{})
	if err := a.Submit(&QueuedJob{ID: "q1", Tenant: "t"}); err != nil {
		t.Fatal(err)
	}
	j, ok := a.Next(context.Background())
	if !ok {
		t.Fatal("Next failed")
	}
	a.Close()
	a.Requeue(j)
	if d := a.Depths(); d.Queued != 0 || d.Active != 0 {
		t.Fatalf("depths after closed requeue: %+v", d)
	}
	// Restore after Close is likewise a no-op.
	a.Restore(&QueuedJob{ID: "q2", Tenant: "t"})
	if d := a.Depths(); d.Queued != 0 {
		t.Fatalf("restore after close enqueued: %+v", d)
	}
}

// TestAdmissionRestoreBypassesQuota: replayed jobs re-admit even when
// the tenant is at its queued quota — they were already accepted once.
func TestAdmissionRestoreBypassesQuota(t *testing.T) {
	a := NewAdmission(QuotaConfig{MaxQueued: 1})
	if err := a.Submit(&QueuedJob{ID: "q1", Tenant: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(&QueuedJob{ID: "q2", Tenant: "t"}); err == nil {
		t.Fatal("second submit beat the quota")
	}
	a.Restore(&QueuedJob{ID: "q2", Tenant: "t"})
	if d := a.Depths(); d.Queued != 2 {
		t.Fatalf("depths %+v, want 2 queued", d)
	}
}

// TestJobEviction: the tracked-job bound evicts the oldest terminal
// jobs (and their cache entries) and counts them.
func TestJobEviction(t *testing.T) {
	fw := newFakeWorker(t)
	c := NewCoordinator(CoordinatorOptions{
		Dispatchers: 2, MaxJobs: 4, TTL: time.Minute,
		BackoffBase: time.Millisecond,
	})
	t.Cleanup(c.Close)
	fw.register(c, "w1")
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("evict-%d", i)
		if _, _, err := c.Submit(JobSpec{ID: id, Equation: "acoustic", Steps: 2 + i}); err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, c, id, 10*time.Second)
	}
	views := c.Jobs()
	if len(views) > 4 {
		t.Fatalf("job table holds %d jobs, bound is 4", len(views))
	}
	// The survivors are the newest.
	if views[len(views)-1].ID != "evict-7" {
		t.Fatalf("newest job evicted: %+v", views)
	}
	if _, ok := c.Job("evict-0"); ok {
		t.Fatal("oldest job survived the bound")
	}
	if got := c.metrics.Counter("wavepimctl.jobs_evicted").Value(); got < 4 {
		t.Fatalf("jobs_evicted = %d, want >= 4", got)
	}
}

// TestReplayRestoresAndRequeues: a coordinator rebuilt from journal
// records restores terminal jobs verbatim and re-admits the rest.
func TestReplayRestoresAndRequeues(t *testing.T) {
	fw := newFakeWorker(t)
	specA, _ := json.Marshal(JobSpec{ID: "ra", Equation: "acoustic", Steps: 2})
	specB, _ := json.Marshal(JobSpec{ID: "rb", Equation: "acoustic", Steps: 3})
	report := json.RawMessage(`{"id":"ra","status":"done","report":"verbatim-bytes"}`)
	recs := []JournalRecord{
		{T: JournalSubmit, ID: "ra", Spec: specA},
		{T: JournalDispatch, ID: "ra", Worker: "w1"},
		{T: JournalTerminal, ID: "ra", Status: "done", Result: report},
		{T: JournalSubmit, ID: "rb", Spec: specB},
		{T: JournalDispatch, ID: "rb", Worker: "w1"}, // mid-flight at crash
	}
	c := NewCoordinator(CoordinatorOptions{
		Dispatchers: 1, TTL: time.Minute, BackoffBase: time.Millisecond,
		Replay: recs,
	})
	t.Cleanup(c.Close)
	fw.register(c, "w1")

	st := c.Replay()
	if st.Records != 5 || st.Restored != 1 || st.Requeued != 1 || st.Dropped != 0 {
		t.Fatalf("replay stats %+v", st)
	}
	// The terminal job's report is byte-identical.
	j, ok := c.Job("ra")
	if !ok {
		t.Fatal("restored job missing")
	}
	j.mu.Lock()
	got := string(j.result)
	j.mu.Unlock()
	if got != string(report) {
		t.Fatalf("restored report %q", got)
	}
	// The mid-flight job runs to completion on the re-registered worker.
	v := waitTerminal(t, c, "rb", 10*time.Second)
	if v.Status != "done" {
		t.Fatalf("requeued job %+v", v)
	}
	// Auto-ids skip past replayed jNNNN ids.
	c2 := NewCoordinator(CoordinatorOptions{
		Dispatchers: 1, TTL: time.Minute,
		Replay: []JournalRecord{{T: JournalSubmit, ID: "j0007", Spec: specA}},
	})
	t.Cleanup(c2.Close)
	jv, _, err := c2.Submit(JobSpec{Equation: "acoustic", Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if jv.id != "j0008" {
		t.Fatalf("auto id %q collided with replay space", jv.id)
	}
}
