package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// corpus returns the 10k-key corpus the remap properties are stated
// over.
func corpus() []string {
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = fmt.Sprintf("job-%d", i)
	}
	return keys
}

// bigCorpus returns a 100k-key corpus for the spread checks: at 64
// workers the ideal share is ~1562 keys, so the ±20% bound sits at ~8
// sampling standard deviations — the check measures the ring's balance,
// not multinomial luck. (With the 10k corpus a 64-worker share is ~156
// keys and ±20% is only ~2.5σ of pure sampling noise.)
func bigCorpus() []string {
	keys := make([]string, 100000)
	for i := range keys {
		keys[i] = fmt.Sprintf("job-%d", i)
	}
	return keys
}

func workerNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("worker-%02d", i)
	}
	return names
}

func ownersOf(r *Ring, keys []string) map[string]string {
	owners := make(map[string]string, len(keys))
	for _, k := range keys {
		o, ok := r.OwnerOf(k)
		if !ok {
			panic("ring empty")
		}
		owners[k] = o
	}
	return owners
}

// quickCfg gives every property a fixed pseudo-random source: the trials
// are reproducible, so a green run is green forever.
func quickCfg(seed int64, max int) *quick.Config {
	return &quick.Config{Rand: rand.New(rand.NewSource(seed)), MaxCount: max}
}

// TestRingSpreadUniform: at every worker count from 4 to 64, each worker
// owns within ±20% of the ideal share of the corpus.
func TestRingSpreadUniform(t *testing.T) {
	keys := bigCorpus()
	for n := 4; n <= 64; n *= 2 {
		r := NewRing(0)
		for _, w := range workerNames(n) {
			r.Add(w)
		}
		counts := map[string]int{}
		for _, owner := range ownersOf(r, keys) {
			counts[owner]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d workers own keys", n, len(counts))
		}
		ideal := float64(len(keys)) / float64(n)
		for w, c := range counts {
			dev := (float64(c) - ideal) / ideal
			if dev < -0.20 || dev > 0.20 {
				t.Errorf("n=%d: %s owns %d keys, ideal %.1f (%.1f%% off)",
					n, w, c, ideal, 100*dev)
			}
		}
	}
}

// TestRingSpreadUniformProperty: the spread bound holds for arbitrary
// (seeded-random) worker counts and name suffixes, not just the tidy
// power-of-two table above.
func TestRingSpreadUniformProperty(t *testing.T) {
	keys := bigCorpus()
	prop := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 4 + rng.Intn(61) // 4..64
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("node-%d-%d", seed, i))
		}
		counts := map[string]int{}
		for _, owner := range ownersOf(r, keys) {
			counts[owner]++
		}
		ideal := float64(len(keys)) / float64(n)
		for w, c := range counts {
			dev := (float64(c) - ideal) / ideal
			if dev < -0.20 || dev > 0.20 {
				t.Logf("seed=%d n=%d: %s owns %d (ideal %.1f, %.1f%% off)",
					seed, n, w, c, ideal, 100*dev)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(7, 25)); err != nil {
		t.Fatal(err)
	}
}

// TestRingAddRemapMinimal: adding one worker to an N-worker ring remaps
// fewer than 2/N of the corpus, and every remapped key moves TO the new
// worker (consistent hashing's minimal-disruption contract).
func TestRingAddRemapMinimal(t *testing.T) {
	keys := corpus()
	prop := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 4 + rng.Intn(61)
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("node-%d-%d", seed, i))
		}
		before := ownersOf(r, keys)
		r.Add("newcomer")
		after := ownersOf(r, keys)
		moved := 0
		for k, o := range after {
			if o != before[k] {
				if o != "newcomer" {
					t.Logf("seed=%d: key %s moved %s -> %s, not to newcomer",
						seed, k, before[k], o)
					return false
				}
				moved++
			}
		}
		bound := 2 * len(keys) / (n + 1)
		if moved >= bound {
			t.Logf("seed=%d n=%d: %d keys moved, bound %d", seed, n, moved, bound)
			return false
		}
		return moved > 0 // the newcomer must take a real share
	}
	if err := quick.Check(prop, quickCfg(11, 25)); err != nil {
		t.Fatal(err)
	}
}

// TestRingRemoveRemapMinimal: removing one worker remaps exactly that
// worker's keys (fewer than 2/N of the corpus), and the untouched keys
// keep their owner.
func TestRingRemoveRemapMinimal(t *testing.T) {
	keys := corpus()
	prop := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 4 + rng.Intn(61)
		names := make([]string, n)
		r := NewRing(0)
		for i := 0; i < n; i++ {
			names[i] = fmt.Sprintf("node-%d-%d", seed, i)
			r.Add(names[i])
		}
		before := ownersOf(r, keys)
		victim := names[rng.Intn(n)]
		r.Remove(victim)
		after := ownersOf(r, keys)
		moved := 0
		for k, o := range after {
			if o == victim {
				t.Logf("seed=%d: removed worker still owns %s", seed, k)
				return false
			}
			if o != before[k] {
				if before[k] != victim {
					t.Logf("seed=%d: key %s moved %s -> %s though %s was removed",
						seed, k, before[k], o, victim)
					return false
				}
				moved++
			}
		}
		bound := 2 * len(keys) / n
		if moved >= bound {
			t.Logf("seed=%d n=%d: %d keys moved, bound %d", seed, n, moved, bound)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(13, 25)); err != nil {
		t.Fatal(err)
	}
}

// TestRingDeterministic: ownership is a pure function of membership —
// insertion order does not matter, and rebuilding gives identical owners.
func TestRingDeterministic(t *testing.T) {
	keys := corpus()[:1000]
	a, b := NewRing(0), NewRing(0)
	names := workerNames(8)
	for _, w := range names {
		a.Add(w)
	}
	for i := len(names) - 1; i >= 0; i-- {
		b.Add(names[i])
	}
	for _, k := range keys {
		ao, _ := a.OwnerOf(k)
		bo, _ := b.OwnerOf(k)
		if ao != bo {
			t.Fatalf("owner of %s depends on insertion order: %s vs %s", k, ao, bo)
		}
	}
}

// TestRingEdgeCases: empty ring, duplicate adds, removing the last node.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.OwnerOf("job-1"); ok {
		t.Fatal("empty ring claims an owner")
	}
	r.Add("only")
	r.Add("only") // duplicate add is a no-op
	if r.Len() != 1 {
		t.Fatalf("Len after duplicate add = %d", r.Len())
	}
	if o, ok := r.OwnerOf("job-1"); !ok || o != "only" {
		t.Fatalf("single-node ring: %q %v", o, ok)
	}
	r.Remove("ghost") // removing an absent node is a no-op
	if r.Len() != 1 {
		t.Fatalf("Len after ghost remove = %d", r.Len())
	}
	r.Remove("only")
	if r.Len() != 0 {
		t.Fatalf("Len after final remove = %d", r.Len())
	}
	if _, ok := r.OwnerOf("job-1"); ok {
		t.Fatal("drained ring claims an owner")
	}
	if nodes := r.Nodes(); len(nodes) != 0 {
		t.Fatalf("drained ring lists nodes: %v", nodes)
	}
}

// TestRingNodesSorted: Nodes is sorted for deterministic listings.
func TestRingNodesSorted(t *testing.T) {
	r := NewRing(0)
	for _, w := range []string{"zeta", "alpha", "mid"} {
		r.Add(w)
	}
	nodes := r.Nodes()
	want := []string{"alpha", "mid", "zeta"}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
}
