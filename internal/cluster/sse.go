package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
)

// Server-sent-events framing for event-log streams. One JSONL event line
// becomes one SSE frame:
//
//	id: <sequence number>
//	event: <the line's "event" field>
//	data: <the JSON line, newline stripped>
//	<blank line>
//
// Frames are a pure function of (index, line), so a replayed tap yields
// byte-identical SSE output — the golden-stream tests depend on it.

// EventNameOf extracts the "event" field of a JSONL event line, or
// "message" (the SSE default) if the line does not parse.
func EventNameOf(line []byte) string {
	var probe struct {
		Event string `json:"event"`
	}
	if err := json.Unmarshal(line, &probe); err != nil || probe.Event == "" {
		return "message"
	}
	return probe.Event
}

// WriteSSEEvent writes one frame. The line's trailing newline (JSONL) is
// stripped; interior newlines cannot occur (the event log emits one
// line per event).
func WriteSSEEvent(w io.Writer, id int, line []byte) error {
	data := bytes.TrimRight(line, "\n")
	var buf bytes.Buffer
	buf.Grow(len(data) + 48)
	buf.WriteString("id: ")
	buf.Write(appendInt(nil, id))
	buf.WriteString("\nevent: ")
	buf.WriteString(EventNameOf(data))
	buf.WriteString("\ndata: ")
	buf.Write(data)
	buf.WriteString("\n\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// appendInt is strconv.AppendInt for non-negative ints without the
// import churn.
func appendInt(b []byte, i int) []byte {
	if i == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	n := len(tmp)
	for i > 0 {
		n--
		tmp[n] = byte('0' + i%10)
		i /= 10
	}
	return append(b, tmp[n:]...)
}

// SSEHeaders stamps the response headers every SSE endpoint shares.
func SSEHeaders(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
}

// ProxySSE streams an upstream SSE body to the client, flushing after
// every read so frames arrive live rather than buffered. Returns when
// the upstream closes or errors (client disconnects surface as write
// errors and end the copy too).
func ProxySSE(w http.ResponseWriter, upstream io.Reader) error {
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := upstream.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return werr
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
