package cluster_test

// Chaos end-to-end: the seeded fault-injecting transport wired into a
// real coordinator + worker cluster. The core claim under test is
// DETERMINISM: because every injection decision is a pure hash of
// (seed, route, attempt) — never of wall-clock time — two completely
// independent runs of the same seeded schedule finish with
// byte-identical job tables, retries, breaker trips and all. That is
// what makes a chaos failure reproducible from its seed alone.
//
// The scenarios run a single worker so ring ownership cannot depend on
// re-registration timing, and they confine injection to the dispatch
// POSTs ("Only: POST /v1/runs"): status-poll counts are inherently
// timing-dependent, so faulting them would make per-job attempt counts
// racy. Dispatch attempts are route-sequenced and are not.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"wavepim/internal/cluster"
	"wavepim/internal/cluster/chaos"
	"wavepim/internal/obs/eventlog"
	"wavepim/internal/serve"
)

// chaosScenario is one seeded fault schedule.
type chaosScenario struct {
	name       string
	cfg        chaos.Config
	maxRetries int  // 0: default (generous)
	partition  bool // partition the (single) worker for the whole run
	wantFailed bool // every job must exhaust its budget
}

// runChaosSchedule boots a fresh single-worker cluster behind the given
// chaos config, submits a fixed set of content-distinct jobs, waits for
// every one to reach a terminal state, and returns the final job table
// bytes plus the injection tallies.
func runChaosSchedule(t *testing.T, sc chaosScenario) (string, chaos.Counts) {
	t.Helper()
	tr := chaos.New(sc.cfg)
	tc := startCluster(t, 1, clusterOptions{
		workers: 2, dispatchers: 4,
		client:     tr.Client(30 * time.Second),
		seed:       sc.cfg.Seed,
		maxRetries: sc.maxRetries,
		backoffCap: 50 * time.Millisecond,
		breaker:    cluster.BreakerConfig{Threshold: 3, Probe: 20 * time.Millisecond},
	})
	if sc.partition {
		host := strings.TrimPrefix(tc.workers["w1"].ts.URL, "http://")
		tr.Partition(host)
	}

	var ids []string
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("chaos-%d", i)
		ids = append(ids, id)
		code, body := tc.submit(t, fmt.Sprintf(`{"equation":"acoustic","steps":%d,"id":%q}`, 2+i, id))
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", id, code, body)
		}
	}
	for _, id := range ids {
		status, body := tc.waitJob(t, id, 60*time.Second)
		if sc.wantFailed && status != "failed" {
			t.Fatalf("job %s survived a full partition: %s %s", id, status, body)
		}
		if !sc.wantFailed && status != "done" {
			t.Fatalf("job %s: %s %s", id, status, body)
		}
	}
	code, table := tc.get(t, "/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("jobs table: %d", code)
	}
	return normalizeStages(t, table), tr.Counts()
}

// normalizeStages zeroes the latency decomposition in a job table before
// byte-comparison: stage durations measure real elapsed wall time and
// legitimately differ between two runs of the same seeded schedule,
// while every other field (ids, statuses, attempts, digests, trace ids)
// is deterministic.
func normalizeStages(t *testing.T, table string) string {
	t.Helper()
	var views []cluster.JobView
	if err := json.Unmarshal([]byte(table), &views); err != nil {
		t.Fatalf("job table: %v: %s", err, table)
	}
	for i := range views {
		views[i].Stages = cluster.StageSeconds{}
	}
	b, err := json.Marshal(views)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestChaosSchedulesDeterministic: for each fault flavor, two fully
// independent cluster runs under the same seed end with byte-identical
// job tables — and the schedule really injected faults (the run is not
// vacuously clean).
func TestChaosSchedulesDeterministic(t *testing.T) {
	scenarios := []chaosScenario{
		{name: "drop", cfg: chaos.Config{Seed: 11, DropProb: 0.4, Only: "POST /v1/runs"}},
		{name: "delay_drop", cfg: chaos.Config{Seed: 12, DropProb: 0.3, DelayProb: 0.5,
			Delay: time.Millisecond, Only: "POST /v1/runs"}},
		{name: "flap_503", cfg: chaos.Config{Seed: 13, ErrProb: 0.5, Only: "POST /v1/runs"}},
		{name: "truncate", cfg: chaos.Config{Seed: 14, TruncateProb: 0.6, DropProb: 0.2,
			Only: "POST /v1/runs"}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			tableA, countsA := runChaosSchedule(t, sc)
			tableB, countsB := runChaosSchedule(t, sc)
			if tableA != tableB {
				t.Fatalf("same seed, divergent job tables:\n%s\nvs\n%s", tableA, tableB)
			}
			injectedA := countsA.Drops + countsA.Errors + countsA.Truncates
			injectedB := countsB.Drops + countsB.Errors + countsB.Truncates
			if injectedA == 0 {
				t.Fatalf("schedule injected nothing (counts %+v) — vacuous determinism", countsA)
			}
			if injectedA != injectedB {
				t.Fatalf("injection tallies diverge: %+v vs %+v", countsA, countsB)
			}
			// Retries really happened and are visible in the table.
			if !strings.Contains(tableA, `"attempts":`) {
				t.Fatalf("job table lacks attempts: %s", tableA)
			}
		})
	}
}

// TestChaosGoldenTable: gated by CHAOS_TABLE_OUT — runs one fixed
// seeded chaos schedule and writes the final job table to the named
// file. scripts/cluster_chaos_guard.sh invokes it in two SEPARATE test
// processes and byte-diffs the files: determinism across independent
// processes, not just goroutines.
func TestChaosGoldenTable(t *testing.T) {
	out := os.Getenv("CHAOS_TABLE_OUT")
	if out == "" {
		t.Skip("set CHAOS_TABLE_OUT to run the golden chaos table")
	}
	table, counts := runChaosSchedule(t, chaosScenario{
		name: "golden",
		cfg: chaos.Config{Seed: 20, DropProb: 0.35, ErrProb: 0.25,
			TruncateProb: 0.2, Only: "POST /v1/runs"},
	})
	if counts.Drops+counts.Errors+counts.Truncates == 0 {
		t.Fatalf("golden schedule injected nothing: %+v", counts)
	}
	if err := os.WriteFile(out, []byte(table), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosTraceSpans: under a seeded fault schedule that forces real
// retries, the merged trace of a retried job carries the retry attempt
// spans with their typed annotations, every coordinator span nests
// inside the root job span, and no ephemeral worker host leaks into the
// document.
func TestChaosTraceSpans(t *testing.T) {
	tr := chaos.New(chaos.Config{Seed: 13, ErrProb: 0.5, Only: "POST /v1/runs"})
	tc := startCluster(t, 1, clusterOptions{
		workers: 2, dispatchers: 4,
		client:     tr.Client(30 * time.Second),
		seed:       13,
		backoffCap: 50 * time.Millisecond,
		breaker:    cluster.BreakerConfig{Threshold: 3, Probe: 20 * time.Millisecond},
	})
	var ids []string
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("chaos-trace-%d", i)
		ids = append(ids, id)
		code, body := tc.submit(t, fmt.Sprintf(`{"equation":"acoustic","steps":%d,"id":%q}`, 2+i, id))
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", id, code, body)
		}
	}
	for _, id := range ids {
		if status, body := tc.waitJob(t, id, 60*time.Second); status != "done" {
			t.Fatalf("job %s: %s %s", id, status, body)
		}
	}
	_, table := tc.get(t, "/v1/jobs")
	var views []cluster.JobView
	if err := json.Unmarshal([]byte(table), &views); err != nil {
		t.Fatal(err)
	}
	var retried string
	for _, v := range views {
		if v.Attempts > 0 {
			retried = v.ID
			break
		}
	}
	if retried == "" {
		t.Fatalf("schedule produced no retried job — vacuous: %s", table)
	}
	code, doc := tc.get(t, "/v1/jobs/"+retried+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace %s: %d %s", retried, code, doc)
	}
	// Retry mechanics are visible: a second dispatch attempt, its typed
	// retry annotation, and the backoff wait between attempts.
	for _, want := range []string{`"name": "dispatch#1"`, `"annot": "retry: `, `"name": "backoff"`} {
		if !strings.Contains(doc, want) {
			t.Fatalf("retried job's trace missing %q:\n%s", want, doc)
		}
	}
	// Determinism hygiene: the sanitized causes must not leak the worker's
	// ephemeral host:port into the document.
	if strings.Contains(doc, "127.0.0.1") {
		t.Fatalf("trace leaks a host: %s", doc)
	}
	// Structural nesting: every coordinator (pid 1) span sits inside the
	// root job span's [ts, ts+dur] window. Worker events live on their own
	// process timeline and are exempt.
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	rootStart, rootEnd := -1.0, -1.0
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" && ev.Pid == 1 && ev.Name == "job" {
			rootStart, rootEnd = ev.Ts, ev.Ts+ev.Dur
		}
	}
	if rootStart < 0 {
		t.Fatalf("trace has no root job span: %s", doc)
	}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 {
			continue
		}
		if ev.Dur < 0 || ev.Ts < rootStart || ev.Ts+ev.Dur > rootEnd+1 { // +1µs: rounding slack
			t.Fatalf("span %s [%f, %f] escapes the root window [%f, %f]",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, rootStart, rootEnd)
		}
	}
}

// TestChaosPartitionExhaustsBudget: a fully partitioned worker bleeds
// every job's retry budget dry — each terminates as failed with the
// typed retries-exhausted error, exactly maxRetries attempts, and the
// outcome is byte-identical across two runs of the seed.
func TestChaosPartitionExhaustsBudget(t *testing.T) {
	sc := chaosScenario{
		name:       "partition",
		cfg:        chaos.Config{Seed: 15, Only: "POST /v1/runs"},
		maxRetries: 4,
		partition:  true,
		wantFailed: true,
	}
	tableA, countsA := runChaosSchedule(t, sc)
	tableB, _ := runChaosSchedule(t, sc)
	if tableA != tableB {
		t.Fatalf("partitioned runs diverge:\n%s\nvs\n%s", tableA, tableB)
	}
	if countsA.Partitions == 0 {
		t.Fatal("partition never fired")
	}
	var views []cluster.JobView
	if err := json.Unmarshal([]byte(tableA), &views); err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if v.Status != "failed" || v.Attempts != 4 {
			t.Fatalf("job %s: %+v (want failed after 4 attempts)", v.ID, v)
		}
		if !strings.Contains(v.Error, "retries exhausted after 4 attempts") ||
			!strings.Contains(v.Error, "chaos: partition") {
			t.Fatalf("job %s error %q", v.ID, v.Error)
		}
		// Determinism hygiene: no ephemeral port may leak into the table.
		if strings.Contains(v.Error, "127.0.0.1") {
			t.Fatalf("job %s error leaks a host: %q", v.ID, v.Error)
		}
	}
}

// swapHandler lets a test "restart" the coordinator behind a stable URL
// — workers keep heartbeating to the same address while the coordinator
// process behind it is replaced, exactly like a restart behind a VIP.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	h.ServeHTTP(w, req)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// TestJournalCrashRestartLosesNothing is the kill-and-restart e2e: a
// journaled coordinator accepts a mix of fast (finished) and slow
// (queued/mid-flight) jobs, "crashes", and a fresh coordinator replays
// the journal behind the same address. Zero accepted jobs may be lost:
// finished jobs come back with byte-identical reports, unfinished ones
// re-dispatch on their idempotent ids and run to completion.
func TestJournalCrashRestartLosesNothing(t *testing.T) {
	journalPath := t.TempDir() + "/journal.jsonl"
	j1, recs, err := cluster.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal: %d records", len(recs))
	}
	mkCoord := func(j *cluster.Journal, replay []cluster.JournalRecord) *cluster.Coordinator {
		return cluster.NewCoordinator(cluster.CoordinatorOptions{
			Dispatchers: 4, RetryDelay: 5 * time.Millisecond, TTL: time.Minute,
			Journal: j, Replay: replay,
		})
	}
	coord1 := mkCoord(j1, nil)
	sh := &swapHandler{h: coord1.Handler()}
	ts := httptest.NewServer(sh)
	t.Cleanup(ts.Close)

	// Two real workers heartbeating at the stable address.
	for i := 1; i <= 2; i++ {
		srv := serve.NewServer(serve.Options{Workers: 2, QueueCap: 64, TraceCap: 64, Level: eventlog.Info})
		wts := httptest.NewServer(srv.Handler())
		t.Cleanup(wts.Close)
		t.Cleanup(srv.Drain)
		hb := &cluster.Heartbeater{
			Coordinator: ts.URL, ID: fmt.Sprintf("w%d", i), URL: wts.URL,
			Interval: 50 * time.Millisecond,
		}
		if err := hb.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(hb.Stop)
	}

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}
	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 1<<16)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}
	waitDone := func(id string, timeout time.Duration) string {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			code, body := get("/v1/jobs/" + id)
			if code != http.StatusOK {
				t.Fatalf("GET %s: %d %s", id, code, body)
			}
			var v struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal([]byte(body), &v); err != nil {
				t.Fatalf("job %s view: %v: %s", id, err, body)
			}
			if v.Status == "done" {
				return body
			}
			if v.Status == "failed" {
				t.Fatalf("job %s failed: %s", id, body)
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %s never done", id)
		return ""
	}

	// Fast jobs: finished (and journaled terminal) before the crash.
	fast := []string{"fast-0", "fast-1", "fast-2"}
	for i, id := range fast {
		if code, body := post(fmt.Sprintf(`{"equation":"acoustic","steps":%d,"id":%q}`, 2+i, id)); code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", id, code, body)
		}
	}
	reports := map[string]string{}
	traces := map[string]string{}
	for _, id := range fast {
		reports[id] = waitDone(id, 30*time.Second)
		code, doc := get("/v1/jobs/" + id + "/trace")
		if code != http.StatusOK {
			t.Fatalf("trace %s: %d %s", id, code, doc)
		}
		traces[id] = doc
	}
	// Slow jobs: accepted, but still queued or mid-flight at the crash.
	slow := []string{"slow-0", "slow-1", "slow-2", "slow-3"}
	for i, id := range slow {
		if code, body := post(fmt.Sprintf(`{"equation":"acoustic","steps":30,"cfl":%g,"id":%q}`, 0.3+0.001*float64(i), id)); code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", id, code, body)
		}
	}

	// Crash: the coordinator dies with jobs in every lifecycle stage. The
	// journal's fsynced records are all that survives.
	coord1.Close()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart behind the same address.
	j2, recs2, err := cluster.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	coord2 := mkCoord(j2, recs2)
	t.Cleanup(func() { coord2.Close(); j2.Close() })
	sh.swap(coord2.Handler())

	// The replay accounted for every accepted job.
	st := coord2.Replay()
	if st.Restored < len(fast) {
		t.Fatalf("replay restored %d jobs, want >= %d (%+v)", st.Restored, len(fast), st)
	}
	if st.Restored+st.Requeued != len(fast)+len(slow) {
		t.Fatalf("replay lost jobs: %+v, want restored+requeued = %d", st, len(fast)+len(slow))
	}
	// /readyz reports the replay.
	if code, body := get("/v1/readyz"); code != http.StatusOK ||
		!strings.Contains(body, `"journal":true`) || !strings.Contains(body, `"requeued"`) {
		t.Fatalf("readyz after replay: %d %s", code, body)
	}
	// Finished jobs return their reports — and their merged traces, which
	// rode the journal as compacted JSON and were re-indented on replay —
	// byte-identically.
	for _, id := range fast {
		code, body := get("/v1/jobs/" + id)
		if code != http.StatusOK {
			t.Fatalf("restored %s: %d", id, code)
		}
		if body != reports[id] {
			t.Fatalf("restored report for %s diverges:\n%s\nvs\n%s", id, body, reports[id])
		}
		code, doc := get("/v1/jobs/" + id + "/trace")
		if code != http.StatusOK {
			t.Fatalf("restored trace %s: %d %s", id, code, doc)
		}
		if doc != traces[id] {
			t.Fatalf("restored trace for %s diverges from the pre-crash bytes:\n%s\nvs\n%s",
				id, doc, traces[id])
		}
	}
	// Unfinished jobs run to completion — zero accepted jobs lost.
	for _, id := range slow {
		waitDone(id, 60*time.Second)
	}
}
