package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"wavepim/internal/cluster/trace"
	"wavepim/internal/obs"
	"wavepim/internal/obs/eventlog"
)

// The coordinator. Submissions pass per-tenant admission control, wait
// in priority queues, and are dispatched to the consistent-hash owner of
// their job id. Dispatch is at-least-once on top of the workers'
// idempotent /runs, but budgeted: every bounce (transport failure, 503
// backpressure, lost run) consumes one unit of the job's retry budget
// and costs a capped-exponential, deterministically jittered backoff;
// a job that exhausts its budget terminates as "failed" with a typed
// *ErrRetriesExhausted instead of bouncing forever. Per-worker circuit
// breakers stop dispatch to a flapping worker until a half-open probe
// proves recovery, and an optional append-only journal makes the whole
// job table survive a coordinator crash (see journal.go).

// cjob is one coordinator-tracked job.
type cjob struct {
	mu       sync.Mutex
	id       string
	tenant   string
	priority Priority
	digest   uint64
	body     []byte // canonical forward body (spec with normalized id)
	status   string // "queued", "dispatched", "done", "failed"
	worker   string // current/last owner id
	errMsg   string
	err      error     // typed terminal error (e.g. *ErrRetriesExhausted)
	attempts int       // failed dispatch attempts so far
	deadline time.Time // zero: none; else submit time + DeadlineMS + grace
	cached   bool      // served from the content-addressed result cache
	result   []byte    // owning worker's terminal GET /runs/{id} bytes

	trace    *jobTrace    // live coordinator-side timeline (nil on replayed jobs)
	stages   StageSeconds // latency decomposition, final at terminal
	traceDoc []byte       // merged cluster-level Chrome trace (terminal jobs)
}

// Err returns the job's typed terminal error (nil while non-terminal or
// on success). Callers use errors.As to detect *ErrRetriesExhausted.
func (j *cjob) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ErrRetriesExhausted is the typed terminal error of a job that consumed
// its whole dispatch retry budget. Last carries the sanitized cause of
// the final attempt (url.Error wrappers are stripped so the text never
// embeds an ephemeral host:port).
type ErrRetriesExhausted struct {
	ID       string
	Attempts int
	Last     string
}

func (e *ErrRetriesExhausted) Error() string {
	return fmt.Sprintf("cluster: job %s retries exhausted after %d attempts: %s", e.ID, e.Attempts, e.Last)
}

// JobView is the JSON shape of a job in /jobs listings. Field order is
// fixed by the struct.
type JobView struct {
	ID       string       `json:"id"`
	Status   string       `json:"status"`
	Tenant   string       `json:"tenant,omitempty"`
	Priority string       `json:"priority"`
	Worker   string       `json:"worker,omitempty"`
	Error    string       `json:"error,omitempty"`
	Cached   bool         `json:"cached"`
	Attempts int          `json:"attempts"`
	Digest   string       `json:"digest"`
	Trace    string       `json:"trace"`
	Stages   StageSeconds `json:"stages"`
}

func (j *cjob) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	stages := j.stages
	if j.trace != nil && j.status != "done" && j.status != "failed" {
		// Live jobs report the decomposition accumulated so far (closed
		// spans only; E2E stays zero until the job is terminal).
		stages = j.trace.stageSeconds()
	}
	return JobView{
		ID: j.id, Status: j.status, Tenant: j.tenant, Priority: j.priority.String(),
		Worker: j.worker, Error: j.errMsg, Cached: j.cached, Attempts: j.attempts,
		Digest: fmt.Sprintf("%016x", j.digest),
		Trace:  fmt.Sprintf("%016x", trace.ID(j.id)),
		Stages: stages,
	}
}

// CoordinatorOptions configures a Coordinator. Zero values select the
// documented defaults.
type CoordinatorOptions struct {
	TTL          time.Duration // worker heartbeat TTL (default 10s)
	Replicas     int           // ring virtual nodes per worker (default DefaultRingReplicas)
	Quota        QuotaConfig   // default per-tenant quota
	Dispatchers  int           // concurrent dispatch loops (default 4)
	PollInterval time.Duration // worker run-status poll cadence (default 5ms)

	// RetryDelay is the deprecated fixed backoff; when set it seeds
	// BackoffBase. New code sets BackoffBase/BackoffCap directly.
	RetryDelay time.Duration

	MaxRetries    int           // per-job dispatch retry budget (default 64)
	BackoffBase   time.Duration // first-retry backoff (default 10ms)
	BackoffCap    time.Duration // backoff ceiling (default 2s)
	Seed          uint64        // seed for deterministic backoff jitter
	DeadlineGrace time.Duration // slack added to JobSpec.DeadlineMS (default 5s)
	Breaker       BreakerConfig // per-worker circuit breakers
	MaxJobs       int           // tracked-job bound; oldest terminal jobs evict (default 16384)

	Journal *Journal        // crash-safety journal (nil: in-memory only)
	Replay  []JournalRecord // records OpenJournal read, replayed at startup

	// Log receives the coordinator's structured job lifecycle events
	// (job.submit / job.dispatch / job.retry / job.terminal); nil is
	// silent. FlightW, when set alongside Log, attaches a flight recorder
	// to the log and writes an automatic dump there whenever a job
	// exhausts its retry budget.
	Log     *eventlog.Logger
	FlightW io.Writer

	Client *http.Client // control-plane client (default: 30s timeout)
	Now    func() time.Time
}

// Coordinator shards jobs across registered wavepimd workers.
type Coordinator struct {
	reg      *Registry
	adm      *Admission
	breakers *Breakers
	metrics  *obs.Registry
	client   *http.Client
	journal  *Journal
	log      *eventlog.Logger
	flight   *eventlog.FlightRecorder
	flightW  io.Writer
	flightMu sync.Mutex // serializes flight-dump writes
	now      func() time.Time

	poll          time.Duration
	backoffBase   time.Duration
	backoffCap    time.Duration
	maxRetries    int
	seed          uint64
	deadlineGrace time.Duration
	maxJobs       int

	mu       sync.Mutex
	jobs     map[string]*cjob
	order    []string
	seq      int
	byDigest map[uint64]*cjob // digest -> a done job (content-addressed result cache)
	replay   ReplayStats

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCoordinator builds the coordinator, replays the journal (when one
// is configured), and starts its dispatchers.
func NewCoordinator(o CoordinatorOptions) *Coordinator {
	if o.Dispatchers <= 0 {
		o.Dispatchers = 4
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 5 * time.Millisecond
	}
	if o.BackoffBase <= 0 {
		if o.RetryDelay > 0 {
			o.BackoffBase = o.RetryDelay
		} else {
			o.BackoffBase = 10 * time.Millisecond
		}
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 64
	}
	if o.DeadlineGrace <= 0 {
		o.DeadlineGrace = 5 * time.Second
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 16384
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		reg:           NewRegistry(o.TTL, o.Replicas, o.Now),
		adm:           NewAdmission(o.Quota),
		breakers:      NewBreakers(o.Breaker, o.Now),
		metrics:       obs.NewRegistry(),
		client:        o.Client,
		journal:       o.Journal,
		log:           o.Log,
		flightW:       o.FlightW,
		now:           o.Now,
		poll:          o.PollInterval,
		backoffBase:   o.BackoffBase,
		backoffCap:    o.BackoffCap,
		maxRetries:    o.MaxRetries,
		seed:          o.Seed,
		deadlineGrace: o.DeadlineGrace,
		maxJobs:       o.MaxJobs,
		jobs:          map[string]*cjob{},
		byDigest:      map[uint64]*cjob{},
		ctx:           ctx,
		cancel:        cancel,
	}
	for _, st := range []string{"done", "failed", "rejected", "cached"} {
		c.metrics.CounterVec("wavepimctl.jobs", "status").With(st)
	}
	c.metrics.Counter("wavepimctl.dispatch_retries")
	c.metrics.Counter("wavepimctl.breaker_rejections")
	c.metrics.Counter("wavepimctl.jobs_evicted")
	c.metrics.Histogram("wavepimctl.retry_backoff_seconds")
	c.metrics.Gauge("wavepimctl.journal_records")
	c.metrics.Gauge("wavepimctl.workers")
	// Pre-register the backpressure gauges and the latency-decomposition
	// histogram children for every (priority, outcome) pair, so a scrape
	// of a fresh coordinator already exposes the families — and two
	// coordinators that ran different job mixes still expose identical
	// family/child sets, keeping expositions byte-comparable.
	for p := Priority(0); p < numPriorities; p++ {
		c.metrics.GaugeVec("wavepimctl.queue_depth", "priority").With(p.String())
		c.metrics.GaugeVec("wavepimctl.queue_age_seconds", "priority").With(p.String())
		for _, outcome := range []string{"cached", "done", "failed"} {
			for _, fam := range stageFamilies {
				c.metrics.HistogramVec(fam, "priority", "outcome").With(p.String(), outcome)
			}
		}
	}
	if o.Log != nil && o.FlightW != nil {
		c.flight = eventlog.NewFlightRecorder(nil, 256, 0)
		o.Log.SetRecorder(c.flight)
	}
	if len(o.Replay) > 0 {
		c.replayJournal(o.Replay)
	}
	for i := 0; i < o.Dispatchers; i++ {
		c.wg.Add(1)
		go c.dispatchLoop()
	}
	return c
}

// Registry exposes cluster membership (the HTTP layer and tests use it).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Admission exposes the quota layer for per-tenant overrides.
func (c *Coordinator) Admission() *Admission { return c.adm }

// Breakers exposes the per-worker circuit breakers.
func (c *Coordinator) Breakers() *Breakers { return c.breakers }

// Replay reports what the startup journal replay did.
func (c *Coordinator) Replay() ReplayStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replay
}

// Close stops accepting jobs and halts the dispatchers. In-flight
// dispatches are abandoned (their workers finish the runs; the runs stay
// queryable on the workers, and a journaled coordinator re-polls them on
// restart). The journal itself stays open — its owner closes it.
func (c *Coordinator) Close() {
	c.adm.Close()
	c.cancel()
	c.wg.Wait()
}

// deadlineFor computes a job's coordinator-side deadline from its spec:
// the worker enforces DeadlineMS on the run itself, and the coordinator
// allows that long plus DeadlineGrace for queueing, transport, and
// retries before it stops re-dispatching.
func (c *Coordinator) deadlineFor(spec JobSpec) time.Time {
	if spec.DeadlineMS <= 0 {
		return time.Time{}
	}
	return c.now().Add(time.Duration(spec.DeadlineMS)*time.Millisecond + c.deadlineGrace)
}

// expired reports whether a job's deadline passed.
func (c *Coordinator) expired(j *cjob) bool {
	j.mu.Lock()
	d := j.deadline
	j.mu.Unlock()
	return !d.IsZero() && c.now().After(d)
}

// journalAppend writes one journal record (no-op without a journal).
func (c *Coordinator) journalAppend(rec JournalRecord) error {
	if c.journal == nil {
		return nil
	}
	return c.journal.Append(rec)
}

// Submit admits a spec. The returned job is terminal immediately when
// the submission is a duplicate (same id) or content-identical to a
// completed job (same digest — served from cache without touching a
// worker). The bool reports whether the job already existed.
func (c *Coordinator) Submit(spec JobSpec) (*cjob, bool, error) {
	submitAt := c.now()
	id := spec.ID
	if id == "" {
		c.mu.Lock()
		c.seq++
		id = fmt.Sprintf("j%04d", c.seq)
		c.mu.Unlock()
	} else {
		var err error
		if id, err = NormalizeJobID(id); err != nil {
			return nil, false, err
		}
	}
	prio, err := ParsePriority(spec.Priority)
	if err != nil {
		return nil, false, err
	}
	spec.ID = id
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	if existing, ok := c.jobs[id]; ok {
		c.mu.Unlock()
		return existing, true, nil
	}
	j := &cjob{
		id: id, tenant: spec.Tenant, priority: prio,
		digest: spec.Digest(), body: body, status: "queued",
		deadline: c.deadlineFor(spec),
		trace:    newJobTrace(id, submitAt),
	}
	if done, ok := c.byDigest[j.digest]; ok {
		// Content-identical to a completed job: serve its report without
		// dispatching. The cached bytes are the equivalent run's report.
		done.mu.Lock()
		j.status, j.result, j.worker = done.status, done.result, done.worker
		j.errMsg = done.errMsg
		done.mu.Unlock()
		j.cached = true
		c.jobs[id] = j
		c.order = append(c.order, id)
		c.evictLocked(id)
		c.mu.Unlock()
		c.metrics.CounterVec("wavepimctl.jobs", "status").With("cached").Inc()
		// A cached job's whole life is its admission: record it, close the
		// timeline, and serve a coordinator-only merged trace.
		j.mu.Lock()
		j.trace.record(trace.StageAdmission, submitAt, c.now(), "cache-hit")
		j.trace.finalize(c.now(), "cached")
		j.stages = j.trace.stageSeconds()
		j.traceDoc = j.trace.merged("", nil)
		stages, doc := j.stages, j.traceDoc
		rec := JournalRecord{T: JournalTerminal, ID: id, Status: j.status,
			Error: j.errMsg, Cached: true, Result: j.result,
			Stages: &stages, Trace: doc, TraceDigest: traceDigestHex(doc)}
		j.mu.Unlock()
		c.observeStages(prio.String(), "cached", stages)
		c.log.Info("job.submit", eventlog.Str("job", id), eventlog.Str("tenant", spec.Tenant),
			eventlog.Str("priority", prio.String()), eventlog.Str("trace", j.trace.ctx.Hex()),
			eventlog.Bool("cached", true))
		// Cached jobs journal a submit + terminal pair so a restart still
		// serves their reports.
		c.journalAppend(JournalRecord{T: JournalSubmit, ID: id, Spec: body})
		c.journalAppend(rec)
		return j, false, nil
	}
	c.jobs[id] = j
	c.order = append(c.order, id)
	c.evictLocked(id)
	c.mu.Unlock()

	// The admission span and the queue wait open before the job becomes
	// claimable — once adm.Submit returns, a dispatcher may already be
	// closing the queue span on another goroutine.
	j.mu.Lock()
	j.trace.record(trace.StageAdmission, submitAt, c.now(), prio.String())
	j.trace.openQueue(c.now(), prio.String())
	j.mu.Unlock()

	if err := c.adm.Submit(&QueuedJob{ID: id, Tenant: spec.Tenant, Priority: prio,
		Enqueued: c.now(), Payload: j}); err != nil {
		c.mu.Lock()
		delete(c.jobs, id)
		if n := len(c.order); n > 0 && c.order[n-1] == id {
			c.order = c.order[:n-1]
		}
		c.mu.Unlock()
		c.metrics.CounterVec("wavepimctl.jobs", "status").With("rejected").Inc()
		return nil, false, err
	}
	// The durability point: the 202 must not leave before the submit
	// record is fsynced. A journal failure surfaces as a submission error
	// (the job may still run — workers are idempotent — but the client is
	// told to retry, and the retry under the same id is safe).
	if err := c.journalAppend(JournalRecord{T: JournalSubmit, ID: id, Spec: body}); err != nil {
		return nil, false, fmt.Errorf("cluster: journal submit: %w", err)
	}
	c.log.Info("job.submit", eventlog.Str("job", id), eventlog.Str("tenant", spec.Tenant),
		eventlog.Str("priority", prio.String()), eventlog.Str("trace", j.trace.ctx.Hex()),
		eventlog.Bool("cached", false))
	return j, false, nil
}

// evictLocked enforces the tracked-job bound by evicting the oldest
// terminal jobs (and their content-cache entries). Active jobs are never
// evicted, and neither is keep (the job just inserted). Caller holds
// c.mu.
func (c *Coordinator) evictLocked(keep string) {
	for len(c.jobs) > c.maxJobs {
		idx := -1
		for i, id := range c.order {
			if id == keep {
				continue
			}
			j := c.jobs[id]
			j.mu.Lock()
			terminal := j.status == "done" || j.status == "failed"
			j.mu.Unlock()
			if terminal {
				idx = i
				break
			}
		}
		if idx < 0 {
			return // nothing evictable; tolerate the overshoot
		}
		id := c.order[idx]
		j := c.jobs[id]
		delete(c.jobs, id)
		c.order = append(c.order[:idx], c.order[idx+1:]...)
		if d, ok := c.byDigest[j.digest]; ok && d == j {
			delete(c.byDigest, j.digest)
		}
		c.metrics.Counter("wavepimctl.jobs_evicted").Inc()
	}
}

// replayJournal rebuilds the job table from the journal's records:
// terminal jobs are restored verbatim (reports stay queryable), the rest
// are re-admitted for dispatch under their idempotent ids. Runs inside
// NewCoordinator, before any dispatcher starts.
func (c *Coordinator) replayJournal(recs []JournalRecord) {
	type rstate struct {
		spec     json.RawMessage
		worker   string
		terminal bool
		status   string
		errMsg   string
		cached   bool
		result   []byte
		stages   *StageSeconds
		trace    json.RawMessage
		traceDig string
	}
	byID := map[string]*rstate{}
	var order []string
	c.replay.Records = len(recs)
	for _, rec := range recs {
		switch rec.T {
		case JournalSubmit:
			if _, dup := byID[rec.ID]; dup {
				c.replay.Dropped++
				continue
			}
			byID[rec.ID] = &rstate{spec: rec.Spec}
			order = append(order, rec.ID)
		case JournalDispatch:
			if st, ok := byID[rec.ID]; ok {
				st.worker = rec.Worker
			}
		case JournalTerminal:
			if st, ok := byID[rec.ID]; ok {
				st.terminal = true
				st.status, st.errMsg, st.cached, st.result = rec.Status, rec.Error, rec.Cached, rec.Result
				st.stages, st.trace, st.traceDig = rec.Stages, rec.Trace, rec.TraceDigest
			}
		}
	}
	for _, id := range order {
		st := byID[id]
		var spec JobSpec
		if err := json.Unmarshal(st.spec, &spec); err != nil {
			c.replay.Dropped++
			continue
		}
		prio, err := ParsePriority(spec.Priority)
		if err != nil {
			c.replay.Dropped++
			continue
		}
		c.bumpSeq(id)
		j := &cjob{
			id: id, tenant: spec.Tenant, priority: prio,
			digest: spec.Digest(), body: st.spec,
			deadline: c.deadlineFor(spec), worker: st.worker,
		}
		if st.terminal {
			j.status, j.errMsg, j.cached, j.result = st.status, st.errMsg, st.cached, st.result
			if st.stages != nil {
				j.stages = *st.stages
			}
			// The journal stores the merged trace compacted (RawMessage
			// round-trips through json.Marshal compact it); re-indenting
			// reproduces the served bytes, and the recorded digest proves
			// it before the trace becomes queryable again.
			j.traceDoc = restoreTraceDoc(st.trace, st.traceDig)
			c.jobs[id] = j
			c.order = append(c.order, id)
			if j.status == "done" && j.result != nil && !j.cached {
				if _, ok := c.byDigest[j.digest]; !ok {
					c.byDigest[j.digest] = j
				}
			}
			c.replay.Restored++
			continue
		}
		// Queued or mid-flight at crash time: re-admit. The idempotent id
		// means a run the old incarnation already started is re-polled, not
		// re-executed. The new incarnation starts a fresh timeline — the
		// pre-crash spans died with the process; only terminal jobs replay
		// their recorded traces.
		j.status = "queued"
		j.trace = newJobTrace(id, c.now())
		j.trace.record(trace.StageAdmission, c.now(), c.now(), "replay")
		j.trace.openQueue(c.now(), prio.String())
		c.jobs[id] = j
		c.order = append(c.order, id)
		c.adm.Restore(&QueuedJob{ID: id, Tenant: spec.Tenant, Priority: prio,
			Enqueued: c.now(), Payload: j})
		c.replay.Requeued++
	}
	c.evictLocked("")
}

// bumpSeq advances the auto-id sequence past a replayed "jNNNN" id so
// new auto-named jobs cannot collide with replayed ones.
func (c *Coordinator) bumpSeq(id string) {
	if !strings.HasPrefix(id, "j") {
		return
	}
	if n, err := strconv.Atoi(id[1:]); err == nil && n > c.seq {
		c.seq = n
	}
}

// Job looks up a tracked job.
func (c *Coordinator) Job(id string) (*cjob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// Jobs lists tracked jobs in submission order.
func (c *Coordinator) Jobs() []JobView {
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	jobs := make([]*cjob, len(ids))
	for i, id := range ids {
		jobs[i] = c.jobs[id]
	}
	c.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	return views
}

func (c *Coordinator) dispatchLoop() {
	defer c.wg.Done()
	for {
		qj, ok := c.adm.Next(c.ctx)
		if !ok {
			return
		}
		c.dispatch(qj)
	}
}

// sleep waits out a backoff; returns false when the coordinator closed.
func (c *Coordinator) sleep(d time.Duration) bool {
	select {
	case <-c.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// RetryBackoff is the capped-exponential backoff with deterministic
// seeded jitter before retry attempt (1-based) of job id: the raw delay
// doubles from base up to cap, and the jitter scales it into
// [0.5, 1.0) of that value by a pure hash of (seed, id, attempt) — two
// coordinators with the same seed back off identically, which is what
// keeps seeded chaos schedules reproducible.
func RetryBackoff(seed uint64, id string, attempt int, base, cap time.Duration) time.Duration {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	h := mix64(seed ^ RingKey(id) ^ mix64(uint64(attempt)))
	frac := 0.5 + float64(h>>11)/(1<<53)*0.5
	return time.Duration(float64(d) * frac)
}

// sanitizeCause strips url.Error wrappers (whose text embeds the target
// URL, ephemeral port included) so retry causes — which end up in the
// job table — stay deterministic across runs.
func sanitizeCause(err error) error {
	var ue *url.Error
	if errors.As(err, &ue) && ue.Err != nil {
		return ue.Err
	}
	return err
}

// dispatch forwards one claimed job to its ring owner and follows it to
// a terminal state. Transport failures and backpressure consume retry
// budget; breaker-open and no-owner stalls do not (no request was made).
func (c *Coordinator) dispatch(qj *QueuedJob) {
	j := qj.Payload.(*cjob)
	j.mu.Lock()
	j.trace.closeQueue(c.now())
	j.mu.Unlock()
	if c.expired(j) {
		c.finishJob(qj, j, "failed",
			fmt.Errorf("cluster: job %s deadline exceeded before dispatch", j.id), nil, "", nil)
		return
	}
	owner, ok := c.reg.OwnerOf(j.id)
	if !ok {
		// No live workers; hold the job until one registers. The stall
		// costs no retry budget — no request was made.
		c.stall(qj, j, "no-owner")
		return
	}
	if !c.breakers.Allow(owner.ID) {
		// The owner's circuit is open: don't burn budget on a worker known
		// to be failing; wait out a base backoff and try again (the ring
		// may route elsewhere, or the breaker may half-open).
		c.metrics.Counter("wavepimctl.breaker_rejections").Inc()
		c.stall(qj, j, "breaker-open:"+owner.ID)
		return
	}
	j.mu.Lock()
	j.status = "dispatched"
	j.worker = owner.ID
	body := j.body
	hdr := j.trace.ctx.String()
	attempt := j.attempts
	j.mu.Unlock()

	postAt := c.now()
	code, respBody, err := c.do("POST", owner.URL+"/v1/runs", body, trace.Header, hdr)
	if err != nil {
		c.breakers.Failure(owner.ID)
		c.reg.MarkDead(owner.ID)
		c.attemptSpan(j, postAt, "retry: "+sanitizeCause(err).Error())
		c.retryJob(qj, j, err)
		return
	}
	switch {
	case code == http.StatusOK || code == http.StatusAccepted:
		// accepted (or already known from an earlier attempt)
		c.breakers.Success(owner.ID)
		c.attemptSpan(j, postAt, "accepted:"+owner.ID)
		j.mu.Lock()
		j.trace.openExec(c.now(), "worker:"+owner.ID)
		j.mu.Unlock()
	case code == http.StatusServiceUnavailable:
		// Worker queue full, draining, or flapping: consume budget and
		// back off; the ring may route elsewhere by then.
		c.breakers.Failure(owner.ID)
		cause := fmt.Errorf("worker %s bounced job: 503", owner.ID)
		c.attemptSpan(j, postAt, "retry: "+cause.Error())
		c.retryJob(qj, j, cause)
		return
	default:
		c.attemptSpan(j, postAt, fmt.Sprintf("rejected: %d", code))
		c.finishJob(qj, j, "failed", fmt.Errorf("worker %s rejected job: %d %s",
			owner.ID, code, strings.TrimSpace(string(respBody))), nil, "", nil)
		return
	}
	c.journalAppend(JournalRecord{T: JournalDispatch, ID: j.id, Worker: owner.ID})
	c.log.Info("job.dispatch", eventlog.Str("job", j.id), eventlog.Str("worker", owner.ID),
		eventlog.Int("attempt", attempt))

	for {
		if c.expired(j) {
			c.finishJob(qj, j, "failed",
				fmt.Errorf("cluster: job %s deadline exceeded waiting on worker %s", j.id, owner.ID), nil, "", nil)
			return
		}
		code, respBody, err := c.do("GET", owner.URL+"/v1/runs/"+j.id, nil)
		if err != nil {
			c.breakers.Failure(owner.ID)
			c.reg.MarkDead(owner.ID)
			c.closeExec(j, "retry: "+sanitizeCause(err).Error())
			c.retryJob(qj, j, err)
			return
		}
		switch {
		case code == http.StatusOK:
			// fall through to decode
		case code == http.StatusNotFound:
			// The worker restarted and lost the run: re-dispatch under the
			// same idempotent id.
			c.closeExec(j, "retry: worker lost run")
			c.retryJob(qj, j, fmt.Errorf("worker %s lost run", owner.ID))
			return
		default:
			c.finishJob(qj, j, "failed",
				fmt.Errorf("worker %s run status: %d", owner.ID, code), nil, "", nil)
			return
		}
		var v struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(respBody, &v); err != nil {
			c.finishJob(qj, j, "failed", fmt.Errorf("worker %s run view: %v", owner.ID, err), nil, "", nil)
			return
		}
		if v.Status == "done" || v.Status == "failed" {
			var cause error
			if v.Error != "" {
				cause = errors.New(v.Error)
			}
			c.closeExec(j, "")
			workerTrace := c.fetchWorkerTrace(j, owner)
			c.finishJob(qj, j, v.Status, cause, respBody, owner.ID, workerTrace)
			return
		}
		select {
		case <-c.ctx.Done():
			return
		case <-time.After(c.poll):
		}
	}
}

// stall records a budget-free hold (no owner / breaker open) and puts
// the job back in its queue.
func (c *Coordinator) stall(qj *QueuedJob, j *cjob, annot string) {
	start := c.now()
	ok := c.sleep(c.backoffBase)
	j.mu.Lock()
	j.trace.record(trace.StageStall, start, c.now(), annot)
	if ok {
		j.trace.openQueue(c.now(), j.priority.String())
	}
	j.mu.Unlock()
	if ok {
		c.adm.Requeue(qj)
	}
}

// attemptSpan records one POST /v1/runs attempt on the job's timeline.
func (c *Coordinator) attemptSpan(j *cjob, start time.Time, annot string) {
	j.mu.Lock()
	j.trace.record(trace.StageDispatch, start, c.now(), annot)
	j.mu.Unlock()
}

// closeExec ends the job's open execution span (annot overrides the
// worker annotation when the execution ended in a retry, not a result).
func (c *Coordinator) closeExec(j *cjob, annot string) {
	j.mu.Lock()
	j.trace.closeExec(c.now(), annot)
	j.mu.Unlock()
}

// fetchWorkerTrace pulls the owning worker's Chrome trace for a run that
// just went terminal (the worker publishes it in the same critical
// section that flips the run status, so it is ready by now). The fetch
// itself is a "report" span; an unreachable worker or malformed document
// degrades to a coordinator-only merged trace rather than an error.
func (c *Coordinator) fetchWorkerTrace(j *cjob, owner Worker) []byte {
	start := c.now()
	code, body, err := c.do("GET", owner.URL+"/v1/runs/"+j.id+"/trace", nil)
	annot := "worker:" + owner.ID
	var workerTrace []byte
	if err == nil && code == http.StatusOK && trace.Valid(body) {
		workerTrace = body
	} else {
		annot += " (trace unavailable)"
	}
	j.mu.Lock()
	j.trace.record(trace.StageReport, start, c.now(), annot)
	j.mu.Unlock()
	return workerTrace
}

// retryJob charges one unit of the job's retry budget and requeues it
// after its deterministic backoff — or terminates it with
// *ErrRetriesExhausted once the budget is gone.
func (c *Coordinator) retryJob(qj *QueuedJob, j *cjob, cause error) {
	cause = sanitizeCause(cause)
	j.mu.Lock()
	j.attempts++
	attempts := j.attempts
	j.status = "queued"
	j.mu.Unlock()
	if attempts >= c.maxRetries {
		c.finishJob(qj, j, "failed",
			&ErrRetriesExhausted{ID: j.id, Attempts: attempts, Last: cause.Error()}, nil, "", nil)
		return
	}
	c.metrics.Counter("wavepimctl.dispatch_retries").Inc()
	d := RetryBackoff(c.seed, j.id, attempts, c.backoffBase, c.backoffCap)
	c.metrics.Histogram("wavepimctl.retry_backoff_seconds").Observe(d.Seconds())
	c.log.Warn("job.retry", eventlog.Str("job", j.id), eventlog.Int("attempt", attempts),
		eventlog.Str("cause", cause.Error()), eventlog.Int64("backoff_ms", d.Milliseconds()))
	start := c.now()
	ok := c.sleep(d)
	j.mu.Lock()
	j.trace.record(trace.StageBackoff, start, c.now(), fmt.Sprintf("attempt %d", attempts))
	if ok {
		j.trace.openQueue(c.now(), j.priority.String())
	}
	j.mu.Unlock()
	if ok {
		c.adm.Requeue(qj)
	}
	// Coordinator closed mid-backoff: the job stays non-terminal in
	// memory; a journaled coordinator re-admits it on restart.
}

// finishJob records a terminal state, closes and merges the job's
// timeline, feeds the content-addressed result cache and the latency
// histograms, journals the transition (trace included), and releases the
// tenant's active slot. workerID/workerTrace are set only on the
// dispatched-terminal path; every other terminal gets a
// coordinator-only merged trace.
func (c *Coordinator) finishJob(qj *QueuedJob, j *cjob, status string, cause error, result []byte, workerID string, workerTrace []byte) {
	errMsg := ""
	if cause != nil {
		errMsg = cause.Error()
	}
	// Canonicalize the report bytes: the journal stores them as a JSON
	// RawMessage, which compacts surrounding whitespace on re-marshal, so
	// trimming here keeps pre-crash and post-replay reads byte-identical.
	result = bytes.TrimSpace(result)
	if len(result) == 0 {
		result = nil
	}
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	j.err = cause
	j.result = result
	var stages StageSeconds
	var doc []byte
	if j.trace != nil {
		j.trace.finalize(c.now(), status)
		j.stages = j.trace.stageSeconds()
		j.traceDoc = j.trace.merged(workerID, workerTrace)
		stages, doc = j.stages, j.traceDoc
	}
	prio := j.priority.String()
	j.mu.Unlock()
	if status == "done" && result != nil {
		c.mu.Lock()
		if _, ok := c.byDigest[j.digest]; !ok {
			c.byDigest[j.digest] = j
		}
		c.mu.Unlock()
	}
	c.metrics.CounterVec("wavepimctl.jobs", "status").With(status).Inc()
	c.observeStages(prio, status, stages)
	c.journalAppend(JournalRecord{T: JournalTerminal, ID: j.id, Status: status,
		Error: errMsg, Result: result,
		Stages: &stages, Trace: doc, TraceDigest: traceDigestHex(doc)})
	lv := eventlog.Info
	if status == "failed" {
		lv = eventlog.Error
	}
	c.log.Log(lv, "job.terminal", eventlog.Str("job", j.id), eventlog.Str("status", status),
		eventlog.Str("error", errMsg))
	var exhausted *ErrRetriesExhausted
	if errors.As(cause, &exhausted) && c.flight != nil && c.flightW != nil {
		// A job that burned its whole retry budget is the cluster-level
		// unrecoverable failure: snapshot the coordinator's recent events
		// the way a worker snapshots an unhealable run.
		c.flightMu.Lock()
		c.flight.Dump("retries-exhausted", j.id).WriteJSON(c.flightW)
		c.flightMu.Unlock()
	}
	c.adm.Done(qj.Tenant)
}

// do runs one control-plane request and slurps the body. The body rides
// a bytes.Reader so net/http sets ContentLength and GetBody — retried
// and redirected POSTs replay the payload without an extra copy. hdr is
// optional key/value pairs of extra headers (the trace context rides
// here).
func (c *Coordinator) do(method, url string, body []byte, hdr ...string) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(c.ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}
