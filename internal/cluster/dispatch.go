package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"wavepim/internal/obs"
)

// The coordinator. Submissions pass per-tenant admission control, wait
// in priority queues, and are dispatched to the consistent-hash owner of
// their job id. Dispatch is at-least-once on top of the workers'
// idempotent /runs: a forwarding or polling failure marks the worker
// dead, rebalances the ring, and requeues the job at the front of its
// class, so an accepted job is never dropped — it lands on the next
// owner and (thanks to the client-supplied id) never runs twice on the
// same worker.

// cjob is one coordinator-tracked job.
type cjob struct {
	mu       sync.Mutex
	id       string
	tenant   string
	priority Priority
	digest   uint64
	body     []byte // canonical forward body (spec with normalized id)
	status   string // "queued", "dispatched", "done", "failed"
	worker   string // current/last owner id
	errMsg   string
	cached   bool   // served from the content-addressed result cache
	result   []byte // owning worker's terminal GET /runs/{id} bytes
}

// JobView is the JSON shape of a job in /jobs listings. Field order is
// fixed by the struct.
type JobView struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority"`
	Worker   string `json:"worker,omitempty"`
	Error    string `json:"error,omitempty"`
	Cached   bool   `json:"cached"`
	Digest   string `json:"digest"`
}

func (j *cjob) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID: j.id, Status: j.status, Tenant: j.tenant, Priority: j.priority.String(),
		Worker: j.worker, Error: j.errMsg, Cached: j.cached,
		Digest: fmt.Sprintf("%016x", j.digest),
	}
}

// CoordinatorOptions configures a Coordinator. Zero values select the
// documented defaults.
type CoordinatorOptions struct {
	TTL          time.Duration // worker heartbeat TTL (default 10s)
	Replicas     int           // ring virtual nodes per worker (default DefaultRingReplicas)
	Quota        QuotaConfig   // default per-tenant quota
	Dispatchers  int           // concurrent dispatch loops (default 4)
	PollInterval time.Duration // worker run-status poll cadence (default 5ms)
	RetryDelay   time.Duration // backoff before requeueing a bounced job (default 25ms)
	Client       *http.Client  // control-plane client (default: 30s timeout)
	Now          func() time.Time
}

// Coordinator shards jobs across registered wavepimd workers.
type Coordinator struct {
	reg     *Registry
	adm     *Admission
	metrics *obs.Registry
	client  *http.Client
	poll    time.Duration
	retry   time.Duration

	mu       sync.Mutex
	jobs     map[string]*cjob
	order    []string
	seq      int
	byDigest map[uint64]*cjob // digest -> a done job (content-addressed result cache)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCoordinator builds the coordinator and starts its dispatchers.
func NewCoordinator(o CoordinatorOptions) *Coordinator {
	if o.Dispatchers <= 0 {
		o.Dispatchers = 4
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 5 * time.Millisecond
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = 25 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		reg:      NewRegistry(o.TTL, o.Replicas, o.Now),
		adm:      NewAdmission(o.Quota),
		metrics:  obs.NewRegistry(),
		client:   o.Client,
		poll:     o.PollInterval,
		retry:    o.RetryDelay,
		jobs:     map[string]*cjob{},
		byDigest: map[uint64]*cjob{},
		ctx:      ctx,
		cancel:   cancel,
	}
	for _, st := range []string{"done", "failed", "rejected", "cached"} {
		c.metrics.CounterVec("wavepimctl.jobs", "status").With(st)
	}
	c.metrics.Counter("wavepimctl.dispatch_retries")
	c.metrics.Gauge("wavepimctl.workers")
	c.metrics.Gauge("wavepimctl.queue_depth")
	for i := 0; i < o.Dispatchers; i++ {
		c.wg.Add(1)
		go c.dispatchLoop()
	}
	return c
}

// Registry exposes cluster membership (the HTTP layer and tests use it).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Admission exposes the quota layer for per-tenant overrides.
func (c *Coordinator) Admission() *Admission { return c.adm }

// Close stops accepting jobs and halts the dispatchers. In-flight
// dispatches are abandoned (their workers finish the runs; the runs stay
// queryable on the workers).
func (c *Coordinator) Close() {
	c.adm.Close()
	c.cancel()
	c.wg.Wait()
}

// Submit admits a spec. The returned job is terminal immediately when
// the submission is a duplicate (same id) or content-identical to a
// completed job (same digest — served from cache without touching a
// worker). The bool reports whether the job already existed.
func (c *Coordinator) Submit(spec JobSpec) (*cjob, bool, error) {
	id := spec.ID
	if id == "" {
		c.mu.Lock()
		c.seq++
		id = fmt.Sprintf("j%04d", c.seq)
		c.mu.Unlock()
	} else {
		var err error
		if id, err = NormalizeJobID(id); err != nil {
			return nil, false, err
		}
	}
	prio, err := ParsePriority(spec.Priority)
	if err != nil {
		return nil, false, err
	}
	spec.ID = id
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	if existing, ok := c.jobs[id]; ok {
		c.mu.Unlock()
		return existing, true, nil
	}
	j := &cjob{
		id: id, tenant: spec.Tenant, priority: prio,
		digest: spec.Digest(), body: body, status: "queued",
	}
	if done, ok := c.byDigest[j.digest]; ok {
		// Content-identical to a completed job: serve its report without
		// dispatching. The cached bytes are the equivalent run's report.
		done.mu.Lock()
		j.status, j.result, j.worker = done.status, done.result, done.worker
		j.errMsg = done.errMsg
		done.mu.Unlock()
		j.cached = true
		c.jobs[id] = j
		c.order = append(c.order, id)
		c.mu.Unlock()
		c.metrics.CounterVec("wavepimctl.jobs", "status").With("cached").Inc()
		return j, false, nil
	}
	c.jobs[id] = j
	c.order = append(c.order, id)
	c.mu.Unlock()

	if err := c.adm.Submit(&QueuedJob{ID: id, Tenant: spec.Tenant, Priority: prio, Payload: j}); err != nil {
		c.mu.Lock()
		delete(c.jobs, id)
		if n := len(c.order); n > 0 && c.order[n-1] == id {
			c.order = c.order[:n-1]
		}
		c.mu.Unlock()
		c.metrics.CounterVec("wavepimctl.jobs", "status").With("rejected").Inc()
		return nil, false, err
	}
	return j, false, nil
}

// Job looks up a tracked job.
func (c *Coordinator) Job(id string) (*cjob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// Jobs lists tracked jobs in submission order.
func (c *Coordinator) Jobs() []JobView {
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	jobs := make([]*cjob, len(ids))
	for i, id := range ids {
		jobs[i] = c.jobs[id]
	}
	c.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	return views
}

func (c *Coordinator) dispatchLoop() {
	defer c.wg.Done()
	for {
		qj, ok := c.adm.Next(c.ctx)
		if !ok {
			return
		}
		c.dispatch(qj)
	}
}

// pause waits out a backoff; returns false when the coordinator closed.
func (c *Coordinator) pause() bool {
	select {
	case <-c.ctx.Done():
		return false
	case <-time.After(c.retry):
		return true
	}
}

// dispatch forwards one claimed job to its ring owner and follows it to
// a terminal state. Any transport failure rebalances and requeues.
func (c *Coordinator) dispatch(qj *QueuedJob) {
	j := qj.Payload.(*cjob)
	owner, ok := c.reg.OwnerOf(j.id)
	if !ok {
		// No live workers; hold the job until one registers.
		if c.pause() {
			c.adm.Requeue(qj)
		}
		return
	}
	j.mu.Lock()
	j.status = "dispatched"
	j.worker = owner.ID
	body := j.body
	j.mu.Unlock()

	code, respBody, err := c.do("POST", owner.URL+"/v1/runs", body)
	if err != nil {
		c.reg.MarkDead(owner.ID)
		c.retryJob(qj, j)
		return
	}
	switch {
	case code == http.StatusOK || code == http.StatusAccepted:
		// accepted (or already known from an earlier attempt)
	case code == http.StatusServiceUnavailable:
		// Worker queue full or draining: back off and retry; the ring may
		// route elsewhere by then.
		if c.pause() {
			c.retryJob(qj, j)
		}
		return
	default:
		c.finishJob(qj, j, "failed", fmt.Sprintf("worker %s rejected job: %d %s",
			owner.ID, code, strings.TrimSpace(string(respBody))), nil)
		return
	}

	for {
		code, respBody, err := c.do("GET", owner.URL+"/v1/runs/"+j.id, nil)
		if err != nil {
			c.reg.MarkDead(owner.ID)
			c.retryJob(qj, j)
			return
		}
		if code != http.StatusOK {
			c.finishJob(qj, j, "failed", fmt.Sprintf("worker %s lost run: %d", owner.ID, code), nil)
			return
		}
		var v struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(respBody, &v); err != nil {
			c.finishJob(qj, j, "failed", fmt.Sprintf("worker %s run view: %v", owner.ID, err), nil)
			return
		}
		if v.Status == "done" || v.Status == "failed" {
			c.finishJob(qj, j, v.Status, v.Error, respBody)
			return
		}
		select {
		case <-c.ctx.Done():
			return
		case <-time.After(c.poll):
		}
	}
}

// retryJob requeues a job whose dispatch bounced.
func (c *Coordinator) retryJob(qj *QueuedJob, j *cjob) {
	j.mu.Lock()
	j.status = "queued"
	j.mu.Unlock()
	c.metrics.Counter("wavepimctl.dispatch_retries").Inc()
	c.adm.Requeue(qj)
}

// finishJob records a terminal state, feeds the content-addressed result
// cache, and releases the tenant's active slot.
func (c *Coordinator) finishJob(qj *QueuedJob, j *cjob, status, errMsg string, result []byte) {
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	j.result = result
	j.mu.Unlock()
	if status == "done" && result != nil {
		c.mu.Lock()
		if _, ok := c.byDigest[j.digest]; !ok {
			c.byDigest[j.digest] = j
		}
		c.mu.Unlock()
	}
	c.metrics.CounterVec("wavepimctl.jobs", "status").With(status).Inc()
	c.adm.Done(qj.Tenant)
}

// do runs one control-plane request and slurps the body.
func (c *Coordinator) do(method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(c.ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}
