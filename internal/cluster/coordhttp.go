package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"

	"wavepim/internal/pim/chip"
)

// Handler builds the coordinator's mux. The API lives under /v1; the
// legacy unversioned routes answer 308 permanent redirects into it.
//
//	POST /v1/jobs             submit a job (JobSpec JSON); 202 + {"id": ...};
//	                          duplicates of a finished job: 200 + cached report
//	GET  /v1/jobs             list jobs in submission order
//	GET  /v1/jobs/{id}        one job (finished: the worker's report, verbatim)
//	GET  /v1/jobs/{id}/events the job's event stream, proxied from its worker
//	GET  /v1/jobs/{id}/trace  the merged cluster-level Chrome trace (409 while
//	                          the job is live; replayed terminal jobs serve
//	                          their digest-verified journaled timeline)
//	POST /v1/register         worker heartbeat (RegisterRequest JSON)
//	POST /v1/deregister       worker draining handoff
//	GET  /v1/workers          live membership, sorted by id
//	GET  /v1/metrics          aggregated Prometheus exposition (all workers + own)
//	GET  /v1/healthz          liveness
//	GET  /v1/readyz           readiness (503 once closed)
//
// Errors are the APIError envelope ({code, message, retryable}).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleJobTrace)
	mux.HandleFunc("POST /v1/register", c.handleRegister)
	mux.HandleFunc("POST /v1/deregister", c.handleDeregister)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	mux.HandleFunc("GET /v1/metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/readyz", c.handleReadyz)
	MountLegacyRedirects(mux, "/jobs", "/register", "/deregister", "/workers",
		"/metrics", "/healthz", "/readyz")
	return mux
}

// coordError writes the typed APIError envelope.
func coordError(w http.ResponseWriter, status int, code string, retryable bool, format string, args ...any) {
	WriteAPIError(w, status, code, retryable, format, args...)
}

// writeTerminal writes a finished job: the worker's report bytes
// verbatim when present (so two reads of the same finished job — or a
// resubmission of its id — are byte-identical), the view otherwise.
func writeTerminal(w http.ResponseWriter, j *cjob) {
	j.mu.Lock()
	result := j.result
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if result != nil {
		w.Write(result)
		return
	}
	json.NewEncoder(w).Encode(j.view())
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&spec); err != nil {
		coordError(w, http.StatusBadRequest, CodeBadRequest, false, "bad job spec: %v", err)
		return
	}
	if _, ok := EquationOf(spec.Equation); !ok {
		coordError(w, http.StatusBadRequest, CodeBadRequest, false, "unknown equation %q", spec.Equation)
		return
	}
	if spec.Topology != "" {
		if _, err := chip.ParseInterconnect(spec.Topology); err != nil {
			coordError(w, http.StatusBadRequest, CodeBadRequest, false, "%v", err)
			return
		}
	}
	j, existed, err := c.Submit(spec)
	if err != nil {
		var quota *ErrQuota
		switch {
		case errors.As(err, &quota):
			coordError(w, http.StatusTooManyRequests, CodeQuota, true, "%v", err)
		case isParseErr(err):
			coordError(w, http.StatusBadRequest, CodeBadRequest, false, "%v", err)
		default:
			coordError(w, http.StatusServiceUnavailable, CodeDraining, true, "%v", err)
		}
		return
	}
	j.mu.Lock()
	status := j.status
	j.mu.Unlock()
	if status == "done" || status == "failed" {
		// Duplicate of a finished job or a content-cache hit: the report,
		// byte-for-byte.
		writeTerminal(w, j)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !existed {
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(map[string]string{"id": j.id, "status": status})
}

// isParseErr reports whether the submit error came from spec parsing
// (bad id or priority) rather than admission state.
func isParseErr(err error) bool {
	s := err.Error()
	return strings.Contains(s, "job id") || strings.Contains(s, "priority")
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Jobs())
}

func (c *Coordinator) handleJob(w http.ResponseWriter, req *http.Request) {
	j, ok := c.Job(req.PathValue("id"))
	if !ok {
		coordError(w, http.StatusNotFound, CodeNotFound, false, "no such job")
		return
	}
	j.mu.Lock()
	terminal := j.status == "done" || j.status == "failed"
	j.mu.Unlock()
	if terminal {
		writeTerminal(w, j)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.view())
}

// handleJobTrace serves the job's merged cluster-level Chrome trace —
// the coordinator's stage timeline (process 1) plus the owning worker's
// span trace (process 2), one document. Live jobs answer 409 (retryable:
// the trace is merged at the terminal transition); a terminal job that
// lost its trace (journal replay with a failed digest check, or a merge
// error) answers 404.
func (c *Coordinator) handleJobTrace(w http.ResponseWriter, req *http.Request) {
	j, ok := c.Job(req.PathValue("id"))
	if !ok {
		coordError(w, http.StatusNotFound, CodeNotFound, false, "no such job")
		return
	}
	j.mu.Lock()
	terminal := j.status == "done" || j.status == "failed"
	doc := j.traceDoc
	status := j.status
	j.mu.Unlock()
	if !terminal {
		coordError(w, http.StatusConflict, CodeNotReady, true, "job is %s; trace not merged yet", status)
		return
	}
	if doc == nil {
		coordError(w, http.StatusNotFound, CodeNotFound, false, "job has no trace")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

// handleJobEvents proxies the owning worker's SSE stream for a job.
func (c *Coordinator) handleJobEvents(w http.ResponseWriter, req *http.Request) {
	j, ok := c.Job(req.PathValue("id"))
	if !ok {
		coordError(w, http.StatusNotFound, CodeNotFound, false, "no such job")
		return
	}
	j.mu.Lock()
	workerID := j.worker
	j.mu.Unlock()
	var workerURL string
	for _, wk := range c.reg.Workers() {
		if wk.ID == workerID {
			workerURL = wk.URL
			break
		}
	}
	if workerURL == "" {
		coordError(w, http.StatusNotFound, CodeNotFound, false, "job has no live worker (status %s)", j.view().Status)
		return
	}
	// SSE streams outlive any sane control-plane timeout; use a bare
	// client and tie the upstream to the downstream request context.
	up, err := http.NewRequestWithContext(req.Context(), "GET", workerURL+"/v1/runs/"+j.id+"/events", nil)
	if err != nil {
		coordError(w, http.StatusBadGateway, CodeUpstream, true, "%v", err)
		return
	}
	resp, err := http.DefaultTransport.RoundTrip(up)
	if err != nil {
		coordError(w, http.StatusBadGateway, CodeUpstream, true, "worker stream: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		coordError(w, http.StatusBadGateway, CodeUpstream, true, "worker stream: status %d", resp.StatusCode)
		return
	}
	SSEHeaders(w)
	w.WriteHeader(http.StatusOK)
	ProxySSE(w, resp.Body)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, req *http.Request) {
	var r RegisterRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&r); err != nil {
		coordError(w, http.StatusBadRequest, CodeBadRequest, false, "bad register body: %v", err)
		return
	}
	if r.ID == "" || r.URL == "" {
		coordError(w, http.StatusBadRequest, CodeBadRequest, false, "register needs id and url")
		return
	}
	isNew := c.reg.Heartbeat(r.ID, r.URL)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]bool{"new": isNew})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, req *http.Request) {
	var r RegisterRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&r); err != nil {
		coordError(w, http.StatusBadRequest, CodeBadRequest, false, "bad deregister body: %v", err)
		return
	}
	was := c.reg.Deregister(r.ID)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]bool{"removed": was})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.reg.Workers())
}

// handleMetrics aggregates every live worker's exposition with the
// coordinator's own registry into one byte-deterministic exposition:
// worker samples gain worker="<id>" labels; given the same reachable
// workers in the same states, two scrapes are identical bytes.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	workers := c.reg.Workers()
	d := c.adm.Depths()
	c.metrics.Gauge("wavepimctl.workers").Set(float64(len(workers)))
	for p := Priority(0); p < numPriorities; p++ {
		c.metrics.GaugeVec("wavepimctl.queue_depth", "priority").
			With(p.String()).Set(float64(d.ByClass[p]))
		age := 0.0
		if !d.Oldest[p].IsZero() {
			if a := c.now().Sub(d.Oldest[p]).Seconds(); a > 0 {
				age = a
			}
		}
		c.metrics.GaugeVec("wavepimctl.queue_age_seconds", "priority").
			With(p.String()).Set(age)
	}
	if c.journal != nil {
		c.metrics.Gauge("wavepimctl.journal_records").Set(float64(c.journal.Records()))
	}
	for _, bv := range c.breakers.Snapshot() {
		c.metrics.GaugeVec("wavepimctl.breaker_state", "worker").
			With(bv.Worker).Set(float64(bv.State))
	}

	var own bytes.Buffer
	if err := c.metrics.WriteProm(&own); err != nil {
		coordError(w, http.StatusInternalServerError, CodeInternal, false, "%v", err)
		return
	}
	sources := []PromSource{{Label: "", Text: own.String()}}
	for _, wk := range workers { // sorted by ID
		code, body, err := c.do("GET", wk.URL+"/v1/metrics", nil)
		if err != nil || code != http.StatusOK {
			continue // an unreachable worker drops out; its TTL will evict it
		}
		sources = append(sources, PromSource{Label: wk.ID, Text: string(body)})
	}
	var merged bytes.Buffer
	if err := MergeProm(&merged, sources); err != nil {
		coordError(w, http.StatusBadGateway, CodeUpstream, true, "merge: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(merged.Bytes())
}

// handleReadyz reports readiness plus what the startup journal replay
// did — operators checking a restarted coordinator see at a glance how
// many jobs were restored with their reports and how many were
// re-admitted for dispatch.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	select {
	case <-c.ctx.Done():
		coordError(w, http.StatusServiceUnavailable, CodeDraining, true, "closed")
	default:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Ready   bool        `json:"ready"`
			Journal bool        `json:"journal"`
			Replay  ReplayStats `json:"replay"`
		}{Ready: true, Journal: c.journal != nil, Replay: c.Replay()})
	}
}
