package cluster

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriteSSEEventFraming: one JSONL line becomes one frame with the
// event name lifted out of the JSON.
func TestWriteSSEEventFraming(t *testing.T) {
	var buf bytes.Buffer
	line := []byte(`{"ts":"t0","level":"info","event":"run.progress","step":2}` + "\n")
	if err := WriteSSEEvent(&buf, 7, line); err != nil {
		t.Fatal(err)
	}
	want := "id: 7\nevent: run.progress\ndata: " +
		`{"ts":"t0","level":"info","event":"run.progress","step":2}` + "\n\n"
	if buf.String() != want {
		t.Fatalf("frame:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestWriteSSEEventFallbacks: unparseable or event-less lines frame as
// the SSE default event type.
func TestWriteSSEEventFallbacks(t *testing.T) {
	for _, line := range []string{`not json`, `{"level":"info"}`} {
		var buf bytes.Buffer
		if err := WriteSSEEvent(&buf, 0, []byte(line)); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "event: message\n") {
			t.Fatalf("frame for %q: %q", line, buf.String())
		}
	}
}

// TestWriteSSEEventDeterministic: identical (id, line) pairs frame to
// identical bytes — replays of a tap are byte-stable.
func TestWriteSSEEventDeterministic(t *testing.T) {
	line := []byte(`{"event":"run.start"}` + "\n")
	var a, b bytes.Buffer
	WriteSSEEvent(&a, 3, line)
	WriteSSEEvent(&b, 3, line)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("non-deterministic framing")
	}
}

// TestProxySSE: upstream bytes pass through unmodified.
func TestProxySSE(t *testing.T) {
	upstream := "id: 0\nevent: run.start\ndata: {}\n\nid: 1\nevent: run.end\ndata: {}\n\n"
	rec := httptest.NewRecorder()
	SSEHeaders(rec)
	if err := ProxySSE(rec, strings.NewReader(upstream)); err != nil {
		t.Fatal(err)
	}
	if rec.Body.String() != upstream {
		t.Fatalf("proxied stream diverges:\n%q\nwant\n%q", rec.Body.String(), upstream)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
}
