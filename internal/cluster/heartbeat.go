package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// RegisterRequest is the POST /register and /deregister body a worker
// sends the coordinator.
type RegisterRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Heartbeater keeps one worker registered with the coordinator: an
// immediate registration on Start, then periodic re-registration until
// Stop. Deregister performs the draining handoff — the coordinator drops
// the worker from the ring and rebalances its key range before the
// worker drains its queue.
type Heartbeater struct {
	Coordinator string // coordinator base URL, e.g. http://127.0.0.1:9090
	ID          string // worker id (ring node name)
	URL         string // worker base URL the coordinator forwards jobs to
	Interval    time.Duration
	// MaxBackoff caps the beat delay while the coordinator is unreachable
	// (default 8×Interval). Consecutive failures double the delay from
	// Interval up to this cap, so a partitioned worker does not hammer a
	// struggling coordinator; the first success snaps back to Interval.
	MaxBackoff time.Duration
	Client     *http.Client

	once     sync.Once
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu    sync.Mutex
	fails int // consecutive beat failures
}

// Failures reports the current consecutive-failure streak (0 while the
// coordinator is reachable).
func (h *Heartbeater) Failures() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fails
}

func (h *Heartbeater) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

func (h *Heartbeater) post(path string) error {
	body, _ := json.Marshal(RegisterRequest{ID: h.ID, URL: h.URL})
	resp, err := h.client().Post(h.Coordinator+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s %s: status %d", path, h.ID, resp.StatusCode)
	}
	return nil
}

// Register sends one registration beat.
func (h *Heartbeater) Register() error { return h.post(APIPrefix + "/register") }

// Deregister removes the worker from the coordinator's ring.
func (h *Heartbeater) Deregister() error { return h.post(APIPrefix + "/deregister") }

// Start registers immediately (returning that first beat's error, so a
// worker pointed at a dead coordinator fails loudly at startup) and then
// re-registers every Interval until Stop.
func (h *Heartbeater) Start() error {
	err := h.Register()
	if err != nil {
		return err
	}
	interval := h.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	maxBackoff := h.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 8 * interval
	}
	h.once.Do(func() {
		h.stop = make(chan struct{})
		h.done = make(chan struct{})
		go func() {
			defer close(h.done)
			delay := interval
			t := time.NewTimer(delay)
			defer t.Stop()
			for {
				select {
				case <-h.stop:
					return
				case <-t.C:
					if err := h.Register(); err != nil {
						h.mu.Lock()
						h.fails++
						streak := h.fails
						h.mu.Unlock()
						delay = interval << uint(min(streak, 30))
						if delay > maxBackoff || delay <= 0 {
							delay = maxBackoff
						}
					} else {
						h.mu.Lock()
						h.fails = 0
						h.mu.Unlock()
						delay = interval
					}
					t.Reset(delay)
				}
			}
		}()
	})
	return nil
}

// Stop halts the beat loop (it does not deregister; call Deregister for
// the draining handoff). Safe to call more than once and from multiple
// goroutines.
func (h *Heartbeater) Stop() {
	if h.stop == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}
