package nor

import (
	"math"
	"testing"
	"testing/quick"

	"wavepim/internal/params"
)

func relErr32(got uint32, want float64) float64 {
	g := float64(math.Float32frombits(got))
	return math.Abs(g-want) / math.Abs(want)
}

func TestRecipFP32Accuracy(t *testing.T) {
	var c Circuit
	for _, d := range []float64{1, 2, 3, 0.5, 1.5, 2.25, 9.81, 1000, 1e-3, 123456.789} {
		got := c.RecipFP32(math.Float32bits(float32(d)))
		if e := relErr32(got, 1/d); e > 2e-7 {
			t.Errorf("recip(%g): rel err %g", d, e)
		}
	}
}

func TestRecipFP32Property(t *testing.T) {
	var c Circuit
	f := func(raw uint32) bool {
		// Positive normal range, away from overflow of the seed.
		d := float64(1e-3 + float64(raw%100000)/100) // [1e-3, 1000)
		got := c.RecipFP32(math.Float32bits(float32(d)))
		return relErr32(got, 1/d) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSqrtFP32Accuracy(t *testing.T) {
	var c Circuit
	for _, d := range []float64{1, 2, 4, 9, 2.25, 0.25, 100, 1e-4, 31.4159} {
		got := c.SqrtFP32(math.Float32bits(float32(d)))
		if e := relErr32(got, math.Sqrt(d)); e > 1e-6 {
			t.Errorf("sqrt(%g): rel err %g", d, e)
		}
	}
	if c.SqrtFP32(0) != 0 {
		t.Error("sqrt(0) != 0")
	}
}

func TestRsqrtFP32Property(t *testing.T) {
	var c Circuit
	f := func(raw uint32) bool {
		d := float64(1e-2 + float64(raw%1000000)/1000)
		got := c.RsqrtFP32(math.Float32bits(float32(d)))
		return relErr32(got, 1/math.Sqrt(d)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The design-choice quantification: an in-array reciprocal or square root
// costs an order of magnitude more latency than one basic operation, and
// vastly more than the Algorithm 1 LUT fetch (two row reads + one row
// write plus transit) — the paper's rationale for the host offload.
func TestLUTOffloadWinsOverInArraySpecialOps(t *testing.T) {
	lutLatency := 2*params.BlockRowReadLatency + params.BlockRowWriteLatency +
		8*params.SwitchHopLatencySec // generous transit allowance
	recipLatency := float64(RecipSteps()) * params.TNORSeconds
	sqrtLatency := float64(SqrtSteps()) * params.TNORSeconds
	if recipLatency < 50*lutLatency {
		t.Errorf("in-array recip (%.3gs) should dwarf a LUT fetch (%.3gs)", recipLatency, lutLatency)
	}
	if sqrtLatency < 50*lutLatency {
		t.Errorf("in-array sqrt (%.3gs) should dwarf a LUT fetch (%.3gs)", sqrtLatency, lutLatency)
	}
	// And the in-array ops are also far beyond one multiply.
	mul := float64(params.NORStepsFPMul32) * params.TNORSeconds
	if recipLatency < 3*mul || sqrtLatency < 3*mul {
		t.Error("special ops should cost several basic multiplies")
	}
}

func TestNegate(t *testing.T) {
	var c Circuit
	if got := math.Float32frombits(c.negate(math.Float32bits(3.5))); got != -3.5 {
		t.Errorf("negate got %g", got)
	}
}
