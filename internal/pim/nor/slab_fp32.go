package nor

// Slab-parallel IEEE-754 binary32 addition and multiplication: up to K*64
// independent operand pairs ride the lanes of each gate evaluation. This
// is the sliced_fp32.go datapath widened word-for-word to K-word slabs —
// the same gate decomposition, the same lane-mask control flow, the same
// host-side bookkeeping — so results and Stats remain bit-identical to
// the scalar and single-word sliced paths (slab_test.go property-tests
// all slab widths against both).
//
// The Batch entry points process arbitrary-length operand vectors in
// K*64-lane tiles, resetting the slab arena between tiles so the whole
// datapath runs allocation-free after warm-up and its live planes stay
// cache-resident.

// unpackedSlab holds the gate-extracted fields of one operand vector.
type unpackedSlab struct {
	sign  []Word
	isNaN []Word
	isInf []Word
	isZer []Word
	mant  SlabBits // 24 planes: significand with hidden bit
	eAdj  []int32  // effective exponent: max(exp, 1), host-read
}

func (c *SlabCircuit) packU32Slab(v []uint32) SlabBits {
	vals := make([]uint64, len(v))
	for l, x := range v {
		vals[l] = uint64(x)
	}
	return c.PackSlab(vals, 32)
}

func (c *SlabCircuit) unpackSlab(mask []Word, v []uint32) unpackedSlab {
	b := c.packU32Slab(v)
	var u unpackedSlab
	u.sign = b[signShift]
	expB := b[fracBits : fracBits+expBits]
	fracB := b[:fracBits]
	expAllOnes := c.AndReduce(mask, SlabBits(expB))
	fracZero := c.NOT(mask, c.OrReduce(mask, SlabBits(fracB)))
	expZero := c.NOT(mask, c.OrReduce(mask, SlabBits(expB)))
	u.isNaN = c.maskAndNot(expAllOnes, fracZero)
	u.isInf = c.maskAnd(expAllOnes, fracZero)
	u.isZer = c.maskAnd(expZero, fracZero)
	u.mant = make(SlabBits, 24)
	copy(u.mant, fracB)
	u.mant[23] = c.maskNot(expZero) // hidden bit
	u.eAdj = make([]int32, len(v))
	for l, x := range v {
		e := x >> fracBits & expMask
		if e == 0 {
			e = 1
		}
		u.eAdj[l] = int32(e)
	}
	return u
}

// packSlabOut assembles final bit patterns for the masked lanes into out,
// using the same carry-propagating ((eRc-1)<<23) + M gate add as the
// scalar and sliced packs.
func (c *SlabCircuit) packSlabOut(mask, sign []Word, eR []int, m SlabBits, out []uint32) {
	eVals := make([]uint64, len(eR))
	for l := range eR {
		if maskBit(mask, l) {
			eVals[l] = uint64(eR[l] - 1)
		}
	}
	e := c.PackSlab(eVals, 10)
	shifted := make(SlabBits, 33)
	for i := range shifted {
		shifted[i] = c.zero
	}
	copy(shifted[23:], e)
	sum := c.AddBits(mask, shifted, m, c.zero)
	low := sum[:33]
	for l := range eR {
		if !maskBit(mask, l) {
			continue
		}
		full := low.Lane(l)
		var v uint32
		if full>>23 >= expMask { // exponent overflow -> infinity
			v = expMask << 23
		} else {
			v = uint32(full)
		}
		if maskBit(sign, l) {
			v |= 1 << signShift
		}
		out[l] = v
	}
}

// roundRNESlab rounds the 24-plane significand given guard and sticky
// planes, returning 25 planes (possible carry out).
func (c *SlabCircuit) roundRNESlab(mask []Word, m SlabBits, guard, sticky []Word) SlabBits {
	lsb := m[0]
	roundUp := c.AND(mask, guard, c.OR(mask, sticky, lsb))
	inc := SlabBits{roundUp}
	return c.AddBits(mask, m, inc, c.zero)
}

// selSlabPlanes merges two plane vectors lane-wise: x where sel, y
// elsewhere (host data movement, no gate cost).
func (c *SlabCircuit) selSlabPlanes(sel []Word, x, y SlabBits) SlabBits {
	n := len(x)
	if len(y) > n {
		n = len(y)
	}
	out := make(SlabBits, n)
	for i := 0; i < n; i++ {
		xb, yb := c.plane(x, i), c.plane(y, i)
		o := c.grab()
		for w := range o {
			o[w] = xb[w]&sel[w] | yb[w]&^sel[w]
		}
		out[i] = o
	}
	return out
}

// selWord is the single-plane host merge: x where sel, y elsewhere.
func (c *SlabCircuit) selWord(sel, x, y []Word) []Word {
	o := c.grab()
	for w := range o {
		o[w] = x[w]&sel[w] | y[w]&^sel[w]
	}
	return o
}

func (c *SlabCircuit) checkSlabArgs(a, b []uint32) int {
	n := checkArgLens(a, b)
	if n > c.SlabLanes() {
		panic("nor: operand pairs exceed slab lanes")
	}
	return n
}

func checkArgLens(a, b []uint32) int {
	if len(a) != len(b) {
		panic("nor: lane operand lengths differ")
	}
	return len(a)
}

// MulFP32Slab multiplies up to K*64 float32 bit-pattern pairs lane-wise.
// Slabs handed out earlier are invalidated (the arena is reset).
func (c *SlabCircuit) MulFP32Slab(a, b []uint32) []uint32 {
	n := c.checkSlabArgs(a, b)
	out := make([]uint32, n)
	c.mulFP32SlabInto(a, b, out)
	return out
}

func (c *SlabCircuit) mulFP32SlabInto(a, b, out []uint32) {
	n := len(a)
	if n == 0 {
		return
	}
	c.ResetArena()
	active := c.SlabMask(n)
	ua := c.unpackSlab(active, a)
	ub := c.unpackSlab(active, b)
	sign := c.XOR(active, ua.sign, ub.sign)

	resolved := c.grabZero()
	for l := 0; l < n; l++ {
		switch {
		case maskBit(ua.isNaN, l) || maskBit(ub.isNaN, l):
			out[l] = quietNaN
			setMaskBit(resolved, l)
		case maskBit(ua.isInf, l) || maskBit(ub.isInf, l):
			if maskBit(ua.isZer, l) || maskBit(ub.isZer, l) {
				out[l] = quietNaN // inf * 0
			} else {
				v := uint32(expMask << 23)
				if maskBit(sign, l) {
					v |= 1 << signShift
				}
				out[l] = v
			}
			setMaskBit(resolved, l)
		}
	}
	live := c.maskAndNot(active, resolved)
	if maskEmpty(live) {
		return
	}

	// 24x24 -> 48-plane gate-level product and normalization scan.
	p := c.MulBits(live, ua.mant, ub.mant)
	lzPl := c.LeadingZeros(live, p)
	lz := make([]int, n)
	for l := 0; l < n; l++ {
		lz[l] = int(lzPl.Lane(l))
	}
	for l := 0; l < n; l++ {
		if maskBit(live, l) && lz[l] == 48 { // zero product
			out[l] = 0
			if maskBit(sign, l) {
				out[l] = 1 << signShift
			}
			clearMaskBit(live, l)
		}
	}
	if maskEmpty(live) {
		return
	}

	pn := c.ShiftLeftBits(live, p, lzPl)
	eR := make([]int, n)
	for l := 0; l < n; l++ {
		eR[l] = int(ua.eAdj[l]) + int(ub.eAdj[l]) - lz[l] - 126
	}

	m := pn[24:48].Clone()
	guard := pn[23]
	sticky := c.OrReduce(live, pn[:23])

	// Subnormal lanes: shift right until the exponent reaches 1. Lanes
	// with a zero shift amount pass through the masked shifter unchanged.
	subM := c.grabZero()
	anySub := false
	dVals := make([]uint64, n)
	for l := 0; l < n; l++ {
		if maskBit(live, l) && eR[l] < 1 {
			d := 1 - eR[l]
			if d > 31 {
				d = 31
			}
			dVals[l] = uint64(d)
			setMaskBit(subM, l)
			anySub = true
			eR[l] = 1
		}
	}
	if anySub {
		ext := make(SlabBits, 25)
		copy(ext[1:], m)
		ext[0] = guard
		shifted, lost := c.ShiftRightBits(subM, ext, c.PackSlab(dVals, 5))
		sticky = c.OR(subM, sticky, lost)
		m = shifted[1:25].Clone()
		guard = shifted[0]
	}

	rounded := c.roundRNESlab(live, m, guard, sticky)
	c.packSlabOut(live, sign, eR, rounded[:25], out)
}

// AddFP32Slab adds up to K*64 float32 bit-pattern pairs lane-wise. Slabs
// handed out earlier are invalidated (the arena is reset).
func (c *SlabCircuit) AddFP32Slab(a, b []uint32) []uint32 {
	n := c.checkSlabArgs(a, b)
	out := make([]uint32, n)
	c.addFP32SlabInto(a, b, out)
	return out
}

func (c *SlabCircuit) addFP32SlabInto(a, b, out []uint32) {
	n := len(a)
	if n == 0 {
		return
	}
	c.ResetArena()
	active := c.SlabMask(n)
	ua := c.unpackSlab(active, a)
	ub := c.unpackSlab(active, b)

	resolved := c.grabZero()
	for l := 0; l < n; l++ {
		switch {
		case maskBit(ua.isNaN, l) || maskBit(ub.isNaN, l):
			out[l] = quietNaN
			setMaskBit(resolved, l)
		case maskBit(ua.isInf, l) && maskBit(ub.isInf, l):
			if maskBit(ua.sign, l) != maskBit(ub.sign, l) {
				out[l] = quietNaN // inf - inf
			} else {
				out[l] = a[l]
			}
			setMaskBit(resolved, l)
		case maskBit(ua.isInf, l):
			out[l] = a[l]
			setMaskBit(resolved, l)
		case maskBit(ub.isInf, l):
			out[l] = b[l]
			setMaskBit(resolved, l)
		}
	}
	live := c.maskAndNot(active, resolved)
	if maskEmpty(live) {
		return
	}

	// Order operands by magnitude with a gate comparison of the low 31
	// bits.
	magAv := make([]uint64, n)
	magBv := make([]uint64, n)
	for l := 0; l < n; l++ {
		magAv[l] = uint64(a[l] & 0x7FFFFFFF)
		magBv[l] = uint64(b[l] & 0x7FFFFFFF)
	}
	aGE := c.GEBits(live, c.PackSlab(magAv, 31), c.PackSlab(magBv, 31))

	mantL := c.selSlabPlanes(aGE, ua.mant, ub.mant)
	mantS := c.selSlabPlanes(aGE, ub.mant, ua.mant)
	signL := c.selWord(aGE, ua.sign, ub.sign)
	signS := c.selWord(aGE, ub.sign, ua.sign)
	eL := make([]int, n)
	eS := make([]int, n)
	for l := 0; l < n; l++ {
		if maskBit(aGE, l) {
			eL[l], eS[l] = int(ua.eAdj[l]), int(ub.eAdj[l])
		} else {
			eL[l], eS[l] = int(ub.eAdj[l]), int(ua.eAdj[l])
		}
	}

	// Align: 3 GRS planes below the significands; shift the small operand
	// right by the per-lane exponent difference.
	mL := make(SlabBits, 28)
	mS := make(SlabBits, 28)
	for i := 0; i < 3; i++ {
		mL[i], mS[i] = c.zero, c.zero
	}
	copy(mL[3:27], mantL)
	copy(mS[3:27], mantS)
	mL[27], mS[27] = c.zero, c.zero
	sticky := c.zeroSlab()
	dPos := c.grabZero()
	anyD := false
	shVals := make([]uint64, n)
	for l := 0; l < n; l++ {
		if !maskBit(live, l) {
			continue
		}
		if d := eL[l] - eS[l]; d > 0 {
			if d > 31 {
				d = 31
			}
			shVals[l] = uint64(d)
			setMaskBit(dPos, l)
			anyD = true
		}
	}
	if anyD {
		var lost []Word
		mS, lost = c.ShiftRightBits(dPos, mS, c.PackSlab(shVals, 5))
		sticky = c.OR(dPos, sticky, lost)
	}

	sameSign := c.maskNot(c.XOR(live, signL, signS))
	addM := c.maskAnd(live, sameSign)
	subM := c.maskAndNot(live, sameSign)

	r := make(SlabBits, 29)
	for i := range r {
		r[i] = c.zero
	}
	if !maskEmpty(addM) {
		sum := c.AddBits(addM, mL, mS, c.zero)
		for i := range r {
			r[i] = c.maskAnd(sum[i], addM)
		}
	}
	if !maskEmpty(subM) {
		// |L| >= |S|: no borrow. Truncated alignment bits borrow one ULP.
		diff, _ := c.SubBits(subM, mL, mS)
		stickySub := c.maskAnd(subM, sticky)
		if !maskEmpty(stickySub) {
			one := SlabBits{c.maskNot(c.zero)}
			d2, _ := c.SubBits(stickySub, diff, one)
			for i := range diff {
				diff[i] = c.selWord(stickySub, d2[i], diff[i])
			}
		}
		for i := 0; i < 28; i++ {
			r[i] = c.maskOr(r[i], c.maskAnd(diff[i], subM))
		}
	}

	// Exact cancellation lanes.
	orr := c.OrReduce(live, r)
	for l := 0; l < n; l++ {
		if !maskBit(live, l) || maskBit(orr, l) || maskBit(sticky, l) {
			continue
		}
		out[l] = 0
		if maskBit(ua.isZer, l) && maskBit(ub.isZer, l) &&
			maskBit(ua.sign, l) && maskBit(ub.sign, l) {
			out[l] = 1 << signShift // (-0) + (-0)
		}
		clearMaskBit(live, l)
	}
	if maskEmpty(live) {
		return
	}

	// Normalize: per-lane leading-one position decides right shift (by at
	// most 2), left shift (clamped so the exponent never drops below 1),
	// or none; the two masked barrel shifts leave other lanes untouched.
	lzPl := c.LeadingZeros(live, r)
	eR := make([]int, n)
	kGT := c.grabZero()
	kLT := c.grabZero()
	anyGT, anyLT := false, false
	shGT := make([]uint64, n)
	shLT := make([]uint64, n)
	for l := 0; l < n; l++ {
		if !maskBit(live, l) {
			continue
		}
		k := 28 - int(lzPl.Lane(l))
		eR[l] = eL[l] + k - 26
		if k > 26 {
			shGT[l] = uint64(k - 26)
			setMaskBit(kGT, l)
			anyGT = true
		} else if k < 26 {
			sh := 26 - k
			if eR[l] < 1 {
				sh = eL[l] - 1
				if sh < 0 {
					sh = 0
				}
				eR[l] = 1
			}
			shLT[l] = uint64(sh)
			setMaskBit(kLT, l)
			anyLT = true
		}
	}
	if anyGT {
		var lost []Word
		r, lost = c.ShiftRightBits(kGT, r, c.PackSlab(shGT, 2))
		sticky = c.OR(kGT, sticky, lost)
	}
	if anyLT {
		r = c.ShiftLeftBits(kLT, r, c.PackSlab(shLT, 5))
	}

	m := r[3:27].Clone()
	guard := r[2]
	sticky = c.OR(live, sticky, c.OR(live, r[1], r[0]))

	subN := c.grabZero()
	anySubN := false
	ddVals := make([]uint64, n)
	for l := 0; l < n; l++ {
		if maskBit(live, l) && eR[l] < 1 {
			dd := 1 - eR[l]
			if dd > 31 {
				dd = 31
			}
			ddVals[l] = uint64(dd)
			setMaskBit(subN, l)
			anySubN = true
			eR[l] = 1
		}
	}
	if anySubN {
		ext := make(SlabBits, 25)
		copy(ext[1:], m)
		ext[0] = guard
		shifted, lost := c.ShiftRightBits(subN, ext, c.PackSlab(ddVals, 5))
		sticky = c.OR(subN, sticky, lost)
		m = shifted[1:25].Clone()
		guard = shifted[0]
	}

	rounded := c.roundRNESlab(live, m, guard, sticky)
	c.packSlabOut(live, signL, eR, rounded[:25], out)
}

// ---------------------------------------------------------------------------
// Batch drivers: arbitrary-length operand vectors in cache-blocked tiles
// ---------------------------------------------------------------------------

// MulFP32Batch multiplies len(out) float32 bit-pattern pairs, processing
// them in K*64-lane tiles (the arena resets between tiles, so the whole
// batch runs allocation-free after warm-up).
func (c *SlabCircuit) MulFP32Batch(a, b, out []uint32) {
	n := checkArgLens(a, b)
	if len(out) != n {
		panic("nor: batch output length mismatch")
	}
	tile := c.SlabLanes()
	for lo := 0; lo < n; lo += tile {
		hi := lo + tile
		if hi > n {
			hi = n
		}
		c.mulFP32SlabInto(a[lo:hi], b[lo:hi], out[lo:hi])
	}
}

// AddFP32Batch adds len(out) float32 bit-pattern pairs in K*64-lane
// tiles.
func (c *SlabCircuit) AddFP32Batch(a, b, out []uint32) {
	n := checkArgLens(a, b)
	if len(out) != n {
		panic("nor: batch output length mismatch")
	}
	tile := c.SlabLanes()
	for lo := 0; lo < n; lo += tile {
		hi := lo + tile
		if hi > n {
			hi = n
		}
		c.addFP32SlabInto(a[lo:hi], b[lo:hi], out[lo:hi])
	}
}

// MulFloat32Batch and AddFloat32Batch are convenience wrappers over
// float32 values.
func (c *SlabCircuit) MulFloat32Batch(a, b []float32) []float32 {
	out := make([]uint32, len(a))
	c.MulFP32Batch(lanesToBits(a), lanesToBits(b), out)
	return lanesFromBits(out)
}

func (c *SlabCircuit) AddFloat32Batch(a, b []float32) []float32 {
	out := make([]uint32, len(a))
	c.AddFP32Batch(lanesToBits(a), lanesToBits(b), out)
	return lanesFromBits(out)
}
