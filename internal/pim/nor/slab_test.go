package nor

import (
	"math/rand"
	"testing"
)

// The slab substrate's contract is exact three-way equivalence: for any
// batch and any slab width K, slab outputs and Stats match the
// single-word sliced path, which in turn matches the scalar gate path run
// once per lane. These tests enforce the full chain over random inputs
// (same category mix as the sliced tests) and the shared edge-case table.

var slabWidths = []int{1, 2, 3, 4, 8}

// slicedLanes runs the single-word sliced datapath in 64-lane chunks,
// returning outputs and total Stats — the middle link of the chain.
func slicedLanes(op func(*SlicedCircuit, []uint32, []uint32) []uint32, a, b []uint32) ([]uint32, Stats) {
	var c SlicedCircuit
	out := make([]uint32, 0, len(a))
	for lo := 0; lo < len(a); lo += Lanes {
		hi := lo + Lanes
		if hi > len(a) {
			hi = len(a)
		}
		out = append(out, op(&c, a[lo:hi], b[lo:hi])...)
	}
	return out, c.Stats
}

func checkSlabChain(t *testing.T, name string, k int, a, b []uint32,
	mul bool, got []uint32, gotStats Stats) {
	t.Helper()
	scalarOp, slicedOp := (*Circuit).AddFP32, (*SlicedCircuit).AddFP32Lanes
	if mul {
		scalarOp, slicedOp = (*Circuit).MulFP32, (*SlicedCircuit).MulFP32Lanes
	}
	wantScalar, scalarStats := scalarLanes(scalarOp, a, b)
	wantSliced, slicedStats := slicedLanes(slicedOp, a, b)
	for l := range wantScalar {
		if got[l] != wantScalar[l] {
			t.Errorf("%s K=%d lane %d: (%08x, %08x) slab %08x, scalar %08x",
				name, k, l, a[l], b[l], got[l], wantScalar[l])
		}
		if wantSliced[l] != wantScalar[l] {
			t.Errorf("%s lane %d: sliced %08x disagrees with scalar %08x",
				name, l, wantSliced[l], wantScalar[l])
		}
	}
	if gotStats != scalarStats {
		t.Errorf("%s K=%d stats: slab %+v, scalar %+v", name, k, gotStats, scalarStats)
	}
	if slicedStats != scalarStats {
		t.Errorf("%s stats: sliced %+v, scalar %+v", name, slicedStats, scalarStats)
	}
}

func TestSlabMulFP32Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range slabWidths {
		c := NewSlabCircuit(k)
		for batch := 0; batch < 12; batch++ {
			n := 1 + rng.Intn(k*Lanes)
			a := make([]uint32, n)
			b := make([]uint32, n)
			for i := range a {
				a[i], b[i] = randFP32(rng), randFP32(rng)
			}
			c.Stats = Stats{}
			got := c.MulFP32Slab(a, b)
			checkSlabChain(t, "MulFP32Slab", k, a, b, true, got, c.Stats)
		}
	}
}

func TestSlabAddFP32Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, k := range slabWidths {
		c := NewSlabCircuit(k)
		for batch := 0; batch < 12; batch++ {
			n := 1 + rng.Intn(k*Lanes)
			a := make([]uint32, n)
			b := make([]uint32, n)
			for i := range a {
				a[i], b[i] = randFP32(rng), randFP32(rng)
				if rng.Intn(8) == 0 {
					b[i] = a[i] ^ 1<<signShift // exact cancellation
				}
				if rng.Intn(8) == 0 {
					b[i] = (a[i] + uint32(rng.Intn(4))) ^ 1<<signShift // near cancellation
				}
			}
			c.Stats = Stats{}
			got := c.AddFP32Slab(a, b)
			checkSlabChain(t, "AddFP32Slab", k, a, b, false, got, c.Stats)
		}
	}
}

// The shared edge-case table, all pairs, through the tiled Batch drivers
// (which also exercises partial final tiles).
func TestSlabFP32EdgeCasesBatch(t *testing.T) {
	var a, b []uint32
	for _, x := range fpEdgeCases {
		for _, y := range fpEdgeCases {
			a = append(a, x)
			b = append(b, y)
		}
	}
	for _, k := range []int{1, 2, DefaultSlabWords} {
		c := NewSlabCircuit(k)
		got := make([]uint32, len(a))
		c.MulFP32Batch(a, b, got)
		checkSlabChain(t, "MulFP32Batch", k, a, b, true, got, c.Stats)

		c.Stats = Stats{}
		c.AddFP32Batch(a, b, got)
		checkSlabChain(t, "AddFP32Batch", k, a, b, false, got, c.Stats)
	}
}

// Integer blocks: each slab block must match the sliced block per word
// column, in both value and Stats.
func TestSlabIntBlocksDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const width = 16
	for _, k := range []int{1, 2, 4} {
		for trial := 0; trial < 6; trial++ {
			n := 1 + rng.Intn(k*Lanes)
			av := make([]uint64, n)
			bv := make([]uint64, n)
			shv := make([]uint64, n)
			for i := range av {
				av[i] = uint64(rng.Intn(1 << width))
				bv[i] = uint64(rng.Intn(1 << width))
				shv[i] = uint64(rng.Intn(1 << 5))
			}

			sc := NewSlabCircuit(k)
			mask := sc.SlabMask(n)
			aPl := sc.PackSlab(av, width)
			bPl := sc.PackSlab(bv, width)
			shPl := sc.PackSlab(shv, 5)
			sum := sc.AddBits(mask, aPl, bPl, sc.zeroSlab())
			diff, ge := sc.SubBits(mask, aPl, bPl)
			prod := sc.MulBits(mask, aPl, bPl)
			shr, stk := sc.ShiftRightBits(mask, aPl, shPl)
			shl := sc.ShiftLeftBits(mask, aPl, shPl)
			lz := sc.LeadingZeros(mask, aPl)
			inc := sc.IncBits(mask, aPl)
			muxed := sc.MuxBits(mask, ge, aPl, bPl)

			var c Circuit
			for l := 0; l < n; l++ {
				a := BitsFromUint(av[l], width)
				b := BitsFromUint(bv[l], width)
				sh := BitsFromUint(shv[l], 5)
				if got, want := sum.Lane(l), c.AddBits(a, b, false).Uint(); got != want {
					t.Fatalf("K=%d AddBits lane %d: %x != %x", k, l, got, want)
				}
				wd, wge := c.SubBits(a, b)
				if got := diff.Lane(l); got != wd.Uint() {
					t.Fatalf("K=%d SubBits lane %d: %x != %x", k, l, got, wd.Uint())
				}
				if got := maskBit(ge, l); got != wge {
					t.Fatalf("K=%d SubBits noBorrow lane %d: %v != %v", k, l, got, wge)
				}
				if got, want := prod.Lane(l), c.MulBits(a, b).Uint(); got != want {
					t.Fatalf("K=%d MulBits lane %d: %x != %x", k, l, got, want)
				}
				wshr, wstk := c.ShiftRightBits(a, sh)
				if got := shr.Lane(l); got != wshr.Uint() {
					t.Fatalf("K=%d ShiftRightBits lane %d: %x != %x", k, l, got, wshr.Uint())
				}
				if got := maskBit(stk, l); got != wstk {
					t.Fatalf("K=%d sticky lane %d: %v != %v", k, l, got, wstk)
				}
				if got, want := shl.Lane(l), c.ShiftLeftBits(a, sh).Uint(); got != want {
					t.Fatalf("K=%d ShiftLeftBits lane %d: %x != %x", k, l, got, want)
				}
				if got, want := lz.Lane(l), c.LeadingZeros(a).Uint(); got != want {
					t.Fatalf("K=%d LeadingZeros lane %d: %d != %d", k, l, got, want)
				}
				if got, want := inc.Lane(l), (av[l]+1)&((1<<(width+1))-1); got != want {
					t.Fatalf("K=%d IncBits lane %d: %x != %x", k, l, got, want)
				}
				gotMux := muxed.Lane(l) // MUX: a where sel=0, b where sel=1
				if wge && gotMux != bv[l] || !wge && gotMux != av[l] {
					t.Fatalf("K=%d MuxBits lane %d: %x (ge=%v a=%x b=%x)", k, l, gotMux, wge, av[l], bv[l])
				}
			}
		}
	}
}

// Batch drivers tile correctly at lengths that are not slab multiples,
// and repeated batches reuse the arena (no growth after warm-up).
func TestSlabBatchTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c := NewSlabCircuit(2)
	for _, n := range []int{1, 63, 64, 65, 128, 129, 200, 500} {
		a := make([]uint32, n)
		b := make([]uint32, n)
		for i := range a {
			a[i], b[i] = randFP32(rng), randFP32(rng)
		}
		got := make([]uint32, n)
		c.MulFP32Batch(a, b, got)
		want, _ := scalarLanes((*Circuit).MulFP32, a, b)
		for l := range want {
			if got[l] != want[l] {
				t.Fatalf("n=%d lane %d: batch %08x, scalar %08x", n, l, got[l], want[l])
			}
		}
	}
	// Arena is recycled between tiles: a second identical batch must not
	// grow the backing store.
	a := make([]uint32, 4*c.SlabLanes())
	b := make([]uint32, len(a))
	for i := range a {
		a[i], b[i] = randFP32(rng), randFP32(rng)
	}
	out := make([]uint32, len(a))
	c.AddFP32Batch(a, b, out)
	grown := len(c.arena)
	c.AddFP32Batch(a, b, out)
	if len(c.arena) != grown {
		t.Errorf("arena grew across identical batches: %d -> %d words", grown, len(c.arena))
	}
}

// Construction, packing and masking edges.
func TestSlabEdges(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewSlabCircuit(0) should panic")
			}
		}()
		NewSlabCircuit(0)
	}()
	c := NewSlabCircuit(3)
	if c.SlabLanes() != 192 {
		t.Fatalf("SlabLanes = %d, want 192", c.SlabLanes())
	}
	if got := c.MulFP32Slab(nil, nil); len(got) != 0 {
		t.Errorf("empty slab mul: %v", got)
	}
	if got := c.AddFP32Slab(nil, nil); len(got) != 0 {
		t.Errorf("empty slab add: %v", got)
	}
	got := c.MulFloat32Batch([]float32{3, -2}, []float32{4, 0.5})
	if len(got) != 2 || got[0] != 12 || got[1] != -1 {
		t.Errorf("MulFloat32Batch: %v", got)
	}
	got = c.AddFloat32Batch([]float32{1.5}, []float32{2.25})
	if len(got) != 1 || got[0] != 3.75 {
		t.Errorf("AddFloat32Batch: %v", got)
	}
	// Pack/Lane roundtrip across word boundaries.
	vals := make([]uint64, 150)
	rng := rand.New(rand.NewSource(15))
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 20))
	}
	pl := c.PackSlab(vals, 20)
	for l, v := range vals {
		if pl.Lane(l) != v {
			t.Fatalf("PackSlab/Lane roundtrip lane %d: %x != %x", l, pl.Lane(l), v)
		}
	}
	m := c.SlabMask(100)
	for l := 0; l < c.SlabLanes(); l++ {
		if maskBit(m, l) != (l < 100) {
			t.Fatalf("SlabMask(100) wrong at lane %d", l)
		}
	}
}
