package nor

// Gate-level integer datapath blocks. Everything here is built from
// Circuit's NOR primitive; the host-side Go control flow only sequences
// micro-operations (as the PIM's central controller and per-block decoders
// do in hardware) — every data bit flows through NOR gates.

// AddBits returns a + b (+ cin) over max(len(a), len(b)) bits plus a final
// carry bit appended as the MSB. Inputs of different lengths are
// zero-extended.
func (c *Circuit) AddBits(a, b Bits, cin bool) Bits {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Bits, n+1)
	carry := cin
	for i := 0; i < n; i++ {
		var ab, bb bool
		if i < len(a) {
			ab = a[i]
		}
		if i < len(b) {
			bb = b[i]
		}
		out[i], carry = c.FullAdder(ab, bb, carry)
	}
	out[n] = carry
	return out
}

// SubBits returns a - b over len(a) bits plus a borrow-free flag: the MSB
// of the result is the carry-out (true means a >= b when both are treated
// as unsigned of equal width).
func (c *Circuit) SubBits(a, b Bits) (diff Bits, noBorrow bool) {
	n := len(a)
	nb := make(Bits, n)
	for i := 0; i < n; i++ {
		var bb bool
		if i < len(b) {
			bb = b[i]
		}
		nb[i] = c.NOT(bb)
	}
	sum := c.AddBits(a, nb, true)
	return sum[:n], sum[n]
}

// GEBits returns a >= b for equal-width unsigned operands.
func (c *Circuit) GEBits(a, b Bits) bool {
	_, ge := c.SubBits(a, b)
	return ge
}

// MuxBits selects a (sel=false) or b (sel=true) element-wise; operands are
// zero-extended to the longer length.
func (c *Circuit) MuxBits(sel bool, a, b Bits) Bits {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Bits, n)
	for i := 0; i < n; i++ {
		var ab, bb bool
		if i < len(a) {
			ab = a[i]
		}
		if i < len(b) {
			bb = b[i]
		}
		out[i] = c.MUX(sel, ab, bb)
	}
	return out
}

// ShiftRightBits shifts a right by the unsigned amount encoded in sh (a
// barrel shifter built from MUX stages). Bits shifted out are ORed into a
// sticky bit, returned alongside the shifted value — exactly what IEEE
// rounding needs.
func (c *Circuit) ShiftRightBits(a Bits, sh Bits) (out Bits, sticky bool) {
	out = a.Clone()
	sticky = false
	for s := 0; s < len(sh); s++ {
		amount := 1 << uint(s)
		shifted := make(Bits, len(out))
		var lost bool
		for i := range shifted {
			if i+amount < len(out) {
				shifted[i] = out[i+amount]
			}
		}
		for i := 0; i < amount && i < len(out); i++ {
			lost = c.OR(lost, out[i])
		}
		// If this stage is active, adopt the shifted value and fold the
		// lost bits into sticky.
		sticky = c.OR(sticky, c.AND(sh[s], lost))
		out = c.MuxBits(sh[s], out, shifted)
	}
	return out, sticky
}

// ShiftLeftBits shifts a left by the amount in sh, dropping overflow.
func (c *Circuit) ShiftLeftBits(a Bits, sh Bits) Bits {
	out := a.Clone()
	for s := 0; s < len(sh); s++ {
		amount := 1 << uint(s)
		shifted := make(Bits, len(out))
		for i := range shifted {
			if i-amount >= 0 {
				shifted[i] = out[i-amount]
			}
		}
		out = c.MuxBits(sh[s], out, shifted)
	}
	return out
}

// MulBits returns the full 2n-bit product of two n-bit unsigned operands,
// via gate-level shift-and-add (the crossbar's sequential NOR multiply).
func (c *Circuit) MulBits(a, b Bits) Bits {
	n := len(a)
	if len(b) != n {
		panic("nor: MulBits operands must have equal width")
	}
	acc := make(Bits, 2*n)
	for i := 0; i < n; i++ {
		// partial = (a AND b[i]) << i
		partial := make(Bits, 2*n)
		for j := 0; j < n; j++ {
			partial[i+j] = c.AND(a[j], b[i])
		}
		sum := c.AddBits(acc, partial, false)
		acc = sum[:2*n]
	}
	return acc
}

// LeadingZeros counts the number of zero bits above the most significant
// one-bit of a. Implemented as a gate-level priority scan.
func (c *Circuit) LeadingZeros(a Bits) Bits {
	n := len(a)
	// width of the count
	w := 1
	for 1<<uint(w) <= n {
		w++
	}
	count := make(Bits, w)
	for i := range count {
		count[i] = false
	}
	seen := false // becomes true once a one-bit has been found (scanning MSB down)
	for i := n - 1; i >= 0; i-- {
		seen = c.OR(seen, a[i])
		// add NOT(seen) to count
		inc := c.NOT(seen)
		carry := inc
		for j := 0; j < w; j++ {
			count[j], carry = c.FullAdder(count[j], false, carry)
		}
	}
	return count
}

// IncBits returns a+1 over len(a) bits plus carry-out as the MSB.
func (c *Circuit) IncBits(a Bits) Bits {
	return c.AddBits(a, BitsFromUint(1, 1), false)
}

// OrReduce ORs all bits together.
func (c *Circuit) OrReduce(a Bits) bool {
	var v bool
	for _, b := range a {
		v = c.OR(v, b)
	}
	return v
}

// AndReduce ANDs all bits together.
func (c *Circuit) AndReduce(a Bits) bool {
	v := true
	for _, b := range a {
		v = c.AND(v, b)
	}
	return v
}

// EqualsConst compares a with the constant pattern of v.
func (c *Circuit) EqualsConst(a Bits, v uint64) bool {
	match := true
	for i, bit := range a {
		want := v>>uint(i)&1 == 1
		if want {
			match = c.AND(match, bit)
		} else {
			match = c.AND(match, c.NOT(bit))
		}
	}
	return match
}
