package nor

import "wavepim/internal/obs"

// Publish promotes the circuit-local Stats into registry counters — the
// observability layer's canonical names for the gate-level activity the
// energy model consumes. Accumulation stays circuit-local (the gate loop
// is far too hot for shared atomics); callers publish once per batch of
// work, so the registry's nor.* counters equal the sum of every published
// Stats. No-op against a nil registry.
func (s Stats) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("nor.evals").Add(s.NOREvals)
	reg.Counter("nor.sets").Add(s.Sets)
	reg.Counter("nor.resets").Add(s.Resets)
}
