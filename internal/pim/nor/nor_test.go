package nor

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestGatePrimitives(t *testing.T) {
	var c Circuit
	for _, a := range []bool{false, true} {
		if c.NOT(a) != !a {
			t.Error("NOT wrong")
		}
		for _, b := range []bool{false, true} {
			if c.OR(a, b) != (a || b) {
				t.Error("OR wrong")
			}
			if c.AND(a, b) != (a && b) {
				t.Error("AND wrong")
			}
			if c.XOR(a, b) != (a != b) {
				t.Error("XOR wrong")
			}
			if c.NOR(a, b) != !(a || b) {
				t.Error("NOR wrong")
			}
			for _, s := range []bool{false, true} {
				want := a
				if s {
					want = b
				}
				if c.MUX(s, a, b) != want {
					t.Error("MUX wrong")
				}
			}
		}
	}
}

func TestStatsCounting(t *testing.T) {
	var c Circuit
	c.NOR(false, false) // 1 eval, 1 reset, 1 set
	c.NOR(true)         // 1 eval, 1 reset, 0 set
	if c.Stats.NOREvals != 2 || c.Stats.Resets != 2 || c.Stats.Sets != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if c.Stats.Energy() <= 0 {
		t.Error("energy must be positive")
	}
	var other Stats
	other.Add(c.Stats)
	if other.NOREvals != 2 {
		t.Error("Stats.Add wrong")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		return BitsFromUint(v, 64).Uint() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddBitsProperty(t *testing.T) {
	var c Circuit
	f := func(a, b uint32) bool {
		got := c.AddBits(BitsFromUint(uint64(a), 32), BitsFromUint(uint64(b), 32), false)
		return got.Uint() == uint64(a)+uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSubBitsProperty(t *testing.T) {
	var c Circuit
	f := func(a, b uint32) bool {
		diff, noBorrow := c.SubBits(BitsFromUint(uint64(a), 32), BitsFromUint(uint64(b), 32))
		wantNoBorrow := a >= b
		return diff.Uint() == uint64(a-b) && noBorrow == wantNoBorrow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulBitsProperty(t *testing.T) {
	var c Circuit
	f := func(a, b uint32) bool {
		a &= 0xFFFFFF // 24-bit operands as in the FP32 datapath
		b &= 0xFFFFFF
		got := c.MulBits(BitsFromUint(uint64(a), 24), BitsFromUint(uint64(b), 24))
		return got.Uint() == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShiftRightBitsWithSticky(t *testing.T) {
	var c Circuit
	f := func(v uint32, shRaw uint8) bool {
		sh := uint64(shRaw % 32)
		out, sticky := c.ShiftRightBits(BitsFromUint(uint64(v), 32), BitsFromUint(sh, 5))
		wantOut := uint64(v) >> sh
		wantSticky := uint64(v)&((1<<sh)-1) != 0
		return out.Uint() == wantOut && sticky == wantSticky
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShiftLeftBits(t *testing.T) {
	var c Circuit
	f := func(v uint32, shRaw uint8) bool {
		sh := uint64(shRaw % 32)
		out := c.ShiftLeftBits(BitsFromUint(uint64(v), 32), BitsFromUint(sh, 5))
		return uint32(out.Uint()) == v<<sh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLeadingZeros(t *testing.T) {
	var c Circuit
	f := func(v uint64) bool {
		v &= (1 << 48) - 1
		got := c.LeadingZeros(BitsFromUint(v, 48))
		want := uint64(bits.LeadingZeros64(v) - 16) // 48-bit view
		return got.Uint() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if got := c.LeadingZeros(BitsFromUint(0, 48)).Uint(); got != 48 {
		t.Errorf("LeadingZeros(0) = %d want 48", got)
	}
}

func TestGEBits(t *testing.T) {
	var c Circuit
	f := func(a, b uint16) bool {
		return c.GEBits(BitsFromUint(uint64(a), 16), BitsFromUint(uint64(b), 16)) == (a >= b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// same reports FP32 bit equality, treating any two NaNs as equal (hardware
// NaN payloads are unspecified).
func sameFP32(got, want uint32) bool {
	if got == want {
		return true
	}
	gotNaN := got&0x7F800000 == 0x7F800000 && got&0x7FFFFF != 0
	wantNaN := want&0x7F800000 == 0x7F800000 && want&0x7FFFFF != 0
	return gotNaN && wantNaN
}

func hwMul(a, b uint32) uint32 {
	return math.Float32bits(math.Float32frombits(a) * math.Float32frombits(b))
}

func hwAdd(a, b uint32) uint32 {
	return math.Float32bits(math.Float32frombits(a) + math.Float32frombits(b))
}

// Directed FP32 edge cases: zeros, subnormals, infinities, NaN, rounding
// boundaries, massive cancellation.
var fpEdgeCases = []uint32{
	0x00000000,          // +0
	0x80000000,          // -0
	0x00000001,          // smallest subnormal
	0x80000001,          // -smallest subnormal
	0x007FFFFF,          // largest subnormal
	0x00800000,          // smallest normal
	0x3F800000,          // 1.0
	0xBF800000,          // -1.0
	0x3F800001,          // 1 + ulp
	0x34000000,          // 2^-23
	0x33FFFFFF,          // just under 2^-23
	0x7F7FFFFF,          // max finite
	0xFF7FFFFF,          // -max finite
	0x7F800000,          // +inf
	0xFF800000,          // -inf
	0x7FC00000,          // NaN
	0x7F800001,          // signaling NaN pattern
	0x40490FDB,          // pi
	0x501502F9,          // 1e10
	0x0DA24260,          // tiny normal
	math.Float32bits(3), // small integers
	math.Float32bits(0.1),
	math.Float32bits(-0.5),
	math.Float32bits(1.5e38),
	math.Float32bits(6e-39), // subnormal range
}

func TestMulFP32EdgeCases(t *testing.T) {
	var c Circuit
	for _, a := range fpEdgeCases {
		for _, b := range fpEdgeCases {
			got := c.MulFP32(a, b)
			want := hwMul(a, b)
			if !sameFP32(got, want) {
				t.Errorf("MulFP32(%08x, %08x) = %08x, want %08x (%g * %g)",
					a, b, got, want,
					math.Float32frombits(a), math.Float32frombits(b))
			}
		}
	}
}

func TestAddFP32EdgeCases(t *testing.T) {
	var c Circuit
	for _, a := range fpEdgeCases {
		for _, b := range fpEdgeCases {
			got := c.AddFP32(a, b)
			want := hwAdd(a, b)
			if !sameFP32(got, want) {
				t.Errorf("AddFP32(%08x, %08x) = %08x, want %08x (%g + %g)",
					a, b, got, want,
					math.Float32frombits(a), math.Float32frombits(b))
			}
		}
	}
}

func TestMulFP32Property(t *testing.T) {
	var c Circuit
	f := func(a, b uint32) bool {
		return sameFP32(c.MulFP32(a, b), hwMul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestAddFP32Property(t *testing.T) {
	var c Circuit
	f := func(a, b uint32) bool {
		return sameFP32(c.AddFP32(a, b), hwAdd(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Near-cancellation stress: a + (-a*(1+k ulp)) exercises the subtract path
// with every small alignment.
func TestAddFP32Cancellation(t *testing.T) {
	var c Circuit
	base := math.Float32bits(float32(1.2345678))
	for k := uint32(0); k < 40; k++ {
		a := base
		b := (base + k) | 0x80000000
		got := c.AddFP32(a, b)
		want := hwAdd(a, b)
		if !sameFP32(got, want) {
			t.Errorf("cancellation k=%d: got %08x want %08x", k, got, want)
		}
	}
}

// Subnormal sweep: products and sums that land in the subnormal range.
func TestFP32SubnormalResults(t *testing.T) {
	var c Circuit
	vals := []float32{1e-38, 2e-38, 5e-39, 1.5e-39, 3e-39}
	for _, x := range vals {
		for _, y := range vals {
			a, b := math.Float32bits(x), math.Float32bits(y)
			if got, want := c.MulFP32(a, b), hwMul(a, b); !sameFP32(got, want) {
				t.Errorf("subnormal mul %g*%g: got %08x want %08x", x, y, got, want)
			}
			nb := b | 0x80000000
			if got, want := c.AddFP32(a, nb), hwAdd(a, nb); !sameFP32(got, want) {
				t.Errorf("subnormal add %g-%g: got %08x want %08x", x, y, got, want)
			}
		}
	}
}

func TestFloat32Wrappers(t *testing.T) {
	var c Circuit
	if got := c.MulFloat32(3, 4); got != 12 {
		t.Errorf("MulFloat32(3,4)=%g", got)
	}
	if got := c.AddFloat32(1.5, 2.25); got != 3.75 {
		t.Errorf("AddFloat32=%g", got)
	}
}

// The energy model orders operations sensibly: multiply costs more gates
// (and energy) than add.
func TestMulCostsMoreThanAdd(t *testing.T) {
	var ca, cm Circuit
	ca.AddFP32(math.Float32bits(1.7), math.Float32bits(2.9))
	cm.MulFP32(math.Float32bits(1.7), math.Float32bits(2.9))
	if cm.Stats.NOREvals <= ca.Stats.NOREvals {
		t.Errorf("mul gates %d should exceed add gates %d", cm.Stats.NOREvals, ca.Stats.NOREvals)
	}
	if cm.Stats.Energy() <= ca.Stats.Energy() {
		t.Error("mul energy should exceed add energy")
	}
}
