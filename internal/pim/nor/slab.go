package nor

import (
	"fmt"
	"math/bits"
)

// Multi-slab bit-sliced evaluation of the NOR substrate. SlicedCircuit
// processes 64 lanes per machine op (one uint64 "word" per bit plane);
// SlabCircuit widens each plane to a K-word slab, so one gate evaluation
// drives K*64 lanes with a single tight loop over K contiguous words —
// SIMDRAM's observation that bit-serial throughput scales with effective
// SIMD width, applied to the software model. Per-gate bookkeeping
// (function call, Stats update, plane allocation) is amortized K-fold,
// and the slab loops are contiguous, branch-free and auto-vectorizable.
//
// Equivalence contract: SlabCircuit mirrors SlicedCircuit word-column by
// word-column. Running a K-slab gate is gate-for-gate identical to
// running the single-word gate K times on the columns, so the exactness
// chain scalar == sliced == slab holds for both outputs and Stats; the
// property tests in slab_test.go enforce all three levels.
//
// Memory: plane slabs are bump-allocated from an internal arena that the
// Batch drivers reset between tiles, so steady-state slab evaluation does
// no heap allocation. Tiles are sized at K*64 lanes — K is chosen so a
// working set of ~200 live planes stays cache-resident (K=8 keeps it
// around 12 KB, far inside L1d; see DefaultSlabWords).

// DefaultSlabWords is the slab width used when callers do not choose one:
// wide enough to amortize per-gate overhead, narrow enough that one
// fp32 datapath's live planes stay in L1d.
const DefaultSlabWords = 8

// SlabBits is a bit-plane vector over K-word slabs: SlabBits[i] holds bit
// i of every lane, as a slab of K words (lane l lives in word l/64, bit
// l%64). The slabs of one vector are arena-allocated back to back, so
// plane-sequential gate loops walk contiguous memory.
type SlabBits [][]Word

// Clone copies the plane-slab headers (slabs themselves are shared; gates
// never mutate their inputs).
func (s SlabBits) Clone() SlabBits { return append(SlabBits(nil), s...) }

// SlabCircuit evaluates K*64 NOR gates per plane operation and records
// the same Stats the scalar Circuit would for the masked lanes.
type SlabCircuit struct {
	Stats Stats
	K     int

	arena []Word // bump-allocated slab storage, reset per tile
	off   int
	zero  []Word // shared all-zero slab, read-only
}

// NewSlabCircuit returns a circuit with K-word slabs (K*64 lanes).
func NewSlabCircuit(k int) *SlabCircuit {
	if k < 1 {
		panic(fmt.Sprintf("nor: slab width %d must be >= 1", k))
	}
	return &SlabCircuit{K: k, zero: make([]Word, k)}
}

// SlabLanes returns the lane capacity of the circuit.
func (c *SlabCircuit) SlabLanes() int { return c.K * Lanes }

// grab bump-allocates one uninitialized K-word slab. Callers must fully
// overwrite it (every gate does) or use zeroSlab for all-zero planes.
func (c *SlabCircuit) grab() []Word {
	if c.off+c.K > len(c.arena) {
		n := 1024 * c.K
		if n < 2*len(c.arena) {
			n = 2 * len(c.arena)
		}
		c.arena = make([]Word, n)
		c.off = 0
	}
	s := c.arena[c.off : c.off+c.K : c.off+c.K]
	c.off += c.K
	return s
}

// grabZero is grab plus clearing (for planes built up incrementally).
func (c *SlabCircuit) grabZero() []Word {
	s := c.grab()
	for i := range s {
		s[i] = 0
	}
	return s
}

// zeroSlab returns the shared all-zero slab. Read-only: callers must
// never write through it.
func (c *SlabCircuit) zeroSlab() []Word { return c.zero }

// ResetArena recycles all slabs handed out since the last reset. Any
// SlabBits or mask obtained earlier becomes invalid; the Batch drivers
// call this between tiles after extracting host-side results.
func (c *SlabCircuit) ResetArena() { c.off = 0 }

// ---------------------------------------------------------------------------
// Masks and packing (host-side, no gate cost — mirrors the sliced path's
// free word operations)
// ---------------------------------------------------------------------------

// SlabMask returns the mask slab selecting the first n of the circuit's
// K*64 lanes.
func (c *SlabCircuit) SlabMask(n int) []Word {
	if n < 0 || n > c.SlabLanes() {
		panic(fmt.Sprintf("nor: lane count %d out of range [0,%d]", n, c.SlabLanes()))
	}
	m := c.grabZero()
	for w := 0; w < c.K && n > 0; w++ {
		take := n
		if take > Lanes {
			take = Lanes
		}
		m[w] = LaneMask(take)
		n -= take
	}
	return m
}

// maskAnd, maskAndNot, maskOr and maskNot are host-side mask algebra
// (the slab analogue of `a & b` etc. on sliced Word masks).
func (c *SlabCircuit) maskAnd(a, b []Word) []Word {
	o := c.grab()
	for i := range o {
		o[i] = a[i] & b[i]
	}
	return o
}

func (c *SlabCircuit) maskAndNot(a, b []Word) []Word {
	o := c.grab()
	for i := range o {
		o[i] = a[i] &^ b[i]
	}
	return o
}

func (c *SlabCircuit) maskOr(a, b []Word) []Word {
	o := c.grab()
	for i := range o {
		o[i] = a[i] | b[i]
	}
	return o
}

func (c *SlabCircuit) maskNot(a []Word) []Word {
	o := c.grab()
	for i := range o {
		o[i] = ^a[i]
	}
	return o
}

func maskEmpty(m []Word) bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

func maskBit(m []Word, l int) bool { return m[l>>6]&(Word(1)<<uint(l&63)) != 0 }

func setMaskBit(m []Word, l int) { m[l>>6] |= Word(1) << uint(l&63) }

func clearMaskBit(m []Word, l int) { m[l>>6] &^= Word(1) << uint(l&63) }

// PackSlab builds bit planes from up to K*64 per-lane values.
func (c *SlabCircuit) PackSlab(vals []uint64, width int) SlabBits {
	if len(vals) > c.SlabLanes() {
		panic(fmt.Sprintf("nor: %d lane values exceed %d slab lanes", len(vals), c.SlabLanes()))
	}
	out := make(SlabBits, width)
	for i := range out {
		out[i] = c.grabZero()
	}
	for l, v := range vals {
		w, b := l>>6, uint(l&63)
		for i := 0; i < width; i++ {
			if v>>uint(i)&1 == 1 {
				out[i][w] |= Word(1) << b
			}
		}
	}
	return out
}

// Lane extracts one lane's value from the planes (panics if wider than 64
// planes).
func (s SlabBits) Lane(l int) uint64 {
	if len(s) > 64 {
		panic("nor: SlabBits wider than 64")
	}
	w, b := l>>6, uint(l&63)
	var v uint64
	for i, p := range s {
		if p[w]>>b&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// ---------------------------------------------------------------------------
// Gate primitives — the cache-blocked inner loops
// ---------------------------------------------------------------------------

func (c *SlabCircuit) nor1(mask, a []Word) []Word {
	out := c.grab()
	var evals, sets int64
	for i := 0; i < c.K; i++ {
		o := ^a[i]
		out[i] = o
		evals += int64(bits.OnesCount64(mask[i]))
		sets += int64(bits.OnesCount64(o & mask[i]))
	}
	c.Stats.NOREvals += evals
	c.Stats.Resets += evals
	c.Stats.Sets += sets
	return out
}

func (c *SlabCircuit) nor2(mask, a, b []Word) []Word {
	out := c.grab()
	var evals, sets int64
	for i := 0; i < c.K; i++ {
		o := ^(a[i] | b[i])
		out[i] = o
		evals += int64(bits.OnesCount64(mask[i]))
		sets += int64(bits.OnesCount64(o & mask[i]))
	}
	c.Stats.NOREvals += evals
	c.Stats.Resets += evals
	c.Stats.Sets += sets
	return out
}

// NOR is the two-input primitive over the masked lanes.
func (c *SlabCircuit) NOR(mask, a, b []Word) []Word { return c.nor2(mask, a, b) }

// NOT is NOR with one input.
func (c *SlabCircuit) NOT(mask, a []Word) []Word { return c.nor1(mask, a) }

// The composite gates below are FUSED: instead of materializing every
// intermediate NOR output as its own slab (a memory round-trip per gate),
// one loop per composite keeps the whole NOR chain of each word in
// registers and writes only the final plane(s). The gates evaluated — and
// therefore Stats — are exactly the scalar/sliced decompositions,
// intermediate by intermediate (including re-evaluated duplicates like
// the two NOT(a) gates inside a FullAdder); only the memory traffic
// changes. This fusion is what makes the slab path beat the single-word
// sliced path per lane rather than merely matching it.

// OR is NOT(NOR(a,b)): 2 gates.
func (c *SlabCircuit) OR(mask, a, b []Word) []Word {
	out := c.grab()
	var evals, sets int64
	for i := 0; i < c.K; i++ {
		m := mask[i]
		g1 := ^(a[i] | b[i])
		o := ^g1
		out[i] = o
		evals += int64(bits.OnesCount64(m))
		sets += int64(bits.OnesCount64(g1&m) + bits.OnesCount64(o&m))
	}
	c.Stats.NOREvals += 2 * evals
	c.Stats.Resets += 2 * evals
	c.Stats.Sets += sets
	return out
}

// AND is NOR(NOT a, NOT b): 3 gates.
func (c *SlabCircuit) AND(mask, a, b []Word) []Word {
	out := c.grab()
	var evals, sets int64
	for i := 0; i < c.K; i++ {
		m := mask[i]
		g1 := ^a[i]
		g2 := ^b[i]
		o := ^(g1 | g2)
		out[i] = o
		evals += int64(bits.OnesCount64(m))
		sets += int64(bits.OnesCount64(g1&m) + bits.OnesCount64(g2&m) +
			bits.OnesCount64(o&m))
	}
	c.Stats.NOREvals += 3 * evals
	c.Stats.Resets += 3 * evals
	c.Stats.Sets += sets
	return out
}

// XOR from five NORs, as in the scalar and sliced gates.
func (c *SlabCircuit) XOR(mask, a, b []Word) []Word {
	out := c.grab()
	var evals, sets int64
	for i := 0; i < c.K; i++ {
		m := mask[i]
		av, bv := a[i], b[i]
		g1 := ^(av | bv)
		g2 := ^av
		g3 := ^bv
		g4 := ^(g2 | g3)
		o := ^(g1 | g4)
		out[i] = o
		evals += int64(bits.OnesCount64(m))
		sets += int64(bits.OnesCount64(g1&m) + bits.OnesCount64(g2&m) +
			bits.OnesCount64(g3&m) + bits.OnesCount64(g4&m) +
			bits.OnesCount64(o&m))
	}
	c.Stats.NOREvals += 5 * evals
	c.Stats.Resets += 5 * evals
	c.Stats.Sets += sets
	return out
}

// MUX returns a where sel is 0, b where sel is 1:
// OR(AND(NOT sel, a), AND(sel, b)), 9 gates.
func (c *SlabCircuit) MUX(mask, sel, a, b []Word) []Word {
	out := c.grab()
	var evals, sets int64
	for i := 0; i < c.K; i++ {
		m := mask[i]
		sv, av, bv := sel[i], a[i], b[i]
		n1 := ^sv
		p1 := ^n1
		p2 := ^av
		and1 := ^(p1 | p2)
		q1 := ^sv
		q2 := ^bv
		and2 := ^(q1 | q2)
		r1 := ^(and1 | and2)
		o := ^r1
		out[i] = o
		evals += int64(bits.OnesCount64(m))
		sets += int64(bits.OnesCount64(n1&m) + bits.OnesCount64(p1&m) +
			bits.OnesCount64(p2&m) + bits.OnesCount64(and1&m) +
			bits.OnesCount64(q1&m) + bits.OnesCount64(q2&m) +
			bits.OnesCount64(and2&m) + bits.OnesCount64(r1&m) +
			bits.OnesCount64(o&m))
	}
	c.Stats.NOREvals += 9 * evals
	c.Stats.Resets += 9 * evals
	c.Stats.Sets += sets
	return out
}

// FullAdder returns (sum, carry) of a + b + cin lane-wise: two XORs plus
// the carry network, 18 gates.
func (c *SlabCircuit) FullAdder(mask, a, b, cin []Word) (sum, carry []Word) {
	sum = c.grab()
	carry = c.grab()
	var evals, sets int64
	for i := 0; i < c.K; i++ {
		m := mask[i]
		av, bv, cv := a[i], b[i], cin[i]
		// axb = XOR(a, b)
		g1 := ^(av | bv)
		g2 := ^av
		g3 := ^bv
		g4 := ^(g2 | g3)
		axb := ^(g1 | g4)
		// sum = XOR(axb, cin)
		h1 := ^(axb | cv)
		h2 := ^axb
		h3 := ^cv
		h4 := ^(h2 | h3)
		s := ^(h1 | h4)
		// carry = OR(AND(a, b), AND(axb, cin))
		i1 := ^av
		i2 := ^bv
		and1 := ^(i1 | i2)
		j1 := ^axb
		j2 := ^cv
		and2 := ^(j1 | j2)
		k1 := ^(and1 | and2)
		cy := ^k1
		sum[i], carry[i] = s, cy
		evals += int64(bits.OnesCount64(m))
		sets += int64(bits.OnesCount64(g1&m) + bits.OnesCount64(g2&m) +
			bits.OnesCount64(g3&m) + bits.OnesCount64(g4&m) +
			bits.OnesCount64(axb&m) +
			bits.OnesCount64(h1&m) + bits.OnesCount64(h2&m) +
			bits.OnesCount64(h3&m) + bits.OnesCount64(h4&m) +
			bits.OnesCount64(s&m) +
			bits.OnesCount64(i1&m) + bits.OnesCount64(i2&m) +
			bits.OnesCount64(and1&m) +
			bits.OnesCount64(j1&m) + bits.OnesCount64(j2&m) +
			bits.OnesCount64(and2&m) +
			bits.OnesCount64(k1&m) + bits.OnesCount64(cy&m))
	}
	c.Stats.NOREvals += 18 * evals
	c.Stats.Resets += 18 * evals
	c.Stats.Sets += sets
	return sum, carry
}

// plane returns s[i], or the zero slab past the end (the slab analogue of
// the sliced path's zero-extension).
func (c *SlabCircuit) plane(s SlabBits, i int) []Word {
	if i < len(s) {
		return s[i]
	}
	return c.zero
}

// AddBits returns a + b (+ cin) over max(len(a), len(b)) planes plus a
// final carry plane.
func (c *SlabCircuit) AddBits(mask []Word, a, b SlabBits, cin []Word) SlabBits {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(SlabBits, n+1)
	carry := cin
	for i := 0; i < n; i++ {
		out[i], carry = c.FullAdder(mask, c.plane(a, i), c.plane(b, i), carry)
	}
	out[n] = carry
	return out
}

// SubBits returns a - b over len(a) planes plus a no-borrow plane.
func (c *SlabCircuit) SubBits(mask []Word, a, b SlabBits) (diff SlabBits, noBorrow []Word) {
	n := len(a)
	nb := make(SlabBits, n)
	for i := 0; i < n; i++ {
		nb[i] = c.NOT(mask, c.plane(b, i))
	}
	ones := c.maskNot(c.zero)
	sum := c.AddBits(mask, a, nb, ones)
	return sum[:n], sum[n]
}

// GEBits returns the a >= b plane for equal-width unsigned operands.
func (c *SlabCircuit) GEBits(mask []Word, a, b SlabBits) []Word {
	_, ge := c.SubBits(mask, a, b)
	return ge
}

// MuxBits selects a (sel=0) or b (sel=1) lane-wise per plane.
func (c *SlabCircuit) MuxBits(mask, sel []Word, a, b SlabBits) SlabBits {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(SlabBits, n)
	for i := 0; i < n; i++ {
		out[i] = c.MUX(mask, sel, c.plane(a, i), c.plane(b, i))
	}
	return out
}

// ShiftRightBits shifts each lane right by its amount encoded in the sh
// planes, ORing shifted-out bits into a sticky plane (same barrel
// structure as the sliced shifter).
func (c *SlabCircuit) ShiftRightBits(mask []Word, a, sh SlabBits) (out SlabBits, sticky []Word) {
	out = a.Clone()
	sticky = c.zeroSlab()
	for s := 0; s < len(sh); s++ {
		amount := 1 << uint(s)
		shifted := make(SlabBits, len(out))
		for i := range shifted {
			if i+amount < len(out) {
				shifted[i] = out[i+amount]
			} else {
				shifted[i] = c.zero
			}
		}
		lost := c.zeroSlab()
		for i := 0; i < amount && i < len(out); i++ {
			lost = c.OR(mask, lost, out[i])
		}
		sticky = c.OR(mask, sticky, c.AND(mask, sh[s], lost))
		out = c.MuxBits(mask, sh[s], out, shifted)
	}
	return out, sticky
}

// ShiftLeftBits shifts each lane left by its amount in sh, dropping
// overflow.
func (c *SlabCircuit) ShiftLeftBits(mask []Word, a, sh SlabBits) SlabBits {
	out := a.Clone()
	for s := 0; s < len(sh); s++ {
		amount := 1 << uint(s)
		shifted := make(SlabBits, len(out))
		for i := range shifted {
			if i-amount >= 0 {
				shifted[i] = out[i-amount]
			} else {
				shifted[i] = c.zero
			}
		}
		out = c.MuxBits(mask, sh[s], out, shifted)
	}
	return out
}

// MulBits returns the full 2n-plane product of two n-plane unsigned
// operands via gate-level shift-and-add.
func (c *SlabCircuit) MulBits(mask []Word, a, b SlabBits) SlabBits {
	n := len(a)
	if len(b) != n {
		panic("nor: MulBits operands must have equal width")
	}
	acc := make(SlabBits, 2*n)
	for i := range acc {
		acc[i] = c.zero
	}
	for i := 0; i < n; i++ {
		partial := make(SlabBits, 2*n)
		for j := range partial {
			partial[j] = c.zero
		}
		for j := 0; j < n; j++ {
			partial[i+j] = c.AND(mask, a[j], b[i])
		}
		sum := c.AddBits(mask, acc, partial, c.zero)
		acc = sum[:2*n]
	}
	return acc
}

// LeadingZeros counts each lane's zero bits above its most significant
// one-bit, as a gate-level priority scan.
func (c *SlabCircuit) LeadingZeros(mask []Word, a SlabBits) SlabBits {
	n := len(a)
	w := 1
	for 1<<uint(w) <= n {
		w++
	}
	count := make(SlabBits, w)
	for i := range count {
		count[i] = c.zero
	}
	seen := c.zeroSlab()
	for i := n - 1; i >= 0; i-- {
		seen = c.OR(mask, seen, a[i])
		inc := c.NOT(mask, seen)
		carry := inc
		for j := 0; j < w; j++ {
			count[j], carry = c.FullAdder(mask, count[j], c.zero, carry)
		}
	}
	return count
}

// IncBits returns a+1 per lane over len(a) planes plus carry-out.
func (c *SlabCircuit) IncBits(mask []Word, a SlabBits) SlabBits {
	one := SlabBits{c.maskNot(c.zero)}
	return c.AddBits(mask, a, one, c.zero)
}

// OrReduce ORs all planes together per lane.
func (c *SlabCircuit) OrReduce(mask []Word, a SlabBits) []Word {
	v := c.zeroSlab()
	for _, b := range a {
		v = c.OR(mask, v, b)
	}
	return v
}

// AndReduce ANDs all planes together per lane.
func (c *SlabCircuit) AndReduce(mask []Word, a SlabBits) []Word {
	v := c.maskNot(c.zero)
	for _, b := range a {
		v = c.AND(mask, v, b)
	}
	return v
}
