package nor

import "math"

// IEEE-754 binary32 addition and multiplication built on the gate-level
// integer blocks of this package. The mantissa datapath — the O(width) and
// O(width^2) serial work that dominates a bit-serial PIM's latency and
// energy (alignment shifts, the 24x24 multiply, the wide adds, leading-zero
// scan, rounding increment) — runs entirely through Circuit's NOR gates.
// Exponent bookkeeping and special-case dispatch (NaN/Inf/zero), eight-bit
// quantities the real hardware resolves in its per-block decoder when
// choosing which micro-sequence to issue, are sequenced by the controller
// here as plain integer reads of gate-extracted fields.
//
// Both operations implement round-to-nearest-even including subnormal
// inputs and outputs, signed zeros, infinities and NaN, and are
// property-tested bit-for-bit against Go's hardware float32 arithmetic.

const (
	expBits   = 8
	fracBits  = 23
	expMask   = 0xFF
	fracMask  = 0x7FFFFF
	quietNaN  = 0x7FC00000
	signShift = 31
)

// unpacked holds the gate-extracted fields of one operand.
type unpacked struct {
	sign  bool
	exp   uint32 // biased exponent field
	frac  uint32 // fraction field
	eAdj  int    // effective exponent: max(exp, 1)
	mant  Bits   // 24-bit significand with hidden bit
	isNaN bool
	isInf bool
	isZer bool
}

func (c *Circuit) unpack(bits uint32) unpacked {
	b := BitsFromUint(uint64(bits), 32)
	var u unpacked
	u.sign = b[signShift]
	expB := b[fracBits : fracBits+expBits]
	fracB := b[:fracBits]
	u.exp = uint32(expB.Uint())
	u.frac = uint32(fracB.Uint())
	expAllOnes := c.AndReduce(expB)
	fracZero := c.NOT(c.OrReduce(fracB))
	expZero := c.NOT(c.OrReduce(expB))
	u.isNaN = expAllOnes && !fracZero
	u.isInf = expAllOnes && fracZero
	u.isZer = expZero && fracZero
	u.eAdj = int(u.exp)
	if u.exp == 0 {
		u.eAdj = 1
	}
	u.mant = make(Bits, 24)
	copy(u.mant, fracB)
	u.mant[23] = !expZero // hidden bit
	return u
}

// pack assembles the final bit pattern from sign, a clamped biased exponent
// eRc >= 1, and the rounded 24/25-bit significand M. It uses the
// carry-propagating encoding bits = ((eRc-1)<<23) + M, which automatically
// promotes mantissa overflow (M = 2^24) and subnormal round-up (M = 2^23
// with eRc = 1) to the next exponent. The addition runs through the gate
// adder.
func (c *Circuit) pack(sign bool, eRc int, m Bits) uint32 {
	e := BitsFromUint(uint64(eRc-1), 10)
	// bits = (e << 23) + m over 33 bits (wide enough that an exponent past
	// 255 cannot alias back into the field).
	shifted := make(Bits, 33)
	copy(shifted[23:], e)
	sum := c.AddBits(shifted, m, false)
	full := sum[:33].Uint()
	var v uint32
	if full>>23 >= expMask { // exponent overflow -> infinity
		v = expMask << 23
	} else {
		v = uint32(full)
	}
	if sign {
		v |= 1 << signShift
	}
	return v
}

// roundRNE rounds the 24-bit significand m (LSB-first) given guard and
// sticky, returning a 25-bit result (possible carry out). The increment is
// a gate-level add.
func (c *Circuit) roundRNE(m Bits, guard, sticky bool) Bits {
	lsb := m[0]
	roundUp := c.AND(guard, c.OR(sticky, lsb))
	inc := make(Bits, 1)
	inc[0] = roundUp
	return c.AddBits(m, inc, false)
}

// MulFP32 multiplies two float32 bit patterns.
func (c *Circuit) MulFP32(a, b uint32) uint32 {
	ua, ub := c.unpack(a), c.unpack(b)
	sign := c.XOR(ua.sign, ub.sign)
	switch {
	case ua.isNaN || ub.isNaN:
		return quietNaN
	case ua.isInf || ub.isInf:
		if ua.isZer || ub.isZer {
			return quietNaN // inf * 0
		}
		v := uint32(expMask << 23)
		if sign {
			v |= 1 << signShift
		}
		return v
	}

	// 24x24 -> 48-bit gate-level product.
	p := c.MulBits(ua.mant, ub.mant)

	// Normalize: align the leading one to bit 47.
	lzBits := c.LeadingZeros(p)
	lz := int(lzBits.Uint())
	if lz == 48 { // zero product
		if sign {
			return 1 << signShift
		}
		return 0
	}
	pn := c.ShiftLeftBits(p, lzBits)
	// eR = eA + eB - lz - 126 (derivation: P's MSB at 47-lz, target
	// exponent eR satisfies eR = (47-lz) + eA + eB - 173).
	eR := ua.eAdj + ub.eAdj - lz - 126

	m := pn[24:48].Clone() // 24-bit significand
	guard := pn[23]
	sticky := c.OrReduce(pn[:23])

	// Subnormal: shift right until the exponent reaches 1.
	if eR < 1 {
		d := 1 - eR
		if d > 31 {
			d = 31
		}
		ext := make(Bits, 25)
		copy(ext[1:], m)
		ext[0] = guard
		shifted, lost := c.ShiftRightBits(ext, BitsFromUint(uint64(d), 5))
		sticky = c.OR(sticky, lost)
		m = shifted[1:25].Clone()
		guard = shifted[0]
		eR = 1
	}

	rounded := c.roundRNE(m, guard, sticky)
	return c.pack(sign, eR, rounded[:25])
}

// AddFP32 adds two float32 bit patterns.
func (c *Circuit) AddFP32(a, b uint32) uint32 {
	ua, ub := c.unpack(a), c.unpack(b)
	switch {
	case ua.isNaN || ub.isNaN:
		return quietNaN
	case ua.isInf && ub.isInf:
		if ua.sign != ub.sign {
			return quietNaN // inf - inf
		}
		return a
	case ua.isInf:
		return a
	case ub.isInf:
		return b
	}

	// Order operands by magnitude with a gate comparison of the low 31
	// bits (exponent-major order makes this a plain unsigned compare).
	magA := BitsFromUint(uint64(a&0x7FFFFFFF), 31)
	magB := BitsFromUint(uint64(b&0x7FFFFFFF), 31)
	aGE := c.GEBits(magA, magB)
	ul, us := ua, ub // large, small
	if !aGE {
		ul, us = ub, ua
	}

	// Align: extend significands with 3 GRS bits; shift the small one right
	// by the exponent difference.
	d := ul.eAdj - us.eAdj
	mL := make(Bits, 28)
	copy(mL[3:27], ul.mant)
	mS := make(Bits, 28)
	copy(mS[3:27], us.mant)
	var sticky bool
	if d > 0 {
		sh := d
		if sh > 31 {
			sh = 31
		}
		var lost bool
		mS, lost = c.ShiftRightBits(mS, BitsFromUint(uint64(sh), 5))
		sticky = c.OR(sticky, lost)
	}

	sameSign := !c.XOR(ul.sign, us.sign)
	var r Bits
	if sameSign {
		r = c.AddBits(mL, mS, false) // 29 bits
	} else {
		// |L| >= |S| so the subtraction cannot borrow. The alignment
		// sticky represents bits of S below the window: account for them
		// by borrowing one ULP when nonzero (S was truncated toward zero,
		// so the true difference is smaller).
		diff, _ := c.SubBits(mL, mS)
		if sticky {
			one := BitsFromUint(1, 1)
			diff, _ = c.SubBits(diff, one)
			// The borrowed ULP position now carries the inverted sticky
			// residue; keep sticky set for rounding.
		}
		r = make(Bits, 29)
		copy(r, diff)
	}

	if !c.OrReduce(r) && !sticky {
		// Exact cancellation: IEEE round-to-nearest gives +0, except that
		// (-x) + (-x-compensating)=-0 only when both operands are -0.
		if ua.isZer && ub.isZer && ua.sign && ub.sign {
			return 1 << signShift
		}
		return 0
	}

	// Normalize: align the leading one to bit 26 (significand window
	// bits 3..26, GRS at 2..0).
	lzBits := c.LeadingZeros(r)
	lz := int(lzBits.Uint())
	k := 28 - lz // index of leading one
	eR := ul.eAdj + k - 26

	if k > 26 {
		// Shift right by k-26 (at most 2), folding into sticky.
		sh := k - 26
		var lost bool
		r, lost = c.ShiftRightBits(r, BitsFromUint(uint64(sh), 2))
		sticky = c.OR(sticky, lost)
	} else if k < 26 {
		// Shift left to normalize, but never push the exponent below 1:
		// if eR = eL + k - 26 < 1, shift only by eL-1 and leave the result
		// subnormal at exponent 1 (left shifts introduce zeros, so guard
		// and the alignment sticky are unaffected — massive cancellation
		// only occurs when the alignment shift was <= 1, in which case
		// sticky is clean).
		sh := 26 - k
		if eR < 1 {
			sh = ul.eAdj - 1
			if sh < 0 {
				sh = 0
			}
			eR = 1
		}
		r = c.ShiftLeftBits(r, BitsFromUint(uint64(sh), 5))
	}

	m := r[3:27].Clone()
	guard := r[2]
	sticky = c.OR(sticky, c.OR(r[1], r[0]))

	if eR < 1 {
		dd := 1 - eR
		if dd > 31 {
			dd = 31
		}
		ext := make(Bits, 25)
		copy(ext[1:], m)
		ext[0] = guard
		shifted, lost := c.ShiftRightBits(ext, BitsFromUint(uint64(dd), 5))
		sticky = c.OR(sticky, lost)
		m = shifted[1:25].Clone()
		guard = shifted[0]
		eR = 1
	}

	rounded := c.roundRNE(m, guard, sticky)
	return c.pack(ul.sign, eR, rounded[:25])
}

// MulFloat32 is a convenience wrapper over float32 values.
func (c *Circuit) MulFloat32(a, b float32) float32 {
	return math.Float32frombits(c.MulFP32(math.Float32bits(a), math.Float32bits(b)))
}

// AddFloat32 is a convenience wrapper over float32 values.
func (c *Circuit) AddFloat32(a, b float32) float32 {
	return math.Float32frombits(c.AddFP32(math.Float32bits(a), math.Float32bits(b)))
}
