package nor

import (
	"fmt"
	"math"
)

// Lane-parallel IEEE-754 binary32 addition and multiplication on the
// bit-sliced substrate: up to 64 independent operand pairs ride the lanes
// of each gate evaluation. The control flow of the scalar datapath in
// fp32.go — special-case dispatch, operand swap, alignment, normalization,
// subnormal handling — is data-dependent per lane, so every branch becomes
// a lane mask: the gates of a branch run once, accounted only for the lanes
// that take it, exactly as the scalar path would per lane. Host-side
// bookkeeping (exponent arithmetic, branch predicates read from gate
// outputs) stays host-side here too, and costs no gates in either path.
//
// Results and accumulated Stats are bit-identical to running the scalar
// AddFP32/MulFP32 once per lane; sliced_test.go property-tests both claims
// against random inputs including subnormals, NaN and Inf.

// unpackedLanes holds the gate-extracted fields of one operand vector.
type unpackedLanes struct {
	sign  Word
	isNaN Word
	isInf Word
	isZer Word
	mant  WBits        // 24 planes: significand with hidden bit
	eAdj  [Lanes]int32 // effective exponent: max(exp, 1), host-read
}

// packU32Lanes builds 32 bit-planes from float32 bit patterns.
func packU32Lanes(v []uint32) WBits {
	vals := make([]uint64, len(v))
	for l, x := range v {
		vals[l] = uint64(x)
	}
	return PackLanes(vals, 32)
}

func (c *SlicedCircuit) unpackLanes(mask Word, v []uint32) unpackedLanes {
	b := packU32Lanes(v)
	var u unpackedLanes
	u.sign = b[signShift]
	expB := b[fracBits : fracBits+expBits]
	fracB := b[:fracBits]
	expAllOnes := c.AndReduce(mask, expB)
	fracZero := c.NOT(mask, c.OrReduce(mask, fracB))
	expZero := c.NOT(mask, c.OrReduce(mask, expB))
	u.isNaN = expAllOnes &^ fracZero
	u.isInf = expAllOnes & fracZero
	u.isZer = expZero & fracZero
	u.mant = make(WBits, 24)
	copy(u.mant, fracB)
	u.mant[23] = ^expZero // hidden bit
	for l, x := range v {
		e := x >> fracBits & expMask
		if e == 0 {
			e = 1
		}
		u.eAdj[l] = int32(e)
	}
	return u
}

// packLanes assembles final bit patterns for the masked lanes into out,
// using the same carry-propagating ((eRc-1)<<23) + M gate add as the scalar
// pack.
func (c *SlicedCircuit) packLanes(mask, sign Word, eR []int, m WBits, out []uint32) {
	eVals := make([]uint64, len(eR))
	for l := range eR {
		if mask&(Word(1)<<uint(l)) != 0 {
			eVals[l] = uint64(eR[l] - 1)
		}
	}
	e := PackLanes(eVals, 10)
	shifted := make(WBits, 33)
	copy(shifted[23:], e)
	sum := c.AddBits(mask, shifted, m, 0)
	low := sum[:33]
	for l := range eR {
		if mask&(Word(1)<<uint(l)) == 0 {
			continue
		}
		full := low.Lane(l)
		var v uint32
		if full>>23 >= expMask { // exponent overflow -> infinity
			v = expMask << 23
		} else {
			v = uint32(full)
		}
		if sign&(Word(1)<<uint(l)) != 0 {
			v |= 1 << signShift
		}
		out[l] = v
	}
}

// roundRNELanes rounds the 24-plane significand given guard and sticky
// planes, returning 25 planes (possible carry out).
func (c *SlicedCircuit) roundRNELanes(mask Word, m WBits, guard, sticky Word) WBits {
	lsb := m[0]
	roundUp := c.AND(mask, guard, c.OR(mask, sticky, lsb))
	inc := make(WBits, 1)
	inc[0] = roundUp
	return c.AddBits(mask, m, inc, 0)
}

// selPlanes merges two plane vectors lane-wise: x where sel, y elsewhere
// (host data movement — the sliced form of the scalar operand swap).
func selPlanes(sel Word, x, y WBits) WBits {
	n := len(x)
	if len(y) > n {
		n = len(y)
	}
	out := make(WBits, n)
	for i := 0; i < n; i++ {
		var xb, yb Word
		if i < len(x) {
			xb = x[i]
		}
		if i < len(y) {
			yb = y[i]
		}
		out[i] = xb&sel | yb&^sel
	}
	return out
}

func checkLaneArgs(a, b []uint32) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("nor: lane operand lengths differ (%d vs %d)", len(a), len(b)))
	}
	if len(a) > Lanes {
		panic(fmt.Sprintf("nor: %d operand pairs exceed %d lanes", len(a), Lanes))
	}
	return len(a)
}

// MulFP32Lanes multiplies up to 64 float32 bit-pattern pairs lane-wise.
func (c *SlicedCircuit) MulFP32Lanes(a, b []uint32) []uint32 {
	n := checkLaneArgs(a, b)
	if n == 0 {
		return nil
	}
	active := LaneMask(n)
	ua := c.unpackLanes(active, a)
	ub := c.unpackLanes(active, b)
	sign := c.XOR(active, ua.sign, ub.sign)

	out := make([]uint32, n)
	var resolved Word
	for l := 0; l < n; l++ {
		bit := Word(1) << uint(l)
		switch {
		case (ua.isNaN|ub.isNaN)&bit != 0:
			out[l] = quietNaN
			resolved |= bit
		case (ua.isInf|ub.isInf)&bit != 0:
			if (ua.isZer|ub.isZer)&bit != 0 {
				out[l] = quietNaN // inf * 0
			} else {
				v := uint32(expMask << 23)
				if sign&bit != 0 {
					v |= 1 << signShift
				}
				out[l] = v
			}
			resolved |= bit
		}
	}
	live := active &^ resolved
	if live == 0 {
		return out
	}

	// 24x24 -> 48-plane gate-level product and normalization scan.
	p := c.MulBits(live, ua.mant, ub.mant)
	lzPl := c.LeadingZeros(live, p)
	lz := make([]int, n)
	for l := 0; l < n; l++ {
		lz[l] = int(lzPl.Lane(l))
	}
	for l := 0; l < n; l++ {
		bit := Word(1) << uint(l)
		if live&bit != 0 && lz[l] == 48 { // zero product
			if sign&bit != 0 {
				out[l] = 1 << signShift
			}
			live &^= bit
		}
	}
	if live == 0 {
		return out
	}

	pn := c.ShiftLeftBits(live, p, lzPl)
	eR := make([]int, n)
	for l := 0; l < n; l++ {
		eR[l] = int(ua.eAdj[l]) + int(ub.eAdj[l]) - lz[l] - 126
	}

	m := pn[24:48].Clone()
	guard := pn[23]
	sticky := c.OrReduce(live, pn[:23])

	// Subnormal lanes: shift right until the exponent reaches 1. Lanes with
	// a zero shift amount pass through the masked shifter unchanged.
	var subM Word
	dVals := make([]uint64, n)
	for l := 0; l < n; l++ {
		bit := Word(1) << uint(l)
		if live&bit != 0 && eR[l] < 1 {
			d := 1 - eR[l]
			if d > 31 {
				d = 31
			}
			dVals[l] = uint64(d)
			subM |= bit
			eR[l] = 1
		}
	}
	if subM != 0 {
		ext := make(WBits, 25)
		copy(ext[1:], m)
		ext[0] = guard
		shifted, lost := c.ShiftRightBits(subM, ext, PackLanes(dVals, 5))
		sticky = c.OR(subM, sticky, lost)
		m = shifted[1:25].Clone()
		guard = shifted[0]
	}

	rounded := c.roundRNELanes(live, m, guard, sticky)
	c.packLanes(live, sign, eR, rounded[:25], out)
	return out
}

// AddFP32Lanes adds up to 64 float32 bit-pattern pairs lane-wise.
func (c *SlicedCircuit) AddFP32Lanes(a, b []uint32) []uint32 {
	n := checkLaneArgs(a, b)
	if n == 0 {
		return nil
	}
	active := LaneMask(n)
	ua := c.unpackLanes(active, a)
	ub := c.unpackLanes(active, b)

	out := make([]uint32, n)
	var resolved Word
	for l := 0; l < n; l++ {
		bit := Word(1) << uint(l)
		switch {
		case (ua.isNaN|ub.isNaN)&bit != 0:
			out[l] = quietNaN
			resolved |= bit
		case ua.isInf&ub.isInf&bit != 0:
			if (ua.sign^ub.sign)&bit != 0 {
				out[l] = quietNaN // inf - inf
			} else {
				out[l] = a[l]
			}
			resolved |= bit
		case ua.isInf&bit != 0:
			out[l] = a[l]
			resolved |= bit
		case ub.isInf&bit != 0:
			out[l] = b[l]
			resolved |= bit
		}
	}
	live := active &^ resolved
	if live == 0 {
		return out
	}

	// Order operands by magnitude with a gate comparison of the low 31 bits.
	magAv := make([]uint64, n)
	magBv := make([]uint64, n)
	for l := 0; l < n; l++ {
		magAv[l] = uint64(a[l] & 0x7FFFFFFF)
		magBv[l] = uint64(b[l] & 0x7FFFFFFF)
	}
	aGE := c.GEBits(live, PackLanes(magAv, 31), PackLanes(magBv, 31))

	mantL := selPlanes(aGE, ua.mant, ub.mant)
	mantS := selPlanes(aGE, ub.mant, ua.mant)
	signL := ua.sign&aGE | ub.sign&^aGE
	signS := ub.sign&aGE | ua.sign&^aGE
	eL := make([]int, n)
	eS := make([]int, n)
	for l := 0; l < n; l++ {
		if aGE&(Word(1)<<uint(l)) != 0 {
			eL[l], eS[l] = int(ua.eAdj[l]), int(ub.eAdj[l])
		} else {
			eL[l], eS[l] = int(ub.eAdj[l]), int(ua.eAdj[l])
		}
	}

	// Align: 3 GRS planes below the significands; shift the small operand
	// right by the per-lane exponent difference.
	mL := make(WBits, 28)
	copy(mL[3:27], mantL)
	mS := make(WBits, 28)
	copy(mS[3:27], mantS)
	var sticky, dPos Word
	shVals := make([]uint64, n)
	for l := 0; l < n; l++ {
		bit := Word(1) << uint(l)
		if live&bit == 0 {
			continue
		}
		if d := eL[l] - eS[l]; d > 0 {
			if d > 31 {
				d = 31
			}
			shVals[l] = uint64(d)
			dPos |= bit
		}
	}
	if dPos != 0 {
		var lost Word
		mS, lost = c.ShiftRightBits(dPos, mS, PackLanes(shVals, 5))
		sticky = c.OR(dPos, sticky, lost)
	}

	sameSign := ^c.XOR(live, signL, signS)
	addM := live & sameSign
	subM := live &^ sameSign

	r := make(WBits, 29)
	if addM != 0 {
		sum := c.AddBits(addM, mL, mS, 0)
		for i := range r {
			r[i] = sum[i] & addM
		}
	}
	if subM != 0 {
		// |L| >= |S|: no borrow. Truncated alignment bits borrow one ULP.
		diff, _ := c.SubBits(subM, mL, mS)
		if stickySub := subM & sticky; stickySub != 0 {
			one := WBits{^Word(0)}
			d2, _ := c.SubBits(stickySub, diff, one)
			for i := range diff {
				diff[i] = d2[i]&stickySub | diff[i]&^stickySub
			}
		}
		for i := 0; i < 28; i++ {
			r[i] |= diff[i] & subM
		}
	}

	// Exact cancellation lanes.
	orr := c.OrReduce(live, r)
	for l := 0; l < n; l++ {
		bit := Word(1) << uint(l)
		if live&bit == 0 || (orr|sticky)&bit != 0 {
			continue
		}
		if ua.isZer&ub.isZer&ua.sign&ub.sign&bit != 0 {
			out[l] = 1 << signShift // (-0) + (-0)
		}
		live &^= bit
	}
	if live == 0 {
		return out
	}

	// Normalize: per-lane leading-one position decides right shift (by at
	// most 2), left shift (clamped so the exponent never drops below 1), or
	// none; the two masked barrel shifts leave other lanes untouched.
	lzPl := c.LeadingZeros(live, r)
	eR := make([]int, n)
	var kGT, kLT Word
	shGT := make([]uint64, n)
	shLT := make([]uint64, n)
	for l := 0; l < n; l++ {
		bit := Word(1) << uint(l)
		if live&bit == 0 {
			continue
		}
		k := 28 - int(lzPl.Lane(l))
		eR[l] = eL[l] + k - 26
		if k > 26 {
			shGT[l] = uint64(k - 26)
			kGT |= bit
		} else if k < 26 {
			sh := 26 - k
			if eR[l] < 1 {
				sh = eL[l] - 1
				if sh < 0 {
					sh = 0
				}
				eR[l] = 1
			}
			shLT[l] = uint64(sh)
			kLT |= bit
		}
	}
	if kGT != 0 {
		var lost Word
		r, lost = c.ShiftRightBits(kGT, r, PackLanes(shGT, 2))
		sticky = c.OR(kGT, sticky, lost)
	}
	if kLT != 0 {
		r = c.ShiftLeftBits(kLT, r, PackLanes(shLT, 5))
	}

	m := r[3:27].Clone()
	guard := r[2]
	sticky = c.OR(live, sticky, c.OR(live, r[1], r[0]))

	var subN Word
	ddVals := make([]uint64, n)
	for l := 0; l < n; l++ {
		bit := Word(1) << uint(l)
		if live&bit != 0 && eR[l] < 1 {
			dd := 1 - eR[l]
			if dd > 31 {
				dd = 31
			}
			ddVals[l] = uint64(dd)
			subN |= bit
			eR[l] = 1
		}
	}
	if subN != 0 {
		ext := make(WBits, 25)
		copy(ext[1:], m)
		ext[0] = guard
		shifted, lost := c.ShiftRightBits(subN, ext, PackLanes(ddVals, 5))
		sticky = c.OR(subN, sticky, lost)
		m = shifted[1:25].Clone()
		guard = shifted[0]
	}

	rounded := c.roundRNELanes(live, m, guard, sticky)
	c.packLanes(live, signL, eR, rounded[:25], out)
	return out
}

// MulFloat32Lanes and AddFloat32Lanes are convenience wrappers over
// float32 values.
func (c *SlicedCircuit) MulFloat32Lanes(a, b []float32) []float32 {
	return lanesFromBits(c.MulFP32Lanes(lanesToBits(a), lanesToBits(b)))
}

func (c *SlicedCircuit) AddFloat32Lanes(a, b []float32) []float32 {
	return lanesFromBits(c.AddFP32Lanes(lanesToBits(a), lanesToBits(b)))
}

func lanesToBits(v []float32) []uint32 {
	out := make([]uint32, len(v))
	for i, x := range v {
		out[i] = math.Float32bits(x)
	}
	return out
}

func lanesFromBits(v []uint32) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = math.Float32frombits(x)
	}
	return out
}
