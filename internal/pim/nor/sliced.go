package nor

import (
	"fmt"
	"math/bits"
)

// Bit-sliced ("word-level") evaluation of the NOR substrate. A crossbar
// evaluates one NOR per column per step but has CellsPerRow columns working
// in parallel (Section 2.3); this file mirrors that column parallelism in
// software: a Word holds one bit of 64 independent gate networks ("lanes"),
// so a single machine op evaluates 64 NOR gates at once.
//
// Equivalence contract with the scalar Circuit:
//
//   - Every SlicedCircuit method mirrors the exact NOR decomposition of the
//     corresponding Circuit method. For any lane selected by the mask, the
//     gates evaluated are precisely the gates the scalar path evaluates for
//     that lane's operands — including data-dependent control flow, which
//     is expressed as lane masks instead of branches.
//   - Stats accounting is exact, not approximate: a gate evaluated under a
//     mask adds popcount(mask) NOREvals and Resets, and popcount(out&mask)
//     Sets — the same totals the scalar path accrues when run once per
//     lane. The property tests in sliced_test.go enforce this bit for bit.
//
// Masking discipline: gate outputs are computed across all 64 lanes (the
// mask only gates the accounting), so values flow correctly through lanes
// that diverged earlier and reconverge via host-side plane merges.

// Word is 64 lanes of one bit position.
type Word = uint64

// Lanes is the lane width of the sliced substrate.
const Lanes = 64

// WBits is a little-endian bit-plane vector: WBits[i] holds bit i of every
// lane (the sliced counterpart of Bits).
type WBits []Word

// LaneMask returns the mask selecting the first n lanes.
func LaneMask(n int) Word {
	if n < 0 || n > Lanes {
		panic(fmt.Sprintf("nor: lane count %d out of range [0,%d]", n, Lanes))
	}
	if n == Lanes {
		return ^Word(0)
	}
	return Word(1)<<uint(n) - 1
}

// PackLanes builds bit planes from up to 64 per-lane values: plane i bit l
// is bit i of vals[l].
func PackLanes(vals []uint64, width int) WBits {
	if len(vals) > Lanes {
		panic(fmt.Sprintf("nor: %d lane values exceed %d lanes", len(vals), Lanes))
	}
	out := make(WBits, width)
	for l, v := range vals {
		for i := 0; i < width; i++ {
			if v>>uint(i)&1 == 1 {
				out[i] |= Word(1) << uint(l)
			}
		}
	}
	return out
}

// Lane extracts one lane's value from the planes (panics if len > 64).
func (w WBits) Lane(l int) uint64 {
	if len(w) > 64 {
		panic("nor: WBits wider than 64")
	}
	var v uint64
	for i, p := range w {
		if p>>uint(l)&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Clone copies the plane vector.
func (w WBits) Clone() WBits { return append(WBits(nil), w...) }

// SlicedCircuit evaluates 64 NOR gates per machine op and records the same
// Stats the scalar Circuit would for the masked lanes. The zero value is
// ready to use.
type SlicedCircuit struct {
	Stats Stats
}

// nor1 and nor2 are the primitive evaluations; they mirror Circuit.nor1 and
// Circuit.nor2 lane-wise.
func (c *SlicedCircuit) nor1(mask, a Word) Word {
	n := int64(bits.OnesCount64(mask))
	c.Stats.NOREvals += n
	c.Stats.Resets += n
	out := ^a
	c.Stats.Sets += int64(bits.OnesCount64(out & mask))
	return out
}

func (c *SlicedCircuit) nor2(mask, a, b Word) Word {
	n := int64(bits.OnesCount64(mask))
	c.Stats.NOREvals += n
	c.Stats.Resets += n
	out := ^(a | b)
	c.Stats.Sets += int64(bits.OnesCount64(out & mask))
	return out
}

// NOR is the two-input primitive over the masked lanes.
func (c *SlicedCircuit) NOR(mask, a, b Word) Word { return c.nor2(mask, a, b) }

// NOT is NOR with one input.
func (c *SlicedCircuit) NOT(mask, a Word) Word { return c.nor1(mask, a) }

// OR is NOT(NOR(a,b)).
func (c *SlicedCircuit) OR(mask, a, b Word) Word { return c.nor1(mask, c.nor2(mask, a, b)) }

// AND is NOR(NOT a, NOT b).
func (c *SlicedCircuit) AND(mask, a, b Word) Word {
	return c.nor2(mask, c.nor1(mask, a), c.nor1(mask, b))
}

// XOR from five NORs, as in the scalar gate.
func (c *SlicedCircuit) XOR(mask, a, b Word) Word {
	return c.nor2(mask, c.nor2(mask, a, b), c.nor2(mask, c.nor1(mask, a), c.nor1(mask, b)))
}

// MUX returns a where sel is 0, b where sel is 1.
func (c *SlicedCircuit) MUX(mask, sel, a, b Word) Word {
	return c.OR(mask, c.AND(mask, c.NOT(mask, sel), a), c.AND(mask, sel, b))
}

// FullAdder returns (sum, carry) of a + b + cin lane-wise.
func (c *SlicedCircuit) FullAdder(mask, a, b, cin Word) (sum, carry Word) {
	axb := c.XOR(mask, a, b)
	sum = c.XOR(mask, axb, cin)
	carry = c.OR(mask, c.AND(mask, a, b), c.AND(mask, axb, cin))
	return
}

// AddBits returns a + b (+ cin) over max(len(a), len(b)) bits plus a final
// carry plane. Inputs of different lengths are zero-extended, with the
// extension bits still flowing through full-adder gates exactly as the
// scalar block does.
func (c *SlicedCircuit) AddBits(mask Word, a, b WBits, cin Word) WBits {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(WBits, n+1)
	carry := cin
	for i := 0; i < n; i++ {
		var ab, bb Word
		if i < len(a) {
			ab = a[i]
		}
		if i < len(b) {
			bb = b[i]
		}
		out[i], carry = c.FullAdder(mask, ab, bb, carry)
	}
	out[n] = carry
	return out
}

// SubBits returns a - b over len(a) bits plus a no-borrow plane (lane bit
// set means a >= b in that lane).
func (c *SlicedCircuit) SubBits(mask Word, a, b WBits) (diff WBits, noBorrow Word) {
	n := len(a)
	nb := make(WBits, n)
	for i := 0; i < n; i++ {
		var bb Word
		if i < len(b) {
			bb = b[i]
		}
		nb[i] = c.NOT(mask, bb)
	}
	sum := c.AddBits(mask, a, nb, ^Word(0))
	return sum[:n], sum[n]
}

// GEBits returns the a >= b plane for equal-width unsigned operands.
func (c *SlicedCircuit) GEBits(mask Word, a, b WBits) Word {
	_, ge := c.SubBits(mask, a, b)
	return ge
}

// MuxBits selects a (sel=0) or b (sel=1) lane-wise per plane.
func (c *SlicedCircuit) MuxBits(mask, sel Word, a, b WBits) WBits {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(WBits, n)
	for i := 0; i < n; i++ {
		var ab, bb Word
		if i < len(a) {
			ab = a[i]
		}
		if i < len(b) {
			bb = b[i]
		}
		out[i] = c.MUX(mask, sel, ab, bb)
	}
	return out
}

// ShiftRightBits shifts each lane right by its amount encoded in the sh
// planes (a barrel shifter of MUX stages). Bits shifted out are ORed into a
// per-lane sticky plane. Lanes whose shift amount is zero pass through
// value-unchanged with zero sticky, which is what lets divergent callers
// run the shifter once under a mask.
func (c *SlicedCircuit) ShiftRightBits(mask Word, a, sh WBits) (out WBits, sticky Word) {
	out = a.Clone()
	for s := 0; s < len(sh); s++ {
		amount := 1 << uint(s)
		shifted := make(WBits, len(out))
		var lost Word
		for i := range shifted {
			if i+amount < len(out) {
				shifted[i] = out[i+amount]
			}
		}
		for i := 0; i < amount && i < len(out); i++ {
			lost = c.OR(mask, lost, out[i])
		}
		sticky = c.OR(mask, sticky, c.AND(mask, sh[s], lost))
		out = c.MuxBits(mask, sh[s], out, shifted)
	}
	return out, sticky
}

// ShiftLeftBits shifts each lane left by its amount in sh, dropping
// overflow.
func (c *SlicedCircuit) ShiftLeftBits(mask Word, a, sh WBits) WBits {
	out := a.Clone()
	for s := 0; s < len(sh); s++ {
		amount := 1 << uint(s)
		shifted := make(WBits, len(out))
		for i := range shifted {
			if i-amount >= 0 {
				shifted[i] = out[i-amount]
			}
		}
		out = c.MuxBits(mask, sh[s], out, shifted)
	}
	return out
}

// MulBits returns the full 2n-plane product of two n-plane unsigned
// operands via gate-level shift-and-add.
func (c *SlicedCircuit) MulBits(mask Word, a, b WBits) WBits {
	n := len(a)
	if len(b) != n {
		panic("nor: MulBits operands must have equal width")
	}
	acc := make(WBits, 2*n)
	for i := 0; i < n; i++ {
		partial := make(WBits, 2*n)
		for j := 0; j < n; j++ {
			partial[i+j] = c.AND(mask, a[j], b[i])
		}
		sum := c.AddBits(mask, acc, partial, 0)
		acc = sum[:2*n]
	}
	return acc
}

// LeadingZeros counts each lane's zero bits above its most significant
// one-bit, as a gate-level priority scan.
func (c *SlicedCircuit) LeadingZeros(mask Word, a WBits) WBits {
	n := len(a)
	w := 1
	for 1<<uint(w) <= n {
		w++
	}
	count := make(WBits, w)
	var seen Word
	for i := n - 1; i >= 0; i-- {
		seen = c.OR(mask, seen, a[i])
		inc := c.NOT(mask, seen)
		carry := inc
		for j := 0; j < w; j++ {
			count[j], carry = c.FullAdder(mask, count[j], 0, carry)
		}
	}
	return count
}

// IncBits returns a+1 per lane over len(a) planes plus carry-out.
func (c *SlicedCircuit) IncBits(mask Word, a WBits) WBits {
	one := make(WBits, 1)
	one[0] = ^Word(0)
	return c.AddBits(mask, a, one, 0)
}

// OrReduce ORs all planes together per lane.
func (c *SlicedCircuit) OrReduce(mask Word, a WBits) Word {
	var v Word
	for _, b := range a {
		v = c.OR(mask, v, b)
	}
	return v
}

// AndReduce ANDs all planes together per lane.
func (c *SlicedCircuit) AndReduce(mask Word, a WBits) Word {
	v := ^Word(0)
	for _, b := range a {
		v = c.AND(mask, v, b)
	}
	return v
}
