// Package nor implements the digital-PIM arithmetic substrate of Section
// 2.3: memristor crossbars compute with sequences of NOR operations
// ("arithmetic operations like addition and multiplication are achieved by
// performing NOR operations sequentially"). Every arithmetic block in this
// package — integer adders, shifters, multipliers, and full IEEE-754
// float32 addition and multiplication — is built from a single NOR gate
// primitive, and a Circuit tracks how many NOR evaluations and how many
// output-cell switches (set/reset) a computation performed, which is what
// the energy model consumes.
//
// Two cost views exist and are deliberately different:
//
//   - The *functional* view here counts every NOR gate evaluation. A
//     crossbar executes one NOR per column per step but has CellsPerRow
//     columns working in parallel, so gate count is a proxy for energy,
//     not latency.
//   - The *timing* view (params.NORStepsFPAdd32 / NORStepsFPMul32) counts
//     sequential NOR steps of the optimized in-array schedule and is what
//     the simulator charges as latency.
package nor

import "wavepim/internal/params"

// Stats accumulates the physical work performed by a circuit.
type Stats struct {
	NOREvals int64 // NOR gate evaluations
	Sets     int64 // output cells switched Roff -> Ron ("1" results)
	Resets   int64 // output cell initializations (every NOR pre-resets its output)
}

// Energy returns the dynamic energy of the accumulated operations, using
// the Table 4 per-event energies.
func (s Stats) Energy() float64 {
	return float64(s.NOREvals)*params.ENORJoules +
		float64(s.Sets)*params.ESetJoules +
		float64(s.Resets)*params.EResetJoules
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.NOREvals += o.NOREvals
	s.Sets += o.Sets
	s.Resets += o.Resets
}

// Circuit evaluates NOR gates and records Stats. The zero value is ready to
// use.
type Circuit struct {
	Stats Stats
}

// NOR is the primitive: output is true iff every input is false. In the
// crossbar, the output memristor is initialized to Ron ("1") and switches
// to Roff if any input is "1"; reading the convention of Section 2.3 as a
// logical NOR. Each evaluation costs one reset (initialization) and, if the
// result is 1, one set.
func (c *Circuit) NOR(in ...bool) bool {
	c.Stats.NOREvals++
	c.Stats.Resets++
	for _, b := range in {
		if b {
			return false
		}
	}
	c.Stats.Sets++
	return true
}

// nor1 and nor2 are allocation-free fast paths for the fixed-arity gates.
func (c *Circuit) nor1(a bool) bool {
	c.Stats.NOREvals++
	c.Stats.Resets++
	if a {
		return false
	}
	c.Stats.Sets++
	return true
}

func (c *Circuit) nor2(a, b bool) bool {
	c.Stats.NOREvals++
	c.Stats.Resets++
	if a || b {
		return false
	}
	c.Stats.Sets++
	return true
}

// NOT is NOR with one input.
func (c *Circuit) NOT(a bool) bool { return c.nor1(a) }

// OR is NOT(NOR(a,b)).
func (c *Circuit) OR(a, b bool) bool { return c.nor1(c.nor2(a, b)) }

// AND is NOR(NOT a, NOT b).
func (c *Circuit) AND(a, b bool) bool { return c.nor2(c.nor1(a), c.nor1(b)) }

// XOR from five NORs: NOR(NOR(a,b), NOR(NOT a, NOT b)).
func (c *Circuit) XOR(a, b bool) bool {
	return c.nor2(c.nor2(a, b), c.nor2(c.nor1(a), c.nor1(b)))
}

// MUX returns a if sel is false, b if sel is true.
func (c *Circuit) MUX(sel, a, b bool) bool {
	return c.OR(c.AND(c.NOT(sel), a), c.AND(sel, b))
}

// FullAdder returns (sum, carry) of a + b + cin.
func (c *Circuit) FullAdder(a, b, cin bool) (sum, carry bool) {
	axb := c.XOR(a, b)
	sum = c.XOR(axb, cin)
	carry = c.OR(c.AND(a, b), c.AND(axb, cin))
	return
}

// Bits is a little-endian bit vector (Bits[0] is the LSB).
type Bits []bool

// BitsFromUint converts the low n bits of v.
func BitsFromUint(v uint64, n int) Bits {
	b := make(Bits, n)
	for i := 0; i < n; i++ {
		b[i] = v>>uint(i)&1 == 1
	}
	return b
}

// Uint converts back to an integer (panics if len > 64).
func (b Bits) Uint() uint64 {
	if len(b) > 64 {
		panic("nor: Bits longer than 64")
	}
	var v uint64
	for i, bit := range b {
		if bit {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Clone copies the bit vector.
func (b Bits) Clone() Bits { return append(Bits(nil), b...) }
