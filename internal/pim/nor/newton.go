package nor

// In-array reciprocal and square root via Newton-Raphson iteration, built
// from the gate-level FP32 add/mul of this package.
//
// The paper offloads these operations to the host CPU and serves the
// results through look-up tables (Section 4.3: "complicated arithmetic
// operations, such as square root and inverse operations, are offloaded
// to the host CPU"). This file exists to *quantify* that design choice:
// executing them in-array is possible — everything below is NOR-buildable
// — but costs an order of magnitude more NOR steps than a basic
// operation, which is exactly why a LUT fetch (three row operations) wins
// when the number of distinct operands is moderate. The ablation bench in
// bench_test.go reports the measured cost ratio.

const (
	// RecipIterations of Newton-Raphson x_{n+1} = x_n (2 - d x_n) reach
	// full float32 precision from the seed below (error squares every
	// iteration).
	RecipIterations = 4
	// RsqrtIterations for x_{n+1} = x_n (1.5 - 0.5 d x_n^2).
	RsqrtIterations = 4
)

const (
	fpOne  = 0x3F800000 // 1.0f
	fpTwo  = 0x40000000 // 2.0f
	fpHalf = 0x3F000000 // 0.5f
	fp3o2  = 0x3FC00000 // 1.5f
)

// negate flips the sign bit (free in hardware: a single NOT on the sign
// cell).
func (c *Circuit) negate(x uint32) uint32 {
	c.Stats.NOREvals++ // one NOT on the sign bit
	c.Stats.Resets++
	return x ^ 0x80000000
}

// recipSeed produces the classic exponent-flip initial guess for 1/d by
// integer subtraction from a magic constant — one bit-serial subtraction
// in the array.
func (c *Circuit) recipSeed(d uint32) uint32 {
	diff, _ := c.SubBits(BitsFromUint(0x7EF311C3, 32), BitsFromUint(uint64(d), 32))
	return uint32(diff.Uint())
}

// RecipFP32 computes 1/d with Newton-Raphson on the gate-level datapath.
// Valid for positive normal d (the material constants the paper's flux
// preprocessing needs); it does not handle zero, infinity or NaN specially.
func (c *Circuit) RecipFP32(d uint32) uint32 {
	x := c.recipSeed(d)
	for i := 0; i < RecipIterations; i++ {
		dx := c.MulFP32(d, x)
		t := c.AddFP32(fpTwo, c.negate(dx)) // 2 - d*x
		x = c.MulFP32(x, t)
	}
	return x
}

// rsqrtSeed is the famous inverse-square-root exponent hack.
func (c *Circuit) rsqrtSeed(d uint32) uint32 {
	// 0x5F3759DF - (d >> 1), both gate-level.
	shifted, _ := c.ShiftRightBits(BitsFromUint(uint64(d), 32), BitsFromUint(1, 1))
	diff, _ := c.SubBits(BitsFromUint(0x5F3759DF, 32), shifted)
	return uint32(diff.Uint())
}

// RsqrtFP32 computes 1/sqrt(d) for positive normal d.
func (c *Circuit) RsqrtFP32(d uint32) uint32 {
	x := c.rsqrtSeed(d)
	halfD := c.MulFP32(fpHalf, d)
	for i := 0; i < RsqrtIterations; i++ {
		x2 := c.MulFP32(x, x)
		t := c.AddFP32(fp3o2, c.negate(c.MulFP32(halfD, x2))) // 1.5 - 0.5*d*x^2
		x = c.MulFP32(x, t)
	}
	return x
}

// SqrtFP32 computes sqrt(d) = d * rsqrt(d) for positive normal d.
func (c *Circuit) SqrtFP32(d uint32) uint32 {
	if d == 0 {
		return 0
	}
	return c.MulFP32(d, c.RsqrtFP32(d))
}

// InPIMSpecialOpSteps returns the bit-serial latency (in NOR steps) of an
// in-array special operation built from n multiplies and m adds — the
// quantity the LUT-offload ablation compares against Algorithm 1's three
// row operations.
func InPIMSpecialOpSteps(muls, adds int) int64 {
	return int64(muls)*2700 + int64(adds)*1300
}

// RecipSteps and SqrtSteps are the per-operand in-array latencies.
func RecipSteps() int64 { return InPIMSpecialOpSteps(2*RecipIterations, RecipIterations) }
func SqrtSteps() int64 {
	return InPIMSpecialOpSteps(3*RsqrtIterations+2, RsqrtIterations)
}
