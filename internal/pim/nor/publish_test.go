package nor

import (
	"testing"

	"wavepim/internal/obs"
)

// TestPublishMatchesStats runs identical gate workloads through two
// circuits, publishing one per-batch into a registry, and asserts the
// registry counters equal the legacy Stats fields accumulated by the
// other.
func TestPublishMatchesStats(t *testing.T) {
	workload := func(c *Circuit) {
		for i := 0; i < 50; i++ {
			a, b := i%2 == 0, i%3 == 0
			c.XOR(a, b)
			c.FullAdder(a, b, i%5 == 0)
			c.MUX(a, b, !b)
		}
	}

	var ref Circuit
	reg := obs.NewRegistry()
	const batches = 4
	for i := 0; i < batches; i++ {
		workload(&ref)
		var batch Circuit
		workload(&batch)
		batch.Stats.Publish(reg)
	}

	snap := reg.Snapshot()
	if ref.Stats.NOREvals == 0 {
		t.Fatal("workload evaluated no gates; differential is vacuous")
	}
	if got := snap.Counters["nor.evals"]; got != ref.Stats.NOREvals {
		t.Errorf("nor.evals: registry %d, Stats %d", got, ref.Stats.NOREvals)
	}
	if got := snap.Counters["nor.sets"]; got != ref.Stats.Sets {
		t.Errorf("nor.sets: registry %d, Stats %d", got, ref.Stats.Sets)
	}
	if got := snap.Counters["nor.resets"]; got != ref.Stats.Resets {
		t.Errorf("nor.resets: registry %d, Stats %d", got, ref.Stats.Resets)
	}
}

// TestPublishNilRegistry: publishing into a nil registry is a no-op, not a
// panic — the off switch for uninstrumented runs.
func TestPublishNilRegistry(t *testing.T) {
	var c Circuit
	c.XOR(true, false)
	c.Stats.Publish(nil)
}
