package nor

import (
	"math"
	"math/rand"
	"testing"
)

// The sliced substrate's contract is exact equivalence with the scalar
// gate path: identical result bits AND identical Stats (NOREvals, Sets,
// Resets) for any batch of lanes. These tests enforce both, over random
// inputs skewed toward the hard regions (subnormals, NaN, Inf, zeros,
// cancellation) and over the shared edge-case table.

// randFP32 draws a float32 bit pattern from a category mix that exercises
// every datapath branch.
func randFP32(rng *rand.Rand) uint32 {
	switch rng.Intn(10) {
	case 0: // special exponents: NaN, Inf
		v := uint32(expMask) << 23
		if rng.Intn(2) == 0 {
			v |= uint32(rng.Intn(1 << 23)) // NaN when frac != 0
		}
		if rng.Intn(2) == 0 {
			v |= 1 << signShift
		}
		return v
	case 1: // zero and subnormals
		v := uint32(rng.Intn(1 << 23))
		if rng.Intn(2) == 0 {
			v |= 1 << signShift
		}
		return v
	case 2: // small exponents: results underflow to subnormals
		return uint32(rng.Intn(40))<<23 | uint32(rng.Intn(1<<23)) | uint32(rng.Intn(2))<<signShift
	case 3: // large exponents: results overflow to Inf
		return uint32(215+rng.Intn(40))<<23 | uint32(rng.Intn(1<<23)) | uint32(rng.Intn(2))<<signShift
	default: // anything
		return rng.Uint32()
	}
}

// scalarLanes runs the scalar datapath once per lane, returning the outputs
// and the total Stats — the reference the sliced path must match exactly.
func scalarLanes(op func(*Circuit, uint32, uint32) uint32, a, b []uint32) ([]uint32, Stats) {
	var c Circuit
	out := make([]uint32, len(a))
	for i := range a {
		out[i] = op(&c, a[i], b[i])
	}
	return out, c.Stats
}

func checkLanesEqual(t *testing.T, name string, a, b, got, want []uint32, gotStats, wantStats Stats) {
	t.Helper()
	for l := range want {
		if got[l] != want[l] {
			t.Errorf("%s lane %d: (%08x, %08x) sliced %08x, scalar %08x (%g op %g)",
				name, l, a[l], b[l], got[l], want[l],
				math.Float32frombits(a[l]), math.Float32frombits(b[l]))
		}
	}
	if gotStats != wantStats {
		t.Errorf("%s stats: sliced %+v, scalar %+v", name, gotStats, wantStats)
	}
}

func TestSlicedMulFP32Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for batch := 0; batch < 60; batch++ {
		n := 1 + rng.Intn(Lanes)
		a := make([]uint32, n)
		b := make([]uint32, n)
		for i := range a {
			a[i], b[i] = randFP32(rng), randFP32(rng)
		}
		want, wantStats := scalarLanes((*Circuit).MulFP32, a, b)
		var sc SlicedCircuit
		got := sc.MulFP32Lanes(a, b)
		checkLanesEqual(t, "MulFP32Lanes", a, b, got, want, sc.Stats, wantStats)
	}
}

func TestSlicedAddFP32Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for batch := 0; batch < 60; batch++ {
		n := 1 + rng.Intn(Lanes)
		a := make([]uint32, n)
		b := make([]uint32, n)
		for i := range a {
			a[i], b[i] = randFP32(rng), randFP32(rng)
			if rng.Intn(8) == 0 {
				b[i] = a[i] ^ 1<<signShift // exact cancellation
			}
			if rng.Intn(8) == 0 {
				b[i] = (a[i] + uint32(rng.Intn(4))) ^ 1<<signShift // near cancellation
			}
		}
		want, wantStats := scalarLanes((*Circuit).AddFP32, a, b)
		var sc SlicedCircuit
		got := sc.AddFP32Lanes(a, b)
		checkLanesEqual(t, "AddFP32Lanes", a, b, got, want, sc.Stats, wantStats)
	}
}

// The shared edge-case table, all pairs, batched through the lanes.
func TestSlicedFP32EdgeCases(t *testing.T) {
	var a, b []uint32
	for _, x := range fpEdgeCases {
		for _, y := range fpEdgeCases {
			a = append(a, x)
			b = append(b, y)
		}
	}
	for lo := 0; lo < len(a); lo += Lanes {
		hi := lo + Lanes
		if hi > len(a) {
			hi = len(a)
		}
		wantM, wantMS := scalarLanes((*Circuit).MulFP32, a[lo:hi], b[lo:hi])
		var sm SlicedCircuit
		gotM := sm.MulFP32Lanes(a[lo:hi], b[lo:hi])
		checkLanesEqual(t, "MulFP32Lanes", a[lo:hi], b[lo:hi], gotM, wantM, sm.Stats, wantMS)

		wantA, wantAS := scalarLanes((*Circuit).AddFP32, a[lo:hi], b[lo:hi])
		var sa SlicedCircuit
		gotA := sa.AddFP32Lanes(a[lo:hi], b[lo:hi])
		checkLanesEqual(t, "AddFP32Lanes", a[lo:hi], b[lo:hi], gotA, wantA, sa.Stats, wantAS)
	}
}

// Integer blocks: each sliced block must match the scalar block per lane,
// in both value and Stats.
func TestSlicedIntBlocksDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const width = 16
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(Lanes)
		av := make([]uint64, n)
		bv := make([]uint64, n)
		shv := make([]uint64, n)
		for i := range av {
			av[i] = uint64(rng.Intn(1 << width))
			bv[i] = uint64(rng.Intn(1 << width))
			shv[i] = uint64(rng.Intn(1 << 5))
		}
		mask := LaneMask(n)
		aPl := PackLanes(av, width)
		bPl := PackLanes(bv, width)
		shPl := PackLanes(shv, 5)

		var sc SlicedCircuit
		sum := sc.AddBits(mask, aPl, bPl, 0)
		diff, ge := sc.SubBits(mask, aPl, bPl)
		prod := sc.MulBits(mask, aPl, bPl)
		shr, stk := sc.ShiftRightBits(mask, aPl, shPl)
		shl := sc.ShiftLeftBits(mask, aPl, shPl)
		lz := sc.LeadingZeros(mask, aPl)

		var c Circuit
		for l := 0; l < n; l++ {
			a := BitsFromUint(av[l], width)
			b := BitsFromUint(bv[l], width)
			sh := BitsFromUint(shv[l], 5)
			if got, want := sum.Lane(l), c.AddBits(a, b, false).Uint(); got != want {
				t.Fatalf("AddBits lane %d: %x != %x", l, got, want)
			}
			wd, wge := c.SubBits(a, b)
			if got := diff.Lane(l); got != wd.Uint() {
				t.Fatalf("SubBits lane %d: %x != %x", l, got, wd.Uint())
			}
			if got := ge>>uint(l)&1 == 1; got != wge {
				t.Fatalf("SubBits noBorrow lane %d: %v != %v", l, got, wge)
			}
			if got, want := prod.Lane(l), c.MulBits(a, b).Uint(); got != want {
				t.Fatalf("MulBits lane %d: %x != %x", l, got, want)
			}
			wshr, wstk := c.ShiftRightBits(a, sh)
			if got := shr.Lane(l); got != wshr.Uint() {
				t.Fatalf("ShiftRightBits lane %d: %x != %x", l, got, wshr.Uint())
			}
			if got := stk>>uint(l)&1 == 1; got != wstk {
				t.Fatalf("ShiftRightBits sticky lane %d: %v != %v", l, got, wstk)
			}
			if got, want := shl.Lane(l), c.ShiftLeftBits(a, sh).Uint(); got != want {
				t.Fatalf("ShiftLeftBits lane %d: %x != %x", l, got, want)
			}
			if got, want := lz.Lane(l), c.LeadingZeros(a).Uint(); got != want {
				t.Fatalf("LeadingZeros lane %d: %d != %d", l, got, want)
			}
		}
		if sc.Stats != c.Stats {
			t.Fatalf("int block stats: sliced %+v, scalar %+v", sc.Stats, c.Stats)
		}
	}
}

// Empty and single-lane batches behave.
func TestSlicedLaneEdges(t *testing.T) {
	var sc SlicedCircuit
	if got := sc.MulFP32Lanes(nil, nil); got != nil {
		t.Errorf("empty mul batch: %v", got)
	}
	if got := sc.AddFP32Lanes(nil, nil); got != nil {
		t.Errorf("empty add batch: %v", got)
	}
	got := sc.MulFloat32Lanes([]float32{3}, []float32{4})
	if len(got) != 1 || got[0] != 12 {
		t.Errorf("MulFloat32Lanes single: %v", got)
	}
	got = sc.AddFloat32Lanes([]float32{1.5}, []float32{2.25})
	if len(got) != 1 || got[0] != 3.75 {
		t.Errorf("AddFloat32Lanes single: %v", got)
	}
}
