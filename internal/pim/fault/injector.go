package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"wavepim/internal/params"
)

// Typed failures of the recovery ladder. Both are latched into the engine
// error slot and surface through Session.Run via errors.Is.
var (
	// ErrNoSpares: a block failed uncorrectably and the spare pool is
	// exhausted — the run cannot be healed.
	ErrNoSpares = errors.New("fault: spare blocks exhausted")

	// ErrUnrecoverable: the solver-level rollback budget is spent and
	// the field state is still unhealthy.
	ErrUnrecoverable = errors.New("fault: unrecoverable after rollback budget")
)

// Recovery configures the self-healing ladder layered on top of
// injection. The zero value disables every rung.
type Recovery struct {
	// ECC enables the per-block SECDED scrub after every block phase,
	// with its cycle/energy cost charged to the simulated timeline.
	ECC bool

	// MaxRetries bounds verify-retry re-executions of a block program
	// whose scrub still reports uncorrectable errors.
	MaxRetries int

	// SpareBlocks is how many physical blocks the layout reserves as
	// remap targets for blocks that fail beyond retry.
	SpareBlocks int

	// CheckpointEvery takes a solver field checkpoint every N completed
	// time-steps (0 disables solver-level checks entirely).
	CheckpointEvery int

	// MaxRollbacks bounds checkpoint rollbacks before the run is
	// declared unrecoverable.
	MaxRollbacks int

	// BlowupFactor is the health guard: a checkpoint is rejected when
	// the squared field norm exceeds BlowupFactor times the previous
	// healthy checkpoint's (or any value is NaN/Inf).
	BlowupFactor float64
}

// DefaultRecovery is the full ladder with paper-plausible budgets.
func DefaultRecovery() Recovery {
	return Recovery{
		ECC:             true,
		MaxRetries:      2,
		SpareBlocks:     4,
		CheckpointEvery: 8,
		MaxRollbacks:    2,
		BlowupFactor:    1e3,
	}
}

// Injector owns the fault state of a whole chip: per-block fault maps plus
// chip-level recovery counters. It is shared between the engine's worker
// goroutines only through ForBlock (locked); each BlockFaults is then
// single-owner like its block.
type Injector struct {
	cfg Config
	rec Recovery

	mu          sync.Mutex
	blocks      map[int]*BlockFaults
	remapped    []int // logical ids migrated to spares, in remap order
	rollbacks   int64
	checkpoints int64
}

// NewInjector builds an injector from an injection config and a recovery
// policy.
func NewInjector(cfg Config, rec Recovery) *Injector {
	return &Injector{cfg: cfg, rec: rec, blocks: make(map[int]*BlockFaults)}
}

// Config returns the injection knobs.
func (in *Injector) Config() Config { return in.cfg }

// Recovery returns the recovery policy.
func (in *Injector) Recovery() Recovery { return in.rec }

// ForBlock returns (lazily creating) the fault state of one physical
// block. Safe for concurrent use; the returned BlockFaults is not.
func (in *Injector) ForBlock(physID int) *BlockFaults {
	in.mu.Lock()
	defer in.mu.Unlock()
	bf, ok := in.blocks[physID]
	if !ok {
		bf = newBlockFaults(physID, in.cfg)
		in.blocks[physID] = bf
	}
	return bf
}

// NoteRemap records a spare-block migration of a logical block.
func (in *Injector) NoteRemap(logical int) {
	in.mu.Lock()
	in.remapped = append(in.remapped, logical)
	in.mu.Unlock()
}

// NoteRollback records one solver-level checkpoint rollback.
func (in *Injector) NoteRollback() {
	in.mu.Lock()
	in.rollbacks++
	in.mu.Unlock()
}

// NoteCheckpoint records one solver field checkpoint.
func (in *Injector) NoteCheckpoint() {
	in.mu.Lock()
	in.checkpoints++
	in.mu.Unlock()
}

// Report is the per-run fault summary. Field order is the JSON order, so
// two identical runs marshal byte-identically.
type Report struct {
	Seed           uint64  `json:"seed"`
	StuckProb      float64 `json:"stuck_prob"`
	FlipProb       float64 `json:"flip_prob"`
	Endurance      uint64  `json:"endurance_writes"`
	FaultyBlocks   int     `json:"faulty_blocks"` // blocks with any fault activity
	Counts         Counts  `json:"counts"`
	Remaps         int64   `json:"remaps"`
	RemappedBlocks []int   `json:"remapped_blocks"`
	Checkpoints    int64   `json:"checkpoints"`
	Rollbacks      int64   `json:"rollbacks"`
	SparesUsed     int     `json:"spares_used"`
	SparesLeft     int     `json:"spares_left"`
}

// Report aggregates every block's counters (in sorted block order) plus
// the chip-level recovery counters. SparesUsed/SparesLeft are filled by
// the engine, which owns the spare pool.
func (in *Injector) Report() Report {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := Report{
		Seed:      in.cfg.Seed,
		StuckProb: in.cfg.StuckProb,
		FlipProb:  in.cfg.FlipProb,
		Endurance: in.cfg.EnduranceWrites,
		Remaps:    int64(len(in.remapped)),
		RemappedBlocks: append([]int(nil), in.remapped...),
		Checkpoints: in.checkpoints,
		Rollbacks:   in.rollbacks,
	}
	ids := make([]int, 0, len(in.blocks))
	for id := range in.blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := in.blocks[id].counts
		if c != (Counts{}) {
			r.FaultyBlocks++
		}
		r.Counts.add(c)
	}
	return r
}

// String renders the report as a compact human-readable summary.
func (r Report) String() string {
	return fmt.Sprintf(
		"faults: seed=%d injected(flips=%d stuck=%d wearouts=%d) "+
			"ecc(detected=%d corrected=%d uncorrectable=%d) "+
			"recovery(retries=%d remaps=%d checkpoints=%d rollbacks=%d) spares(used=%d left=%d)",
		r.Seed, r.Counts.Flips, r.Counts.StuckWrites, r.Counts.Wearouts,
		r.Counts.Detected, r.Counts.Corrected, r.Counts.Uncorrectable,
		r.Counts.Retries, r.Remaps, r.Checkpoints, r.Rollbacks,
		r.SparesUsed, r.SparesLeft)
}

// WriteJSON marshals the report deterministically (struct field order,
// trailing newline) so reports can be diffed byte-for-byte.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseSpec parses the CLI fault spec "seed=N,flip=P,stuck=P,wear=N".
// Every key is optional; unknown keys are an error.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	err := parseKVs(spec, func(k, v string) error {
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return fmt.Errorf("seed: %w", err)
			}
			cfg.Seed = n
		case "flip":
			p, err := parseProb(v)
			if err != nil {
				return fmt.Errorf("flip: %w", err)
			}
			cfg.FlipProb = p
		case "stuck":
			p, err := parseProb(v)
			if err != nil {
				return fmt.Errorf("stuck: %w", err)
			}
			cfg.StuckProb = p
		case "wear":
			n, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return fmt.Errorf("wear: %w", err)
			}
			cfg.EnduranceWrites = n
		default:
			return fmt.Errorf("unknown fault key %q (want seed, flip, stuck, wear)", k)
		}
		return nil
	})
	return cfg, err
}

// ParseRecoverySpec parses the CLI recovery spec
// "ecc=1,retries=N,spares=N,ckpt=N,rollbacks=N,blowup=F". Unset keys keep
// the DefaultRecovery value.
func ParseRecoverySpec(spec string) (Recovery, error) {
	rec := DefaultRecovery()
	err := parseKVs(spec, func(k, v string) error {
		switch k {
		case "ecc":
			on, err := strconv.ParseBool(v)
			if err != nil {
				return fmt.Errorf("ecc: %w", err)
			}
			rec.ECC = on
		case "retries":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return fmt.Errorf("retries: bad value %q", v)
			}
			rec.MaxRetries = n
		case "spares":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return fmt.Errorf("spares: bad value %q", v)
			}
			rec.SpareBlocks = n
		case "ckpt":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return fmt.Errorf("ckpt: bad value %q", v)
			}
			rec.CheckpointEvery = n
		case "rollbacks":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return fmt.Errorf("rollbacks: bad value %q", v)
			}
			rec.MaxRollbacks = n
		case "blowup":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return fmt.Errorf("blowup: bad value %q", v)
			}
			rec.BlowupFactor = f
		default:
			return fmt.Errorf("unknown recovery key %q (want ecc, retries, spares, ckpt, rollbacks, blowup)", k)
		}
		return nil
	})
	return rec, err
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}

func parseKVs(spec string, set func(k, v string) error) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return fmt.Errorf("bad spec element %q (want key=value)", kv)
		}
		if err := set(strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
			return err
		}
	}
	return nil
}

// ScrubCost is the simulated cost of one ECC scrub pass: a data-row read
// plus a parity-row read, and a row write per corrected word.
func ScrubCost(corrected int) (sec, joules float64) {
	sec = 2*params.BlockRowReadLatency + float64(corrected)*params.BlockRowWriteLatency
	joules = 2*params.RowBufferReadEnergyJ + float64(corrected)*params.RowBufferWriteEnergyJ
	return sec, joules
}

// BackoffCost is the simulated stall before retry attempt n (linear
// backoff in units of the row-write latency, modeling controller
// re-issue overhead).
func BackoffCost(attempt int) (sec, joules float64) {
	return float64(attempt) * 8 * params.BlockRowWriteLatency, 0
}
