// Package fault is a deterministic, seedable fault-injection layer for the
// memristor crossbar substrate. It models the canonical failure modes of
// resistive memory — manufacturing stuck-at-0/1 cells, per-write transient
// bit flips, and write-endurance wearout — at word granularity on the
// block write path, plus the detection half of the recovery ladder: a
// SECDED-style scrub that classifies corrupted words as correctable
// (single-bit) or uncorrectable.
//
// The package follows the same nil-safe zero-overhead-when-off pattern as
// obs.Sink: a Block keeps a *fault.BlockFaults pointer that is nil in
// golden-path runs, and every write-path hook is a single pointer
// comparison away from the fault-free fast path.
//
// Determinism is load-bearing: every fault decision is a pure hash of
// (seed, block id, cell index, per-cell write epoch), never of goroutine
// scheduling or map order. Two runs with the same seed — serial or
// parallel — inject bit-identical faults, which is what makes seeded fault
// scenarios reproducible and diffable byte-for-byte.
package fault

import (
	"math/bits"
	"sort"
)

// Config holds the injection knobs. The zero value injects nothing.
type Config struct {
	Seed uint64 // base seed for every hash-derived decision

	// StuckProb is the per-word probability that a word contains one
	// manufacturing stuck-at bit (polarity and bit position are
	// hash-derived). Stuck bits are static: every write to the word is
	// forced through the defect.
	StuckProb float64

	// FlipProb is the per-write probability of a transient single-bit
	// flip in the written word (a write-disturb / thermal-noise event).
	FlipProb float64

	// EnduranceWrites is the mean number of writes a word survives
	// before one of its bits wears out and freezes at the last written
	// value. 0 disables wearout. Per-word thresholds are hash-jittered
	// in [E/2, 3E/2) so cells do not all fail on the same step.
	EnduranceWrites uint64
}

// Enabled reports whether the configuration can inject any fault at all.
func (c Config) Enabled() bool {
	return c.StuckProb > 0 || c.FlipProb > 0 || c.EnduranceWrites > 0
}

// Hash salts separating the decision streams.
const (
	saltStuck = 0x5354_5543 // "STUC"
	saltFlip  = 0x464c_4950 // "FLIP"
	saltWear  = 0x5745_4152 // "WEAR"
)

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds the arguments into one hash value.
func mix(xs ...uint64) uint64 {
	h := uint64(0x51_7cc1b727220a95)
	for _, x := range xs {
		h = splitmix64(h ^ x)
	}
	return h
}

// u01 maps a hash to a uniform float64 in [0,1).
func u01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// stuckBit is a frozen bit: stored = v&^and0 | or1.
type stuckBit struct {
	and0 uint32 // mask of bits forced to 0
	or1  uint32 // mask of bits forced to 1
}

// Counts aggregates the fault activity of one block (or, summed, a chip).
type Counts struct {
	Flips         int64 `json:"flips"`          // transient flips injected
	StuckWrites   int64 `json:"stuck_writes"`   // writes altered by a stuck bit
	Wearouts      int64 `json:"wearouts"`       // cells that crossed their endurance threshold
	Detected      int64 `json:"detected"`       // corrupted words found by scrub
	Corrected     int64 `json:"corrected"`      // single-bit errors fixed by ECC
	Uncorrectable int64 `json:"uncorrectable"`  // multi-bit or stuck errors ECC could not fix
	Retries       int64 `json:"retries"`        // verify-retry re-executions of a block program
}

// add accumulates o into c.
func (c *Counts) add(o Counts) {
	c.Flips += o.Flips
	c.StuckWrites += o.StuckWrites
	c.Wearouts += o.Wearouts
	c.Detected += o.Detected
	c.Corrected += o.Corrected
	c.Uncorrectable += o.Uncorrectable
	c.Retries += o.Retries
}

// BlockFaults is the per-block fault state. It is owned by exactly one
// goroutine at a time (the same single-owner discipline the engine already
// enforces for the block itself), so it needs no locking.
type BlockFaults struct {
	id  int
	cfg Config

	writes  map[uint32]uint64   // cell -> write count (the epoch stream)
	worn    map[uint32]stuckBit // cells frozen by endurance wearout
	pending map[uint32]uint32   // corrupted cell -> intended value
	counts  Counts
}

func newBlockFaults(id int, cfg Config) *BlockFaults {
	return &BlockFaults{
		id:      id,
		cfg:     cfg,
		writes:  make(map[uint32]uint64),
		worn:    make(map[uint32]stuckBit),
		pending: make(map[uint32]uint32),
	}
}

// cellOf packs a (row, word-offset) address into one cell index. The shift
// leaves room for 64 words per row, comfortably above the real 32.
func cellOf(row, off int) uint32 {
	return uint32(row)<<6 | uint32(off)
}

// CellAddr is the inverse of cellOf.
func CellAddr(cell uint32) (row, off int) {
	return int(cell >> 6), int(cell & 63)
}

// stuckMask returns the manufacturing stuck bit of a cell, if any. It is a
// pure function of (seed, block, cell), so it never needs to be stored.
func (bf *BlockFaults) stuckMask(cell uint32) (stuckBit, bool) {
	if bf.cfg.StuckProb <= 0 {
		return stuckBit{}, false
	}
	h := mix(bf.cfg.Seed, saltStuck, uint64(bf.id), uint64(cell))
	if u01(h) >= bf.cfg.StuckProb {
		return stuckBit{}, false
	}
	// Re-hash for position and polarity: h itself is conditioned small by
	// the threshold test above, so its own bits are not uniform.
	hb := splitmix64(h)
	bit := uint32(1) << (hb % 32)
	if hb>>63 == 0 {
		return stuckBit{and0: bit}, true // stuck-at-0
	}
	return stuckBit{or1: bit}, true // stuck-at-1
}

// wearThreshold is the hash-jittered endurance limit of a cell.
func (bf *BlockFaults) wearThreshold(cell uint32) uint64 {
	e := bf.cfg.EnduranceWrites
	h := mix(bf.cfg.Seed, saltWear, uint64(bf.id), uint64(cell))
	return e/2 + h%e
}

// Store models one word write: it applies transient flips, static stuck
// bits, and endurance wearout to the intended value, records the
// corruption (if any) for a later scrub, and returns the value that
// actually lands in the cells. The caller must hold single ownership of
// the block.
func (bf *BlockFaults) Store(row, off int, intended uint32) uint32 {
	cell := cellOf(row, off)
	epoch := bf.writes[cell]
	bf.writes[cell] = epoch + 1

	v := intended
	if bf.cfg.FlipProb > 0 {
		h := mix(bf.cfg.Seed, saltFlip, uint64(bf.id), uint64(cell), epoch)
		if u01(h) < bf.cfg.FlipProb {
			// Re-hash for the bit position: passing the threshold means h is
			// small, so h's own high bits would always pick bit 0.
			v ^= 1 << (splitmix64(h) % 32)
			bf.counts.Flips++
		}
	}
	if sb, ok := bf.stuckMask(cell); ok {
		nv := v&^sb.and0 | sb.or1
		if nv != v {
			bf.counts.StuckWrites++
		}
		v = nv
	}
	if bf.cfg.EnduranceWrites > 0 {
		sb, worn := bf.worn[cell]
		if !worn && epoch+1 >= bf.wearThreshold(cell) {
			// The bit freezes at the value being written right now.
			h := mix(bf.cfg.Seed, saltWear, uint64(bf.id), uint64(cell), epoch)
			bit := uint32(1) << (splitmix64(h) % 32)
			if v&bit != 0 {
				sb = stuckBit{or1: bit}
			} else {
				sb = stuckBit{and0: bit}
			}
			bf.worn[cell] = sb
			bf.counts.Wearouts++
			worn = true
		}
		if worn {
			v = v&^sb.and0 | sb.or1
		}
	}

	if v != intended {
		bf.pending[cell] = intended
	} else {
		delete(bf.pending, cell)
	}
	return v
}

// Pending reports how many corrupted words are awaiting a scrub.
func (bf *BlockFaults) Pending() int { return len(bf.pending) }

// Intended returns the value a corrupted cell was supposed to hold.
func (bf *BlockFaults) Intended(row, off int) (uint32, bool) {
	v, ok := bf.pending[cellOf(row, off)]
	return v, ok
}

// ScrubResult summarizes one ECC scrub pass over a block.
type ScrubResult struct {
	Detected      int64
	Corrected     int64
	Uncorrectable int64
}

// Scrub is the SECDED detect-and-correct pass: every corrupted word is
// compared against its intended value (the parity model gives perfect
// detection); a single-bit error is rewritten — through the fault path, so
// a stuck bit deterministically defeats the correction — and anything else
// is uncorrectable. The read/write callbacks are the caller's cell
// accessors.
func (bf *BlockFaults) Scrub(read func(row, off int) uint32, write func(row, off int, v uint32)) ScrubResult {
	var res ScrubResult
	if len(bf.pending) == 0 {
		return res
	}
	cells := make([]uint32, 0, len(bf.pending))
	for c := range bf.pending {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	for _, cell := range cells {
		intended := bf.pending[cell]
		row, off := CellAddr(cell)
		stored := read(row, off)
		if stored == intended {
			delete(bf.pending, cell)
			continue
		}
		res.Detected++
		if bits.OnesCount32(stored^intended) == 1 {
			write(row, off, intended) // goes back through Store: may re-corrupt
			if read(row, off) == intended {
				res.Corrected++
				continue
			}
		}
		res.Uncorrectable++
	}
	bf.counts.Detected += res.Detected
	bf.counts.Corrected += res.Corrected
	bf.counts.Uncorrectable += res.Uncorrectable
	return res
}

// SnapshotPending copies the corruption ledger, pairing a cell Snapshot
// taken before a retriable program. Write epochs are deliberately NOT part
// of the snapshot: a retry replays the program against fresh epochs, so
// transient flips resolve while stuck bits persist.
func (bf *BlockFaults) SnapshotPending() map[uint32]uint32 {
	out := make(map[uint32]uint32, len(bf.pending))
	for k, v := range bf.pending {
		out[k] = v
	}
	return out
}

// RestorePending rewinds the corruption ledger to a snapshot.
func (bf *BlockFaults) RestorePending(snap map[uint32]uint32) {
	bf.pending = make(map[uint32]uint32, len(snap))
	for k, v := range snap {
		bf.pending[k] = v
	}
}

// ClearPending drops the corruption ledger (the block has been retired by
// a spare-block remap; its data now lives elsewhere).
func (bf *BlockFaults) ClearPending() { bf.pending = make(map[uint32]uint32) }

// AddRetry records one verify-retry re-execution of this block's program.
func (bf *BlockFaults) AddRetry() { bf.counts.Retries++ }

// Counts returns the block's cumulative fault counters.
func (bf *BlockFaults) Counts() Counts { return bf.counts }
