package fault

import (
	"bytes"
	"math/bits"
	"testing"
)

// TestStoreDeterminism: two injectors with the same seed must corrupt the
// same writes identically — fault decisions are pure hashes, never state
// shared across blocks or runs.
func TestStoreDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, FlipProb: 0.1, StuckProb: 0.05, EnduranceWrites: 50}
	a := NewInjector(cfg, Recovery{}).ForBlock(3)
	b := NewInjector(cfg, Recovery{}).ForBlock(3)
	for row := 0; row < 8; row++ {
		for off := 0; off < 32; off++ {
			for w := 0; w < 4; w++ {
				v := uint32(row*1000 + off*10 + w)
				if got, want := a.Store(row, off, v), b.Store(row, off, v); got != want {
					t.Fatalf("Store(%d,%d,%#x) diverged: %#x vs %#x", row, off, v, got, want)
				}
			}
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counters diverged: %+v vs %+v", a.Counts(), b.Counts())
	}
	if a.Counts().Flips == 0 || a.Counts().StuckWrites == 0 {
		t.Fatalf("scenario too quiet to be a determinism test: %+v", a.Counts())
	}
}

// TestStoreDifferentSeedsDiffer: the seed must actually steer injection.
func TestStoreDifferentSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) Counts {
		bf := NewInjector(Config{Seed: seed, FlipProb: 0.1}, Recovery{}).ForBlock(0)
		for i := 0; i < 512; i++ {
			bf.Store(i/32, i%32, uint32(i))
		}
		return bf.Counts()
	}
	if mk(1) == mk(2) {
		t.Fatal("seeds 1 and 2 produced identical fault activity")
	}
}

// TestStuckBitStatic: with StuckProb=1 every word has exactly one stuck
// bit, and it is the SAME bit on every write — a manufacturing defect, not
// a transient.
func TestStuckBitStatic(t *testing.T) {
	bf := NewInjector(Config{Seed: 7, StuckProb: 1}, Recovery{}).ForBlock(0)
	v0 := bf.Store(0, 0, 0)          // stuck-at-1 shows against all-zeros
	v1 := bf.Store(0, 0, 0xffffffff) // stuck-at-0 shows against all-ones
	d0, d1 := v0, ^v1
	if bits.OnesCount32(d0|d1) != 1 {
		t.Fatalf("want exactly one stuck bit, got masks %#x (at-1) %#x (at-0)", d0, d1)
	}
	// Repeat: the defect must not move.
	if bf.Store(0, 0, 0) != v0 || bf.Store(0, 0, 0xffffffff) != v1 {
		t.Fatal("stuck bit moved between writes")
	}
	// A write of the stuck value itself lands clean and clears pending.
	clean := v0 | (0xffffffff &^ ^v1) // any value compatible with the defect
	_ = clean
	if got := bf.Store(0, 0, v0); got != v0 {
		t.Fatalf("writing the stuck-compatible value %#x stored %#x", v0, got)
	}
	if _, corrupted := bf.Intended(0, 0); corrupted {
		t.Fatal("stuck-compatible write left the cell marked corrupted")
	}
}

// TestWearout: a cell freezes one bit after its jittered threshold in
// [E/2, 3E/2) writes, and stays frozen.
func TestWearout(t *testing.T) {
	const e = 10
	bf := NewInjector(Config{Seed: 9, EnduranceWrites: e}, Recovery{}).ForBlock(0)
	for i := 0; i < e/2-1; i++ {
		bf.Store(0, 0, 0xaaaaaaaa)
	}
	if bf.Counts().Wearouts != 0 {
		t.Fatalf("cell wore out before E/2 writes: %+v", bf.Counts())
	}
	for i := 0; i < e+1; i++ { // past 3E/2 total
		bf.Store(0, 0, 0xaaaaaaaa)
	}
	if bf.Counts().Wearouts != 1 {
		t.Fatalf("want exactly one wearout, got %+v", bf.Counts())
	}
	// The bit froze at the written value (0xaaaaaaaa pattern), so writing
	// the complement must differ in exactly the frozen bit.
	got := bf.Store(0, 0, 0x55555555)
	if diff := got ^ 0x55555555; bits.OnesCount32(diff) != 1 {
		t.Fatalf("want one frozen bit, store of ~pattern differs by %#x", diff)
	}
}

// TestScrubCorrectsTransients: single-bit transient flips are detected and
// (usually) corrected by the scrub pass; the pending ledger drains to the
// uncorrectable residue.
func TestScrubCorrectsTransients(t *testing.T) {
	bf := NewInjector(Config{Seed: 3, FlipProb: 0.2}, Recovery{}).ForBlock(1)
	storage := map[[2]int]uint32{}
	write := func(row, off int, v uint32) {
		storage[[2]int{row, off}] = bf.Store(row, off, v)
	}
	read := func(row, off int) uint32 { return storage[[2]int{row, off}] }

	for i := 0; i < 256; i++ {
		write(i/32, i%32, uint32(i*2654435761))
	}
	before := bf.Pending()
	if before == 0 {
		t.Fatal("no corruption at FlipProb=0.2 over 256 writes")
	}
	res := bf.Scrub(read, write)
	if res.Detected != int64(before) {
		t.Fatalf("detected %d of %d corrupted words", res.Detected, before)
	}
	if res.Corrected == 0 {
		t.Fatal("scrub corrected nothing")
	}
	if res.Corrected+res.Uncorrectable != res.Detected {
		t.Fatalf("corrected %d + uncorrectable %d != detected %d", res.Corrected, res.Uncorrectable, res.Detected)
	}
	if got := bf.Pending(); int64(got) != res.Uncorrectable {
		t.Fatalf("pending after scrub = %d, want the uncorrectable residue %d", got, res.Uncorrectable)
	}
}

// TestScrubDefeatedByStuck: a stuck bit is single-bit (so ECC tries) but
// the correction write re-corrupts through the same defect — deterministic
// uncorrectable.
func TestScrubDefeatedByStuck(t *testing.T) {
	bf := NewInjector(Config{Seed: 7, StuckProb: 1}, Recovery{}).ForBlock(0)
	storage := map[[2]int]uint32{}
	write := func(row, off int, v uint32) { storage[[2]int{row, off}] = bf.Store(row, off, v) }
	read := func(row, off int) uint32 { return storage[[2]int{row, off}] }

	// Probe the defect's polarity, then write the value it corrupts.
	victim := uint32(0xffffffff) // corrupted by stuck-at-0
	if bf.Store(0, 0, 0) != 0 {
		victim = 0 // stuck-at-1
	}
	write(0, 0, victim)
	if bf.Pending() == 0 {
		t.Fatal("no corruption with StuckProb=1")
	}
	res := bf.Scrub(read, write)
	if res.Uncorrectable != res.Detected || res.Corrected != 0 {
		t.Fatalf("stuck bit should defeat ECC: %+v", res)
	}
}

// TestSnapshotRestorePending: the retry path rewinds the corruption ledger
// but not the write epochs.
func TestSnapshotRestorePending(t *testing.T) {
	bf := NewInjector(Config{Seed: 11, FlipProb: 0.3}, Recovery{}).ForBlock(2)
	for i := 0; i < 64; i++ {
		bf.Store(0, i%32, uint32(i))
	}
	snap := bf.SnapshotPending()
	n := bf.Pending()
	for i := 0; i < 64; i++ {
		bf.Store(1, i%32, uint32(i))
	}
	if bf.Pending() == n && len(snap) == 0 {
		t.Skip("scenario injected nothing")
	}
	bf.RestorePending(snap)
	if bf.Pending() != n {
		t.Fatalf("restore gave %d pending, want %d", bf.Pending(), n)
	}
	bf.ClearPending()
	if bf.Pending() != 0 {
		t.Fatal("ClearPending left residue")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42, flip=1e-7, stuck=0.001, wear=100000")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, FlipProb: 1e-7, StuckProb: 0.001, EnduranceWrites: 100000}
	if cfg != want {
		t.Fatalf("got %+v want %+v", cfg, want)
	}
	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"seed", "flip=2", "stuck=-1", "bogus=1", "flip=abc"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestParseRecoverySpec(t *testing.T) {
	rec, err := ParseRecoverySpec("ecc=0,retries=5,spares=2,ckpt=16,rollbacks=1,blowup=10")
	if err != nil {
		t.Fatal(err)
	}
	want := Recovery{ECC: false, MaxRetries: 5, SpareBlocks: 2, CheckpointEvery: 16, MaxRollbacks: 1, BlowupFactor: 10}
	if rec != want {
		t.Fatalf("got %+v want %+v", rec, want)
	}
	if rec, err := ParseRecoverySpec(""); err != nil || rec != DefaultRecovery() {
		t.Fatalf("empty spec should keep defaults: %+v, %v", rec, err)
	}
	for _, bad := range []string{"ecc=maybe", "retries=-1", "blowup=0", "nope=1"} {
		if _, err := ParseRecoverySpec(bad); err == nil {
			t.Errorf("ParseRecoverySpec(%q) accepted", bad)
		}
	}
}

// TestReportJSONDeterministic: identical runs marshal byte-identically —
// the property the CI reproducibility guard diffs on.
func TestReportJSONDeterministic(t *testing.T) {
	run := func() []byte {
		in := NewInjector(Config{Seed: 5, FlipProb: 0.1}, DefaultRecovery())
		for _, id := range []int{4, 1, 9} { // attach in non-sorted order
			bf := in.ForBlock(id)
			for i := 0; i < 128; i++ {
				bf.Store(i/32, i%32, uint32(i))
			}
		}
		in.NoteCheckpoint()
		in.NoteRemap(4)
		in.NoteRollback()
		var buf bytes.Buffer
		if err := in.Report().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ:\n%s\nvs\n%s", a, b)
	}
	r := NewInjector(Config{}, Recovery{}).Report()
	if r.FaultyBlocks != 0 || r.Counts != (Counts{}) {
		t.Fatalf("zero injector reported activity: %+v", r)
	}
}

// TestCostsMonotone: recovery costs must be positive and grow with work,
// or the timeline accounting is meaningless.
func TestCostsMonotone(t *testing.T) {
	s0, j0 := ScrubCost(0)
	s2, j2 := ScrubCost(2)
	if s0 <= 0 || j0 <= 0 || s2 <= s0 || j2 <= j0 {
		t.Fatalf("ScrubCost not monotone: (%g,%g) -> (%g,%g)", s0, j0, s2, j2)
	}
	b0, _ := BackoffCost(0)
	b1, _ := BackoffCost(1)
	b2, _ := BackoffCost(2)
	if b0 != 0 || b1 <= 0 || b2 <= b1 {
		t.Fatalf("BackoffCost not monotone: %g %g %g", b0, b1, b2)
	}
}
