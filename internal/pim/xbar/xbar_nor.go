package xbar

import (
	"fmt"

	"wavepim/internal/params"
	"wavepim/internal/pim/nor"
)

// NORUnit bundles a K-word slab circuit with the gather/scatter staging
// buffers ArithSelNOR needs, so the sim engine can pool one unit per
// worker and run arithmetic through the gate-level substrate without
// per-instruction allocation. Units are not safe for concurrent use; the
// engine hands each in-flight instruction its own.
type NORUnit struct {
	C          *nor.SlabCircuit
	av, bv, ov []uint32
}

// NewNORUnit builds a unit over a fresh slab circuit of the given width.
func NewNORUnit(slabWords int) *NORUnit {
	return &NORUnit{C: nor.NewSlabCircuit(slabWords)}
}

// SlabWords returns the unit's slab width in 64-bit words.
func (u *NORUnit) SlabWords() int { return u.C.K }

// buffers returns the three staging slices sized to n lanes, reusing the
// unit's backing arrays.
func (u *NORUnit) buffers(n int) (a, b, out []uint32) {
	if cap(u.av) < n {
		u.av = make([]uint32, n)
		u.bv = make([]uint32, n)
		u.ov = make([]uint32, n)
	}
	return u.av[:n], u.bv[:n], u.ov[:n]
}

// ArithSelNOR executes the same row-parallel FP32 operation as ArithSel,
// but produces every result through the bit-sliced NOR slab substrate
// (internal/pim/nor) instead of host floating point: the rowCount operand
// pairs are gathered into K-word slabs and driven through the gate-level
// IEEE-754 add/mul programs, whose bit-exactness against hardware floats
// is established by that package's property tests. Subtraction flips the
// second operand's sign plane and reuses the adder, exactly as the
// in-array sequence does (IEEE a-b == a+(-b) for every finite input and
// both zeros; NaN results canonicalize to the quiet NaN instead of
// propagating payloads). Timing and energy charging are identical to
// ArithSel — the substrate changes how the bits are computed, not what
// the hardware costs. Gate-level activity accumulates in u.C.Stats.
func (b *Block) ArithSelNOR(u *NORUnit, op ArithOp, rowStart, rowCount, dstOff, srcOff, src2Off int) {
	if rowCount < 0 || rowStart < 0 || rowStart+rowCount > Rows {
		panic(fmt.Sprintf("xbar: row range [%d,%d) out of bounds", rowStart, rowStart+rowCount))
	}
	b.checkOff(dstOff)
	b.checkOff(srcOff)
	b.checkOff(src2Off)
	av, bv, out := u.buffers(rowCount)
	for i := 0; i < rowCount; i++ {
		r := rowStart + i
		av[i] = b.cells[r][srcOff]
		bv[i] = b.cells[r][src2Off]
	}
	var steps int64
	switch op {
	case OpMul:
		steps = params.NORStepsFPMul32
		u.C.MulFP32Batch(av, bv, out)
	case OpSub:
		steps = params.NORStepsFPAdd32
		for i := range bv {
			bv[i] ^= 1 << 31
		}
		u.C.AddFP32Batch(av, bv, out)
	default:
		steps = params.NORStepsFPAdd32
		u.C.AddFP32Batch(av, bv, out)
	}
	for i := 0; i < rowCount; i++ {
		b.store(rowStart+i, dstOff, out[i])
	}
	if op == OpMul {
		b.Stats.MulOps += int64(rowCount)
	} else {
		b.Stats.AddOps += int64(rowCount)
	}
	b.Stats.NORSteps += steps
	b.Stats.BusySec += float64(steps) * params.TNORSeconds
	b.Stats.EnergyJ += float64(steps) * params.EnergyPerNORStep * float64(rowCount)
}
