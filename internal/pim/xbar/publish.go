package xbar

import "wavepim/internal/obs"

// Publish adds the accumulated block activity into registry counters and
// gauges (xbar.* namespace). Blocks accumulate Stats locally — the
// functional execution path is too hot for shared atomics — and a run
// driver publishes the chip-wide sum once per run (see
// chip.TotalBlockStats). No-op against a nil registry.
func (s Stats) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("xbar.row_reads").Add(s.RowReads)
	reg.Counter("xbar.row_writes").Add(s.RowWrites)
	reg.Counter("xbar.add_ops").Add(s.AddOps)
	reg.Counter("xbar.mul_ops").Add(s.MulOps)
	reg.Counter("xbar.copied_rows").Add(s.CopiedRows)
	reg.Counter("xbar.nor_steps").Add(s.NORSteps)
	reg.Gauge("xbar.busy_seconds").Add(s.BusySec)
	reg.Gauge("xbar.energy_joules").Add(s.EnergyJ)
}
