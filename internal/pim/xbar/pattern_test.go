package xbar

import (
	"testing"

	"wavepim/internal/params"
)

func TestArithSelSub(t *testing.T) {
	b := New(0)
	b.SetFloat(0, 0, 7.5)
	b.SetFloat(0, 1, 2.25)
	b.ArithSel(OpSub, 0, 1, 2, 0, 1)
	if got := b.GetFloat(0, 2); got != 5.25 {
		t.Errorf("sub got %g", got)
	}
	// Subtraction costs the addition NOR sequence.
	if b.Stats.NORSteps != params.NORStepsFPAdd32 {
		t.Errorf("sub NOR steps %d want %d", b.Stats.NORSteps, params.NORStepsFPAdd32)
	}
	if b.Stats.AddOps != 1 {
		t.Errorf("sub should count as an add-class op")
	}
}

func TestGroupBcastAxisSemantics(t *testing.T) {
	// np=4 element: 64 rows, row = k*16 + j*4 + i. GroupBcast along x
	// (stride 1, group 4, idx m) must put u(m, j, k) into every row of the
	// (j,k) line.
	b := New(0)
	np := 4
	nn := np * np * np
	val := func(i, j, k int) float32 { return float32(100*i + 10*j + k) }
	for k := 0; k < np; k++ {
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				b.SetFloat(k*16+j*4+i, 0, val(i, j, k))
			}
		}
	}
	m := 2
	b.GroupBcast(0, nn, 0, 1, 1, np, m)
	for k := 0; k < np; k++ {
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				want := val(m, j, k)
				if got := b.GetFloat(k*16+j*4+i, 1); got != want {
					t.Fatalf("x-gbcast row (%d,%d,%d): got %g want %g", i, j, k, got, want)
				}
			}
		}
	}
	// Along y (stride np): u(i, m, k) everywhere.
	b.GroupBcast(0, nn, 0, 2, np, np, m)
	for k := 0; k < np; k++ {
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				want := val(i, m, k)
				if got := b.GetFloat(k*16+j*4+i, 2); got != want {
					t.Fatalf("y-gbcast row (%d,%d,%d): got %g want %g", i, j, k, got, want)
				}
			}
		}
	}
	// Along z (stride np^2): u(i, j, m) everywhere.
	b.GroupBcast(0, nn, 0, 3, np*np, np, m)
	for k := 0; k < np; k++ {
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				want := val(i, j, m)
				if got := b.GetFloat(k*16+j*4+i, 3); got != want {
					t.Fatalf("z-gbcast row (%d,%d,%d): got %g want %g", i, j, k, got, want)
				}
			}
		}
	}
}

func TestPatternDistributesPerAxisConstants(t *testing.T) {
	// Storage rows 512+i hold D[i][*]; Pattern along axis a must deliver
	// D[coord_a(r)][m] to every row r.
	b := New(0)
	np := 4
	nn := np * np * np
	for i := 0; i < np; i++ {
		for m := 0; m < np; m++ {
			b.SetFloat(512+i, m, float32(10*i+m))
		}
	}
	m := 3
	// Axis y: coord = (r/np) % np.
	b.Pattern(512, 0, nn, m, 5, np, np)
	for r := 0; r < nn; r++ {
		j := (r / np) % np
		want := float32(10*j + m)
		if got := b.GetFloat(r, 5); got != want {
			t.Fatalf("pattern row %d: got %g want %g", r, got, want)
		}
	}
}

func TestPatternMaskGeneration(t *testing.T) {
	// Mask rows: word0 = first-indicator. Pattern with stride np^2 gives
	// the z-minus face mask (k == 0).
	b := New(0)
	np := 4
	nn := np * np * np
	for i := 0; i < np; i++ {
		if i == 0 {
			b.SetFloat(520+i, 0, 1)
		}
	}
	b.Pattern(520, 0, nn, 0, 7, np*np, np)
	for r := 0; r < nn; r++ {
		k := r / (np * np)
		want := float32(0)
		if k == 0 {
			want = 1
		}
		if got := b.GetFloat(r, 7); got != want {
			t.Fatalf("mask row %d (k=%d): got %g want %g", r, k, got, want)
		}
	}
}

func TestPatternPanicsOnBadGeometry(t *testing.T) {
	b := New(0)
	for i, fn := range []func(){
		func() { b.Pattern(1020, 0, 64, 0, 1, 1, 8) }, // base+group beyond rows
		func() { b.Pattern(512, 0, 64, 0, 1, 0, 8) },  // zero stride
		func() { b.Pattern(512, 0, 2000, 0, 1, 1, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
