// Package xbar models one PIM memory block: a 1K x 1K memristor crossbar
// array with sense amplifiers, a per-block decoder, and a row/column buffer
// (Section 4.1). Computation happens inside the block in a bit-serial,
// row-parallel way: one arithmetic instruction runs the same NOR
// micro-sequence in every addressed row simultaneously, so an instruction's
// latency is independent of how many rows it touches while its energy
// scales with the row count.
//
// The block executes instructions functionally on real float32 data. The
// bit-level equivalence of its add/mul semantics with the in-array NOR
// sequences is established by internal/pim/nor's property tests, so this
// package can use hardware float32 arithmetic while charging Table 4
// energy and timing.
package xbar

import (
	"fmt"
	"math"

	"wavepim/internal/params"
	"wavepim/internal/pim/fault"
)

// Rows and WordsPerRow describe the block geometry (1 Mb = 1024 x 1024
// cells, 32 words of 32 bits per row).
const (
	Rows        = params.CellsPerRow
	WordsPerRow = params.WordsPerRow
)

// Stats accumulates the physical activity of one block.
type Stats struct {
	RowReads   int64   // row buffer loads
	RowWrites  int64   // row buffer stores
	AddOps     int64   // FP32 additions executed (rows x instructions)
	MulOps     int64   // FP32 multiplications executed
	CopiedRows int64   // broadcast row writes
	NORSteps   int64   // sequential NOR steps charged as latency
	BusySec    float64 // total busy time
	EnergyJ    float64 // dynamic energy
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.RowReads += o.RowReads
	s.RowWrites += o.RowWrites
	s.AddOps += o.AddOps
	s.MulOps += o.MulOps
	s.CopiedRows += o.CopiedRows
	s.NORSteps += o.NORSteps
	s.BusySec += o.BusySec
	s.EnergyJ += o.EnergyJ
}

// Block is one crossbar memory block.
type Block struct {
	ID    int
	cells [][]uint32 // [Rows][WordsPerRow] float32 bit patterns
	buf   []uint32   // row buffer (one row)
	Stats Stats

	// Faults, when non-nil, intercepts every cell write with the
	// deterministic fault model (stuck-at, transient flips, wearout).
	// nil is the golden-path fast path: one pointer test per write.
	Faults *fault.BlockFaults
}

// store is the single choke point for cell writes: the fault injector, if
// attached, decides what actually lands in the array.
func (b *Block) store(row, off int, v uint32) {
	if b.Faults != nil {
		v = b.Faults.Store(row, off, v)
	}
	b.cells[row][off] = v
}

// New allocates a zeroed block.
func New(id int) *Block {
	b := &Block{ID: id, buf: make([]uint32, WordsPerRow)}
	b.cells = make([][]uint32, Rows)
	backing := make([]uint32, Rows*WordsPerRow)
	for r := range b.cells {
		b.cells[r] = backing[r*WordsPerRow : (r+1)*WordsPerRow]
	}
	return b
}

func (b *Block) checkRow(row int) {
	if row < 0 || row >= Rows {
		panic(fmt.Sprintf("xbar: row %d out of range [0,%d)", row, Rows))
	}
}

func (b *Block) checkOff(off int) {
	if off < 0 || off >= WordsPerRow {
		panic(fmt.Sprintf("xbar: word offset %d out of range [0,%d)", off, WordsPerRow))
	}
}

// SetFloat stores a float32 directly into the cells (host-side data
// loading; DRAM transaction costs are charged by the chip-level model, not
// here).
func (b *Block) SetFloat(row, off int, v float32) {
	b.checkRow(row)
	b.checkOff(off)
	b.store(row, off, math.Float32bits(v))
}

// GetFloat reads a float32 from the cells.
func (b *Block) GetFloat(row, off int) float32 {
	b.checkRow(row)
	b.checkOff(off)
	return math.Float32frombits(b.cells[row][off])
}

// SetWord and GetWord are the raw bit-pattern accessors.
func (b *Block) SetWord(row, off int, v uint32) {
	b.checkRow(row)
	b.checkOff(off)
	b.store(row, off, v)
}

func (b *Block) GetWord(row, off int) uint32 {
	b.checkRow(row)
	b.checkOff(off)
	return b.cells[row][off]
}

// ReadRow loads a row into the row buffer (OpRead) and returns the buffer.
func (b *Block) ReadRow(row int) []uint32 {
	b.checkRow(row)
	copy(b.buf, b.cells[row])
	b.Stats.RowReads++
	b.Stats.BusySec += params.BlockRowReadLatency
	b.Stats.EnergyJ += params.RowBufferReadEnergyJ
	return b.buf
}

// WriteRow stores the row buffer into a row (OpWrite).
func (b *Block) WriteRow(row int) {
	b.checkRow(row)
	if b.Faults == nil {
		copy(b.cells[row], b.buf)
	} else {
		for o, v := range b.buf {
			b.store(row, o, v)
		}
	}
	b.Stats.RowWrites++
	b.Stats.BusySec += params.BlockRowWriteLatency
	b.Stats.EnergyJ += params.RowBufferWriteEnergyJ
}

// LoadBuffer overwrites the row buffer with external payload (the
// receiving half of an inter-block memcpy).
func (b *Block) LoadBuffer(payload []uint32) {
	if len(payload) != WordsPerRow {
		panic(fmt.Sprintf("xbar: payload has %d words, want %d", len(payload), WordsPerRow))
	}
	copy(b.buf, payload)
}

// Buffer returns the current row buffer contents (the sending half of an
// inter-block memcpy). The returned slice is a copy.
func (b *Block) Buffer() []uint32 {
	out := make([]uint32, WordsPerRow)
	copy(out, b.buf)
	return out
}

// ArithOp selects the row-parallel arithmetic operation.
type ArithOp int

const (
	OpAdd ArithOp = iota
	OpMul
	OpSub
)

// ArithSel executes a row-parallel FP32 operation of the given kind.
// Subtraction is bit-serial two's-complement-style and costs the same NOR
// sequence length as addition.
func (b *Block) ArithSel(op ArithOp, rowStart, rowCount, dstOff, srcOff, src2Off int) {
	if rowCount < 0 || rowStart < 0 || rowStart+rowCount > Rows {
		panic(fmt.Sprintf("xbar: row range [%d,%d) out of bounds", rowStart, rowStart+rowCount))
	}
	b.checkOff(dstOff)
	b.checkOff(srcOff)
	b.checkOff(src2Off)
	var steps int64
	if op == OpMul {
		steps = params.NORStepsFPMul32
	} else {
		steps = params.NORStepsFPAdd32
	}
	for r := rowStart; r < rowStart+rowCount; r++ {
		a := math.Float32frombits(b.cells[r][srcOff])
		c := math.Float32frombits(b.cells[r][src2Off])
		var v float32
		switch op {
		case OpAdd:
			v = a + c
		case OpMul:
			v = a * c
		case OpSub:
			v = a - c
		}
		b.store(r, dstOff, math.Float32bits(v))
	}
	if op == OpMul {
		b.Stats.MulOps += int64(rowCount)
	} else {
		b.Stats.AddOps += int64(rowCount)
	}
	b.Stats.NORSteps += steps
	b.Stats.BusySec += float64(steps) * params.TNORSeconds
	b.Stats.EnergyJ += float64(steps) * params.EnergyPerNORStep * float64(rowCount)
}

// Arith is ArithSel restricted to add/mul, kept as the common fast path.
func (b *Block) Arith(mul bool, rowStart, rowCount, dstOff, srcOff, src2Off int) {
	op := OpAdd
	if mul {
		op = OpMul
	}
	b.ArithSel(op, rowStart, rowCount, dstOff, srcOff, src2Off)
}

// GroupBcast rearranges data through the column buffers: rows in
// [rowStart, rowStart+rowCount) are partitioned into groups of groupSize
// members spaced stride rows apart, and every member's dstOff word is
// overwritten with the groupIdx-th member's srcOff word. This is the
// strided broadcast that feeds each step of a tensor-product derivative
// dot product (one GroupBcast per dshape column).
func (b *Block) GroupBcast(rowStart, rowCount, srcOff, dstOff, stride, groupSize, groupIdx int) {
	if rowCount < 0 || rowStart < 0 || rowStart+rowCount > Rows {
		panic(fmt.Sprintf("xbar: row range [%d,%d) out of bounds", rowStart, rowStart+rowCount))
	}
	b.checkOff(srcOff)
	b.checkOff(dstOff)
	if stride < 1 || groupSize < 1 || groupIdx < 0 || groupIdx >= groupSize {
		panic(fmt.Sprintf("xbar: bad group geometry stride=%d size=%d idx=%d", stride, groupSize, groupIdx))
	}
	span := stride * groupSize
	for r := rowStart; r < rowStart+rowCount; r++ {
		rel := r - rowStart
		base := rowStart + (rel/span)*span + rel%stride
		src := base + groupIdx*stride
		if src >= rowStart+rowCount {
			continue // ragged tail group: leave untouched
		}
		b.store(r, dstOff, b.cells[src][srcOff])
	}
	b.Stats.CopiedRows += int64(rowCount)
	b.Stats.BusySec += params.GroupBcastLatencySec
	b.Stats.EnergyJ += params.GroupBcastEnergyJ
}

// Pattern distributes a per-axis constant from the storage rows into a
// compute column: row r of [rowStart, rowStart+rowCount) gets
// cells[baseRow + ((r-rowStart)/stride) mod groupSize][srcOff]. Same
// column-buffer mechanism (and cost) as GroupBcast.
func (b *Block) Pattern(baseRow, rowStart, rowCount, srcOff, dstOff, stride, groupSize int) {
	b.checkRow(baseRow)
	if rowCount < 0 || rowStart < 0 || rowStart+rowCount > Rows {
		panic(fmt.Sprintf("xbar: row range [%d,%d) out of bounds", rowStart, rowStart+rowCount))
	}
	b.checkOff(srcOff)
	b.checkOff(dstOff)
	if stride < 1 || groupSize < 1 || baseRow+groupSize > Rows {
		panic(fmt.Sprintf("xbar: bad pattern geometry base=%d stride=%d size=%d", baseRow, stride, groupSize))
	}
	for r := rowStart; r < rowStart+rowCount; r++ {
		src := baseRow + ((r-rowStart)/stride)%groupSize
		b.store(r, dstOff, b.cells[src][srcOff])
	}
	b.Stats.CopiedRows += int64(rowCount)
	b.Stats.BusySec += params.GroupBcastLatencySec
	b.Stats.EnergyJ += params.GroupBcastEnergyJ
}

// Broadcast replicates wordCount words starting at srcOff of srcRow into
// dstOff of every row in [rowStart, rowStart+rowCount) — the constant
// distribution step of Figure 5. It is implemented with the row drivers
// (sequential row writes), so latency scales with the row count.
func (b *Block) Broadcast(srcRow, rowStart, rowCount, srcOff, dstOff, wordCount int) {
	b.checkRow(srcRow)
	if rowCount < 0 || rowStart < 0 || rowStart+rowCount > Rows {
		panic(fmt.Sprintf("xbar: broadcast row range [%d,%d) out of bounds", rowStart, rowStart+rowCount))
	}
	if wordCount < 0 || srcOff+wordCount > WordsPerRow || dstOff+wordCount > WordsPerRow {
		panic(fmt.Sprintf("xbar: broadcast words [%d+%d / %d+%d] out of bounds", srcOff, wordCount, dstOff, wordCount))
	}
	src := b.cells[srcRow]
	for r := rowStart; r < rowStart+rowCount; r++ {
		if b.Faults == nil {
			copy(b.cells[r][dstOff:dstOff+wordCount], src[srcOff:srcOff+wordCount])
		} else {
			for w := 0; w < wordCount; w++ {
				b.store(r, dstOff+w, src[srcOff+w])
			}
		}
	}
	b.Stats.CopiedRows += int64(rowCount)
	b.Stats.BusySec += params.BlockRowReadLatency + float64(rowCount)*params.BlockRowWriteLatency
	b.Stats.EnergyJ += params.RowBufferReadEnergyJ + float64(rowCount)*params.RowBufferWriteEnergyJ
}

// Snapshot returns a flat copy of the cell array, taken before a
// retriable program so a verify-retry can rewind the block.
func (b *Block) Snapshot() []uint32 {
	out := make([]uint32, Rows*WordsPerRow)
	for r, row := range b.cells {
		copy(out[r*WordsPerRow:], row)
	}
	return out
}

// Restore rewinds the cell array to a Snapshot. It bypasses the fault
// injector: the snapshot already holds physically-stored (possibly
// corrupted) values, and a rollback is a modeling rewind, not a device
// write.
func (b *Block) Restore(snap []uint32) {
	if len(snap) != Rows*WordsPerRow {
		panic(fmt.Sprintf("xbar: snapshot has %d words, want %d", len(snap), Rows*WordsPerRow))
	}
	for r, row := range b.cells {
		copy(row, snap[r*WordsPerRow:(r+1)*WordsPerRow])
	}
}

// Scrub runs the ECC detect-and-correct pass over the block's corrupted
// cells. Corrections are written back through the fault path, so a stuck
// bit deterministically defeats them. No-op without an injector.
func (b *Block) Scrub() fault.ScrubResult {
	if b.Faults == nil {
		return fault.ScrubResult{}
	}
	return b.Faults.Scrub(
		func(row, off int) uint32 { return b.cells[row][off] },
		func(row, off int, v uint32) { b.store(row, off, v) },
	)
}

// CorrectedWord reads a word with ECC knowledge applied: a cell pending
// correction yields its intended value. This is the readout path of a
// spare-block migration.
func (b *Block) CorrectedWord(row, off int) uint32 {
	if b.Faults != nil {
		if v, ok := b.Faults.Intended(row, off); ok {
			return v
		}
	}
	return b.cells[row][off]
}
