package xbar

import (
	"math"
	"testing"
	"testing/quick"

	"wavepim/internal/params"
)

func TestGeometry(t *testing.T) {
	if Rows != 1024 || WordsPerRow != 32 {
		t.Fatalf("block geometry %dx%d words, want 1024x32 (1K x 1K bits)", Rows, WordsPerRow)
	}
	if Rows*WordsPerRow*32 != params.BlockBits {
		t.Error("block capacity mismatch with params.BlockBits")
	}
}

func TestSetGetFloat(t *testing.T) {
	b := New(0)
	b.SetFloat(17, 5, 3.25)
	if got := b.GetFloat(17, 5); got != 3.25 {
		t.Errorf("GetFloat = %g", got)
	}
	b.SetWord(1023, 31, 0xDEADBEEF)
	if got := b.GetWord(1023, 31); got != 0xDEADBEEF {
		t.Errorf("GetWord = %#x", got)
	}
}

func TestReadWriteRowBuffer(t *testing.T) {
	b := New(0)
	for off := 0; off < WordsPerRow; off++ {
		b.SetWord(9, off, uint32(off*7))
	}
	b.ReadRow(9)
	b.WriteRow(10)
	for off := 0; off < WordsPerRow; off++ {
		if b.GetWord(10, off) != uint32(off*7) {
			t.Fatalf("row copy via buffer failed at word %d", off)
		}
	}
	if b.Stats.RowReads != 1 || b.Stats.RowWrites != 1 {
		t.Errorf("stats %+v", b.Stats)
	}
	if b.Stats.BusySec <= 0 || b.Stats.EnergyJ <= 0 {
		t.Error("row ops must consume time and energy")
	}
}

func TestBufferTransfer(t *testing.T) {
	src, dst := New(0), New(1)
	src.SetFloat(3, 2, 42.5)
	src.ReadRow(3)
	dst.LoadBuffer(src.Buffer())
	dst.WriteRow(8)
	if got := dst.GetFloat(8, 2); got != 42.5 {
		t.Errorf("inter-block transfer got %g", got)
	}
}

func TestArithAddRowParallel(t *testing.T) {
	b := New(0)
	for r := 0; r < 100; r++ {
		b.SetFloat(r, 0, float32(r))
		b.SetFloat(r, 1, 2)
	}
	b.Arith(false, 0, 100, 2, 0, 1)
	for r := 0; r < 100; r++ {
		if got := b.GetFloat(r, 2); got != float32(r)+2 {
			t.Fatalf("row %d: %g", r, got)
		}
	}
	if b.Stats.AddOps != 100 {
		t.Errorf("AddOps = %d", b.Stats.AddOps)
	}
	// Latency is row-parallel: one NOR sequence regardless of rows.
	if b.Stats.NORSteps != params.NORStepsFPAdd32 {
		t.Errorf("NORSteps = %d want %d", b.Stats.NORSteps, params.NORStepsFPAdd32)
	}
}

func TestArithMulUsesMulLatency(t *testing.T) {
	b := New(0)
	b.SetFloat(0, 0, 3)
	b.SetFloat(0, 1, 4)
	b.Arith(true, 0, 1, 2, 0, 1)
	if got := b.GetFloat(0, 2); got != 12 {
		t.Errorf("mul got %g", got)
	}
	if b.Stats.NORSteps != params.NORStepsFPMul32 {
		t.Errorf("NORSteps = %d want %d", b.Stats.NORSteps, params.NORStepsFPMul32)
	}
}

func TestArithLatencyIndependentOfRowsEnergyScales(t *testing.T) {
	b1, b512 := New(0), New(1)
	b1.Arith(false, 0, 1, 2, 0, 1)
	b512.Arith(false, 0, 512, 2, 0, 1)
	if b1.Stats.BusySec != b512.Stats.BusySec {
		t.Errorf("latency should be row-parallel: %g vs %g", b1.Stats.BusySec, b512.Stats.BusySec)
	}
	if b512.Stats.EnergyJ <= b1.Stats.EnergyJ*500 {
		t.Errorf("energy should scale with rows: %g vs %g", b1.Stats.EnergyJ, b512.Stats.EnergyJ)
	}
}

func TestBroadcast(t *testing.T) {
	b := New(0)
	for w := 0; w < 4; w++ {
		b.SetFloat(512, 8+w, float32(w)+0.5)
	}
	b.Broadcast(512, 0, 512, 8, 20, 4)
	for r := 0; r < 512; r++ {
		for w := 0; w < 4; w++ {
			if got := b.GetFloat(r, 20+w); got != float32(w)+0.5 {
				t.Fatalf("broadcast row %d word %d: %g", r, w, got)
			}
		}
	}
	if b.Stats.CopiedRows != 512 {
		t.Errorf("CopiedRows = %d", b.Stats.CopiedRows)
	}
}

// Property: Arith matches hardware float32 for arbitrary bit patterns
// (including NaN/Inf/subnormals), because the nor package proved the NOR
// datapath equivalent.
func TestArithMatchesHardwareProperty(t *testing.T) {
	b := New(0)
	f := func(x, y uint32, mul bool) bool {
		b.SetWord(0, 0, x)
		b.SetWord(0, 1, y)
		b.Arith(mul, 0, 1, 2, 0, 1)
		got := b.GetWord(0, 2)
		a := math.Float32frombits(x)
		c := math.Float32frombits(y)
		var want uint32
		if mul {
			want = math.Float32bits(a * c)
		} else {
			want = math.Float32bits(a + c)
		}
		if got == want {
			return true
		}
		// NaNs may differ in payload.
		return math.IsNaN(float64(math.Float32frombits(got))) &&
			math.IsNaN(float64(math.Float32frombits(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoundsPanics(t *testing.T) {
	b := New(0)
	cases := []func(){
		func() { b.SetFloat(Rows, 0, 1) },
		func() { b.SetFloat(0, WordsPerRow, 1) },
		func() { b.ReadRow(-1) },
		func() { b.Arith(false, 1000, 100, 0, 1, 2) },
		func() { b.Broadcast(0, 0, 10, 30, 30, 4) },
		func() { b.LoadBuffer(make([]uint32, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{RowReads: 1, AddOps: 2, EnergyJ: 0.5, BusySec: 0.25}
	var s Stats
	s.Add(a)
	s.Add(a)
	if s.RowReads != 2 || s.AddOps != 4 || s.EnergyJ != 1.0 || s.BusySec != 0.5 {
		t.Errorf("Stats.Add wrong: %+v", s)
	}
}
