package xbar

import (
	"math"
	"math/rand"
	"testing"
)

// randFinite32 draws a finite float32 bit pattern spanning normals,
// subnormals and zeros (no NaN/Inf: the slab substrate canonicalizes NaN
// payloads, which the hardware path does not promise either way).
func randFinite32(rng *rand.Rand) uint32 {
	for {
		v := rng.Uint32()
		if v&0x7F800000 != 0x7F800000 {
			return v
		}
	}
}

// ArithSelNOR must be a drop-in for ArithSel: identical result bits in the
// destination column, identical Stats charging, for all three ops, slab
// widths and partial row ranges.
func TestArithSelNORMatchesArithSel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, k := range []int{1, 2, 8} {
		u := NewNORUnit(k)
		if u.SlabWords() != k {
			t.Fatalf("SlabWords = %d, want %d", u.SlabWords(), k)
		}
		for _, op := range []ArithOp{OpAdd, OpSub, OpMul} {
			for _, span := range []struct{ start, count int }{
				{0, 1}, {0, 64}, {5, 100}, {900, 124},
			} {
				host, gate := New(0), New(1)
				for r := span.start; r < span.start+span.count; r++ {
					a, b := randFinite32(rng), randFinite32(rng)
					host.SetWord(r, 3, a)
					host.SetWord(r, 4, b)
					gate.SetWord(r, 3, a)
					gate.SetWord(r, 4, b)
				}
				hostBase, gateBase := host.Stats, gate.Stats
				host.ArithSel(op, span.start, span.count, 7, 3, 4)
				gate.ArithSelNOR(u, op, span.start, span.count, 7, 3, 4)
				for r := span.start; r < span.start+span.count; r++ {
					hw, gw := host.GetWord(r, 7), gate.GetWord(r, 7)
					if hw != gw {
						t.Fatalf("K=%d op=%d row %d: gate %08x, host %08x (a=%g b=%g)",
							k, op, r, gw, hw,
							math.Float32frombits(host.GetWord(r, 3)),
							math.Float32frombits(host.GetWord(r, 4)))
					}
				}
				hd, gd := host.Stats, gate.Stats
				hd.BusySec -= hostBase.BusySec
				gd.BusySec -= gateBase.BusySec
				if hd != gd {
					t.Fatalf("K=%d op=%d stats diverge: gate %+v, host %+v", k, op, gd, hd)
				}
				if u.C.Stats.NOREvals == 0 {
					t.Fatal("slab circuit recorded no gate activity")
				}
			}
		}
	}
}

// The staging buffers are reused, not reallocated, across calls.
func TestNORUnitBufferReuse(t *testing.T) {
	u := NewNORUnit(2)
	b := New(0)
	for r := 0; r < 128; r++ {
		b.SetFloat(r, 0, float32(r))
		b.SetFloat(r, 1, 2)
	}
	b.ArithSelNOR(u, OpMul, 0, 128, 2, 0, 1)
	a1 := &u.av[0]
	b.ArithSelNOR(u, OpAdd, 0, 100, 2, 0, 1)
	if a1 != &u.av[0] {
		t.Error("staging buffers reallocated for a smaller call")
	}
	if got := b.GetFloat(64, 2); got != 66 {
		t.Errorf("add result = %g, want 66", got)
	}
}
