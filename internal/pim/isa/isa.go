// Package isa defines the instruction set of the ISA-based Wave-PIM system
// (Section 4.1): memory instructions (read, write, inter-block memcpy,
// broadcast), row-parallel arithmetic instructions, and the look-up-table
// instruction of Figure 4. Instructions are 64-bit words with the opcode in
// bits 57-63, following the paper's format. The host CPU streams encoded
// instructions; the chip's central controller decodes them and fans
// micro-sequences out to the per-block decoders.
package isa

import (
	"fmt"
)

// Opcode occupies bits 57-63 of every instruction ("Bits 57-63 define the
// opcode, which differentiates look-up table instructions from other PIM
// instructions").
type Opcode uint8

const (
	OpNop Opcode = iota
	// OpRead loads a block row from the memristor cells into the block's
	// row buffer (the paper's I0 in the Figure 3 walkthrough).
	OpRead
	// OpWrite stores the row buffer into a block row (I4).
	OpWrite
	// OpMemcpy moves a row-buffer payload from one block to another through
	// the interconnect (I1..I3).
	OpMemcpy
	// OpBroadcast replicates a word range of a source row across a row
	// range within the same block — the "constants need to be copied to the
	// scratchpad and broadcast to the first 512 rows" step of Section 5.1.
	OpBroadcast
	// OpAdd computes, for every row in a range, dst = src1 + src2 (FP32,
	// bit-serial NOR sequence, row-parallel).
	OpAdd
	// OpMul computes dst = src1 * src2 likewise.
	OpMul
	// OpSub computes dst = src1 - src2 (bit-serial subtraction has the
	// same NOR-step cost as addition).
	OpSub
	// OpGroupBcast is a strided within-group broadcast using the block's
	// column buffers: rows are partitioned into groups of GroupSize members
	// spaced Stride apart, and every member's DstOff word is overwritten by
	// the GroupIdx-th member's SrcOff word. This is the data-rearrangement
	// micro-operation behind the tensor-product derivative dot products of
	// Figure 5 ("a series of addition and multiplication instructions after
	// appropriate constants are distributed to each row").
	OpGroupBcast
	// OpPattern distributes a per-axis constant pattern from the block's
	// storage rows into a compute column: every compute row r receives
	// storageRow[Row + ((r-RowStart)/Stride) mod GroupSize][SrcOff]. One
	// OpPattern per dshape column realizes Figure 5's "appropriate
	// constants are distributed to each row" step; with a mask-indicator
	// storage row it also materializes the face masks used by Flux. Like
	// OpGroupBcast it is a column-buffer permutation write.
	OpPattern
	// OpLUT is the look-up table instruction of Figure 4 / Algorithm 1.
	OpLUT
	numOpcodes
)

// NumOpcodes is the number of defined opcodes — the size callers need for
// per-opcode counter arrays (e.g. the simulator's instruction-class
// metrics).
const NumOpcodes = int(numOpcodes)

func (o Opcode) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpMemcpy:
		return "memcpy"
	case OpBroadcast:
		return "broadcast"
	case OpAdd:
		return "add"
	case OpMul:
		return "mul"
	case OpSub:
		return "sub"
	case OpGroupBcast:
		return "groupbcast"
	case OpPattern:
		return "pattern"
	case OpLUT:
		return "lut"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Field widths shared by the encodings. A 1K x 1K block has 1024 rows
// (10-bit row addresses) and 32 32-bit words per row (5-bit word offsets,
// as in Figure 4: "the data precision is 32-bit, so only 5 bits are needed
// to define the offset"). Block IDs get 18 bits (256K blocks = 32 GB),
// enough for the largest 16 GB configuration.
const (
	RowBits      = 10
	RowCountBits = 11 // counts up to 1024 need 11 bits
	WordOffBits  = 5
	BlockIDBits  = 18
	OpcodeShift  = 57
)

// Instr is a decoded instruction. Field meaning depends on Op:
//
//	Read/Write:  Block, Row
//	Memcpy:      Block (source), Row (source), DstBlock, DstRow
//	Broadcast:   Row (source row), RowStart, RowCount, SrcOff, DstOff, WordCount
//	Add/Mul/Sub: RowStart, RowCount, DstOff, SrcOff (operand 1), Src2Off
//	GroupBcast:  RowStart, RowCount, SrcOff, DstOff, Stride, GroupSize, GroupIdx
//	LUT:         Row (Row ID), SrcOff (Offset_S), LUTBlock, DstOff (Offset_D)
type Instr struct {
	Op        Opcode
	Block     int
	Row       int
	DstBlock  int
	DstRow    int
	RowStart  int
	RowCount  int
	SrcOff    int
	Src2Off   int
	DstOff    int
	WordCount int
	LUTBlock  int
	Stride    int
	GroupSize int
	GroupIdx  int
}

func field(v uint64, shift, width uint) uint64 {
	return (v >> shift) & ((1 << width) - 1)
}

// Encode packs the instruction into a 64-bit word.
func Encode(in Instr) (uint64, error) {
	if in.Op >= numOpcodes {
		return 0, fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	check := func(name string, v, width int) error {
		if v < 0 || uint64(v) >= 1<<uint(width) {
			return fmt.Errorf("isa: %v field %s=%d exceeds %d bits", in.Op, name, v, width)
		}
		return nil
	}
	w := uint64(in.Op) << OpcodeShift
	switch in.Op {
	case OpNop:
	case OpRead, OpWrite:
		if err := check("block", in.Block, BlockIDBits); err != nil {
			return 0, err
		}
		if err := check("row", in.Row, RowBits); err != nil {
			return 0, err
		}
		w |= uint64(in.Block) << 39
		w |= uint64(in.Row) << 29
	case OpMemcpy:
		for _, c := range []struct {
			name  string
			v, wd int
		}{{"srcBlock", in.Block, BlockIDBits}, {"srcRow", in.Row, RowBits},
			{"dstBlock", in.DstBlock, BlockIDBits}, {"dstRow", in.DstRow, RowBits}} {
			if err := check(c.name, c.v, c.wd); err != nil {
				return 0, err
			}
		}
		w |= uint64(in.Block) << 39
		w |= uint64(in.Row) << 29
		w |= uint64(in.DstBlock) << 11
		w |= uint64(in.DstRow) << 1
	case OpBroadcast:
		for _, c := range []struct {
			name  string
			v, wd int
		}{{"srcRow", in.Row, RowBits}, {"rowStart", in.RowStart, RowBits},
			{"rowCount", in.RowCount, RowCountBits}, {"srcOff", in.SrcOff, WordOffBits},
			{"dstOff", in.DstOff, WordOffBits}, {"wordCount", in.WordCount, WordOffBits + 1}} {
			if err := check(c.name, c.v, c.wd); err != nil {
				return 0, err
			}
		}
		w |= uint64(in.Row) << 47
		w |= uint64(in.RowStart) << 37
		w |= uint64(in.RowCount) << 26
		w |= uint64(in.SrcOff) << 21
		w |= uint64(in.DstOff) << 16
		w |= uint64(in.WordCount) << 10
	case OpAdd, OpMul, OpSub:
		for _, c := range []struct {
			name  string
			v, wd int
		}{{"rowStart", in.RowStart, RowBits}, {"rowCount", in.RowCount, RowCountBits},
			{"dstOff", in.DstOff, WordOffBits}, {"srcOff", in.SrcOff, WordOffBits},
			{"src2Off", in.Src2Off, WordOffBits}} {
			if err := check(c.name, c.v, c.wd); err != nil {
				return 0, err
			}
		}
		w |= uint64(in.RowStart) << 47
		w |= uint64(in.RowCount) << 36
		w |= uint64(in.DstOff) << 31
		w |= uint64(in.SrcOff) << 26
		w |= uint64(in.Src2Off) << 21
	case OpGroupBcast, OpPattern:
		for _, c := range []struct {
			name  string
			v, wd int
		}{{"rowStart", in.RowStart, RowBits}, {"rowCount", in.RowCount, RowCountBits},
			{"srcOff", in.SrcOff, WordOffBits}, {"dstOff", in.DstOff, WordOffBits},
			{"stride", in.Stride, RowBits}, {"groupSize", in.GroupSize, 5},
			{"groupIdx", in.GroupIdx, 5}} {
			if err := check(c.name, c.v, c.wd); err != nil {
				return 0, err
			}
		}
		w |= uint64(in.RowStart) << 47
		w |= uint64(in.RowCount) << 36
		w |= uint64(in.SrcOff) << 31
		w |= uint64(in.DstOff) << 26
		w |= uint64(in.Stride) << 16
		w |= uint64(in.GroupSize) << 11
		if in.Op == OpPattern {
			// OpPattern repurposes the GroupIdx bits plus the tail for its
			// 10-bit storage base row (it has no group index).
			if err := check("row", in.Row, RowBits); err != nil {
				return 0, err
			}
			if in.GroupIdx != 0 {
				return 0, fmt.Errorf("isa: pattern instruction does not carry a group index")
			}
			w |= uint64(in.Row) << 1
		} else {
			w |= uint64(in.GroupIdx) << 6
		}
	case OpLUT:
		// Figure 4: [63:57] opcode, [56:31] Row ID, [30:26] Offset_S,
		// [25:5] LUT Block ID, [4:0] Offset_D.
		if err := check("rowID", in.Row, 26); err != nil {
			return 0, err
		}
		if err := check("offsetS", in.SrcOff, WordOffBits); err != nil {
			return 0, err
		}
		if err := check("lutBlock", in.LUTBlock, 21); err != nil {
			return 0, err
		}
		if err := check("offsetD", in.DstOff, WordOffBits); err != nil {
			return 0, err
		}
		w |= uint64(in.Row) << 31
		w |= uint64(in.SrcOff) << 26
		w |= uint64(in.LUTBlock) << 5
		w |= uint64(in.DstOff)
	}
	return w, nil
}

// Decode unpacks a 64-bit instruction word.
func Decode(w uint64) (Instr, error) {
	op := Opcode(field(w, OpcodeShift, 7))
	if op >= numOpcodes {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d in %#x", op, w)
	}
	in := Instr{Op: op}
	switch op {
	case OpNop:
	case OpRead, OpWrite:
		in.Block = int(field(w, 39, BlockIDBits))
		in.Row = int(field(w, 29, RowBits))
	case OpMemcpy:
		in.Block = int(field(w, 39, BlockIDBits))
		in.Row = int(field(w, 29, RowBits))
		in.DstBlock = int(field(w, 11, BlockIDBits))
		in.DstRow = int(field(w, 1, RowBits))
	case OpBroadcast:
		in.Row = int(field(w, 47, RowBits))
		in.RowStart = int(field(w, 37, RowBits))
		in.RowCount = int(field(w, 26, RowCountBits))
		in.SrcOff = int(field(w, 21, WordOffBits))
		in.DstOff = int(field(w, 16, WordOffBits))
		in.WordCount = int(field(w, 10, WordOffBits+1))
	case OpAdd, OpMul, OpSub:
		in.RowStart = int(field(w, 47, RowBits))
		in.RowCount = int(field(w, 36, RowCountBits))
		in.DstOff = int(field(w, 31, WordOffBits))
		in.SrcOff = int(field(w, 26, WordOffBits))
		in.Src2Off = int(field(w, 21, WordOffBits))
	case OpGroupBcast, OpPattern:
		in.RowStart = int(field(w, 47, RowBits))
		in.RowCount = int(field(w, 36, RowCountBits))
		in.SrcOff = int(field(w, 31, WordOffBits))
		in.DstOff = int(field(w, 26, WordOffBits))
		in.Stride = int(field(w, 16, RowBits))
		in.GroupSize = int(field(w, 11, 5))
		if op == OpPattern {
			in.Row = int(field(w, 1, RowBits))
		} else {
			in.GroupIdx = int(field(w, 6, 5))
		}
	case OpLUT:
		in.Row = int(field(w, 31, 26))
		in.SrcOff = int(field(w, 26, WordOffBits))
		in.LUTBlock = int(field(w, 5, 21))
		in.DstOff = int(field(w, 0, WordOffBits))
	}
	return in, nil
}

// LUTSteps expands a decoded LUT instruction into the micro-operation
// sequence of Algorithm 1, with byte-granularity locations exactly as the
// paper specifies (block size 1024x1024 bits, 32-bit precision).
type LUTStep struct {
	Kind     string // "read" or "write"
	Location int64  // bit address
	Size     int    // bits
}

// ExpandLUT returns the Algorithm 1 step sequence for in (which must be an
// OpLUT instruction); the index value read by step R_1 is supplied by the
// caller (the simulator) to form R_2's location.
func ExpandLUT(in Instr, index uint32) ([3]LUTStep, error) {
	if in.Op != OpLUT {
		return [3]LUTStep{}, fmt.Errorf("isa: ExpandLUT on %v", in.Op)
	}
	return [3]LUTStep{
		{Kind: "read", Location: int64(in.Row)*1024 + int64(in.SrcOff)*32, Size: 32},
		{Kind: "read", Location: int64(in.LUTBlock)*1024*1024 + int64(index)*32, Size: 32},
		{Kind: "write", Location: int64(in.Row)*1024 + int64(in.DstOff)*32, Size: 32},
	}, nil
}

// Program is an instruction sequence with convenience constructors used by
// the wavepim compiler.
type Program struct {
	Instrs []Instr
}

// Append adds instructions to the program.
func (p *Program) Append(ins ...Instr) { p.Instrs = append(p.Instrs, ins...) }

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// CountOp returns how many instructions have the given opcode.
func (p *Program) CountOp(op Opcode) int {
	var n int
	for _, in := range p.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}
