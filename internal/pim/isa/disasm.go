package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders one decoded instruction in a readable assembly
// syntax. The mnemonics mirror the micro-operation names of Sections 4.1
// and 4.3.
func Disassemble(in Instr) string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpRead:
		return fmt.Sprintf("read    b%d r%d", in.Block, in.Row)
	case OpWrite:
		return fmt.Sprintf("write   b%d r%d", in.Block, in.Row)
	case OpMemcpy:
		return fmt.Sprintf("memcpy  b%d r%d -> b%d r%d", in.Block, in.Row, in.DstBlock, in.DstRow)
	case OpBroadcast:
		return fmt.Sprintf("bcast   r%d.w%d -> rows[%d+%d].w%d x%d",
			in.Row, in.SrcOff, in.RowStart, in.RowCount, in.DstOff, in.WordCount)
	case OpAdd, OpMul, OpSub:
		return fmt.Sprintf("%-7s rows[%d+%d]: w%d = w%d, w%d",
			in.Op, in.RowStart, in.RowCount, in.DstOff, in.SrcOff, in.Src2Off)
	case OpGroupBcast:
		return fmt.Sprintf("gbcast  rows[%d+%d]: w%d <- w%d (stride %d, group %d, idx %d)",
			in.RowStart, in.RowCount, in.DstOff, in.SrcOff, in.Stride, in.GroupSize, in.GroupIdx)
	case OpPattern:
		return fmt.Sprintf("pattern rows[%d+%d]: w%d <- storage[r%d+coord].w%d (stride %d, group %d)",
			in.RowStart, in.RowCount, in.DstOff, in.Row, in.SrcOff, in.Stride, in.GroupSize)
	case OpLUT:
		return fmt.Sprintf("lut     r%d.w%d -> [lutblk %d] -> r%d.w%d",
			in.Row, in.SrcOff, in.LUTBlock, in.Row, in.DstOff)
	}
	return fmt.Sprintf("op(%d)?", uint8(in.Op))
}

// DisassembleWord decodes and renders a 64-bit instruction word.
func DisassembleWord(w uint64) (string, error) {
	in, err := Decode(w)
	if err != nil {
		return "", err
	}
	return Disassemble(in), nil
}

// Assemble encodes a whole program into its 64-bit word stream — the form
// the host CPU actually sends to the chip's central controller.
func Assemble(prog []Instr) ([]uint64, error) {
	out := make([]uint64, len(prog))
	for i, in := range prog {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		out[i] = w
	}
	return out, nil
}

// DisassembleProgram renders a full program, one instruction per line,
// with word offsets.
func DisassembleProgram(prog []Instr) string {
	var b strings.Builder
	for i, in := range prog {
		fmt.Fprintf(&b, "%4d: %s\n", i, Disassemble(in))
	}
	return b.String()
}

// OpMix is an opcode histogram of a program — the measured counterpart of
// the paper's "assuming a workload containing 50% addition and 50%
// multiplication operations" throughput model.
type OpMix struct {
	Counts map[Opcode]int
	Total  int
}

// Mix computes the opcode histogram.
func Mix(prog []Instr) OpMix {
	m := OpMix{Counts: make(map[Opcode]int)}
	for _, in := range prog {
		m.Counts[in.Op]++
		m.Total++
	}
	return m
}

// Add merges another program's counts.
func (m *OpMix) Add(o OpMix) {
	for op, n := range o.Counts {
		m.Counts[op] += n
	}
	m.Total += o.Total
}

// ArithShare returns the fraction of arithmetic (add/sub/mul) instructions
// and, within them, the multiply share.
func (m OpMix) ArithShare() (arithFrac, mulFrac float64) {
	adds := m.Counts[OpAdd] + m.Counts[OpSub]
	muls := m.Counts[OpMul]
	if m.Total > 0 {
		arithFrac = float64(adds+muls) / float64(m.Total)
	}
	if adds+muls > 0 {
		mulFrac = float64(muls) / float64(adds+muls)
	}
	return
}
