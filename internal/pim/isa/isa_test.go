package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeStrings(t *testing.T) {
	cases := map[Opcode]string{
		OpNop: "nop", OpRead: "read", OpWrite: "write", OpMemcpy: "memcpy",
		OpBroadcast: "broadcast", OpAdd: "add", OpMul: "mul", OpLUT: "lut",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q want %q", op, op.String(), want)
		}
	}
}

func randInstr(r *rand.Rand) Instr {
	ops := []Opcode{OpNop, OpRead, OpWrite, OpMemcpy, OpBroadcast, OpAdd, OpMul, OpSub, OpGroupBcast, OpPattern, OpLUT}
	in := Instr{Op: ops[r.Intn(len(ops))]}
	switch in.Op {
	case OpGroupBcast, OpPattern:
		in.RowStart = r.Intn(1 << RowBits)
		in.RowCount = r.Intn(1 << RowCountBits)
		in.SrcOff = r.Intn(1 << WordOffBits)
		in.DstOff = r.Intn(1 << WordOffBits)
		in.Stride = r.Intn(1 << RowBits)
		in.GroupSize = r.Intn(1 << 5)
		if in.Op == OpGroupBcast {
			in.GroupIdx = r.Intn(1 << 5)
		} else {
			in.Row = r.Intn(1 << RowBits)
		}
	case OpRead, OpWrite:
		in.Block = r.Intn(1 << BlockIDBits)
		in.Row = r.Intn(1 << RowBits)
	case OpMemcpy:
		in.Block = r.Intn(1 << BlockIDBits)
		in.Row = r.Intn(1 << RowBits)
		in.DstBlock = r.Intn(1 << BlockIDBits)
		in.DstRow = r.Intn(1 << RowBits)
	case OpBroadcast:
		in.Row = r.Intn(1 << RowBits)
		in.RowStart = r.Intn(1 << RowBits)
		in.RowCount = r.Intn(1 << RowCountBits)
		in.SrcOff = r.Intn(1 << WordOffBits)
		in.DstOff = r.Intn(1 << WordOffBits)
		in.WordCount = r.Intn(1 << (WordOffBits + 1))
	case OpAdd, OpMul, OpSub:
		in.RowStart = r.Intn(1 << RowBits)
		in.RowCount = r.Intn(1 << RowCountBits)
		in.DstOff = r.Intn(1 << WordOffBits)
		in.SrcOff = r.Intn(1 << WordOffBits)
		in.Src2Off = r.Intn(1 << WordOffBits)
	case OpLUT:
		in.Row = r.Intn(1 << 26)
		in.SrcOff = r.Intn(1 << WordOffBits)
		in.LUTBlock = r.Intn(1 << 21)
		in.DstOff = r.Intn(1 << WordOffBits)
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		in := randInstr(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %#x: %v", w, err)
		}
		if got != in {
			t.Fatalf("round trip failed:\n in: %+v\nout: %+v\nword %#x", in, got, w)
		}
	}
}

func TestOpcodeInBits57To63(t *testing.T) {
	for _, op := range []Opcode{OpRead, OpMemcpy, OpLUT} {
		w, err := Encode(Instr{Op: op})
		if err != nil {
			t.Fatal(err)
		}
		if got := Opcode(w >> OpcodeShift); got != op {
			t.Errorf("opcode field of %v: got %v", op, got)
		}
	}
}

func TestLUTEncodingMatchesFigure4(t *testing.T) {
	// Figure 4's layout: [63:57] opcode, [56:31] Row ID, [30:26] Offset_S,
	// [25:5] LUT Block ID, [4:0] Offset_D.
	in := Instr{Op: OpLUT, Row: 0x2ABCDEF, SrcOff: 0x15, LUTBlock: 0x10FFFF, DstOff: 0x0A}
	in.Row &= (1 << 26) - 1
	w, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(w >> 31 & ((1 << 26) - 1)); got != in.Row {
		t.Errorf("Row ID field: %#x want %#x", got, in.Row)
	}
	if got := int(w >> 26 & 0x1F); got != in.SrcOff {
		t.Errorf("Offset_S field: %#x want %#x", got, in.SrcOff)
	}
	if got := int(w >> 5 & ((1 << 21) - 1)); got != in.LUTBlock {
		t.Errorf("LUT Block ID field: %#x want %#x", got, in.LUTBlock)
	}
	if got := int(w & 0x1F); got != in.DstOff {
		t.Errorf("Offset_D field: %#x want %#x", got, in.DstOff)
	}
}

func TestEncodeRejectsOutOfRangeFields(t *testing.T) {
	bad := []Instr{
		{Op: OpRead, Block: 1 << BlockIDBits},
		{Op: OpRead, Row: 1024},
		{Op: OpMemcpy, DstRow: -1},
		{Op: OpAdd, RowCount: 1 << RowCountBits},
		{Op: OpLUT, LUTBlock: 1 << 21},
		{Op: OpBroadcast, WordCount: 1 << (WordOffBits + 1)},
		{Op: numOpcodes},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) should have failed", in)
		}
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	if _, err := Decode(uint64(numOpcodes) << OpcodeShift); err == nil {
		t.Error("Decode of invalid opcode should fail")
	}
}

func TestExpandLUTAlgorithm1(t *testing.T) {
	// Algorithm 1's address arithmetic, verbatim:
	//  R_1 at RowAddress*1024 + Offset_S*32
	//  R_2 at LUTBlockID*1024*1024 + index*32
	//  W_1 at RowAddress*1024 + Offset_D*32
	in := Instr{Op: OpLUT, Row: 7, SrcOff: 3, LUTBlock: 2, DstOff: 9}
	steps, err := ExpandLUT(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps[0].Kind != "read" || steps[0].Location != 7*1024+3*32 || steps[0].Size != 32 {
		t.Errorf("R_1 = %+v", steps[0])
	}
	if steps[1].Kind != "read" || steps[1].Location != 2*1024*1024+100*32 {
		t.Errorf("R_2 = %+v", steps[1])
	}
	if steps[2].Kind != "write" || steps[2].Location != 7*1024+9*32 {
		t.Errorf("W_1 = %+v", steps[2])
	}
}

func TestExpandLUTRejectsNonLUT(t *testing.T) {
	if _, err := ExpandLUT(Instr{Op: OpAdd}, 0); err == nil {
		t.Error("ExpandLUT on non-LUT instruction should fail")
	}
}

func TestProgramHelpers(t *testing.T) {
	var p Program
	p.Append(Instr{Op: OpAdd}, Instr{Op: OpMul}, Instr{Op: OpAdd})
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.CountOp(OpAdd) != 2 || p.CountOp(OpMul) != 1 || p.CountOp(OpLUT) != 0 {
		t.Error("CountOp wrong")
	}
}

// Property: every encodable instruction decodes to itself.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstr(r)
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
