package isa

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDisassembleForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpRead, Block: 3, Row: 7}, "read    b3 r7"},
		{Instr{Op: OpMemcpy, Block: 1, Row: 2, DstBlock: 5, DstRow: 9}, "memcpy  b1 r2 -> b5 r9"},
		{Instr{Op: OpAdd, RowStart: 0, RowCount: 512, DstOff: 2, SrcOff: 0, Src2Off: 1},
			"add     rows[0+512]: w2 = w0, w1"},
		{Instr{Op: OpLUT, Row: 4, SrcOff: 1, LUTBlock: 10, DstOff: 9},
			"lut     r4.w1 -> [lutblk 10] -> r4.w9"},
	}
	for _, c := range cases {
		if got := Disassemble(c.in); got != c.want {
			t.Errorf("Disassemble(%v) = %q want %q", c.in.Op, got, c.want)
		}
	}
}

// Assemble/DisassembleWord round trip: rendering an assembled word equals
// rendering the original instruction.
func TestAssembleDisassembleConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var prog []Instr
	for i := 0; i < 200; i++ {
		prog = append(prog, randInstr(r))
	}
	words, err := Assemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != len(prog) {
		t.Fatal("length mismatch")
	}
	for i, w := range words {
		got, err := DisassembleWord(w)
		if err != nil {
			t.Fatal(err)
		}
		if want := Disassemble(prog[i]); got != want {
			t.Errorf("instr %d: %q vs %q", i, got, want)
		}
	}
}

func TestAssembleRejectsBadInstr(t *testing.T) {
	if _, err := Assemble([]Instr{{Op: OpRead, Row: 5000}}); err == nil {
		t.Error("Assemble should propagate encoding errors")
	}
}

func TestDisassembleProgram(t *testing.T) {
	s := DisassembleProgram([]Instr{{Op: OpNop}, {Op: OpRead, Block: 1, Row: 2}})
	if !strings.Contains(s, "0: nop") || !strings.Contains(s, "1: read    b1 r2") {
		t.Errorf("program disassembly wrong:\n%s", s)
	}
}

func TestOpMix(t *testing.T) {
	prog := []Instr{
		{Op: OpAdd}, {Op: OpAdd}, {Op: OpSub}, {Op: OpMul}, {Op: OpMul}, {Op: OpMul},
		{Op: OpGroupBcast}, {Op: OpBroadcast},
	}
	m := Mix(prog)
	if m.Total != 8 || m.Counts[OpMul] != 3 {
		t.Errorf("mix %+v", m)
	}
	arith, mul := m.ArithShare()
	if arith != 6.0/8 {
		t.Errorf("arith share %g", arith)
	}
	if mul != 0.5 {
		t.Errorf("mul share %g", mul)
	}
	var total OpMix
	total.Counts = map[Opcode]int{}
	total.Add(m)
	total.Add(m)
	if total.Total != 16 || total.Counts[OpSub] != 2 {
		t.Error("OpMix.Add wrong")
	}
}

func TestOpMixEmpty(t *testing.T) {
	m := Mix(nil)
	a, mu := m.ArithShare()
	if a != 0 || mu != 0 {
		t.Error("empty mix shares should be zero")
	}
}
